package pushmulticast

import (
	"errors"
	"testing"
)

// lossyPlans returns one whole-run plan per lossy kind plus a combined
// generated plan, at rates within the forward-progress ceiling.
func lossyPlans() map[string]FaultPlan {
	const forever = uint64(1) << 62
	all := func(kind FaultKind, rate int) FaultPlan {
		p := FaultPlan{Seed: 7}
		for n := 0; n < 16; n++ {
			p.Faults = append(p.Faults, Fault{Kind: kind, Node: n, To: forever, Factor: rate})
		}
		return p
	}
	return map[string]FaultPlan{
		"drop":     all(FaultMsgDrop, 50),
		"dup":      all(FaultMsgDup, 50),
		"corrupt":  all(FaultMsgCorrupt, 50),
		"combined": GenerateLossyPlan(16, 7, 60),
	}
}

// TestLossyReplayIdentical is the recovery layer's determinism contract: a
// lossy plan must replay byte-identically — cycles, stats, and the complete
// event history including every drop, duplicate, retransmission, and
// recovery — across the serial, dense, and parallel kernels, with the
// invariant checker armed throughout.
func TestLossyReplayIdentical(t *testing.T) {
	for name, plan := range lossyPlans() {
		name, plan := name, plan
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mkCfg := func() Config {
				cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
				cfg.Faults = &plan
				return cfg
			}
			serial, err := Run(mkCfg(), "cachebw", ScaleTiny)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			dcfg := mkCfg()
			dcfg.DenseKernel = true
			dense, err := Run(dcfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			par, err := Run(withParallel(mkCfg(), 4), "cachebw", ScaleTiny)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			checkIdentical(t, "serial", "dense", serial, dense)
			checkIdentical(t, "serial", "parallel", serial, par)
			loss := serial.Stats.Net.MsgDropped + serial.Stats.Net.DupSuppressed +
				serial.Stats.Net.CorruptDetected
			if loss == 0 {
				t.Error("no lossy event ever fired; the plan never bit")
			}
		})
	}
}

// TestLossyStats asserts the whole counter chain is plumbed end-to-end: a
// combined lossy run at a meaningful rate must report every recovery-layer
// counter non-zero — drops, detected corruptions, suppressed duplicates,
// retransmissions, and the L2's MSHR retry timers.
func TestLossyStats(t *testing.T) {
	plan := GenerateLossyPlan(16, 11, 80)
	cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
	cfg.Faults = &plan
	res, err := Run(cfg, "cachebw", ScaleTiny)
	if err != nil {
		t.Fatalf("lossy run failed: %v", err)
	}
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"MsgDropped", res.Stats.Net.MsgDropped},
		{"Retransmits", res.Stats.Net.Retransmits},
		{"DupSuppressed", res.Stats.Net.DupSuppressed},
		{"CorruptDetected", res.Stats.Net.CorruptDetected},
		{"MSHRTimeouts", res.Stats.Cache.MSHRTimeouts},
	} {
		if c.v == 0 {
			t.Errorf("%s is zero under 80 per-mille loss; the counter is not plumbed", c.name)
		}
	}
}

// TestLossyUnrecoverable drives the loss rate to 1000 per mille — every
// delivery at every NI discarded, including retransmissions — and demands
// the loud-failure contract: the run must abort promptly with a wrapped
// noc.ErrUnrecoverable (reachable via errors.Is), never hang until the
// watchdog or deadlock.
func TestLossyUnrecoverable(t *testing.T) {
	plan := GenerateLossyPlan(16, 3, 1000)
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
			cfg.Faults = &plan
			if parallel {
				cfg = withParallel(cfg, 4)
			}
			_, err := Run(cfg, "cachebw", ScaleTiny)
			if err == nil {
				t.Fatal("total loss completed successfully; the retry budget never tripped")
			}
			if !errors.Is(err, ErrUnrecoverable) {
				t.Fatalf("total loss failed with %v, want ErrUnrecoverable", err)
			}
		})
	}
}

// TestSeqWraparound narrows the sequence space to 8 bits so tiny runs wrap
// the per-stream counters many times, and asserts the recovery layer stays
// correct and deterministic across kernels: dedup must not suppress fresh
// packets after a wrap, and the window must keep moving.
func TestSeqWraparound(t *testing.T) {
	plan := GenerateLossyPlan(16, 5, 60)
	mkCfg := func() Config {
		cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
		cfg.Faults = &plan
		cfg.NoC.SeqBits = 8
		cfg.NoC.RetryWindow = 16
		return cfg
	}
	serial, err := Run(mkCfg(), "cachebw", ScaleTiny)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, err := Run(withParallel(mkCfg(), 4), "cachebw", ScaleTiny)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	checkIdentical(t, "serial", "parallel", serial, par)
	if serial.Stats.Net.MsgDropped == 0 || serial.Stats.Net.Retransmits == 0 {
		t.Error("wraparound run saw no losses or no retransmissions; nothing was exercised")
	}
}
