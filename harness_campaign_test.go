package pushmulticast

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"pushmulticast/internal/workload"
)

// TestMemoLRUEviction pins the bounded-memo contract: the least-recently-used
// completed entry is evicted once the bound is exceeded, the eviction counter
// records it, and a later lookup of the evicted key re-simulates to
// byte-identical Results (fresh Stats bundle, same counters) — determinism
// makes eviction invisible except for the re-run cost.
func TestMemoLRUEviction(t *testing.T) {
	ClearRunMemo()
	prev := SetRunMemoCapacity(2)
	t.Cleanup(func() { SetRunMemoCapacity(prev); ClearRunMemo() })
	wlA, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	wlB, err := workload.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	wlC, err := workload.ByName("mv")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(Default16()).WithScheme(Baseline())
	ctx := context.Background()
	resA1, hit, err := memoizedRun(ctx, cfg, wlA, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run of A reported a memo hit")
	}
	if _, _, err := memoizedRun(ctx, cfg, wlB, ScaleTiny); err != nil {
		t.Fatal(err)
	}
	// C exceeds the bound of 2; A is the least recently used and must go.
	if _, _, err := memoizedRun(ctx, cfg, wlC, ScaleTiny); err != nil {
		t.Fatal(err)
	}
	st := RunMemoStats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d after exceeding a bound of 2 by one; want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d; want 2 (the bound)", st.Entries)
	}
	keyA := newMemoKey(cfg, wlA, ScaleTiny)
	runMemo.Lock()
	_, stillThere := runMemo.m[keyA]
	runMemo.Unlock()
	if stillThere {
		t.Fatal("least-recently-used entry A survived eviction")
	}
	// B must still be cached: a hit, same Stats bundle by pointer.
	resB, hitB, err := memoizedRun(ctx, cfg, wlB, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if !hitB {
		t.Fatal("B was evicted; only A (the LRU entry) should have been")
	}
	_ = resB
	// Re-running the evicted key re-simulates (miss, fresh Stats bundle) to
	// byte-identical results.
	resA2, hitA2, err := memoizedRun(ctx, cfg, wlA, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if hitA2 {
		t.Fatal("evicted key A reported a memo hit; want a re-simulation")
	}
	if resA1.Stats == resA2.Stats {
		t.Fatal("re-run of evicted A returned the old Stats bundle pointer; the entry was not really evicted")
	}
	if resA1.Cycles != resA2.Cycles || resA1.TraceHash != resA2.TraceHash ||
		resA1.TraceEvents != resA2.TraceEvents {
		t.Fatalf("re-simulation of evicted A diverged: cycles %d vs %d, trace %#x/%d vs %#x/%d",
			resA1.Cycles, resA2.Cycles, resA1.TraceHash, resA1.TraceEvents, resA2.TraceHash, resA2.TraceEvents)
	}
	if !reflect.DeepEqual(resA1.Stats, resA2.Stats) {
		t.Fatal("re-simulation of evicted A produced different counters")
	}
}

// TestMemoInFlightPinned drives the singleflight protocol directly with a
// controllable run function: an in-flight entry is not on the LRU list and
// must survive any amount of eviction pressure; its waiters are released with
// the run's results once it completes.
func TestMemoInFlightPinned(t *testing.T) {
	ClearRunMemo()
	prev := SetRunMemoCapacity(1)
	t.Cleanup(func() { SetRunMemoCapacity(prev); ClearRunMemo() })
	slowKey := memoKey{cfg: "pinned", workload: "slow"}
	release := make(chan struct{})
	type out struct {
		res Results
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, _, err := memoized(context.Background(), slowKey, func(context.Context) (Results, error) {
			<-release
			return Results{Cycles: 42}, nil
		})
		done <- out{res, err}
	}()
	// Wait for the in-flight entry to appear.
	for {
		runMemo.Lock()
		_, ok := runMemo.m[slowKey]
		runMemo.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Hammer the memo with completed entries; the bound is 1, so every new
	// completion evicts the previous one — but never the pinned in-flight run.
	for i := 0; i < 8; i++ {
		key := memoKey{cfg: fmt.Sprintf("filler-%d", i)}
		if _, _, err := memoized(context.Background(), key, func(context.Context) (Results, error) {
			return Results{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	runMemo.Lock()
	_, ok := runMemo.m[slowKey]
	runMemo.Unlock()
	if !ok {
		t.Fatal("in-flight entry was evicted by LRU pressure; it must be pinned until completion")
	}
	close(release)
	got := <-done
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.res.Cycles != 42 {
		t.Fatalf("waiter got Cycles=%d; want the run's 42", got.res.Cycles)
	}
}

// TestMemoLastWaiterCancelsRun pins the refcounted cancellation protocol: two
// waiters join one in-flight run; the first to cancel returns promptly and
// the run keeps going, and only when the second (last) waiter cancels is the
// run's own context fired.
func TestMemoLastWaiterCancelsRun(t *testing.T) {
	ClearRunMemo()
	t.Cleanup(ClearRunMemo)
	key := memoKey{cfg: "last-waiter"}
	runCanceled := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	type out struct{ err error }
	first := make(chan out, 1)
	go func() {
		_, _, err := memoized(ctx1, key, func(runCtx context.Context) (Results, error) {
			<-runCtx.Done()
			close(runCanceled)
			return Results{}, fmt.Errorf("%w: aborted", ErrCanceled)
		})
		first <- out{err}
	}()
	for {
		runMemo.Lock()
		_, ok := runMemo.m[key]
		runMemo.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	second := make(chan out, 1)
	go func() {
		_, _, err := memoized(ctx2, key, func(context.Context) (Results, error) {
			t.Error("joining an in-flight entry started a second simulation")
			return Results{}, nil
		})
		second <- out{err}
	}()
	// Wait until the second caller has registered its reference.
	for {
		runMemo.Lock()
		refs := runMemo.m[key].refs
		runMemo.Unlock()
		if refs == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	if got := <-first; !errors.Is(got.err, ErrCanceled) {
		t.Fatalf("first canceled waiter got %v; want ErrCanceled", got.err)
	}
	select {
	case <-runCanceled:
		t.Fatal("run was aborted while a waiter was still interested in it")
	case <-time.After(50 * time.Millisecond):
	}
	cancel2()
	if got := <-second; !errors.Is(got.err, ErrCanceled) {
		t.Fatalf("second canceled waiter got %v; want ErrCanceled", got.err)
	}
	select {
	case <-runCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("run context was never canceled after the last waiter left")
	}
}

// TestCancelReturnsPromptly256 is the regression for the cancellation gap: a
// canceled 256-core run must stop at the next cancellation barrier and return
// a wrapped ErrCanceled within a small multiple of the poll period — not
// simulate to completion for a caller that is gone.
func TestCancelReturnsPromptly256(t *testing.T) {
	wl, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(Default256()).WithScheme(OrdPush())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type out struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan out, 1)
	start := time.Now()
	go func() {
		_, err := RunWorkloadCtx(ctx, cfg, wl, ScaleTiny)
		done <- out{err, time.Since(start)}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case got := <-done:
		if !errors.Is(got.err, ErrCanceled) {
			t.Fatalf("canceled 256-core run returned %v; want a wrapped ErrCanceled", got.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled 256-core run did not return within 30s; cancellation is not being polled")
	}
}

// TestCampaignRunDedup covers the exported simd entry point: concurrent
// identical CampaignRun calls share one simulation, exactly one miss is
// recorded, and every caller reports the correct hit flag.
func TestCampaignRunDedup(t *testing.T) {
	ClearRunMemo()
	t.Cleanup(ClearRunMemo)
	wl, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(Default16()).WithScheme(PushAck())
	const callers = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	misses := 0
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := CampaignRun(context.Background(), cfg, wl, ScaleTiny)
			if err != nil {
				t.Error(err)
				return
			}
			if !hit {
				mu.Lock()
				misses++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if misses != 1 {
		t.Fatalf("%d callers reported a miss; exactly 1 must have started the simulation", misses)
	}
	if st := RunMemoStats(); st.Misses != 1 {
		t.Fatalf("memo recorded %d misses for %d identical concurrent calls; want 1", st.Misses, callers)
	}
}

// TestRunIdentityStable pins the run-identity contract the simd service keys
// its response cache by: deterministic across calls, sensitive to every key
// component (config, workload, scale, warm-start donor), insensitive to
// fault-plan pointer identity.
func TestRunIdentityStable(t *testing.T) {
	wlA, err := workload.ByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	wlB, err := workload.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	id := RunIdentity(cfg, wlA, ScaleTiny, nil)
	if id != RunIdentity(cfg, wlA, ScaleTiny, nil) {
		t.Fatal("RunIdentity is not deterministic")
	}
	if id == RunIdentity(cfg, wlB, ScaleTiny, nil) {
		t.Fatal("workload does not separate run identities")
	}
	if id == RunIdentity(cfg, wlA, ScaleQuick, nil) {
		t.Fatal("scale does not separate run identities")
	}
	other := cfg.WithScheme(PushAck())
	if id == RunIdentity(other, wlA, ScaleTiny, nil) {
		t.Fatal("scheme does not separate run identities")
	}
	if id == RunIdentity(cfg, wlA, ScaleTiny, []byte("snapshot")) {
		t.Fatal("warm-start donor does not separate run identities")
	}
}

// TestWithDefaultsHostBudget is the oversubscription regression: for every
// (Parallelism, SimWorkers) combination — defaulted, modest, and absurd —
// the resolved options must satisfy Parallelism × max(SimWorkers,1) ≤
// GOMAXPROCS while keeping Parallelism ≥ 1, so a campaign never schedules
// more runnable goroutines than the host has processors. The explicit
// Parallelism path used to skip the clamp entirely.
func TestWithDefaultsHostBudget(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name                    string
		parallelism, simWorkers int
	}{
		{"all-defaulted", 0, 0},
		{"defaulted-parallelism", 0, 2},
		{"defaulted-workers", 2, 0},
		{"explicit-modest", 1, 1},
		{"explicit-both", 2, 2},
		{"oversubscribed-parallelism", 4 * maxProcs, 1},
		{"oversubscribed-workers", 1, 4 * maxProcs},
		{"oversubscribed-both", 4 * maxProcs, 4 * maxProcs},
		{"negative-parallelism", -3, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := ExpOptions{Parallelism: tc.parallelism, SimWorkers: tc.simWorkers}.withDefaults()
			if o.Parallelism < 1 {
				t.Fatalf("Parallelism resolved to %d; want >= 1", o.Parallelism)
			}
			workers := o.SimWorkers
			if workers < 1 {
				workers = 1
			}
			if load := o.Parallelism * workers; load > maxProcs {
				t.Fatalf("Parallelism %d x SimWorkers %d = %d runnable goroutines on a GOMAXPROCS=%d host",
					o.Parallelism, workers, load, maxProcs)
			}
			// An explicit in-budget request must be honored, not shrunk.
			if tc.parallelism > 0 && workers*tc.parallelism <= maxProcs && o.Parallelism != tc.parallelism {
				t.Fatalf("in-budget explicit Parallelism %d was changed to %d", tc.parallelism, o.Parallelism)
			}
		})
	}
}
