package pushmulticast

// One benchmark per reproduced table/figure. Each benchmark regenerates its
// experiment at tiny scale per iteration and reports the figure's headline
// quantity as a custom metric, so `go test -bench=. -benchmem` doubles as a
// smoke regeneration of the whole evaluation. Quick-scale (paper-shaped)
// numbers come from `go run ./cmd/experiments`.

import (
	"fmt"
	"testing"
)

func benchOpts(wls ...string) ExpOptions {
	return ExpOptions{Scale: ScaleTiny, Cores: 16, Workloads: wls}
}

// BenchmarkRunCachebwOrdPush measures raw simulator throughput (simulated
// cycles per wall second) on the headline workload.
func BenchmarkRunCachebwOrdPush(b *testing.B) {
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, "cachebw", ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles/op")
}

// BenchmarkRunCachebwOrdPushDense is the same run under the dense
// (tick-everything) reference kernel; the ratio to the wake-driven
// benchmark above is the kernel speedup tracked in BENCH_kernel.json.
func BenchmarkRunCachebwOrdPushDense(b *testing.B) {
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	cfg.DenseKernel = true
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, "cachebw", ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles/op")
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig2(benchOpts("cachebw", "mv", "swaptions"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Rows[0].L2MPKI, "cachebw-L2MPKI")
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig3(benchOpts("cachebw", "pathfinder"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Rows[0].ReadShared, "cachebw-readshared-%")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.AllMedian), "median-gap-cycles")
	}
}

func benchFig11(b *testing.B, cores int) {
	o := benchOpts("cachebw", "mlp", "bfs")
	o.Cores = cores
	for i := 0; i < b.N; i++ {
		f, err := Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean["OrdPush"], "ordpush-geomean-x")
		b.ReportMetric(f.Max["OrdPush"], "ordpush-max-x")
	}
}

func BenchmarkFig11_16Core(b *testing.B) { benchFig11(b, 16) }

func BenchmarkFig11_64Core(b *testing.B) { benchFig11(b, 64) }

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig12(benchOpts("cachebw", "backprop"))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Scheme == "OrdPush" && r.Workload == "cachebw" {
				b.ReportMetric(100*(r.Percent[4]+r.Percent[5]), "cachebw-useful-%")
			}
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig13(benchOpts("cachebw", "multilevel"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.AvgSavingOrdPush, "ordpush-saving-%")
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig14(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(f.Grids[1].Total)/float64(f.Grids[0].Total), "ordpush-linkload-x")
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig15(benchOpts("cachebw"))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Scheme == "OrdPush" {
				b.ReportMetric(r.Injected, "l2-inj-x")
			}
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig16(benchOpts("cachebw"))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Scheme == "OrdPush" {
				b.ReportMetric(r.Injected, "llc-inj-x")
			}
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fa, err := Fig17a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Fig17b(benchOpts()); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fa.Rows[0].Speedup, "conv3d-tpc16-x")
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig18(benchOpts("cachebw"))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range f.Rows {
			if r.Scheme == "OrdPush" && r.LinkBits == 512 {
				b.ReportMetric(r.Speedup, "cachebw-512bit-x")
			}
		}
	}
}

func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig19(benchOpts("cachebw"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Rows[0].Speedup, fmt.Sprintf("%s-x", "smallcache"))
	}
}

func benchFig20(b *testing.B, cores int) {
	o := benchOpts("cachebw", "bfs")
	o.Cores = cores
	for i := 0; i < b.N; i++ {
		f, err := Fig20(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.Geomean["Push+Multicast+Filter+Knob"], "full-geomean-x")
		b.ReportMetric(f.Geomean["Push"], "push-only-geomean-x")
	}
}

func BenchmarkFig20_16Core(b *testing.B) { benchFig20(b, 16) }

func BenchmarkFig20_64Core(b *testing.B) { benchFig20(b, 64) }
