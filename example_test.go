package pushmulticast_test

import (
	"fmt"
	"log"

	"pushmulticast"
)

// The canonical flow: configure a machine, pick a scheme, run a workload.
func ExampleRun() {
	cfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).
		WithScheme(pushmulticast.OrdPush())
	res, err := pushmulticast.Run(cfg, "cachebw", pushmulticast.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s under %s: %d cycles, %d flits\n",
		res.Workload, res.Scheme, res.Cycles, res.TotalNoCFlits())
}

// Comparing two schemes on the same workload.
func ExampleRunWorkload() {
	wl := pushmulticast.Workload{
		Name: "pingpong",
		Build: func(core, cores int, _ pushmulticast.Scale) pushmulticast.Stream {
			i := 0
			return pushmulticast.StreamFunc(func() pushmulticast.Op {
				if i >= 100 {
					return pushmulticast.Op{Kind: pushmulticast.OpEnd}
				}
				i++
				return pushmulticast.Op{Kind: pushmulticast.OpLoad,
					Addr: pushmulticast.SharedBase + uint64(i%8)*64}
			})
		},
	}
	cfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).
		WithScheme(pushmulticast.Baseline())
	if _, err := pushmulticast.RunWorkload(cfg, wl, pushmulticast.ScaleTiny); err != nil {
		log.Fatal(err)
	}
	fmt.Println("custom workloads plug into the same Run machinery")
	// Output: custom workloads plug into the same Run machinery
}

// Regenerating one of the paper's figures programmatically.
func ExampleFig11() {
	f, err := pushmulticast.Fig11(pushmulticast.ExpOptions{
		Scale:     pushmulticast.ScaleTiny,
		Workloads: []string{"cachebw"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schemes compared: %d\n", len(f.Schemes))
	// Output: schemes compared: 4
}
