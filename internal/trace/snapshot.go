package trace

import (
	"fmt"

	"pushmulticast/internal/snapshot"
)

// SaveState serializes the tracer: running hash, event count, and the
// retained ring (written oldest-first, so two tracers in the same state
// serialize identically regardless of where their ring write positions
// sit). Shard buffers must be empty — the drain monitor is registered last
// and woken on every emission, so between engine Steps every emitted event
// has already been folded into the ring and hash; a non-empty shard means
// the snapshot point is not a cycle barrier.
func (t *Tracer) SaveState(w *snapshot.Writer) {
	for _, s := range t.shards {
		if len(s.buf) != 0 {
			panic("trace: SaveState with undrained shard")
		}
	}
	w.Section("trace.tracer")
	w.U64(t.hash)
	w.U64(t.count)
	w.Int(cap(t.ring))
	tail := t.Tail()
	w.Int(len(tail))
	for _, e := range tail {
		saveEvent(w, e)
	}
}

// LoadState restores a tracer saved by SaveState into this fresh tracer.
// The ring is rebuilt by replaying the tail oldest-first, which restores
// both contents and write position.
func (t *Tracer) LoadState(r *snapshot.Reader) error {
	r.Section("trace.tracer")
	t.hash = r.U64()
	t.count = r.U64()
	ringCap := r.Int()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if ringCap != cap(t.ring) {
		return fmt.Errorf("%w: snapshot trace ring holds %d events, this build retains %d",
			snapshot.ErrMismatch, ringCap, cap(t.ring))
	}
	t.ring = t.ring[:0]
	t.next = 0
	for i := 0; i < n; i++ {
		e := loadEvent(r)
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, e)
		} else {
			t.ring[t.next] = e
			t.next = (t.next + 1) % len(t.ring)
		}
	}
	return r.Err()
}

func saveEvent(w *snapshot.Writer, e Event) {
	w.U64(e.Cycle)
	w.U64(e.Addr)
	w.U64(e.ID)
	for _, x := range e.Aux {
		w.U64(x)
	}
	w.U8(uint8(e.Kind))
	w.U32(uint32(e.Node))
	w.U32(uint32(e.A))
	w.U32(uint32(e.B))
}

func loadEvent(r *snapshot.Reader) Event {
	var e Event
	e.Cycle = r.U64()
	e.Addr = r.U64()
	e.ID = r.U64()
	for i := range e.Aux {
		e.Aux[i] = r.U64()
	}
	e.Kind = Kind(r.U8())
	e.Node = int32(r.U32())
	e.A = int32(r.U32())
	e.B = int32(r.U32())
	return e
}
