// Package trace provides a bounded, structured event trace for the
// simulator: components emit fixed-size events into per-component shards,
// and a single drain point (the invariant-checker monitor) flattens the
// shards into a bounded ring buffer plus a running hash of the full event
// history.
//
// The design has two consumers:
//
//   - Debugging: on a checker violation, watchdog deadlock, or panic, the
//     last N events are dumped, turning "cycle 21262 differs" into a
//     replayable causal history.
//   - Equivalence: the running hash covers *every* event ever emitted, in a
//     deterministic order, so comparing (hash, count) across the serial,
//     dense, and parallel kernels compares full causal histories rather
//     than end-state counters.
//
// Determinism contract: each shard is written by exactly one component
// (one lane), shards are drained in creation order, and the monitor that
// drains them is woken on every emission and registered last — so it runs
// after all emitters within the same cycle, in every kernel mode. The
// flattened order is therefore (cycle, shard creation order, intra-shard
// program order), identical across serial, dense, and parallel runs.
package trace

import (
	"fmt"
	"io"

	"pushmulticast/internal/sim"
)

// Kind identifies the type of a traced event.
type Kind uint8

// Event kinds. The A/B/Aux fields are kind-specific; see the comments.
const (
	// KInject: packet injected at an NI. Node = source tile, A = dest unit,
	// B = flag bits, Aux = destination set.
	KInject Kind = iota
	// KDeliver: packet delivered by an NI to its local endpoint. Node =
	// delivering tile, A = dest unit, B = flag bits, Aux = destination set
	// at injection.
	KDeliver
	// KFilterReg: filter entry registered at a router for a passing request.
	// Node = router, A = output port, B = input port.
	KFilterReg
	// KFilterClear: lazy de-registration scheduled after a push tail flit.
	// Node = router, A = output port, B = input port.
	KFilterClear
	// KFilterHit: in-flight request squashed by a router filter entry.
	// Node = router, A = requester tile.
	KFilterHit
	// KFilterStationary: request squashed by the stationary (local-port)
	// filter. Node = router, A = requester tile.
	KFilterStationary
	// KFilterHome: request pruned at the home LLC slice because a covering
	// push is queued or in flight. Node = home tile, A = requester tile.
	KFilterHome
	// KPushTrigger: home LLC slice triggered a push. Node = home tile,
	// A = requester tile (or -1), Aux = destination set.
	KPushTrigger
	// KMemRead: memory controller performed a line read. Node = controller
	// tile, A = requester tile.
	KMemRead
	// KMemWrite: memory controller performed a line writeback. Node =
	// controller tile, A = requester tile.
	KMemWrite
	// KMsgDrop: a MsgDrop fault discarded a packet at the receiving NI.
	// Node = receiving tile, A = source tile, Aux = transport stream key
	// (seq | stream<<32 | src<<40).
	KMsgDrop
	// KMsgCorrupt: checksum verification failed under a MsgCorrupt fault;
	// the packet was discarded like a drop. Fields as KMsgDrop.
	KMsgCorrupt
	// KMsgDup: receiver dedup suppressed an already-delivered arrival.
	// Fields as KMsgDrop.
	KMsgDup
	// KMsgRecover: a previously dropped/corrupted transport stream key was
	// delivered (or dedup-suppressed) at the same NI — the loss is healed.
	// Fields as KMsgDrop.
	KMsgRecover
	// KRetransmit: sender NI re-injected an unacked window entry after a
	// timeout. Node = sender tile, ID = the retransmit copy's packet ID,
	// Aux = transport stream key, A = retry count.
	KRetransmit

	numKinds
)

var kindNames = [numKinds]string{
	KInject:          "inject",
	KDeliver:         "deliver",
	KFilterReg:       "filter-reg",
	KFilterClear:     "filter-clear",
	KFilterHit:       "filter-hit",
	KFilterStationary: "filter-stationary",
	KFilterHome:      "filter-home",
	KPushTrigger:     "push-trigger",
	KMemRead:         "mem-read",
	KMemWrite:        "mem-write",
	KMsgDrop:         "msg-drop",
	KMsgCorrupt:      "msg-corrupt",
	KMsgDup:          "msg-dup",
	KMsgRecover:      "msg-recover",
	KRetransmit:      "retransmit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Flag bits packed into Event.B for KInject/KDeliver.
const (
	FlagPush       = 1 << iota // packet carries speculative push data
	FlagInv                    // packet is an invalidation
	FlagFilterable             // packet is a filterable request (GetS)
)

// Aux is the kind-specific wide payload of an event. Destination sets need
// four words to cover 256-node meshes (it converts directly to and from
// noc.DestSet); scalar payloads such as transport stream keys live in word 0
// (Scalar) with the rest zero.
type Aux [4]uint64

// Scalar returns word 0, the whole value for scalar-payload kinds.
func (a Aux) Scalar() uint64 { return a[0] }

// String renders the payload compactly: just word 0 unless the high words
// are populated.
func (a Aux) String() string {
	if a[1] == 0 && a[2] == 0 && a[3] == 0 {
		return fmt.Sprintf("%#x", a[0])
	}
	return fmt.Sprintf("%#x:%#x:%#x:%#x", a[3], a[2], a[1], a[0])
}

// Event is one fixed-size trace record.
type Event struct {
	Cycle uint64 // commit cycle of the emission
	Addr  uint64 // line address, when meaningful
	ID    uint64 // packet ID (shared by multicast replicas), when meaningful
	Aux   Aux    // kind-specific (destination sets, transport stream keys)
	Kind  Kind
	Node  int32 // emitting component's tile / router node
	A     int32 // kind-specific
	B     int32 // kind-specific
}

// String renders the event for trace dumps.
func (e Event) String() string {
	return fmt.Sprintf("cycle=%-8d %-17s node=%-3d addr=%#x a=%d b=%d id=%#x aux=%s",
		e.Cycle, e.Kind, e.Node, e.Addr, e.A, e.B, e.ID, e.Aux)
}

// Shard is a single-writer event buffer. Each traced component owns one
// shard and appends to it only from its own lane, so no emission ever
// races another. A nil *Shard is valid and makes Emit a no-op — tracing
// is disabled by simply not installing shards.
type Shard struct {
	tr  *Tracer
	buf []Event
}

// Emit records one event and wakes the drain monitor so the event is
// folded into the global history this same cycle.
func (s *Shard) Emit(e Event) {
	if s == nil {
		return
	}
	s.buf = append(s.buf, e)
	s.tr.wakeMonitor()
}

// Tracer owns the shards, the bounded ring of recent events, and the
// running history hash.
type Tracer struct {
	shards []*Shard
	h      *sim.Handle // drain monitor's handle; woken on every emission
	ring   []Event
	next   int // ring write position
	count  uint64
	hash   uint64
}

// New returns a tracer retaining the last ringN events. ringN <= 0 keeps
// no ring (hash and count still accumulate).
func New(ringN int) *Tracer {
	t := &Tracer{hash: fnvOffset}
	if ringN > 0 {
		t.ring = make([]Event, 0, ringN)
	}
	return t
}

// NewShard allocates a new single-writer shard. Creation order is the
// drain order, so callers must create shards in a deterministic order.
func (t *Tracer) NewShard() *Shard {
	s := &Shard{tr: t}
	t.shards = append(t.shards, s)
	return s
}

// SetHandle installs the drain monitor's scheduler handle; every Emit
// wakes it.
func (t *Tracer) SetHandle(h *sim.Handle) { t.h = h }

func (t *Tracer) wakeMonitor() {
	if t.h != nil {
		t.h.Wake()
	}
}

// Drain flattens all shard buffers in creation order into the ring and
// running hash, invoking fn (when non-nil) on each event. Shard buffers
// keep their capacity.
func (t *Tracer) Drain(fn func(Event)) {
	for _, s := range t.shards {
		for i := range s.buf {
			e := s.buf[i]
			t.record(e)
			if fn != nil {
				fn(e)
			}
		}
		s.buf = s.buf[:0]
	}
}

// FNV-1a 64-bit.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (t *Tracer) mix(x uint64) {
	h := t.hash
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	t.hash = h
}

func (t *Tracer) record(e Event) {
	t.count++
	t.mix(e.Cycle)
	t.mix(e.Addr)
	t.mix(e.ID)
	for _, w := range e.Aux {
		t.mix(w)
	}
	t.mix(uint64(e.Kind)<<32 | uint64(uint32(e.Node)))
	t.mix(uint64(uint32(e.A))<<32 | uint64(uint32(e.B)))
	if cap(t.ring) == 0 {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
}

// Hash returns the running FNV-1a hash of every event drained so far.
func (t *Tracer) Hash() uint64 { return t.hash }

// Events returns the number of events drained so far.
func (t *Tracer) Events() uint64 { return t.count }

// Tail returns the retained events, oldest first.
func (t *Tracer) Tail() []Event {
	if len(t.ring) < cap(t.ring) {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes the retained tail, oldest first, to w.
func (t *Tracer) Dump(w io.Writer) {
	tail := t.Tail()
	fmt.Fprintf(w, "--- event trace tail: last %d of %d events ---\n", len(tail), t.count)
	for _, e := range tail {
		fmt.Fprintln(w, e.String())
	}
	fmt.Fprintf(w, "--- end trace (history hash %#x) ---\n", t.hash)
}
