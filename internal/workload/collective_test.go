package workload

import (
	"strings"
	"testing"
)

// collect drains one collective core stream and splits it into loads and
// stores (prologue and idle phases emit only OpWork, so participants' sharing
// structure is fully visible in these two sets).
func collect(t *testing.T, wl Workload, core int) (loads, stores []uint64) {
	t.Helper()
	for _, op := range drain(t, wl.Build(core, 16, ScaleTiny), 2_000_000) {
		switch op.Kind {
		case OpLoad:
			loads = append(loads, op.Addr)
		case OpStore:
			stores = append(stores, op.Addr)
		}
	}
	return loads, stores
}

// inBuf reports whether addr falls inside collective buffer `buf` for the
// given payload size.
func inBuf(addr uint64, buf, payloadLines int) bool {
	base := colBase(buf, payloadLines)
	return addr >= base && addr < base+uint64(payloadLines)*LineBytes
}

func TestCollectivesRegistered(t *testing.T) {
	cols := Collectives()
	if len(cols) != 4 {
		t.Fatalf("Collectives has %d entries, want 4", len(cols))
	}
	want := []string{"allreduce", "broadcast", "reducescatter", "prodcons"}
	for i, wl := range cols {
		if wl.Name != want[i] {
			t.Errorf("collective %d named %q, want %q", i, wl.Name, want[i])
		}
		if wl.Description == "" || wl.Class == "" || wl.Build == nil {
			t.Errorf("%s: incomplete metadata", wl.Name)
		}
		if wl.Validate == nil {
			t.Errorf("%s: no Validate hook — degenerate params would build silently", wl.Name)
		}
		if wl.Params == "" {
			t.Errorf("%s: empty Params signature — memo identity would collide", wl.Name)
		}
		got, err := ByName(wl.Name)
		if err != nil || got.Name != wl.Name {
			t.Errorf("ByName(%q) = %v, %v", wl.Name, got.Name, err)
		}
	}
	// Registry stays the paper's Table II set: collectives ride in All only.
	for _, wl := range Registry() {
		for _, c := range want {
			if wl.Name == c {
				t.Errorf("collective %q leaked into the Table II registry", c)
			}
		}
	}
}

// TestByNameUnknownListsSortedNames pins the ByName miss diagnostic: one
// line, naming the unknown workload and every valid name in sorted order —
// and it must not degrade however many times it is asked (the index is built
// once, not rebuilt per miss).
func TestByNameUnknownListsSortedNames(t *testing.T) {
	cases := []struct {
		name string
		ask  string
	}{
		{"typo of a collective", "allredcue"},
		{"typo of a table II entry", "cacheBW"},
		{"empty name", ""},
		{"repeat miss", "allredcue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ByName(tc.ask)
			if err == nil {
				t.Fatalf("ByName(%q) accepted an unknown workload", tc.ask)
			}
			msg := err.Error()
			if strings.Contains(msg, "\n") {
				t.Fatalf("diagnostic is not a single line: %q", msg)
			}
			if !strings.Contains(msg, "valid:") {
				t.Fatalf("diagnostic %q does not list the valid names", msg)
			}
			list := msg[strings.Index(msg, "valid:")+len("valid:"):]
			list = strings.TrimSuffix(strings.TrimSpace(list), ")")
			names := strings.Split(list, ", ")
			if len(names) != len(Names()) {
				t.Fatalf("diagnostic lists %d names, want %d: %q", len(names), len(Names()), msg)
			}
			for i := 1; i < len(names); i++ {
				if names[i-1] >= names[i] {
					t.Fatalf("diagnostic names not sorted: %q before %q", names[i-1], names[i])
				}
			}
			for _, want := range []string{"allreduce", "cachebw", "reducescatter"} {
				found := false
				for _, n := range names {
					if n == want {
						found = true
					}
				}
				if !found {
					t.Fatalf("diagnostic %q missing workload %q", msg, want)
				}
			}
		})
	}
}

func TestCollectiveStreamsTerminateAndAlign(t *testing.T) {
	for _, wl := range Collectives() {
		for core := 0; core < 16; core++ {
			ops := drain(t, wl.Build(core, 16, ScaleTiny), 2_000_000)
			if len(ops) == 0 {
				t.Errorf("%s core %d: empty stream", wl.Name, core)
			}
			for _, op := range ops {
				if (op.Kind == OpLoad || op.Kind == OpStore) && op.Addr%LineBytes != 0 {
					t.Fatalf("%s core %d: unaligned address %#x", wl.Name, core, op.Addr)
				}
			}
		}
	}
}

func TestCollectiveStreamsDeterministic(t *testing.T) {
	for _, wl := range Collectives() {
		a := drain(t, wl.Build(3, 16, ScaleTiny), 2_000_000)
		b := drain(t, wl.Build(3, 16, ScaleTiny), 2_000_000)
		if len(a) != len(b) {
			t.Errorf("%s: lengths differ %d/%d", wl.Name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: op %d differs: %+v vs %+v", wl.Name, i, a[i], b[i])
				break
			}
		}
	}
}

// TestCollectiveBarrierParity checks the global-barrier contract for both
// full participation and partial participation (idle cores must still reach
// every barrier), across parameter variants.
func TestCollectiveBarrierParity(t *testing.T) {
	variants := []struct {
		label string
		build func() []Workload
	}{
		{"defaults", Collectives},
		{"eight sharers", func() []Workload {
			return []Workload{
				AllReduce(CollectiveParams{Sharers: 8}),
				Broadcast(CollectiveParams{Sharers: 8}),
				ReduceScatter(CollectiveParams{Sharers: 8}),
				ProdCons(CollectiveParams{Sharers: 8}),
			}
		}},
		{"alternate fanout", func() []Workload {
			return []Workload{
				AllReduce(CollectiveParams{Fanout: 2}),
				Broadcast(CollectiveParams{Fanout: 2}),
				ProdCons(CollectiveParams{Sharers: 12, Fanout: 2}),
			}
		}},
	}
	for _, v := range variants {
		for _, wl := range v.build() {
			counts := map[int]int{}
			for core := 0; core < 16; core++ {
				n := 0
				for _, op := range drain(t, wl.Build(core, 16, ScaleTiny), 2_000_000) {
					if op.Kind == OpBarrier {
						n++
					}
				}
				counts[n]++
			}
			if len(counts) != 1 {
				t.Errorf("%s/%s: cores disagree on barrier count: %v", v.label, wl.Name, counts)
			}
		}
	}
}

// TestCollectiveNonParticipantsIdle: cores outside the sharer set emit no
// memory traffic at all — they only pace the barriers.
func TestCollectiveNonParticipantsIdle(t *testing.T) {
	for _, wl := range []Workload{
		AllReduce(CollectiveParams{Sharers: 8}),
		Broadcast(CollectiveParams{Sharers: 8}),
		ProdCons(CollectiveParams{Sharers: 8}),
	} {
		loads, stores := collect(t, wl, 12)
		if len(loads) != 0 || len(stores) != 0 {
			t.Errorf("%s: non-participant core 12 issued %d loads / %d stores",
				wl.Name, len(loads), len(stores))
		}
	}
}

// TestCollectiveValidate is the table-driven error-text regression for the
// degenerate-parameter sweep: every bad combination yields a one-line
// diagnostic naming the offending knob; zero values are always valid.
func TestCollectiveValidate(t *testing.T) {
	build := map[string]func(CollectiveParams) Workload{
		"allreduce": AllReduce, "broadcast": Broadcast,
		"reducescatter": ReduceScatter, "prodcons": ProdCons,
	}
	cases := []struct {
		name  string
		kind  string
		p     CollectiveParams
		cores int
		want  string // "" = must validate cleanly
	}{
		{"allreduce defaults", "allreduce", CollectiveParams{}, 16, ""},
		{"broadcast defaults", "broadcast", CollectiveParams{}, 16, ""},
		{"reducescatter defaults", "reducescatter", CollectiveParams{}, 16, ""},
		{"prodcons defaults", "prodcons", CollectiveParams{}, 16, ""},
		{"explicit consistent params", "allreduce",
			CollectiveParams{Sharers: 8, Fanout: 2, ChunkLines: 8, PayloadLines: 256, Iters: 2}, 16, ""},
		{"negative sharers", "allreduce", CollectiveParams{Sharers: -1}, 16, "Sharers -1 is negative"},
		{"negative fanout", "broadcast", CollectiveParams{Fanout: -4}, 16, "Fanout -4 is negative"},
		{"negative chunk", "prodcons", CollectiveParams{ChunkLines: -16}, 16, "ChunkLines -16 is negative"},
		{"negative payload", "reducescatter", CollectiveParams{PayloadLines: -256}, 16, "PayloadLines -256 is negative"},
		{"zero-iteration loop", "allreduce", CollectiveParams{Iters: -3}, 16, "Iters -3 is negative"},
		{"sharers exceed cores", "allreduce", CollectiveParams{Sharers: 32}, 16, "32 sharers exceed the 16-core machine"},
		{"one sharer cannot ring", "allreduce", CollectiveParams{Sharers: 1}, 16, "below the minimum 2"},
		{"broadcast radix one", "broadcast", CollectiveParams{Fanout: 1}, 16, "must be at least 2"},
		{"too many ring channels", "allreduce", CollectiveParams{Sharers: 4, Fanout: 4}, 16, "ring channels"},
		{"prodcons group mismatch", "prodcons", CollectiveParams{Sharers: 16, Fanout: 2}, 16,
			"do not split into groups of 3"},
		{"prodcons too few for one group", "prodcons", CollectiveParams{Sharers: 2}, 16, "below the minimum 4"},
		{"chunk does not divide payload", "broadcast", CollectiveParams{ChunkLines: 7, PayloadLines: 100}, 16,
			"chunk size 7 lines does not divide the 100-line payload"},
		{"chunks do not distribute across sharers", "allreduce",
			CollectiveParams{Sharers: 16, ChunkLines: 16, PayloadLines: 16 * 8}, 16, "do not distribute across 16 sharers"},
		{"chunk groups do not split across channels", "reducescatter",
			CollectiveParams{Sharers: 8, Fanout: 3, ChunkLines: 16, PayloadLines: 16 * 8 * 4}, 16,
			"do not split across 3 ring channels"},
		{"small machine still works", "prodcons", CollectiveParams{Fanout: 3}, 4, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := build[tc.kind](tc.p).Validate(tc.cores)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid params rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("degenerate params validated cleanly")
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not a single line: %q", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCollectiveBuildPanicsUnvalidated: Build must fail loudly, not emit a
// silently empty stream, if an entry point skipped Validate.
func TestCollectiveBuildPanicsUnvalidated(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build with unvalidated degenerate params did not panic")
		}
		if !strings.Contains(r.(string), "unvalidated") {
			t.Fatalf("panic message %q does not explain the contract", r)
		}
	}()
	AllReduce(CollectiveParams{Sharers: 32}).Build(0, 16, ScaleTiny)
}

// TestSegRandRejectsDegenerateSpan: the segment machinery itself refuses a
// zero-span random segment instead of spinning on an empty range.
func TestSegRandRejectsDegenerateSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("segRand with span 0 did not panic")
		}
	}()
	newSegStream([]segment{{kind: segRand, base: sharedBase, span: 0, n: 5}}).Next()
}

// TestAllReduceRingNeighborSharing: with one ring channel, rank 5 reads only
// its ring predecessor's buffer and writes only its own — the neighbor-only
// traffic that makes rings unicast (and honestly push-free).
func TestAllReduceRingNeighborSharing(t *testing.T) {
	p, err := CollectiveParams{}.resolve(colAllReduce, 16, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	loads, stores := collect(t, AllReduce(CollectiveParams{}), 5)
	if len(loads) == 0 || len(stores) == 0 {
		t.Fatal("rank 5 issued no traffic")
	}
	for _, a := range loads {
		if !inBuf(a, 4, p.payload) {
			t.Fatalf("allreduce rank 5 load %#x outside predecessor buffer 4", a)
		}
	}
	for _, a := range stores {
		if !inBuf(a, 5, p.payload) {
			t.Fatalf("allreduce rank 5 store %#x outside own buffer", a)
		}
	}
}

// TestBroadcastTreeSharing: children read exactly their parent's buffer —
// internal ranks relay into their own, leaves write nothing.
func TestBroadcastTreeSharing(t *testing.T) {
	p, err := CollectiveParams{}.resolve(colBroadcast, 16, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 3 is internal (children 13..15 at radix 4): reads root, relays.
	loads, stores := collect(t, Broadcast(CollectiveParams{}), 3)
	if len(loads) == 0 || len(stores) == 0 {
		t.Fatal("internal rank 3 issued no traffic")
	}
	for _, a := range loads {
		if !inBuf(a, 0, p.payload) {
			t.Fatalf("broadcast rank 3 load %#x outside parent (root) buffer", a)
		}
	}
	for _, a := range stores {
		if !inBuf(a, 3, p.payload) {
			t.Fatalf("broadcast rank 3 store %#x outside own relay buffer", a)
		}
	}
	// Rank 10 is a leaf (parent 2): pure consumer.
	loads, stores = collect(t, Broadcast(CollectiveParams{}), 10)
	if len(loads) == 0 {
		t.Fatal("leaf rank 10 issued no loads")
	}
	if len(stores) != 0 {
		t.Fatalf("leaf rank 10 issued %d stores; leaves must only consume", len(stores))
	}
	for _, a := range loads {
		if !inBuf(a, 2, p.payload) {
			t.Fatalf("broadcast leaf 10 load %#x outside parent buffer 2", a)
		}
	}
}

// TestProdConsGroupSharing: producers only write their group's double
// buffers, consumers only read them, and groups never touch each other's
// queues.
func TestProdConsGroupSharing(t *testing.T) {
	p, err := CollectiveParams{}.resolve(colProdCons, 16, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	groupBuf := func(a uint64, group int) bool {
		return inBuf(a, group*2, p.payload) || inBuf(a, group*2+1, p.payload)
	}
	// Rank 0: group 0's producer.
	loads, stores := collect(t, ProdCons(CollectiveParams{}), 0)
	if len(loads) != 0 {
		t.Fatalf("producer rank 0 issued %d loads; producers only fill", len(loads))
	}
	if len(stores) == 0 {
		t.Fatal("producer rank 0 issued no stores")
	}
	for _, a := range stores {
		if !groupBuf(a, 0) {
			t.Fatalf("prodcons producer store %#x outside group 0's queue", a)
		}
	}
	// Rank 6: a consumer in group 1.
	loads, stores = collect(t, ProdCons(CollectiveParams{}), 6)
	if len(stores) != 0 {
		t.Fatalf("consumer rank 6 issued %d stores; consumers only read", len(stores))
	}
	if len(loads) == 0 {
		t.Fatal("consumer rank 6 issued no loads")
	}
	for _, a := range loads {
		if !groupBuf(a, 1) {
			t.Fatalf("prodcons consumer load %#x outside group 1's queue", a)
		}
		if groupBuf(a, 0) {
			t.Fatalf("prodcons consumer load %#x leaked into group 0's queue", a)
		}
	}
}

// TestCollectiveParamsSignature: the memo identity distinguishes every knob.
func TestCollectiveParamsSignature(t *testing.T) {
	base := CollectiveParams{}
	variants := []CollectiveParams{
		{Sharers: 8}, {Fanout: 2}, {ChunkLines: 8}, {PayloadLines: 512}, {Iters: 7},
	}
	seen := map[string]bool{base.sig(): true}
	for _, v := range variants {
		if seen[v.sig()] {
			t.Errorf("params %+v collide on signature %q", v, v.sig())
		}
		seen[v.sig()] = true
	}
	if Broadcast(CollectiveParams{Fanout: 2}).Params == Broadcast(CollectiveParams{Fanout: 4}).Params {
		t.Error("same-name collectives with different fanout share a Params signature")
	}
}
