package workload

// The generators compose each core's stream out of segments: lazily expanded
// loops over address ranges. This keeps streams deterministic and memory-
// cheap (a few dozen segment descriptors expand into millions of ops).

type segKind uint8

const (
	// segWork emits one OpWork of n instructions.
	segWork segKind = iota
	// segScan walks `lines` cache lines from base with the given stride,
	// emitting workPer instructions before each access. When base2 is set,
	// every access is followed by a second access into the base2 region
	// (wrapping at span2), modelling dual-stream kernels like
	// matrix-vector.
	segScan
	// segRand emits n accesses to pseudo-random lines within span lines of
	// base.
	segRand
	// segBarrier emits OpBarrier.
	segBarrier
)

type segment struct {
	kind    segKind
	base    uint64
	lines   int
	stride  int // in lines; defaults to 1
	store   bool
	workPer int
	n       int // segWork instruction count / segRand access count

	base2  uint64 // secondary interleaved stream (0 = none)
	span2  int    // secondary stream wrap, in lines
	store2 bool

	seed uint64 // segRand
	span int    // segRand span in lines

	// skipDenom, when nonzero, makes segScan skip pseudo-randomly chosen
	// lines (one in skipDenom), keyed by skipSeed: an ordered traversal
	// with partial per-pass coverage (backprop's weight activity pattern).
	skipDenom int
	skipSeed  uint64
}

// skips reports whether a scan segment skips line i.
func (s *segment) skips(i int) bool {
	if s.skipDenom == 0 {
		return false
	}
	h := (uint64(i)+s.skipSeed)*0x9e3779b97f4a7c15 + 1
	return (h>>33)%uint64(s.skipDenom) == 0
}

// segStream lazily expands a segment list into ops.
type segStream struct {
	segs []segment
	si   int

	i       int  // index within current segment
	didWork bool // workPer emitted for access i
	didA    bool // primary access emitted (interleaved scans)
	rng     lcg
}

func newSegStream(segs []segment) *segStream { return &segStream{segs: segs} }

// Next implements Stream.
func (s *segStream) Next() Op {
	for s.si < len(s.segs) {
		seg := &s.segs[s.si]
		switch seg.kind {
		case segWork:
			s.advance()
			return Op{Kind: OpWork, N: seg.n}
		case segBarrier:
			s.advance()
			return Op{Kind: OpBarrier}
		case segScan:
			for s.i < seg.lines && !s.didWork && !s.didA && seg.skips(s.i) {
				s.i++
			}
			if s.i >= seg.lines {
				s.advance()
				continue
			}
			if seg.workPer > 0 && !s.didWork {
				s.didWork = true
				return Op{Kind: OpWork, N: seg.workPer}
			}
			stride := seg.stride
			if stride == 0 {
				stride = 1
			}
			if !s.didA {
				s.didA = true
				addr := seg.base + uint64(s.i*stride)*LineBytes
				kind := OpLoad
				if seg.store {
					kind = OpStore
				}
				if seg.base2 == 0 {
					s.step()
				}
				return Op{Kind: kind, Addr: addr}
			}
			// Secondary interleaved access.
			addr := seg.base2 + uint64(s.i%seg.span2)*LineBytes
			kind := OpLoad
			if seg.store2 {
				kind = OpStore
			}
			s.step()
			return Op{Kind: kind, Addr: addr}
		case segRand:
			if s.i >= seg.n {
				s.advance()
				continue
			}
			if seg.workPer > 0 && !s.didWork {
				s.didWork = true
				return Op{Kind: OpWork, N: seg.workPer}
			}
			if seg.span <= 0 {
				// A zero span would be an integer divide-by-zero below;
				// surface the degenerate parameter instead of a runtime panic
				// deep in the kernel.
				panic("workload: segRand span must be positive (degenerate generator parameters)")
			}
			if s.rng == 0 {
				s.rng = lcg(seg.seed | 1)
			}
			line := s.rng.next() % uint64(seg.span)
			s.step()
			kind := OpLoad
			if seg.store {
				kind = OpStore
			}
			return Op{Kind: kind, Addr: seg.base + line*LineBytes}
		}
	}
	return Op{Kind: OpEnd}
}

// step finishes one access iteration within a segment.
func (s *segStream) step() {
	s.i++
	s.didWork = false
	s.didA = false
}

// advance moves to the next segment.
func (s *segStream) advance() {
	s.si++
	s.i = 0
	s.didWork = false
	s.didA = false
	s.rng = 0
}
