package workload

// Per-workload generators. Sizing note: every generator is parameterized by
// Scale; quick-scale inputs are meant to run against config.System.Scaled
// caches so the paper's working-set-to-cache-size ratios (the source of the
// capacity-miss behaviour everything hinges on) are preserved at a fraction
// of the simulation cost. Line counts below are cache lines (64 B).

// pick returns the per-scale value.
func pick(sc Scale, tiny, quick, full int) int {
	switch sc {
	case ScaleTiny:
		return tiny
	case ScaleQuick:
		return quick
	default:
		return full
	}
}

// prologue staggers thread starts, modelling OpenMP spawn order and the
// execution drift the paper's Fig 4 characterizes (consecutive sharers
// access the same line ~1000 cycles apart). Perfectly lock-stepped streams
// would make every sharer request every line concurrently, which neither
// the real machines nor the paper's simulations exhibit.
func prologue(core int, sc Scale) segment {
	return segment{kind: segWork, n: 1 + core*pick(sc, 240, 480, 960)}
}

// CacheBW is the cachebw microbenchmark [28]: every thread scans the same
// shared array in the same order, repeatedly. Highest sharing degree (all
// cores), high load, the paper's best case (up to 60% traffic reduction
// under OrdPush).
func CacheBW() Workload {
	return Workload{
		Name:        "cachebw",
		Description: "multi-threaded shared array scanning",
		Class:       "high sharing / high load",
		Build: func(core, cores int, sc Scale) Stream {
			lines := pick(sc, 768, 3072, 131072)
			iters := pick(sc, 3, 5, 4)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < iters; it++ {
				segs = append(segs,
					segment{kind: segScan, base: sharedBase, lines: lines, workPer: 1},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// Multilevel is the multilevel microbenchmark [28]: four level buffers, each
// scanned by a distinct quarter of the cores. Sharing degree cores/4.
func Multilevel() Workload {
	return Workload{
		Name:        "multilevel",
		Description: "multi-level buffers scanned by distinct thread sets",
		Class:       "high sharing / high load",
		Build: func(core, cores int, sc Scale) Stream {
			levelLines := pick(sc, 384, 2048, 32768)
			iters := pick(sc, 3, 5, 4)
			level := core % 4
			base := sharedBase + uint64(level*levelLines)*LineBytes
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < iters; it++ {
				segs = append(segs,
					segment{kind: segScan, base: base, lines: levelLines, workPer: 1},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// Backprop models Rodinia's neural-network training kernel: shared weight
// matrix re-read every epoch by all cores, private activation updates, and
// probabilistic per-epoch coverage of the weights, which makes a sizable
// fraction of pushes land unused (the Fig 12 cache-pollution case).
func Backprop() Workload {
	return Workload{
		Name:        "backprop",
		Description: "NN training: shared weights, private activations",
		Class:       "high sharing / medium-high load, imperfect push accuracy",
		Build: func(core, cores int, sc Scale) Stream {
			weightLines := pick(sc, 512, 1280, 32768)
			actLines := pick(sc, 64, 384, 8192)
			iters := pick(sc, 3, 5, 4)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < iters; it++ {
				segs = append(segs,
					// Ordered weight traversal with per-core random skips
					// (one line in six inactive per pass): every core
					// shares every line eventually, but per-epoch coverage
					// is partial, so a fraction of speculative pushes land
					// unused -- the Fig 12 pollution case.
					segment{kind: segScan, base: sharedBase, lines: weightLines,
						workPer: 1, skipDenom: 6,
						skipSeed: uint64(core)*977 + uint64(it)*31 + 7},
					segment{kind: segScan, base: privBase(core), lines: actLines,
						store: true, workPer: 1},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// Particlefilter models Rodinia's particle filter: every core re-reads the
// shared frame each iteration with moderate compute; near-perfect push
// accuracy with full sharing degree.
func Particlefilter() Workload {
	return Workload{
		Name:        "particlefilter",
		Description: "statistical estimation over a shared frame",
		Class:       "high sharing / medium load",
		Build: func(core, cores int, sc Scale) Stream {
			frameLines := pick(sc, 640, 2560, 65536)
			particleLines := pick(sc, 32, 256, 4096)
			iters := pick(sc, 3, 5, 4)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < iters; it++ {
				segs = append(segs,
					segment{kind: segScan, base: sharedBase, lines: frameLines, workPer: 8},
					segment{kind: segScan, base: privBase(core), lines: particleLines,
						store: true, workPer: 2},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// Conv3D models the 3D convolution kernel [58]: the shared input volume is
// re-read once per output channel; private outputs are written.
func Conv3D() Workload {
	return Workload{
		Name:        "conv3d",
		Description: "3D convolution: shared input re-read per out-channel",
		Class:       "high sharing / medium-high load",
		Build: func(core, cores int, sc Scale) Stream {
			inputLines := pick(sc, 512, 2048, 49152)
			outLines := pick(sc, 32, 192, 2048)
			channels := pick(sc, 3, 6, 8)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for ch := 0; ch < channels; ch++ {
				segs = append(segs,
					segment{kind: segScan, base: sharedBase, lines: inputLines, workPer: 5},
					segment{kind: segScan, base: privBase(core), lines: outLines,
						store: true, workPer: 1},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// MLP models the multilayer-perceptron kernel [29]: shared weight layers
// with a heavy compute-per-access ratio; low network load makes it latency-
// rather than bandwidth-bound (the case where baseline prefetching shines).
func MLP() Workload {
	return Workload{
		Name:        "mlp",
		Description: "multilayer perceptron, shared weights, compute-heavy",
		Class:       "high sharing / low load",
		Build: func(core, cores int, sc Scale) Stream {
			layerLines := pick(sc, 512, 2048, 49152)
			layers := pick(sc, 3, 5, 6)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for l := 0; l < layers; l++ {
				segs = append(segs,
					segment{kind: segScan, base: sharedBase, lines: layerLines, workPer: 96},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// MV models matrix-vector multiplication [38]: each core streams its private
// matrix partition (the dominant traffic) while re-reading the shared input
// vector; low-to-medium sharing with the highest network load.
func MV() Workload {
	return Workload{
		Name:        "mv",
		Description: "matrix-vector multiply: private rows x shared vector",
		Class:       "low-medium sharing / high load",
		Build: func(core, cores int, sc Scale) Stream {
			vecLines := pick(sc, 320, 1024, 12288)
			rows := pick(sc, 3, 6, 8)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for r := 0; r < rows; r++ {
				rowBase := privBase(core) + uint64(r*vecLines)*LineBytes
				segs = append(segs,
					// Interleaved: matrix element then vector element.
					segment{kind: segScan, base: rowBase, lines: vecLines, workPer: 1,
						base2: sharedBase, span2: vecLines},
				)
			}
			segs = append(segs, segment{kind: segBarrier})
			return newSegStream(segs)
		},
	}
}

// LUD models Rodinia's lower-upper decomposition: a shared pivot panel read
// by all cores each step plus private trailing-block updates.
func LUD() Workload {
	return Workload{
		Name:        "lud",
		Description: "LU decomposition: shared pivot panel + private blocks",
		Class:       "medium sharing / medium load",
		Build: func(core, cores int, sc Scale) Stream {
			pivotLines := pick(sc, 320, 1024, 16384)
			blockLines := pick(sc, 64, 512, 8192)
			steps := pick(sc, 3, 5, 6)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for s := 0; s < steps; s++ {
				shrink := pivotLines - s*pivotLines/(2*steps)
				segs = append(segs,
					segment{kind: segScan, base: sharedBase, lines: shrink, workPer: 8},
					segment{kind: segScan, base: privBase(core), lines: blockLines,
						store: true, workPer: 6},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// Pathfinder models Rodinia's dynamic-programming grid traversal: private
// row segments with two-core boundary sharing only.
func Pathfinder() Workload {
	return Workload{
		Name:        "pathfinder",
		Description: "DP grid traversal, neighbour-boundary sharing",
		Class:       "low sharing / low-medium load",
		Build: func(core, cores int, sc Scale) Stream {
			rowLines := pick(sc, 128, 1024, 16384)
			iters := pick(sc, 3, 6, 8)
			left := (core + cores - 1) % cores
			right := (core + 1) % cores
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < iters; it++ {
				segs = append(segs,
					segment{kind: segScan, base: privBase(core), lines: rowLines, workPer: 10},
					// Boundary halo reads from the neighbours' rows.
					segment{kind: segScan, base: privBase(left), lines: 4, workPer: 10},
					segment{kind: segScan, base: privBase(right), lines: 4, workPer: 10},
					segment{kind: segScan, base: privBase(core), lines: rowLines,
						store: true, workPer: 1},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// BFS models Rodinia's breadth-first search: irregular pseudo-random
// accesses over a graph far larger than the LLC. Sharer lists accumulate
// over time but re-use across cores is rare, so speculative pushes mostly
// pollute — the workload the pause knob exists for.
func BFS() Workload {
	return Workload{
		Name:        "bfs",
		Description: "breadth-first search, irregular accesses",
		Class:       "irregular / push-hostile",
		Build: func(core, cores int, sc Scale) Stream {
			span := pick(sc, 2048, 32768, 524288)
			perIter := pick(sc, 256, 2048, 32768)
			iters := pick(sc, 3, 5, 6)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < iters; it++ {
				segs = append(segs,
					segment{kind: segRand, base: sharedBase, span: span, n: perIter,
						workPer: 4, seed: uint64(core)*131071 + uint64(it)*8191 + 3},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// parsecLike builds a low-load compute-dominated PARSEC stand-in.
func parsecLike(name, desc string, workPer, privLines, sharedLines, iters int) Workload {
	return Workload{
		Name:        name,
		Description: desc,
		Class:       "low sharing / low load (PARSEC)",
		Build: func(core, cores int, sc Scale) Stream {
			pl := pick(sc, privLines/4, privLines, privLines*8)
			slines := pick(sc, sharedLines/4, sharedLines, sharedLines*8)
			its := pick(sc, 2, iters, iters)
			var segs []segment
			segs = append(segs, prologue(core, sc))
			for it := 0; it < its; it++ {
				segs = append(segs, segment{kind: segWork, n: 4000})
				if slines > 0 {
					segs = append(segs, segment{kind: segScan, base: sharedBase,
						lines: slines, workPer: workPer})
				}
				segs = append(segs,
					segment{kind: segScan, base: privBase(core), lines: pl, workPer: workPer},
					segment{kind: segScan, base: privBase(core), lines: pl / 2,
						store: true, workPer: workPer},
					segment{kind: segBarrier},
				)
			}
			return newSegStream(segs)
		},
	}
}

// Blackscholes: option pricing, almost pure compute over a small private
// working set.
func Blackscholes() Workload {
	return parsecLike("blackscholes", "option pricing (PARSEC)", 28, 96, 0, 4)
}

// Bodytrack: body tracking with a small shared model read.
func Bodytrack() Workload {
	return parsecLike("bodytrack", "human body tracking (PARSEC)", 16, 128, 48, 4)
}

// Fluidanimate: incompressible fluid simulation, private cells with light
// neighbour sharing.
func Fluidanimate() Workload {
	return parsecLike("fluidanimate", "fluid simulation (PARSEC)", 12, 192, 32, 4)
}

// Freqmine: frequent itemset mining, private tree walks.
func Freqmine() Workload {
	return parsecLike("freqmine", "frequent itemset mining (PARSEC)", 18, 160, 0, 4)
}

// Swaptions: Monte-Carlo pricing, tiny footprint, pure compute.
func Swaptions() Workload {
	return parsecLike("swaptions", "Monte Carlo swaption pricing (PARSEC)", 36, 48, 0, 4)
}
