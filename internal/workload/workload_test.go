package workload

import (
	"testing"
	"testing/quick"
)

// drain consumes a stream to completion (bounded) and returns its ops.
func drain(t *testing.T, s Stream, limit int) []Op {
	t.Helper()
	var ops []Op
	for i := 0; i < limit; i++ {
		op := s.Next()
		if op.Kind == OpEnd {
			return ops
		}
		ops = append(ops, op)
	}
	t.Fatalf("stream did not terminate within %d ops", limit)
	return nil
}

func TestRegistryComplete(t *testing.T) {
	if got := len(Registry()); got != 15 {
		t.Fatalf("registry has %d workloads, want 15 (Table II)", got)
	}
	names := Names()
	if len(names) != 19 {
		t.Fatalf("Names lists %d workloads, want 19 (Table II + 4 collectives)", len(names))
	}
	for _, n := range names {
		wl, err := ByName(n)
		if err != nil || wl.Name != n {
			t.Errorf("ByName(%q) = %v, %v", n, wl.Name, err)
		}
		if wl.Description == "" || wl.Class == "" || wl.Build == nil {
			t.Errorf("%s: incomplete metadata", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(NonParsec()) != 10 {
		t.Errorf("NonParsec has %d entries, want 10", len(NonParsec()))
	}
}

func TestAllStreamsTerminate(t *testing.T) {
	for _, wl := range Registry() {
		for core := 0; core < 4; core++ {
			ops := drain(t, wl.Build(core, 16, ScaleTiny), 2_000_000)
			if len(ops) == 0 {
				t.Errorf("%s core %d: empty stream", wl.Name, core)
			}
		}
	}
}

func TestStreamsDeterministic(t *testing.T) {
	for _, wl := range Registry() {
		a := drain(t, wl.Build(1, 16, ScaleTiny), 2_000_000)
		b := drain(t, wl.Build(1, 16, ScaleTiny), 2_000_000)
		if len(a) != len(b) {
			t.Errorf("%s: lengths differ %d/%d", wl.Name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: op %d differs: %+v vs %+v", wl.Name, i, a[i], b[i])
				break
			}
		}
	}
}

func TestBarrierCountsMatchAcrossCores(t *testing.T) {
	for _, wl := range Registry() {
		counts := map[int]int{}
		for core := 0; core < 16; core++ {
			n := 0
			for _, op := range drain(t, wl.Build(core, 16, ScaleTiny), 2_000_000) {
				if op.Kind == OpBarrier {
					n++
				}
			}
			counts[n]++
		}
		if len(counts) != 1 {
			t.Errorf("%s: cores disagree on barrier count: %v", wl.Name, counts)
		}
	}
}

func TestAddressesAligned(t *testing.T) {
	for _, wl := range Registry() {
		for _, op := range drain(t, wl.Build(0, 16, ScaleTiny), 2_000_000) {
			if op.Kind == OpLoad || op.Kind == OpStore {
				if op.Addr%LineBytes != 0 {
					t.Fatalf("%s: unaligned address %#x", wl.Name, op.Addr)
				}
			}
		}
	}
}

func TestCacheBWFullSharing(t *testing.T) {
	// Every core must touch exactly the same shared line set.
	sets := make([]map[uint64]bool, 3)
	for core := 0; core < 3; core++ {
		sets[core] = map[uint64]bool{}
		for _, op := range drain(t, CacheBW().Build(core, 16, ScaleTiny), 2_000_000) {
			if op.Kind == OpLoad {
				sets[core][op.Addr] = true
			}
		}
	}
	if len(sets[0]) == 0 {
		t.Fatal("no loads")
	}
	for core := 1; core < 3; core++ {
		if len(sets[core]) != len(sets[0]) {
			t.Fatalf("core %d touches %d lines, core 0 %d", core, len(sets[core]), len(sets[0]))
		}
	}
}

func TestMultilevelPartitioning(t *testing.T) {
	// Cores in different levels (core%4) must touch disjoint buffers;
	// cores in the same level identical ones.
	touched := func(core int) map[uint64]bool {
		m := map[uint64]bool{}
		for _, op := range drain(t, Multilevel().Build(core, 16, ScaleTiny), 2_000_000) {
			if op.Kind == OpLoad {
				m[op.Addr] = true
			}
		}
		return m
	}
	l0, l1, l4 := touched(0), touched(1), touched(4)
	for a := range l0 {
		if l1[a] {
			t.Fatalf("levels 0 and 1 share line %#x", a)
		}
	}
	if len(l0) != len(l4) {
		t.Fatalf("same-level cores differ: %d vs %d", len(l0), len(l4))
	}
	for a := range l0 {
		if !l4[a] {
			t.Fatalf("same-level core missing line %#x", a)
		}
	}
}

func TestMVPrivateAndSharedMix(t *testing.T) {
	shared, private := 0, 0
	for _, op := range drain(t, MV().Build(2, 16, ScaleTiny), 2_000_000) {
		if op.Kind != OpLoad {
			continue
		}
		if op.Addr >= sharedBase && op.Addr < privateBase {
			shared++
		} else {
			private++
		}
	}
	if shared == 0 || private == 0 {
		t.Fatalf("mv mix wrong: shared=%d private=%d", shared, private)
	}
	if private < shared {
		t.Errorf("mv private traffic (%d) should dominate shared (%d)", private, shared)
	}
}

func TestBFSIsIrregular(t *testing.T) {
	// Consecutive loads should not be sequential lines.
	ops := drain(t, BFS().Build(0, 16, ScaleTiny), 2_000_000)
	seqRuns, loads := 0, 0
	var last uint64
	for _, op := range ops {
		if op.Kind != OpLoad {
			continue
		}
		if loads > 0 && op.Addr == last+LineBytes {
			seqRuns++
		}
		last = op.Addr
		loads++
	}
	if loads == 0 {
		t.Fatal("no loads")
	}
	if float64(seqRuns) > 0.05*float64(loads) {
		t.Errorf("bfs looks sequential: %d/%d consecutive", seqRuns, loads)
	}
}

func TestPathfinderNeighbourSharing(t *testing.T) {
	// Core 2 must read a few lines of core 1's and core 3's segments.
	m := map[uint64]bool{}
	for _, op := range drain(t, Pathfinder().Build(2, 16, ScaleTiny), 2_000_000) {
		if op.Kind == OpLoad {
			m[op.Addr] = true
		}
	}
	hitLeft, hitRight := false, false
	for a := range m {
		if a >= privBase(1) && a < privBase(1)+4*LineBytes {
			hitLeft = true
		}
		if a >= privBase(3) && a < privBase(3)+4*LineBytes {
			hitRight = true
		}
	}
	if !hitLeft || !hitRight {
		t.Errorf("pathfinder boundary sharing missing: left=%v right=%v", hitLeft, hitRight)
	}
}

func TestStaggerGrowsWithCore(t *testing.T) {
	first := func(core int) Op {
		return CacheBW().Build(core, 16, ScaleTiny).Next()
	}
	a, b := first(1), first(8)
	if a.Kind != OpWork || b.Kind != OpWork || b.N <= a.N {
		t.Errorf("start stagger not increasing: %+v vs %+v", a, b)
	}
}

func TestScaleOrdering(t *testing.T) {
	// Quick inputs must be strictly larger than tiny ones.
	count := func(sc Scale) int {
		n := 0
		s := CacheBW().Build(0, 16, sc)
		for i := 0; i < 10_000_000; i++ {
			op := s.Next()
			if op.Kind == OpEnd {
				return n
			}
			if op.Kind == OpLoad {
				n++
			}
		}
		return n
	}
	if count(ScaleQuick) <= count(ScaleTiny) {
		t.Error("quick scale not larger than tiny")
	}
}

func TestSegStreamInterleave(t *testing.T) {
	s := newSegStream([]segment{{
		kind: segScan, base: 0x1000, lines: 3,
		base2: 0x100000, span2: 2,
	}})
	var got []Op
	for {
		op := s.Next()
		if op.Kind == OpEnd {
			break
		}
		got = append(got, op)
	}
	want := []Op{
		{Kind: OpLoad, Addr: 0x1000}, {Kind: OpLoad, Addr: 0x100000},
		{Kind: OpLoad, Addr: 0x1040}, {Kind: OpLoad, Addr: 0x100040},
		{Kind: OpLoad, Addr: 0x1080}, {Kind: OpLoad, Addr: 0x100000},
	}
	if len(got) != len(want) {
		t.Fatalf("interleave ops = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSegStreamRandWithinSpan(t *testing.T) {
	f := func(seed uint64) bool {
		s := newSegStream([]segment{{kind: segRand, base: 0x1000, span: 16, n: 50, seed: seed}})
		for {
			op := s.Next()
			if op.Kind == OpEnd {
				return true
			}
			if op.Kind == OpLoad && (op.Addr < 0x1000 || op.Addr >= 0x1000+16*LineBytes) {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleStrings(t *testing.T) {
	for _, sc := range []Scale{ScaleTiny, ScaleQuick, ScaleFull} {
		if sc.String() == "unknown" {
			t.Errorf("scale %d unnamed", sc)
		}
	}
}
