// Package workload generates per-core memory access streams that reproduce
// the sharing structure of the paper's benchmarks (Table II): working-set
// size, sharing degree, temporal sharer locality, and compute-to-memory
// ratio. The generators are synthetic stand-ins for the compiled
// Rodinia/OpenMP/PARSEC binaries the paper runs under gem5; DESIGN.md §1
// documents the substitution.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// OpKind is the kind of one stream operation.
type OpKind uint8

// Stream operation kinds.
const (
	// OpWork represents N non-memory instructions.
	OpWork OpKind = iota
	// OpLoad is a data load of one address.
	OpLoad
	// OpStore is a data store to one address.
	OpStore
	// OpBarrier synchronizes all cores (OpenMP-style join).
	OpBarrier
	// OpEnd terminates the core's stream.
	OpEnd
)

// Op is one operation in a core's instruction stream.
type Op struct {
	Kind OpKind
	// Addr is the byte address for loads/stores.
	Addr uint64
	// N is the instruction count for OpWork.
	N int
}

// Stream produces a core's operation sequence. Implementations must be
// deterministic; Next is called once per consumed op.
type Stream interface {
	Next() Op
}

// Scale selects input sizing.
type Scale uint8

// Input scales.
const (
	// ScaleTiny is for unit tests: sub-millisecond runs.
	ScaleTiny Scale = iota
	// ScaleQuick is the default experiment scale: seconds per run with the
	// cache-pressure ratios of the paper preserved against Scaled configs.
	ScaleQuick
	// ScaleFull stresses full-size caches; minutes per run.
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleQuick:
		return "quick"
	case ScaleFull:
		return "full"
	}
	return "unknown"
}

// Workload is a named generator building one Stream per core.
type Workload struct {
	// Name matches the paper's workload naming (Table II).
	Name string
	// Description summarizes the access pattern.
	Description string
	// Class is the paper's qualitative sharing/load classification, used
	// in reports.
	Class string
	// Params is the canonical parameter signature for parameterized
	// workloads (the collective family); it is part of the harness memo
	// identity so same-named variants with different knobs never alias.
	// Empty for the fixed Table II generators.
	Params string
	// Validate, when non-nil, checks the workload's parameters against the
	// machine's core count before any stream is built. core.Build calls it
	// right after config validation; errors must be one-line diagnostics.
	Validate func(cores int) error
	// Build returns the stream for core `core` of `cores` total.
	Build func(core, cores int, sc Scale) Stream
}

// StreamFunc adapts a generator function to Stream.
type StreamFunc func() Op

// Next implements Stream.
func (f StreamFunc) Next() Op { return f() }

// Registry returns all workloads in the paper's figure order.
func Registry() []Workload {
	return []Workload{
		CacheBW(), Multilevel(), Backprop(), Particlefilter(), Conv3D(),
		MLP(), MV(), LUD(), Pathfinder(), BFS(),
		Blackscholes(), Bodytrack(), Fluidanimate(), Freqmine(), Swaptions(),
	}
}

// All returns every bundled workload: the Table II set plus the collective
// family (default parameters). Registry stays the paper set so figure
// defaults (Fig 11, Table II) are unchanged by the collectives.
func All() []Workload {
	return append(Registry(), Collectives()...)
}

// byNameIndex is built once: ByName used to rebuild the whole Registry slice
// on every miss and answer with a bare "unknown workload" that named no
// valid alternatives.
var byNameIndex struct {
	once  sync.Once
	m     map[string]Workload
	names string // sorted, comma-joined, for the miss diagnostic
}

// ByName returns the named workload (paper set or collective defaults). On a
// miss the error lists every valid name, sorted.
func ByName(name string) (Workload, error) {
	byNameIndex.once.Do(func() {
		all := All()
		byNameIndex.m = make(map[string]Workload, len(all))
		names := make([]string, 0, len(all))
		for _, w := range all {
			byNameIndex.m[w.Name] = w
			names = append(names, w.Name)
		}
		sort.Strings(names)
		byNameIndex.names = strings.Join(names, ", ")
	})
	if w, ok := byNameIndex.m[name]; ok {
		return w, nil
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q (valid: %s)", name, byNameIndex.names)
}

// Names lists every bundled workload name: the registry in figure order,
// then the collective family.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}

// NonParsec returns the Rodinia/OpenMP/microbenchmark set used by the
// paper's detailed figures (PARSEC is excluded after Fig 11).
func NonParsec() []Workload {
	return []Workload{
		CacheBW(), Multilevel(), Backprop(), Particlefilter(), Conv3D(),
		MLP(), MV(), LUD(), Pathfinder(), BFS(),
	}
}

// Address-space layout helpers. Each workload partitions a flat physical
// address space into a shared segment and per-core private segments, far
// enough apart that they never alias.
const (
	// sharedBase is the base address of shared data.
	sharedBase uint64 = 1 << 30
	// privateBase is the base of core 0's private segment; each core gets
	// privateStride bytes.
	privateBase   uint64 = 4 << 30
	privateStride uint64 = 64 << 20
	// LineBytes is the cache line size the generators stride by.
	LineBytes = 64
)

// SharedBase exposes the shared segment base (Fig 4 tracing and tests).
func SharedBase() uint64 { return sharedBase }

// PrivateBase exposes a core's private segment base for user-defined
// workloads.
func PrivateBase(core int) uint64 { return privBase(core) }

// privBase returns core c's private segment base. The per-core 17-line skew
// spreads the segments across LLC home slices and cache sets; perfectly
// aligned power-of-two bases would alias every core's stream onto the same
// sets (a layout artifact real heap allocations do not have).
func privBase(c int) uint64 {
	return privateBase + uint64(c)*privateStride + uint64(c)*17*LineBytes
}

// lcg is a small deterministic pseudo-random generator for irregular
// workloads (bfs); math/rand is avoided to keep streams bit-stable across
// Go versions.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 16)
}
