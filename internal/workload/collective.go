package workload

// Collective-communication workload family: ring AllReduce, tree Broadcast,
// ring ReduceScatter, and a producer–consumer pipeline. The paper's sharing
// sweet spot — one producer, many consumers re-reading the same lines — is
// exactly the traffic of collective communication in DNN training (gradient
// aggregation) and serving fan-out, an axis the paper never evaluated. Each
// generator is built from the same segment machinery as the Table II set, so
// the serial, dense, and parallel kernels replay every collective
// byte-identically.
//
// The collectives are traffic models, not numerically faithful algorithms:
// what they reproduce is who writes which lines, who re-reads them, in what
// order, and at what chunk granularity. All shared buffers live in the
// shared segment; rank r's (or group g's) buffer sits at colBase(r), with
// the same 17-line anti-aliasing skew privBase applies.

import "fmt"

// CollectiveParams parameterizes every collective generator. The zero value
// of each field selects a default (all cores / per-collective fan-out /
// 16-line chunks / scale-derived payload and iteration count); negative
// values and inconsistent combinations are rejected loudly by Validate —
// never silently clamped into an empty or lopsided stream.
type CollectiveParams struct {
	// Sharers is the participating core count (ranks 0..Sharers-1; the
	// remaining cores idle at the barriers). 0 = every core participates.
	Sharers int
	// Fanout is the tree radix for broadcast, the consumers-per-producer
	// count for prodcons, and the concurrent ring-channel count for
	// allreduce/reducescatter (NCCL-style multi-channel rings, each rotated
	// to a different neighbor). 0 = per-collective default.
	Fanout int
	// ChunkLines is the chunk granularity in cache lines: every transfer
	// step reads and commits the payload chunk by chunk, so the chunk size
	// sets the compute/communication interleave. 0 = 16 lines (1 KB).
	ChunkLines int
	// PayloadLines is the payload size in cache lines (per rank buffer for
	// allreduce/reducescatter/broadcast, per group buffer for prodcons). It
	// must be a multiple of ChunkLines and, for the ring collectives, split
	// into chunk groups evenly across sharers and channels. 0 = a
	// scale-derived default that satisfies the divisibility rules by
	// construction.
	PayloadLines int
	// Iters repeats the whole collective (successive training steps /
	// pipeline batches), which is what turns first-touch reads into the
	// re-references that trigger pushes. 0 = scale default; zero- or
	// negative-iteration loops are rejected, not run empty.
	Iters int
}

// sig is the canonical parameter signature, part of a collective workload's
// memo identity (two same-named collectives with different knobs must never
// share a cached run).
func (p CollectiveParams) sig() string {
	return fmt.Sprintf("sharers=%d fanout=%d chunk=%d payload=%d iters=%d",
		p.Sharers, p.Fanout, p.ChunkLines, p.PayloadLines, p.Iters)
}

// collectiveKind discriminates the four generators for validation.
type collectiveKind uint8

const (
	colAllReduce collectiveKind = iota
	colBroadcast
	colReduceScatter
	colProdCons
)

func (k collectiveKind) name() string {
	switch k {
	case colAllReduce:
		return "allreduce"
	case colBroadcast:
		return "broadcast"
	case colReduceScatter:
		return "reducescatter"
	}
	return "prodcons"
}

// defaultFanout is the per-kind fan-out when the knob is 0.
func (k collectiveKind) defaultFanout() int {
	switch k {
	case colBroadcast:
		return 4 // radix-4 tree
	case colProdCons:
		return 3 // 1 producer + 3 consumers per group (groups of 4)
	}
	return 1 // single ring channel
}

// minSharers is the smallest participating-core count that still forms the
// collective's communication structure.
func (k collectiveKind) minSharers(fanout int) int {
	if k == colProdCons {
		return fanout + 1 // one producer plus its consumers
	}
	return 2
}

// defaultChunkLines is the chunk granularity when the knob is 0.
const defaultChunkLines = 16

// colParams is a fully resolved (defaulted, validated) parameter set.
type colParams struct {
	sharers, fanout, chunk, payload, iters int
}

// resolve fills defaults and validates the combination for a machine with
// `cores` cores. Every error is a one-line diagnostic naming the offending
// knob and the constraint it broke.
func (p CollectiveParams) resolve(kind collectiveKind, cores int, sc Scale) (colParams, error) {
	name := kind.name()
	for _, f := range []struct {
		label string
		v     int
	}{
		{"Sharers", p.Sharers}, {"Fanout", p.Fanout}, {"ChunkLines", p.ChunkLines},
		{"PayloadLines", p.PayloadLines}, {"Iters", p.Iters},
	} {
		if f.v < 0 {
			return colParams{}, fmt.Errorf("workload %s: %s %d is negative (0 selects the default)", name, f.label, f.v)
		}
	}
	r := colParams{sharers: p.Sharers, fanout: p.Fanout, chunk: p.ChunkLines, iters: p.Iters}
	if r.sharers == 0 {
		r.sharers = cores
	}
	if r.fanout == 0 {
		r.fanout = kind.defaultFanout()
	}
	if r.chunk == 0 {
		r.chunk = defaultChunkLines
	}
	if r.iters == 0 {
		r.iters = pick(sc, 3, 5, 4)
	}
	if r.sharers > cores {
		return colParams{}, fmt.Errorf("workload %s: %d sharers exceed the %d-core machine", name, r.sharers, cores)
	}
	if min := kind.minSharers(r.fanout); r.sharers < min {
		return colParams{}, fmt.Errorf("workload %s: %d sharers below the minimum %d (fanout %d)", name, r.sharers, min, r.fanout)
	}
	switch kind {
	case colBroadcast:
		if r.fanout < 2 {
			return colParams{}, fmt.Errorf("workload broadcast: tree radix (Fanout) must be at least 2, got %d", r.fanout)
		}
	case colAllReduce, colReduceScatter:
		if r.fanout >= r.sharers {
			return colParams{}, fmt.Errorf("workload %s: %d ring channels (Fanout) need at least %d sharers, got %d",
				name, r.fanout, r.fanout+1, r.sharers)
		}
	case colProdCons:
		if r.sharers%(r.fanout+1) != 0 {
			return colParams{}, fmt.Errorf("workload prodcons: %d sharers do not split into groups of %d (1 producer + %d consumers)",
				r.sharers, r.fanout+1, r.fanout)
		}
	}
	// Payload: an explicit value must satisfy the chunking and distribution
	// rules exactly; the derived default satisfies them by construction at
	// every scale.
	r.payload = p.PayloadLines
	if r.payload == 0 {
		switch kind {
		case colAllReduce, colReduceScatter:
			r.payload = r.sharers * r.fanout * r.chunk * pick(sc, 1, 4, 16)
		case colBroadcast, colProdCons:
			// Sized past the private L2 at every scale (the scaled quick/tiny
			// L2 holds 256 lines, the full one 4096): consumer re-read passes
			// must reach the LLC to re-reference, which is what arms pushes.
			r.payload = r.chunk * pick(sc, 24, 96, 768)
		}
		return r, nil
	}
	if r.payload%r.chunk != 0 {
		return colParams{}, fmt.Errorf("workload %s: chunk size %d lines does not divide the %d-line payload",
			name, r.chunk, r.payload)
	}
	if kind == colAllReduce || kind == colReduceScatter {
		chunks := r.payload / r.chunk
		if chunks%r.sharers != 0 {
			return colParams{}, fmt.Errorf("workload %s: %d chunks do not distribute across %d sharers", name, chunks, r.sharers)
		}
		if (chunks/r.sharers)%r.fanout != 0 {
			return colParams{}, fmt.Errorf("workload %s: %d chunks per sharer do not split across %d ring channels",
				name, chunks/r.sharers, r.fanout)
		}
	}
	return r, nil
}

// mustResolve is resolve for Build, which cannot return an error; core.Build
// validates first (via Workload.Validate), so a failure here is a programmer
// error — fail loudly rather than emit a silently empty stream.
func (p CollectiveParams) mustResolve(kind collectiveKind, cores int, sc Scale) colParams {
	r, err := p.resolve(kind, cores, sc)
	if err != nil {
		panic("workload: Build called with unvalidated collective parameters: " + err.Error())
	}
	return r
}

// colBase returns buffer r's base address in the shared segment. The 17-line
// skew spreads consecutive buffers across LLC home slices and cache sets,
// like privBase does for private segments.
func colBase(buf, payloadLines int) uint64 {
	return sharedBase + uint64(buf)*uint64(payloadLines+17)*LineBytes
}

// copyChunks appends the chunk-granular receive-then-commit step every
// collective transfer is built from: for each chunk, read it from src and
// store it to dst, with loadWork instructions ahead of each loaded line
// (the reduction or relay compute).
func copyChunks(segs []segment, src, dst uint64, lines, chunk, loadWork int) []segment {
	for off := 0; off < lines; off += chunk {
		at := uint64(off) * LineBytes
		segs = append(segs,
			segment{kind: segScan, base: src + at, lines: chunk, workPer: loadWork},
			segment{kind: segScan, base: dst + at, lines: chunk, store: true, workPer: 1},
		)
	}
	return segs
}

// produceChunks appends chunk-granular stores over [base, base+lines) with
// per-line compute — a producer filling its buffer.
func produceChunks(segs []segment, base uint64, lines, chunk, work int) []segment {
	for off := 0; off < lines; off += chunk {
		segs = append(segs, segment{kind: segScan, base: base + uint64(off)*LineBytes,
			lines: chunk, store: true, workPer: work})
	}
	return segs
}

// consumeChunks appends chunk-granular loads — a consumer draining a buffer.
func consumeChunks(segs []segment, base uint64, lines, chunk, work int) []segment {
	for off := 0; off < lines; off += chunk {
		segs = append(segs, segment{kind: segScan, base: base + uint64(off)*LineBytes,
			lines: chunk, workPer: work})
	}
	return segs
}

// idle is the non-participant's (or inactive phase's) stand-in work so every
// core still reaches every barrier.
func idle(segs []segment) []segment {
	return append(segs, segment{kind: segWork, n: 32})
}

// stagger desynchronizes sibling consumers ahead of a shared re-read pass
// with a small per-sibling compute delay (sibling k waits k*staggerWork
// instructions). In lockstep, every sibling's re-reference raises a demand
// miss before the push for it can land (Early-Resp); staggered, the leading
// sibling's misses push lines just ahead of where the trailing siblings are
// about to read (Miss-to-Hit) — the temporal sharer locality the paper's
// trigger exploits.
const staggerWork = 800

func stagger(segs []segment, sibling int) []segment {
	if sibling == 0 {
		return segs
	}
	return append(segs, segment{kind: segWork, n: sibling * staggerWork})
}

// collective assembles a Workload whose Validate hook and Build stream share
// one resolved parameter set.
func collective(kind collectiveKind, p CollectiveParams, desc, class string,
	build func(r colParams, rank int, participant bool, sc Scale) []segment) Workload {
	return Workload{
		Name:        kind.name(),
		Description: desc,
		Class:       class,
		Params:      p.sig(),
		Validate: func(cores int) error {
			// Scale only sizes the derived payload and iteration defaults,
			// never the validity of the combination; ScaleTiny stands in for
			// all scales here.
			_, err := p.resolve(kind, cores, ScaleTiny)
			return err
		},
		Build: func(core, cores int, sc Scale) Stream {
			r := p.mustResolve(kind, cores, sc)
			segs := []segment{prologue(core, sc)}
			segs = append(segs, build(r, core, core < r.sharers, sc)...)
			return newSegStream(segs)
		},
	}
}

// AllReduce is a ring all-reduce over Sharers ranks: every rank owns a full
// payload-sized buffer; iteration = local gradient production, then N-1
// reduce-scatter steps (read the incoming chunk group from the ring
// predecessor, accumulate into the own buffer), then N-1 all-gather steps
// (copy the reduced groups around the ring). Fanout > 1 splits each step
// across that many ring channels, each rotated to a different predecessor —
// the multi-channel layout DNN collectives use to spread link load.
func AllReduce(p CollectiveParams) Workload {
	return collective(colAllReduce, p,
		"ring all-reduce: gradient aggregation over neighbor ring channels",
		"collective / neighbor sharing, high load",
		func(r colParams, rank int, participant bool, sc Scale) []segment {
			return ringSegments(r, rank, participant, true)
		})
}

// ReduceScatter is the reduce phase of the ring alone: after it, each rank
// holds the reduction of its own chunk group. Same ring-neighbor traffic as
// AllReduce without the gather re-circulation.
func ReduceScatter(p CollectiveParams) Workload {
	return collective(colReduceScatter, p,
		"ring reduce-scatter: per-rank chunk-group reduction",
		"collective / neighbor sharing, medium-high load",
		func(r colParams, rank int, participant bool, sc Scale) []segment {
			return ringSegments(r, rank, participant, false)
		})
}

// ringSegments emits the shared ring structure of AllReduce/ReduceScatter;
// gather selects whether the all-gather phase follows the reduce-scatter
// phase. Every core — participant or not — emits an identical barrier
// sequence: 1 (production) + (N-1) + gather*(N-1) per iteration.
func ringSegments(r colParams, rank int, participant bool, gather bool) []segment {
	n := r.sharers
	chunks := r.payload / r.chunk
	perRank := chunks / n        // chunk-group size, in chunks
	perCh := perRank / r.fanout  // chunks per channel per step
	groupLines := perRank * r.chunk
	buf := func(rk int) uint64 { return colBase(rk, r.payload) }
	var segs []segment
	// step emits one ring step: on channel c, read this step's chunk group
	// slice from the channel's predecessor and commit it locally.
	step := func(s, loadWork int) []segment {
		for c := 0; c < r.fanout; c++ {
			src := ((rank-1-c)%n + n) % n
			g := ((rank-s-c)%n + n) % n
			at := uint64(g*groupLines+c*perCh*r.chunk) * LineBytes
			segs = copyChunks(segs, buf(src)+at, buf(rank)+at, perCh*r.chunk, r.chunk, loadWork)
		}
		return segs
	}
	for it := 0; it < r.iters; it++ {
		if participant {
			segs = produceChunks(segs, buf(rank), r.payload, r.chunk, 2)
		} else {
			segs = idle(segs)
		}
		segs = append(segs, segment{kind: segBarrier})
		for s := 1; s < n; s++ {
			if participant {
				segs = step(s, 2) // reduce: FMA per received line
			} else {
				segs = idle(segs)
			}
			segs = append(segs, segment{kind: segBarrier})
		}
		if !gather {
			continue
		}
		for s := 1; s < n; s++ {
			if participant {
				segs = step(n-s, 1) // gather: plain copy of the reduced groups
			} else {
				segs = idle(segs)
			}
			segs = append(segs, segment{kind: segBarrier})
		}
	}
	return segs
}

// readPasses is how many times a collective consumer walks the payload it
// received per step: pass 1 is the receive, later passes model the compute
// actually using the data (applying broadcast parameters, processing a
// produced batch). The payload outsizes the private L2 (see resolve), so a
// later pass re-references lines the LLC still maps to this sharer — the
// trigger condition for pushes (§III-B), shared by all Fanout siblings
// reading the same parent buffer.
const readPasses = 2

// Broadcast is a Fanout-ary tree broadcast: the root produces the payload,
// then each tree level reads its parent's copy — internal ranks commit a
// relay copy for their own children, leaves only consume — and every child
// walks the parent buffer readPasses times. Each parent buffer is written
// once and then re-read by its Fanout children per iteration: the
// one-producer/many-consumer pattern push multicast was designed for
// (parameter broadcast, serving fan-out).
func Broadcast(p CollectiveParams) Workload {
	return collective(colBroadcast, p,
		"tree broadcast: root payload relayed level by level, fan-out sharing",
		"collective / 1-to-fanout sharing, push sweet spot",
		func(r colParams, rank int, participant bool, sc Scale) []segment {
			level := func(rk int) int {
				l := 0
				for rk > 0 {
					rk = (rk - 1) / r.fanout
					l++
				}
				return l
			}
			depth := level(r.sharers - 1) // levels are nondecreasing in rank
			buf := func(rk int) uint64 { return colBase(rk, r.payload) }
			myLevel := level(rank)
			parent := 0
			if rank > 0 {
				parent = (rank - 1) / r.fanout
			}
			// Internal ranks relay: their copy feeds their own children.
			// Leaves (no rank has them as parent) only consume.
			internal := rank*r.fanout+1 < r.sharers
			var segs []segment
			for it := 0; it < r.iters; it++ {
				if participant && rank == 0 {
					segs = produceChunks(segs, buf(0), r.payload, r.chunk, 2)
				} else {
					segs = idle(segs)
				}
				segs = append(segs, segment{kind: segBarrier})
				for l := 1; l <= depth; l++ {
					if participant && myLevel == l {
						if internal {
							segs = copyChunks(segs, buf(parent), buf(rank), r.payload, r.chunk, 1)
						} else {
							segs = consumeChunks(segs, buf(parent), r.payload, r.chunk, 1)
						}
						for pass := 1; pass < readPasses; pass++ {
							segs = stagger(segs, (rank-1)%r.fanout)
							segs = consumeChunks(segs, buf(parent), r.payload, r.chunk, 2)
						}
					} else {
						segs = idle(segs)
					}
					segs = append(segs, segment{kind: segBarrier})
				}
			}
			return segs
		})
}

// ProdCons is a producer–consumer pipeline: the sharers split into groups of
// 1 producer + Fanout consumers over a double-buffered shared queue. Each
// iteration the producer fills one buffer while every consumer processes the
// other in readPasses passes, so each buffer is written once and re-read by
// all Fanout consumers before the producer reclaims it — steady-state
// 1-to-Fanout push traffic (inference serving fan-out, pipelined dataflow
// stages).
func ProdCons(p CollectiveParams) Workload {
	return collective(colProdCons, p,
		"producer-consumer pipeline: double-buffered 1-to-fanout hand-off",
		"collective / 1-to-fanout sharing, pipelined",
		func(r colParams, rank int, participant bool, sc Scale) []segment {
			group := rank / (r.fanout + 1)
			isProducer := rank%(r.fanout+1) == 0
			buf := func(half int) uint64 { return colBase(group*2+half, r.payload) }
			var segs []segment
			// iters produce steps plus one drain step; consumers trail the
			// producer by one buffer.
			for t := 0; t <= r.iters; t++ {
				active := false
				if participant {
					if isProducer && t < r.iters {
						segs = produceChunks(segs, buf(t%2), r.payload, r.chunk, 2)
						active = true
					}
					if !isProducer && t > 0 {
						for pass := 0; pass < readPasses; pass++ {
							if pass > 0 {
								segs = stagger(segs, rank%(r.fanout+1)-1)
							}
							segs = consumeChunks(segs, buf((t-1)%2), r.payload, r.chunk, 4)
						}
						active = true
					}
				}
				if !active {
					segs = idle(segs)
				}
				segs = append(segs, segment{kind: segBarrier})
			}
			return segs
		})
}

// Collectives returns the collective family with default parameters, in
// documentation order. These are not part of the paper's Table II set
// (Registry), but ByName resolves them and pushsim/-fig collective run them.
func Collectives() []Workload {
	return []Workload{
		AllReduce(CollectiveParams{}), Broadcast(CollectiveParams{}),
		ReduceScatter(CollectiveParams{}), ProdCons(CollectiveParams{}),
	}
}

// Collective builds the named collective with explicit parameters; the name
// must be one of the family. Parameter validity is checked against the core
// count at build time via Workload.Validate.
func Collective(name string, p CollectiveParams) (Workload, error) {
	switch name {
	case "allreduce":
		return AllReduce(p), nil
	case "broadcast":
		return Broadcast(p), nil
	case "reducescatter":
		return ReduceScatter(p), nil
	case "prodcons":
		return ProdCons(p), nil
	}
	return Workload{}, fmt.Errorf("workload: %q is not a collective (collectives: allreduce, broadcast, prodcons, reducescatter)", name)
}
