package noc

// routingFor returns whether a vnet routes XY (true) or YX (false). Requests
// travel XY and responses/pushes travel YX so a push retraces request paths
// in reverse, maximizing in-network filtering opportunities (§III-C).
func routingXY(vnet int) bool { return vnet == VNetReq }

// nextPort computes the output port for one destination from the router at
// cur, under XY or YX dimension-order routing.
func (c Config) nextPort(cur, dst NodeID, xyFirst bool) int {
	if cur == dst {
		return PortLocal
	}
	cx, cy := c.XY(cur)
	dx, dy := c.XY(dst)
	if xyFirst {
		if dx > cx {
			return PortEast
		}
		if dx < cx {
			return PortWest
		}
	} else {
		if dy > cy {
			return PortSouth
		}
		if dy < cy {
			return PortNorth
		}
	}
	if dy > cy {
		return PortSouth
	}
	if dy < cy {
		return PortNorth
	}
	if dx > cx {
		return PortEast
	}
	return PortWest
}

// routeDests partitions a destination set into per-output-port subsets for
// the router at cur. The result is the multicast route computation: each
// non-empty subset becomes one packet replica.
func (c Config) routeDests(cur NodeID, dests DestSet, xyFirst bool) [NumPorts]DestSet {
	var out [NumPorts]DestSet
	dests.ForEach(func(d NodeID) {
		p := c.nextPort(cur, d, xyFirst)
		out[p] = out[p].Add(d)
	})
	return out
}

// neighbour returns the node adjacent to n through output port p, or -1 if
// the port faces the mesh edge.
func (c Config) neighbour(n NodeID, p int) NodeID {
	x, y := c.XY(n)
	switch p {
	case PortNorth:
		y--
	case PortSouth:
		y++
	case PortEast:
		x++
	case PortWest:
		x--
	default:
		return -1
	}
	if x < 0 || x >= c.Width || y < 0 || y >= c.Height {
		return -1
	}
	return c.Node(x, y)
}
