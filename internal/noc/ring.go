package noc

import (
	"sync/atomic"

	"pushmulticast/internal/sim"
)

// Single-producer single-consumer rings carrying the two kinds of
// cross-router traffic that used to be direct neighbour-state writes: head
// flit handoffs travelling down a link, and credit returns travelling back
// up it. Routing all neighbour communication through these rings (plus the
// engine's staged wakes) is what lets routers tick on parallel lanes: a
// router's tick then touches only its own state, its own rings' consumer
// ends, and the producer end of the rings it feeds.
//
// Each ring has exactly one producer and one consumer, fixed at wiring
// time: the arrivals ring behind input port p is fed only by the adjacent
// router's output stream through that link, and a credit-return ring is fed
// only by the ring's owner and drained only by that same neighbour. Entry
// maturity times are non-decreasing per ring (arrival jitter is clamped
// monotonic per port, and credits are stamped in tick order), so the
// consumer pops a prefix of matured entries and stops at the first future
// one. An entry pushed while the consumer is mid-pop always carries a
// maturity time beyond the current cycle, so a racy tail read can never
// change what a pop consumes — only whether the not-yet-due entry is seen
// at all, which the producer's staged WakeAt covers.
//
// Capacity: per (input port, vnet) at most VCsPerVNet packets can be
// outstanding (credit-limited), and Validate caps NumVNets*VCsPerVNet at
// ringCap, so neither ring can overflow; push panics if that invariant is
// ever broken.

// ringCap is the fixed ring capacity (a power of two for cheap wrapping).
const ringCap = 16

// arrEntry is one head-flit handoff: the replica whose ownership moves
// downstream, and the cycle its head arrives there.
type arrEntry struct {
	pkt *Packet
	at  sim.Cycle
}

// arrRing is the SPSC ring of head-flit handoffs behind one router input
// port. Producer: the upstream router's sendFlit. Consumer: the owning
// router's acceptArrivals.
type arrRing struct {
	head, tail atomic.Uint32
	buf        [ringCap]arrEntry
}

// push appends a handoff. Producer side only.
func (r *arrRing) push(pkt *Packet, at sim.Cycle) {
	t := r.tail.Load()
	if t-r.head.Load() >= ringCap {
		panic("noc: arrival ring overflow (credit invariant broken)")
	}
	r.buf[t%ringCap] = arrEntry{pkt: pkt, at: at}
	r.tail.Store(t + 1)
}

// pop removes and returns the oldest entry if it has matured by now.
// Consumer side only.
func (r *arrRing) pop(now sim.Cycle) (*Packet, sim.Cycle, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, 0, false
	}
	e := r.buf[h%ringCap]
	if e.at > now {
		return nil, 0, false
	}
	r.buf[h%ringCap] = arrEntry{}
	r.head.Store(h + 1)
	return e.pkt, e.at, true
}

// earliest returns the oldest entry's maturity time. Entry times are
// non-decreasing, so this is the ring's minimum. Consumer side only.
func (r *arrRing) earliest() (sim.Cycle, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	return r.buf[h%ringCap].at, true
}

// forEach visits every queued entry, oldest first. Only safe from the
// consumer at a quiescent point (the serial checker / Quiescent scans).
func (r *arrRing) forEach(fn func(pkt *Packet, at sim.Cycle)) {
	for h, t := r.head.Load(), r.tail.Load(); h != t; h++ {
		e := r.buf[h%ringCap]
		fn(e.pkt, e.at)
	}
}

// len returns the number of queued entries (checker use).
func (r *arrRing) len() int { return int(r.tail.Load() - r.head.Load()) }

// credEntry is one credit return: the vnet whose downstream VC freed, and
// the cycle the upstream router may reuse it.
type credEntry struct {
	vnet int32
	at   sim.Cycle
}

// credRing is the SPSC ring of credit returns travelling from a router back
// to the upstream neighbour behind one of its input ports. Producer: the
// owning router's release. Consumer: the upstream router's acceptCredits.
type credRing struct {
	head, tail atomic.Uint32
	buf        [ringCap]credEntry
}

// push appends a credit return. Producer side only.
func (r *credRing) push(vnet int, at sim.Cycle) {
	t := r.tail.Load()
	if t-r.head.Load() >= ringCap {
		panic("noc: credit ring overflow (credit invariant broken)")
	}
	r.buf[t%ringCap] = credEntry{vnet: int32(vnet), at: at}
	r.tail.Store(t + 1)
}

// pop removes and returns the oldest credit if it has matured by now.
// Consumer side only.
func (r *credRing) pop(now sim.Cycle) (int, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	e := r.buf[h%ringCap]
	if e.at > now {
		return 0, false
	}
	r.buf[h%ringCap] = credEntry{}
	r.head.Store(h + 1)
	return int(e.vnet), true
}

// earliest returns the oldest credit's maturity time. Consumer side only.
func (r *credRing) earliest() (sim.Cycle, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	return r.buf[h%ringCap].at, true
}

// count returns the number of queued credits for the given vnet (checker
// use; only safe at a quiescent point).
func (r *credRing) count(vnet int) int {
	n := 0
	for h, t := r.head.Load(), r.tail.Load(); h != t; h++ {
		if int(r.buf[h%ringCap].vnet) == vnet {
			n++
		}
	}
	return n
}
