package noc

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/trace"
)

// Endpoint is anything attached to a tile's network interface (an L2
// controller, an LLC slice, a memory controller). Receive must always accept
// the packet; endpoints queue internally and apply protocol-level flow
// control themselves.
type Endpoint interface {
	Receive(pkt *Packet, now sim.Cycle)
}

// delivered is an ejected packet waiting out its link delay to the endpoint.
type delivered struct {
	pkt     *Packet
	readyAt sim.Cycle
}

// niStream is an in-progress packet injection from the NI into the local
// router's input port.
type niStream struct {
	pkt  *Packet
	vc   *inputVC
	sent int
}

// NI is a tile's network interface. It multiplexes the co-located endpoints
// (L2 slice, LLC slice, and possibly a memory controller) onto the single
// local injection link, one flit per cycle, round-robin across per-unit
// per-vnet FIFO queues; and it demultiplexes ejected packets to endpoints by
// destination unit.
type NI struct {
	node NodeID
	net  *Network
	h    *sim.Handle
	// st is the stats bundle this NI and its tile's components account into:
	// the network-wide bundle in serial runs, the tile's lane shard in
	// parallel runs (see Parallelize).
	st        *stats.All
	queues    [stats.NumUnits][NumVNets][]*Packet
	queued    int // total packets across all queues
	endpoints [stats.NumUnits]Endpoint
	stream    *niStream
	// cur is the backing storage for stream: one injection is in flight at a
	// time, so the stream state lives in the NI instead of a per-injection
	// allocation.
	cur      niStream
	delivery []delivered
	rr       int
	// seq feeds this NI's packet IDs; combined with the node number so IDs
	// stay unique and deterministic without a network-global counter.
	seq uint64
	// pktPool / payloadPool recycle packets and their reference-counted
	// payloads tile-locally. The tile's router also draws its multicast
	// replicas from here (the router shares its tile's lane, so that is
	// race-free), which keeps replicas recycling back to the pools they
	// came from.
	pktPool     []*Packet
	payloadPool []RefPayload
	// tr is this NI's trace shard (nil when tracing is off). All writes to
	// it happen on the tile's lane: Inject runs from the tile's endpoints,
	// deliver from the NI's own tick.
	tr *trace.Shard
	// tp is the end-to-end recovery state (retransmit windows, receiver
	// dedup, pending acks), allocated only when the fault plan schedules
	// lossy kinds; nil keeps fault-free hot paths allocation-identical. All
	// access happens on the tile's lane (Inject from co-located endpoints,
	// everything else from the NI's own tick). See transport.go.
	tp *niTransport
}

// CanInject reports whether the unit's vnet queue has room for another
// packet. The room may shrink transiently under an InjSpike fault, so a
// CanInject-then-Inject pair is advisory, not a reservation; Inject itself
// reports refusal.
func (ni *NI) CanInject(unit stats.Unit, vnet int) bool {
	depth := ni.net.cfg.InjQueueDepth
	if f := ni.net.faults; f != nil {
		depth = f.InjQueueCap(ni.node, depth)
	}
	return len(ni.queues[unit][vnet]) < depth
}

// Inject enqueues a packet for injection. A full queue — or, under lossy
// faults, a full retransmit window — refuses the packet (backpressure: the
// packet stays with the caller, which retries next cycle) and reports false;
// the refusal is counted in InjRefused.
func (ni *NI) Inject(pkt *Packet, now sim.Cycle) bool {
	if !ni.CanInject(pkt.SrcUnit, pkt.VNet) {
		ni.st.Net.InjRefused++
		return false
	}
	if ni.net.lossy && !pkt.IsAck && !pkt.retx && !pkt.Filterable && ni.windowFull(pkt.VNet) {
		ni.st.Net.InjRefused++
		return false
	}
	if pkt.Dests.Empty() {
		panic("noc: injecting packet with empty destination set")
	}
	if pkt.Filterable && pkt.Size != 1 {
		panic("noc: filterable requests must be single-flit")
	}
	ni.seq++
	pkt.ID = uint64(ni.node)<<32 | ni.seq
	pkt.InjectedAt = now
	pkt.Src = ni.node
	if ni.net.lossy {
		ni.stampTransport(pkt, now)
	}
	ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KInject, Node: int32(ni.node),
		Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux(pkt.Dests), A: int32(pkt.DstUnit), B: pktFlags(pkt)})
	ni.queues[pkt.SrcUnit][pkt.VNet] = append(ni.queues[pkt.SrcUnit][pkt.VNet], pkt)
	ni.queued++
	ni.h.Wake()
	return true
}

// NewPacket returns a zeroed pool-backed packet for an endpoint to fill and
// inject. Pool-backed packets rejoin the free list automatically when a
// router releases them; the delivered copies are returned via Recycle.
func (ni *NI) NewPacket() *Packet { return ni.getPacket() }

// NewPayload pops a recycled packet payload from this tile's payload free
// list, or returns nil when it is empty. Payloads enter the list when the
// last packet carrying them dies (see RefPayload).
func (ni *NI) NewPayload() RefPayload {
	pool := ni.payloadPool
	if k := len(pool); k > 0 {
		rp := pool[k-1]
		pool[k-1] = nil
		ni.payloadPool = pool[:k-1]
		return rp
	}
	return nil
}

// PutPayload adds a payload to this tile's free list. Endpoints use it to
// pre-warm the list in slab-sized blocks: a NewPayload miss costs one
// allocation per slab instead of one per message.
func (ni *NI) PutPayload(rp RefPayload) { ni.payloadPool = append(ni.payloadPool, rp) }

// Recycle returns a packet the endpoint has fully processed to the tile's
// free list. Only pool-born packets are pooled; caller-owned packets pass
// through unharmed, so endpoints may call this unconditionally on every
// delivered packet they do not retain.
func (ni *NI) Recycle(pkt *Packet) { ni.putPacket(pkt) }

// pktSlab is the block size of a packet-pool refill. Misses allocate a
// whole slab in one allocation instead of one packet at a time: the pool
// only ever grows to the steady-state in-flight population, so coarse
// refills cut the allocation count ~64x without changing the footprint
// materially.
const pktSlab = 64

func (ni *NI) getPacket() *Packet {
	if k := len(ni.pktPool); k > 0 {
		p := ni.pktPool[k-1]
		ni.pktPool[k-1] = nil
		ni.pktPool = ni.pktPool[:k-1]
		return p
	}
	blk := make([]Packet, pktSlab)
	for i := range blk {
		blk[i].pooled = true
	}
	for i := range blk[:pktSlab-1] {
		ni.pktPool = append(ni.pktPool, &blk[i])
	}
	return &blk[pktSlab-1]
}

func (ni *NI) putPacket(p *Packet) {
	if !p.pooled {
		return
	}
	if rp, ok := p.Payload.(RefPayload); ok && rp.Release() {
		ni.payloadPool = append(ni.payloadPool, rp)
	}
	*p = Packet{pooled: true}
	ni.pktPool = append(ni.pktPool, p)
}

// Tick delivers matured ejections, retransmits overdue unacked window
// entries (lossy runs only), continues the current injection stream, and
// starts a new one when the link is idle.
func (ni *NI) Tick(now sim.Cycle) {
	ni.deliver(now)
	if ni.net.lossy {
		ni.checkRetransmits(now)
	}
	if ni.stream == nil {
		ni.pick(now)
	}
	ni.pump(now)
	ni.reschedule()
}

// reschedule reports quiescence to the engine: an NI with no queued packets
// and no active stream sleeps until its earliest pending delivery or — under
// lossy faults — its earliest retransmit deadline (forever if none). Inject
// and scheduleDelivery wake it.
func (ni *NI) reschedule() {
	if ni.stream != nil || ni.queued != 0 {
		return
	}
	min := sim.NeverWake
	if ni.net.lossy {
		next, idle := ni.transportDeadline()
		if !idle {
			return // pending acks or a dead sender: stay awake
		}
		min = next
	}
	for _, d := range ni.delivery {
		if d.readyAt < min {
			min = d.readyAt
		}
	}
	if min == sim.NeverWake {
		ni.h.Sleep()
		return
	}
	ni.h.SleepUntil(min)
}

func (ni *NI) deliver(now sim.Cycle) {
	kept := ni.delivery[:0]
	for _, d := range ni.delivery {
		if d.readyAt > now {
			kept = append(kept, d)
			continue
		}
		fate := LossNone
		if ni.net.lossy {
			var admit bool
			admit, fate = ni.transportAdmit(d.pkt, now)
			if !admit {
				continue
			}
		}
		if fate == LossDup {
			// Snapshot the header first: the endpoint may recycle (zero) the
			// packet inside handoff, and the simulated second arrival needs
			// the original identity.
			dup := *d.pkt
			ni.handoff(d.pkt, now)
			ni.simulateDup(&dup, now)
		} else {
			ni.handoff(d.pkt, now)
		}
	}
	ni.delivery = kept
	if ni.net.lossy {
		ni.flushHeld(now)
		ni.flushAcks(now)
	}
}

// handoff performs the endpoint delivery proper: accounting, the KDeliver
// trace event, and the Receive call.
func (ni *NI) handoff(pkt *Packet, now sim.Cycle) {
	ep := ni.endpoints[pkt.DstUnit]
	if ep == nil {
		panic(fmt.Sprintf("noc: no endpoint for unit %v at node %d", pkt.DstUnit, ni.node))
	}
	st := &ni.st.Net
	st.EjectedPackets[pkt.DstUnit][pkt.Class]++
	st.PacketLatencySum += uint64(now - pkt.InjectedAt)
	st.PacketCount++
	ni.net.eng.Progress()
	ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KDeliver, Node: int32(ni.node),
		Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux(pkt.Dests), A: int32(pkt.DstUnit), B: pktFlags(pkt)})
	ep.Receive(pkt, now)
}

// laneUnit and laneVNet decompose an injection arbitration lane index into
// its (unit, vnet) pair. pick runs on every NI tick with an idle link, and
// the div/mod decomposition showed up in profiles.
var laneUnit [int(stats.NumUnits) * NumVNets]stats.Unit
var laneVNet [int(stats.NumUnits) * NumVNets]int

func init() {
	for l := range laneUnit {
		laneUnit[l] = stats.Unit(l / NumVNets)
		laneVNet[l] = l % NumVNets
	}
}

// pick selects the next packet to inject, round-robin over (unit, vnet)
// queues, subject to a free local-router VC. Under OrdPush, an invalidation
// at the head of a control queue is held while a same-line push from the
// same tile is still queued or streaming, preserving push-before-
// invalidation order from the very first link.
func (ni *NI) pick(now sim.Cycle) {
	if ni.queued == 0 {
		return
	}
	lanes := len(laneUnit)
	lane := ni.rr
	for k := 0; k < lanes; k++ {
		if k > 0 {
			if lane++; lane == lanes {
				lane = 0
			}
		}
		unit := laneUnit[lane]
		vnet := laneVNet[lane]
		q := ni.queues[unit][vnet]
		if len(q) == 0 {
			continue
		}
		pkt := q[0]
		if pkt.IsInv && ni.net.cfg.OrdPushInvStall && ni.pushPending(pkt.Addr) {
			ni.st.Net.StalledInvCycles++
			continue
		}
		r := ni.net.routers[ni.node]
		vc := r.freeVC(PortLocal, vnet)
		if vc == nil {
			continue
		}
		vc.reserved = true
		r.claim(vc)
		// Dequeue by copying down so the backing array is reused instead of
		// sliding toward reallocation (queues are at most InjQueueDepth long).
		copy(q, q[1:])
		q[len(q)-1] = nil
		ni.queues[unit][vnet] = q[:len(q)-1]
		ni.queued--
		ni.cur = niStream{pkt: pkt, vc: vc}
		ni.stream = &ni.cur
		ni.st.Net.InjectedPackets[pkt.SrcUnit][pkt.Class]++
		ni.rr = (lane + 1) % lanes
		return
	}
}

// PushCovering reports whether a push packet that embeds a response for
// (addr, requester) is still queued or streaming at this NI. The home node's
// local-port filter logically extends over the injection queue: a read
// request reaching the home while such a push has not yet left the tile is
// prunable exactly like an in-router hit.
func (ni *NI) PushCovering(addr uint64, requester NodeID) bool {
	if s := ni.stream; s != nil && s.pkt.IsPush && s.pkt.Addr == addr && s.pkt.Dests.Has(requester) {
		return true
	}
	for u := stats.Unit(0); u < stats.NumUnits; u++ {
		for _, p := range ni.queues[u][VNetData] {
			if p.IsPush && p.Addr == addr && p.Dests.Has(requester) {
				return true
			}
		}
	}
	return false
}

// pushPending reports whether a push for addr is still queued or streaming at
// this NI.
func (ni *NI) pushPending(addr uint64) bool {
	if ni.stream != nil && ni.stream.pkt.IsPush && ni.stream.pkt.Addr == addr {
		return true
	}
	for u := stats.Unit(0); u < stats.NumUnits; u++ {
		for _, p := range ni.queues[u][VNetData] {
			if p.IsPush && p.Addr == addr {
				return true
			}
		}
	}
	return false
}

// pump streams one flit of the current injection per cycle.
func (ni *NI) pump(now sim.Cycle) {
	s := ni.stream
	if s == nil {
		return
	}
	s.sent++
	ni.st.Net.InjectedFlits[s.pkt.SrcUnit][s.pkt.Class]++
	ni.net.eng.Progress()
	if s.sent == 1 {
		s.vc.pkt = s.pkt
		s.vc.headAt = now + 1
		s.vc.reserved = false
		r := ni.net.routers[ni.node]
		r.unrouted++
		if s.vc.headAt < r.minHeadAt {
			r.minHeadAt = s.vc.headAt
		}
	}
	if s.sent == s.pkt.Size {
		ni.stream = nil
	}
}

func (ni *NI) scheduleDelivery(pkt *Packet, at sim.Cycle) {
	ni.delivery = append(ni.delivery, delivered{pkt: pkt, readyAt: at})
	ni.h.WakeAt(at)
}

// Network is the complete mesh: routers, NIs, and accounting.
type Network struct {
	cfg     Config
	eng     *sim.Engine
	st      *stats.All
	routers []*Router
	nis     []*NI
	// faults is the installed fault-injection hook, nil when injection is
	// off (the default); hot paths gate every fault check on that nil.
	faults FaultHook
	// lossy is set by SetFaults when the plan schedules MsgDrop/MsgDup/
	// MsgCorrupt; it arms the end-to-end recovery layer. The resolved knobs
	// below come from cfg.WithTransportDefaults at construction.
	lossy        bool
	seqMask      uint32
	retryWindow  int
	retryTimeout sim.Cycle
	maxRetries   int
}

// New builds a mesh network and registers its components with the engine.
// NIs tick before routers each cycle; all cross-component handoffs are gated
// on readyAt stamps so the order carries no timing meaning.
func New(cfg Config, eng *sim.Engine, st *stats.All) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, eng: eng, st: st}
	t := cfg.WithTransportDefaults()
	n.seqMask = uint32(1)<<uint(t.SeqBits) - 1
	n.retryWindow = t.RetryWindow
	n.retryTimeout = sim.Cycle(t.RetryTimeout)
	n.maxRetries = t.MaxRetries
	nodes := cfg.Nodes()
	n.routers = make([]*Router, nodes)
	n.nis = make([]*NI, nodes)
	st.Net.LinkFlits = make([]uint64, nodes*4)
	for i := 0; i < nodes; i++ {
		n.routers[i] = newRouter(NodeID(i), n)
		n.nis[i] = &NI{node: NodeID(i), net: n, st: st}
	}
	for i := 0; i < nodes; i++ {
		for o := 0; o < NumPorts; o++ {
			if o == PortLocal {
				continue
			}
			if nb := cfg.neighbour(NodeID(i), o); nb >= 0 {
				n.routers[i].nbr[o] = n.routers[nb]
				// Each link starts with the full downstream VC pool as
				// credits; edge ports keep zero and are never routed to.
				for v := 0; v < NumVNets; v++ {
					n.routers[i].credits[o][v] = int16(cfg.VCsPerVNet)
				}
			}
		}
	}
	for i := 0; i < nodes; i++ {
		n.nis[i].h = eng.Register(n.nis[i])
	}
	for i := 0; i < nodes; i++ {
		n.routers[i].h = eng.Register(n.routers[i])
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers an endpoint at a tile.
func (n *Network) Attach(node NodeID, unit stats.Unit, ep Endpoint) {
	n.nis[node].endpoints[unit] = ep
}

// NI returns the network interface of a tile.
func (n *Network) NI(node NodeID) *NI { return n.nis[node] }

// Parallelize prepares the network for the parallel tick executor: NI i and
// router i join lane i (ticking alongside their tile's endpoints) and
// account into that tile's stats shard. laneStats must hold one bundle per
// tile. Routers can tick on lanes because all neighbour communication flows
// through the SPSC arrival/credit rings plus staged wakes (see ring.go);
// a router's tick touches no other router's mutable state. Each lane shard
// gets its own LinkFlits slice, merged index-wise by stats.Add.
func (n *Network) Parallelize(laneStats []*stats.All) {
	links := len(n.nis) * 4
	for i, ni := range n.nis {
		ni.st = laneStats[i]
		ni.h.SetLane(i)
	}
	for i, r := range n.routers {
		r.st = laneStats[i]
		r.h.SetLane(i)
		if laneStats[i].Net.LinkFlits == nil {
			laneStats[i].Net.LinkFlits = make([]uint64, links)
		}
	}
}

// LinkIndex returns the LinkFlits index for the link leaving node through
// port, for per-link load reporting (Fig 14).
func LinkIndex(node NodeID, port int) int { return int(node)*4 + port }

// LinkName names a link index.
func (n *Network) LinkName(idx int) string {
	node := NodeID(idx / 4)
	port := idx % 4
	x, y := n.cfg.XY(node)
	return fmt.Sprintf("(%d,%d)->%s", x, y, PortName(port))
}

// Quiescent reports whether no packets are queued, streaming, or buffered
// anywhere in the network, including the recovery layer's unacked windows,
// parked invalidations, and pending acks.
func (n *Network) Quiescent() bool {
	for _, ni := range n.nis {
		if ni.stream != nil || len(ni.delivery) != 0 {
			return false
		}
		if tp := ni.tp; tp != nil {
			if len(tp.ackDue) != 0 || len(tp.held) != 0 {
				return false
			}
			for v := range tp.tx {
				if len(tp.tx[v].entries) != 0 {
					return false
				}
			}
		}
		for u := range ni.queues {
			for v := range ni.queues[u] {
				if len(ni.queues[u][v]) != 0 {
					return false
				}
			}
		}
	}
	for _, r := range n.routers {
		for p := 0; p < NumPorts; p++ {
			if r.outStream[p] != nil {
				return false
			}
			if r.arrivals[p].len() != 0 {
				return false
			}
			for i := range r.in[p] {
				if r.in[p][i].pkt != nil || r.in[p][i].reserved {
					return false
				}
			}
		}
	}
	return true
}
