package noc

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// Endpoint is anything attached to a tile's network interface (an L2
// controller, an LLC slice, a memory controller). Receive must always accept
// the packet; endpoints queue internally and apply protocol-level flow
// control themselves.
type Endpoint interface {
	Receive(pkt *Packet, now sim.Cycle)
}

// delivered is an ejected packet waiting out its link delay to the endpoint.
type delivered struct {
	pkt     *Packet
	readyAt sim.Cycle
}

// niStream is an in-progress packet injection from the NI into the local
// router's input port.
type niStream struct {
	pkt  *Packet
	vc   *inputVC
	sent int
}

// NI is a tile's network interface. It multiplexes the co-located endpoints
// (L2 slice, LLC slice, and possibly a memory controller) onto the single
// local injection link, one flit per cycle, round-robin across per-unit
// per-vnet FIFO queues; and it demultiplexes ejected packets to endpoints by
// destination unit.
type NI struct {
	node      NodeID
	net       *Network
	queues    [stats.NumUnits][NumVNets][]*Packet
	endpoints [stats.NumUnits]Endpoint
	stream    *niStream
	delivery  []delivered
	rr        int
}

// CanInject reports whether the unit's vnet queue has room for another
// packet; controllers must check before calling Inject.
func (ni *NI) CanInject(unit stats.Unit, vnet int) bool {
	return len(ni.queues[unit][vnet]) < ni.net.cfg.InjQueueDepth
}

// Inject enqueues a packet for injection. It panics if the queue is full;
// callers gate on CanInject.
func (ni *NI) Inject(pkt *Packet, now sim.Cycle) {
	if !ni.CanInject(pkt.SrcUnit, pkt.VNet) {
		panic(fmt.Sprintf("noc: injection queue overflow at node %d unit %v vnet %d", ni.node, pkt.SrcUnit, pkt.VNet))
	}
	if pkt.Dests.Empty() {
		panic("noc: injecting packet with empty destination set")
	}
	if pkt.Filterable && pkt.Size != 1 {
		panic("noc: filterable requests must be single-flit")
	}
	pkt.ID = ni.net.nextPktID
	ni.net.nextPktID++
	pkt.InjectedAt = now
	pkt.Src = ni.node
	ni.queues[pkt.SrcUnit][pkt.VNet] = append(ni.queues[pkt.SrcUnit][pkt.VNet], pkt)
}

// Tick delivers matured ejections, continues the current injection stream,
// and starts a new one when the link is idle.
func (ni *NI) Tick(now sim.Cycle) {
	ni.deliver(now)
	if ni.stream == nil {
		ni.pick(now)
	}
	ni.pump(now)
}

func (ni *NI) deliver(now sim.Cycle) {
	kept := ni.delivery[:0]
	for _, d := range ni.delivery {
		if d.readyAt > now {
			kept = append(kept, d)
			continue
		}
		ep := ni.endpoints[d.pkt.DstUnit]
		if ep == nil {
			panic(fmt.Sprintf("noc: no endpoint for unit %v at node %d", d.pkt.DstUnit, ni.node))
		}
		st := &ni.net.st.Net
		st.EjectedPackets[d.pkt.DstUnit][d.pkt.Class]++
		st.PacketLatencySum += uint64(now - d.pkt.InjectedAt)
		st.PacketCount++
		ni.net.eng.Progress()
		ep.Receive(d.pkt, now)
	}
	ni.delivery = kept
}

// pick selects the next packet to inject, round-robin over (unit, vnet)
// queues, subject to a free local-router VC. Under OrdPush, an invalidation
// at the head of a control queue is held while a same-line push from the
// same tile is still queued or streaming, preserving push-before-
// invalidation order from the very first link.
func (ni *NI) pick(now sim.Cycle) {
	lanes := int(stats.NumUnits) * NumVNets
	for k := 0; k < lanes; k++ {
		lane := (ni.rr + k) % lanes
		unit := stats.Unit(lane / NumVNets)
		vnet := lane % NumVNets
		q := ni.queues[unit][vnet]
		if len(q) == 0 {
			continue
		}
		pkt := q[0]
		if pkt.IsInv && ni.net.cfg.OrdPushInvStall && ni.pushPending(pkt.Addr) {
			ni.net.st.Net.StalledInvCycles++
			continue
		}
		r := ni.net.routers[ni.node]
		vc := r.freeVC(PortLocal, vnet)
		if vc == nil {
			continue
		}
		vc.reserved = true
		r.claim(vc)
		ni.queues[unit][vnet] = q[1:]
		ni.stream = &niStream{pkt: pkt, vc: vc}
		ni.net.st.Net.InjectedPackets[pkt.SrcUnit][pkt.Class]++
		ni.rr = (lane + 1) % lanes
		return
	}
}

// PushCovering reports whether a push packet that embeds a response for
// (addr, requester) is still queued or streaming at this NI. The home node's
// local-port filter logically extends over the injection queue: a read
// request reaching the home while such a push has not yet left the tile is
// prunable exactly like an in-router hit.
func (ni *NI) PushCovering(addr uint64, requester NodeID) bool {
	if s := ni.stream; s != nil && s.pkt.IsPush && s.pkt.Addr == addr && s.pkt.Dests.Has(requester) {
		return true
	}
	for u := stats.Unit(0); u < stats.NumUnits; u++ {
		for _, p := range ni.queues[u][VNetData] {
			if p.IsPush && p.Addr == addr && p.Dests.Has(requester) {
				return true
			}
		}
	}
	return false
}

// pushPending reports whether a push for addr is still queued or streaming at
// this NI.
func (ni *NI) pushPending(addr uint64) bool {
	if ni.stream != nil && ni.stream.pkt.IsPush && ni.stream.pkt.Addr == addr {
		return true
	}
	for u := stats.Unit(0); u < stats.NumUnits; u++ {
		for _, p := range ni.queues[u][VNetData] {
			if p.IsPush && p.Addr == addr {
				return true
			}
		}
	}
	return false
}

// pump streams one flit of the current injection per cycle.
func (ni *NI) pump(now sim.Cycle) {
	s := ni.stream
	if s == nil {
		return
	}
	s.sent++
	ni.net.st.Net.InjectedFlits[s.pkt.SrcUnit][s.pkt.Class]++
	ni.net.eng.Progress()
	if s.sent == 1 {
		s.vc.pkt = s.pkt
		s.vc.headAt = now + 1
		s.vc.reserved = false
	}
	if s.sent == s.pkt.Size {
		ni.stream = nil
	}
}

func (ni *NI) scheduleDelivery(pkt *Packet, at sim.Cycle) {
	ni.delivery = append(ni.delivery, delivered{pkt: pkt, readyAt: at})
}

// Network is the complete mesh: routers, NIs, and accounting.
type Network struct {
	cfg       Config
	eng       *sim.Engine
	st        *stats.All
	routers   []*Router
	nis       []*NI
	nextPktID uint64
}

// New builds a mesh network and registers its components with the engine.
// NIs tick before routers each cycle; all cross-component handoffs are gated
// on readyAt stamps so the order carries no timing meaning.
func New(cfg Config, eng *sim.Engine, st *stats.All) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, eng: eng, st: st}
	nodes := cfg.Nodes()
	n.routers = make([]*Router, nodes)
	n.nis = make([]*NI, nodes)
	st.Net.LinkFlits = make([]uint64, nodes*4)
	for i := 0; i < nodes; i++ {
		n.routers[i] = newRouter(NodeID(i), n)
		n.nis[i] = &NI{node: NodeID(i), net: n}
	}
	for i := 0; i < nodes; i++ {
		eng.Register(n.nis[i])
	}
	for i := 0; i < nodes; i++ {
		eng.Register(n.routers[i])
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers an endpoint at a tile.
func (n *Network) Attach(node NodeID, unit stats.Unit, ep Endpoint) {
	n.nis[node].endpoints[unit] = ep
}

// NI returns the network interface of a tile.
func (n *Network) NI(node NodeID) *NI { return n.nis[node] }

// countLinkFlit accounts one flit traversing the inter-router link leaving
// `node` through output port `port`.
func (n *Network) countLinkFlit(node NodeID, port int, class stats.Class) {
	n.st.Net.LinkFlits[int(node)*4+port]++
	n.st.Net.TotalFlitsByClass[class]++
}

// LinkIndex returns the LinkFlits index for the link leaving node through
// port, for per-link load reporting (Fig 14).
func LinkIndex(node NodeID, port int) int { return int(node)*4 + port }

// LinkName names a link index.
func (n *Network) LinkName(idx int) string {
	node := NodeID(idx / 4)
	port := idx % 4
	x, y := n.cfg.XY(node)
	return fmt.Sprintf("(%d,%d)->%s", x, y, PortName(port))
}

// Quiescent reports whether no packets are queued, streaming, or buffered
// anywhere in the network.
func (n *Network) Quiescent() bool {
	for _, ni := range n.nis {
		if ni.stream != nil || len(ni.delivery) != 0 {
			return false
		}
		for u := range ni.queues {
			for v := range ni.queues[u] {
				if len(ni.queues[u][v]) != 0 {
					return false
				}
			}
		}
	}
	for _, r := range n.routers {
		for p := 0; p < NumPorts; p++ {
			if r.outStream[p] != nil {
				return false
			}
			for i := range r.in[p] {
				if r.in[p][i].pkt != nil || r.in[p][i].reserved {
					return false
				}
			}
		}
	}
	return true
}
