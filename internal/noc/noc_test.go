package noc

import (
	"testing"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// collector is a test endpoint recording received packets with timestamps.
type collector struct {
	got []received
}

type received struct {
	pkt *Packet
	at  sim.Cycle
}

func (c *collector) Receive(pkt *Packet, now sim.Cycle) {
	c.got = append(c.got, received{pkt, now})
}

// testNet builds a w x h network with a collector attached at every tile for
// every unit.
func testNet(t *testing.T, cfg Config) (*sim.Engine, *Network, []*collector) {
	t.Helper()
	eng := sim.NewEngine(10000, 1_000_000)
	st := stats.New()
	net, err := New(cfg, eng, st)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cols := make([]*collector, cfg.Nodes())
	for i := range cols {
		cols[i] = &collector{}
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			net.Attach(NodeID(i), u, cols[i])
		}
	}
	return eng, net, cols
}

func runUntil(t *testing.T, eng *sim.Engine, cond func() bool) sim.Cycle {
	t.Helper()
	end, err := eng.Run(cond)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return end
}

func TestDestSet(t *testing.T) {
	var d DestSet
	if !d.Empty() || d.Count() != 0 {
		t.Fatal("zero DestSet should be empty")
	}
	d = d.Add(3).Add(7).Add(63)
	if d.Count() != 3 || !d.Has(3) || !d.Has(7) || !d.Has(63) || d.Has(4) {
		t.Fatalf("membership wrong: %b", d)
	}
	if d.First() != 3 {
		t.Fatalf("First = %d, want 3", d.First())
	}
	d = d.Remove(3)
	if d.Has(3) || d.Count() != 2 {
		t.Fatalf("Remove failed: %b", d)
	}
	var seen []NodeID
	d.ForEach(func(n NodeID) { seen = append(seen, n) })
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 63 {
		t.Fatalf("ForEach order wrong: %v", seen)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero width", func(c *Config) { c.Width = 0 }, false},
		{"16x16 within the widened DestSet", func(c *Config) { c.Width, c.Height = 16, 16 }, true},
		{"too many nodes", func(c *Config) { c.Width, c.Height = 17, 16 }, false},
		{"no vcs", func(c *Config) { c.VCsPerVNet = 0 }, false},
		{"bad link width", func(c *Config) { c.LinkWidthBits = 100 }, false},
		{"no inj depth", func(c *Config) { c.InjQueueDepth = 0 }, false},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(4, 4)
		tc.mut(&cfg)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDataPacketSize(t *testing.T) {
	for _, tc := range []struct{ width, want int }{
		{64, 9}, {128, 5}, {256, 3}, {512, 2},
	} {
		cfg := DefaultConfig(4, 4)
		cfg.LinkWidthBits = tc.width
		if got := cfg.DataPacketSize(); got != tc.want {
			t.Errorf("width %d: size = %d, want %d", tc.width, got, tc.want)
		}
	}
}

func TestRoutingXYandYX(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	// From (0,0) to (3,3): XY goes east first, YX goes south first.
	if p := cfg.nextPort(cfg.Node(0, 0), cfg.Node(3, 3), true); p != PortEast {
		t.Errorf("XY first hop = %s, want E", PortName(p))
	}
	if p := cfg.nextPort(cfg.Node(0, 0), cfg.Node(3, 3), false); p != PortSouth {
		t.Errorf("YX first hop = %s, want S", PortName(p))
	}
	if p := cfg.nextPort(5, 5, true); p != PortLocal {
		t.Errorf("self route = %s, want L", PortName(p))
	}
	// Multicast partition: dests spread across the mesh from center.
	out := cfg.routeDests(cfg.Node(1, 1), OneDest(cfg.Node(0, 1)).Add(cfg.Node(3, 1)).Add(cfg.Node(1, 0)).Add(cfg.Node(1, 1)), true)
	if !out[PortWest].Has(cfg.Node(0, 1)) || !out[PortEast].Has(cfg.Node(3, 1)) ||
		!out[PortNorth].Has(cfg.Node(1, 0)) || !out[PortLocal].Has(cfg.Node(1, 1)) {
		t.Errorf("routeDests partition wrong: %v", out)
	}
}

func TestNeighbour(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	if nb := cfg.neighbour(cfg.Node(0, 0), PortWest); nb != -1 {
		t.Errorf("west of (0,0) = %d, want -1", nb)
	}
	if nb := cfg.neighbour(cfg.Node(0, 0), PortEast); nb != cfg.Node(1, 0) {
		t.Errorf("east of (0,0) = %d, want %d", nb, cfg.Node(1, 0))
	}
	if nb := cfg.neighbour(cfg.Node(2, 2), PortNorth); nb != cfg.Node(2, 1) {
		t.Errorf("north of (2,2) = %d, want %d", nb, cfg.Node(2, 1))
	}
}

func TestUnicastDelivery(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng, net, cols := testNet(t, cfg)
	pkt := &Packet{
		VNet: VNetReq, Class: stats.ClassReadRequest,
		SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(15), Addr: 0x40, Size: 1, Requester: 0,
	}
	net.NI(0).Inject(pkt, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[15].got) == 1 })
	got := cols[15].got[0]
	if got.pkt.Addr != 0x40 || got.pkt.Src != 0 {
		t.Fatalf("wrong packet delivered: %v", got.pkt)
	}
	// 6 hops (0,0)->(3,3) XY, ~3 cycles per hop plus injection/ejection.
	if got.at < 10 || got.at > 40 {
		t.Errorf("latency %d out of plausible range", got.at)
	}
	if !net.Quiescent() {
		t.Error("network not quiescent after delivery")
	}
}

func TestSelfDelivery(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng, net, cols := testNet(t, cfg)
	pkt := &Packet{
		VNet: VNetData, Class: stats.ClassReadSharedData,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(5), Addr: 0x80, Size: cfg.DataPacketSize(),
	}
	net.NI(5).Inject(pkt, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[5].got) == 1 })
}

func TestMulticastReachesAllDests(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng, net, cols := testNet(t, cfg)
	var dests DestSet
	for _, d := range []NodeID{0, 3, 7, 9, 12, 15} {
		dests = dests.Add(d)
	}
	pkt := &Packet{
		VNet: VNetData, Class: stats.ClassPushData,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: dests, Addr: 0x1000, Size: cfg.DataPacketSize(), IsPush: true,
	}
	net.NI(5).Inject(pkt, eng.Now())
	runUntil(t, eng, func() bool {
		n := 0
		dests.ForEach(func(d NodeID) {
			if len(cols[d].got) > 0 {
				n++
			}
		})
		return n == dests.Count()
	})
	dests.ForEach(func(d NodeID) {
		if len(cols[d].got) != 1 {
			t.Errorf("dest %d received %d packets, want 1", d, len(cols[d].got))
		}
		p := cols[d].got[0].pkt
		if !p.Dests.Has(d) {
			t.Errorf("dest %d received replica not containing itself: %b", d, p.Dests)
		}
	})
}

func TestManyPacketsAllDelivered(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng, net, cols := testNet(t, cfg)
	const per = 20
	want := 0
	next := 0
	inject := func(now sim.Cycle) {
		for src := 0; src < cfg.Nodes(); src++ {
			ni := net.NI(NodeID(src))
			if !ni.CanInject(stats.UnitL2, VNetData) {
				continue
			}
			dst := NodeID((src*7 + next) % cfg.Nodes())
			ni.Inject(&Packet{
				VNet: VNetData, Class: stats.ClassExclusiveData,
				SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
				Dests: OneDest(dst), Addr: uint64(64 * (src + next)), Size: cfg.DataPacketSize(),
			}, now)
			want++
		}
		next++
	}
	for i := 0; i < per; i++ {
		inject(eng.Now())
		eng.Step()
	}
	runUntil(t, eng, func() bool {
		got := 0
		for _, c := range cols {
			got += len(c.got)
		}
		return got == want
	})
	if !net.Quiescent() {
		t.Error("network not quiescent after draining")
	}
}

func TestInjectionBackpressure(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.InjQueueDepth = 2
	_, net, _ := testNet(t, cfg)
	ni := net.NI(0)
	for i := 0; i < 2; i++ {
		if !ni.CanInject(stats.UnitL2, VNetReq) {
			t.Fatalf("queue should accept packet %d", i)
		}
		ni.Inject(&Packet{VNet: VNetReq, SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
			Dests: OneDest(1), Size: 1}, 0)
	}
	if ni.CanInject(stats.UnitL2, VNetReq) {
		t.Fatal("queue should be full")
	}
	if ni.CanInject(stats.UnitL2, VNetData) {
		// Different vnet queue must be independent.
	} else {
		t.Fatal("other vnet queue should be empty")
	}
}

// TestInjectionOverflowRefused is the regression test for the injection-queue
// overflow panic: injecting into a full queue must refuse the packet (Inject
// returns false, InjRefused counts it) instead of crashing the run. Callers
// hold the packet and retry, turning queue exhaustion into backpressure.
func TestInjectionOverflowRefused(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.InjQueueDepth = 2
	_, net, _ := testNet(t, cfg)
	ni := net.NI(0)
	mk := func() *Packet {
		return &Packet{VNet: VNetReq, SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
			Dests: OneDest(1), Size: 1}
	}
	for i := 0; i < 2; i++ {
		if !ni.Inject(mk(), 0) {
			t.Fatalf("packet %d refused with queue space free", i)
		}
	}
	// Before the backpressure fix this third call panicked.
	if ni.Inject(mk(), 0) {
		t.Fatal("overflowing injection accepted")
	}
	if got := net.st.Net.InjRefused; got != 1 {
		t.Fatalf("InjRefused = %d, want 1", got)
	}
}

func TestFilterPrunesTrailingRequest(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	eng, net, cols := testNet(t, cfg)
	st := net.st

	// Home at tile 5 pushes to tiles 0 and 2 (and others); tile 2
	// simultaneously sends a read request for the same line toward tile 5.
	// Requests route XY and pushes YX, so they share the reverse path and
	// the request must be filtered in some router along the way.
	push := &Packet{
		VNet: VNetData, Class: stats.ClassPushData, IsPush: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(0).Add(2), Addr: 0xbeef00, Size: cfg.DataPacketSize(),
	}
	req := &Packet{
		VNet: VNetReq, Class: stats.ClassReadRequest, Filterable: true,
		SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(5), Addr: 0xbeef00, Size: 1, Requester: 2,
	}
	net.NI(5).Inject(push, eng.Now())
	net.NI(2).Inject(req, eng.Now())
	runUntil(t, eng, func() bool {
		return len(cols[0].got) >= 1 && len(cols[2].got) >= 1
	})
	// Drain any residue.
	for i := 0; i < 200; i++ {
		eng.Step()
	}
	if len(cols[5].got) != 0 {
		t.Errorf("request reached the home node despite filter: %v", cols[5].got[0].pkt)
	}
	if st.Net.FilteredRequests != 1 {
		t.Errorf("FilteredRequests = %d, want 1", st.Net.FilteredRequests)
	}
}

func TestFilterDisabledRequestPasses(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = false
	eng, net, cols := testNet(t, cfg)
	push := &Packet{
		VNet: VNetData, Class: stats.ClassPushData, IsPush: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(2), Addr: 0xbeef00, Size: cfg.DataPacketSize(),
	}
	req := &Packet{
		VNet: VNetReq, Class: stats.ClassReadRequest, Filterable: true,
		SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(5), Addr: 0xbeef00, Size: 1, Requester: 2,
	}
	net.NI(5).Inject(push, eng.Now())
	net.NI(2).Inject(req, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[5].got) == 1 && len(cols[2].got) == 1 })
}

func TestFilterDoesNotPruneOtherRequester(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	eng, net, cols := testNet(t, cfg)
	// Push destined only to tile 0; request from tile 2 for the same line
	// must NOT be filtered (its response is not embedded in the push).
	push := &Packet{
		VNet: VNetData, Class: stats.ClassPushData, IsPush: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(0), Addr: 0xbeef00, Size: cfg.DataPacketSize(),
	}
	req := &Packet{
		VNet: VNetReq, Class: stats.ClassReadRequest, Filterable: true,
		SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(5), Addr: 0xbeef00, Size: 1, Requester: 2,
	}
	net.NI(5).Inject(push, eng.Now())
	net.NI(2).Inject(req, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[5].got) == 1 && len(cols[0].got) == 1 })
}

func TestOrdPushInvStaysBehindPush(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	cfg.OrdPushInvStall = true
	eng, net, cols := testNet(t, cfg)
	// LLC at tile 5 sends a push to tile 10, then immediately an
	// invalidation for the same line to tile 10. The invalidation must be
	// delivered after the push.
	push := &Packet{
		VNet: VNetData, Class: stats.ClassPushData, IsPush: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(10), Addr: 0xabc0, Size: cfg.DataPacketSize(),
	}
	inv := &Packet{
		VNet: VNetCtrl, Class: stats.ClassOther, IsInv: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(10), Addr: 0xabc0, Size: 1,
	}
	net.NI(5).Inject(push, eng.Now())
	net.NI(5).Inject(inv, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[10].got) == 2 })
	if !cols[10].got[0].pkt.IsPush {
		t.Fatalf("invalidation overtook the push: first=%v", cols[10].got[0].pkt)
	}
}

func TestOrdPushInvUnrelatedLineNotStalled(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	cfg.OrdPushInvStall = true
	eng, net, cols := testNet(t, cfg)
	// Push for line A; invalidation for a DIFFERENT line B: a 1-flit
	// control packet should win the race against a 5-flit data packet.
	push := &Packet{
		VNet: VNetData, Class: stats.ClassPushData, IsPush: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(10), Addr: 0xaaa0, Size: cfg.DataPacketSize(),
	}
	inv := &Packet{
		VNet: VNetCtrl, Class: stats.ClassOther, IsInv: true,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(10), Addr: 0xbbb0, Size: 1,
	}
	net.NI(5).Inject(push, eng.Now())
	net.NI(5).Inject(inv, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[10].got) == 2 })
}

func TestLinkLoadAccounting(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng, net, cols := testNet(t, cfg)
	pkt := &Packet{
		VNet: VNetReq, Class: stats.ClassReadRequest,
		SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(3), Addr: 0x40, Size: 1, Requester: 0,
	}
	net.NI(0).Inject(pkt, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[3].got) == 1 })
	// XY from (0,0) to (3,0): three eastbound link traversals.
	for x := 0; x < 3; x++ {
		idx := LinkIndex(cfg.Node(x, 0), PortEast)
		if net.st.Net.LinkFlits[idx] != 1 {
			t.Errorf("link (%d,0)->E flits = %d, want 1", x, net.st.Net.LinkFlits[idx])
		}
	}
	if got := net.st.Net.TotalFlitsByClass[stats.ClassReadRequest]; got != 3 {
		t.Errorf("total ReadRequest link flits = %d, want 3", got)
	}
}

func TestPacketLatencyGrowsWithDistance(t *testing.T) {
	cfg := DefaultConfig(8, 8)
	eng, net, cols := testNet(t, cfg)
	near := &Packet{VNet: VNetReq, SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(1), Size: 1}
	net.NI(0).Inject(near, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[1].got) == 1 })
	nearLat := cols[1].got[0].at - near.InjectedAt

	far := &Packet{VNet: VNetReq, SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(63), Size: 1}
	net.NI(0).Inject(far, eng.Now())
	runUntil(t, eng, func() bool { return len(cols[63].got) == 1 })
	farLat := cols[63].got[0].at - far.InjectedAt
	if farLat <= nearLat {
		t.Errorf("far latency %d not greater than near latency %d", farLat, nearLat)
	}
	// 14 hops at 3 cycles/hop ~= 42 plus endpoint overheads.
	if farLat < 40 || farLat > 60 {
		t.Errorf("far latency %d outside expected envelope", farLat)
	}
}

func TestWiderLinkShortensDataPackets(t *testing.T) {
	lat := func(width int) sim.Cycle {
		cfg := DefaultConfig(4, 4)
		cfg.LinkWidthBits = width
		eng, net, cols := testNet(t, cfg)
		pkt := &Packet{VNet: VNetData, SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
			Dests: OneDest(15), Size: cfg.DataPacketSize()}
		net.NI(0).Inject(pkt, eng.Now())
		runUntil(t, eng, func() bool { return len(cols[15].got) == 1 })
		return cols[15].got[0].at
	}
	if l64, l512 := lat(64), lat(512); l512 >= l64 {
		t.Errorf("512-bit link latency %d not below 64-bit latency %d", l512, l64)
	}
}
