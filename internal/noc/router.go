package noc

import (
	"fmt"
	"math/bits"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/trace"
)

// inputVC is one virtual-channel buffer at a router input port. Virtual
// cut-through flow control means a VC holds at most one packet and a packet
// is admitted only into an empty VC, so the buffer always has room for the
// whole packet.
type inputVC struct {
	// port/idx locate this VC at its router; occPos is its position in the
	// router's occupied list (-1 when free).
	port, idx, occPos int

	pkt *Packet
	// headAt is the cycle the head flit is present in this buffer; flit i
	// is present at headAt+i (flits stream contiguously under the locked
	// input/output port discipline).
	headAt sim.Cycle
	// routed is set once stage 1 (route compute + filter actions) ran.
	routed bool
	// pending holds per-output-port destination subsets that still need a
	// replica sent; asynchronous multicast drains them one at a time.
	pending [NumPorts]DestSet
	// pendingPorts counts non-empty pending entries.
	pendingPorts int
	// active is the stream currently draining this VC, if any.
	active *stream
	// reserved marks a local-port VC claimed by the NI's pick whose head
	// flit has not been written yet (cleared at head delivery). Remote
	// arrivals never reserve: a head in flight lives in the input port's
	// arrival ring until it matures, and only then occupies a VC.
	reserved bool
}

func (vc *inputVC) free() bool { return vc.pkt == nil && !vc.reserved }

// stream is one in-progress replica transmission from an input VC through an
// output port. Both the input port and the output port are held until the
// tail flit departs, which keeps flit delivery contiguous and makes
// cut-through timing exact.
//
// The replica pointer is only valid until the head flit hands it to the
// downstream VC: from that moment the downstream router owns (and eventually
// recycles) the packet, and it can finish with it before this stream's tail
// departs — a RouterSlow window freezing this router mid-drain makes that
// overtaking real. Everything the remaining flits and the tail bookkeeping
// need is therefore snapshotted here at allocation time.
type stream struct {
	vc      *inputVC
	replica *Packet // nil once the head flit transfers ownership downstream
	inPort  int
	vcIdx   int // absolute VC index at the input port
	outPort int
	downR   *Router // adjacent router behind outPort, nil for PortLocal
	sent    int

	// Snapshot of the replica taken at allocation; safe to read for the
	// stream's whole lifetime regardless of who owns the packet.
	size    int
	vnet    int
	class   stats.Class
	dstUnit stats.Unit
	dests   DestSet
	addr    uint64
	id      uint64
	isPush  bool
}

// Router is a 2-stage virtual-cut-through router: stage 1 performs buffer
// write + route computation (plus the filter's registration/lookup actions in
// parallel, Fig 7a), stage 2 performs VC/switch allocation and switch
// traversal. Links add one cycle.
type Router struct {
	id  NodeID
	net *Network
	h   *sim.Handle
	in  [NumPorts][]inputVC
	// outStream / inLock serialize the switch at packet granularity: one
	// replica owns an output port (and its input port) until its tail
	// departs.
	outStream [NumPorts]*stream
	inLock    [NumPorts]*stream
	filters   *filterBank
	// rr holds per-output-port round-robin arbitration state.
	rr [NumPorts]int
	// occ lists VCs that hold or are reserved for a packet, so the per-
	// cycle pipeline stages touch only live work instead of scanning every
	// buffer. scratch is reused for iteration snapshots.
	occ     []*inputVC
	scratch []*inputVC
	// unrouted counts VCs holding a head that stage 1 has not routed yet;
	// when zero the stage-1 scans are skipped entirely.
	unrouted int
	// candMask[o] marks the occ positions of allocatable VCs with a replica
	// pending for output port o — a VC draining a replica through the switch
	// is excluded until its stream completes, since no other replica of it
	// can place meanwhile. Allocation iterates set bits in round-robin
	// position order instead of scanning occ (Validate caps a router at 64
	// VCs so one word suffices). candV counts the same candidates by vnet so
	// allocation can prove a port unplaceable (every candidate vnet's
	// downstream VC pool exhausted) in O(1), and invCand counts the
	// invalidation candidates whose stalled-cycle accounting happens
	// mid-scan and therefore forbids that shortcut.
	candMask [NumPorts]uint64
	candV    [NumPorts][NumVNets]int16
	invCand  [NumPorts]int16
	// minHeadAt lower-bounds the earliest arrival among unrouted heads still
	// in link transit; stage 1 skips its scan entirely before that cycle.
	// Head writes lower it, stage-1 scans recompute it exactly.
	minHeadAt sim.Cycle
	// freeCnt[p][v] counts free input VCs per (port, vnet), so exhausted
	// downstream pools are rejected without scanning the VC array.
	freeCnt [NumPorts][NumVNets]int16
	// nbr caches the adjacent router behind each output port (nil at mesh
	// edges and for the local port).
	nbr [NumPorts]*Router
	// credits[o][v] counts downstream input VCs of vnet v this router may
	// still claim through output port o. It mirrors the neighbour's per-
	// (port, vnet) free-VC pool without reading neighbour state: allocation
	// decrements locally, and the neighbour's release sends the credit back
	// through its credRet ring, link-delayed one cycle. Unused for the local
	// port (the NI claims VCs directly — same lane).
	credits [NumPorts][NumVNets]int16
	// arrivals[p] queues head-flit handoffs arriving through input port p;
	// the upstream router produces, this router consumes matured entries at
	// the top of its tick. Unused for the local port.
	arrivals [NumPorts]arrRing
	// credRet[p] queues credits this router returns to the upstream
	// neighbour behind input port p; this router produces (at release), the
	// neighbour consumes. Unused for the local port.
	credRet [NumPorts]credRing
	// st is the stats bundle this router accounts into: the network-wide
	// bundle in serial runs, the tile's lane shard in parallel runs (see
	// Parallelize).
	st *stats.All
	// streamPool recycles this router's per-replica stream allocations.
	// Per-router so parallel lanes never contend.
	streamPool []*stream
	// dmask[mode][o] is the set of destinations this router forwards through
	// output port o under YX (mode 0) or XY (mode 1) dimension-order routing.
	// Route computation reduces to one AND per port against the packet's
	// destination set.
	dmask [2][NumPorts]DestSet
	// tr is this router's trace shard (nil when tracing is off); all writes
	// to it happen from this router's own ticks — one lane.
	tr *trace.Shard
}

func newRouter(id NodeID, net *Network) *Router {
	r := &Router{id: id, net: net, st: net.st}
	total := NumVNets * net.cfg.VCsPerVNet
	for p := 0; p < NumPorts; p++ {
		r.in[p] = make([]inputVC, total)
		for i := range r.in[p] {
			vc := &r.in[p][i]
			vc.port, vc.idx, vc.occPos = p, i, -1
		}
		for v := 0; v < NumVNets; v++ {
			r.freeCnt[p][v] = int16(net.cfg.VCsPerVNet)
		}
	}
	for mode := 0; mode < 2; mode++ {
		for d := 0; d < net.cfg.Nodes(); d++ {
			p := net.cfg.nextPort(id, NodeID(d), mode == 1)
			r.dmask[mode][p] = r.dmask[mode][p].Add(NodeID(d))
		}
	}
	if net.cfg.FilterEnabled || net.cfg.OrdPushInvStall {
		r.filters = newFilterBank(net.cfg.VCsPerVNet)
	}
	return r
}

// claim registers a VC as occupied and wakes the router. Only the local NI
// calls it (same lane); remote arrivals enter through the arrival rings and
// enlist from the router's own tick.
func (r *Router) claim(vc *inputVC) {
	r.h.Wake()
	r.enlist(vc)
}

// enlist adds a VC to the occupied list and debits the free-VC pool.
func (r *Router) enlist(vc *inputVC) {
	if vc.occPos >= 0 {
		return
	}
	vc.occPos = len(r.occ)
	r.occ = append(r.occ, vc)
	r.freeCnt[vc.port][vc.idx/r.net.cfg.VCsPerVNet]--
}

// release resets a VC, drops it from the occupied list, and recycles the
// held packet: at this point every replica carries its own copy, so the
// buffered packet is dead.
func (r *Router) release(vc *inputVC, now sim.Cycle) {
	// Candidate accounting must read the packet's vnet/inv flags and the
	// VC's still-valid occ position, so it runs before the packet is
	// recycled (putPacket zeroes the struct) and before the occ swap below
	// hands the position to another VC. A VC with an active stream was
	// already removed from the counts at placement.
	if vc.pkt != nil {
		if vc.active == nil && vc.pendingPorts > 0 {
			bit := uint64(1) << uint(vc.occPos)
			for o := 0; o < NumPorts; o++ {
				if !vc.pending[o].Empty() {
					r.candMask[o] &^= bit
					r.candV[o][vc.pkt.VNet]--
					if vc.pkt.IsInv {
						r.invCand[o]--
					}
				}
			}
		}
		if !vc.routed {
			r.unrouted--
		}
		r.net.nis[r.id].putPacket(vc.pkt)
	}
	if vc.occPos >= 0 {
		last := len(r.occ) - 1
		moved := r.occ[last]
		r.occ[vc.occPos] = moved
		moved.occPos = vc.occPos
		r.occ = r.occ[:last]
		if moved != vc {
			// The swap moved the tail VC into the freed position; follow it
			// with any candidate bits it held at its old position.
			bit := uint64(1) << uint(last)
			nbit := uint64(1) << uint(vc.occPos)
			for o := 0; o < NumPorts; o++ {
				if r.candMask[o]&bit != 0 {
					r.candMask[o] = r.candMask[o]&^bit | nbit
				}
			}
		}
		vc.occPos = -1
		r.freeCnt[vc.port][vc.idx/r.net.cfg.VCsPerVNet]++
	}
	vc.pkt = nil
	vc.reserved = false
	vc.routed = false
	vc.pending = [NumPorts]DestSet{}
	vc.pendingPorts = 0
	vc.active = nil
	// Credit return: the freed buffer is new downstream space for the
	// adjacent upstream router. The credit travels back through this
	// router's ring with one cycle of link delay; the wake covers an
	// upstream router asleep blocked on exactly this VC pool (its own
	// reschedule ring scan covers the case where it ticks after us this
	// cycle and would otherwise clobber the wake).
	if vc.port != PortLocal {
		if nb := r.nbr[vc.port]; nb != nil {
			r.credRet[vc.port].push(vc.idx/r.net.cfg.VCsPerVNet, now+1)
			nb.h.WakeAt(now + 1)
		}
	}
}

// vcRange returns the [lo, hi) input-VC index range of a vnet.
func (r *Router) vcRange(vnet int) (int, int) {
	lo := vnet * r.net.cfg.VCsPerVNet
	return lo, lo + r.net.cfg.VCsPerVNet
}

// freeVC returns a free input VC for the vnet at the given port, or nil.
func (r *Router) freeVC(port, vnet int) *inputVC {
	if r.freeCnt[port][vnet] == 0 {
		return nil
	}
	lo, hi := r.vcRange(vnet)
	for i := lo; i < hi; i++ {
		if r.in[port][i].free() {
			return &r.in[port][i]
		}
	}
	return nil
}

// Tick advances the router by one cycle: stage 0 drains matured ring
// traffic (returned credits, arrived heads), stage 1 routes newly arrived
// heads, then allocation, then switch/link traversal for all held streams.
// A RouterSlow fault window freezes the whole pipeline on its off-duty
// cycles — ring entries stay queued and ripen untouched; skipping
// reschedule too keeps the router awake, so it observes every cycle of the
// window exactly like the dense kernel does.
func (r *Router) Tick(now sim.Cycle) {
	if f := r.net.faults; f != nil && f.RouterFrozen(r.id, now) {
		return
	}
	r.acceptCredits(now)
	r.acceptArrivals(now)
	r.stage1(now)
	r.allocate(now)
	streaming := false
	for o := 0; o < NumPorts; o++ {
		if r.outStream[o] != nil {
			streaming = true
			break
		}
	}
	r.traverse(now)
	r.reschedule(now, streaming)
}

// acceptCredits banks matured credit returns from every adjacent router.
// This router is the designated consumer of each neighbour's credRet ring
// behind the shared link, so the pops are race-free even while the
// neighbour ticks concurrently on another lane.
func (r *Router) acceptCredits(now sim.Cycle) {
	for o := 0; o < NumPorts; o++ {
		nb := r.nbr[o]
		if nb == nil {
			continue
		}
		ring := &nb.credRet[opposite[o]]
		for {
			v, ok := ring.pop(now)
			if !ok {
				break
			}
			r.credits[o][v]++
		}
	}
}

// acceptArrivals moves matured head-flit handoffs from the input-port
// arrival rings into free input VCs. The credit protocol guarantees a free
// VC of the packet's vnet exists for every matured entry: the upstream
// router spent a credit per handoff, and credits only return after a VC
// frees.
func (r *Router) acceptArrivals(now sim.Cycle) {
	for p := 0; p < NumPorts; p++ {
		if p == PortLocal {
			continue
		}
		ring := &r.arrivals[p]
		for {
			pkt, at, ok := ring.pop(now)
			if !ok {
				break
			}
			vc := r.freeVC(p, pkt.VNet)
			if vc == nil {
				panic(fmt.Sprintf("noc: router %d has no free VC at (%s, vnet %d) for a credited arrival",
					r.id, PortName(p), pkt.VNet))
			}
			r.enlist(vc)
			vc.pkt = pkt
			vc.headAt = at
			r.unrouted++
			if at < r.minHeadAt {
				r.minHeadAt = at
			}
		}
	}
}

// reschedule decides whether the router can skip cycles. With the occupied
// list empty and every ring drained the router is fully quiescent (a
// streaming VC stays occupied until its tail departs, so no streams remain
// either; filter entries expire lazily and need no ticking). A non-empty
// occ still allows sleeping when every held packet is blocked on an event
// with a known or wake-covered cycle: a future head arrival, a queued ring
// entry ripening, or a downstream credit returning (its release schedules
// our wake).
//
// The ring scans below are load-bearing, not an optimization: a producer
// that runs after this router within the same cycle pairs its push with a
// WakeAt, but a push that happened *before* this tick already spent its
// WakeAt on an awake handle (a no-op), so the only record of the pending
// event is the ring entry itself. Missing it here would sleep through the
// event — the classic lost wakeup.
func (r *Router) reschedule(now sim.Cycle, streaming bool) {
	next := sim.NeverWake
	for p := 0; p < NumPorts; p++ {
		if at, ok := r.arrivals[p].earliest(); ok && at < next {
			next = at
		}
	}
	for o := 0; o < NumPorts; o++ {
		if nb := r.nbr[o]; nb != nil {
			if at, ok := nb.credRet[opposite[o]].earliest(); ok && at < next {
				next = at
			}
		}
	}
	if len(r.occ) == 0 {
		if next == sim.NeverWake {
			r.h.Sleep()
		} else {
			r.h.SleepUntil(next)
		}
		return
	}
	if streaming {
		// Flits moved or ports were held this cycle; output and input locks
		// may have freed mid-tick, so allocation must re-run next cycle.
		return
	}
	for _, vc := range r.occ {
		if vc.pkt == nil {
			// Reserved by the local NI's pick; its pump writes the head in
			// the same NI tick, so this is transient within a cycle.
			continue
		}
		if r.net.cfg.OrdPushInvStall && vc.pkt.IsInv && vc.routed {
			// StalledInvCycles accrues once per ticked cycle while an
			// invalidation waits behind a live registered push; sleeping
			// would skip those counts. Filter registrations happen only
			// during this router's own ticks (route → register), so if no
			// live entry matches now, none can appear while we sleep and
			// no counts are missed; liveness only decays with time.
			for o := 0; o < NumPorts; o++ {
				if !vc.pending[o].Empty() && r.filters.hasAddr(o, vc.pkt.Addr, now) {
					return
				}
			}
		}
		if !vc.routed {
			if vc.headAt < next {
				next = vc.headAt // stage 1 runs in the head's arrival cycle
			}
			continue
		}
		if vc.active != nil {
			return // draining stream (unreachable when !streaming); stay awake
		}
		if t := vc.headAt + 1; t > now {
			if t < next {
				next = t // stage-2 eligibility
			}
			continue
		}
		// Allocation-eligible but not placed: blocked on exhausted credits;
		// the downstream router's release schedules our wake at the
		// credit's return cycle (and the ring scan above caught any credit
		// already in flight).
	}
	if next == sim.NeverWake {
		r.h.Sleep()
	} else {
		r.h.SleepUntil(next)
	}
}

// stage1 runs buffer-write/route-compute for heads that arrived by now.
// Push packets are processed before requests so that the "Filtering at Port"
// case (push and request arriving in the same cycle) resolves in the push's
// favour, as in Fig 7a.
func (r *Router) stage1(now sim.Cycle) {
	if r.unrouted == 0 || now < r.minHeadAt {
		return // nothing unrouted, or every unrouted head still in transit
	}
	// Collect the unrouted heads — typically a handful even under load — so
	// the two routing passes below scan only them instead of walking every
	// occupied VC twice. The snapshot also insulates iteration from occ
	// mutations (route's stationary filtering releases VCs).
	snap := r.scratch[:0]
	seen, want := 0, r.unrouted
	minNext := sim.NeverWake
	for _, vc := range r.occ {
		if vc.pkt != nil && !vc.routed {
			// Heads still in link transit (headAt in the future) count toward
			// unrouted but cannot route yet; leave them out of the snapshot.
			if now >= vc.headAt {
				snap = append(snap, vc)
			} else if vc.headAt < minNext {
				minNext = vc.headAt
			}
			if seen++; seen == want {
				break
			}
		}
	}
	// Everything counted by unrouted was just visited, so minNext is the
	// exact earliest in-transit arrival (releases can only leave it stale
	// low, which merely costs one wasted scan).
	r.minHeadAt = minNext
	r.scratch = snap
	// Pass 1: route pushes and everything non-filterable; register filters.
	for _, vc := range snap {
		if vc.pkt == nil || vc.routed || now < vc.headAt || vc.pkt.Filterable {
			continue
		}
		r.route(vc, vc.port, vc.idx, now)
	}
	// Pass 2: filterable read requests (lookup may drop them).
	for _, vc := range snap {
		if vc.pkt == nil || vc.routed || now < vc.headAt || !vc.pkt.Filterable {
			continue
		}
		if r.filters != nil && r.net.cfg.FilterEnabled &&
			r.filters.lookup(vc.port, vc.pkt.Addr, vc.pkt.Requester, now) {
			// A FilterDrop window turns the hit into a miss: the request
			// travels on and triggers a redundant response the private cache
			// discards — pure degradation, no protocol state touched.
			if f := r.net.faults; f != nil && f.SuppressFilterHit(r.id, now) {
				r.route(vc, vc.port, vc.idx, now)
				continue
			}
			r.st.Net.FilteredRequests++
			r.net.eng.Progress()
			r.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KFilterHit, Node: int32(r.id),
				Addr: vc.pkt.Addr, ID: vc.pkt.ID, A: int32(vc.pkt.Requester), B: int32(vc.port)})
			r.release(vc, now)
			continue
		}
		r.route(vc, vc.port, vc.idx, now)
	}
}

// route performs route computation for the packet in vc and, for pushes,
// the filter registration and stationary-filtering actions.
func (r *Router) route(vc *inputVC, port, vcIdx int, now sim.Cycle) {
	pkt := vc.pkt
	mode := 0
	if routingXY(pkt.VNet) {
		mode = 1
	}
	var out [NumPorts]DestSet
	for o := 0; o < NumPorts; o++ {
		out[o] = pkt.Dests.Intersect(r.dmask[mode][o])
	}
	vc.pending = out
	vc.pendingPorts = 0
	bit := uint64(1) << uint(vc.occPos)
	for o := 0; o < NumPorts; o++ {
		if !out[o].Empty() {
			vc.pendingPorts++
			r.candMask[o] |= bit
			r.candV[o][pkt.VNet]++
			if pkt.IsInv {
				r.invCand[o]++
			}
		}
	}
	vc.routed = true
	r.unrouted--
	if vc.pendingPorts == 0 {
		panic(fmt.Sprintf("noc: router %d routed packet with no outputs: %v", r.id, pkt))
	}

	// Filter registration happens whenever the filter banks exist: request
	// pruning needs it, and so does OrdPush invalidation ordering even when
	// pruning is ablated away (Fig 20's Push+Multicast point).
	if pkt.IsPush && r.filters != nil {
		dataVC := vcIdx - VNetData*r.net.cfg.VCsPerVNet
		if dataVC < 0 || dataVC >= r.net.cfg.VCsPerVNet {
			panic("noc: push packet outside the data vnet")
		}
		for o := 0; o < NumPorts; o++ {
			if out[o].Empty() {
				continue
			}
			// Filter Registration.
			r.filters.register(o, port, dataVC, pkt.Addr, out[o])
			r.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KFilterReg, Node: int32(r.id),
				Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux(out[o]), A: int32(o), B: int32(port)})
			// Stationary Filtering: prune matched read requests already
			// buffered (or arriving) at the input port facing the push's
			// output direction; they travel the reverse path and their
			// response is embedded in this push.
			if r.net.cfg.FilterEnabled {
				r.stationaryFilter(o, pkt.Addr, out[o], now)
			}
		}
	}
}

// stationaryFilter drops buffered read requests at input port `port` whose
// response is covered by a registered push (addr, dests). Only idle,
// single-flit filterable requests are dropped; a request already draining
// through the switch is left alone (it will trigger a redundant unicast that
// the private cache discards).
func (r *Router) stationaryFilter(port int, addr uint64, dests DestSet, now sim.Cycle) {
	lo, hi := r.vcRange(VNetReq)
	for i := lo; i < hi; i++ {
		vc := &r.in[port][i]
		if vc.pkt == nil || vc.active != nil || !vc.pkt.Filterable {
			continue
		}
		if vc.pkt.Addr == addr && dests.Has(vc.pkt.Requester) {
			if f := r.net.faults; f != nil && f.SuppressFilterHit(r.id, now) {
				continue
			}
			r.st.Net.FilteredRequests++
			r.net.eng.Progress()
			r.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KFilterStationary, Node: int32(r.id),
				Addr: addr, ID: vc.pkt.ID, A: int32(vc.pkt.Requester), B: int32(port)})
			r.release(vc, now)
		}
	}
}

// allocate performs VC + switch allocation: each free output port picks one
// eligible (input VC, replica) candidate round-robin, reserves a downstream
// VC, and locks both ports for the replica's duration.
func (r *Router) allocate(now sim.Cycle) {
	if len(r.occ) == 0 {
		return
	}
	for o := 0; o < NumPorts; o++ {
		if r.outStream[o] != nil || r.candMask[o] == 0 {
			continue
		}
		// A LinkStall window refuses new allocations onto the port before
		// allocateOutput runs, so per-candidate side effects (invalidation
		// stall accounting) stay identical across kernels. The injector wakes
		// this router when the window ends; it may have slept meanwhile.
		if f := r.net.faults; f != nil && f.LinkBlocked(r.id, o, now) {
			continue
		}
		r.allocateOutput(o, now)
	}
}

func (r *Router) allocateOutput(o int, now sim.Cycle) {
	if o != PortLocal && r.invCand[o] == 0 {
		// Exact fast-fail under congestion: when every vnet with candidates
		// for this port has exhausted credits, no scan iteration could place
		// a replica (each would stop at the same credit check).
		// Invalidation candidates force the full scan because their
		// stalled-cycle accounting is a mid-scan side effect.
		placeable := false
		for v := 0; v < NumVNets; v++ {
			if r.candV[o][v] != 0 && r.credits[o][v] != 0 {
				placeable = true
				break
			}
		}
		if !placeable {
			return
		}
	}
	total := len(r.occ)
	// Iterate the candidate bitmask in round-robin position order: the set
	// bits at or above the arbitration pointer first, then the wrapped-around
	// bits below it. This visits exactly the VCs the old linear occ scan
	// visited, in the same order, without touching non-candidates (a set bit
	// already implies a routed packet with pending[o] != 0 and no active
	// stream). Nothing before placement mutates the mask, so the snapshot
	// stays exact; placement returns.
	start := r.rr[o] % total
	below := uint64(1)<<uint(start) - 1
	m := r.candMask[o]
	for _, mm := range [2]uint64{m &^ below, m & below} {
		for ; mm != 0; mm &= mm - 1 {
			idx := bits.TrailingZeros64(mm)
			vc := r.occ[idx]
			p := vc.port
			if r.inLock[p] != nil {
				continue
			}
			// Stage-2 eligibility: stage 1 ran in the head's arrival cycle.
			if now < vc.headAt+1 {
				continue
			}
			pkt := vc.pkt
			// OrdPush ordering: stall an invalidation while a same-line push is
			// still registered at this output port.
			if pkt.IsInv && r.net.cfg.OrdPushInvStall && r.filters != nil &&
				r.filters.hasAddr(o, pkt.Addr, now) {
				r.st.Net.StalledInvCycles++
				continue
			}
			var downRouter *Router
			if o != PortLocal {
				downRouter = r.nbr[o]
				if downRouter == nil {
					panic(fmt.Sprintf("noc: router %d routed %v to edge port %s", r.id, pkt, PortName(o)))
				}
				if r.credits[o][pkt.VNet] == 0 {
					continue // no downstream VC credit this cycle
				}
				r.credits[o][pkt.VNet]--
			}
			replica := r.net.nis[r.id].getPacket()
			*replica = *pkt
			replica.pooled = true
			if rp, ok := pkt.Payload.(RefPayload); ok {
				rp.AddRef()
			}
			replica.Dests = vc.pending[o]
			if vc.pendingPorts > 1 {
				r.st.Net.MulticastReplicas++
			}
			s := r.getStream()
			*s = stream{
				vc: vc, replica: replica, inPort: p, vcIdx: vc.idx, outPort: o,
				downR: downRouter,
				size: replica.Size, vnet: replica.VNet, class: replica.Class,
				dstUnit: replica.DstUnit, dests: replica.Dests,
				addr: replica.Addr, id: replica.ID, isPush: replica.IsPush,
			}
			bit := uint64(1) << uint(idx)
			vc.active = s
			vc.pending[o] = DestSet{}
			vc.pendingPorts--
			r.candMask[o] &^= bit
			r.candV[o][pkt.VNet]--
			if pkt.IsInv {
				r.invCand[o]--
			}
			// The VC streams until the replica's tail departs; its remaining
			// pending ports cannot place meanwhile, so drop them from the
			// candidate counts (sendFlit restores them at stream completion).
			if vc.pendingPorts > 0 {
				for op := 0; op < NumPorts; op++ {
					if !vc.pending[op].Empty() {
						r.candMask[op] &^= bit
						r.candV[op][pkt.VNet]--
						if pkt.IsInv {
							r.invCand[op]--
						}
					}
				}
			}
			r.outStream[o] = s
			r.inLock[p] = s
			r.rr[o] = (idx + 1) % total
			return
		}
	}
}

// traverse streams one flit per held output port, delivers heads downstream,
// and retires completed replicas.
func (r *Router) traverse(now sim.Cycle) {
	for o := 0; o < NumPorts; o++ {
		s := r.outStream[o]
		if s == nil {
			continue
		}
		r.sendFlit(s, now)
	}
}

func (r *Router) sendFlit(s *stream, now sim.Cycle) {
	s.sent++
	r.net.eng.Progress()
	if s.outPort == PortLocal {
		r.st.Net.EjectedFlits[s.dstUnit][s.class]++
	} else {
		r.countLinkFlit(s.outPort, s.class)
	}
	if s.sent == 1 && s.outPort != PortLocal {
		// Head flit: hand the replica into the downstream router's arrival
		// ring, ripening after switch + link traversal; the downstream
		// router pops it into a credited VC at that cycle. A VCJitter fault
		// may delay the arrival; the hook keeps per-port arrivals monotonic,
		// so the link slows but never reorders (and ring entries stay
		// maturity-ordered).
		arr := now + 2
		if f := r.net.faults; f != nil {
			arr = f.Arrival(r.id, s.outPort, now, arr, s.id, s.vnet)
		}
		// Ownership hand-off: from here the downstream router holds — and
		// eventually recycles — the replica. If this router is slowed
		// mid-drain (RouterSlow), the downstream one can finish with the
		// packet before our tail departs, so no later flit may dereference
		// it; the remaining cycles run off the stream's snapshot.
		s.downR.arrivals[opposite[s.outPort]].push(s.replica, arr)
		s.replica = nil
		s.downR.h.WakeAt(arr)
	}
	if s.sent < s.size {
		return
	}
	// Tail departed: release ports, lazily de-register the filter slot, free
	// the VC if all replicas are out, and complete local ejection.
	r.outStream[s.outPort] = nil
	r.inLock[s.inPort] = nil
	s.vc.active = nil
	// The VC's remaining pending ports become allocatable again now that the
	// stream is done; restore them to the candidate counts.
	if s.vc.pendingPorts > 0 {
		orig := s.vc.pkt
		bit := uint64(1) << uint(s.vc.occPos)
		for op := 0; op < NumPorts; op++ {
			if !s.vc.pending[op].Empty() {
				r.candMask[op] |= bit
				r.candV[op][orig.VNet]++
				if orig.IsInv {
					r.invCand[op]++
				}
			}
		}
	}
	if s.isPush && r.filters != nil {
		dataVC := s.vcIdx - VNetData*r.net.cfg.VCsPerVNet
		r.filters.scheduleClear(s.outPort, s.inPort, dataVC, now+2)
		r.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KFilterClear, Node: int32(r.id),
			Addr: s.addr, ID: s.id, A: int32(s.outPort), B: int32(s.inPort)})
	}
	if s.vc.pendingPorts == 0 {
		r.release(s.vc, now)
	}
	if s.outPort == PortLocal {
		// Local ejection never hands the replica off, so it is still owned
		// here; the NI recycles it after delivery.
		at := now + 2
		if f := r.net.faults; f != nil {
			at = f.Arrival(r.id, PortLocal, now, at, s.id, s.vnet)
		}
		r.net.nis[r.id].scheduleDelivery(s.replica, at)
	}
	r.putStream(s)
}

// getStream / putStream recycle stream descriptors through the router's
// private pool.
func (r *Router) getStream() *stream {
	if k := len(r.streamPool); k > 0 {
		s := r.streamPool[k-1]
		r.streamPool[k-1] = nil
		r.streamPool = r.streamPool[:k-1]
		return s
	}
	return &stream{}
}

func (r *Router) putStream(s *stream) {
	*s = stream{}
	r.streamPool = append(r.streamPool, s)
}

// countLinkFlit accounts one flit traversing the inter-router link leaving
// this router through output port `port`.
func (r *Router) countLinkFlit(port int, class stats.Class) {
	r.st.Net.LinkFlits[int(r.id)*4+port]++
	r.st.Net.TotalFlitsByClass[class]++
}
