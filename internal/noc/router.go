package noc

import (
	"fmt"

	"pushmulticast/internal/sim"
)

// inputVC is one virtual-channel buffer at a router input port. Virtual
// cut-through flow control means a VC holds at most one packet and a packet
// is admitted only into an empty VC, so the buffer always has room for the
// whole packet.
type inputVC struct {
	// port/idx locate this VC at its router; occPos is its position in the
	// router's occupied list (-1 when free).
	port, idx, occPos int

	pkt *Packet
	// headAt is the cycle the head flit is present in this buffer; flit i
	// is present at headAt+i (flits stream contiguously under the locked
	// input/output port discipline).
	headAt sim.Cycle
	// routed is set once stage 1 (route compute + filter actions) ran.
	routed bool
	// pending holds per-output-port destination subsets that still need a
	// replica sent; asynchronous multicast drains them one at a time.
	pending [NumPorts]DestSet
	// pendingPorts counts non-empty pending entries.
	pendingPorts int
	// active is the stream currently draining this VC, if any.
	active *stream
	// reserved marks the VC claimed by an upstream allocation whose head
	// flit has not been written yet (cleared at head delivery).
	reserved bool
}

func (vc *inputVC) free() bool { return vc.pkt == nil && !vc.reserved }

// stream is one in-progress replica transmission from an input VC through an
// output port. Both the input port and the output port are held until the
// tail flit departs, which keeps flit delivery contiguous and makes
// cut-through timing exact.
type stream struct {
	vc      *inputVC
	replica *Packet // packet copy carrying this replica's destination subset
	inPort  int
	vcIdx   int // absolute VC index at the input port
	outPort int
	downVC  *inputVC // nil when outPort == PortLocal
	sent    int
}

// Router is a 2-stage virtual-cut-through router: stage 1 performs buffer
// write + route computation (plus the filter's registration/lookup actions in
// parallel, Fig 7a), stage 2 performs VC/switch allocation and switch
// traversal. Links add one cycle.
type Router struct {
	id  NodeID
	net *Network
	in  [NumPorts][]inputVC
	// outStream / inLock serialize the switch at packet granularity: one
	// replica owns an output port (and its input port) until its tail
	// departs.
	outStream [NumPorts]*stream
	inLock    [NumPorts]*stream
	filters   *filterBank
	// rr holds per-output-port round-robin arbitration state.
	rr [NumPorts]int
	// occ lists VCs that hold or are reserved for a packet, so the per-
	// cycle pipeline stages touch only live work instead of scanning every
	// buffer. scratch is reused for iteration snapshots.
	occ     []*inputVC
	scratch []*inputVC
}

func newRouter(id NodeID, net *Network) *Router {
	r := &Router{id: id, net: net}
	total := NumVNets * net.cfg.VCsPerVNet
	for p := 0; p < NumPorts; p++ {
		r.in[p] = make([]inputVC, total)
		for i := range r.in[p] {
			vc := &r.in[p][i]
			vc.port, vc.idx, vc.occPos = p, i, -1
		}
	}
	if net.cfg.FilterEnabled || net.cfg.OrdPushInvStall {
		r.filters = newFilterBank(net.cfg.VCsPerVNet)
	}
	return r
}

// claim registers a VC as occupied (reserved or holding a packet).
func (r *Router) claim(vc *inputVC) {
	if vc.occPos >= 0 {
		return
	}
	vc.occPos = len(r.occ)
	r.occ = append(r.occ, vc)
}

// release resets a VC and drops it from the occupied list.
func (r *Router) release(vc *inputVC) {
	if vc.occPos >= 0 {
		last := len(r.occ) - 1
		moved := r.occ[last]
		r.occ[vc.occPos] = moved
		moved.occPos = vc.occPos
		r.occ = r.occ[:last]
		vc.occPos = -1
	}
	vc.pkt = nil
	vc.reserved = false
	vc.routed = false
	vc.pending = [NumPorts]DestSet{}
	vc.pendingPorts = 0
	vc.active = nil
}

// vcRange returns the [lo, hi) input-VC index range of a vnet.
func (r *Router) vcRange(vnet int) (int, int) {
	lo := vnet * r.net.cfg.VCsPerVNet
	return lo, lo + r.net.cfg.VCsPerVNet
}

// freeVC returns a free input VC for the vnet at the given port, or nil.
func (r *Router) freeVC(port, vnet int) *inputVC {
	lo, hi := r.vcRange(vnet)
	for i := lo; i < hi; i++ {
		if r.in[port][i].free() {
			return &r.in[port][i]
		}
	}
	return nil
}

// Tick advances the router by one cycle: stage 1 for newly arrived heads,
// then allocation, then switch/link traversal for all held streams.
func (r *Router) Tick(now sim.Cycle) {
	r.stage1(now)
	r.allocate(now)
	r.traverse(now)
}

// stage1 runs buffer-write/route-compute for heads that arrived by now.
// Push packets are processed before requests so that the "Filtering at Port"
// case (push and request arriving in the same cycle) resolves in the push's
// favour, as in Fig 7a.
func (r *Router) stage1(now sim.Cycle) {
	if len(r.occ) == 0 {
		return
	}
	snap := append(r.scratch[:0], r.occ...)
	r.scratch = snap
	// Pass 1: route pushes and everything non-filterable; register filters.
	for _, vc := range snap {
		if vc.pkt == nil || vc.routed || now < vc.headAt || vc.pkt.Filterable {
			continue
		}
		r.route(vc, vc.port, vc.idx, now)
	}
	// Pass 2: filterable read requests (lookup may drop them).
	for _, vc := range snap {
		if vc.pkt == nil || vc.routed || now < vc.headAt || !vc.pkt.Filterable {
			continue
		}
		if r.filters != nil && r.net.cfg.FilterEnabled &&
			r.filters.lookup(vc.port, vc.pkt.Addr, vc.pkt.Requester, now) {
			r.net.st.Net.FilteredRequests++
			r.net.eng.Progress()
			r.release(vc)
			continue
		}
		r.route(vc, vc.port, vc.idx, now)
	}
}

// route performs route computation for the packet in vc and, for pushes,
// the filter registration and stationary-filtering actions.
func (r *Router) route(vc *inputVC, port, vcIdx int, now sim.Cycle) {
	pkt := vc.pkt
	out := r.net.cfg.routeDests(r.id, pkt.Dests, routingXY(pkt.VNet))
	vc.pending = out
	vc.pendingPorts = 0
	for o := 0; o < NumPorts; o++ {
		if !out[o].Empty() {
			vc.pendingPorts++
		}
	}
	vc.routed = true
	if vc.pendingPorts == 0 {
		panic(fmt.Sprintf("noc: router %d routed packet with no outputs: %v", r.id, pkt))
	}

	// Filter registration happens whenever the filter banks exist: request
	// pruning needs it, and so does OrdPush invalidation ordering even when
	// pruning is ablated away (Fig 20's Push+Multicast point).
	if pkt.IsPush && r.filters != nil {
		dataVC := vcIdx - VNetData*r.net.cfg.VCsPerVNet
		if dataVC < 0 || dataVC >= r.net.cfg.VCsPerVNet {
			panic("noc: push packet outside the data vnet")
		}
		for o := 0; o < NumPorts; o++ {
			if out[o].Empty() {
				continue
			}
			// Filter Registration.
			r.filters.register(o, port, dataVC, pkt.Addr, out[o])
			// Stationary Filtering: prune matched read requests already
			// buffered (or arriving) at the input port facing the push's
			// output direction; they travel the reverse path and their
			// response is embedded in this push.
			if r.net.cfg.FilterEnabled {
				r.stationaryFilter(o, pkt.Addr, out[o], now)
			}
		}
	}
}

// stationaryFilter drops buffered read requests at input port `port` whose
// response is covered by a registered push (addr, dests). Only idle,
// single-flit filterable requests are dropped; a request already draining
// through the switch is left alone (it will trigger a redundant unicast that
// the private cache discards).
func (r *Router) stationaryFilter(port int, addr uint64, dests DestSet, now sim.Cycle) {
	lo, hi := r.vcRange(VNetReq)
	for i := lo; i < hi; i++ {
		vc := &r.in[port][i]
		if vc.pkt == nil || vc.active != nil || !vc.pkt.Filterable {
			continue
		}
		if vc.pkt.Addr == addr && dests.Has(vc.pkt.Requester) {
			r.net.st.Net.FilteredRequests++
			r.net.eng.Progress()
			r.release(vc)
		}
	}
}

// allocate performs VC + switch allocation: each free output port picks one
// eligible (input VC, replica) candidate round-robin, reserves a downstream
// VC, and locks both ports for the replica's duration.
func (r *Router) allocate(now sim.Cycle) {
	if len(r.occ) == 0 {
		return
	}
	// Per-cycle memo of downstream VC availability: under congestion many
	// waiting packets share an exhausted (output port, vnet) pool, and
	// re-probing it for each candidate would dominate the simulation.
	var memo [NumPorts][NumVNets]int8 // 0 unknown, 1 available, -1 none
	for o := 0; o < NumPorts; o++ {
		if r.outStream[o] != nil {
			continue
		}
		r.allocateOutput(o, now, &memo)
	}
}

func (r *Router) allocateOutput(o int, now sim.Cycle, memo *[NumPorts][NumVNets]int8) {
	total := len(r.occ)
	start := r.rr[o]
	for k := 0; k < total; k++ {
		idx := (start + k) % total
		vc := r.occ[idx]
		p := vc.port
		if vc.pkt == nil || !vc.routed || vc.active != nil || vc.pending[o].Empty() {
			continue
		}
		if r.inLock[p] != nil {
			continue
		}
		// Stage-2 eligibility: stage 1 ran in the head's arrival cycle.
		if now < vc.headAt+1 {
			continue
		}
		pkt := vc.pkt
		// OrdPush ordering: stall an invalidation while a same-line push is
		// still registered at this output port.
		if pkt.IsInv && r.net.cfg.OrdPushInvStall && r.filters != nil &&
			r.filters.hasAddr(o, pkt.Addr, now) {
			r.net.st.Net.StalledInvCycles++
			continue
		}
		var down *inputVC
		if o != PortLocal {
			if memo[o][pkt.VNet] < 0 {
				continue // downstream pool known exhausted this cycle
			}
			nb := r.net.cfg.neighbour(r.id, o)
			if nb < 0 {
				panic(fmt.Sprintf("noc: router %d routed %v to edge port %s", r.id, pkt, PortName(o)))
			}
			downRouter := r.net.routers[nb]
			down = downRouter.freeVC(opposite[o], pkt.VNet)
			if down == nil {
				memo[o][pkt.VNet] = -1
				continue // no free downstream VC this cycle
			}
			down.reserved = true
			downRouter.claim(down)
		}
		replica := *pkt
		replica.Dests = vc.pending[o]
		if vc.pendingPorts > 1 {
			r.net.st.Net.MulticastReplicas++
		}
		s := &stream{
			vc: vc, replica: &replica, inPort: p, vcIdx: vc.idx, outPort: o, downVC: down,
		}
		vc.active = s
		vc.pending[o] = 0
		vc.pendingPorts--
		r.outStream[o] = s
		r.inLock[p] = s
		r.rr[o] = (idx + 1) % total
		return
	}
}

// traverse streams one flit per held output port, delivers heads downstream,
// and retires completed replicas.
func (r *Router) traverse(now sim.Cycle) {
	for o := 0; o < NumPorts; o++ {
		s := r.outStream[o]
		if s == nil {
			continue
		}
		r.sendFlit(s, now)
	}
}

func (r *Router) sendFlit(s *stream, now sim.Cycle) {
	pkt := s.replica
	s.sent++
	r.net.eng.Progress()
	if s.outPort == PortLocal {
		r.net.st.Net.EjectedFlits[pkt.DstUnit][pkt.Class]++
	} else {
		r.net.countLinkFlit(r.id, s.outPort, pkt.Class)
	}
	if s.sent == 1 && s.downVC != nil {
		// Head flit: write into the reserved downstream buffer; it is
		// visible to the downstream stage 1 after switch + link traversal.
		s.downVC.pkt = pkt
		s.downVC.headAt = now + 2
		s.downVC.reserved = false
	}
	if s.sent < pkt.Size {
		return
	}
	// Tail departed: release ports, lazily de-register the filter slot, free
	// the VC if all replicas are out, and complete local ejection.
	r.outStream[s.outPort] = nil
	r.inLock[s.inPort] = nil
	s.vc.active = nil
	if pkt.IsPush && r.filters != nil {
		dataVC := s.vcIdx - VNetData*r.net.cfg.VCsPerVNet
		r.filters.scheduleClear(s.outPort, s.inPort, dataVC, now+2)
	}
	if s.vc.pendingPorts == 0 {
		r.release(s.vc)
	}
	if s.outPort == PortLocal {
		r.net.nis[r.id].scheduleDelivery(pkt, now+2)
	}
}
