package noc

import "pushmulticast/internal/sim"

// filterEntry is one slot of the coherent in-network filter. It mirrors a
// snoop-filter entry: the line address is the tag and the destination bit
// vector is the content (§III-C). An entry is registered when a push head
// flit computes its output ports and is de-registered lazily after the push
// tail has traversed the output link, so a request already in flight on that
// link is still caught on arrival.
type filterEntry struct {
	valid bool
	addr  uint64
	dests DestSet
	// clearAt, when clearPending, is the cycle at which the entry dies.
	// Re-registration before that cycle resets clearPending, so a stale
	// scheduled clear can never kill a fresh entry: the clear has no
	// identity of its own, only the (clearPending, clearAt) pair, and
	// register rewrites both.
	clearPending bool
	clearAt      sim.Cycle
}

func (e *filterEntry) live(now sim.Cycle) bool {
	return e.valid && (!e.clearPending || now < e.clearAt)
}

// filterBank holds a router's filters. Following Fig 7b, each output port
// has a designated filter per input port, with one entry per input data
// virtual channel of that port: slot (outPort, inPort, dataVC), stored
// flattened in one contiguous slice so lookups walk a single cache-friendly
// range instead of chasing nested slice headers.
type filterBank struct {
	dataVCs int
	entries []filterEntry
	// activeCnt[p] counts valid entries at output port p with no pending
	// clear; aliveUntil[p] upper-bounds the last cycle any pending-clear
	// entry at p can still be live (monotone, never lowered). Together they
	// prove "no live entry at p" without scanning — lookups and
	// invalidation-stall checks run every congested cycle, so the common
	// empty case must be O(1).
	activeCnt  [NumPorts]int
	aliveUntil [NumPorts]sim.Cycle
}

func newFilterBank(dataVCs int) *filterBank {
	return &filterBank{
		dataVCs: dataVCs,
		entries: make([]filterEntry, NumPorts*NumPorts*dataVCs),
	}
}

// slot returns the entry for (outPort, inPort, dataVC).
func (fb *filterBank) slot(outPort, inPort, dataVC int) *filterEntry {
	return &fb.entries[(outPort*NumPorts+inPort)*fb.dataVCs+dataVC]
}

// register installs a push's address and per-output destination subset in the
// output port's filter slot for (inPort, dataVC). Filter Registration in
// Fig 7b.
func (fb *filterBank) register(outPort, inPort, dataVC int, addr uint64, dests DestSet) {
	e := fb.slot(outPort, inPort, dataVC)
	if !e.valid || e.clearPending {
		fb.activeCnt[outPort]++
	}
	e.valid = true
	e.addr = addr
	e.dests = dests
	e.clearPending = false
}

// scheduleClear lazily de-registers the slot at the given cycle (Filter
// De-registration; lazy to cover the link delay).
func (fb *filterBank) scheduleClear(outPort, inPort, dataVC int, at sim.Cycle) {
	e := fb.slot(outPort, inPort, dataVC)
	if !e.valid {
		return
	}
	if !e.clearPending {
		fb.activeCnt[outPort]--
	}
	e.clearPending = true
	e.clearAt = at
	if at > fb.aliveUntil[outPort] {
		fb.aliveUntil[outPort] = at
	}
}

// dead reports that no entry at port p can be live at cycle now: no entry is
// registered without a pending clear, and every pending clear has matured.
// aliveUntil is an upper bound, so a true result is exact and a false result
// merely falls back to the scan.
func (fb *filterBank) dead(p int, now sim.Cycle) bool {
	return fb.activeCnt[p] == 0 && now >= fb.aliveUntil[p]
}

// lookup implements Filter Lookup: an arriving read request at input port
// inPort checks whether a live push covering (addr, requester) is registered
// at that port, meaning the push travels the reverse direction and already
// carries the requester's response.
func (fb *filterBank) lookup(inPort int, addr uint64, requester NodeID, now sim.Cycle) bool {
	if fb.dead(inPort, now) {
		return false
	}
	base := inPort * NumPorts * fb.dataVCs
	for k := 0; k < NumPorts*fb.dataVCs; k++ {
		e := &fb.entries[base+k]
		if e.live(now) && e.addr == addr && e.dests.Has(requester) {
			return true
		}
	}
	return false
}

// hasAddr reports whether any live entry for addr is registered at the given
// output port; OrdPush stalls an invalidation at switch allocation while this
// holds, enforcing push-before-invalidation delivery order (§III-F).
func (fb *filterBank) hasAddr(outPort int, addr uint64, now sim.Cycle) bool {
	if fb.dead(outPort, now) {
		return false
	}
	base := outPort * NumPorts * fb.dataVCs
	for k := 0; k < NumPorts*fb.dataVCs; k++ {
		e := &fb.entries[base+k]
		if e.live(now) && e.addr == addr {
			return true
		}
	}
	return false
}
