package noc

import "pushmulticast/internal/sim"

// filterEntry is one slot of the coherent in-network filter. It mirrors a
// snoop-filter entry: the line address is the tag and the destination bit
// vector is the content (§III-C). An entry is registered when a push head
// flit computes its output ports and is de-registered lazily after the push
// tail has traversed the output link, so a request already in flight on that
// link is still caught on arrival.
type filterEntry struct {
	valid bool
	addr  uint64
	dests DestSet
	// gen guards lazy clears: a scheduled clear only applies if the entry
	// has not been re-registered since.
	gen uint32
	// clearAt, when clearPending, is the cycle at which the entry dies.
	clearPending bool
	clearAt      sim.Cycle
}

func (e *filterEntry) live(now sim.Cycle) bool {
	return e.valid && (!e.clearPending || now < e.clearAt)
}

// filterBank holds a router's filters. Following Fig 7b, each output port
// has a designated filter per input port, with one entry per input data
// virtual channel of that port: entries[outPort][inPort][dataVC].
type filterBank struct {
	entries [][][]filterEntry
}

func newFilterBank(dataVCs int) *filterBank {
	fb := &filterBank{entries: make([][][]filterEntry, NumPorts)}
	for o := 0; o < NumPorts; o++ {
		fb.entries[o] = make([][]filterEntry, NumPorts)
		for i := 0; i < NumPorts; i++ {
			fb.entries[o][i] = make([]filterEntry, dataVCs)
		}
	}
	return fb
}

// register installs a push's address and per-output destination subset in the
// output port's filter slot for (inPort, dataVC). Filter Registration in
// Fig 7b.
func (fb *filterBank) register(outPort, inPort, dataVC int, addr uint64, dests DestSet) {
	e := &fb.entries[outPort][inPort][dataVC]
	e.valid = true
	e.addr = addr
	e.dests = dests
	e.gen++
	e.clearPending = false
}

// scheduleClear lazily de-registers the slot at the given cycle (Filter
// De-registration; lazy to cover the link delay).
func (fb *filterBank) scheduleClear(outPort, inPort, dataVC int, at sim.Cycle) {
	e := &fb.entries[outPort][inPort][dataVC]
	if !e.valid {
		return
	}
	e.clearPending = true
	e.clearAt = at
}

// lookup implements Filter Lookup: an arriving read request at input port
// inPort checks whether a live push covering (addr, requester) is registered
// at that port, meaning the push travels the reverse direction and already
// carries the requester's response.
func (fb *filterBank) lookup(inPort int, addr uint64, requester NodeID, now sim.Cycle) bool {
	for i := 0; i < NumPorts; i++ {
		for v := range fb.entries[inPort][i] {
			e := &fb.entries[inPort][i][v]
			if e.live(now) && e.addr == addr && e.dests.Has(requester) {
				return true
			}
		}
	}
	return false
}

// hasAddr reports whether any live entry for addr is registered at the given
// output port; OrdPush stalls an invalidation at switch allocation while this
// holds, enforcing push-before-invalidation delivery order (§III-F).
func (fb *filterBank) hasAddr(outPort int, addr uint64, now sim.Cycle) bool {
	for i := 0; i < NumPorts; i++ {
		for v := range fb.entries[outPort][i] {
			e := &fb.entries[outPort][i][v]
			if e.live(now) && e.addr == addr {
				return true
			}
		}
	}
	return false
}
