package noc

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
	"pushmulticast/internal/stats"
)

// PayloadCodec serializes packet payloads. The NoC never inspects payloads,
// so the protocol layer supplies the codec (coherence.Codec in real builds).
type PayloadCodec interface {
	SavePayload(w *snapshot.Writer, pl RefPayload)
	LoadPayload(r *snapshot.Reader) RefPayload
}

// restoredDead carries a sender's ErrUnrecoverable verdict across a
// snapshot: the message is preserved verbatim (so a restored run aborts with
// the same diagnostic as the cold run) and errors.Is still matches
// ErrUnrecoverable through Unwrap.
type restoredDead struct{ msg string }

func (e restoredDead) Error() string { return e.msg }
func (e restoredDead) Unwrap() error { return ErrUnrecoverable }

// SavePacket / LoadPacket expose the packet codec to the protocol layer
// (cache controllers and memory controllers hold packets in their input
// queues and outboxes). Loaded packets are drawn from this NI's tile pool.
func (ni *NI) SavePacket(w *snapshot.Writer, pc PayloadCodec, p *Packet) {
	savePacketInto(w, pc, p)
}

func (ni *NI) LoadPacket(r *snapshot.Reader, pc PayloadCodec) *Packet {
	return ni.loadPacket(r, pc)
}

// SaveError / LoadError serialize an ErrUnrecoverable verdict (the only
// error kind that lives across cycles). The message is preserved verbatim
// and the restored error still matches ErrUnrecoverable via errors.Is.
func SaveError(w *snapshot.Writer, err error) {
	if err == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.String(err.Error())
}

func LoadError(r *snapshot.Reader) error {
	if !r.Bool() {
		return nil
	}
	return restoredDead{msg: r.String()}
}

// SaveDests / LoadDests expose the destination-set codec.
func SaveDests(w *snapshot.Writer, d DestSet) { saveDests(w, d) }
func LoadDests(r *snapshot.Reader) DestSet    { return loadDests(r) }

func saveDests(w *snapshot.Writer, d DestSet) {
	for _, x := range d {
		w.U64(x)
	}
}

func loadDests(r *snapshot.Reader) DestSet {
	var d DestSet
	for i := range d {
		d[i] = r.U64()
	}
	return d
}

// savePacketInto serializes every packet field (except pooled, which is a
// free-list provenance bit with no behavioral meaning — see loadPacketInto).
func savePacketInto(w *snapshot.Writer, pc PayloadCodec, p *Packet) {
	w.U64(p.ID)
	w.U8(uint8(p.VNet))
	w.U8(uint8(p.Class))
	w.U32(uint32(p.Src))
	w.U8(uint8(p.SrcUnit))
	saveDests(w, p.Dests)
	w.U8(uint8(p.DstUnit))
	w.U64(p.Addr)
	w.Int(p.Size)
	w.Bool(p.IsPush)
	w.Bool(p.Filterable)
	w.Bool(p.IsInv)
	w.U32(uint32(p.Requester))
	w.U64(uint64(p.InjectedAt))
	w.U32(p.Seq)
	w.U32(p.Csum)
	w.Bool(p.IsAck)
	w.U8(uint8(p.AckVNet))
	w.U64(p.AckMask)
	w.Bool(p.retx)
	var rp RefPayload
	if p.Payload != nil {
		var ok bool
		if rp, ok = p.Payload.(RefPayload); !ok {
			panic(fmt.Sprintf("noc: cannot snapshot non-RefPayload payload %T", p.Payload))
		}
	}
	pc.SavePayload(w, rp)
}

// loadPacketInto decodes into p, preserving p's pooled flag. Every restored
// in-flight packet is drawn from the tile's free list (pooled), even if the
// original was caller-owned: the only difference is that the restored copy
// is recycled when it dies instead of surviving for a creator that — being
// fresh-built — no longer holds it.
func loadPacketInto(r *snapshot.Reader, pc PayloadCodec, p *Packet) {
	pooled := p.pooled
	*p = Packet{pooled: pooled}
	p.ID = r.U64()
	p.VNet = int(r.U8())
	p.Class = stats.Class(r.U8())
	p.Src = NodeID(r.U32())
	p.SrcUnit = stats.Unit(r.U8())
	p.Dests = loadDests(r)
	p.DstUnit = stats.Unit(r.U8())
	p.Addr = r.U64()
	p.Size = r.Int()
	p.IsPush = r.Bool()
	p.Filterable = r.Bool()
	p.IsInv = r.Bool()
	p.Requester = NodeID(r.U32())
	p.InjectedAt = sim.Cycle(r.U64())
	p.Seq = r.U32()
	p.Csum = r.U32()
	p.IsAck = r.Bool()
	p.AckVNet = int8(r.U8())
	p.AckMask = r.U64()
	p.retx = r.Bool()
	if rp := pc.LoadPayload(r); rp != nil {
		p.Payload = rp
	}
}

func (ni *NI) loadPacket(r *snapshot.Reader, pc PayloadCodec) *Packet {
	p := ni.getPacket()
	loadPacketInto(r, pc, p)
	return p
}

// SaveState serializes the whole mesh: every NI (queues, injection stream,
// pending deliveries, transport recovery state) and every router (occupied
// VCs in occupancy order, switch streams, link rings, filters, credits and
// arbitration state). Free-list pools are not state: restored in-flight
// packets and payloads are re-drawn from fresh pools, which is invisible to
// the simulation (no payload pointer is ever compared, and pool residency
// only affects allocation counts).
func (n *Network) SaveState(w *snapshot.Writer, pc PayloadCodec) {
	w.Section("noc.network")
	for _, ni := range n.nis {
		ni.saveState(w, pc)
	}
	for _, r := range n.routers {
		r.saveState(w, pc)
	}
}

// LoadState restores a mesh saved by SaveState into this freshly built
// network (same Config; the caller's fingerprint check guarantees it).
func (n *Network) LoadState(r *snapshot.Reader, pc PayloadCodec) error {
	r.Section("noc.network")
	for _, ni := range n.nis {
		if err := ni.loadState(r, pc); err != nil {
			return err
		}
	}
	for _, rt := range n.routers {
		if err := rt.loadState(r, pc); err != nil {
			return err
		}
	}
	return r.Err()
}

func (ni *NI) saveState(w *snapshot.Writer, pc PayloadCodec) {
	w.Section("noc.ni")
	for u := range ni.queues {
		for v := range ni.queues[u] {
			q := ni.queues[u][v]
			w.Int(len(q))
			for _, p := range q {
				savePacketInto(w, pc, p)
			}
		}
	}
	// Injection stream: the packet is serialized on its own. The local VC it
	// streams into is identified by index; once the head flit has been
	// written (sent >= 1) the VC holds — and will recycle — its own decoded
	// copy, while this one is only ever read (pushPending scans, Size), so
	// the two need not share identity.
	if s := ni.stream; s != nil {
		w.Bool(true)
		w.Int(s.sent)
		w.Int(s.vc.idx)
		savePacketInto(w, pc, s.pkt)
	} else {
		w.Bool(false)
	}
	w.Int(len(ni.delivery))
	for _, d := range ni.delivery {
		w.U64(uint64(d.readyAt))
		savePacketInto(w, pc, d.pkt)
	}
	w.Int(ni.rr)
	w.U64(ni.seq)
	if ni.tp != nil {
		w.Bool(true)
		ni.tp.saveState(w, pc)
	} else {
		w.Bool(false)
	}
}

func (ni *NI) loadState(r *snapshot.Reader, pc PayloadCodec) error {
	r.Section("noc.ni")
	ni.queued = 0
	for u := range ni.queues {
		for v := range ni.queues[u] {
			k := r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			for i := 0; i < k; i++ {
				ni.queues[u][v] = append(ni.queues[u][v], ni.loadPacket(r, pc))
			}
			ni.queued += k
		}
	}
	if r.Bool() {
		sent := r.Int()
		vcIdx := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		rt := ni.net.routers[ni.node]
		if vcIdx < 0 || vcIdx >= len(rt.in[PortLocal]) {
			return fmt.Errorf("%w: NI %d stream VC index %d out of range", snapshot.ErrCorrupt, ni.node, vcIdx)
		}
		ni.cur = niStream{pkt: ni.loadPacket(r, pc), vc: &rt.in[PortLocal][vcIdx], sent: sent}
		ni.stream = &ni.cur
	}
	nd := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nd; i++ {
		at := sim.Cycle(r.U64())
		ni.delivery = append(ni.delivery, delivered{pkt: ni.loadPacket(r, pc), readyAt: at})
	}
	ni.rr = r.Int()
	ni.seq = r.U64()
	if r.Bool() {
		if ni.tp == nil {
			return fmt.Errorf("%w: snapshot has transport state for node %d but this build is not lossy",
				snapshot.ErrMismatch, ni.node)
		}
		return ni.tp.loadState(r, pc, ni)
	}
	if ni.tp != nil {
		return fmt.Errorf("%w: this build is lossy but the snapshot has no transport state for node %d",
			snapshot.ErrMismatch, ni.node)
	}
	return r.Err()
}

func (tp *niTransport) saveState(w *snapshot.Writer, pc PayloadCodec) {
	w.Section("noc.transport")
	for v := range tp.tx {
		tw := &tp.tx[v]
		w.U32(tw.nextSeq)
		w.Int(len(tw.entries))
		for i := range tw.entries {
			e := &tw.entries[i]
			w.U32(e.seq)
			saveDests(w, e.pending)
			w.U64(uint64(e.lastSent))
			w.Int(e.retries)
			w.Bool(e.done)
			savePacketInto(w, pc, &e.proto)
		}
	}
	saveSortedU32(w, len(tp.rx), func(yield func(uint32)) {
		for k := range tp.rx {
			yield(k)
		}
	}, func(k uint32) {
		st := tp.rx[k]
		w.U32(st.top)
		w.U64(st.mask)
	})
	// ackDue is FIFO-ordered state; ackDueSet is rebuilt from it on load.
	w.Int(len(tp.ackDue))
	for _, k := range tp.ackDue {
		w.U32(k)
	}
	w.Int(len(tp.held))
	for _, p := range tp.held {
		savePacketInto(w, pc, p)
	}
	saveSortedU64(w, len(tp.pushHold), func(yield func(uint64)) {
		for k := range tp.pushHold {
			yield(k)
		}
	}, func(k uint64) { w.Int(tp.pushHold[k]) })
	saveSortedU64(w, len(tp.dropped), func(yield func(uint64)) {
		for k := range tp.dropped {
			yield(k)
		}
	}, func(k uint64) { w.Bool(tp.dropped[k].isPush) })
	if tp.dead != nil {
		w.Bool(true)
		w.String(tp.dead.Error())
	} else {
		w.Bool(false)
	}
}

func (tp *niTransport) loadState(r *snapshot.Reader, pc PayloadCodec, ni *NI) error {
	r.Section("noc.transport")
	for v := range tp.tx {
		tw := &tp.tx[v]
		tw.nextSeq = r.U32()
		k := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if cap(tw.entries) == 0 && k > 0 {
			tw.entries = make([]txEntry, 0, ni.net.retryWindow)
		}
		for i := 0; i < k; i++ {
			var e txEntry
			e.seq = r.U32()
			e.pending = loadDests(r)
			e.lastSent = sim.Cycle(r.U64())
			e.retries = r.Int()
			e.done = r.Bool()
			loadPacketInto(r, pc, &e.proto)
			tw.entries = append(tw.entries, e)
		}
	}
	nrx := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nrx; i++ {
		k := r.U32()
		tp.rx[k] = &rxStream{top: r.U32(), mask: r.U64()}
	}
	nack := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nack; i++ {
		k := r.U32()
		tp.ackDue = append(tp.ackDue, k)
		tp.ackDueSet[k] = struct{}{}
	}
	nheld := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nheld; i++ {
		tp.held = append(tp.held, ni.loadPacket(r, pc))
	}
	nhold := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nhold; i++ {
		k := r.U64()
		tp.pushHold[k] = r.Int()
	}
	ndrop := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < ndrop; i++ {
		k := r.U64()
		tp.dropped[k] = lossRec{isPush: r.Bool()}
	}
	if r.Bool() {
		tp.dead = restoredDead{msg: r.String()}
	}
	return r.Err()
}

func (rt *Router) saveState(w *snapshot.Writer, pc PayloadCodec) {
	w.Section("noc.router")
	// Occupied VCs, in occupancy order: the order is load-bearing (candMask
	// bits index occ positions and round-robin arbitration walks them).
	w.Int(len(rt.occ))
	for _, vc := range rt.occ {
		w.U8(uint8(vc.port))
		w.Int(vc.idx)
		w.U64(uint64(vc.headAt))
		w.Bool(vc.routed)
		w.Bool(vc.reserved)
		w.Int(vc.pendingPorts)
		for o := 0; o < NumPorts; o++ {
			saveDests(w, vc.pending[o])
		}
		if vc.pkt != nil {
			w.Bool(true)
			savePacketInto(w, pc, vc.pkt)
		} else {
			w.Bool(false)
		}
	}
	// Switch streams, keyed by output port. One stream object is referenced
	// from outStream[o], inLock[inPort], and vc.active; restore wires a
	// single decoded object into all three (the nil-checks on each are
	// semantic).
	for o := 0; o < NumPorts; o++ {
		s := rt.outStream[o]
		if s == nil {
			w.Bool(false)
			continue
		}
		w.Bool(true)
		w.U8(uint8(s.inPort))
		w.Int(s.vcIdx)
		w.Int(s.sent)
		w.Int(s.size)
		w.U8(uint8(s.vnet))
		w.U8(uint8(s.class))
		w.U8(uint8(s.dstUnit))
		saveDests(w, s.dests)
		w.U64(s.addr)
		w.U64(s.id)
		w.Bool(s.isPush)
		if s.replica != nil {
			w.Bool(true)
			savePacketInto(w, pc, s.replica)
		} else {
			w.Bool(false)
		}
	}
	// Link rings, oldest entry first.
	for p := 0; p < NumPorts; p++ {
		w.Int(rt.arrivals[p].len())
		rt.arrivals[p].forEach(func(pkt *Packet, at sim.Cycle) {
			w.U64(uint64(at))
			savePacketInto(w, pc, pkt)
		})
	}
	for p := 0; p < NumPorts; p++ {
		ring := &rt.credRet[p]
		w.Int(int(ring.tail.Load() - ring.head.Load()))
		for h, t := ring.head.Load(), ring.tail.Load(); h != t; h++ {
			e := ring.buf[h%ringCap]
			w.U8(uint8(e.vnet))
			w.U64(uint64(e.at))
		}
	}
	// Arbitration and accounting state, verbatim.
	for o := 0; o < NumPorts; o++ {
		w.Int(rt.rr[o])
	}
	w.Int(rt.unrouted)
	w.U64(uint64(rt.minHeadAt))
	for o := 0; o < NumPorts; o++ {
		w.U64(rt.candMask[o])
	}
	for o := 0; o < NumPorts; o++ {
		for v := 0; v < NumVNets; v++ {
			w.U32(uint32(uint16(rt.candV[o][v])))
		}
	}
	for o := 0; o < NumPorts; o++ {
		w.U32(uint32(uint16(rt.invCand[o])))
	}
	for p := 0; p < NumPorts; p++ {
		for v := 0; v < NumVNets; v++ {
			w.U32(uint32(uint16(rt.freeCnt[p][v])))
		}
	}
	for o := 0; o < NumPorts; o++ {
		for v := 0; v < NumVNets; v++ {
			w.U32(uint32(uint16(rt.credits[o][v])))
		}
	}
	if rt.filters != nil {
		w.Bool(true)
		fb := rt.filters
		w.Int(len(fb.entries))
		for i := range fb.entries {
			e := &fb.entries[i]
			w.Bool(e.valid)
			w.U64(e.addr)
			saveDests(w, e.dests)
			w.Bool(e.clearPending)
			w.U64(uint64(e.clearAt))
		}
		for p := 0; p < NumPorts; p++ {
			w.Int(fb.activeCnt[p])
			w.U64(uint64(fb.aliveUntil[p]))
		}
	} else {
		w.Bool(false)
	}
}

func (rt *Router) loadState(r *snapshot.Reader, pc PayloadCodec) error {
	r.Section("noc.router")
	nocc := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nocc; i++ {
		port := int(r.U8())
		idx := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if port < 0 || port >= NumPorts || idx < 0 || idx >= len(rt.in[port]) {
			return fmt.Errorf("%w: router %d occ entry (%d,%d) out of range", snapshot.ErrCorrupt, rt.id, port, idx)
		}
		vc := &rt.in[port][idx]
		vc.occPos = len(rt.occ)
		rt.occ = append(rt.occ, vc)
		vc.headAt = sim.Cycle(r.U64())
		vc.routed = r.Bool()
		vc.reserved = r.Bool()
		vc.pendingPorts = r.Int()
		for o := 0; o < NumPorts; o++ {
			vc.pending[o] = loadDests(r)
		}
		if r.Bool() {
			vc.pkt = rt.net.nis[rt.id].loadPacket(r, pc)
		}
	}
	for o := 0; o < NumPorts; o++ {
		if !r.Bool() {
			continue
		}
		s := &stream{outPort: o}
		s.inPort = int(r.U8())
		s.vcIdx = r.Int()
		s.sent = r.Int()
		s.size = r.Int()
		s.vnet = int(r.U8())
		s.class = stats.Class(r.U8())
		s.dstUnit = stats.Unit(r.U8())
		s.dests = loadDests(r)
		s.addr = r.U64()
		s.id = r.U64()
		s.isPush = r.Bool()
		if r.Bool() {
			s.replica = rt.net.nis[rt.id].loadPacket(r, pc)
		}
		if r.Err() != nil {
			return r.Err()
		}
		if s.inPort < 0 || s.inPort >= NumPorts || s.vcIdx < 0 || s.vcIdx >= len(rt.in[s.inPort]) {
			return fmt.Errorf("%w: router %d stream VC (%d,%d) out of range", snapshot.ErrCorrupt, rt.id, s.inPort, s.vcIdx)
		}
		s.vc = &rt.in[s.inPort][s.vcIdx]
		if o != PortLocal {
			s.downR = rt.nbr[o]
		}
		rt.outStream[o] = s
		rt.inLock[s.inPort] = s
		s.vc.active = s
	}
	for p := 0; p < NumPorts; p++ {
		k := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < k; i++ {
			at := sim.Cycle(r.U64())
			rt.arrivals[p].push(rt.net.nis[rt.id].loadPacket(r, pc), at)
		}
	}
	for p := 0; p < NumPorts; p++ {
		k := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		for i := 0; i < k; i++ {
			v := int(r.U8())
			rt.credRet[p].push(v, sim.Cycle(r.U64()))
		}
	}
	for o := 0; o < NumPorts; o++ {
		rt.rr[o] = r.Int()
	}
	rt.unrouted = r.Int()
	rt.minHeadAt = sim.Cycle(r.U64())
	for o := 0; o < NumPorts; o++ {
		rt.candMask[o] = r.U64()
	}
	for o := 0; o < NumPorts; o++ {
		for v := 0; v < NumVNets; v++ {
			rt.candV[o][v] = int16(uint16(r.U32()))
		}
	}
	for o := 0; o < NumPorts; o++ {
		rt.invCand[o] = int16(uint16(r.U32()))
	}
	for p := 0; p < NumPorts; p++ {
		for v := 0; v < NumVNets; v++ {
			rt.freeCnt[p][v] = int16(uint16(r.U32()))
		}
	}
	for o := 0; o < NumPorts; o++ {
		for v := 0; v < NumVNets; v++ {
			rt.credits[o][v] = int16(uint16(r.U32()))
		}
	}
	hasFilters := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasFilters != (rt.filters != nil) {
		return fmt.Errorf("%w: router %d filter bank presence differs (snapshot %v, build %v)",
			snapshot.ErrMismatch, rt.id, hasFilters, rt.filters != nil)
	}
	if hasFilters {
		fb := rt.filters
		ne := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if ne != len(fb.entries) {
			return fmt.Errorf("%w: router %d filter bank has %d slots, snapshot %d",
				snapshot.ErrMismatch, rt.id, len(fb.entries), ne)
		}
		for i := range fb.entries {
			e := &fb.entries[i]
			e.valid = r.Bool()
			e.addr = r.U64()
			e.dests = loadDests(r)
			e.clearPending = r.Bool()
			e.clearAt = sim.Cycle(r.U64())
		}
		for p := 0; p < NumPorts; p++ {
			fb.activeCnt[p] = r.Int()
			fb.aliveUntil[p] = sim.Cycle(r.U64())
		}
	}
	return r.Err()
}

// saveSortedU32 / saveSortedU64 serialize a map deterministically: count,
// then each key ascending followed by its caller-written value.
func saveSortedU32(w *snapshot.Writer, n int, keys func(func(uint32)), val func(uint32)) {
	ks := make([]uint32, 0, n)
	keys(func(k uint32) { ks = append(ks, k) })
	sortU32s(ks)
	w.Int(len(ks))
	for _, k := range ks {
		w.U32(k)
		val(k)
	}
}

func saveSortedU64(w *snapshot.Writer, n int, keys func(func(uint64)), val func(uint64)) {
	ks := make([]uint64, 0, n)
	keys(func(k uint64) { ks = append(ks, k) })
	sortU64s(ks)
	w.Int(len(ks))
	for _, k := range ks {
		w.U64(k)
		val(k)
	}
}

func sortU32s(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortU64s(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
