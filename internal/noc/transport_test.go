package noc

import (
	"testing"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// bareTransportNI builds the minimal NI the transport-layer state machines
// need: anti-replay streams and tx windows, no engine or routers.
func bareTransportNI(seqBits uint) *NI {
	return &NI{
		net: &Network{seqMask: uint32(1)<<seqBits - 1},
		tp: &niTransport{
			rx:        make(map[uint32]*rxStream),
			ackDueSet: make(map[uint32]struct{}),
		},
	}
}

// TestRxSeenProperty replays pseudo-random bounded-lag delivery sequences
// against a reference model that remembers every unmasked sequence number
// exactly, for narrow and full-width counters. The transport's contract: as
// long as a redelivery lags the newest delivery by less than the 64-bit mask
// horizon (guaranteed by the bounded retransmit window), the anti-replay
// window dedups exactly — no fresh packet suppressed, no duplicate admitted
// — through arbitrarily many wraps of the masked counter.
func TestRxSeenProperty(t *testing.T) {
	const (
		steps   = 30000
		maxBack = 40 // redelivery lag kept below the 64-entry mask horizon
		maxFwd  = 8  // bounded reorder ahead of the newest delivery
	)
	for _, seqBits := range []uint{8, 12, 16} {
		ni := bareTransportNI(seqBits)
		pkt := &Packet{Src: 3, VNet: VNetData}
		seen := make(map[uint64]bool) // reference: unmasked seq -> delivered
		var top uint64                // reference: newest unmasked delivery
		rng := uint64(0x1234567 + seqBits)
		for i := 0; i < steps; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			lo := uint64(0)
			if top > maxBack {
				lo = top - maxBack
			}
			s := lo + (rng>>33)%(top-lo+1+maxFwd)
			pkt.Seq = uint32(s) & ni.net.seqMask
			want := seen[s]
			if peek := ni.rxSeenPeek(pkt); peek != want {
				t.Fatalf("seqBits=%d step %d: rxSeenPeek(%d)=%v, reference %v", seqBits, i, s, peek, want)
			}
			if got := ni.rxSeen(pkt); got != want {
				t.Fatalf("seqBits=%d step %d: rxSeen(%d)=%v, reference %v", seqBits, i, s, got, want)
			}
			seen[s] = true
			if s > top {
				top = s
			}
		}
	}
}

// TestConsumeAckCumulative checks that one cumulative ack retires exactly
// the window entries the receiver's (top, mask) snapshot covers: seqs at or
// behind top with their mask bit set, and nothing ahead of top.
func TestConsumeAckCumulative(t *testing.T) {
	ni := bareTransportNI(16)
	const dest = NodeID(5)
	w := &ni.tp.tx[VNetData]
	for seq := uint32(10); seq < 16; seq++ {
		w.entries = append(w.entries, txEntry{
			seq: seq, proto: Packet{Seq: seq}, pending: OneDest(dest),
		})
	}
	// Receiver saw 10, 11, 13 (top=13, mask bits 0,2,3); 12 was lost, 14 and
	// 15 have not arrived.
	ack := &Packet{
		IsAck: true, AckVNet: int8(VNetData), Src: dest,
		Seq: 13, AckMask: 1 | 1<<2 | 1<<3,
	}
	ni.consumeAck(ack, 0)
	// The done prefix (10, 11) is popped; 12 must survive at the front.
	if len(w.entries) != 4 {
		t.Fatalf("window has %d entries after ack, want 4 (12..15)", len(w.entries))
	}
	for i, want := range []struct {
		seq  uint32
		done bool
	}{{12, false}, {13, true}, {14, false}, {15, false}} {
		e := &w.entries[i]
		if e.seq != want.seq || e.done != want.done {
			t.Errorf("entry %d: seq=%d done=%v, want seq=%d done=%v", i, e.seq, e.done, want.seq, want.done)
		}
	}
	// The retransmission of 12 arrives; the re-ack covers everything.
	ack.Seq, ack.AckMask = 13, 1|1<<1|1<<2|1<<3
	ni.consumeAck(ack, 0)
	if len(w.entries) != 2 || w.entries[0].seq != 14 {
		t.Fatalf("window after healing ack: %d entries, front seq %d; want 2 entries from 14", len(w.entries), w.entries[0].seq)
	}
}

// TestConsumeAckWraparound drives the cumulative coverage check across the
// masked counter's wrap: an ack whose top sits just past the wrap must cover
// entries from just before it, and must not touch entries logically ahead.
func TestConsumeAckWraparound(t *testing.T) {
	ni := bareTransportNI(8)
	const dest = NodeID(2)
	w := &ni.tp.tx[VNetReq]
	for _, seq := range []uint32{253, 254, 255, 0, 1, 2} {
		w.entries = append(w.entries, txEntry{
			seq: seq, proto: Packet{Seq: seq}, pending: OneDest(dest),
		})
	}
	// Receiver saw 253, 255, 0 (top=0): mask bit 0 (=0), 1 (=255), 3 (=253).
	ack := &Packet{
		IsAck: true, AckVNet: int8(VNetReq), Src: dest,
		Seq: 0, AckMask: 1 | 1<<1 | 1<<3,
	}
	ni.consumeAck(ack, 0)
	var got []uint32
	for i := range w.entries {
		if !w.entries[i].done {
			got = append(got, w.entries[i].seq)
		}
	}
	want := []uint32{254, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("surviving entries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving entries %v, want %v", got, want)
		}
	}
}

// TestSendAckCoalesces checks the congestive-collapse guard: any number of
// deliveries from the same (source, vnet) stream leaves exactly one due ack,
// and distinct streams queue independently in arrival order.
func TestSendAckCoalesces(t *testing.T) {
	ni := bareTransportNI(16)
	a := &Packet{Src: 1, VNet: VNetData, DstUnit: stats.UnitL2}
	b := &Packet{Src: 1, VNet: VNetReq, DstUnit: stats.UnitL2}
	c := &Packet{Src: 7, VNet: VNetData, DstUnit: stats.UnitL2}
	for i := 0; i < 5; i++ {
		ni.sendAck(a, sim.Cycle(i))
	}
	ni.sendAck(b, 5)
	ni.sendAck(c, 6)
	ni.sendAck(a, 7)
	if len(ni.tp.ackDue) != 3 {
		t.Fatalf("ackDue has %d streams, want 3 (coalesced)", len(ni.tp.ackDue))
	}
	wantKeys := []uint32{
		uint32(1)<<2 | uint32(VNetData),
		uint32(1)<<2 | uint32(VNetReq),
		uint32(7)<<2 | uint32(VNetData),
	}
	for i, k := range wantKeys {
		if ni.tp.ackDue[i] != k {
			t.Fatalf("ackDue[%d]=%#x, want %#x", i, ni.tp.ackDue[i], k)
		}
	}
}
