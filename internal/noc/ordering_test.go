package noc

import (
	"testing"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// TestOrdPushOrderingProperty injects randomized push-then-invalidation
// pairs for the same line from the same source under background load, and
// asserts the delivery-order invariant OrdPush coherence rests on: at every
// destination covered by both, the push arrives strictly before the
// invalidation.
func TestOrdPushOrderingProperty(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	cfg.OrdPushInvStall = true
	eng := sim.NewEngine(100_000, 5_000_000)
	st := stats.New()
	net, err := New(cfg, eng, st)
	if err != nil {
		t.Fatal(err)
	}

	type arrival struct{ pushSeen, invSeen bool }
	// state[addr][dest]
	state := map[uint64]map[NodeID]*arrival{}
	violations := 0
	for i := 0; i < cfg.Nodes(); i++ {
		node := NodeID(i)
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			net.Attach(node, u, endpointFunc(func(p *Packet, now sim.Cycle) {
				m := state[p.Addr]
				if m == nil || m[node] == nil {
					return
				}
				a := m[node]
				if p.IsPush {
					a.pushSeen = true
				}
				if p.IsInv {
					a.invSeen = true
					if !a.pushSeen {
						violations++
						t.Errorf("inv for %#x overtook push at node %d (cycle %d)", p.Addr, node, now)
					}
				}
			}))
		}
	}

	rng := uint64(99)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 16
	}
	pairs := 0
	wantInvs := 0
	gotInvs := func() int {
		n := 0
		for _, m := range state {
			for _, a := range m {
				if a.invSeen {
					n++
				}
			}
		}
		return n
	}
	for round := 0; round < 300; round++ {
		src := NodeID(next() % uint64(cfg.Nodes()))
		ni := net.NI(src)
		// Background noise on the data vnet.
		if next()%2 == 0 && ni.CanInject(stats.UnitL2, VNetData) {
			ni.Inject(&Packet{VNet: VNetData, SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
				Dests: OneDest(NodeID(next() % uint64(cfg.Nodes()))), Addr: 0xf0000 + (next()%32)*64,
				Size: cfg.DataPacketSize()}, eng.Now())
		}
		// A push+inv pair: fresh address each time so state is unambiguous.
		if ni.CanInject(stats.UnitLLC, VNetData) && ni.CanInject(stats.UnitLLC, VNetCtrl) {
			addr := uint64(0x100000) + uint64(pairs)*64
			dests := DestSetFromWord(next()).Mask(16)
			if dests.Empty() {
				dests = OneDest(NodeID(next() % 16))
			}
			invDest := dests.First()
			state[addr] = map[NodeID]*arrival{invDest: {}}
			ni.Inject(&Packet{VNet: VNetData, SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
				Dests: dests, Addr: addr, Size: cfg.DataPacketSize(), IsPush: true}, eng.Now())
			ni.Inject(&Packet{VNet: VNetCtrl, SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
				Dests: OneDest(invDest), Addr: addr, Size: 1, IsInv: true}, eng.Now())
			pairs++
			wantInvs++
		}
		eng.Step()
	}
	if _, err := eng.Run(func() bool { return gotInvs() == wantInvs }); err != nil {
		t.Fatalf("drain: %v (delivered %d/%d invs)", err, gotInvs(), wantInvs)
	}
	if pairs < 100 {
		t.Fatalf("only %d pairs exercised", pairs)
	}
	if violations > 0 {
		t.Fatalf("%d ordering violations", violations)
	}
}

// TestMulticastReplicaAccounting checks that a k-port multicast counts its
// extra replicas.
func TestMulticastReplicaAccounting(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng := sim.NewEngine(10_000, 1_000_000)
	st := stats.New()
	net, err := New(cfg, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < cfg.Nodes(); i++ {
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			net.Attach(NodeID(i), u, endpointFunc(func(*Packet, sim.Cycle) { got++ }))
		}
	}
	// From the center, a 4-corner multicast must branch.
	net.NI(5).Inject(&Packet{VNet: VNetData, SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: OneDest(0).Add(3).Add(12).Add(15), Size: cfg.DataPacketSize(), IsPush: true},
		eng.Now())
	if _, err := eng.Run(func() bool { return got == 4 }); err != nil {
		t.Fatal(err)
	}
	if st.Net.MulticastReplicas == 0 {
		t.Error("no multicast replicas recorded")
	}
}
