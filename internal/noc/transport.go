package noc

// End-to-end message recovery for lossy interconnects.
//
// When the fault plan schedules MsgDrop/MsgDup/MsgCorrupt, the network arms
// a transport layer at every NI:
//
//   - The sender stamps each injected packet with a per-(source NI, vnet)
//     sequence number and a header checksum, and retains a copy in a bounded
//     selective-repeat window until every destination has acked it. An entry
//     unacked for RetryTimeout cycles is retransmitted to its remaining
//     destinations; after MaxRetries unacked retransmissions the run aborts
//     with ErrUnrecoverable.
//   - The receiver verifies the checksum (a MsgCorrupt verdict surfaces as a
//     mismatch and the packet is discarded like a drop), suppresses replayed
//     sequence numbers with an anti-replay window (top counter + 64-bit
//     backward mask, reorder-tolerant), acks every survivor — including
//     suppressed duplicates, so a lost ack is healed by the retransmission
//     it provokes — and parks invalidations whose address has a dropped push
//     outstanding, preserving OrdPush's push-before-invalidation order
//     across a loss.
//
// Acks are cumulative: one single-flit VNetCtrl packet per (source, vnet)
// stream carrying the receiver's whole anti-replay state (top + mask), sent
// outside the sequence space (acking acks would recurse) and coalesced per
// stream while waiting for injection. They are themselves droppable and
// duplicable — a lost ack carries no recovery obligation of its own, because
// the unacked data's retransmission provokes a fresh ack with fresher state.
// The window bounds how far an unacked entry can trail the receiver's top
// (RetryWindow <= 32 < the 64-bit mask horizon), so a live entry is always
// coverable. Every
// transport decision is a pure function of deterministic state, so lossy
// runs replay byte-identically across the serial, dense, and parallel
// kernels. All state below is tile-local and touched only from the tile's
// lane.

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/trace"
)

// txEntry is one unacked packet in a sender NI's retransmit window.
type txEntry struct {
	seq uint32
	// proto is the retransmission template: a field copy of the packet as
	// injected, holding one payload reference until the entry retires.
	proto Packet
	// pending is the destinations that have not acked yet.
	pending  DestSet
	lastSent sim.Cycle
	retries  int
	done     bool
}

// txWindow is a sender NI's per-vnet selective-repeat window, ordered by
// sequence number; the front is popped as soon as it is fully acked.
type txWindow struct {
	entries []txEntry
	nextSeq uint32
}

// rxStream is the receiver's per-(source, vnet) anti-replay state: top is
// the highest sequence accepted, mask bit i records whether top-i was seen.
type rxStream struct {
	top  uint32
	mask uint64
}

// lossRec remembers one dropped/corrupted stream key awaiting recovery.
type lossRec struct {
	isPush bool
}

// niTransport is one NI's recovery state; nil when the run is not lossy.
type niTransport struct {
	tx [NumVNets]txWindow
	// rx maps src<<2|vnet to the stream's anti-replay state.
	rx map[uint32]*rxStream
	// ackDue is the FIFO of rx stream keys owing a cumulative ack, with
	// ackDueSet as the membership index. Coalescing per stream (rather than
	// queueing one ack per delivered packet) bounds the backlog: per-packet
	// acks congestively collapse under multicast load — delivery rate
	// outruns the ctrl-vnet injection rate, ack latency diverges, and
	// senders exhaust their retries on traffic that did arrive.
	ackDue    []uint32
	ackDueSet map[uint32]struct{}
	// held parks delivered invalidations whose address has a dropped push
	// outstanding (see pushHold); flushed FIFO once the push re-arrives.
	held []*Packet
	// pushHold counts dropped-push stream keys per address.
	pushHold map[uint64]int
	// dropped tracks stream keys discarded at this NI and not yet re-seen;
	// their re-arrival emits KMsgRecover (the checker's loss invariant).
	dropped map[uint64]lossRec
	// dead is the ErrUnrecoverable verdict once a window entry exhausts its
	// retries; the run's finished-check aborts on it at the next cycle edge.
	dead error
}

func (ni *NI) initTransport() {
	if ni.tp == nil {
		ni.tp = &niTransport{
			rx:        make(map[uint32]*rxStream),
			ackDueSet: make(map[uint32]struct{}),
			pushHold:  make(map[uint64]int),
			dropped:   make(map[uint64]lossRec),
		}
	}
}

// windowFull reports whether the vnet's retransmit window has no room for a
// new entry; Inject refuses the packet, surfacing as ordinary backpressure.
func (ni *NI) windowFull(vnet int) bool {
	return len(ni.tp.tx[vnet].entries) >= ni.net.retryWindow
}

// streamKey packs (source, stream, seq) into the 64-bit key used by the loss
// trace events and the recovery map. stream is the vnet for sequenced
// packets and 4|ackVNet for acks (acks carry no sequence of their own; the
// key only labels their loss events, which are always orphans).
func streamKey(src NodeID, stream uint8, seq uint32) uint64 {
	return uint64(seq) | uint64(stream)<<32 | uint64(uint32(src))<<40
}

func (p *Packet) transportKey() uint64 {
	if p.IsAck {
		return streamKey(p.Src, 4|uint8(p.AckVNet), p.Seq)
	}
	return streamKey(p.Src, uint8(p.VNet), p.Seq)
}

// checksum hashes the packet's stable header fields. Dests is excluded (it
// differs per retransmission subset); each packet copy is verified against
// the value stamped at its own injection.
func (n *Network) checksum(p *Packet) uint32 {
	x := p.ID ^ p.Addr*0x9E3779B97F4A7C15 ^ uint64(p.Seq)<<32 ^
		uint64(uint32(p.Src))<<8 ^ uint64(p.VNet) ^ uint64(p.Size)<<16
	if p.IsAck {
		x ^= 0xACC<<44 ^ p.AckMask*0x2545F4914F6CDD1D
	}
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return uint32(x)
}

// stampTransport assigns a fresh sequence number and window entry to a
// first-injection packet (retransmissions and acks keep theirs) and stamps
// the checksum. Runs inside Inject, after the window-full refusal check.
//
// Filterable requests are exempt from sequencing: the in-network filter may
// legitimately consume them mid-route (the push answers instead), so an ack
// can never be owed end-to-end. Their loss-recovery path is the protocol
// level — the L2's MSHR retry timer reissues an unanswered GetS.
func (ni *NI) stampTransport(pkt *Packet, now sim.Cycle) {
	if !pkt.IsAck && !pkt.retx && !pkt.Filterable {
		w := &ni.tp.tx[pkt.VNet]
		pkt.Seq = w.nextSeq & ni.net.seqMask
		w.nextSeq++
		if cap(w.entries) == 0 {
			w.entries = make([]txEntry, 0, ni.net.retryWindow)
		}
		w.entries = append(w.entries, txEntry{
			seq: pkt.Seq, proto: *pkt, pending: pkt.Dests, lastSent: now,
		})
		if rp, ok := pkt.Payload.(RefPayload); ok {
			rp.AddRef() // the window's hold; released when the entry retires
		}
	}
	pkt.Csum = ni.net.checksum(pkt)
}

// transportAdmit applies the lossy verdict and the receiver protocol to one
// matured delivery. It reports whether the packet should be handed to the
// endpoint, plus the verdict (LossDup survivors are re-presented and
// suppressed after the handoff, modeling the duplicated arrival).
func (ni *NI) transportAdmit(pkt *Packet, now sim.Cycle) (bool, LossVerdict) {
	tp := ni.tp
	fate := LossNone
	if f := ni.net.faults; f != nil {
		fate = f.LossyVerdict(ni.node, now, pkt.ID)
	}
	if c := ni.net.checksum(pkt); fate != LossCorrupt && c != pkt.Csum {
		panic(fmt.Sprintf("noc: checksum mismatch without corruption fault at node %d: %v", ni.node, pkt))
	}
	key := pkt.transportKey()
	if pkt.Filterable {
		// Unsequenced (see stampTransport): no ack, no dedup, no transport
		// recovery obligation. A discarded request is recovered at protocol
		// level by the requester's MSHR retry timer, so its loss event carries
		// the orphan flag the checker's loss invariant skips. Duplicates of an
		// unsequenced request cannot be detected here; requests are idempotent
		// anyway, and the second arrival is modeled as suppressed (the LossDup
		// verdict flows to simulateDup, which skips the ack for these).
		if fate == LossDrop || fate == LossCorrupt {
			kind := trace.Kind(trace.KMsgDrop)
			if fate == LossCorrupt {
				kind = trace.KMsgCorrupt
				ni.st.Net.CorruptDetected++
			} else {
				ni.st.Net.MsgDropped++
			}
			ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: kind, Node: int32(ni.node),
				Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux{key}, A: int32(pkt.Src), B: 1})
			ni.net.eng.Progress()
			ni.putPacket(pkt)
			return false, fate
		}
		return true, fate
	}
	if fate == LossDrop || fate == LossCorrupt {
		// An orphan drop carries no recovery obligation: the sequence number
		// was already accepted here (a duplicate whose original got through),
		// or the discard is an ack — cumulative acks are stateless snapshots;
		// whatever this one would have retired, the entry's own retransmission
		// provokes a fresher one. Nothing will — or needs to — carry this key
		// again, so the checker's loss invariant must not wait for a
		// KMsgRecover; flag it in B.
		orphan := pkt.IsAck || ni.rxSeenPeek(pkt)
		kind := trace.Kind(trace.KMsgDrop)
		if fate == LossCorrupt {
			kind = trace.KMsgCorrupt
			ni.st.Net.CorruptDetected++
		} else {
			ni.st.Net.MsgDropped++
		}
		var b int32
		if orphan {
			b = 1
		}
		ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: kind, Node: int32(ni.node),
			Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux{key}, A: int32(pkt.Src), B: b})
		if !orphan {
			if _, seen := tp.dropped[key]; !seen {
				tp.dropped[key] = lossRec{isPush: pkt.IsPush && !pkt.IsAck}
				if pkt.IsPush && !pkt.IsAck {
					tp.pushHold[pkt.Addr]++
				}
			}
		}
		ni.net.eng.Progress()
		ni.putPacket(pkt)
		return false, fate
	}
	if rec, ok := tp.dropped[key]; ok {
		// A previously discarded key arrived (retransmission or re-ack):
		// the loss is healed. Clearing before dedup matters — recovery may
		// arrive as a suppressed duplicate when the original got through
		// and only a retransmitted copy was dropped.
		delete(tp.dropped, key)
		if rec.isPush {
			if tp.pushHold[pkt.Addr]--; tp.pushHold[pkt.Addr] <= 0 {
				delete(tp.pushHold, pkt.Addr)
			}
		}
		ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KMsgRecover, Node: int32(ni.node),
			Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux{key}, A: int32(pkt.Src)})
	}
	if pkt.IsAck {
		ni.consumeAck(pkt, now)
		if fate == LossDup {
			ni.consumeAck(pkt, now) // second arrival; retiring twice is a no-op
		}
		ni.net.eng.Progress()
		ni.putPacket(pkt)
		return false, fate
	}
	if ni.rxSeen(pkt) {
		ni.st.Net.DupSuppressed++
		ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KMsgDup, Node: int32(ni.node),
			Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux{key}, A: int32(pkt.Src)})
		ni.sendAck(pkt, now) // re-ack: the sender's copy may be waiting on a lost ack
		ni.net.eng.Progress()
		ni.putPacket(pkt)
		return false, fate
	}
	ni.sendAck(pkt, now)
	if pkt.IsInv && tp.pushHold[pkt.Addr] > 0 {
		// A push for this line was dropped here and its retransmission is
		// still due: applying the invalidation first would let the replayed
		// push install stale data after the line was invalidated. Park the
		// inv (it is acked and dedup-marked already) until the push
		// re-arrives.
		tp.held = append(tp.held, pkt)
		if fate == LossDup {
			ni.simulateDup(pkt, now)
		}
		return false, LossNone
	}
	return true, fate
}

// simulateDup models the second arrival of a duplicated delivery: the dedup
// window suppresses it and re-acks.
func (ni *NI) simulateDup(pkt *Packet, now sim.Cycle) {
	ni.st.Net.DupSuppressed++
	ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KMsgDup, Node: int32(ni.node),
		Addr: pkt.Addr, ID: pkt.ID, Aux: trace.Aux{pkt.transportKey()}, A: int32(pkt.Src)})
	if !pkt.Filterable {
		ni.sendAck(pkt, now) // unsequenced requests are never acked
	}
}

// rxSeen consults and updates the (source, vnet) anti-replay window:
// it reports true for an already-seen sequence number and records fresh
// ones. Wraparound-safe for 2*RetryWindow <= 1<<SeqBits: a genuine new
// arrival is never more than RetryWindow ahead of or behind top.
func (ni *NI) rxSeen(pkt *Packet) bool {
	key := uint32(pkt.Src)<<2 | uint32(pkt.VNet)
	st := ni.tp.rx[key]
	if st == nil {
		ni.tp.rx[key] = &rxStream{top: pkt.Seq, mask: 1}
		return false
	}
	mask := ni.net.seqMask
	half := (uint64(mask) + 1) / 2
	fwd := uint64((pkt.Seq - st.top) & mask)
	if fwd == 0 {
		return true
	}
	if fwd <= half {
		if fwd >= 64 {
			st.mask = 1
		} else {
			st.mask = st.mask<<fwd | 1
		}
		st.top = pkt.Seq
		return false
	}
	back := uint64((st.top - pkt.Seq) & mask)
	if back >= 64 {
		return true // beyond the mask horizon: treat as ancient duplicate
	}
	if st.mask&(1<<back) != 0 {
		return true
	}
	st.mask |= 1 << back
	return false
}

// rxSeenPeek is rxSeen without the state update: it reports whether the
// sequence number would be suppressed as a duplicate, for classifying a
// dropped arrival as an orphan (no recovery obligation).
func (ni *NI) rxSeenPeek(pkt *Packet) bool {
	st := ni.tp.rx[uint32(pkt.Src)<<2|uint32(pkt.VNet)]
	if st == nil {
		return false
	}
	mask := ni.net.seqMask
	fwd := uint64((pkt.Seq - st.top) & mask)
	if fwd == 0 {
		return true
	}
	if fwd <= (uint64(mask)+1)/2 {
		return false
	}
	back := uint64((st.top - pkt.Seq) & mask)
	if back >= 64 {
		return true
	}
	return st.mask&(1<<back) != 0
}

// sendAck marks the arrival's (source, vnet) stream as owing a cumulative
// ack; flushAcks (end of the same deliver pass) builds and injects it from
// the stream's then-current anti-replay state. Re-marking an already-due
// stream is a no-op — the eventual ack covers this arrival too, since
// rxSeen recorded it already.
func (ni *NI) sendAck(orig *Packet, now sim.Cycle) {
	key := uint32(orig.Src)<<2 | uint32(orig.VNet)
	if _, due := ni.tp.ackDueSet[key]; due {
		return
	}
	ni.tp.ackDueSet[key] = struct{}{}
	ni.tp.ackDue = append(ni.tp.ackDue, key)
}

// buildAck materializes the cumulative ack for one rx stream key: a
// single-flit ctrl packet carrying the stream's current (top, mask).
func (ni *NI) buildAck(key uint32) *Packet {
	st := ni.tp.rx[key] // non-nil: streams become due only through rxSeen
	a := ni.getPacket()
	a.VNet = VNetCtrl
	a.Class = stats.ClassAck
	a.SrcUnit = stats.UnitL2
	a.Dests = OneDest(NodeID(key >> 2))
	a.DstUnit = stats.UnitL2 // unused: acks are consumed at the transport
	a.Size = 1
	a.IsAck = true
	a.Seq = st.top
	a.AckMask = st.mask
	a.AckVNet = int8(key & 3)
	return a
}

// flushAcks injects due cumulative acks in FIFO order, stopping at the
// first refusal (the stream stays due; reschedule keeps the NI awake).
func (ni *NI) flushAcks(now sim.Cycle) {
	tp := ni.tp
	n := 0
	for n < len(tp.ackDue) {
		a := ni.buildAck(tp.ackDue[n])
		if !ni.Inject(a, now) {
			ni.putPacket(a)
			break
		}
		delete(tp.ackDueSet, tp.ackDue[n])
		n++
	}
	if n == 0 {
		return
	}
	q := tp.ackDue
	copy(q, q[n:])
	tp.ackDue = q[:len(q)-n]
}

// flushHeld releases parked invalidations whose address no longer has a
// dropped push outstanding, in arrival order. It runs after the arrival loop
// of every deliver pass, so a push and an inv maturing the same cycle apply
// in push-then-inv order.
func (ni *NI) flushHeld(now sim.Cycle) {
	if len(ni.tp.held) == 0 {
		return
	}
	q := ni.tp.held
	kept := q[:0]
	for _, pkt := range q {
		if ni.tp.pushHold[pkt.Addr] > 0 {
			kept = append(kept, pkt)
			continue
		}
		ni.handoff(pkt, now)
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	ni.tp.held = kept
}

// consumeAck retires the acking destination from every window entry the
// cumulative ack covers — entry seq equal to the ack's top, or within the
// 64-bit backward mask — and pops fully-acked entries off the window's
// front. Entries ahead of the ack's top (sent but not yet received when the
// ack was built) stay pending; stale and reordered acks cover subsets and
// are harmless.
func (ni *NI) consumeAck(a *Packet, now sim.Cycle) {
	if a.AckVNet < 0 || int(a.AckVNet) >= NumVNets {
		panic(fmt.Sprintf("noc: ack with invalid vnet %d at node %d", a.AckVNet, ni.node))
	}
	w := &ni.tp.tx[a.AckVNet]
	mask := ni.net.seqMask
	half := (uint64(mask) + 1) / 2
	for i := range w.entries {
		e := &w.entries[i]
		if e.done || !e.pending.Has(a.Src) {
			continue
		}
		back := uint64((a.Seq - e.seq) & mask)
		if back != 0 && (back > half || back >= 64 || a.AckMask&(1<<back) == 0) {
			continue // ahead of top, or not (yet) seen by the receiver
		}
		e.pending = e.pending.Remove(a.Src)
		if e.pending.Empty() {
			e.done = true
			if rp, ok := e.proto.Payload.(RefPayload); ok && rp.Release() {
				ni.payloadPool = append(ni.payloadPool, rp)
			}
			e.proto = Packet{}
		}
	}
	n := 0
	for n < len(w.entries) && w.entries[n].done {
		n++
	}
	if n > 0 {
		copy(w.entries, w.entries[n:])
		for i := len(w.entries) - n; i < len(w.entries); i++ {
			w.entries[i] = txEntry{}
		}
		w.entries = w.entries[:len(w.entries)-n]
	}
}

// checkRetransmits re-injects overdue unacked window entries. A refused
// injection (queue backpressure) leaves the entry overdue; reschedule keeps
// the NI awake and it retries next cycle. Exhausting MaxRetries marks the
// sender dead with ErrUnrecoverable; the run's finished-check picks that up
// at the next cycle edge.
func (ni *NI) checkRetransmits(now sim.Cycle) {
	tp := ni.tp
	if tp.dead != nil {
		return
	}
	for v := range tp.tx {
		w := &tp.tx[v]
		for i := range w.entries {
			e := &w.entries[i]
			if e.done || now-e.lastSent < ni.net.retryTimeout {
				continue
			}
			if e.retries >= ni.net.maxRetries {
				tp.dead = fmt.Errorf("noc: node %d vnet %d seq %d addr %#x: %d retransmissions unacked (dests %v): %w",
					ni.node, v, e.seq, e.proto.Addr, e.retries, e.pending, ErrUnrecoverable)
				return
			}
			p := ni.getPacket()
			*p = e.proto
			p.pooled = true
			p.retx = true
			p.Dests = e.pending
			if rp, ok := p.Payload.(RefPayload); ok {
				rp.AddRef()
			}
			if !ni.Inject(p, now) {
				ni.putPacket(p) // releases the clone's payload reference
				continue
			}
			e.retries++
			e.lastSent = now
			ni.st.Net.Retransmits++
			ni.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KRetransmit, Node: int32(ni.node),
				Addr: p.Addr, ID: p.ID, Aux: trace.Aux{p.transportKey()}, A: int32(e.retries)})
		}
	}
}

// transportDeadline returns the earliest retransmit deadline (idle=true), or
// idle=false when the NI must stay awake regardless (queued acks to retry,
// or a dead sender waiting for the run's finished-check).
func (ni *NI) transportDeadline() (sim.Cycle, bool) {
	tp := ni.tp
	if tp == nil {
		return sim.NeverWake, true
	}
	if len(tp.ackDue) != 0 || tp.dead != nil {
		return 0, false
	}
	min := sim.NeverWake
	for v := range tp.tx {
		for i := range tp.tx[v].entries {
			e := &tp.tx[v].entries[i]
			if e.done {
				continue
			}
			if d := e.lastSent + ni.net.retryTimeout; d < min {
				min = d
			}
		}
	}
	return min, true
}

// Unrecoverable returns the first (lowest-node) sender's ErrUnrecoverable
// verdict, or nil. Called between cycles from the run's finished-check —
// after the parallel executor's section barrier, so the lane-written dead
// fields are safely visible.
func (n *Network) Unrecoverable() error {
	if !n.lossy {
		return nil
	}
	for _, ni := range n.nis {
		if ni.tp != nil && ni.tp.dead != nil {
			return ni.tp.dead
		}
	}
	return nil
}
