// Package noc implements the mesh network-on-chip substrate: virtual
// cut-through routers with a 2-stage pipeline, three virtual networks with
// per-vnet deterministic routing (XY for requests, YX for responses),
// asynchronous multicast, and the paper's coherent in-network filter.
//
// The model is packet-granular with per-flit timing: a packet occupies one
// virtual channel per hop (virtual cut-through requires whole-packet
// buffering), flits stream at one per cycle across links and switch ports,
// and cut-through lets a head flit depart before the tail has arrived.
package noc

import (
	"fmt"
	"math/bits"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// NodeID identifies a tile (router/endpoint position) in the mesh.
type NodeID int32

// DestSet is a destination bit vector over tiles; it supports meshes of up to
// 64 nodes, which covers the paper's 4x4 and 8x8 systems.
type DestSet uint64

// OneDest returns a DestSet containing only n.
func OneDest(n NodeID) DestSet { return 1 << uint(n) }

// Has reports whether n is in the set.
func (d DestSet) Has(n NodeID) bool { return d&(1<<uint(n)) != 0 }

// Add returns d with n added.
func (d DestSet) Add(n NodeID) DestSet { return d | 1<<uint(n) }

// Remove returns d with n removed.
func (d DestSet) Remove(n NodeID) DestSet { return d &^ (1 << uint(n)) }

// Count returns the number of destinations in the set.
func (d DestSet) Count() int { return bits.OnesCount64(uint64(d)) }

// Empty reports whether the set has no destinations.
func (d DestSet) Empty() bool { return d == 0 }

// ForEach calls f for every destination in the set, in ascending order.
func (d DestSet) ForEach(f func(NodeID)) {
	for v := uint64(d); v != 0; v &= v - 1 {
		f(NodeID(bits.TrailingZeros64(v)))
	}
}

// First returns the lowest-numbered destination; it panics on an empty set.
func (d DestSet) First() NodeID {
	if d == 0 {
		panic("noc: First on empty DestSet")
	}
	return NodeID(bits.TrailingZeros64(uint64(d)))
}

// Virtual networks. The assignment mirrors a three-vnet MESI mapping:
// requests, forwarded control (invalidations), and data/responses. Pushes
// travel in the data vnet, reusing data-response virtual channels as the
// paper prescribes.
const (
	// VNetReq carries L2->LLC requests (GetS/GetM/upgrade) plus LLC->memory
	// reads. Routed XY.
	VNetReq = 0
	// VNetCtrl carries directory-to-cache control (invalidations) and
	// acknowledgments. Routed YX so that, under OrdPush, an invalidation
	// follows the exact path of the push it must stay behind.
	VNetCtrl = 1
	// VNetData carries data responses, pushes, and writebacks. Routed YX.
	VNetData = 2
	// NumVNets is the number of virtual networks.
	NumVNets = 3
)

// Packet is the unit of transfer between endpoints. Multicast packets carry
// a destination set; routers replicate them asynchronously.
type Packet struct {
	// ID is a unique packet number (diagnostics).
	ID uint64
	// VNet selects the virtual network (and thus routing and VC pool).
	VNet int
	// Class is the traffic class for accounting.
	Class stats.Class
	// Src is the injecting tile; SrcUnit its endpoint kind.
	Src     NodeID
	SrcUnit stats.Unit
	// Dests is the destination tile set (a single bit for unicasts).
	Dests DestSet
	// DstUnit selects which endpoint kind at the destination tile receives
	// the packet.
	DstUnit stats.Unit
	// Addr is the cache-line address the packet concerns; the in-network
	// filter matches on it.
	Addr uint64
	// Size is the packet length in flits for the configured link width.
	Size int
	// Payload carries the protocol message; the NoC never inspects it.
	Payload any

	// IsPush marks speculative push multicast data packets (these register
	// in filters).
	IsPush bool
	// Filterable marks read requests that the in-network filter may prune.
	Filterable bool
	// IsInv marks invalidations that OrdPush must keep ordered behind
	// same-line pushes.
	IsInv bool
	// Requester is the tile whose demand the packet represents; for
	// filterable requests it is matched against push destination sets.
	Requester NodeID

	// InjectedAt is stamped by the NI for latency accounting.
	InjectedAt sim.Cycle

	// pooled marks packets born from the network's free list (router-created
	// replicas); only those are ever recycled, so externally created packets
	// stay valid for as long as their creator holds them.
	pooled bool
}

// RefPayload is implemented by packet payloads managed through the
// network's payload free list. The network adds a reference whenever a
// router copies a packet into a replica and drops one whenever a packet
// dies (release or endpoint recycle); a payload whose last carrier died is
// returned to the list for NI.NewPayload to hand out again. Attaching a
// payload to its first packet must account for that packet's reference
// (coherence.Msg does this in FillPacket).
type RefPayload interface {
	// AddRef records one more packet carrying this payload.
	AddRef()
	// Release drops one carrier and reports whether none remain.
	Release() bool
}

// String implements fmt.Stringer for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d vnet=%d class=%v src=%d dests=%b addr=%#x size=%d push=%v}",
		p.ID, p.VNet, p.Class, p.Src, p.Dests, p.Addr, p.Size, p.IsPush)
}

// Ports of a router. The four cardinal directions connect to neighbouring
// routers; the local port connects to the tile's network interface.
const (
	PortNorth = iota
	PortEast
	PortSouth
	PortWest
	PortLocal
	NumPorts
)

var portNames = [NumPorts]string{"N", "E", "S", "W", "L"}

// PortName returns a short name for a port index.
func PortName(p int) string {
	if p >= 0 && p < NumPorts {
		return portNames[p]
	}
	return "?"
}

// opposite maps an output direction to the input port it feeds on the
// neighbouring router (a flit sent out North arrives on the neighbour's
// South input).
var opposite = [NumPorts]int{
	PortNorth: PortSouth,
	PortEast:  PortWest,
	PortSouth: PortNorth,
	PortWest:  PortEast,
	PortLocal: PortLocal,
}

// Config holds the NoC parameters (Table I defaults via DefaultConfig).
type Config struct {
	// Width and Height give the mesh dimensions; Width*Height tiles.
	Width, Height int
	// VCsPerVNet is the number of virtual channels per virtual network per
	// port.
	VCsPerVNet int
	// LinkWidthBits sets flits-per-packet: a 64-byte line needs
	// ceil(512/LinkWidthBits) body flits plus one head flit.
	LinkWidthBits int
	// InjQueueDepth bounds each endpoint's per-vnet injection queue, in
	// packets; endpoints observe backpressure through CanInject.
	InjQueueDepth int
	// FilterEnabled turns the coherent in-network filter on.
	FilterEnabled bool
	// OrdPushInvStall enables OrdPush's in-router invalidation stalling
	// behind same-line pushes.
	OrdPushInvStall bool
}

// DefaultConfig returns the Table I NoC configuration for an W x H mesh.
func DefaultConfig(w, h int) Config {
	return Config{
		Width:         w,
		Height:        h,
		VCsPerVNet:    4,
		LinkWidthBits: 128,
		InjQueueDepth: 16,
	}
}

// Nodes returns the tile count.
func (c Config) Nodes() int { return c.Width * c.Height }

// DataPacketSize returns the flit count of a cache-line data packet at the
// configured link width (head flit + payload flits).
func (c Config) DataPacketSize() int {
	lineBits := 64 * 8
	return 1 + (lineBits+c.LinkWidthBits-1)/c.LinkWidthBits
}

// CtrlPacketSize returns the flit count of a control packet (always 1).
func (c Config) CtrlPacketSize() int { return 1 }

// XY returns the (x, y) coordinate of node n.
func (c Config) XY(n NodeID) (int, int) { return int(n) % c.Width, int(n) / c.Width }

// Node returns the node at coordinate (x, y).
func (c Config) Node(x, y int) NodeID { return NodeID(y*c.Width + x) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	}
	if c.Nodes() > 64 {
		return fmt.Errorf("noc: %d nodes exceed the 64-node DestSet limit", c.Nodes())
	}
	if c.VCsPerVNet <= 0 {
		return fmt.Errorf("noc: VCsPerVNet must be positive, got %d", c.VCsPerVNet)
	}
	if NumPorts*NumVNets*c.VCsPerVNet > 64 {
		// The router tracks per-port allocation candidates in a 64-bit mask
		// over its occupied-VC list, which bounds the VCs per router.
		return fmt.Errorf("noc: %d VCs per router exceed the 64-VC router occupancy limit (VCsPerVNet <= %d)",
			NumPorts*NumVNets*c.VCsPerVNet, 64/(NumPorts*NumVNets))
	}
	switch c.LinkWidthBits {
	case 64, 128, 256, 512:
	default:
		return fmt.Errorf("noc: unsupported link width %d bits", c.LinkWidthBits)
	}
	if c.InjQueueDepth <= 0 {
		return fmt.Errorf("noc: InjQueueDepth must be positive, got %d", c.InjQueueDepth)
	}
	return nil
}
