// Package noc implements the mesh network-on-chip substrate: virtual
// cut-through routers with a 2-stage pipeline, three virtual networks with
// per-vnet deterministic routing (XY for requests, YX for responses),
// asynchronous multicast, and the paper's coherent in-network filter.
//
// The model is packet-granular with per-flit timing: a packet occupies one
// virtual channel per hop (virtual cut-through requires whole-packet
// buffering), flits stream at one per cycle across links and switch ports,
// and cut-through lets a head flit depart before the tail has arrived.
package noc

import (
	"fmt"
	"math/bits"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// NodeID identifies a tile (router/endpoint position) in the mesh.
type NodeID int32

// destWords is the word count of a DestSet; MaxNodes the largest mesh the
// set can address.
const (
	destWords = 4
	// MaxNodes is the largest tile count a DestSet (and therefore a mesh
	// configuration) supports: 16x16 covers the paper's scaling studies.
	MaxNodes = destWords * 64
)

// DestSet is a destination bit vector over tiles; it supports meshes of up
// to MaxNodes (256) nodes, covering 4x4 through 16x16 systems. The zero
// value is the empty set, and == compares sets for equality.
type DestSet [destWords]uint64

// OneDest returns a DestSet containing only n.
func OneDest(n NodeID) DestSet {
	var d DestSet
	d[uint(n)>>6] = 1 << (uint(n) & 63)
	return d
}

// Has reports whether n is in the set.
func (d DestSet) Has(n NodeID) bool { return d[uint(n)>>6]&(1<<(uint(n)&63)) != 0 }

// Add returns d with n added.
func (d DestSet) Add(n NodeID) DestSet {
	d[uint(n)>>6] |= 1 << (uint(n) & 63)
	return d
}

// Remove returns d with n removed.
func (d DestSet) Remove(n NodeID) DestSet {
	d[uint(n)>>6] &^= 1 << (uint(n) & 63)
	return d
}

// Union returns d | o.
func (d DestSet) Union(o DestSet) DestSet {
	for i := range d {
		d[i] |= o[i]
	}
	return d
}

// Intersect returns d & o.
func (d DestSet) Intersect(o DestSet) DestSet {
	for i := range d {
		d[i] &= o[i]
	}
	return d
}

// Subtract returns d &^ o (the destinations of d not in o).
func (d DestSet) Subtract(o DestSet) DestSet {
	for i := range d {
		d[i] &^= o[i]
	}
	return d
}

// Count returns the number of destinations in the set.
func (d DestSet) Count() int {
	n := 0
	for _, w := range d {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no destinations.
func (d DestSet) Empty() bool { return d == DestSet{} }

// ForEach calls f for every destination in the set, in ascending order.
func (d DestSet) ForEach(f func(NodeID)) {
	for i, w := range d {
		base := NodeID(i << 6)
		for ; w != 0; w &= w - 1 {
			f(base + NodeID(bits.TrailingZeros64(w)))
		}
	}
}

// First returns the lowest-numbered destination; it panics on an empty set.
func (d DestSet) First() NodeID {
	for i, w := range d {
		if w != 0 {
			return NodeID(i<<6 + bits.TrailingZeros64(w))
		}
	}
	panic("noc: First on empty DestSet")
}

// DestSetFromWord returns the set whose low 64 members are the bits of w —
// a convenience for tests and tools that build randomized small-mesh sets.
func DestSetFromWord(w uint64) DestSet { return DestSet{w} }

// Mask returns d restricted to nodes [0, n).
func (d DestSet) Mask(n int) DestSet {
	for i := range d {
		switch lo := i << 6; {
		case n <= lo:
			d[i] = 0
		case n < lo+64:
			d[i] &= 1<<(uint(n)&63) - 1
		}
	}
	return d
}

// Virtual networks. The assignment mirrors a three-vnet MESI mapping:
// requests, forwarded control (invalidations), and data/responses. Pushes
// travel in the data vnet, reusing data-response virtual channels as the
// paper prescribes.
const (
	// VNetReq carries L2->LLC requests (GetS/GetM/upgrade) plus LLC->memory
	// reads. Routed XY.
	VNetReq = 0
	// VNetCtrl carries directory-to-cache control (invalidations) and
	// acknowledgments. Routed YX so that, under OrdPush, an invalidation
	// follows the exact path of the push it must stay behind.
	VNetCtrl = 1
	// VNetData carries data responses, pushes, and writebacks. Routed YX.
	VNetData = 2
	// NumVNets is the number of virtual networks.
	NumVNets = 3
)

// Packet is the unit of transfer between endpoints. Multicast packets carry
// a destination set; routers replicate them asynchronously.
type Packet struct {
	// ID is a unique packet number (diagnostics).
	ID uint64
	// VNet selects the virtual network (and thus routing and VC pool).
	VNet int
	// Class is the traffic class for accounting.
	Class stats.Class
	// Src is the injecting tile; SrcUnit its endpoint kind.
	Src     NodeID
	SrcUnit stats.Unit
	// Dests is the destination tile set (a single bit for unicasts).
	Dests DestSet
	// DstUnit selects which endpoint kind at the destination tile receives
	// the packet.
	DstUnit stats.Unit
	// Addr is the cache-line address the packet concerns; the in-network
	// filter matches on it.
	Addr uint64
	// Size is the packet length in flits for the configured link width.
	Size int
	// Payload carries the protocol message; the NoC never inspects it.
	Payload any

	// IsPush marks speculative push multicast data packets (these register
	// in filters).
	IsPush bool
	// Filterable marks read requests that the in-network filter may prune.
	Filterable bool
	// IsInv marks invalidations that OrdPush must keep ordered behind
	// same-line pushes.
	IsInv bool
	// Requester is the tile whose demand the packet represents; for
	// filterable requests it is matched against push destination sets.
	Requester NodeID

	// InjectedAt is stamped by the NI for latency accounting.
	InjectedAt sim.Cycle

	// Transport-layer fields, stamped by the sender NI only when the lossy
	// recovery layer is armed (see Config.RetryWindow and fault.MsgDrop).
	//
	// Seq is the per-(source, vnet) stream sequence number; the receiver's
	// dedup window suppresses replayed numbers. Csum is the header checksum
	// verified at delivery (MsgCorrupt detection). IsAck marks single-flit
	// transport acknowledgments: an ack is cumulative, carrying the
	// receiver's whole anti-replay state for one (source, vnet) stream —
	// Seq is the highest sequence accepted and AckMask bit i records that
	// Seq-i was seen — and retires every covered entry in the sender's
	// AckVNet window at once. Acks are never themselves sequence-tracked: a
	// lost ack is healed by the retransmission it provokes, whose re-ack
	// carries fresher state.
	Seq     uint32
	Csum    uint32
	IsAck   bool
	AckVNet int8
	AckMask uint64

	// pooled marks packets born from the network's free list (router-created
	// replicas); only those are ever recycled, so externally created packets
	// stay valid for as long as their creator holds them.
	pooled bool
	// retx marks a retransmission clone: Inject must not stamp a fresh
	// sequence number or open a new window entry for it.
	retx bool
}

// RefPayload is implemented by packet payloads managed through the
// network's payload free list. The network adds a reference whenever a
// router copies a packet into a replica and drops one whenever a packet
// dies (release or endpoint recycle); a payload whose last carrier died is
// returned to the list for NI.NewPayload to hand out again. Attaching a
// payload to its first packet must account for that packet's reference
// (coherence.Msg does this in FillPacket).
type RefPayload interface {
	// AddRef records one more packet carrying this payload.
	AddRef()
	// Release drops one carrier and reports whether none remain.
	Release() bool
}

// String implements fmt.Stringer for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d vnet=%d class=%v src=%d dests=%b addr=%#x size=%d push=%v}",
		p.ID, p.VNet, p.Class, p.Src, p.Dests, p.Addr, p.Size, p.IsPush)
}

// Ports of a router. The four cardinal directions connect to neighbouring
// routers; the local port connects to the tile's network interface.
const (
	PortNorth = iota
	PortEast
	PortSouth
	PortWest
	PortLocal
	NumPorts
)

var portNames = [NumPorts]string{"N", "E", "S", "W", "L"}

// PortName returns a short name for a port index.
func PortName(p int) string {
	if p >= 0 && p < NumPorts {
		return portNames[p]
	}
	return "?"
}

// opposite maps an output direction to the input port it feeds on the
// neighbouring router (a flit sent out North arrives on the neighbour's
// South input).
var opposite = [NumPorts]int{
	PortNorth: PortSouth,
	PortEast:  PortWest,
	PortSouth: PortNorth,
	PortWest:  PortEast,
	PortLocal: PortLocal,
}

// Config holds the NoC parameters (Table I defaults via DefaultConfig).
type Config struct {
	// Width and Height give the mesh dimensions; Width*Height tiles.
	Width, Height int
	// VCsPerVNet is the number of virtual channels per virtual network per
	// port.
	VCsPerVNet int
	// LinkWidthBits sets flits-per-packet: a 64-byte line needs
	// ceil(512/LinkWidthBits) body flits plus one head flit.
	LinkWidthBits int
	// InjQueueDepth bounds each endpoint's per-vnet injection queue, in
	// packets; endpoints observe backpressure through CanInject.
	InjQueueDepth int
	// FilterEnabled turns the coherent in-network filter on.
	FilterEnabled bool
	// OrdPushInvStall enables OrdPush's in-router invalidation stalling
	// behind same-line pushes.
	OrdPushInvStall bool

	// End-to-end recovery knobs, active only when the fault plan schedules
	// lossy kinds. Zero values select the defaults (in parentheses), so
	// hand-built Configs keep working.
	//
	// RetryWindow (32) bounds unacked packets per (sender NI, vnet); a full
	// window refuses injection, surfacing as ordinary backpressure.
	RetryWindow int
	// RetryTimeout (400) is the cycles a sender waits for an ack before
	// retransmitting a window entry to its unacked destinations.
	RetryTimeout int
	// MaxRetries (16) bounds retransmissions per window entry; exceeding it
	// aborts the run with ErrUnrecoverable.
	MaxRetries int
	// SeqBits (16) is the sequence counter width; tests shrink it to
	// exercise wraparound. The receiver disambiguates old from new across
	// the wrap as long as 2*RetryWindow <= 1<<SeqBits.
	SeqBits int
}

// DefaultConfig returns the Table I NoC configuration for an W x H mesh.
func DefaultConfig(w, h int) Config {
	return Config{
		Width:         w,
		Height:        h,
		VCsPerVNet:    4,
		LinkWidthBits: 128,
		InjQueueDepth: 16,
		RetryWindow:   32,
		RetryTimeout:  400,
		MaxRetries:    16,
		SeqBits:       16,
	}
}

// WithTransportDefaults returns the configuration with zero recovery knobs
// replaced by their defaults; the network and the invariant checker both
// resolve knobs through it so they always agree.
func (c Config) WithTransportDefaults() Config {
	if c.RetryWindow == 0 {
		c.RetryWindow = 32
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 400
	}
	if c.MaxRetries == 0 {
		// 16 keeps the documented MaxLossPerMille ceiling statistically safe:
		// at 100 per-mille drop (plus half-rate dup and corrupt) a round trip
		// fails with p ~ 0.3, so a budget of 8 fails a few times per hundred
		// thousand window entries; 17 consecutive failures is ~1e-9.
		c.MaxRetries = 16
	}
	if c.SeqBits == 0 {
		c.SeqBits = 16
	}
	return c
}

// Nodes returns the tile count.
func (c Config) Nodes() int { return c.Width * c.Height }

// DataPacketSize returns the flit count of a cache-line data packet at the
// configured link width (head flit + payload flits).
func (c Config) DataPacketSize() int {
	lineBits := 64 * 8
	return 1 + (lineBits+c.LinkWidthBits-1)/c.LinkWidthBits
}

// CtrlPacketSize returns the flit count of a control packet (always 1).
func (c Config) CtrlPacketSize() int { return 1 }

// XY returns the (x, y) coordinate of node n.
func (c Config) XY(n NodeID) (int, int) { return int(n) % c.Width, int(n) / c.Width }

// Node returns the node at coordinate (x, y).
func (c Config) Node(x, y int) NodeID { return NodeID(y*c.Width + x) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	}
	if c.Nodes() > MaxNodes {
		return fmt.Errorf("noc: %d nodes exceed the %d-node DestSet limit", c.Nodes(), MaxNodes)
	}
	if c.VCsPerVNet <= 0 {
		return fmt.Errorf("noc: VCsPerVNet must be positive, got %d", c.VCsPerVNet)
	}
	if NumPorts*NumVNets*c.VCsPerVNet > 64 {
		// The router tracks per-port allocation candidates in a 64-bit mask
		// over its occupied-VC list, which bounds the VCs per router.
		return fmt.Errorf("noc: %d VCs per router exceed the 64-VC router occupancy limit (VCsPerVNet <= %d)",
			NumPorts*NumVNets*c.VCsPerVNet, 64/(NumPorts*NumVNets))
	}
	switch c.LinkWidthBits {
	case 64, 128, 256, 512:
	default:
		return fmt.Errorf("noc: unsupported link width %d bits", c.LinkWidthBits)
	}
	if c.InjQueueDepth <= 0 {
		return fmt.Errorf("noc: InjQueueDepth must be positive, got %d", c.InjQueueDepth)
	}
	t := c.WithTransportDefaults()
	if t.RetryWindow < 1 || t.RetryWindow > 64 {
		// The receiver's dedup window is a 64-bit backward mask; a larger
		// sender window could slide legitimate arrivals past it.
		return fmt.Errorf("noc: RetryWindow %d outside [1,64]", t.RetryWindow)
	}
	if t.SeqBits < 3 || t.SeqBits > 31 {
		return fmt.Errorf("noc: SeqBits %d outside [3,31]", t.SeqBits)
	}
	if uint64(2*t.RetryWindow) > 1<<uint(t.SeqBits) {
		return fmt.Errorf("noc: RetryWindow %d too large for %d-bit sequence numbers (need 2*window <= 1<<bits)",
			t.RetryWindow, t.SeqBits)
	}
	if t.RetryTimeout < 1 || t.MaxRetries < 1 {
		return fmt.Errorf("noc: RetryTimeout %d and MaxRetries %d must be positive", t.RetryTimeout, t.MaxRetries)
	}
	return nil
}
