package noc

import (
	"math/rand"
	"strings"
	"testing"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// TestCheckConservationCleanAfterTraffic routes unicast, multicast, and
// filtered traffic through a mesh and asserts the conservation audit finds
// nothing once the network quiesces: every credit returned, every occ-list
// entry released, every filter count back to a consistent state.
func TestCheckConservationCleanAfterTraffic(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	eng, net, cols := testNet(t, cfg)
	var dests DestSet
	for _, d := range []NodeID{0, 3, 7, 9, 12, 15} {
		dests = dests.Add(d)
	}
	push := &Packet{
		VNet: VNetData, Class: stats.ClassPushData,
		SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
		Dests: dests, Addr: 0x1000, Size: cfg.DataPacketSize(), IsPush: true,
	}
	net.NI(5).Inject(push, eng.Now())
	uni := &Packet{
		VNet: VNetReq, Class: stats.ClassReadRequest,
		SrcUnit: stats.UnitL2, DstUnit: stats.UnitLLC,
		Dests: OneDest(15), Addr: 0x40, Size: 1, Requester: 0,
	}
	net.NI(0).Inject(uni, eng.Now())
	runUntil(t, eng, func() bool {
		return len(cols[15].got) >= 1 && net.Quiescent()
	})
	if err := net.CheckConservation(eng.Now()); err != nil {
		t.Fatalf("conservation audit failed on a clean network: %v", err)
	}
}

// TestCheckConservationDetectsLeakedCredit corrupts credit bookkeeping —
// the exact drifts a buggy release or accept path would produce — and
// requires the audit to report them. The free-count drift trips the
// neighbour's link-conservation audit (which runs over every link) before
// the per-router free-count audit reaches the corrupted router, so both
// messages are accepted for it; the upstream credit drift has exactly one
// detector.
func TestCheckConservationDetectsLeakedCredit(t *testing.T) {
	t.Run("free-count drift", func(t *testing.T) {
		cfg := DefaultConfig(4, 4)
		_, net, _ := testNet(t, cfg)
		net.routers[5].freeCnt[PortNorth][VNetData]--
		err := net.CheckConservation(0)
		if err == nil {
			t.Fatal("leaked VC credit not detected")
		}
		if !strings.Contains(err.Error(), "credit leak") && !strings.Contains(err.Error(), "credit conservation") {
			t.Fatalf("wrong diagnosis for a leaked credit: %v", err)
		}
	})
	t.Run("upstream credit drift", func(t *testing.T) {
		cfg := DefaultConfig(4, 4)
		_, net, _ := testNet(t, cfg)
		net.routers[5].credits[PortNorth][VNetData]--
		err := net.CheckConservation(0)
		if err == nil {
			t.Fatal("drifted upstream credit count not detected")
		}
		if !strings.Contains(err.Error(), "credit conservation") {
			t.Fatalf("wrong diagnosis for an upstream credit drift: %v", err)
		}
	})
}

// TestCheckConservationDetectsFilterCountDrift corrupts a filter bank's
// O(1) liveness counter, which would make dead() lie to every lookup, and
// requires the audit to catch the drift.
func TestCheckConservationDetectsFilterCountDrift(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	_, net, _ := testNet(t, cfg)
	fb := net.routers[3].filters
	fb.register(PortEast, PortWest, 0, 0x1000, OneDest(2))
	fb.activeCnt[PortEast]++ // drift: counter claims one more live entry than exists
	err := net.CheckConservation(0)
	if err == nil {
		t.Fatal("filter activeCnt drift not detected")
	}
	if !strings.Contains(err.Error(), "activeCnt") {
		t.Fatalf("wrong diagnosis for filter count drift: %v", err)
	}
}

// TestFilterStaleClearBookkeeping is the regression test for the lazy
// de-registration audit: a clear has no identity of its own, so a
// register → scheduleClear → register → scheduleClear sequence must leave
// the entry governed by the *latest* clear only, with the liveness
// counters consistent at every step.
func TestFilterStaleClearBookkeeping(t *testing.T) {
	fb := newFilterBank(4)
	assertActive := func(want int, when string) {
		t.Helper()
		if fb.activeCnt[PortNorth] != want {
			t.Fatalf("%s: activeCnt=%d, want %d", when, fb.activeCnt[PortNorth], want)
		}
	}
	fb.register(PortNorth, PortSouth, 0, 0xbeef00, OneDest(3))
	assertActive(1, "after first register")
	fb.scheduleClear(PortNorth, PortSouth, 0, 20)
	assertActive(0, "after first clear scheduled")
	// Re-registration before the clear matures resurrects the slot.
	fb.register(PortNorth, PortSouth, 0, 0xaaaa00, OneDest(5))
	assertActive(1, "after re-registration")
	// The stale clear time (20) must not apply to the fresh entry.
	if !fb.lookup(PortNorth, 0xaaaa00, 5, 25) {
		t.Fatal("fresh entry killed by the stale scheduled clear")
	}
	fb.scheduleClear(PortNorth, PortSouth, 0, 40)
	assertActive(0, "after second clear scheduled")
	if !fb.lookup(PortNorth, 0xaaaa00, 5, 39) {
		t.Fatal("entry dead before its own clear time")
	}
	if fb.lookup(PortNorth, 0xaaaa00, 5, 40) {
		t.Fatal("entry alive at its clear time")
	}
	// Double-clear on the same slot must not decrement activeCnt twice.
	fb.scheduleClear(PortNorth, PortSouth, 0, 45)
	assertActive(0, "after redundant clear")
	if fb.activeCnt[PortNorth] < 0 {
		t.Fatal("activeCnt went negative on redundant clear")
	}
}

// TestFilterBookkeepingFuzz drives the filter bank with a random
// register/clear/advance sequence and, after every operation, audits the
// O(1) liveness accounting against a full scan and cross-checks lookup and
// hasAddr against brute-force reference scans. This is the model-based
// audit of the live()/scheduleClear() interaction: any divergence between
// the fast path (dead()) and ground truth surfaces as a wrong
// lookup/hasAddr answer.
func TestFilterBookkeepingFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dataVCs = 2
	fb := newFilterBank(dataVCs)
	addrs := []uint64{0x40, 0x80, 0xc0, 0x100}
	now := sim.Cycle(0)
	perPort := NumPorts * dataVCs

	refLive := func(p int, f func(e *filterEntry) bool) bool {
		for k := 0; k < perPort; k++ {
			e := &fb.entries[p*perPort+k]
			if e.live(now) && f(e) {
				return true
			}
		}
		return false
	}

	for i := 0; i < 20000; i++ {
		now += sim.Cycle(rng.Intn(3))
		outP, inP, vc := rng.Intn(NumPorts), rng.Intn(NumPorts), rng.Intn(dataVCs)
		switch rng.Intn(3) {
		case 0:
			fb.register(outP, inP, vc, addrs[rng.Intn(len(addrs))], DestSetFromWord(rng.Uint64()&0xffff))
		case 1:
			fb.scheduleClear(outP, inP, vc, now+sim.Cycle(rng.Intn(5)))
		}

		// Counter audit: activeCnt is exactly the valid-without-pending-clear
		// population; aliveUntil bounds every pending clear.
		for p := 0; p < NumPorts; p++ {
			active := 0
			for k := 0; k < perPort; k++ {
				e := &fb.entries[p*perPort+k]
				if e.valid && !e.clearPending {
					active++
				}
				if e.valid && e.clearPending && e.clearAt > fb.aliveUntil[p] {
					t.Fatalf("op %d: pending clear at %d beyond aliveUntil[%s]=%d",
						i, e.clearAt, PortName(p), fb.aliveUntil[p])
				}
			}
			if fb.activeCnt[p] != active {
				t.Fatalf("op %d: activeCnt[%s]=%d, scan says %d", i, PortName(p), fb.activeCnt[p], active)
			}
			// dead() must never claim a port dead while an entry is live.
			if fb.dead(p, now) && refLive(p, func(*filterEntry) bool { return true }) {
				t.Fatalf("op %d: dead(%s,%d) true with a live entry", i, PortName(p), now)
			}
		}

		// Lookup / hasAddr against the reference scans.
		addr := addrs[rng.Intn(len(addrs))]
		req := NodeID(rng.Intn(16))
		p := rng.Intn(NumPorts)
		wantLookup := refLive(p, func(e *filterEntry) bool { return e.addr == addr && e.dests.Has(req) })
		if got := fb.lookup(p, addr, req, now); got != wantLookup {
			t.Fatalf("op %d: lookup(%s,%#x,%d,%d)=%v, reference says %v", i, PortName(p), addr, req, now, got, wantLookup)
		}
		wantHas := refLive(p, func(e *filterEntry) bool { return e.addr == addr })
		if got := fb.hasAddr(p, addr, now); got != wantHas {
			t.Fatalf("op %d: hasAddr(%s,%#x,%d)=%v, reference says %v", i, PortName(p), addr, now, got, wantHas)
		}
	}
}
