package noc

import "testing"

func TestFilterRegisterLookup(t *testing.T) {
	fb := newFilterBank(4)
	fb.register(PortNorth, PortSouth, 2, 0xbeef00, OneDest(3).Add(7))
	// A request entering via the North input (reverse path) from a covered
	// requester hits.
	if !fb.lookup(PortNorth, 0xbeef00, 3, 10) {
		t.Fatal("covered requester not matched")
	}
	if !fb.lookup(PortNorth, 0xbeef00, 7, 10) {
		t.Fatal("second covered requester not matched")
	}
	// Different address, different requester, different port: no match.
	if fb.lookup(PortNorth, 0xdead00, 3, 10) {
		t.Fatal("wrong address matched")
	}
	if fb.lookup(PortNorth, 0xbeef00, 5, 10) {
		t.Fatal("uncovered requester matched")
	}
	if fb.lookup(PortEast, 0xbeef00, 3, 10) {
		t.Fatal("wrong port matched")
	}
}

func TestFilterLazyDeregistration(t *testing.T) {
	fb := newFilterBank(4)
	fb.register(PortNorth, PortSouth, 0, 0xbeef00, OneDest(3))
	fb.scheduleClear(PortNorth, PortSouth, 0, 20)
	if !fb.lookup(PortNorth, 0xbeef00, 3, 19) {
		t.Fatal("entry dead before its lazy-clear time")
	}
	if fb.lookup(PortNorth, 0xbeef00, 3, 20) {
		t.Fatal("entry alive at its clear time")
	}
}

func TestFilterReRegistrationCancelsClear(t *testing.T) {
	fb := newFilterBank(4)
	fb.register(PortNorth, PortSouth, 0, 0xbeef00, OneDest(3))
	fb.scheduleClear(PortNorth, PortSouth, 0, 20)
	// A new push reuses the slot before the clear matures.
	fb.register(PortNorth, PortSouth, 0, 0xaaaa00, OneDest(5))
	if fb.lookup(PortNorth, 0xbeef00, 3, 25) {
		t.Fatal("stale address still matching after overwrite")
	}
	if !fb.lookup(PortNorth, 0xaaaa00, 5, 25) {
		t.Fatal("re-registered entry killed by the stale clear")
	}
}

func TestFilterHasAddrForInvStall(t *testing.T) {
	fb := newFilterBank(4)
	fb.register(PortEast, PortLocal, 1, 0xbeef00, OneDest(3))
	if !fb.hasAddr(PortEast, 0xbeef00, 5) {
		t.Fatal("OrdPush stall check missed a registered push")
	}
	if fb.hasAddr(PortWest, 0xbeef00, 5) {
		t.Fatal("wrong output port matched")
	}
	if fb.hasAddr(PortEast, 0x1234, 5) {
		t.Fatal("wrong address matched")
	}
	fb.scheduleClear(PortEast, PortLocal, 1, 8)
	if fb.hasAddr(PortEast, 0xbeef00, 9) {
		t.Fatal("cleared entry still stalling invalidations")
	}
}

func TestFilterEntriesPerDataVC(t *testing.T) {
	fb := newFilterBank(2)
	fb.register(PortNorth, PortSouth, 0, 0xaaaa00, OneDest(1))
	fb.register(PortNorth, PortSouth, 1, 0xbbbb00, OneDest(2))
	if !fb.lookup(PortNorth, 0xaaaa00, 1, 0) || !fb.lookup(PortNorth, 0xbbbb00, 2, 0) {
		t.Fatal("per-VC entries interfering")
	}
	fb.scheduleClear(PortNorth, PortSouth, 0, 1)
	if fb.lookup(PortNorth, 0xaaaa00, 1, 5) {
		t.Fatal("VC0 entry survived clear")
	}
	if !fb.lookup(PortNorth, 0xbbbb00, 2, 5) {
		t.Fatal("VC1 entry wrongly cleared")
	}
}
