package noc

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/trace"
)

// This file is the NoC's white-box surface for the runtime invariant
// checker (internal/check): trace-shard wiring, the per-VC credit and
// occupancy conservation audit, and the push-in-flight scan backing the
// filter-soundness check. It lives inside the package because the
// invariants are phrased over unexported router state (occ lists,
// candidate masks, filter slots) that has no business being exported.

// SetTracer installs trace shards on every NI and router. Shards are
// created in a deterministic order (NIs 0..n-1, then routers 0..n-1);
// that order is the tracer's drain order.
func (n *Network) SetTracer(t *trace.Tracer) {
	for _, ni := range n.nis {
		ni.tr = t.NewShard()
	}
	for _, r := range n.routers {
		r.tr = t.NewShard()
	}
}

// pktFlags packs a packet's protocol-relevant flags into a trace event's
// B field.
func pktFlags(pkt *Packet) int32 {
	var f int32
	if pkt.IsPush {
		f |= trace.FlagPush
	}
	if pkt.IsInv {
		f |= trace.FlagInv
	}
	if pkt.Filterable {
		f |= trace.FlagFilterable
	}
	return f
}

// CheckConservation audits every router's redundant bookkeeping against
// ground truth: per-(port,vnet) credit counts, the occupied-VC list, the
// unrouted-head counter, the allocation candidate mask/counters, the
// switch stream cross-links, and the filter banks' liveness accounting.
// Each of these is a derived structure the hot path trusts blindly; a
// drifted one silently corrupts arbitration or filtering long before any
// end-state counter notices. Returns the first violation found.
func (n *Network) CheckConservation(now sim.Cycle) error {
	for _, r := range n.routers {
		if err := r.checkConservation(now); err != nil {
			return fmt.Errorf("router %d: %w", r.id, err)
		}
	}
	return nil
}

func (r *Router) checkConservation(now sim.Cycle) error {
	vcs := r.net.cfg.VCsPerVNet
	// Credit/occupancy conservation and occ-list consistency.
	occupied := 0
	unrouted := 0
	for p := 0; p < NumPorts; p++ {
		var free, held [NumVNets]int16
		for i := range r.in[p] {
			vc := &r.in[p][i]
			v := i / vcs
			if vc.free() {
				free[v]++
				if vc.occPos >= 0 {
					return fmt.Errorf("free VC (%s,%d) still in occ list at %d", PortName(p), i, vc.occPos)
				}
				continue
			}
			held[v]++
			occupied++
			if vc.occPos < 0 || vc.occPos >= len(r.occ) || r.occ[vc.occPos] != vc {
				return fmt.Errorf("occupied VC (%s,%d) has broken occ position %d", PortName(p), i, vc.occPos)
			}
			if vc.pkt != nil && !vc.routed {
				unrouted++
				if vc.headAt <= now {
					// A RouterSlow fault legitimately leaves heads unrouted
					// past their arrival: the frozen router skipped the
					// stage-1 cycles that would have routed them.
					f := r.net.faults
					if f == nil || !f.FrozenIn(r.id, vc.headAt, now) {
						return fmt.Errorf("unrouted head at (%s,%d) overdue: headAt=%d now=%d", PortName(p), i, vc.headAt, now)
					}
				}
				if r.minHeadAt > vc.headAt {
					return fmt.Errorf("minHeadAt=%d above unrouted head arrival %d at (%s,%d)", r.minHeadAt, vc.headAt, PortName(p), i)
				}
			}
		}
		for v := 0; v < NumVNets; v++ {
			if r.freeCnt[p][v] != free[v] {
				return fmt.Errorf("credit leak at (%s, vnet %d): freeCnt=%d actual free=%d", PortName(p), v, r.freeCnt[p][v], free[v])
			}
			if free[v]+held[v] != int16(vcs) {
				return fmt.Errorf("VC conservation broken at (%s, vnet %d): %d free + %d held != %d", PortName(p), v, free[v], held[v], vcs)
			}
		}
	}
	if occupied != len(r.occ) {
		return fmt.Errorf("occ list holds %d VCs but %d are occupied", len(r.occ), occupied)
	}
	if unrouted != r.unrouted {
		return fmt.Errorf("unrouted counter %d but %d heads unrouted", r.unrouted, unrouted)
	}
	// Ring-level conservation. An arrival entry ripe before now means the
	// router slept or skipped through the cycle that should have popped it —
	// legal only while a RouterSlow window froze the pipeline. And for every
	// link, the upstream credit count plus everything in flight on the link
	// (queued handoffs, queued credit returns, occupied downstream VCs) must
	// reassemble the full VC pool.
	for p := 0; p < NumPorts; p++ {
		var ripeErr error
		r.arrivals[p].forEach(func(pkt *Packet, at sim.Cycle) {
			if at <= now && ripeErr == nil {
				f := r.net.faults
				if f == nil || !f.FrozenIn(r.id, at, now) {
					ripeErr = fmt.Errorf("arrival ring at %s holds an overdue head: at=%d now=%d", PortName(p), at, now)
				}
			}
		})
		if ripeErr != nil {
			return ripeErr
		}
	}
	for o := 0; o < NumPorts; o++ {
		nb := r.nbr[o]
		if nb == nil {
			continue
		}
		ip := opposite[o]
		var inFlight [NumVNets]int16
		nb.arrivals[ip].forEach(func(pkt *Packet, at sim.Cycle) {
			inFlight[pkt.VNet]++
		})
		for v := 0; v < NumVNets; v++ {
			queuedCred := int16(nb.credRet[ip].count(v))
			heldDown := int16(vcs) - nb.freeCnt[ip][v]
			sum := r.credits[o][v] + inFlight[v] + queuedCred + heldDown
			if sum != int16(vcs) {
				return fmt.Errorf("link credit conservation broken at %s vnet %d: %d credits + %d in-flight + %d returning + %d held != %d",
					PortName(o), v, r.credits[o][v], inFlight[v], queuedCred, heldDown, vcs)
			}
		}
	}
	// Allocation candidate mask/counters: recompute from the occ list.
	var candMask [NumPorts]uint64
	var candV [NumPorts][NumVNets]int16
	var invCand [NumPorts]int16
	for pos, vc := range r.occ {
		if vc.pkt == nil || !vc.routed || vc.active != nil {
			continue
		}
		for o := 0; o < NumPorts; o++ {
			if vc.pending[o].Empty() {
				continue
			}
			candMask[o] |= uint64(1) << uint(pos)
			candV[o][vc.pkt.VNet]++
			if vc.pkt.IsInv {
				invCand[o]++
			}
		}
	}
	for o := 0; o < NumPorts; o++ {
		if candMask[o] != r.candMask[o] {
			return fmt.Errorf("candMask[%s]=%#x, expected %#x", PortName(o), r.candMask[o], candMask[o])
		}
		if invCand[o] != r.invCand[o] {
			return fmt.Errorf("invCand[%s]=%d, expected %d", PortName(o), r.invCand[o], invCand[o])
		}
		for v := 0; v < NumVNets; v++ {
			if candV[o][v] != r.candV[o][v] {
				return fmt.Errorf("candV[%s][%d]=%d, expected %d", PortName(o), v, r.candV[o][v], candV[o][v])
			}
		}
	}
	// Switch stream cross-links.
	for o := 0; o < NumPorts; o++ {
		s := r.outStream[o]
		if s == nil {
			continue
		}
		if s.outPort != o || r.inLock[s.inPort] != s || s.vc.active != s || s.vc.pkt == nil {
			return fmt.Errorf("broken stream links at output %s", PortName(o))
		}
	}
	for p := 0; p < NumPorts; p++ {
		if s := r.inLock[p]; s != nil && (s.inPort != p || r.outStream[s.outPort] != s) {
			return fmt.Errorf("broken input lock at %s", PortName(p))
		}
	}
	return r.checkFilters()
}

// checkFilters audits the filter bank's O(1) liveness accounting
// (activeCnt, aliveUntil) against a scan of the entries; a drifted count
// makes dead() lie, which either filters requests a cleared registration
// no longer covers or silently disables the filter.
func (r *Router) checkFilters() error {
	fb := r.filters
	if fb == nil {
		return nil
	}
	perPort := NumPorts * fb.dataVCs
	for p := 0; p < NumPorts; p++ {
		active := 0
		for k := 0; k < perPort; k++ {
			e := &fb.entries[p*perPort+k]
			if !e.valid {
				continue
			}
			if !e.clearPending {
				active++
			} else if e.clearAt > fb.aliveUntil[p] {
				return fmt.Errorf("filter entry at %s outlives aliveUntil: clearAt=%d aliveUntil=%d", PortName(p), e.clearAt, fb.aliveUntil[p])
			}
		}
		if active != fb.activeCnt[p] {
			return fmt.Errorf("filter activeCnt[%s]=%d, expected %d", PortName(p), fb.activeCnt[p], active)
		}
	}
	return nil
}

// PushInFlight reports whether a push embedding a response for
// (addr, requester) is anywhere in the network: queued or streaming at an
// NI, buffered or streaming in a router, or riding out a delivery link.
// The filter-soundness check uses it: a filtered request is legal only
// while the covering push can still reach the requester (or already has).
func (n *Network) PushInFlight(addr uint64, requester NodeID) bool {
	for _, ni := range n.nis {
		if ni.PushCovering(addr, requester) {
			return true
		}
		for _, d := range ni.delivery {
			if d.pkt.IsPush && d.pkt.Addr == addr && d.pkt.Dests.Has(requester) {
				return true
			}
		}
		// Under lossy faults a push may live nowhere but the sender's
		// retransmit window: the replica headed for the requester was dropped
		// and its re-send has not fired yet. The unacked window entry is the
		// guarantee that it still reaches the requester.
		if tp := ni.tp; tp != nil {
			for v := range tp.tx {
				for i := range tp.tx[v].entries {
					e := &tp.tx[v].entries[i]
					if !e.done && e.proto.IsPush && e.proto.Addr == addr && e.pending.Has(requester) {
						return true
					}
				}
			}
		}
	}
	for _, r := range n.routers {
		for p := 0; p < NumPorts; p++ {
			// Streams read through their allocation-time snapshot: past the
			// head flit the replica pointer is nil (ownership moved into the
			// downstream arrival ring, which the ring scan below covers
			// until the pop moves it into an input VC).
			if s := r.outStream[p]; s != nil && s.isPush &&
				s.addr == addr && s.dests.Has(requester) {
				return true
			}
			found := false
			r.arrivals[p].forEach(func(pkt *Packet, at sim.Cycle) {
				if pkt.IsPush && pkt.Addr == addr && pkt.Dests.Has(requester) {
					found = true
				}
			})
			if found {
				return true
			}
			for i := range r.in[p] {
				vc := &r.in[p][i]
				pkt := vc.pkt
				if pkt == nil || !pkt.IsPush || pkt.Addr != addr {
					continue
				}
				if !vc.routed {
					// Original destination set still intact.
					if pkt.Dests.Has(requester) {
						return true
					}
					continue
				}
				for o := 0; o < NumPorts; o++ {
					if vc.pending[o].Has(requester) {
						return true
					}
				}
			}
		}
	}
	return false
}
