package noc

import (
	"errors"

	"pushmulticast/internal/sim"
)

// LossVerdict is the fate a lossy fault assigns to one packet arrival at an
// NI: intact, discarded, delivered twice, or payload-corrupted (caught by the
// per-packet checksum and then discarded like a drop).
type LossVerdict uint8

// Loss verdicts.
const (
	LossNone LossVerdict = iota
	LossDrop
	LossDup
	LossCorrupt
)

// ErrUnrecoverable is the loud-failure sentinel of the recovery layer: a
// sender NI exhausted MaxRetries retransmissions of one window entry without
// an ack. Runs abort promptly with this error (wrapped with the sender and
// stream identity) and a trace tail — never a silent hang or a watchdog
// deadlock, since MaxRetries*RetryTimeout is far below the progress watchdog.
var ErrUnrecoverable = errors.New("noc: message unrecoverable after max retries")

// FaultHook is the network's view of the fault-injection layer
// (internal/fault implements it). Every method must be a pure function of
// (fault plan, cycle, component identity, packet identity) so that a fault
// schedule replays byte-identically across the serial, dense, and parallel
// kernels. Routers and NIs both tick on lane goroutines in the parallel
// kernel, so every method must confine any bookkeeping it keeps (clamp
// state, counters) to per-node storage indexed by the calling component's
// node — or keep none at all.
type FaultHook interface {
	// RouterFrozen reports that the router's pipeline is held this cycle
	// (RouterSlow); the router skips its entire tick and stays awake.
	RouterFrozen(node NodeID, now sim.Cycle) bool
	// FrozenIn reports that the router was frozen at some cycle in
	// [from, to]; the conservation audit uses it to excuse unrouted heads a
	// frozen router legitimately left overdue.
	FrozenIn(node NodeID, from, to sim.Cycle) bool
	// LinkBlocked reports that the router's output port accepts no new
	// replica allocation this cycle (LinkStall); in-flight streams finish.
	LinkBlocked(node NodeID, port int, now sim.Cycle) bool
	// Arrival maps a head flit's base arrival cycle on the router's output
	// port to its (possibly jittered) faulted arrival. Implementations must
	// keep per-port arrivals monotonic so links never reorder.
	Arrival(node NodeID, port int, now, base sim.Cycle, pktID uint64, vnet int) sim.Cycle
	// InjQueueCap returns the NI's effective injection-queue depth, at most
	// the configured depth (InjSpike). Must be a pure read: it runs on lane
	// goroutines in the parallel kernel.
	InjQueueCap(node NodeID, depth int) int
	// SuppressFilterHit reports that the router's filter bank is offline for
	// lookups this cycle (FilterDrop); hits are treated as misses.
	SuppressFilterHit(node NodeID, now sim.Cycle) bool
	// LossyEnabled reports whether the plan schedules any lossy kind
	// (MsgDrop/MsgDup/MsgCorrupt); the network arms its end-to-end recovery
	// layer only when it does.
	LossyEnabled() bool
	// LossyVerdict decides the fate of one packet arrival at the node's NI.
	// Called from NI ticks on lane goroutines: it must be a pure read.
	LossyVerdict(node NodeID, now sim.Cycle, pktID uint64) LossVerdict
}

// SetFaults installs the fault hook. Must be called before the first tick;
// a nil hook (the default) keeps every fault check off the hot paths. A hook
// with lossy faults scheduled arms the recovery layer: NIs allocate their
// retransmit windows and dedup state here, so fault-free runs pay nothing.
func (n *Network) SetFaults(h FaultHook) {
	n.faults = h
	if h != nil && h.LossyEnabled() {
		n.lossy = true
		for _, ni := range n.nis {
			ni.initTransport()
		}
	}
}

// WakeTile wakes a tile's router and NI. The fault injector calls it at
// window boundaries: a router whose traffic a fault blocked may be asleep
// with no other wake coming once the fault lifts. Spurious wakes are
// harmless in every kernel (a quiescent component's tick is a no-op).
func (n *Network) WakeTile(node NodeID) {
	n.routers[node].h.Wake()
	n.nis[node].h.Wake()
}
