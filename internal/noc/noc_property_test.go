package noc

import (
	"testing"
	"testing/quick"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// Property: XY routing always makes progress toward the destination — the
// hop count from any node to any destination is exactly the Manhattan
// distance.
func TestRoutingManhattanProperty(t *testing.T) {
	cfg := DefaultConfig(8, 8)
	f := func(rawSrc, rawDst uint8, xy bool) bool {
		src := NodeID(int(rawSrc) % cfg.Nodes())
		dst := NodeID(int(rawDst) % cfg.Nodes())
		cur := src
		hops := 0
		for cur != dst {
			p := cfg.nextPort(cur, dst, xy)
			if p == PortLocal {
				return false
			}
			nxt := cfg.neighbour(cur, p)
			if nxt < 0 {
				return false // routed off the mesh edge
			}
			cur = nxt
			hops++
			if hops > 64 {
				return false
			}
		}
		sx, sy := cfg.XY(src)
		dx, dy := cfg.XY(dst)
		want := abs(sx-dx) + abs(sy-dy)
		return hops == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Property: routeDests partitions the destination set exactly: every
// destination appears in exactly one output subset.
func TestRouteDestsPartitionProperty(t *testing.T) {
	cfg := DefaultConfig(8, 8)
	f := func(rawCur uint8, dests DestSet, xy bool) bool {
		cur := NodeID(int(rawCur) % cfg.Nodes())
		dests = dests.Mask(cfg.Nodes())
		if dests.Empty() {
			return true
		}
		out := cfg.routeDests(cur, dests, xy)
		var union DestSet
		var total int
		for p := 0; p < NumPorts; p++ {
			if !out[p].Intersect(union).Empty() {
				return false // overlap
			}
			union = union.Union(out[p])
			total += out[p].Count()
		}
		return union == dests && total == dests.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Soak: random unicast+multicast traffic from every node; everything must be
// delivered exactly once per destination and the network must drain.
func TestRandomTrafficSoak(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.FilterEnabled = true
	cfg.OrdPushInvStall = true
	eng := sim.NewEngine(50_000, 5_000_000)
	st := stats.New()
	net, err := New(cfg, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	recv := make([]int, cfg.Nodes())
	for i := 0; i < cfg.Nodes(); i++ {
		i := i
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			net.Attach(NodeID(i), u, endpointFunc(func(p *Packet, now sim.Cycle) { recv[i]++ }))
		}
	}
	rng := uint64(12345)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 16
	}
	wantPerDest := make([]int, cfg.Nodes())
	injected := 0
	for round := 0; round < 400; round++ {
		for src := 0; src < cfg.Nodes(); src++ {
			r := next()
			vnet := int(r % NumVNets)
			if !net.NI(NodeID(src)).CanInject(stats.UnitL2, vnet) {
				continue
			}
			var dests DestSet
			if r%5 == 0 && vnet == VNetData {
				// multicast to a random subset
				dests = DestSetFromWord(next()).Mask(cfg.Nodes())
				if dests.Empty() {
					dests = OneDest(NodeID(r % uint64(cfg.Nodes())))
				}
			} else {
				dests = OneDest(NodeID(r % uint64(cfg.Nodes())))
			}
			size := 1
			if vnet == VNetData {
				size = cfg.DataPacketSize()
			}
			pkt := &Packet{
				VNet: vnet, Class: stats.ClassOther, SrcUnit: stats.UnitL2,
				DstUnit: stats.Unit(r % uint64(stats.NumUnits)),
				Dests:   dests, Addr: (r % 64) * 64, Size: size,
				IsPush: vnet == VNetData && r%7 == 0,
				IsInv:  vnet == VNetCtrl && r%3 == 0,
			}
			net.NI(NodeID(src)).Inject(pkt, eng.Now())
			injected++
			dests.ForEach(func(d NodeID) { wantPerDest[d]++ })
		}
		eng.Step()
	}
	_, err = eng.Run(func() bool {
		got := 0
		for _, v := range recv {
			got += v
		}
		want := 0
		for _, v := range wantPerDest {
			want += v
		}
		return got == want
	})
	if err != nil {
		t.Fatalf("soak did not drain: %v", err)
	}
	for d, got := range recv {
		if got != wantPerDest[d] {
			t.Errorf("dest %d received %d deliveries, want %d", d, got, wantPerDest[d])
		}
	}
	if !net.Quiescent() {
		t.Error("network not quiescent after soak")
	}
}

type endpointFunc func(*Packet, sim.Cycle)

func (f endpointFunc) Receive(p *Packet, now sim.Cycle) { f(p, now) }

// Hotspot: all nodes flood one destination; deliveries must still complete
// and per-source fairness must not starve anyone completely.
func TestHotspotNoStarvation(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng := sim.NewEngine(100_000, 5_000_000)
	st := stats.New()
	net, err := New(cfg, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	perSrc := make(map[NodeID]int)
	for u := stats.Unit(0); u < stats.NumUnits; u++ {
		net.Attach(5, u, endpointFunc(func(p *Packet, now sim.Cycle) { perSrc[p.Src]++ }))
	}
	for i := 0; i < cfg.Nodes(); i++ {
		if i == 5 {
			continue
		}
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			net.Attach(NodeID(i), u, endpointFunc(func(*Packet, sim.Cycle) {}))
		}
	}
	total := 0
	for round := 0; round < 600; round++ {
		for src := 0; src < cfg.Nodes(); src++ {
			if src == 5 || !net.NI(NodeID(src)).CanInject(stats.UnitL2, VNetData) {
				continue
			}
			net.NI(NodeID(src)).Inject(&Packet{
				VNet: VNetData, SrcUnit: stats.UnitL2, DstUnit: stats.UnitL2,
				Dests: OneDest(5), Size: cfg.DataPacketSize(),
			}, eng.Now())
			total++
		}
		eng.Step()
	}
	if _, err := eng.Run(func() bool {
		got := 0
		for _, v := range perSrc {
			got += v
		}
		return got == total
	}); err != nil {
		t.Fatal(err)
	}
	for src, got := range perSrc {
		if got == 0 {
			t.Errorf("source %d starved at the hotspot", src)
		}
	}
}

// Broadcast storm: every node multicasts to all others simultaneously.
func TestBroadcastStormDrains(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	eng := sim.NewEngine(100_000, 5_000_000)
	st := stats.New()
	net, err := New(cfg, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	var got int
	all := DestSetFromWord(1<<16 - 1)
	for i := 0; i < cfg.Nodes(); i++ {
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			net.Attach(NodeID(i), u, endpointFunc(func(*Packet, sim.Cycle) { got++ }))
		}
	}
	sent := 0
	for round := 0; round < 8; round++ {
		for src := 0; src < cfg.Nodes(); src++ {
			if !net.NI(NodeID(src)).CanInject(stats.UnitLLC, VNetData) {
				continue
			}
			net.NI(NodeID(src)).Inject(&Packet{
				VNet: VNetData, SrcUnit: stats.UnitLLC, DstUnit: stats.UnitL2,
				Dests: all, Addr: uint64(src * 64), Size: cfg.DataPacketSize(), IsPush: true,
			}, eng.Now())
			sent++
		}
		eng.Step()
	}
	if _, err := eng.Run(func() bool { return got == sent*16 }); err != nil {
		t.Fatalf("broadcast storm stuck at %d/%d: %v", got, sent*16, err)
	}
	if !net.Quiescent() {
		t.Error("not quiescent after storm")
	}
}
