package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"pushmulticast"
)

// task is one scheduled run: a function executed on a worker slot under a
// context that fires when the submitting request is gone or the scheduler
// hard-aborts.
type task struct {
	tenant   string
	ctx      context.Context
	fn       func(ctx context.Context)
	enqueued time.Time
	// exempt skips the per-tenant in-flight quota: degraded-local shard
	// execution must never be refused by the quota it exists to survive.
	exempt bool
}

// scheduler dispatches tasks across a bounded worker pool with fair
// per-tenant queueing: tenants hold FIFO queues and worker slots round-robin
// across the tenants that have work, so one tenant's thousand-run campaign
// cannot starve another's single interactive run. Per-request cancellation
// is cooperative — a task whose request context fires before dispatch is
// completed without running; one that fires mid-run stops at the
// simulation's next cancellation barrier.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*task // per-tenant FIFO
	ring     []string           // round-robin order over tenants with work
	cursor   int
	queued   int
	maxQueue int
	quota    int            // max in-flight (queued+running) runs per tenant; 0 = unlimited
	inflight map[string]int // per-tenant in-flight count (quota-subject tasks only)
	rejected uint64         // submissions refused over quota
	running  map[*task]context.CancelFunc
	closed   bool // no new submits; workers drain and exit
	aborting bool // drain deadline passed: running tasks are being canceled

	wg sync.WaitGroup // worker goroutines
	// waits holds recent queue-wait samples per tenant (nanoseconds, bounded
	// ring) for the /metrics wait quantiles.
	waits map[string][]uint64
}

// waitSamples bounds the per-tenant wait history backing the quantiles.
const waitSamples = 256

// newScheduler starts a scheduler with the given worker count, total
// queued-task bound, and per-tenant in-flight quota (0 = unlimited).
func newScheduler(workers, maxQueue, quota int) *scheduler {
	s := &scheduler{
		queues:   make(map[string][]*task),
		running:  make(map[*task]context.CancelFunc),
		waits:    make(map[string][]uint64),
		inflight: make(map[string]int),
		maxQueue: maxQueue,
		quota:    quota,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// overQuotaError is the typed refusal for a tenant past its in-flight
// quota; the HTTP layer maps it to 429 with the one-line diagnostic.
type overQuotaError struct {
	tenant          string
	quota, inflight int
	want            int
}

func (e overQuotaError) Error() string {
	return fmt.Sprintf("tenant %q over quota: %d in flight + %d submitted exceeds the per-tenant bound of %d", e.tenant, e.inflight, e.want, e.quota)
}

// submit queues one task (see submitAll).
func (s *scheduler) submit(t *task) error {
	return s.submitAll([]*task{t})
}

// submitAll queues a batch of tasks atomically: either every task is
// admitted or none is and the one-line reason comes back — a campaign never
// half-queues. It fails fast when the scheduler is shutting down, the queue
// bound is hit, or any task's tenant would exceed its in-flight quota.
// An admitted task always eventually runs or is canceled.
func (s *scheduler) submitAll(tasks []*task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("scheduler: shutting down")
	}
	if s.queued+len(tasks) > s.maxQueue {
		return fmt.Errorf("scheduler: queue full (%d tasks queued, %d submitted, bound %d)", s.queued, len(tasks), s.maxQueue)
	}
	if s.quota > 0 {
		want := make(map[string]int)
		for _, t := range tasks {
			if !t.exempt {
				want[t.tenant]++
			}
		}
		for tenant, n := range want {
			if s.inflight[tenant]+n > s.quota {
				s.rejected++
				return overQuotaError{tenant: tenant, quota: s.quota, inflight: s.inflight[tenant], want: n}
			}
		}
	}
	now := time.Now()
	for _, t := range tasks {
		if _, ok := s.queues[t.tenant]; !ok {
			s.ring = append(s.ring, t.tenant)
		}
		t.enqueued = now
		s.queues[t.tenant] = append(s.queues[t.tenant], t)
		s.queued++
		if !t.exempt {
			s.inflight[t.tenant]++
		}
	}
	if len(tasks) == 1 {
		s.cond.Signal()
	} else {
		s.cond.Broadcast()
	}
	return nil
}

// next pops the next task in tenant round-robin order, blocking until one is
// available or shutdown drains the queues. A nil return means the worker
// should exit.
func (s *scheduler) next() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for range s.ring {
			tenant := s.ring[s.cursor%len(s.ring)]
			s.cursor++
			q := s.queues[tenant]
			if len(q) == 0 {
				continue
			}
			t := q[0]
			s.queues[tenant] = q[1:]
			s.queued--
			s.recordWaitLocked(tenant, time.Since(t.enqueued))
			return t
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// worker executes tasks until shutdown. A task whose request context already
// fired is skipped (its fn still runs, under the dead context, so the
// submitter's completion accounting is never lost — the simulation layer
// returns ErrCanceled without burning cycles).
func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		t := s.next()
		if t == nil {
			return
		}
		runCtx, cancel := context.WithCancel(t.ctx)
		s.mu.Lock()
		if s.aborting {
			cancel() // shutdown already past the drain deadline
		}
		s.running[t] = cancel
		s.mu.Unlock()
		t.fn(runCtx)
		cancel()
		s.mu.Lock()
		delete(s.running, t)
		if !t.exempt {
			if s.inflight[t.tenant]--; s.inflight[t.tenant] <= 0 {
				delete(s.inflight, t.tenant)
			}
		}
		s.mu.Unlock()
	}
}

// stop shuts the scheduler down: new submits are refused immediately,
// queued and running tasks get the drain window to finish, and whatever is
// still running when it closes is canceled (stopping at the simulation's
// next cancellation barrier). stop returns once every worker has exited,
// and reports whether the drain was clean (true) or had to hard-cancel.
func (s *scheduler) stop(drain time.Duration) bool {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(drain):
	}
	s.mu.Lock()
	s.aborting = true
	for _, cancel := range s.running {
		cancel()
	}
	s.mu.Unlock()
	<-done
	return false
}

// recordWaitLocked appends one queue-wait sample to the tenant's bounded
// ring. Caller holds s.mu.
func (s *scheduler) recordWaitLocked(tenant string, d time.Duration) {
	w := append(s.waits[tenant], uint64(d))
	if len(w) > waitSamples {
		w = w[len(w)-waitSamples:]
	}
	s.waits[tenant] = w
}

// schedStats is the scheduler's /metrics contribution.
type schedStats struct {
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// Quota is the per-tenant in-flight bound (0 = unlimited);
	// QuotaRejected counts submissions refused over it.
	Quota         int                    `json:"quota,omitempty"`
	QuotaRejected uint64                 `json:"quota_rejected"`
	Tenants       map[string]tenantStats `json:"tenants,omitempty"`
}

// tenantStats reports one tenant's queue depth, in-flight count, and wait
// quantiles (interpolated; nanoseconds) over its recent dispatch history.
type tenantStats struct {
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
	WaitP50Ns  uint64 `json:"wait_p50_ns"`
	WaitP90Ns  uint64 `json:"wait_p90_ns"`
	WaitP99Ns  uint64 `json:"wait_p99_ns"`
}

func (s *scheduler) stats() schedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := schedStats{
		QueueDepth:    s.queued,
		Running:       len(s.running),
		Quota:         s.quota,
		QuotaRejected: s.rejected,
		Tenants:       make(map[string]tenantStats),
	}
	for tenant, w := range s.waits {
		sorted := append([]uint64(nil), w...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.Tenants[tenant] = tenantStats{
			QueueDepth: len(s.queues[tenant]),
			Inflight:   s.inflight[tenant],
			WaitP50Ns:  pushmulticast.Quantile(sorted, 0.50),
			WaitP90Ns:  pushmulticast.Quantile(sorted, 0.90),
			WaitP99Ns:  pushmulticast.Quantile(sorted, 0.99),
		}
	}
	for tenant, q := range s.queues {
		if _, ok := st.Tenants[tenant]; !ok && len(q) > 0 {
			st.Tenants[tenant] = tenantStats{QueueDepth: len(q), Inflight: s.inflight[tenant]}
		}
	}
	return st
}
