package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pushmulticast"
)

// tiny16 is the smallest real campaign: one scheme, one workload, tiny
// inputs on the quick-scaled 16-core machine.
const tiny16 = `{"scale":"tiny","schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	pushmulticast.ClearRunMemo()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(30 * time.Second); err != nil {
			t.Errorf("close: %v", err)
		}
		pushmulticast.ClearRunMemo()
	})
	return s, ts
}

// postCampaign POSTs a campaign body and returns the status, the per-run
// records, and the trailing summary.
func postCampaign(t *testing.T, url, body string) (int, []runRecord, campaignSummary) {
	t.Helper()
	resp, err := http.Post(url+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, campaignSummary{Summary: true}
	}
	var (
		recs []runRecord
		sum  campaignSummary
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"summary":true`)) {
			if err := json.Unmarshal(line, &sum); err != nil {
				t.Fatalf("summary line %q: %v", line, err)
			}
			continue
		}
		var rec runRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("run line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, recs, sum
}

// TestCampaignDedupConcurrent fires N identical campaigns at the service
// concurrently and requires exactly one simulation: the memo records one
// miss, every response carries the same run identity and cycle count, and
// all but one response line was served from the memo. Run with -race in CI —
// this is the regression test for the service's dedup path end to end.
func TestCampaignDedupConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})
	const callers = 8
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		recs []runRecord
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, rs, sum := postCampaign(t, ts.URL, tiny16)
			if status != http.StatusOK {
				t.Errorf("status %d", status)
				return
			}
			if len(rs) != 1 || sum.Runs != 1 {
				t.Errorf("got %d records, summary %+v; want 1 run", len(rs), sum)
				return
			}
			mu.Lock()
			recs = append(recs, rs[0])
			mu.Unlock()
		}()
	}
	wg.Wait()
	if st := pushmulticast.RunMemoStats(); st.Misses != 1 {
		t.Fatalf("memo misses = %d for %d identical concurrent campaigns; exactly 1 simulation must have run", st.Misses, callers)
	}
	cached := 0
	for _, rec := range recs {
		if rec.Error != "" {
			t.Fatalf("run failed: %s", rec.Error)
		}
		if rec.ID != recs[0].ID || rec.Cycles != recs[0].Cycles {
			t.Fatalf("responses diverged: %+v vs %+v", rec, recs[0])
		}
		if rec.Cached {
			cached++
		}
	}
	if cached < callers-1 {
		t.Fatalf("only %d of %d responses were memo-served; at most one may have simulated", cached, callers)
	}
}

// TestCampaignRepeatIsCacheHit is the smoke-test contract: a repeated
// identical campaign is served from the memo ("cached":true) without a new
// simulation, and /metrics shows the hit.
func TestCampaignRepeatIsCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	if _, recs, _ := postCampaign(t, ts.URL, tiny16); len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("first campaign: %+v", recs)
	}
	_, recs, sum := postCampaign(t, ts.URL, tiny16)
	if len(recs) != 1 || !recs[0].Cached || sum.Cached != 1 {
		t.Fatalf("repeat campaign was not memo-served: recs %+v summary %+v", recs, sum)
	}
	var m metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Memo.Hits < 1 || m.Memo.Misses != 1 {
		t.Fatalf("metrics memo = %+v; want 1 miss and >= 1 hit", m.Memo)
	}
	if m.Runs["completed"] != 2 {
		t.Fatalf("metrics completed = %d; want 2", m.Runs["completed"])
	}
	// The completed run is retrievable by identity.
	var rec runRecord
	getJSON(t, ts.URL+"/runs/"+recs[0].ID, &rec)
	if rec.Cycles != recs[0].Cycles {
		t.Fatalf("GET /runs/%s = %+v; want cycles %d", recs[0].ID, rec, recs[0].Cycles)
	}
	_ = s
}

// TestCampaignMalformedSpecs table-drives the validation contract: every
// malformed spec is HTTP 400 with a one-line diagnostic (exactly one
// newline, at the end) and zero scheduled work.
func TestCampaignMalformedSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"invalid-json", `{"schemes":`},
		{"unknown-field", `{"scheems":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
		{"no-schemes", `{"workloads":[{"name":"cachebw"}]}`},
		{"no-workloads", `{"schemes":["OrdPush"]}`},
		{"unknown-scheme", `{"schemes":["TurboPush"],"workloads":[{"name":"cachebw"}]}`},
		{"unknown-workload", `{"schemes":["OrdPush"],"workloads":[{"name":"nosuch"}]}`},
		{"bad-scale", `{"scale":"huge","schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
		{"bad-cores", `{"cores":48,"schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
		{"negative-sim-workers", `{"sim_workers":-2,"schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
		{"collective-params-on-registry-workload", `{"schemes":["OrdPush"],"workloads":[{"name":"cachebw","sharers":4}]}`},
		{"inconsistent-collective-params", `{"schemes":["OrdPush"],"workloads":[{"name":"broadcast","fanout":1}]}`},
		{"unknown-warm-start", `{"warm_start":"deadbeef","schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
		{"fault-intensity-out-of-range", `{"faults":{"intensity":1.5},"schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
		{"lossy-rate-out-of-range", `{"faults":{"lossy_per_mille":2000},"schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %q; want 400", resp.StatusCode, body)
			}
			if n := strings.Count(string(body), "\n"); n != 1 || !strings.HasSuffix(string(body), "\n") {
				t.Fatalf("diagnostic is not one line (%d newlines): %q", n, body)
			}
			if len(strings.TrimSpace(string(body))) == 0 {
				t.Fatal("empty diagnostic")
			}
		})
	}
	if st := pushmulticast.RunMemoStats(); st.Misses != 0 {
		t.Fatalf("malformed specs started %d simulations; want 0", st.Misses)
	}
}

// TestCampaignClientCancellation disconnects a client mid-run and requires
// the simulation to be canceled instead of simulated to completion: the
// canceled-run counter moves and the worker slot frees promptly.
func TestCampaignClientCancellation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// A 256-core run is far too slow to finish under this test; the request
	// context is canceled shortly after it starts.
	big := `{"cores":256,"scale":"tiny","schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/campaigns", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	<-done
	deadline := time.Now().Add(30 * time.Second)
	for {
		var m metrics
		getJSON(t, ts.URL+"/metrics", &m)
		if m.Runs["canceled"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled campaign never registered a canceled run: %+v", m.Runs)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSnapshotWarmStart uploads a warm donor snapshot and runs a campaign
// forked from it: the warm run succeeds, and its identity differs from the
// cold run of the same configuration (the memo separates them by donor
// content hash).
func TestSnapshotWarmStart(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	// Build the donor under the exact configuration the campaign will
	// expand to, by expanding the same spec.
	spec := CampaignSpec{Scale: "tiny", Schemes: []string{"OrdPush"}, Workloads: []WorkloadSpec{{Name: "cachebw"}}}
	runs, err := expand(spec, func(string) ([]byte, bool) { return nil, false })
	if err != nil {
		t.Fatal(err)
	}
	m, err := pushmulticast.NewMachine(runs[0].cfg, runs[0].wl, runs[0].sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunTo(4000); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/snapshots", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID    string `json:"id"`
		Cycle uint64 `json:"cycle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up.ID == "" || up.Cycle == 0 {
		t.Fatalf("snapshot upload returned %+v", up)
	}
	warmBody := fmt.Sprintf(`{"scale":"tiny","warm_start":%q,"schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`, up.ID)
	status, warmRecs, _ := postCampaign(t, ts.URL, warmBody)
	if status != http.StatusOK || len(warmRecs) != 1 || warmRecs[0].Error != "" {
		t.Fatalf("warm campaign: status %d recs %+v", status, warmRecs)
	}
	_, coldRecs, _ := postCampaign(t, ts.URL, tiny16)
	if warmRecs[0].ID == coldRecs[0].ID {
		t.Fatal("warm and cold runs of one configuration share a run identity")
	}
	// A malformed snapshot upload is refused with one line.
	resp, err = http.Post(ts.URL+"/snapshots", "application/octet-stream", strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || strings.Count(string(body), "\n") != 1 {
		t.Fatalf("malformed snapshot: status %d body %q; want 400 and one line", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrains starts a short campaign and closes the server
// with a generous drain: the in-flight run completes and Close reports a
// clean drain.
func TestGracefulShutdownDrains(t *testing.T) {
	pushmulticast.ClearRunMemo()
	t.Cleanup(pushmulticast.ClearRunMemo)
	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, recs, _ := postCampaign(t, ts.URL, tiny16); status != http.StatusOK || len(recs) != 1 {
		t.Fatalf("campaign: status %d recs %+v", status, recs)
	}
	if err := s.Close(30 * time.Second); err != nil {
		t.Fatalf("clean close after an idle drain: %v", err)
	}
	// Campaigns after shutdown are refused with 503.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(tiny16))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown campaign got %d; want 503", resp.StatusCode)
	}
}

// TestShutdownHardCancelsStragglers closes the server while a long run is
// in flight with a tiny drain window: Close must hard-cancel the run and
// return promptly with the drain-expired error rather than wait out the
// full simulation.
func TestShutdownHardCancelsStragglers(t *testing.T) {
	pushmulticast.ClearRunMemo()
	t.Cleanup(pushmulticast.ClearRunMemo)
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	big := `{"cores":256,"scale":"tiny","schemes":["OrdPush"],"workloads":[{"name":"cachebw"}]}`
	go func() {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(big))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait for the run to occupy the worker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := s.sched.stats(); st.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	start := time.Now()
	err = s.Close(100 * time.Millisecond)
	if err == nil {
		t.Fatal("Close reported a clean drain while a 256-core run was in flight")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("Close took %s; hard-cancel must stop the run at its next cancellation barrier", elapsed)
	}
}

// TestSchedulerFairRoundRobin pins the per-tenant fairness property with a
// single worker: while tenant A's backlog holds the queue, a newly arrived
// tenant B task is dispatched before A's remaining backlog.
func TestSchedulerFairRoundRobin(t *testing.T) {
	sched := newScheduler(1, 64, 0)
	defer sched.stop(time.Second)
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(name string) func(context.Context) {
		return func(context.Context) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	// The gate task occupies the single worker while the backlog builds.
	if err := sched.submit(&task{tenant: "a", ctx: context.Background(), fn: func(context.Context) { <-gate }}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a1", "a2", "a3"} {
		if err := sched.submit(&task{tenant: "a", ctx: context.Background(), fn: record(name)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.submit(&task{tenant: "b", ctx: context.Background(), fn: record("b1")}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 4 tasks ran", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	posB := -1
	for i, name := range order {
		if name == "b1" {
			posB = i
		}
	}
	if posB < 0 || posB > 1 {
		t.Fatalf("tenant b's task ran at position %d of %v; fair round-robin must dispatch it ahead of tenant a's backlog", posB, order)
	}
}

// TestHealthz covers the liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var h struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d body %q", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
