package serve

import (
	"container/list"
	"fmt"
	"sync"

	"pushmulticast"
	"pushmulticast/internal/shard"
)

// snapStore holds uploaded warm-start donor snapshots, keyed by their FNV-1a
// content hash (the same identity the run memo separates warm runs by).
// Uploading the same bytes twice is idempotent. The store is LRU-bounded:
// snapshots are large (full machine state), and a long-lived daemon must not
// accumulate every donor ever uploaded.
type snapStore struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru *list.List // of snapEntry; front = most recently used
	cap int
}

type snapEntry struct {
	id    string
	data  []byte
	cycle uint64
}

func newSnapStore(capacity int) *snapStore {
	return &snapStore{m: make(map[string]*list.Element), lru: list.New(), cap: capacity}
}

// put validates and stores a snapshot, returning its content id and the
// cycle it was taken at. Malformed snapshots are refused with a one-line
// diagnostic before anything is retained.
func (st *snapStore) put(data []byte) (id string, cycle uint64, err error) {
	cycle, err = pushmulticast.SnapshotCycle(data)
	if err != nil {
		return "", 0, fmt.Errorf("snapshot: %v", oneLine(err))
	}
	id = fmt.Sprintf("%016x", pushmulticast.SnapshotHash(data))
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.m[id]; ok {
		st.lru.MoveToFront(e)
		return id, cycle, nil
	}
	st.m[id] = st.lru.PushFront(&snapEntry{id: id, data: data, cycle: cycle})
	for st.lru.Len() > st.cap {
		back := st.lru.Back()
		st.lru.Remove(back)
		delete(st.m, back.Value.(*snapEntry).id)
	}
	return id, cycle, nil
}

// get returns the snapshot bytes for an id.
func (st *snapStore) get(id string) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return nil, false
	}
	st.lru.MoveToFront(e)
	return e.Value.(*snapEntry).data, true
}

func (st *snapStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

// runRecord is one completed run as served by GET /runs/{id} and carried on
// the campaign stream. The schema lives in internal/shard so coordinator,
// worker, and journal all speak the identical record.
type runRecord = shard.RunRecord

// runStore caches completed run records by identity, LRU-bounded. Records
// are tiny (aggregates, not machine state), but unbounded growth is still a
// leak on a daemon serving millions of distinct runs.
type runStore struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru *list.List
	cap int
}

func newRunStore(capacity int) *runStore {
	return &runStore{m: make(map[string]*list.Element), lru: list.New(), cap: capacity}
}

// put stores a completed (successful) run record.
func (st *runStore) put(rec runRecord) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.m[rec.ID]; ok {
		e.Value = rec
		st.lru.MoveToFront(e)
		return
	}
	st.m[rec.ID] = st.lru.PushFront(rec)
	for st.lru.Len() > st.cap {
		back := st.lru.Back()
		st.lru.Remove(back)
		delete(st.m, back.Value.(runRecord).ID)
	}
}

func (st *runStore) get(id string) (runRecord, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return runRecord{}, false
	}
	st.lru.MoveToFront(e)
	return e.Value.(runRecord), true
}

func (st *runStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}
