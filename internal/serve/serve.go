package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"pushmulticast"
)

// Options configures a campaign server. Zero values select sensible
// defaults for a single-host daemon.
type Options struct {
	// Workers bounds concurrently executing simulations (0 = GOMAXPROCS).
	// Together with each campaign's sim_workers it is the host budget: the
	// harness clamps intra-sim workers so the product cannot oversubscribe.
	Workers int
	// MaxQueue bounds queued-but-not-running tasks across all tenants
	// (0 = 1024). Submits past the bound fail fast with HTTP 503.
	MaxQueue int
	// MemoCapacity bounds the completed-run memo
	// (0 = pushmulticast.DefaultRunMemoCapacity).
	MemoCapacity int
	// SnapshotCapacity bounds retained warm-start donor snapshots (0 = 16).
	SnapshotCapacity int
	// RunCacheCapacity bounds the completed-run record cache served by
	// GET /runs/{id} (0 = 4096).
	RunCacheCapacity int
	// MaxSnapshotBytes bounds one snapshot upload (0 = 256 MiB).
	MaxSnapshotBytes int64
}

// Server is the simd campaign service: expansion, dedup, fair scheduling,
// and result caching over the simulation harness. Create with New, mount
// Handler, and Close on shutdown.
type Server struct {
	opts  Options
	sched *scheduler
	snaps *snapStore
	runs  *runStore
	mux   *http.ServeMux
	start time.Time

	completed atomic.Uint64 // runs finished successfully
	canceled  atomic.Uint64 // runs ended by cancellation
	failed    atomic.Uint64 // runs ended by a simulation error
	closing   atomic.Bool
}

// New builds a campaign server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 1024
	}
	if opts.SnapshotCapacity <= 0 {
		opts.SnapshotCapacity = 16
	}
	if opts.RunCacheCapacity <= 0 {
		opts.RunCacheCapacity = 4096
	}
	if opts.MaxSnapshotBytes <= 0 {
		opts.MaxSnapshotBytes = 256 << 20
	}
	if opts.MemoCapacity > 0 {
		pushmulticast.SetRunMemoCapacity(opts.MemoCapacity)
	}
	s := &Server{
		opts:  opts,
		sched: newScheduler(opts.Workers, opts.MaxQueue),
		snaps: newSnapStore(opts.SnapshotCapacity),
		runs:  newRunStore(opts.RunCacheCapacity),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /campaigns", s.handleCampaign)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("POST /snapshots", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the service down: new campaigns are refused immediately,
// in-flight runs get the drain window to finish, and whatever is still
// running afterwards is canceled at its next cancellation barrier. Close
// returns once every worker has exited; the error reports a drain that had
// to hard-cancel.
func (s *Server) Close(drain time.Duration) error {
	s.closing.Store(true)
	if clean := s.sched.stop(drain); !clean {
		return fmt.Errorf("serve: drain window (%s) expired; in-flight runs were canceled", drain)
	}
	return nil
}

// runLine is one NDJSON line of a campaign response: a completed run, in
// completion order. The final line of every response is a summary instead
// (see campaignSummary).
type campaignSummary struct {
	Summary  bool `json:"summary"`
	Runs     int  `json:"runs"`
	Cached   int  `json:"cached"`
	Failed   int  `json:"failed"`
	Canceled int  `json:"canceled"`
}

// handleCampaign validates, expands, schedules, and streams one campaign.
// The whole spec is validated before anything is queued: a bad spec is one
// HTTP 400 with a one-line diagnostic and zero side effects. Results stream
// back as NDJSON in completion order; a disconnected client cancels every
// run the campaign still has in flight (shared simulations keep running
// while any other request still waits on them).
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		httpError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	spec, err := decodeSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	runs, err := expand(spec, s.snaps.get)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	// Buffered to the campaign size: a worker's send never blocks, so a
	// client that disconnected mid-stream cannot wedge a worker slot.
	out := make(chan runRecord, len(runs))
	submitted := 0
	for _, rs := range runs {
		rs := rs
		err := s.sched.submit(&task{
			tenant: tenant,
			ctx:    r.Context(),
			fn: func(ctx context.Context) {
				out <- s.execute(ctx, rs)
			},
		})
		if err != nil {
			if submitted == 0 {
				httpError(w, http.StatusServiceUnavailable, oneLine(err))
				return
			}
			// Later runs hit the bound: report the admitted prefix and the
			// refusal, rather than dropping the whole campaign mid-flight.
			out <- runRecord{ID: rs.id, Scheme: rs.scheme, Workload: rs.workload, Error: oneLine(err)}
		}
		submitted++
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := campaignSummary{Summary: true}
	for i := 0; i < len(runs); i++ {
		rec := <-out
		sum.Runs++
		if rec.Cached {
			sum.Cached++
		}
		if rec.Canceled {
			sum.Canceled++
		} else if rec.Error != "" {
			sum.Failed++
		}
		enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// execute runs one expanded run under the scheduler's context and returns
// its result record, recording it in the run cache on success.
func (s *Server) execute(ctx context.Context, rs runSpec) runRecord {
	var (
		res pushmulticast.Results
		hit bool
		err error
	)
	if rs.snap != nil {
		res, hit, err = pushmulticast.CampaignWarmRun(ctx, rs.cfg, rs.wl, rs.sc, rs.snap)
	} else {
		res, hit, err = pushmulticast.CampaignRun(ctx, rs.cfg, rs.wl, rs.sc)
	}
	rec := runRecord{ID: rs.id, Scheme: rs.scheme, Workload: rs.workload, Cached: hit}
	if err != nil {
		rec.Error = oneLine(err)
		if errors.Is(err, pushmulticast.ErrCanceled) {
			rec.Canceled = true
			s.canceled.Add(1)
		} else {
			s.failed.Add(1)
		}
		return rec
	}
	s.completed.Add(1)
	rec.Cycles = res.Cycles
	rec.Instructions = res.Stats.Core.Instructions
	if res.Cycles > 0 {
		rec.IPC = float64(res.Stats.Core.Instructions) / float64(res.Cycles)
	}
	rec.L1MPKI = res.L1MPKI()
	rec.L2MPKI = res.L2MPKI()
	rec.NoCFlits = res.TotalNoCFlits()
	if res.TraceEvents > 0 {
		rec.TraceHash = fmt.Sprintf("%#x", res.TraceHash)
		rec.TraceEvents = res.TraceEvents
	}
	s.runs.put(rec)
	return rec
}

// handleRun serves a completed run record by identity.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("run %q not found (completed runs are cached by identity; re-POST its campaign to regenerate)", r.PathValue("id")))
		return
	}
	writeJSON(w, rec)
}

// handleSnapshot accepts a warm-start donor snapshot upload (raw bytes) and
// returns its content id for use as a campaign's warm_start.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxSnapshotBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("snapshot upload: %v", oneLine(err)))
		return
	}
	if int64(len(data)) > s.opts.MaxSnapshotBytes {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("snapshot exceeds the %d-byte upload bound", s.opts.MaxSnapshotBytes))
		return
	}
	id, cycle, err := s.snaps.put(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, map[string]any{"id": id, "cycle": cycle, "bytes": len(data)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

// metrics is the GET /metrics schema.
type metrics struct {
	Scheduler schedStats              `json:"scheduler"`
	Memo      pushmulticast.MemoStats `json:"memo"`
	Runs      map[string]uint64       `json:"runs"`
	Snapshots int                     `json:"snapshots"`
	RunCache  int                     `json:"run_cache"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, metrics{
		Scheduler: s.sched.stats(),
		Memo:      pushmulticast.RunMemoStats(),
		Runs: map[string]uint64{
			"completed": s.completed.Load(),
			"canceled":  s.canceled.Load(),
			"failed":    s.failed.Load(),
		},
		Snapshots: s.snaps.len(),
		RunCache:  s.runs.len(),
	})
}

// httpError writes a one-line diagnostic with the given status. The body is
// exactly one line (newline-terminated), keeping the service's error
// contract greppable from shell scripts and CI alike.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintln(w, msg)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
