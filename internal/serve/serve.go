package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pushmulticast"
	"pushmulticast/internal/shard"
)

// Options configures a campaign server. Zero values select sensible
// defaults for a single-host daemon.
type Options struct {
	// Workers bounds concurrently executing simulations (0 = GOMAXPROCS).
	// Together with each campaign's sim_workers it is the host budget: the
	// harness clamps intra-sim workers so the product cannot oversubscribe.
	Workers int
	// MaxQueue bounds queued-but-not-running tasks across all tenants
	// (0 = 1024). Submits past the bound fail fast with HTTP 503.
	MaxQueue int
	// MemoCapacity bounds the completed-run memo
	// (0 = pushmulticast.DefaultRunMemoCapacity).
	MemoCapacity int
	// SnapshotCapacity bounds retained warm-start donor snapshots (0 = 16).
	SnapshotCapacity int
	// RunCacheCapacity bounds the completed-run record cache served by
	// GET /runs/{id} (0 = 4096).
	RunCacheCapacity int
	// MaxSnapshotBytes bounds one snapshot upload (0 = 256 MiB).
	MaxSnapshotBytes int64
	// TenantQuota bounds one tenant's in-flight (queued + running) runs
	// beyond fair round-robin (0 = unlimited). Over-quota submissions are
	// refused whole with HTTP 429 and a one-line diagnostic.
	TenantQuota int
	// Peers lists simd worker replica base URLs. Non-empty turns this daemon
	// into a shard coordinator: campaigns are split into shards and
	// dispatched across the replicas with retry, reassignment, and local
	// degradation; empty keeps every run on this process.
	Peers []string
	// ShardSize groups this many runs per dispatched shard (0 = 1).
	ShardSize int
	// ShardRetries bounds remote re-dispatches per shard (0 = 4).
	ShardRetries int
	// ShardTimeout bounds one shard dispatch attempt (0 = 2m).
	ShardTimeout time.Duration
	// HealthInterval is the replica /healthz probe period (0 = 2s).
	HealthInterval time.Duration
	// JournalPath enables the crash-resume journal: completed run records
	// and uploaded snapshot identities are appended there, and a restarted
	// daemon serves journaled runs without recomputing them. Empty keeps a
	// memory-only journal (dedup without persistence).
	JournalPath string
}

// Server is the simd campaign service: expansion, dedup, fair scheduling,
// and result caching over the simulation harness. Create with New, mount
// Handler, and Close on shutdown.
type Server struct {
	opts    Options
	sched   *scheduler
	snaps   *snapStore
	runs    *runStore
	journal *shard.Journal
	coord   *shard.Coordinator // nil unless Peers configured
	// recovered is the journal's content at startup — the recovery set a
	// restarted worker serves without recomputing. It is immutable after New:
	// runs completed during this process's lifetime are served by the live
	// memo, not the journal, so memo hit accounting stays truthful.
	recovered map[string]shard.RunRecord
	mux       *http.ServeMux
	start     time.Time

	completed       atomic.Uint64 // runs finished successfully
	canceled        atomic.Uint64 // runs ended by cancellation
	failed          atomic.Uint64 // runs ended by a simulation error
	recoveredServed atomic.Uint64 // runs served from the startup journal
	closing         atomic.Bool
}

// New builds a campaign server and starts its worker pool. With Peers set it
// also starts the shard coordinator and its replica health probes; with
// JournalPath set it loads the crash-resume journal, loudly reporting what a
// restart recovered.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 1024
	}
	if opts.SnapshotCapacity <= 0 {
		opts.SnapshotCapacity = 16
	}
	if opts.RunCacheCapacity <= 0 {
		opts.RunCacheCapacity = 4096
	}
	if opts.MaxSnapshotBytes <= 0 {
		opts.MaxSnapshotBytes = 256 << 20
	}
	if opts.MemoCapacity > 0 {
		pushmulticast.SetRunMemoCapacity(opts.MemoCapacity)
	}
	journal := shard.NewMemJournal()
	if opts.JournalPath != "" {
		var err error
		if journal, err = shard.OpenJournal(opts.JournalPath); err != nil {
			return nil, fmt.Errorf("serve: %v", err)
		}
	}
	s := &Server{
		opts:      opts,
		sched:     newScheduler(opts.Workers, opts.MaxQueue, opts.TenantQuota),
		snaps:     newSnapStore(opts.SnapshotCapacity),
		runs:      newRunStore(opts.RunCacheCapacity),
		journal:   journal,
		recovered: journal.Seen(),
		mux:       http.NewServeMux(),
		start:     time.Now(),
	}
	if n := len(s.recovered); n > 0 || journal.Skipped() > 0 {
		log.Printf("serve: journal %s: recovered %d completed runs, %d snapshot identities (%d unparsable lines skipped); recovered runs will be served without recomputing",
			journal.Path(), n, journal.Snapshots(), journal.Skipped())
	}
	for _, rec := range s.recovered {
		rec.Cached = true
		s.runs.put(rec)
	}
	if len(opts.Peers) > 0 {
		coord, err := shard.New(shard.Options{
			Workers:        opts.Peers,
			ShardSize:      opts.ShardSize,
			MaxRetries:     opts.ShardRetries,
			Timeout:        opts.ShardTimeout,
			HealthInterval: opts.HealthInterval,
			Journal:        journal,
			Local:          s.localUnit,
			Logf:           log.Printf,
		})
		if err != nil {
			journal.Close()
			return nil, fmt.Errorf("serve: %v", err)
		}
		s.coord = coord
	}
	s.mux.HandleFunc("POST /campaigns", s.handleCampaign)
	s.mux.HandleFunc("POST /shards", s.handleShard)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRun)
	s.mux.HandleFunc("POST /snapshots", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the service down: new campaigns are refused immediately,
// in-flight runs get the drain window to finish, and whatever is still
// running afterwards is canceled at its next cancellation barrier. Close
// returns once every worker has exited; the error reports a drain that had
// to hard-cancel.
func (s *Server) Close(drain time.Duration) error {
	s.closing.Store(true)
	clean := s.sched.stop(drain)
	if s.coord != nil {
		s.coord.Close()
	}
	s.journal.Close()
	if !clean {
		return fmt.Errorf("serve: drain window (%s) expired; in-flight runs were canceled", drain)
	}
	return nil
}

// runLine is one NDJSON line of a campaign response: a completed run, in
// completion order. The final line of every response is a summary instead
// (see campaignSummary).
type campaignSummary struct {
	Summary  bool `json:"summary"`
	Runs     int  `json:"runs"`
	Cached   int  `json:"cached"`
	Failed   int  `json:"failed"`
	Canceled int  `json:"canceled"`
	// Distribution accounting, present only on coordinator responses: how
	// many shards the campaign split into, how many runs were recovered from
	// the journal versus freshly computed, and what the fault-tolerance
	// machinery had to do to get them.
	Shards          int `json:"shards,omitempty"`
	Recovered       int `json:"recovered,omitempty"`
	Recomputed      int `json:"recomputed,omitempty"`
	ShardRetries    int `json:"shard_retries,omitempty"`
	ShardReassigned int `json:"shard_reassigned,omitempty"`
	DegradedLocal   int `json:"degraded_local,omitempty"`
}

// handleCampaign validates, expands, schedules, and streams one campaign.
// The whole spec is validated before anything is queued: a bad spec is one
// HTTP 400 with a one-line diagnostic and zero side effects. Results stream
// back as NDJSON in completion order; a disconnected client cancels every
// run the campaign still has in flight (shared simulations keep running
// while any other request still waits on them).
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		httpError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	spec, err := decodeSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	runs, err := expand(spec, s.snaps.get)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if s.coord != nil {
		s.streamShardedCampaign(w, r, spec, runs, tenant)
		return
	}
	// Buffered to the campaign size: a worker's send never blocks, so a
	// client that disconnected mid-stream cannot wedge a worker slot.
	out := make(chan runRecord, len(runs))
	tasks := make([]*task, 0, len(runs))
	for _, rs := range runs {
		rs := rs
		tasks = append(tasks, &task{
			tenant: tenant,
			ctx:    r.Context(),
			fn: func(ctx context.Context) {
				out <- s.execute(ctx, rs)
			},
		})
	}
	// All-or-nothing admission: a campaign that cannot queue whole (bound or
	// quota) is refused whole, never half-run.
	if err := s.sched.submitAll(tasks); err != nil {
		httpError(w, refusalStatus(err), oneLine(err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sum := campaignSummary{Summary: true}
	for i := 0; i < len(runs); i++ {
		rec := <-out
		sum.Runs++
		if rec.Cached {
			sum.Cached++
		}
		if rec.Canceled {
			sum.Canceled++
		} else if rec.Error != "" {
			sum.Failed++
		}
		enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// refusalStatus maps a scheduler refusal to its HTTP status: 429 for an
// over-quota tenant, 503 for a full queue or a shutdown.
func refusalStatus(err error) int {
	var oq overQuotaError
	if errors.As(err, &oq) {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// streamShardedCampaign runs one campaign through the shard coordinator:
// every expanded run becomes a dispatch unit (a self-contained single-run
// spec), the coordinator shards and distributes them, and merged records
// stream back in completion order followed by a summary carrying the
// distribution accounting.
func (s *Server) streamShardedCampaign(w http.ResponseWriter, r *http.Request, spec CampaignSpec, runs []runSpec, tenant string) {
	units := make([]shard.Unit, 0, len(runs))
	for _, rs := range runs {
		raw, err := unitSpec(spec, rs)
		if err != nil {
			httpError(w, http.StatusInternalServerError, oneLine(err))
			return
		}
		units = append(units, shard.Unit{RunID: rs.id, Scheme: rs.scheme, Workload: rs.workload, Spec: raw})
	}
	var snap []byte
	if len(runs) > 0 {
		snap = runs[0].snap // campaign-level warm_start: every run shares one donor
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var mu sync.Mutex // serializes the stream across shard goroutines
	sum := campaignSummary{Summary: true}
	st := s.coord.Run(r.Context(), tenant, units, snap, func(rec shard.RunRecord, recovered bool) {
		mu.Lock()
		defer mu.Unlock()
		sum.Runs++
		if rec.Cached {
			sum.Cached++
		}
		if recovered {
			sum.Recovered++
		} else {
			sum.Recomputed++
		}
		if rec.Canceled {
			sum.Canceled++
		} else if rec.Error != "" {
			sum.Failed++
		} else {
			s.runs.put(rec)
		}
		enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	})
	sum.Shards = st.Shards
	sum.ShardRetries = st.Retries
	sum.ShardReassigned = st.Reassigned
	sum.DegradedLocal = st.DegradedLocal
	enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// localUnit is the coordinator's degradation-ladder bottom: execute one
// dispatch unit on this process. The run still goes through the scheduler —
// quota-exempt, so the fallback that exists to survive replica loss cannot
// itself be refused — and through the same execute path as any other run.
func (s *Server) localUnit(ctx context.Context, u shard.Unit) shard.RunRecord {
	spec, err := decodeSpec(bytes.NewReader(u.Spec))
	if err == nil {
		var runs []runSpec
		if runs, err = expand(spec, s.snaps.get); err == nil {
			done := make(chan shard.RunRecord, 1)
			err = s.sched.submit(&task{
				tenant: tenant(spec),
				ctx:    ctx,
				exempt: true,
				fn:     func(c context.Context) { done <- s.execute(c, runs[0]) },
			})
			if err == nil {
				return <-done
			}
		}
	}
	return shard.RunRecord{ID: u.RunID, Scheme: u.Scheme, Workload: u.Workload, Error: oneLine(err)}
}

// tenant resolves a spec's fair-queueing bucket.
func tenant(spec CampaignSpec) string {
	if spec.Tenant == "" {
		return "default"
	}
	return spec.Tenant
}

// handleShard is the worker side of shard dispatch: POST /shards carries a
// shard of self-contained single-run specs; the worker expands and executes
// them under its scheduler (tenant quota applies — the coordinator treats a
// 429 as transient and backs off) and replies with the complete result set.
// A spec whose warm-start donor is missing is HTTP 409 so the coordinator
// re-uploads and retries; any other validation failure is a permanent 400.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		httpError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	var req shard.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shard request: %v", oneLine(err)))
		return
	}
	if len(req.Runs) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shard %s: no runs", req.ShardID))
		return
	}
	reqTenant := req.Tenant
	if reqTenant == "" {
		reqTenant = "default"
	}
	var specs []runSpec
	for i, raw := range req.Runs {
		spec, err := decodeSpec(bytes.NewReader(raw))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("shard %s run %d: %v", req.ShardID, i, oneLine(err)))
			return
		}
		runs, err := expand(spec, s.snaps.get)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "warm_start snapshot") {
				// The donor was uploaded once but is gone (LRU eviction or a
				// worker restart): recoverable, not a spec defect.
				status = http.StatusConflict
			}
			httpError(w, status, fmt.Sprintf("shard %s run %d: %v", req.ShardID, i, oneLine(err)))
			return
		}
		specs = append(specs, runs...)
	}
	out := make(chan runRecord, len(specs))
	tasks := make([]*task, 0, len(specs))
	for _, rs := range specs {
		rs := rs
		tasks = append(tasks, &task{
			tenant: reqTenant,
			ctx:    r.Context(),
			fn:     func(ctx context.Context) { out <- s.execute(ctx, rs) },
		})
	}
	if err := s.sched.submitAll(tasks); err != nil {
		httpError(w, refusalStatus(err), oneLine(err))
		return
	}
	resp := shard.Response{ShardID: req.ShardID, Results: make([]shard.RunRecord, 0, len(specs))}
	for range specs {
		resp.Results = append(resp.Results, <-out)
	}
	writeJSON(w, resp)
}

// execute runs one expanded run under the scheduler's context and returns
// its result record, recording it in the run cache on success.
func (s *Server) execute(ctx context.Context, rs runSpec) runRecord {
	// Crash resume: a run the startup journal already holds is served from
	// it without recomputing — the loud recovery path a restarted worker
	// takes for every shard it had already finished.
	if rec, ok := s.recovered[rs.id]; ok {
		rec.Cached = true
		s.recoveredServed.Add(1)
		return rec
	}
	var (
		res pushmulticast.Results
		hit bool
		err error
	)
	if rs.snap != nil {
		res, hit, err = pushmulticast.CampaignWarmRun(ctx, rs.cfg, rs.wl, rs.sc, rs.snap)
	} else {
		res, hit, err = pushmulticast.CampaignRun(ctx, rs.cfg, rs.wl, rs.sc)
	}
	rec := runRecord{ID: rs.id, Scheme: rs.scheme, Workload: rs.workload, Cached: hit}
	if err != nil {
		rec.Error = oneLine(err)
		if errors.Is(err, pushmulticast.ErrCanceled) {
			rec.Canceled = true
			s.canceled.Add(1)
		} else {
			s.failed.Add(1)
		}
		return rec
	}
	s.completed.Add(1)
	rec.Cycles = res.Cycles
	rec.Instructions = res.Stats.Core.Instructions
	if res.Cycles > 0 {
		rec.IPC = float64(res.Stats.Core.Instructions) / float64(res.Cycles)
	}
	rec.L1MPKI = res.L1MPKI()
	rec.L2MPKI = res.L2MPKI()
	rec.NoCFlits = res.TotalNoCFlits()
	if res.TraceEvents > 0 {
		rec.TraceHash = fmt.Sprintf("%#x", res.TraceHash)
		rec.TraceEvents = res.TraceEvents
	}
	s.runs.put(rec)
	if _, err := s.journal.Commit(rec); err != nil {
		log.Printf("serve: %v", err)
	}
	return rec
}

// handleRun serves a completed run record by identity.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.runs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("run %q not found (completed runs are cached by identity; re-POST its campaign to regenerate)", r.PathValue("id")))
		return
	}
	writeJSON(w, rec)
}

// handleSnapshot accepts a warm-start donor snapshot upload (raw bytes) and
// returns its content id for use as a campaign's warm_start.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxSnapshotBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("snapshot upload: %v", oneLine(err)))
		return
	}
	if int64(len(data)) > s.opts.MaxSnapshotBytes {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("snapshot exceeds the %d-byte upload bound", s.opts.MaxSnapshotBytes))
		return
	}
	id, cycle, err := s.snaps.put(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.journal.CommitSnapshot(id, cycle); err != nil {
		log.Printf("serve: %v", err)
	}
	writeJSON(w, map[string]any{"id": id, "cycle": cycle, "bytes": len(data)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.start).Seconds()),
	})
}

// journalMetrics is the crash-resume journal's /metrics contribution.
type journalMetrics struct {
	Path string `json:"path,omitempty"` // empty = memory-only
	Runs int    `json:"runs"`           // journaled completed runs
	// Snapshots counts journaled warm-start donor identities.
	Snapshots int `json:"snapshots"`
	// RecoveredServed counts runs served from the startup journal without
	// recomputing — the loud proof a resume recovered rather than redid.
	RecoveredServed uint64 `json:"recovered_served"`
	// SkippedLines counts unparsable journal lines ignored at load (a torn
	// final line from a crash mid-append is the expected case).
	SkippedLines int `json:"skipped_lines,omitempty"`
}

// metrics is the GET /metrics schema.
type metrics struct {
	Scheduler schedStats              `json:"scheduler"`
	Memo      pushmulticast.MemoStats `json:"memo"`
	Runs      map[string]uint64       `json:"runs"`
	Snapshots int                     `json:"snapshots"`
	RunCache  int                     `json:"run_cache"`
	Journal   journalMetrics          `json:"journal"`
	// Shard carries the coordinator's retry/reassignment/degradation
	// counters and per-shard wait quantiles; absent on plain workers.
	Shard *shard.Metrics `json:"shard,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := metrics{
		Scheduler: s.sched.stats(),
		Memo:      pushmulticast.RunMemoStats(),
		Runs: map[string]uint64{
			"completed": s.completed.Load(),
			"canceled":  s.canceled.Load(),
			"failed":    s.failed.Load(),
		},
		Snapshots: s.snaps.len(),
		RunCache:  s.runs.len(),
		Journal: journalMetrics{
			Path:            s.journal.Path(),
			Runs:            s.journal.Runs(),
			Snapshots:       s.journal.Snapshots(),
			RecoveredServed: s.recoveredServed.Load(),
			SkippedLines:    s.journal.Skipped(),
		},
	}
	if s.coord != nil {
		cm := s.coord.Metrics()
		m.Shard = &cm
	}
	writeJSON(w, m)
}

// httpError writes a one-line diagnostic with the given status. The body is
// exactly one line (newline-terminated), keeping the service's error
// contract greppable from shell scripts and CI alike.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintln(w, msg)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
