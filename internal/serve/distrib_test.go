package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushmulticast"
)

// distSpec is the distributed-path campaign: two runs (one per scheme) with
// tracing on, so byte-identical merging is checked down to the trace hash.
const distSpec = `{"scale":"tiny","schemes":["Baseline","OrdPush"],"workloads":[{"name":"cachebw"}],"trace_n":8}`

// baselineRecords computes the undistributed distSpec results once per test
// binary; every distributed test compares against the same ground truth.
var (
	baseOnce sync.Once
	baseRecs []runRecord
)

func baselineRecords(t *testing.T) []runRecord {
	t.Helper()
	baseOnce.Do(func() {
		_, ts := newTestServer(t, Options{Workers: 2})
		status, recs, sum := postCampaign(t, ts.URL, distSpec)
		if status != http.StatusOK || sum.Failed != 0 || sum.Canceled != 0 {
			t.Errorf("baseline campaign: status %d summary %+v", status, sum)
			return
		}
		baseRecs = recs
	})
	if baseRecs == nil {
		t.Fatal("baseline campaign failed")
	}
	return baseRecs
}

// startServer is newTestServer without the automatic cleanup — for tests
// that stop and restart a daemon mid-test to exercise crash resume.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// recordMap indexes records by run identity with the Cached flag normalized
// away (whether a record came from a memo, a worker, or a journal is
// delivery detail; the simulation results must be identical).
func recordMap(recs []runRecord) map[string]runRecord {
	m := make(map[string]runRecord, len(recs))
	for _, r := range recs {
		r.Cached = false
		m[r.ID] = r
	}
	return m
}

// mustMatch requires the distributed records to equal the undistributed
// baseline run for run — cycles, instructions, flit counts, and trace hash.
func mustMatch(t *testing.T, base, got []runRecord) {
	t.Helper()
	bm, gm := recordMap(base), recordMap(got)
	if len(bm) != len(gm) {
		t.Fatalf("got %d distinct runs; baseline has %d", len(gm), len(bm))
	}
	for id, b := range bm {
		g, ok := gm[id]
		if !ok {
			t.Fatalf("run %s missing from distributed results", id)
		}
		if b.TraceHash == "" {
			t.Fatalf("baseline run %s has no trace hash; the comparison would be vacuous", id)
		}
		if g != b {
			t.Fatalf("run %s diverged:\n distributed %+v\n baseline    %+v", id, g, b)
		}
	}
}

// TestDistributedCampaignMatchesLocal runs the same campaign undistributed
// and through a two-replica coordinator and requires identical results —
// including trace hashes — with every run sharded out exactly once.
func TestDistributedCampaignMatchesLocal(t *testing.T) {
	base := baselineRecords(t)

	w1, ts1 := newTestServer(t, Options{Workers: 2})
	w2, ts2 := newTestServer(t, Options{Workers: 2})
	_, coordTS := newTestServer(t, Options{Workers: 2, Peers: []string{ts1.URL, ts2.URL}})

	status, got, sum := postCampaign(t, coordTS.URL, distSpec)
	if status != http.StatusOK {
		t.Fatalf("distributed campaign: status %d", status)
	}
	if sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("distributed campaign had failures: %+v", sum)
	}
	if sum.Shards != len(base) {
		t.Fatalf("summary shards = %d; want %d (one run per shard)", sum.Shards, len(base))
	}
	if sum.Recovered != 0 || sum.Recomputed != len(base) {
		t.Fatalf("fresh campaign recovered %d / recomputed %d; want 0 / %d", sum.Recovered, sum.Recomputed, len(base))
	}
	mustMatch(t, base, got)
	// Both replicas actually computed: the coordinator round-robins shards.
	for i, w := range []*Server{w1, w2} {
		if n := w.completed.Load(); n == 0 {
			t.Fatalf("worker %d completed no runs; shards were not distributed", i+1)
		}
	}
}

// killSwitch wraps a worker's handler with a SIGKILL simulation: once
// tripped — or immediately upon its first shard dispatch when killOnShard is
// set — every connection (shards and health probes alike) is severed without
// a response, exactly what a killed process looks like from the wire.
type killSwitch struct {
	h           http.Handler
	dead        atomic.Bool
	killOnShard atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() || (r.URL.Path == "/shards" && k.killOnShard.Load()) {
		k.dead.Store(true)
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	k.h.ServeHTTP(w, r)
}

// TestDistributedWorkerDeathReassigns kills one of two replicas on its first
// shard dispatch (connection severed mid-request, as a SIGKILL would) and
// requires the campaign to complete with zero canceled or failed runs,
// byte-identical to the undistributed baseline, with the reassignment
// visible in the summary. Run with -race in CI.
func TestDistributedWorkerDeathReassigns(t *testing.T) {
	base := baselineRecords(t)

	_, ts1 := newTestServer(t, Options{Workers: 2})
	s2, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ks := &killSwitch{h: s2.Handler()}
	ks.killOnShard.Store(true)
	ts2 := httptest.NewServer(ks)
	t.Cleanup(func() {
		ts2.Close()
		if err := s2.Close(30 * time.Second); err != nil {
			t.Errorf("close: %v", err)
		}
	})

	// A long health interval keeps the probe loop out of the way: the dead
	// replica must be discovered by the failed dispatch itself, and must not
	// be resurrected mid-test.
	_, coordTS := newTestServer(t, Options{
		Workers:        2,
		Peers:          []string{ts1.URL, ts2.URL},
		HealthInterval: time.Minute,
	})

	status, got, sum := postCampaign(t, coordTS.URL, distSpec)
	if status != http.StatusOK {
		t.Fatalf("distributed campaign: status %d", status)
	}
	if sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("campaign did not survive the worker death: %+v", sum)
	}
	if sum.ShardReassigned == 0 {
		t.Fatalf("no shard was reassigned after the worker death: %+v", sum)
	}
	if sum.DegradedLocal != 0 {
		t.Fatalf("campaign degraded to local with a healthy replica available: %+v", sum)
	}
	mustMatch(t, base, got)
	if !ks.dead.Load() {
		t.Fatal("the killable worker was never dispatched to; the death path was not exercised")
	}
}

// TestCoordinatorJournalResume SIGKILL-simulates the coordinator between two
// identical campaigns: the restarted daemon (same journal path, memo
// cleared) must serve every run from the journal — recovering, not
// recomputing, and loudly saying so in the summary.
func TestCoordinatorJournalResume(t *testing.T) {
	_, wts := newTestServer(t, Options{Workers: 2})
	jp := filepath.Join(t.TempDir(), "coord.journal")
	opts := Options{Workers: 2, Peers: []string{wts.URL}, JournalPath: jp}

	s1, ts1 := startServer(t, opts)
	status, recs, sum := postCampaign(t, ts1.URL, distSpec)
	if status != http.StatusOK || sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("first campaign: status %d summary %+v", status, sum)
	}
	if sum.Recovered != 0 {
		t.Fatalf("fresh journal recovered %d runs", sum.Recovered)
	}
	// Abrupt stop: close without draining niceties, then wipe the memo so a
	// recovery could only come from the journal on disk.
	ts1.Close()
	if err := s1.Close(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	pushmulticast.ClearRunMemo()

	s2, ts2 := startServer(t, opts)
	t.Cleanup(func() {
		ts2.Close()
		if err := s2.Close(30 * time.Second); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	status, recs2, sum2 := postCampaign(t, ts2.URL, distSpec)
	if status != http.StatusOK {
		t.Fatalf("resumed campaign: status %d", status)
	}
	if sum2.Recovered != len(recs) || sum2.Recomputed != 0 {
		t.Fatalf("resumed summary recovered %d / recomputed %d; want %d / 0", sum2.Recovered, sum2.Recomputed, len(recs))
	}
	for _, rec := range recs2 {
		if !rec.Cached {
			t.Fatalf("recovered run %s not marked cached", rec.ID)
		}
	}
	mustMatch(t, recs, recs2)
	if st := pushmulticast.RunMemoStats(); st.Misses != 0 {
		t.Fatalf("memo misses = %d after resume; the journal must recover without recomputing", st.Misses)
	}
}

// TestWorkerJournalResume restarts a plain (coordinator-less) worker on the
// same journal path and requires the repeated campaign to be served from the
// startup journal: cached records, recovered_served in /metrics, and zero
// memo misses.
func TestWorkerJournalResume(t *testing.T) {
	pushmulticast.ClearRunMemo()
	jp := filepath.Join(t.TempDir(), "worker.journal")
	opts := Options{Workers: 2, JournalPath: jp}

	s1, ts1 := startServer(t, opts)
	status, recs, _ := postCampaign(t, ts1.URL, tiny16)
	if status != http.StatusOK || len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("first campaign: status %d recs %+v", status, recs)
	}
	ts1.Close()
	if err := s1.Close(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	pushmulticast.ClearRunMemo()

	s2, ts2 := startServer(t, opts)
	t.Cleanup(func() {
		ts2.Close()
		if err := s2.Close(30 * time.Second); err != nil {
			t.Errorf("close: %v", err)
		}
		pushmulticast.ClearRunMemo()
	})
	status, recs2, sum := postCampaign(t, ts2.URL, tiny16)
	if status != http.StatusOK || len(recs2) != 1 {
		t.Fatalf("resumed campaign: status %d recs %+v", status, recs2)
	}
	if !recs2[0].Cached || sum.Cached != 1 {
		t.Fatalf("resumed run not served from the journal: recs %+v summary %+v", recs2, sum)
	}
	if recs2[0].Cycles != recs[0].Cycles || recs2[0].TraceHash != recs[0].TraceHash {
		t.Fatalf("recovered record diverged: %+v vs %+v", recs2[0], recs[0])
	}
	var m metrics
	getJSON(t, ts2.URL+"/metrics", &m)
	if m.Journal.RecoveredServed < 1 {
		t.Fatalf("journal recovered_served = %d; want >= 1", m.Journal.RecoveredServed)
	}
	if m.Journal.Runs != 1 || m.Journal.Path != jp {
		t.Fatalf("journal metrics %+v; want 1 run at %s", m.Journal, jp)
	}
	if m.Memo.Misses != 0 {
		t.Fatalf("memo misses = %d after restart; the journal must serve without recomputing", m.Memo.Misses)
	}
}

// TestCampaignTenantQuota429 pins the over-quota HTTP contract: a campaign
// exceeding the tenant's in-flight bound is refused whole with HTTP 429 and
// a one-line diagnostic, and a within-quota campaign still succeeds.
func TestCampaignTenantQuota429(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, TenantQuota: 1})
	twoRuns := `{"scale":"tiny","schemes":["Baseline","OrdPush"],"workloads":[{"name":"cachebw"}]}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(twoRuns))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d body %q; want 429", resp.StatusCode, body)
	}
	if !strings.HasSuffix(string(body), "\n") || strings.Count(string(body), "\n") != 1 {
		t.Fatalf("429 body is not one line: %q", body)
	}
	if !strings.Contains(string(body), "over quota") {
		t.Fatalf("429 body does not name the quota: %q", body)
	}
	// Nothing was half-admitted: a within-quota campaign runs normally.
	status, recs, _ := postCampaign(t, ts.URL, tiny16)
	if status != http.StatusOK || len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("within-quota campaign after refusal: status %d recs %+v", status, recs)
	}
	var m metrics
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Scheduler.Quota != 1 || m.Scheduler.QuotaRejected < 1 {
		t.Fatalf("scheduler metrics %+v; want quota 1 with >= 1 rejection", m.Scheduler)
	}
	_ = s
}

// TestSchedulerTenantQuota table-drives the quota admission contract at the
// scheduler layer: all-or-nothing batches, per-tenant accounting, exempt
// bypass, and tenant independence. Workers are zero so admitted tasks pin
// their in-flight counts deterministically.
func TestSchedulerTenantQuota(t *testing.T) {
	mk := func(tenant string, exempt bool) *task {
		return &task{tenant: tenant, ctx: context.Background(), exempt: exempt, fn: func(context.Context) {}}
	}
	batch := func(tenant string, n int) []*task {
		out := make([]*task, n)
		for i := range out {
			out[i] = mk(tenant, false)
		}
		return out
	}
	cases := []struct {
		name        string
		quota       int
		prior       []*task // admitted first; stays in flight (no workers)
		batch       []*task
		wantErr     bool
		then        []*task // submitted after batch, to prove all-or-nothing
		wantThenErr bool
	}{
		{name: "zero quota is unlimited", quota: 0, batch: batch("a", 5)},
		{name: "batch within quota", quota: 2, batch: batch("a", 2)},
		{name: "batch alone over quota", quota: 2, batch: batch("a", 3), wantErr: true},
		{name: "in-flight accumulates", quota: 2, prior: batch("a", 2), batch: batch("a", 1), wantErr: true},
		{name: "tenants are independent", quota: 1, prior: batch("a", 1), batch: batch("b", 1)},
		{name: "exempt bypasses quota", quota: 1, prior: batch("a", 1), batch: []*task{mk("a", true)}},
		{name: "refused batch admits nothing", quota: 1, batch: batch("a", 2), wantErr: true, then: batch("a", 1)},
		{name: "mixed-tenant batch blames the violator", quota: 1, batch: append(batch("a", 1), batch("b", 2)...), wantErr: true, then: batch("a", 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newScheduler(0, 64, tc.quota)
			defer s.stop(time.Second)
			if len(tc.prior) > 0 {
				if err := s.submitAll(tc.prior); err != nil {
					t.Fatalf("prior submit: %v", err)
				}
			}
			err := s.submitAll(tc.batch)
			if tc.wantErr {
				if err == nil {
					t.Fatal("over-quota batch was admitted")
				}
				var oq overQuotaError
				if !errors.As(err, &oq) {
					t.Fatalf("refusal is not a typed overQuotaError: %v", err)
				}
				if strings.Contains(err.Error(), "\n") {
					t.Fatalf("refusal is not one line: %q", err)
				}
			} else if err != nil {
				t.Fatalf("within-quota batch refused: %v", err)
			}
			if len(tc.then) > 0 {
				if err := s.submitAll(tc.then); (err != nil) != tc.wantThenErr {
					t.Fatalf("follow-up submit err = %v; wantErr %v", err, tc.wantThenErr)
				}
			}
		})
	}
	// The refusal line renders all four facts: tenant, in-flight, submitted,
	// bound — the greppable 429 contract.
	msg := overQuotaError{tenant: "acme", quota: 2, inflight: 2, want: 1}.Error()
	want := fmt.Sprintf("tenant %q over quota: %d in flight + %d submitted exceeds the per-tenant bound of %d", "acme", 2, 1, 2)
	if msg != want {
		t.Fatalf("refusal line %q; want %q", msg, want)
	}
}
