// Package serve is the simd campaign service: an HTTP/JSON front end over
// the simulation harness. A campaign names a machine scale, a set of schemes,
// and a set of workloads; the service expands the cross product into runs,
// deduplicates them through the campaign run memo (identical concurrent
// requests share one simulation), schedules them across a bounded worker
// pool with fair per-tenant queueing, and streams per-run results back as
// NDJSON. Completed results are cached by deterministic run identity, so a
// repeated campaign is served without re-simulating.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"

	"pushmulticast"
)

// CampaignSpec is the POST /campaigns request body. The cross product
// Schemes × Workloads expands into one run each; every field is validated up
// front, before any run is scheduled, and every rejection is a one-line
// diagnostic (the same contract the CLI tools keep) returned as HTTP 400.
type CampaignSpec struct {
	// Tenant names the fair-queueing bucket this campaign's runs wait in;
	// empty selects "default". Tenants round-robin for worker slots, so one
	// tenant's burst cannot starve another's interactive run.
	Tenant string `json:"tenant"`
	// Cores is the machine size: 16, 64, or 256. 0 selects 16.
	Cores int `json:"cores"`
	// Scale is the workload input sizing: "tiny", "quick" (default), or
	// "full". Non-full scales pair with quick-scaled caches, preserving the
	// paper's pressure ratios.
	Scale string `json:"scale"`
	// Schemes lists the design points to run (see the pushsim -scheme flag;
	// case-insensitive). Empty is rejected.
	Schemes []string `json:"schemes"`
	// Workloads lists the workload set; collective workloads accept
	// parameters. Empty is rejected.
	Workloads []WorkloadSpec `json:"workloads"`
	// SimWorkers runs each simulation on the parallel tick executor with
	// this many workers (0 or 1 = serial; results are byte-identical).
	// Values above the host's processor count are clamped.
	SimWorkers int `json:"sim_workers"`
	// Check enables the runtime invariant checker on every run.
	Check bool `json:"check"`
	// TraceN retains the last N causal trace events per run and reports the
	// trace identity (hash and event count) in each result line.
	TraceN int `json:"trace_n"`
	// Faults optionally arms the deterministic fault-injection layer.
	Faults *FaultSpec `json:"faults"`
	// WarmStart names an uploaded snapshot (the id returned by
	// POST /snapshots) to fork every run from instead of running cold. The
	// snapshot's config must match each run's, or differ only in tuning
	// knobs; mismatches surface as per-run errors.
	WarmStart string `json:"warm_start"`
	// Knobs overrides tuning parameters on every run's configuration.
	Knobs *KnobSpec `json:"knobs"`
}

// WorkloadSpec names one workload of a campaign. The parameter fields apply
// only to the collective family ("allreduce", "broadcast", "reducescatter",
// "prodcons"); setting any of them on a registry workload is rejected.
type WorkloadSpec struct {
	Name         string `json:"name"`
	Sharers      int    `json:"sharers"`
	Fanout       int    `json:"fanout"`
	ChunkLines   int    `json:"chunk_lines"`
	PayloadLines int    `json:"payload_lines"`
	Iters        int    `json:"iters"`
}

// FaultSpec arms fault injection for every run of the campaign: a generated
// chaos plan (Intensity in (0,1]), a lossy-interconnect plan
// (LossyPerMille), or both. The same seed and rates produce byte-identical
// fault schedules.
type FaultSpec struct {
	Intensity     float64 `json:"intensity"`
	LossyPerMille int     `json:"lossy_per_mille"`
	Seed          uint64  `json:"seed"`
}

// KnobSpec overrides tuning knobs on every run. Zero fields keep the
// configuration's defaults.
type KnobSpec struct {
	TPCThreshold     int `json:"tpc_threshold"`
	TimeWindow       int `json:"time_window"`
	CoalesceWindow   int `json:"coalesce_window"`
	LinkWidthBits    int `json:"link_width_bits"`
	RetryWindow      int `json:"retry_window"`
	RetryTimeout     int `json:"retry_timeout"`
	MaxRetries       int `json:"max_retries"`
	MSHRRetryTimeout int `json:"mshr_retry_timeout"`
}

// runSpec is one fully resolved run of an expanded campaign.
type runSpec struct {
	id       string // deterministic run identity (memo key hash)
	scheme   string
	workload string
	cfg      pushmulticast.Config
	wl       pushmulticast.Workload
	sc       pushmulticast.Scale
	snap     []byte       // warm-start donor, nil for cold runs
	ws       WorkloadSpec // source workload entry, for re-specing one run
}

// decodeSpec parses a campaign body strictly: unknown fields are rejected so
// a typo'd knob can never silently run a different campaign than the caller
// meant. Every error is one line.
func decodeSpec(r io.Reader) (CampaignSpec, error) {
	var spec CampaignSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("campaign spec: %v", oneLine(err))
	}
	return spec, nil
}

// expand validates the spec and resolves its scheme × workload cross product
// into concrete runs. All validation happens here, before anything is
// scheduled: a campaign either queues whole or is rejected whole with a
// one-line diagnostic. lookupSnap resolves a warm-start snapshot id.
func expand(spec CampaignSpec, lookupSnap func(id string) ([]byte, bool)) ([]runSpec, error) {
	if len(spec.Schemes) == 0 {
		return nil, fmt.Errorf("campaign spec: no schemes listed")
	}
	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("campaign spec: no workloads listed")
	}
	cores := spec.Cores
	if cores == 0 {
		cores = 16
	}
	sc, err := parseScale(spec.Scale)
	if err != nil {
		return nil, fmt.Errorf("campaign spec: %v", err)
	}
	if spec.SimWorkers < 0 {
		return nil, fmt.Errorf("campaign spec: sim_workers %d is negative", spec.SimWorkers)
	}
	if spec.TraceN < 0 {
		return nil, fmt.Errorf("campaign spec: trace_n %d is negative", spec.TraceN)
	}
	simWorkers := spec.SimWorkers
	if max := runtime.GOMAXPROCS(0); simWorkers > max {
		simWorkers = max
	}
	var snap []byte
	if spec.WarmStart != "" {
		var ok bool
		if snap, ok = lookupSnap(spec.WarmStart); !ok {
			return nil, fmt.Errorf("campaign spec: warm_start snapshot %q not found (upload it via POST /snapshots first)", spec.WarmStart)
		}
	}
	var runs []runSpec
	for _, schemeName := range spec.Schemes {
		sch, err := pushmulticast.SchemeByName(schemeName)
		if err != nil {
			return nil, fmt.Errorf("campaign spec: %v", err)
		}
		cfg, err := buildConfig(cores, sch, sc, spec, simWorkers)
		if err != nil {
			return nil, fmt.Errorf("campaign spec: %v", err)
		}
		for _, ws := range spec.Workloads {
			wl, err := resolveWorkload(ws)
			if err != nil {
				return nil, fmt.Errorf("campaign spec: %v", err)
			}
			if wl.Validate != nil {
				// Parameter consistency depends on the machine's core count;
				// reject here, before anything is scheduled, not mid-stream.
				if err := wl.Validate(cfg.Tiles()); err != nil {
					return nil, fmt.Errorf("campaign spec: %v", oneLine(err))
				}
			}
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("campaign spec: %v", oneLine(err))
			}
			runs = append(runs, runSpec{
				id:       pushmulticast.RunIdentity(cfg, wl, sc, snap),
				scheme:   sch.Name,
				workload: wl.Name,
				cfg:      cfg,
				wl:       wl,
				sc:       sc,
				snap:     snap,
				ws:       ws,
			})
		}
	}
	return runs, nil
}

// buildConfig assembles one scheme's machine configuration from the spec.
func buildConfig(cores int, sch pushmulticast.Scheme, sc pushmulticast.Scale, spec CampaignSpec, simWorkers int) (pushmulticast.Config, error) {
	var cfg pushmulticast.Config
	switch cores {
	case 16:
		cfg = pushmulticast.Default16()
	case 64:
		cfg = pushmulticast.Default64()
	case 256:
		cfg = pushmulticast.Default256()
	default:
		return cfg, fmt.Errorf("unsupported core count %d (use 16, 64, or 256)", cores)
	}
	cfg = cfg.WithScheme(sch)
	if sc != pushmulticast.ScaleFull {
		cfg = pushmulticast.ScaledConfig(cfg)
	}
	cfg.ParallelWorkers = simWorkers
	cfg.Check = spec.Check
	cfg.TraceN = spec.TraceN
	if k := spec.Knobs; k != nil {
		if k.TPCThreshold != 0 {
			cfg.TPCThreshold = k.TPCThreshold
		}
		if k.TimeWindow != 0 {
			cfg.TimeWindow = k.TimeWindow
		}
		if k.CoalesceWindow != 0 {
			cfg.CoalesceWindow = k.CoalesceWindow
		}
		if k.LinkWidthBits != 0 {
			cfg.NoC.LinkWidthBits = k.LinkWidthBits
		}
		if k.RetryWindow != 0 {
			cfg.NoC.RetryWindow = k.RetryWindow
		}
		if k.RetryTimeout != 0 {
			cfg.NoC.RetryTimeout = k.RetryTimeout
		}
		if k.MaxRetries != 0 {
			cfg.NoC.MaxRetries = k.MaxRetries
		}
		if k.MSHRRetryTimeout != 0 {
			cfg.MSHRRetryTimeout = k.MSHRRetryTimeout
		}
	}
	if f := spec.Faults; f != nil {
		plan, err := buildFaultPlan(cfg.Tiles(), *f)
		if err != nil {
			return cfg, err
		}
		cfg.Faults = plan
	}
	return cfg, nil
}

// buildFaultPlan mirrors the CLI's fault-source resolution: a chaos plan, a
// lossy plan, or both merged (the chaos generator never emits lossy kinds,
// so the merge cannot stack windows on one component).
func buildFaultPlan(tiles int, f FaultSpec) (*pushmulticast.FaultPlan, error) {
	if f.Intensity < 0 || f.Intensity > 1 {
		return nil, fmt.Errorf("fault intensity %g outside [0,1]", f.Intensity)
	}
	if f.LossyPerMille < 0 || f.LossyPerMille > 1000 {
		return nil, fmt.Errorf("lossy rate %d per mille outside [0,1000]", f.LossyPerMille)
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	var plan pushmulticast.FaultPlan
	if f.Intensity > 0 {
		plan = pushmulticast.GenerateFaultPlan(tiles, seed, f.Intensity)
	}
	if f.LossyPerMille > 0 {
		lp := pushmulticast.GenerateLossyPlan(tiles, seed, f.LossyPerMille)
		plan.Seed = lp.Seed
		plan.Faults = append(plan.Faults, lp.Faults...)
	}
	if len(plan.Faults) == 0 {
		return nil, nil
	}
	return &plan, nil
}

// resolveWorkload maps a WorkloadSpec to a workload value: plain registry
// names resolve unchanged, and any set collective parameter requires the
// name to be a collective.
func resolveWorkload(ws WorkloadSpec) (pushmulticast.Workload, error) {
	p := pushmulticast.CollectiveParams{
		Sharers: ws.Sharers, Fanout: ws.Fanout, ChunkLines: ws.ChunkLines,
		PayloadLines: ws.PayloadLines, Iters: ws.Iters,
	}
	if p == (pushmulticast.CollectiveParams{}) {
		return pushmulticast.WorkloadByName(ws.Name)
	}
	wl, err := pushmulticast.CollectiveWorkload(ws.Name, p)
	if err != nil {
		return pushmulticast.Workload{}, fmt.Errorf("collective parameters set: %v", err)
	}
	return wl, nil
}

func parseScale(s string) (pushmulticast.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return pushmulticast.ScaleTiny, nil
	case "quick", "":
		return pushmulticast.ScaleQuick, nil
	case "full":
		return pushmulticast.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q (use tiny, quick, or full)", s)
}

// unitSpec rebuilds one expanded run as a self-contained single-run campaign
// spec — the dispatch payload a worker replica expands back to the identical
// RunIdentity (same schema, same validation, same memo key).
func unitSpec(spec CampaignSpec, rs runSpec) (json.RawMessage, error) {
	single := spec
	single.Schemes = []string{rs.scheme}
	single.Workloads = []WorkloadSpec{rs.ws}
	raw, err := json.Marshal(single)
	if err != nil {
		return nil, fmt.Errorf("run %s: re-spec: %v", rs.id, err)
	}
	return raw, nil
}

// oneLine flattens an error message onto one line, preserving the service's
// one-line-diagnostic contract even for wrapped multi-line causes.
func oneLine(err error) string {
	return strings.Join(strings.Fields(err.Error()), " ")
}
