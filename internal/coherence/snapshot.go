package coherence

import (
	"fmt"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/snapshot"
)

// SaveMsg serializes one protocol message (or nil). Only protocol fields
// travel: the refs carrier count is reconstructed on decode, and pool
// membership is not observable state.
func SaveMsg(w *snapshot.Writer, m *Msg) {
	if m == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U8(uint8(m.Type))
	w.U64(m.Addr)
	w.U32(uint32(m.Requester))
	w.U64(m.Version)
	w.U32(m.Epoch)
	w.Bool(m.NeedPush)
	w.Bool(m.Reset)
	w.Bool(m.Prefetch)
	w.Bool(m.Recall)
	w.Bool(m.Private)
}

// LoadMsg decodes a message saved by SaveMsg. Every holder in the snapshot
// decodes its own copy, so the decoded message always carries exactly one
// reference (refs=1): sharing between a packet and its router replicas — or
// a retransmit-window prototype — is not observable (no payload pointers
// are ever compared), and one ref per holder means each holder's single
// eventual Release is balanced.
func LoadMsg(r *snapshot.Reader) *Msg {
	if !r.Bool() {
		return nil
	}
	m := &Msg{
		Type:      MsgType(r.U8()),
		Addr:      r.U64(),
		Requester: noc.NodeID(r.U32()),
		Version:   r.U64(),
		Epoch:     r.U32(),
		NeedPush:  r.Bool(),
		Reset:     r.Bool(),
		Prefetch:  r.Bool(),
		Recall:    r.Bool(),
		Private:   r.Bool(),
	}
	m.refs = 1
	return m
}

// Codec implements noc.PayloadCodec for protocol messages — the only
// payload type the simulator ever attaches to packets.
type Codec struct{}

// SavePayload implements noc.PayloadCodec.
func (Codec) SavePayload(w *snapshot.Writer, pl noc.RefPayload) {
	if pl == nil {
		SaveMsg(w, nil)
		return
	}
	m, ok := pl.(*Msg)
	if !ok {
		panic(fmt.Sprintf("coherence: cannot snapshot payload type %T", pl))
	}
	SaveMsg(w, m)
}

// LoadPayload implements noc.PayloadCodec.
func (Codec) LoadPayload(r *snapshot.Reader) noc.RefPayload {
	m := LoadMsg(r)
	if m == nil {
		return nil
	}
	return m
}
