// Package coherence defines the protocol message vocabulary exchanged
// between private L2 caches, LLC directory slices, and memory controllers,
// plus the mapping from message type to NoC virtual network, traffic class,
// and packet size.
//
// The protocol is an invalidation-based MSI with centralized invalidation-
// acknowledgment collection at the directory, extended with the paper's push
// machinery: PushData speculative multicasts, PushAck acknowledgments (the
// PushAck coherence variant), and epoch-tagged invalidations so stale acks
// from writeback races can never corrupt a later collection episode.
package coherence

import (
	"fmt"
	"sync/atomic"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/stats"
)

// MsgType enumerates the protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// GetS is a shared-read request from an L2 to the home LLC slice.
	GetS MsgType = iota
	// GetM is a write (read-for-ownership) request from an L2 to the home.
	GetM
	// PutM is a dirty writeback (with data) from an M-state owner.
	PutM
	// WBAck acknowledges a PutM, closing the writeback episode at the L2.
	WBAck
	// Inv asks a private cache to invalidate a line; it carries the
	// directory's per-line epoch so acknowledgments can be matched.
	Inv
	// InvAck acknowledges an Inv when the private cache held the line
	// clean (or not at all).
	InvAck
	// InvAckData acknowledges an Inv from an M-state owner and carries the
	// dirty data back to the directory.
	InvAckData
	// DataS is a shared-state data response (LLC -> L2).
	DataS
	// DataM is an exclusive/modified data response granting ownership.
	DataM
	// PushData is a speculative push multicast of a shared line.
	PushData
	// PushAck acknowledges receipt of a PushData at a private cache
	// (PushAck coherence variant only).
	PushAck
	// MemRead asks a memory controller for a line.
	MemRead
	// MemWrite writes a dirty line back to memory.
	MemWrite
	// MemData is a memory controller's read response.
	MemData

	// NumMsgTypes is the number of message types.
	NumMsgTypes
)

var msgNames = [NumMsgTypes]string{
	"GetS", "GetM", "PutM", "WBAck", "Inv", "InvAck", "InvAckData",
	"DataS", "DataM", "PushData", "PushAck", "MemRead", "MemWrite", "MemData",
}

// String returns the message type name.
func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return "Unknown"
}

// Msg is one protocol message. It travels as the payload of a noc.Packet.
type Msg struct {
	Type MsgType
	// Addr is the line address (64-byte aligned).
	Addr uint64
	// Requester is the tile whose demand the message concerns: the
	// original requester for requests and data, the acker for acks.
	Requester noc.NodeID
	// Version is the line's write-serial number; data-carrying messages
	// transport it and the coherence checkers validate it.
	Version uint64
	// Epoch tags Inv/InvAck/InvAckData so that acknowledgments from stale
	// invalidation episodes are discarded.
	Epoch uint32
	// NeedPush, on GetS, is the requester's push-pause feedback bit
	// (§III-D); false asks the home to exclude the requester from pushes.
	NeedPush bool
	// Reset, on data responses, tells the receiving L2 to clear its
	// TPC/UPC counters (push-resume knob).
	Reset bool
	// Prefetch marks GetS messages issued by a prefetcher rather than a
	// demand miss.
	Prefetch bool
	// Recall marks an Inv targeting the line's owner (the directory needs
	// the data back). A private cache that receives a recall while its
	// DataM is still in flight must wait for the data, use it once, and
	// only then reply with InvAckData — otherwise the recall would strand
	// the directory waiting for data that never comes.
	Recall bool
	// Private marks a DataS response to a line with no other sharer: the
	// MESI-class machines the paper models would have returned Exclusive
	// data, so traffic accounting classifies these as exclusive rather
	// than read-shared.
	Private bool

	// refs counts packets currently carrying this message (the original
	// plus router replicas); the network pools the message again when the
	// last carrier dies. See noc.RefPayload. Mutated with atomic ops (not
	// declared atomic.Int32 so whole-message copies stay legal): a multicast's
	// replicas can be delivered to receivers in different parallel lanes,
	// whose Release calls may race. No other Msg field is written after the
	// message is handed to the network.
	refs int32
}

// AddRef implements noc.RefPayload.
func (m *Msg) AddRef() { atomic.AddInt32(&m.refs, 1) }

// Release implements noc.RefPayload.
func (m *Msg) Release() bool { return atomic.AddInt32(&m.refs, -1) == 0 }

// String implements fmt.Stringer.
func (m *Msg) String() string {
	return fmt.Sprintf("%v{addr=%#x req=%d ver=%d ep=%d}", m.Type, m.Addr, m.Requester, m.Version, m.Epoch)
}

// route returns the virtual network, traffic class, and whether the message
// is line-data-sized for each message type.
func route(t MsgType) (vnet int, class stats.Class, data bool) {
	switch t {
	case GetS:
		return noc.VNetReq, stats.ClassReadRequest, false
	case GetM:
		return noc.VNetReq, stats.ClassOther, false
	case MemRead:
		return noc.VNetReq, stats.ClassOther, false
	case Inv, WBAck:
		return noc.VNetCtrl, stats.ClassOther, false
	case InvAck:
		return noc.VNetData, stats.ClassOther, false
	case InvAckData:
		return noc.VNetData, stats.ClassWriteBackData, true
	case PutM:
		return noc.VNetData, stats.ClassWriteBackData, true
	case DataS:
		return noc.VNetData, stats.ClassReadSharedData, true
	case DataM:
		return noc.VNetData, stats.ClassExclusiveData, true
	case PushData:
		return noc.VNetData, stats.ClassPushData, true
	case PushAck:
		return noc.VNetData, stats.ClassPushAck, false
	case MemWrite:
		return noc.VNetData, stats.ClassOther, true
	case MemData:
		return noc.VNetData, stats.ClassOther, true
	}
	panic(fmt.Sprintf("coherence: unroutable message type %d", t))
}

// Packet wraps the message in a NoC packet addressed to dests. The NoC
// config determines data packet sizing; srcUnit/dstUnit select endpoint
// kinds at the source and destination tiles.
func (m *Msg) Packet(cfg noc.Config, srcUnit, dstUnit stats.Unit, dests noc.DestSet) *noc.Packet {
	p := &noc.Packet{}
	m.FillPacket(p, cfg, srcUnit, dstUnit, dests)
	return p
}

// FillPacket wraps the message into an existing (zeroed) packet, typically
// one drawn from the network's free list via NI.NewPacket. Fields are set
// individually so the packet's pool bookkeeping is left untouched.
func (m *Msg) FillPacket(p *noc.Packet, cfg noc.Config, srcUnit, dstUnit stats.Unit, dests noc.DestSet) {
	vnet, class, data := route(m.Type)
	if m.Type == DataS && m.Private {
		class = stats.ClassExclusiveData
	}
	size := cfg.CtrlPacketSize()
	if data {
		size = cfg.DataPacketSize()
	}
	p.VNet = vnet
	p.Class = class
	p.SrcUnit = srcUnit
	p.DstUnit = dstUnit
	p.Dests = dests
	p.Addr = m.Addr
	p.Size = size
	p.Payload = m
	p.IsPush = m.Type == PushData
	p.Filterable = m.Type == GetS
	p.IsInv = m.Type == Inv
	p.Requester = m.Requester
	// Attaching to a packet is the message's first carrier reference.
	atomic.AddInt32(&m.refs, 1)
}
