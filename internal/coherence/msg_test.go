package coherence

import (
	"testing"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/stats"
)

func TestPacketRouting(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cases := []struct {
		typ   MsgType
		vnet  int
		class stats.Class
		size  int
	}{
		{GetS, noc.VNetReq, stats.ClassReadRequest, 1},
		{GetM, noc.VNetReq, stats.ClassOther, 1},
		{MemRead, noc.VNetReq, stats.ClassOther, 1},
		{Inv, noc.VNetCtrl, stats.ClassOther, 1},
		{WBAck, noc.VNetCtrl, stats.ClassOther, 1},
		{InvAck, noc.VNetData, stats.ClassOther, 1},
		{InvAckData, noc.VNetData, stats.ClassWriteBackData, 5},
		{PutM, noc.VNetData, stats.ClassWriteBackData, 5},
		{DataS, noc.VNetData, stats.ClassReadSharedData, 5},
		{DataM, noc.VNetData, stats.ClassExclusiveData, 5},
		{PushData, noc.VNetData, stats.ClassPushData, 5},
		{PushAck, noc.VNetData, stats.ClassPushAck, 1},
		{MemWrite, noc.VNetData, stats.ClassOther, 5},
		{MemData, noc.VNetData, stats.ClassOther, 5},
	}
	for _, c := range cases {
		m := &Msg{Type: c.typ, Addr: 0x1000, Requester: 3}
		p := m.Packet(cfg, stats.UnitL2, stats.UnitLLC, noc.OneDest(5))
		if p.VNet != c.vnet {
			t.Errorf("%v: vnet = %d, want %d", c.typ, p.VNet, c.vnet)
		}
		if p.Class != c.class {
			t.Errorf("%v: class = %v, want %v", c.typ, p.Class, c.class)
		}
		if p.Size != c.size {
			t.Errorf("%v: size = %d, want %d", c.typ, p.Size, c.size)
		}
		if p.Addr != 0x1000 || p.Requester != 3 {
			t.Errorf("%v: addr/requester not propagated", c.typ)
		}
	}
}

func TestPacketFlags(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	push := (&Msg{Type: PushData}).Packet(cfg, stats.UnitLLC, stats.UnitL2, noc.OneDest(1))
	if !push.IsPush || push.Filterable || push.IsInv {
		t.Errorf("push flags wrong: %+v", push)
	}
	gets := (&Msg{Type: GetS}).Packet(cfg, stats.UnitL2, stats.UnitLLC, noc.OneDest(1))
	if !gets.Filterable || gets.IsPush {
		t.Errorf("GetS flags wrong: %+v", gets)
	}
	inv := (&Msg{Type: Inv}).Packet(cfg, stats.UnitLLC, stats.UnitL2, noc.OneDest(1))
	if !inv.IsInv {
		t.Errorf("Inv flags wrong: %+v", inv)
	}
}

func TestPrivateDataSClassifiedExclusive(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	p := (&Msg{Type: DataS, Private: true}).Packet(cfg, stats.UnitLLC, stats.UnitL2, noc.OneDest(1))
	if p.Class != stats.ClassExclusiveData {
		t.Errorf("sole-sharer DataS class = %v, want ExclusiveData", p.Class)
	}
}

func TestDataPacketSizeTracksLinkWidth(t *testing.T) {
	cfg := noc.DefaultConfig(4, 4)
	cfg.LinkWidthBits = 512
	p := (&Msg{Type: DataS}).Packet(cfg, stats.UnitLLC, stats.UnitL2, noc.OneDest(1))
	if p.Size != 2 {
		t.Errorf("512-bit data packet = %d flits, want 2", p.Size)
	}
}

func TestMsgStrings(t *testing.T) {
	for typ := MsgType(0); typ < NumMsgTypes; typ++ {
		if typ.String() == "Unknown" {
			t.Errorf("type %d unnamed", typ)
		}
	}
	m := &Msg{Type: GetS, Addr: 0x40, Requester: 2, Version: 3, Epoch: 4}
	if s := m.String(); s == "" {
		t.Error("empty Msg string")
	}
}
