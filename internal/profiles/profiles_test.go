package profiles

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesAllProfiles is the smoke test for the shared profiling
// surface behind the commands' -cpuprofile/-memprofile/-exectrace flags:
// arming all three, doing some work, and stopping must leave three
// non-empty files, and a second stop call must be harmless.
func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	stop, err := Start(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate and spin a little so every profiler has something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	stop()
	stop() // idempotent: commands call it both deferred and on exit paths
	for _, f := range []string{cpu, mem, tr} {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s not written: %v", f, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
}

// TestStartEmptyPathsIsNoOp pins the default: no flags, no files, no error.
func TestStartEmptyPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

// TestStartBadPathFails pins the error contract: an uncreatable profile path
// must surface as an error at Start, not a silent profile loss at exit.
func TestStartBadPathFails(t *testing.T) {
	if _, err := Start("/no/such/dir/cpu.pprof", "", ""); err == nil {
		t.Fatal("Start accepted an uncreatable cpuprofile path")
	}
}
