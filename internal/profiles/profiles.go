// Package profiles arms the standard Go profilers behind three optional
// file paths, shared by the command-line front ends (cmd/bench,
// cmd/pushsim). It exists so every command exposes the same -cpuprofile /
// -memprofile / -exectrace contract without duplicating the start/flush
// choreography.
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start arms the requested profilers: a CPU profile and a runtime execution
// trace begin immediately; an allocation profile is snapshotted by the stop
// function (after a forced GC, so live objects are settled). Empty paths
// skip the corresponding profiler. The returned stop function flushes and
// closes everything and is safe to call more than once — callers that exit
// through os.Exit must call it explicitly, since deferred calls do not run.
func Start(cpuFile, memFile, traceFile string) (func(), error) {
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		stops = nil
	}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			stop()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return nil, err
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	if memFile != "" {
		stops = append(stops, func() {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		})
	}
	return stop, nil
}
