package core

import (
	"testing"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// tinyConfig returns a 4x4 system with caches scaled down to match
// ScaleTiny workload footprints.
func tinyConfig(sch config.Scheme) config.System {
	cfg := config.Default16().Scaled(16).WithScheme(sch)
	return cfg
}

func runTiny(t *testing.T, sch config.Scheme, wl workload.Workload, checkEvery uint64) Results {
	t.Helper()
	cfg := tinyConfig(sch)
	sys, err := Build(cfg, wl, workload.ScaleTiny)
	if err != nil {
		t.Fatalf("Build(%s/%s): %v", sch.Name, wl.Name, err)
	}
	res, err := sys.Run(checkEvery)
	if err != nil {
		t.Fatalf("Run(%s/%s): %v", sch.Name, wl.Name, err)
	}
	res.Workload = wl.Name
	if err := sys.Drain(100_000); err != nil {
		t.Fatalf("Drain(%s/%s): %v", sch.Name, wl.Name, err)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatalf("post-drain coherence (%s/%s): %v", sch.Name, wl.Name, err)
	}
	return res
}

func TestBaselineCachebwCompletes(t *testing.T) {
	res := runTiny(t, config.Baseline(), workload.CacheBW(), 64)
	if res.Cycles == 0 || res.Stats.Core.Instructions == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Stats.Cache.L2Misses == 0 {
		t.Error("cachebw should miss in the scaled L2")
	}
	if res.Stats.Net.TotalFlits() == 0 {
		t.Error("no NoC traffic recorded")
	}
}

func TestAllSchemesAllWorkloadsTiny(t *testing.T) {
	schemes := []config.Scheme{
		config.Baseline(), config.NoPrefetch(), config.Coalesce(), config.MSP(),
		config.PushAck(), config.OrdPush(),
		config.AblationPush(), config.AblationPushMulticast(),
		config.AblationPushMulticastFilter(),
	}
	if raceDetectorEnabled {
		// Every run here is a single-goroutine simulation, so the race
		// detector's ~15x slowdown buys nothing across the full matrix;
		// keep one representative of each protocol family and let the
		// non-race invocations cover all nine schemes.
		schemes = []config.Scheme{config.Baseline(), config.PushAck(), config.OrdPush()}
	}
	for _, wl := range workload.Registry() {
		for _, sch := range schemes {
			wl, sch := wl, sch
			t.Run(wl.Name+"/"+sch.Name, func(t *testing.T) {
				t.Parallel()
				res := runTiny(t, sch, wl, 256)
				if res.Stats.Core.Instructions == 0 {
					t.Fatal("no instructions retired")
				}
			})
		}
	}
}

// tortureStream mixes random loads and stores from every core over a tiny
// shared line set, maximizing push/write/writeback races.
type tortureStream struct {
	rng   uint64
	n     int
	limit int
}

func (s *tortureStream) Next() workload.Op {
	if s.n >= s.limit {
		return workload.Op{Kind: workload.OpEnd}
	}
	s.n++
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	r := s.rng >> 16
	line := (r % 48) * 64
	addr := workload.SharedBase() + line
	switch r % 7 {
	case 0:
		return workload.Op{Kind: workload.OpStore, Addr: addr}
	case 1:
		return workload.Op{Kind: workload.OpWork, N: int(r%13) + 1}
	default:
		return workload.Op{Kind: workload.OpLoad, Addr: addr}
	}
}

func tortureWorkload(limit int) workload.Workload {
	return workload.Workload{
		Name: "torture",
		Build: func(core, cores int, sc workload.Scale) workload.Stream {
			return &tortureStream{rng: uint64(core)*2654435761 + 12345, limit: limit}
		},
	}
}

// TestProtocolTorture drives random read/write races through every
// protocol variant with the coherence checker running every cycle.
func TestProtocolTorture(t *testing.T) {
	schemes := []config.Scheme{
		config.NoPrefetch(), config.Coalesce(), config.MSP(),
		config.PushAck(), config.OrdPush(),
		config.AblationPush(), config.AblationPushMulticast(),
		config.AblationPushMulticastFilter(),
	}
	for _, sch := range schemes {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			t.Parallel()
			res := runTiny(t, sch, tortureWorkload(600), 1)
			if res.Stats.Core.Stores == 0 {
				t.Fatal("torture produced no stores")
			}
		})
	}
}

// TestTortureSmallCache forces constant evictions (4-set L2) under every
// push protocol, stressing writeback races and deadlock-drop paths.
func TestTortureSmallCache(t *testing.T) {
	for _, sch := range []config.Scheme{config.PushAck(), config.OrdPush()} {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			t.Parallel()
			cfg := config.Default16().Scaled(64).WithScheme(sch)
			sys, err := Build(cfg, tortureWorkload(500), workload.ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(1); err != nil {
				t.Fatal(err)
			}
			if err := sys.Drain(100_000); err != nil {
				t.Fatal(err)
			}
			if err := sys.CheckCoherence(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPushesHappenUnderOrdPush(t *testing.T) {
	res := runTiny(t, config.OrdPush(), workload.CacheBW(), 0)
	if res.Stats.Cache.PushesTriggered == 0 {
		t.Fatal("cachebw under OrdPush should trigger pushes")
	}
	if res.Stats.Cache.TotalPushes() == 0 {
		t.Fatal("no pushes received at private caches")
	}
	useful := res.Stats.Cache.UsefulPushes()
	total := res.Stats.Cache.TotalPushes()
	if float64(useful) < 0.5*float64(total) {
		t.Errorf("cachebw push accuracy too low: %d/%d useful", useful, total)
	}
}

func TestOrdPushSavesTrafficOnCachebw(t *testing.T) {
	base := runTiny(t, config.NoPrefetch(), workload.CacheBW(), 0)
	ord := runTiny(t, config.OrdPush(), workload.CacheBW(), 0)
	if ord.TotalNoCFlits() >= base.TotalNoCFlits() {
		t.Errorf("OrdPush flits %d not below reactive baseline %d",
			ord.TotalNoCFlits(), base.TotalNoCFlits())
	}
}

func TestFilterPrunesRequestsOnCachebw(t *testing.T) {
	res := runTiny(t, config.OrdPush(), workload.CacheBW(), 0)
	if res.Stats.Net.FilteredRequests == 0 {
		t.Error("expected in-network filtered requests on cachebw")
	}
}

func TestMemoryVersionsConsistentAfterDrain(t *testing.T) {
	sch := config.OrdPush()
	cfg := tinyConfig(sch)
	sys, err := Build(cfg, tortureWorkload(400), workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(4); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	// Every store must be accounted for: the sum of line versions across
	// the coherent image (dir version or M owner's version) must equal the
	// number of stores performed.
	var total uint64
	seen := make(map[uint64]uint64)
	for _, l2 := range sys.L2s {
		l2.ForEachLine(func(l *cache.Line) {
			if l.State == cache.StateM && l.Version > seen[l.Tag] {
				seen[l.Tag] = l.Version
			}
		})
	}
	for _, llc := range sys.LLCs {
		llc.ForEachLine(func(l *cache.Line) {
			if l.Version > seen[l.Tag] {
				seen[l.Tag] = l.Version
			}
		})
	}
	for _, v := range seen {
		total += v
	}
	if total != sys.St.Core.Stores {
		t.Errorf("version sum %d != stores performed %d", total, sys.St.Core.Stores)
	}
}

func TestKnobDisablesPushesOnBFS(t *testing.T) {
	with := runTiny(t, config.OrdPush(), workload.BFS(), 0)
	without := runTiny(t, config.AblationPushMulticastFilter(), workload.BFS(), 0)
	if with.Stats.Cache.PausedPushRequests == 0 {
		t.Error("knob never paused pushing on bfs")
	}
	if without.Stats.Cache.PausedPushRequests != 0 {
		t.Error("knob-less scheme reported paused requests")
	}
}

func TestResultsMetrics(t *testing.T) {
	res := runTiny(t, config.Baseline(), workload.MV(), 0)
	if res.L2MPKI() <= 0 {
		t.Error("mv should have nonzero L2 MPKI")
	}
	if res.L1MPKI() <= 0 {
		t.Error("mv should have nonzero L1 MPKI")
	}
}

func TestPushAckGeneratesAcks(t *testing.T) {
	res := runTiny(t, config.PushAck(), workload.CacheBW(), 0)
	var acks uint64
	for u := stats.Unit(0); u < stats.NumUnits; u++ {
		acks += res.Stats.Net.InjectedPackets[u][stats.ClassPushAck]
	}
	if acks == 0 {
		t.Error("PushAck protocol produced no PushAck messages")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results { return runTiny(t, config.OrdPush(), workload.Multilevel(), 0) }
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.TotalNoCFlits() != b.TotalNoCFlits() ||
		a.Stats.Cache.PushesTriggered != b.Stats.Cache.PushesTriggered {
		t.Errorf("nondeterministic results: %v/%v flits %d/%d",
			a.Cycles, b.Cycles, a.TotalNoCFlits(), b.TotalNoCFlits())
	}
}

// Sanity: home slice mapping covers all tiles for consecutive lines.
func TestHomeSliceInterleaving(t *testing.T) {
	cfg := config.Default16()
	seen := map[noc.NodeID]bool{}
	for i := 0; i < 16; i++ {
		seen[cfg.HomeSlice(uint64(i*64))] = true
	}
	if len(seen) != 16 {
		t.Errorf("16 consecutive lines map to %d slices, want 16", len(seen))
	}
}
