package core

import (
	"testing"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/workload"
)

// driver wraps a coreless system for directed protocol scenarios.
type driver struct {
	t   *testing.T
	sys *System
}

func newDriver(t *testing.T, sch config.Scheme) *driver {
	t.Helper()
	cfg := tinyConfig(sch)
	sys, err := Build(cfg, workload.Workload{}, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return &driver{t: t, sys: sys}
}

func (d *driver) step(n int) {
	for i := 0; i < n; i++ {
		d.sys.Eng.Step()
	}
}

func (d *driver) load(core int, addr uint64) {
	d.t.Helper()
	if _, acc := d.sys.L2s[core].Load(addr, d.sys.Eng.Now()); !acc {
		d.t.Fatalf("load %#x at core %d not accepted", addr, core)
	}
}

func (d *driver) store(core int, addr uint64) {
	d.t.Helper()
	if _, acc := d.sys.L2s[core].Store(addr, d.sys.Eng.Now()); !acc {
		d.t.Fatalf("store %#x at core %d not accepted", addr, core)
	}
}

func (d *driver) state(core int, addr uint64) cache.State {
	st := cache.StateI
	d.sys.L2s[core].ForEachLine(func(l *cache.Line) {
		if l.Tag == addr {
			st = l.State
		}
	})
	return st
}

func (d *driver) dirState(addr uint64) (cache.State, noc.DestSet, uint64) {
	home := d.sys.Cfg.HomeSlice(addr)
	var st cache.State
	var sharers noc.DestSet
	var ver uint64
	d.sys.LLCs[home].ForEachLine(func(l *cache.Line) {
		if l.Tag == addr {
			st, sharers, ver = l.State, l.Sharers, l.Version
		}
	})
	return st, sharers, ver
}

func (d *driver) check() {
	d.t.Helper()
	if err := d.sys.CheckCoherence(); err != nil {
		d.t.Fatal(err)
	}
}

const lineX = uint64(1<<30) + 64

func TestReadSharedEstablishesSharers(t *testing.T) {
	d := newDriver(t, config.OrdPush())
	for c := 0; c < 4; c++ {
		d.load(c, lineX)
		d.step(300)
	}
	st, sharers, _ := d.dirState(lineX)
	if st != cache.StateLV || sharers.Count() != 4 {
		t.Fatalf("directory %v sharers=%b, want LV with 4 sharers", st, sharers)
	}
	for c := 0; c < 4; c++ {
		if s := d.state(c, lineX); s != cache.StateS {
			t.Fatalf("core %d in %v, want S", c, s)
		}
	}
	d.check()
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := newDriver(t, config.OrdPush())
	for c := 0; c < 3; c++ {
		d.load(c, lineX)
		d.step(300)
	}
	d.store(3, lineX)
	d.step(600)
	st, _, _ := d.dirState(lineX)
	if st != cache.StateLM {
		t.Fatalf("directory %v, want LM", st)
	}
	if s := d.state(3, lineX); s != cache.StateM {
		t.Fatalf("writer in %v, want M", s)
	}
	for c := 0; c < 3; c++ {
		if s := d.state(c, lineX); s != cache.StateI {
			t.Fatalf("old sharer %d in %v, want I", c, s)
		}
	}
	d.check()
}

func TestUpgradeFromShared(t *testing.T) {
	d := newDriver(t, config.OrdPush())
	d.load(2, lineX)
	d.step(300)
	d.store(2, lineX)
	d.step(600)
	if s := d.state(2, lineX); s != cache.StateM {
		t.Fatalf("upgrader in %v, want M", s)
	}
	_, _, ver := d.dirState(lineX)
	if ver != 0 {
		t.Fatalf("directory version %d before writeback, want 0", ver)
	}
	d.check()
}

func TestWriteAfterWriteMigratesOwnership(t *testing.T) {
	d := newDriver(t, config.OrdPush())
	d.store(0, lineX)
	d.step(600)
	d.store(1, lineX)
	d.step(800)
	if s := d.state(1, lineX); s != cache.StateM {
		t.Fatalf("second writer in %v, want M", s)
	}
	if s := d.state(0, lineX); s != cache.StateI {
		t.Fatalf("first writer in %v, want I", s)
	}
	// Recall carried the first writer's version (1 store) to the second.
	d.load(1, lineX)
	d.step(100)
	d.check()
}

func TestReadAfterWriteObservesNewVersion(t *testing.T) {
	d := newDriver(t, config.OrdPush())
	d.store(0, lineX)
	d.step(600)
	d.load(5, lineX)
	d.step(800)
	if s := d.state(5, lineX); s != cache.StateS {
		t.Fatalf("reader in %v, want S", s)
	}
	_, _, ver := d.dirState(lineX)
	if ver != 1 {
		t.Fatalf("directory version %d after recall, want 1", ver)
	}
	d.check()
}

func TestPushAckPStateBlocksWrite(t *testing.T) {
	d := newDriver(t, config.PushAck())
	// Establish sharers 0..2, evict X from core 0, re-reference to push.
	for c := 0; c < 3; c++ {
		d.load(c, lineX)
		d.step(300)
	}
	sets := uint64(d.sys.Cfg.L2Size / d.sys.Cfg.LineSize / d.sys.Cfg.L2Ways)
	for k := uint64(1); k <= 18; k++ {
		d.load(0, lineX+k*sets*64)
		d.step(200)
	}
	d.load(0, lineX) // triggers a push; directory enters P
	// Write from core 3 races the push; it must not complete before every
	// PushAck arrives, and coherence must hold throughout.
	d.store(3, lineX)
	for i := 0; i < 40; i++ {
		d.step(20)
		d.check()
	}
	if s := d.state(3, lineX); s != cache.StateM {
		t.Fatalf("writer in %v after drain, want M", s)
	}
	if d.sys.St.Cache.PushesTriggered == 0 {
		t.Fatal("no push was triggered")
	}
	d.check()
}

func TestLLCEvictionBackInvalidatesSharers(t *testing.T) {
	d := newDriver(t, config.NoPrefetch())
	// Fill one LLC set of X's home slice with sharer-held lines, then
	// force an eviction by touching more lines mapping to the same set.
	home := d.sys.Cfg.HomeSlice(lineX)
	slices := uint64(d.sys.Cfg.Tiles())
	llcSets := uint64(d.sys.Cfg.LLCSliceSize / d.sys.Cfg.LineSize / d.sys.Cfg.LLCWays)
	stride := llcSets * slices * 64 // same slice, same LLC set
	d.load(1, lineX)
	d.step(400)
	if st, _, _ := d.dirState(lineX); st != cache.StateLV {
		t.Fatalf("precondition: dir %v", st)
	}
	for k := uint64(1); k <= 18; k++ {
		d.load(2, lineX+k*stride)
		d.step(400)
	}
	// X must eventually be evicted from the LLC; its sharer copy at core 1
	// must be gone too (inclusive back-invalidation).
	if st, _, _ := d.dirState(lineX); st != cache.StateI && st != cache.StateLFetch {
		// The line may legitimately survive if LRU kept it; force checks
		// only when gone.
		t.Skipf("LLC kept X (state %v); eviction not exercised", st)
	}
	if s := d.state(1, lineX); s != cache.StateI {
		t.Fatalf("sharer copy survived LLC eviction: %v", s)
	}
	d.check()
	_ = home
}

func TestSilentEvictionLeavesStaleSharer(t *testing.T) {
	// The directory sharer list is a conservative superset after silent S
	// eviction — the property push speculation relies on.
	d := newDriver(t, config.OrdPush())
	d.load(0, lineX)
	d.step(300)
	sets := uint64(d.sys.Cfg.L2Size / d.sys.Cfg.LineSize / d.sys.Cfg.L2Ways)
	for k := uint64(1); k <= 18; k++ {
		d.load(0, lineX+k*sets*64)
		d.step(200)
	}
	if s := d.state(0, lineX); s != cache.StateI {
		t.Fatalf("line not silently evicted: %v", s)
	}
	_, sharers, _ := d.dirState(lineX)
	if !sharers.Has(0) {
		t.Fatal("directory dropped the silent-evictor from the sharer list")
	}
	d.check()
}

func TestPushInstallLeavesCleanCache(t *testing.T) {
	d := newDriver(t, config.OrdPush())
	d.load(0, lineX)
	d.step(300)
	d.load(1, lineX)
	d.step(300)
	sets := uint64(d.sys.Cfg.L2Size / d.sys.Cfg.LineSize / d.sys.Cfg.L2Ways)
	for k := uint64(1); k <= 18; k++ {
		d.load(1, lineX+k*sets*64)
		d.step(200)
	}
	d.load(1, lineX) // re-reference triggers push to {0,1}
	d.step(600)
	if err := d.sys.Drain(50_000); err != nil {
		t.Fatal(err)
	}
	d.check()
}
