//go:build race

package core

// raceDetectorEnabled reports whether this test binary was built with -race.
// Heavy all-serial test matrices trim themselves under the race detector:
// its ~15x slowdown buys no coverage on single-goroutine simulations, and
// the full matrices still run in every non-race invocation.
const raceDetectorEnabled = true
