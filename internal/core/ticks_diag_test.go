package core

import (
	"testing"

	"pushmulticast/internal/config"
	"pushmulticast/internal/workload"
)

// TestSparseTicksFewerThanDense checks the wake-driven scheduler's reason to
// exist: it must finish in the same number of simulated cycles as the dense
// reference kernel while executing strictly fewer component ticks (quiescent
// components are skipped instead of no-op ticked).
func TestSparseTicksFewerThanDense(t *testing.T) {
	for _, name := range []string{"Baseline", "OrdPush"} {
		cfg := config.Default16().Scaled(16)
		if name == "OrdPush" {
			cfg = cfg.WithScheme(config.OrdPush())
		} else {
			cfg = cfg.WithScheme(config.Baseline())
		}
		wl, err := workload.ByName("cachebw")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := Build(cfg, wl, workload.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			t.Fatal(err)
		}
		sparse, cyc := sys.Eng.Ticks(), sys.Eng.Now()

		cfg.DenseKernel = true
		sys2, err := Build(cfg, wl, workload.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys2.Run(0); err != nil {
			t.Fatal(err)
		}
		dense, cyc2 := sys2.Eng.Ticks(), sys2.Eng.Now()

		t.Logf("%s: cycles=%d sparse ticks=%d dense ticks=%d ratio=%.2f",
			name, cyc, sparse, dense, float64(dense)/float64(sparse))
		if cyc != cyc2 {
			t.Errorf("%s: sparse finished at cycle %d, dense at %d", name, cyc, cyc2)
		}
		if sparse >= dense {
			t.Errorf("%s: sparse executed %d ticks, dense %d — scheduler skipped nothing", name, sparse, dense)
		}
	}
}
