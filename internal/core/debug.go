package core

import "io"

// DebugDump writes all in-flight protocol state (every L2's MSHRs and
// writeback buffer, every LLC slice's episodes, fetches, and stall lists)
// for diagnosing deadlocks.
func (s *System) DebugDump(w io.Writer) {
	for _, l2 := range s.L2s {
		l2.DumpState(w)
	}
	for _, llc := range s.LLCs {
		llc.DumpState(w)
	}
}
