package core

import (
	"context"
	"fmt"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
	"pushmulticast/internal/workload"
)

// Fingerprint derives the two configuration identities embedded in every
// snapshot header. The strict fingerprint identifies simulated machine state
// exactly: a restore whose target differs in it refuses loudly. Kernel
// selection and observability settings (dense/parallel executor, checker,
// trace ring size) are excluded — the kernels produce byte-identical state
// by contract, and tracer/checker presence is enforced separately by
// explicit flags in the snapshot body.
//
// The fork fingerprint additionally wipes the tuning knobs a warm-start
// sweep varies (pause/resume thresholds and window, coalescing window, MSHR
// and transport retry timers): configurations that differ only in those
// knobs share a fork fingerprint, so one warmed snapshot can seed the whole
// sweep. A fork-restore still transfers state exactly — the approximation is
// that the warm-up phase executed under the donor's knob values, which the
// warm-start methodology notes document.
func Fingerprint(cfg config.System, wlName string, sc workload.Scale) (strict, fork string) {
	n := cfg
	n.DenseKernel = false
	n.ParallelWorkers = 0
	n.ParallelThreshold = 0
	n.Check = false
	n.CheckEvery = 0
	n.TraceN = 0
	// The plan pointer is dereferenced: formatting the address would make
	// the fingerprint unstable across processes and alias nothing usefully.
	faults := ""
	if n.Faults != nil {
		faults = fmt.Sprintf("%+v", *n.Faults)
	}
	n.Faults = nil
	strict = fmt.Sprintf("cfg{%+v} faults{%s} wl{%s} scale{%v}", n, faults, wlName, sc)
	f := n
	f.TPCThreshold = 0
	f.TimeWindow = 0
	f.KnobRatioShift = 0
	f.CoalesceWindow = 0
	f.MSHRRetryTimeout = 0
	f.NoC.RetryWindow = 0
	f.NoC.RetryTimeout = 0
	f.NoC.MaxRetries = 0
	fork = fmt.Sprintf("cfg{%+v} faults{%s} wl{%s} scale{%v}", f, faults, wlName, sc)
	return strict, fork
}

// Snapshot serializes the full machine state at the current cycle barrier
// (between engine Steps, never from inside a tick) into a versioned binary
// snapshot. The lane stats shards and fault-injector accumulators are folded
// into the primary bundle first — the merge is linear and zeroes its
// sources, so the second merge at run completion cannot double-count.
// Identical machine states serialize to byte-identical snapshots (every map
// is written in sorted key order), which makes snapshot.Hash of the result a
// valid run identity.
func (s *System) Snapshot() ([]byte, error) {
	if s.Checker != nil {
		if err := s.Checker.Err(); err != nil {
			return nil, fmt.Errorf("core: snapshot of a run with a pending violation: %w", err)
		}
	}
	s.mergeLaneStats()
	strict, fork := Fingerprint(s.Cfg, s.wlName, s.scale)
	w := snapshot.NewWriter(strict, fork, uint64(s.Eng.Now()))
	s.Eng.SaveState(w)
	s.St.SaveState(w)
	s.Net.SaveState(w, coherence.Codec{})
	for i := range s.L2s {
		s.L2s[i].SaveState(w)
		if len(s.Cores) > 0 {
			s.Cores[i].SaveState(w)
		}
		w.Bool(s.bingos[i] != nil)
		if s.bingos[i] != nil {
			s.bingos[i].SaveState(w)
		}
		w.Bool(s.strides[i] != nil)
		if s.strides[i] != nil {
			s.strides[i].SaveState(w)
		}
		s.LLCs[i].SaveState(w)
	}
	if len(s.Cores) > 0 {
		s.barrier.SaveState(w, s.Cores)
	}
	for _, mc := range s.Cfg.MemControllers() {
		s.Mems[mc].SaveState(w)
	}
	w.Bool(s.inj != nil)
	if s.inj != nil {
		s.inj.SaveState(w)
	}
	w.Bool(s.Tracer != nil)
	if s.Tracer != nil {
		s.Tracer.SaveState(w)
	}
	w.Bool(s.Checker != nil)
	if s.Checker != nil {
		s.Checker.SaveState(w)
	}
	return w.Finish(), nil
}

// Restore builds a fresh machine for (cfg, wl, sc) and loads the snapshot
// into it. The restoring configuration must match the snapshot's strict
// fingerprint — or, failing that, its fork fingerprint, meaning the target
// differs from the donor only in warm-start tuning knobs. Anything else
// refuses with ErrMismatch before any state is touched. A strict restore
// continued to completion is byte-identical (same trace hash) to a cold run
// that never snapshotted.
func Restore(data []byte, cfg config.System, wl workload.Workload, sc workload.Scale) (*System, error) {
	strict, fork := Fingerprint(cfg, wl.Name, sc)
	r, err := snapshot.NewReader(data)
	if err != nil {
		return nil, err
	}
	hdr := r.Header()
	if hdr.StrictFP != strict && hdr.ForkFP != fork {
		return nil, fmt.Errorf("%w: snapshot was taken under a different machine configuration (only the identical config, or a fork differing in tuning knobs alone, can restore it)",
			snapshot.ErrMismatch)
	}
	s, err := Build(cfg, wl, sc)
	if err != nil {
		return nil, err
	}
	if err := s.load(r); err != nil {
		return nil, err
	}
	return s, nil
}

// load applies the snapshot sections in Snapshot's write order.
func (s *System) load(r *snapshot.Reader) error {
	if err := s.Eng.LoadState(r); err != nil {
		return err
	}
	if err := s.St.LoadState(r); err != nil {
		return err
	}
	if err := s.Net.LoadState(r, coherence.Codec{}); err != nil {
		return err
	}
	for i := range s.L2s {
		if err := s.L2s[i].LoadState(r); err != nil {
			return err
		}
		if len(s.Cores) > 0 {
			if err := s.Cores[i].LoadState(r); err != nil {
				return err
			}
		}
		if err := s.loadOptional(r, fmt.Sprintf("tile %d Bingo prefetcher", i), s.bingos[i] != nil, func() error {
			return s.bingos[i].LoadState(r)
		}); err != nil {
			return err
		}
		if err := s.loadOptional(r, fmt.Sprintf("tile %d stride prefetcher", i), s.strides[i] != nil, func() error {
			return s.strides[i].LoadState(r)
		}); err != nil {
			return err
		}
		if err := s.LLCs[i].LoadState(r); err != nil {
			return err
		}
	}
	if len(s.Cores) > 0 {
		if err := s.barrier.LoadState(r, s.Cores); err != nil {
			return err
		}
	}
	for _, mc := range s.Cfg.MemControllers() {
		if err := s.Mems[mc].LoadState(r); err != nil {
			return err
		}
	}
	if err := s.loadOptional(r, "fault injector", s.inj != nil, func() error {
		return s.inj.LoadState(r)
	}); err != nil {
		return err
	}
	if err := s.loadOptional(r, "tracer", s.Tracer != nil, func() error {
		return s.Tracer.LoadState(r)
	}); err != nil {
		return err
	}
	if err := s.loadOptional(r, "checker", s.Checker != nil, func() error {
		return s.Checker.LoadState(r)
	}); err != nil {
		return err
	}
	return r.Err()
}

// loadOptional reads an optional component's presence flag and, when present
// on both sides, its state. Presence must agree: a snapshot that tracked
// state the restoring build lacks (or vice versa) cannot resume faithfully.
func (s *System) loadOptional(r *snapshot.Reader, what string, have bool, load func() error) error {
	saved := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if saved != have {
		return fmt.Errorf("%w: %s presence differs (snapshot %v, this build %v)",
			snapshot.ErrMismatch, what, saved, have)
	}
	if have {
		return load()
	}
	return nil
}

// RunTo executes the workload until the engine clock reaches the barrier
// cycle, or the run's normal stopping condition fires first. The predicate
// is exactly Run's plus the clock bound, and it is side-effect-free on
// machine state, so a run paused at a barrier is state-identical to the same
// cycle of a run that never pauses. The wake-driven kernel may fast-forward
// past the barrier when every component sleeps across it; callers snapshot
// at the actual stop cycle (Eng.Now()), which a cold run reaches with
// identical state either way. Results are NOT harvested here —
// St.Core.Cycles and the instruction/stall totals accrue only in Run at
// final completion, so a pause-snapshot-continue sequence cannot
// double-count them.
func (s *System) RunTo(barrier sim.Cycle, checkEvery uint64) error {
	return s.RunToCtx(context.Background(), barrier, checkEvery)
}

// RunToCtx is RunTo with cooperative cancellation, polled at cycle barriers
// exactly like RunCtx: a fired context stops the machine loop promptly with a
// wrapped ErrCanceled instead of running to the pause barrier at full cost.
func (s *System) RunToCtx(ctx context.Context, barrier sim.Cycle, checkEvery uint64) error {
	defer func() {
		if r := recover(); r != nil {
			s.DumpTrace()
			panic(r)
		}
	}()
	var checkErr error
	barriers := uint64(0)
	finished := func() bool {
		if barriers++; barriers%cancelCheckPeriod == 0 && ctx.Err() != nil {
			checkErr = canceledAt(ctx, s.Eng.Now())
			return true
		}
		if s.Checker != nil && s.Checker.Err() != nil {
			checkErr = s.Checker.Err()
			return true
		}
		if err := s.Net.Unrecoverable(); err != nil {
			checkErr = err
			return true
		}
		if s.Cfg.Faults.Lossy() {
			for _, l2 := range s.L2s {
				if err := l2.Unrecoverable(); err != nil {
					checkErr = err
					return true
				}
			}
		}
		if checkEvery != 0 && uint64(s.Eng.Now())%checkEvery == 0 {
			if err := s.CheckCoherence(); err != nil {
				checkErr = err
				return true
			}
		}
		for _, c := range s.Cores {
			if !c.Finished() {
				return false
			}
		}
		return true
	}
	_, err := s.Eng.Run(func() bool { return s.Eng.Now() >= barrier || finished() })
	s.Eng.Close() // idle the worker pool; the continuing Run respawns it
	s.mergeLaneStats()
	if checkErr == nil && s.Checker != nil {
		checkErr = s.Checker.Err()
	}
	if checkErr != nil {
		s.DumpTrace()
		return checkErr
	}
	if err != nil {
		s.DumpTrace()
		return fmt.Errorf("%s/%s: %w", s.Cfg.Scheme.Name, "run-to", err)
	}
	return nil
}
