package core

import (
	"testing"

	"pushmulticast/internal/config"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// TestDirectedPushTrigger drives two L2s directly: both read line X (sharer
// establishment), core 0 silently evicts it via conflict fills, then
// re-reads X. The re-reference must trigger exactly one push multicast to
// both sharers, with core 1's copy dropped as redundant.
func TestDirectedPushTrigger(t *testing.T) {
	cfg := tinyConfig(config.OrdPush())
	sys, err := Build(cfg, workload.Workload{}, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	step := func(n int) {
		for i := 0; i < n; i++ {
			sys.Eng.Step()
		}
	}
	X := uint64(1 << 30)
	if _, acc := sys.L2s[0].Load(X, sys.Eng.Now()); !acc {
		t.Fatal("load not accepted")
	}
	step(300)
	if _, acc := sys.L2s[1].Load(X, sys.Eng.Now()); !acc {
		t.Fatal("load not accepted")
	}
	step(300)
	// Conflict-evict X from L2[0]: the L2 set repeats every sets*ways
	// lines within the same home slice when stepping by sets*lineSize*
	// slices... simply step by L2-set aliasing stride times tile count so
	// home slices differ from X's but L2 sets collide.
	sets := uint64(cfg.L2Size / cfg.LineSize / cfg.L2Ways)
	for k := uint64(1); k <= 20; k++ {
		addr := X + k*sets*uint64(cfg.LineSize)
		sys.L2s[0].Load(addr, sys.Eng.Now())
		step(300)
	}
	sys.L2s[0].Load(X, sys.Eng.Now())
	step(500)
	if sys.St.Cache.PushesTriggered != 1 {
		t.Fatalf("expected exactly 1 push trigger, got %d", sys.St.Cache.PushesTriggered)
	}
	if sys.St.Cache.PushDestinations != 2 {
		t.Fatalf("push should cover both sharers, got %d dests", sys.St.Cache.PushDestinations)
	}
	if sys.St.Cache.PushOutcomes[stats.PushRedundancyDrop] != 1 {
		t.Fatalf("core 1 still holds the line; expected 1 redundancy drop, got %v", sys.St.Cache.PushOutcomes)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestKnobPausesOnInaccuratePushes checks the full pause loop on bfs: low
// push usefulness must flip need_push off at most private caches.
func TestKnobPausesOnInaccuratePushes(t *testing.T) {
	cfg := tinyConfig(config.OrdPush())
	sys, err := Build(cfg, workload.BFS(), workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
	paused := 0
	for _, l2 := range sys.L2s {
		if _, _, need := l2.Knob(); !need {
			paused++
		}
	}
	if paused < len(sys.L2s)/2 {
		t.Errorf("only %d/%d caches paused pushing on bfs", paused, len(sys.L2s))
	}
	if sys.St.Cache.PausedPushRequests == 0 {
		t.Error("no requests carried need_push=false")
	}
}
