// Package core assembles the full simulated machine — cores, private cache
// stacks, LLC slices with directories, memory controllers, and the mesh NoC
// — for one (configuration, workload) pair, runs it to completion, and
// harvests results. It also hosts the global coherence invariant checker
// used throughout the test suite.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/check"
	"pushmulticast/internal/config"
	"pushmulticast/internal/cpu"
	"pushmulticast/internal/fault"
	"pushmulticast/internal/memctrl"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/prefetch"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/trace"
	"pushmulticast/internal/workload"
)

// System is one fully wired simulated machine.
type System struct {
	Cfg   config.System
	Eng   *sim.Engine
	Net   *noc.Network
	St    *stats.All
	Cores []*cpu.Core
	L2s   []*cache.L2
	LLCs  []*cache.LLC
	Mems  map[noc.NodeID]*memctrl.Ctrl

	// Tracer and Checker are non-nil when the config enables tracing or
	// invariant checking (cfg.TraceN / cfg.Check).
	Tracer  *trace.Tracer
	Checker *check.Monitor

	// laneSt holds the per-tile stats shards of the parallel executor (nil
	// for serial runs); mergeLaneStats folds them into St in lane order.
	laneSt []*stats.All
	// inj is the fault injector when the config schedules faults; its
	// per-node hook accumulators are flushed with the lane stats.
	inj *fault.Injector

	// Checkpoint/restore retains the build identity (workload name and
	// scale feed the config fingerprint) and the components Build would
	// otherwise not keep a handle on: the core barrier and the per-tile
	// prefetchers (nil where the tile has none). See snapshot.go.
	wlName  string
	scale   workload.Scale
	barrier *cpu.Barrier
	bingos  []*prefetch.Bingo
	strides []*prefetch.Stride
}

// Build wires a system running the given workload at the given scale.
// Passing a zero-value Workload builds the machine without cores (protocol
// tests drive the L2s directly).
func Build(cfg config.System, wl workload.Workload, sc workload.Scale) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if wl.Validate != nil {
		// Parameterized workloads (the collective family) check their knobs
		// against the machine's core count here, before any stream is built,
		// so every entry point — Run, RunWorkload, NewMachine, the harness —
		// rejects a degenerate combination with one diagnostic line instead
		// of building a lopsided or panicking stream.
		if err := wl.Validate(cfg.Tiles()); err != nil {
			return nil, err
		}
	}
	st := stats.New()
	eng := sim.NewEngine(200_000, 500_000_000)
	eng.SetDense(cfg.DenseKernel)
	parallel := cfg.ParallelWorkers > 1
	if parallel {
		eng.SetParallel(cfg.ParallelWorkers, cfg.ParallelThreshold)
	}
	// The fault injector registers before every other component so its
	// window-boundary wakes take effect in the same cycle (the engine ticks
	// mid-step wakes only from earlier-registered components).
	var inj *fault.Injector
	if cfg.Faults != nil && len(cfg.Faults.Faults) > 0 {
		inj = fault.NewInjector(*cfg.Faults, cfg.Tiles(), st)
		inj.Register(eng)
	}
	net, err := noc.New(cfg.NoC, eng, st)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		net.SetFaults(inj)
		inj.SetWaker(func(node int) { net.WakeTile(noc.NodeID(node)) })
	}
	s := &System{Cfg: cfg, Eng: eng, Net: net, St: st, Mems: make(map[noc.NodeID]*memctrl.Ctrl),
		inj: inj, wlName: wl.Name, scale: sc}

	tiles := cfg.Tiles()
	// In parallel mode tile i forms execution lane i: its NI, router, L2,
	// core, and LLC slice (plus a memory controller where present) tick on
	// one worker and account into a private stats shard, merged in lane
	// order later (see noc.Parallelize).
	tileSt := func(int) *stats.All { return st }
	if parallel {
		s.laneSt = make([]*stats.All, tiles)
		for i := range s.laneSt {
			s.laneSt[i] = stats.New()
			s.laneSt[i].DeferGaps = true
		}
		net.Parallelize(s.laneSt)
		tileSt = func(i int) *stats.All { return s.laneSt[i] }
	}
	barrier := cpu.NewBarrier(tiles)
	s.barrier = barrier
	for i := 0; i < tiles; i++ {
		id := noc.NodeID(i)
		ts := tileSt(i)
		var c *cpu.Core
		l2 := cache.NewL2(id, &s.Cfg, net, eng, ts, deferredRequestor{&c})
		s.L2s = append(s.L2s, l2)
		var bingo *prefetch.Bingo
		var stride *prefetch.Stride
		if wl.Build != nil {
			stream := wl.Build(i, tiles, sc)
			c = cpu.New(id, &s.Cfg, eng, ts, l2, stream, barrier)
			if cfg.Scheme.L1Bingo {
				bingo = prefetch.NewBingo(l2, cfg.BingoRegionBytes, cfg.BingoPHTEntries, cfg.LineSize)
				c.L1Prefetcher = bingo
			}
			s.Cores = append(s.Cores, c)
		}
		if cfg.Scheme.L2Stride {
			stride = prefetch.NewStride(l2, cfg.StrideStreams, cfg.StrideDegree)
		}
		s.bingos = append(s.bingos, bingo)
		s.strides = append(s.strides, stride)
		llc := cache.NewLLC(id, &s.Cfg, net, eng, ts)
		s.LLCs = append(s.LLCs, llc)
		if parallel {
			l2.Handle().SetLane(i)
			if c != nil {
				c.Handle().SetLane(i)
			}
			llc.Handle().SetLane(i)
		}
	}
	for _, mc := range cfg.MemControllers() {
		m := memctrl.New(mc, &s.Cfg, net, eng, tileSt(int(mc)))
		s.Mems[mc] = m
		if parallel {
			m.Handle().SetLane(int(mc))
		}
	}
	if cfg.Check || cfg.TraceN > 0 {
		ringN := cfg.TraceN
		if ringN == 0 {
			ringN = 256 // checker on without an explicit ring size: keep a useful tail
		}
		tr := trace.New(ringN)
		// Shard creation order is the drain order and must be deterministic:
		// NIs, routers (inside SetTracer), then LLC slices, then controllers.
		net.SetTracer(tr)
		for _, llc := range s.LLCs {
			llc.SetTraceShard(tr.NewShard())
		}
		for _, mc := range cfg.MemControllers() {
			s.Mems[mc].SetTraceShard(tr.NewShard())
		}
		s.Tracer = tr
		// The monitor registers last: the engine ticks in registration order,
		// so it drains the trace after every emitter within a cycle, in every
		// kernel mode (its untagged handle runs in the parallel kernel's
		// trailing serial segment).
		s.Checker = check.New(&s.Cfg, net, s.L2s, s.LLCs, s.CheckCoherence, tr)
		s.Checker.Register(eng)
	}
	if parallel && cfg.TraceSharerGaps {
		// Sharer-gap reservoir sampling is order-sensitive; lanes defer their
		// observations and the engine drains them into the primary bundle at
		// every cycle's end, in lane order — the order a serial run's LLC
		// ticks would have produced.
		eng.SetOnCycleEnd(func(sim.Cycle) {
			for _, ls := range s.laneSt {
				ls.DrainGapsInto(st)
			}
		})
	}
	return s, nil
}

// mergeLaneStats folds the per-lane stats shards into the primary bundle in
// lane order and zeroes the shards, so post-merge activity (a Drain after
// Run) accrues freshly and a later merge cannot double-count. The fault
// injector's per-node hook accumulators flush here too — same collection
// point, same no-double-count contract.
func (s *System) mergeLaneStats() {
	for _, ls := range s.laneSt {
		ls.DrainGapsInto(s.St)
		s.St.Add(ls)
		*ls = stats.All{SharerGaps: ls.SharerGaps, DeferGaps: true, GapLog: ls.GapLog[:0]}
	}
	if s.inj != nil {
		s.inj.FlushStats()
	}
}

// deferredRequestor lets the L2 be constructed before its core (the two
// reference each other).
type deferredRequestor struct{ c **cpu.Core }

func (d deferredRequestor) LoadDone(addr uint64, now sim.Cycle) {
	if *d.c != nil {
		(*d.c).LoadDone(addr, now)
	}
}

func (d deferredRequestor) StoreDone(addr uint64, now sim.Cycle) {
	if *d.c != nil {
		(*d.c).StoreDone(addr, now)
	}
}

func (d deferredRequestor) WakeUp() {
	if *d.c != nil {
		(*d.c).WakeUp()
	}
}

// Results summarizes one run.
type Results struct {
	// Scheme and Workload identify the run.
	Scheme   string
	Workload string
	// Cycles is the parallel-phase execution time: the cycle at which every
	// core finished.
	Cycles uint64
	// TraceHash and TraceEvents summarize the full causal event history
	// when tracing was enabled: the running FNV-1a hash over every trace
	// event in deterministic drain order, and the event count. Two runs
	// with equal (TraceHash, TraceEvents) produced identical histories —
	// the serial/dense/parallel equivalence oracle.
	TraceHash   uint64
	TraceEvents uint64
	// Stats is the full counter bundle.
	Stats *stats.All
	// Exec is the parallel executor's scheduling-work record (zero for
	// serial runs): sections, batch claims, and cross-goroutine handoffs
	// per cycle. The bench scaling curve reads it to attribute staging
	// overhead.
	Exec sim.ExecStats
}

// L2MPKI returns the paper's L2 miss-per-kilo-instruction metric (demand +
// prefetch misses).
func (r Results) L2MPKI() float64 { return r.Stats.MPKI(r.Stats.Cache.L2Misses) }

// L1MPKI returns L1 data misses per kilo-instruction.
func (r Results) L1MPKI() float64 { return r.Stats.MPKI(r.Stats.Cache.L1Misses) }

// TotalNoCFlits returns total link-level flit traversals.
func (r Results) TotalNoCFlits() uint64 { return r.Stats.Net.TotalFlits() }

// ErrCoherence wraps coherence invariant violations.
var ErrCoherence = errors.New("coherence violation")

// ErrCanceled is reported (wrapped, test with errors.Is) when a run's context
// is canceled: the machine loop stops at the next cancellation barrier and
// the abort carries a trace tail like every other abort path, instead of the
// simulation burning CPU to completion for a caller that is gone.
var ErrCanceled = errors.New("core: run canceled")

// cancelCheckPeriod is how many cycle barriers pass between context polls.
// The finished closure runs between every cycle; polling the context there
// would put a mutex acquisition on the per-cycle hot path, so cancellation is
// checked every cancelCheckPeriod cycles instead — still a few milliseconds
// of wall time even on a 256-core machine, and free when ctx has no deadline
// or cancel (Background's Done is nil).
const cancelCheckPeriod = 256

// canceledAt builds the ErrCanceled diagnostic for a context that fired.
func canceledAt(ctx context.Context, now sim.Cycle) error {
	return fmt.Errorf("%w at cycle %d: %v", ErrCanceled, now, context.Cause(ctx))
}

// Run executes the workload to completion and returns results. checkEvery,
// when nonzero, runs the coherence invariant checker every that many cycles
// (tests); violations abort the run.
func (s *System) Run(checkEvery uint64) (Results, error) {
	return s.RunCtx(context.Background(), checkEvery)
}

// RunCtx is Run with cooperative cancellation: the context is polled at cycle
// barriers (between cycles, on the coordinating goroutine, after any parallel
// section's commit), and a fired context aborts the run with a wrapped
// ErrCanceled and a trace tail. Determinism is unaffected — cancellation only
// decides where the run stops, never what any cycle computes.
func (s *System) RunCtx(ctx context.Context, checkEvery uint64) (Results, error) {
	defer func() {
		if r := recover(); r != nil {
			s.DumpTrace()
			panic(r)
		}
	}()
	var checkErr error
	barriers := uint64(0)
	finished := func() bool {
		if barriers++; barriers%cancelCheckPeriod == 0 && ctx.Err() != nil {
			checkErr = canceledAt(ctx, s.Eng.Now())
			return true
		}
		if s.Checker != nil && s.Checker.Err() != nil {
			checkErr = s.Checker.Err()
			return true
		}
		// A sender that exhausted its retransmissions can never be acked:
		// abort loudly with the wrapped ErrUnrecoverable and a trace tail
		// instead of letting the run spin until the watchdog fires. The
		// closure runs between cycles on the coordinator, after any parallel
		// section's barrier, so the lane-written verdicts are visible.
		if err := s.Net.Unrecoverable(); err != nil {
			checkErr = err
			return true
		}
		if s.Cfg.Faults.Lossy() {
			for _, l2 := range s.L2s {
				if err := l2.Unrecoverable(); err != nil {
					checkErr = err
					return true
				}
			}
		}
		if checkEvery != 0 && uint64(s.Eng.Now())%checkEvery == 0 {
			if err := s.CheckCoherence(); err != nil {
				checkErr = err
				return true
			}
		}
		for _, c := range s.Cores {
			if !c.Finished() {
				return false
			}
		}
		return true
	}
	end, err := s.Eng.Run(finished)
	s.Eng.Close() // idle the worker pool; a later Drain respawns it on demand
	s.mergeLaneStats()
	if checkErr == nil && s.Checker != nil {
		checkErr = s.Checker.Err()
	}
	if checkErr != nil {
		s.DumpTrace()
		return Results{}, checkErr
	}
	if err != nil {
		s.DumpTrace()
		if s.Cfg.Faults != nil && len(s.Cfg.Faults.Faults) > 0 {
			// An aborted fault run is a graceful-degradation contract breach,
			// not (only) a protocol bug; say so up front.
			return Results{}, fmt.Errorf("%s/%s (fault injection active): %w", s.Cfg.Scheme.Name, "run", err)
		}
		return Results{}, fmt.Errorf("%s/%s: %w", s.Cfg.Scheme.Name, "run", err)
	}
	s.St.Core.Cycles = uint64(end)
	for _, c := range s.Cores {
		s.St.Core.Instructions += c.Instructions()
		s.St.Core.StallCycles += c.StallCycles()
	}
	res := Results{Scheme: s.Cfg.Scheme.Name, Cycles: uint64(end), Stats: s.St, Exec: s.Eng.Exec()}
	if s.Tracer != nil {
		// A safety drain: the monitor ticks last within every cycle that
		// emits, so this is normally a no-op and never reorders history.
		s.Tracer.Drain(nil)
		res.TraceHash = s.Tracer.Hash()
		res.TraceEvents = s.Tracer.Events()
	}
	return res, nil
}

// DumpTrace writes the retained trace tail to stderr (violations,
// deadlocks, panics). A no-op when tracing is off.
func (s *System) DumpTrace() {
	if s.Tracer == nil {
		return
	}
	s.Tracer.Drain(nil)
	s.Tracer.Dump(os.Stderr)
}

// Drain runs the machine until the network and all controllers quiesce
// (post-run cleanliness checks in tests).
func (s *System) Drain(limit sim.Cycle) error {
	defer func() {
		s.Eng.Close()
		s.mergeLaneStats()
	}()
	start := s.Eng.Now()
	for !s.Quiescent() {
		if s.Eng.Now()-start > limit {
			// A drain timeout is a stall diagnosis like a watchdog fire; the
			// trace tail is the context that makes it debuggable.
			s.DumpTrace()
			return fmt.Errorf("system failed to drain within %d cycles", limit)
		}
		s.Eng.Step()
	}
	return nil
}

// Quiescent reports whether no transaction is in flight anywhere.
// Finished reports whether every core has retired its workload — the same
// termination condition the run loop checks at cycle barriers. A paused
// machine (RunTo) uses it to decide whether another slice remains.
func (s *System) Finished() bool {
	for _, c := range s.Cores {
		if !c.Finished() {
			return false
		}
	}
	return true
}

func (s *System) Quiescent() bool {
	if !s.Net.Quiescent() {
		return false
	}
	for _, l2 := range s.L2s {
		if l2.OutstandingTransactions() {
			return false
		}
	}
	for _, llc := range s.LLCs {
		if llc.OutstandingTransactions() {
			return false
		}
	}
	for _, m := range s.Mems {
		if !m.Idle() {
			return false
		}
	}
	return true
}

// CheckCoherence validates the Single-Writer-Multiple-Reader invariant and
// the data-value invariant over a global snapshot:
//
//   - at most one private cache holds a line in M;
//   - no private S copy coexists with an M copy;
//   - every stable private S copy (including the readable S data backing an
//     SM_D upgrade) matches the directory's current version whenever the
//     directory has no owner — the property a stale push would break;
//   - an M copy's version is never behind the directory's.
func (s *System) CheckCoherence() error {
	type copyInfo struct {
		tile    noc.NodeID
		state   cache.State
		version uint64
	}
	copies := make(map[uint64][]copyInfo)
	for _, l2 := range s.L2s {
		id := l2.ID()
		l2.ForEachLine(func(l *cache.Line) {
			switch l.State {
			case cache.StateS, cache.StateM, cache.StateSMD:
				copies[l.Tag] = append(copies[l.Tag], copyInfo{id, l.State, l.Version})
			}
		})
	}
	type dirInfo struct {
		state   cache.State
		version uint64
		owner   noc.NodeID
	}
	dirs := make(map[uint64]dirInfo)
	for _, llc := range s.LLCs {
		llc.ForEachLine(func(l *cache.Line) {
			dirs[l.Tag] = dirInfo{l.State, l.Version, l.Owner}
		})
	}
	for addr, cs := range copies {
		owners := 0
		readers := 0
		for _, c := range cs {
			if c.state == cache.StateM {
				owners++
			} else {
				readers++
			}
		}
		if owners > 1 {
			return fmt.Errorf("%w: line %#x has %d M owners", ErrCoherence, addr, owners)
		}
		if owners == 1 && readers > 0 {
			return fmt.Errorf("%w: line %#x has an M owner and %d S copies", ErrCoherence, addr, readers)
		}
		d, ok := dirs[addr]
		if !ok {
			return fmt.Errorf("%w: line %#x cached privately but absent from the LLC", ErrCoherence, addr)
		}
		if owners == 1 {
			for _, c := range cs {
				if c.state == cache.StateM && c.version < d.version {
					return fmt.Errorf("%w: line %#x M copy at tile %d behind directory (%d < %d)",
						ErrCoherence, addr, c.tile, c.version, d.version)
				}
			}
			continue
		}
		// No owner among the copies: S data must be current unless the
		// directory granted ownership elsewhere (then stale S copies would
		// be an SWMR violation outright). One legal exception: the new
		// owner's own line sits in SM_D (its S data still readable) in the
		// window between the ownership grant and the DataM delivery.
		if d.state == cache.StateLM || d.state == cache.StateLMInv {
			for _, c := range cs {
				if c.state == cache.StateSMD && c.tile == d.owner {
					continue
				}
				return fmt.Errorf("%w: line %#x has S copy at tile %d (%v) while directory in %v",
					ErrCoherence, addr, c.tile, c.state, d.state)
			}
		}
		for _, c := range cs {
			if c.version != d.version {
				return fmt.Errorf("%w: line %#x stale S copy at tile %d (version %d, directory %d)",
					ErrCoherence, addr, c.tile, c.version, d.version)
			}
		}
	}
	return nil
}
