// Package config defines the simulated system's configuration surface: the
// Table I machine parameters, the evaluated scheme lattice (baselines,
// PushAck/OrdPush, and the Fig 20 ablation points), and named presets for
// the paper's 16-core and 64-core systems.
package config

import (
	"fmt"

	"pushmulticast/internal/fault"
	"pushmulticast/internal/noc"
)

// Protocol selects how push/write races are serialized (§III-F).
type Protocol uint8

// Protocol variants.
const (
	// ProtoNone runs the plain MSI protocol (no pushes possible).
	ProtoNone Protocol = iota
	// ProtoPushAck adds the directory P (shared-push) semi-blocking state:
	// writes stall until every pushed sharer acknowledges.
	ProtoPushAck
	// ProtoOrdPush relies on in-network ordering: an invalidation stalls in
	// routers (and at the NI) behind a same-line push on its path.
	ProtoOrdPush
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoNone:
		return "MSI"
	case ProtoPushAck:
		return "PushAck"
	case ProtoOrdPush:
		return "OrdPush"
	}
	return "Unknown"
}

// Scheme is one evaluated design point.
type Scheme struct {
	// Name labels result rows.
	Name string
	// Push enables speculative pushes from the LLC on re-references.
	Push bool
	// Multicast sends one multicast push packet instead of per-sharer
	// unicast pushes (off for the MSP baseline and the Push ablation).
	Multicast bool
	// Filter enables in-network read-request pruning.
	Filter bool
	// Knob enables the dynamic pause/resume mechanism.
	Knob bool
	// Protocol selects the push/write serialization approach.
	Protocol Protocol
	// Coalesce enables LLC same-line request coalescing with a multicast
	// reply (the Coalesce baseline [38]).
	Coalesce bool
	// L1Bingo / L2Stride enable the baseline prefetchers.
	L1Bingo  bool
	L2Stride bool

	// PredictPush enables the §VI "General Push Multicast" extension: a
	// sharer predictor decoupled from the directory remembers the sharer
	// set of evicted LLC lines and triggers a push multicast when the line
	// is refetched from memory, extending pushes to LLC misses.
	PredictPush bool

	// PushFillL1 enables the §VI "Multi-Level Caches" extension: a push
	// accepted at the L2 is propagated into the L1 as well.
	PushFillL1 bool
}

// Evaluated schemes (§IV): the baseline carries the prefetchers; all other
// configurations run without hardware prefetching, as in the paper.
func Baseline() Scheme {
	return Scheme{Name: "L1Bingo-L2Stride", L1Bingo: true, L2Stride: true}
}

// NoPrefetch is a prefetcher-less reactive baseline (used by the Fig 20
// discussion of push overhead relative to a no-prefetch system).
func NoPrefetch() Scheme { return Scheme{Name: "NoPrefetch"} }

// Coalesce groups concurrent same-line LLC requests and multicasts one reply.
func Coalesce() Scheme { return Scheme{Name: "Coalescing", Coalesce: true} }

// MSP mimics the memory sharing predictor [41]: pushes without multicast,
// filtering, or dynamic control.
func MSP() Scheme {
	return Scheme{Name: "MSP", Push: true, Protocol: ProtoPushAck}
}

// PushAck is the full design under the push-acknowledgment protocol.
func PushAck() Scheme {
	return Scheme{Name: "PushAck", Push: true, Multicast: true, Filter: true,
		Knob: true, Protocol: ProtoPushAck}
}

// OrdPush is the full design under the ordered-network protocol.
func OrdPush() Scheme {
	return Scheme{Name: "OrdPush", Push: true, Multicast: true, Filter: true,
		Knob: true, Protocol: ProtoOrdPush}
}

// Fig 20 ablation lattice over OrdPush.
func AblationPush() Scheme {
	return Scheme{Name: "Push", Push: true, Protocol: ProtoOrdPush}
}

func AblationPushMulticast() Scheme {
	return Scheme{Name: "Push+Multicast", Push: true, Multicast: true, Protocol: ProtoOrdPush}
}

func AblationPushMulticastFilter() Scheme {
	return Scheme{Name: "Push+Multicast+Filter", Push: true, Multicast: true,
		Filter: true, Protocol: ProtoOrdPush}
}

func AblationFull() Scheme {
	s := OrdPush()
	s.Name = "Push+Multicast+Filter+Knob"
	return s
}

// PushPrefetch combines OrdPush with the baseline prefetchers — the §VI
// "Interplay of Push and Prefetch" exploration. Prefetch requests never
// trigger pushes; demand re-references still do.
func PushPrefetch() Scheme {
	s := OrdPush()
	s.Name = "OrdPush+Prefetch"
	s.L1Bingo = true
	s.L2Stride = true
	return s
}

// PredictivePush extends OrdPush with the decoupled sharer predictor (§VI
// "General Push Multicast"): pushes also fire on LLC-miss fills for lines
// whose pre-eviction sharer set is remembered.
func PredictivePush() Scheme {
	s := OrdPush()
	s.Name = "OrdPush+Predict"
	s.PredictPush = true
	return s
}

// DeepPush extends OrdPush by propagating accepted pushes into the L1 (§VI
// "Multi-Level Caches").
func DeepPush() Scheme {
	s := OrdPush()
	s.Name = "OrdPush+L1Fill"
	s.PushFillL1 = true
	return s
}

// System is the full machine configuration (Table I).
type System struct {
	// MeshW x MeshH tiles, one core + private L1/L2 + LLC slice per tile.
	MeshW, MeshH int

	// LineSize is the cache line size in bytes.
	LineSize int

	// Cache geometry (bytes / ways).
	L1Size, L1Ways        int
	L2Size, L2Ways        int
	LLCSliceSize, LLCWays int
	L2MSHRs               int
	LLCMSHRs              int

	// Latencies in cycles.
	L1Latency, L2Latency, LLCLatency int
	MemLatency                       int
	// MemCyclesPerLine is the bandwidth limit per memory controller: one
	// line transfer occupies the controller for this many cycles
	// (12.8 GB/s shared by 4 controllers => 64B / 3.2GB/s = 40 cycles at
	// 2 GHz).
	MemCyclesPerLine int

	// Core model.
	CoreWidth   int // retire width (instructions/cycle)
	CoreWindow  int // max outstanding loads (MLP)
	StoreBuffer int // max outstanding stores

	// Dynamic knob parameters (Table I).
	TPCThreshold int
	TimeWindow   int
	// KnobRatioShift sets the useful-push ratio threshold to 1/2^shift
	// (shift 1 = 50%, the paper's setting).
	KnobRatioShift uint

	// CoalesceWindow is the LLC lookup window (cycles) within which the
	// Coalesce baseline merges same-line requests.
	CoalesceWindow int

	// NoC parameters.
	NoC noc.Config

	// Scheme is the evaluated design point.
	Scheme Scheme

	// Prefetcher settings.
	BingoRegionBytes int // spatial region size (2KB)
	BingoPHTEntries  int
	StrideStreams    int
	StrideDegree     int

	// TraceSharerGaps enables Fig 4 consecutive-sharer-gap tracing at the
	// LLC (costs memory; off by default).
	TraceSharerGaps bool

	// NoRecentPushTable disables the LLC's small recent-push table (an
	// implementation refinement that degrades re-references arriving just
	// after a push departed to unicasts instead of fresh multicasts).
	// Exposed for the ablation study of this design choice.
	NoRecentPushTable bool

	// DenseKernel runs the simulation on the dense reference kernel that
	// ticks every component every cycle, instead of the wake-driven
	// scheduler. Results are identical by contract (the equivalence tests
	// enforce it); dense mode exists as the cross-check oracle and for
	// debugging suspected scheduling bugs.
	DenseKernel bool

	// ParallelWorkers sets the parallel tick executor's worker count: each
	// cycle, tiles tick concurrently across this many goroutines with
	// cross-tile effects staged and committed in registration order, so
	// results stay byte-identical to a serial run. 0 or 1 selects the
	// serial kernel.
	ParallelWorkers int

	// ParallelThreshold is the minimum awake-component count a cycle's
	// parallel section needs before it is dispatched to the worker pool;
	// smaller cycles run serially to dodge the barrier overhead. 0 selects
	// sim.DefaultParallelThreshold.
	ParallelThreshold int

	// Check enables the runtime invariant checker: the paper's protocol
	// invariants (SWMR, L1⊆L2 inclusion, directory sharer-set superset,
	// filter soundness, OrdPush push-before-invalidation ordering) and the
	// NoC's structural conservation laws are asserted while the simulation
	// runs, and any violation fails the run with a trace tail. Off by
	// default: the checker costs throughput and is meant for tests and
	// campaign runs, not benchmarking.
	Check bool

	// CheckEvery is the period, in cycles, of the checker's structural
	// scans (global coherence, inclusion, directory view, NoC
	// conservation); event-driven checks run every cycle regardless.
	// 0 selects a default period.
	CheckEvery int

	// TraceN bounds the structured event-trace ring: the last TraceN
	// events are retained and dumped on a checker violation, watchdog
	// deadlock, or panic. 0 disables the trace unless Check is set, which
	// keeps a default-sized ring so violations always carry context.
	TraceN int

	// Faults, when non-nil and non-empty, enables the deterministic
	// fault-injection layer: the plan's seeded schedule of transient NoC
	// faults is driven against the run, and the graceful-degradation
	// contract (no panic, no deadlock, no invariant violation — only
	// elevated latency) is expected to hold. The same plan replays
	// byte-identically across the serial, dense, and parallel kernels.
	Faults *fault.Plan

	// MSHRRetryTimeout is the cycle count after which an L2 MSHR with no
	// response reissues its request (lossy fault plans only; fault-free runs
	// never arm the timers). It must sit below the NoC transport's
	// RetryTimeout so a protocol-level reissue genuinely fires before the
	// transport's own retransmission heals the loss. 0 selects the default.
	MSHRRetryTimeout int
}

// Tiles returns the tile count.
func (s System) Tiles() int { return s.MeshW * s.MeshH }

// Validate reports configuration errors.
func (s System) Validate() error {
	if s.Tiles() < 2 || s.Tiles() > noc.MaxNodes {
		return fmt.Errorf("config: unsupported tile count %d", s.Tiles())
	}
	if s.LineSize != 64 {
		return fmt.Errorf("config: line size must be 64, got %d", s.LineSize)
	}
	for _, c := range []struct {
		name       string
		size, ways int
	}{
		{"L1", s.L1Size, s.L1Ways},
		{"L2", s.L2Size, s.L2Ways},
		{"LLC slice", s.LLCSliceSize, s.LLCWays},
	} {
		lines := c.size / s.LineSize
		if c.size <= 0 || c.ways <= 0 || lines%c.ways != 0 {
			return fmt.Errorf("config: bad %s geometry size=%d ways=%d", c.name, c.size, c.ways)
		}
	}
	if s.Scheme.Push && s.Scheme.Protocol == ProtoNone {
		return fmt.Errorf("config: scheme %q pushes without a push protocol", s.Scheme.Name)
	}
	if s.NoC.Width != s.MeshW || s.NoC.Height != s.MeshH {
		return fmt.Errorf("config: NoC mesh %dx%d disagrees with system %dx%d",
			s.NoC.Width, s.NoC.Height, s.MeshW, s.MeshH)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(s.Tiles()); err != nil {
			return err
		}
	}
	return s.NoC.Validate()
}

// withNoCFlags aligns the NoC feature flags with the scheme.
func (s System) withNoCFlags() System {
	s.NoC.FilterEnabled = s.Scheme.Filter
	s.NoC.OrdPushInvStall = s.Scheme.Push && s.Scheme.Protocol == ProtoOrdPush
	return s
}

// WithScheme returns a copy of the system configured for the scheme,
// including the Table I per-scheme knob settings.
func (s System) WithScheme(sch Scheme) System {
	s.Scheme = sch
	tiles := s.Tiles()
	if sch.Protocol == ProtoPushAck {
		if tiles > 16 {
			s.TPCThreshold, s.TimeWindow = 8, 1500
		} else {
			s.TPCThreshold, s.TimeWindow = 64, 500
		}
	} else {
		if tiles > 16 {
			s.TPCThreshold, s.TimeWindow = 16, 1500
		} else {
			s.TPCThreshold, s.TimeWindow = 16, 500
		}
	}
	return s.withNoCFlags()
}

// Default16 returns the Table I 16-core system (4x4 mesh).
func Default16() System { return defaultSystem(4, 4) }

// Default64 returns the Table I 64-core system (8x8 mesh).
func Default64() System { return defaultSystem(8, 8) }

// Default256 returns the scaled-up 256-core system (16x16 mesh) used by the
// manycore scaling studies; Table I parameters otherwise.
func Default256() System { return defaultSystem(16, 16) }

func defaultSystem(w, h int) System {
	s := System{
		MeshW: w, MeshH: h,
		LineSize: 64,
		L1Size:   32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 16,
		LLCSliceSize: 1 << 20, LLCWays: 16,
		L2MSHRs:   16,
		LLCMSHRs:  32,
		L1Latency: 1, L2Latency: 4, LLCLatency: 10,
		MemLatency: 120, MemCyclesPerLine: 40,
		CoreWidth: 8, CoreWindow: 16, StoreBuffer: 16,
		KnobRatioShift:   1,
		CoalesceWindow:   10,
		NoC:              noc.DefaultConfig(w, h),
		BingoRegionBytes: 2 << 10, BingoPHTEntries: 256,
		StrideStreams: 16, StrideDegree: 4,
		MSHRRetryTimeout: 300,
	}
	return s.WithScheme(Baseline())
}

// Scaled returns a copy with cache capacities divided by factor (geometry
// ratios preserved). Experiment quick modes use this together with scaled
// workload inputs so that runs finish fast while keeping the paper's
// cache-pressure ratios.
func (s System) Scaled(factor int) System {
	if factor <= 1 {
		return s
	}
	div := func(bytes int) int {
		v := bytes / factor
		min := s.LineSize * s.L2Ways
		if v < min {
			v = min
		}
		return v
	}
	s.L1Size = div(s.L1Size)
	s.L2Size = div(s.L2Size)
	s.LLCSliceSize = div(s.LLCSliceSize)
	return s
}

// MemControllers returns the tiles hosting the four corner memory
// controllers.
func (s System) MemControllers() []noc.NodeID {
	w, h := s.MeshW, s.MeshH
	corners := []noc.NodeID{
		s.NoC.Node(0, 0),
		s.NoC.Node(w-1, 0),
		s.NoC.Node(0, h-1),
		s.NoC.Node(w-1, h-1),
	}
	// Deduplicate for tiny meshes.
	seen := map[noc.NodeID]bool{}
	var out []noc.NodeID
	for _, c := range corners {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// NearestMemController returns the memory controller tile closest (hop
// count, ties to lowest id) to the given tile.
func (s System) NearestMemController(n noc.NodeID) noc.NodeID {
	best := noc.NodeID(-1)
	bestDist := 1 << 30
	nx, ny := s.NoC.XY(n)
	for _, mc := range s.MemControllers() {
		mx, my := s.NoC.XY(mc)
		d := abs(nx-mx) + abs(ny-my)
		if d < bestDist || (d == bestDist && mc < best) {
			best, bestDist = mc, d
		}
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// HomeSlice maps a line address to its home LLC slice by low-order set
// interleaving, the address-hashing NUCA placement the paper assumes.
func (s System) HomeSlice(lineAddr uint64) noc.NodeID {
	return noc.NodeID((lineAddr / uint64(s.LineSize)) % uint64(s.Tiles()))
}
