package config

import (
	"strings"
	"testing"

	"pushmulticast/internal/noc"
)

func TestDefaultsValidate(t *testing.T) {
	for _, cfg := range []System{Default16(), Default64(), Default256()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("default config invalid: %v", err)
		}
	}
}

func TestSchemePresets(t *testing.T) {
	cases := []struct {
		s                             Scheme
		push, multicast, filter, knob bool
		proto                         Protocol
	}{
		{Baseline(), false, false, false, false, ProtoNone},
		{NoPrefetch(), false, false, false, false, ProtoNone},
		{Coalesce(), false, false, false, false, ProtoNone},
		{MSP(), true, false, false, false, ProtoPushAck},
		{PushAck(), true, true, true, true, ProtoPushAck},
		{OrdPush(), true, true, true, true, ProtoOrdPush},
		{AblationPush(), true, false, false, false, ProtoOrdPush},
		{AblationPushMulticast(), true, true, false, false, ProtoOrdPush},
		{AblationPushMulticastFilter(), true, true, true, false, ProtoOrdPush},
		{AblationFull(), true, true, true, true, ProtoOrdPush},
	}
	for _, c := range cases {
		if c.s.Push != c.push || c.s.Multicast != c.multicast ||
			c.s.Filter != c.filter || c.s.Knob != c.knob || c.s.Protocol != c.proto {
			t.Errorf("%s: feature flags wrong: %+v", c.s.Name, c.s)
		}
	}
	if !Baseline().L1Bingo || !Baseline().L2Stride {
		t.Error("baseline must enable both prefetchers")
	}
	if OrdPush().L1Bingo || PushAck().L2Stride {
		t.Error("push schemes run without hardware prefetching")
	}
}

func TestWithSchemeKnobSettings(t *testing.T) {
	// Table I: PushAck 16-core TPC=64/TW=500; 64-core TPC=8/TW=1500;
	// OrdPush TPC=16 with TW=500/1500.
	c16 := Default16().WithScheme(PushAck())
	if c16.TPCThreshold != 64 || c16.TimeWindow != 500 {
		t.Errorf("PushAck 16-core knobs = %d/%d", c16.TPCThreshold, c16.TimeWindow)
	}
	c64 := Default64().WithScheme(PushAck())
	if c64.TPCThreshold != 8 || c64.TimeWindow != 1500 {
		t.Errorf("PushAck 64-core knobs = %d/%d", c64.TPCThreshold, c64.TimeWindow)
	}
	o16 := Default16().WithScheme(OrdPush())
	if o16.TPCThreshold != 16 || o16.TimeWindow != 500 {
		t.Errorf("OrdPush 16-core knobs = %d/%d", o16.TPCThreshold, o16.TimeWindow)
	}
	o64 := Default64().WithScheme(OrdPush())
	if o64.TPCThreshold != 16 || o64.TimeWindow != 1500 {
		t.Errorf("OrdPush 64-core knobs = %d/%d", o64.TPCThreshold, o64.TimeWindow)
	}
}

func TestWithSchemeNoCFlags(t *testing.T) {
	cfg := Default16().WithScheme(OrdPush())
	if !cfg.NoC.FilterEnabled || !cfg.NoC.OrdPushInvStall {
		t.Error("OrdPush must enable the filter and inv stalling")
	}
	cfg = Default16().WithScheme(PushAck())
	if !cfg.NoC.FilterEnabled || cfg.NoC.OrdPushInvStall {
		t.Error("PushAck filters but does not stall invalidations")
	}
	cfg = Default16().WithScheme(AblationPushMulticast())
	if cfg.NoC.FilterEnabled || !cfg.NoC.OrdPushInvStall {
		t.Error("filter-less OrdPush ablation still needs inv stalling")
	}
	cfg = Default16().WithScheme(Baseline())
	if cfg.NoC.FilterEnabled || cfg.NoC.OrdPushInvStall {
		t.Error("baseline must not enable push NoC features")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := Default16()
	bad.Scheme = Scheme{Name: "x", Push: true, Protocol: ProtoNone}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "push protocol") {
		t.Errorf("push without protocol accepted: %v", err)
	}
	bad = Default16()
	bad.LineSize = 32
	if bad.Validate() == nil {
		t.Error("non-64B line accepted")
	}
	bad = Default16()
	bad.NoC.Width = 8
	if bad.Validate() == nil {
		t.Error("mesh mismatch accepted")
	}
}

func TestScaledPreservesGeometry(t *testing.T) {
	cfg := Default16().Scaled(16)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if cfg.L2Size != 16<<10 || cfg.LLCSliceSize != 64<<10 {
		t.Errorf("scaled sizes wrong: L2=%d LLC=%d", cfg.L2Size, cfg.LLCSliceSize)
	}
	if Default16().Scaled(1).L2Size != Default16().L2Size {
		t.Error("factor 1 must be identity")
	}
}

func TestMemControllersAtCorners(t *testing.T) {
	cfg := Default16()
	mcs := cfg.MemControllers()
	if len(mcs) != 4 {
		t.Fatalf("%d controllers, want 4", len(mcs))
	}
	want := map[noc.NodeID]bool{0: true, 3: true, 12: true, 15: true}
	for _, mc := range mcs {
		if !want[mc] {
			t.Errorf("controller at %d is not a corner", mc)
		}
	}
}

func TestNearestMemController(t *testing.T) {
	cfg := Default16()
	if mc := cfg.NearestMemController(0); mc != 0 {
		t.Errorf("nearest to corner 0 = %d", mc)
	}
	// Tile 5 = (1,1): distance 2 to corner 0, 3+ to others.
	if mc := cfg.NearestMemController(5); mc != 0 {
		t.Errorf("nearest to tile 5 = %d, want 0", mc)
	}
	// Tile 10 = (2,2): distance to (3,3)=15 is 2.
	if mc := cfg.NearestMemController(10); mc != 15 {
		t.Errorf("nearest to tile 10 = %d, want 15", mc)
	}
}

func TestHomeSliceCoversAllTiles(t *testing.T) {
	cfg := Default64()
	seen := map[noc.NodeID]bool{}
	for i := 0; i < 64; i++ {
		seen[cfg.HomeSlice(uint64(i)*64)] = true
	}
	if len(seen) != 64 {
		t.Errorf("64 consecutive lines cover %d slices", len(seen))
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range []Protocol{ProtoNone, ProtoPushAck, ProtoOrdPush} {
		if p.String() == "Unknown" {
			t.Errorf("protocol %d unnamed", p)
		}
	}
}
