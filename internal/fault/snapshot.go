package fault

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
)

// SaveState serializes the injector's schedule position and the per-port
// arrival clamp. The per-kind fault indexes are rebuilt from the plan by
// NewInjector; the per-node stat accumulators must already be flushed
// (collection points call FlushStats before snapshotting).
func (in *Injector) SaveState(w *snapshot.Writer) {
	for n := range in.jitterDelay {
		if in.jitterDelay[n] != 0 || in.filterSuppressed[n] != 0 {
			panic("fault: SaveState with unflushed stat accumulators")
		}
	}
	w.Section("fault.injector")
	w.U64(in.next)
	w.Int(len(in.lastArr))
	for _, a := range in.lastArr {
		w.U64(uint64(a))
	}
}

// LoadState restores an injector saved by SaveState. The plan itself is part
// of the config fingerprint, so only the geometry is re-checked here.
func (in *Injector) LoadState(r *snapshot.Reader) error {
	r.Section("fault.injector")
	in.next = r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(in.lastArr) {
		return fmt.Errorf("%w: snapshot fault clamp spans %d ports, this build %d",
			snapshot.ErrMismatch, n, len(in.lastArr))
	}
	for i := range in.lastArr {
		in.lastArr[i] = sim.Cycle(r.U64())
	}
	return r.Err()
}
