package fault

import (
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// Injector drives a Plan against the network. It registers as the FIRST
// engine component so that a tile it wakes at a window boundary ticks in the
// same cycle (the engine ticks mid-step wakes from earlier-registered
// components), and it implements noc.FaultHook so the NoC's hot paths can
// consult the active schedule with one nil-check when injection is off.
//
// Scheduling: the injector sleeps until the next window boundary (start or
// end) across all faults, so idle fast-forward stays exact. At a window end
// it wakes the target tile — a router whose traffic was blocked by a
// LinkStall may have gone to sleep "blocked on downstream" with no release
// ever coming; the boundary wake restores the dense-mode placement cycle.
// Spurious wakes at window starts are harmless in every kernel.
type Injector struct {
	plan  Plan
	eng   *sim.Engine
	st    *stats.All
	h     *sim.Handle
	nodes int
	// next is the earliest upcoming window boundary; ^0 when the schedule is
	// spent. Starting at 0 makes the first tick compute it, and the
	// now>=next guard keeps dense mode's every-cycle ticks equivalent to the
	// sparse kernel's boundary-only ticks.
	next uint64
	// wake wakes a tile (router + NI) at window boundaries; set by the
	// builder after the network exists.
	wake func(node int)

	// Per-kind fault indexes for O(active faults at target) hook checks.
	// stalls/jits are keyed node*NumPorts+port (Port == -1 expanded);
	// slows/spikes/drops are keyed by node.
	stalls [][]*Fault
	jits   [][]*Fault
	slows  [][]*Fault
	spikes [][]*Fault
	drops  [][]*Fault
	// Lossy-kind indexes, keyed by node: message drops, duplications, and
	// corruptions applied at the receiving NI. hasLossy arms the NoC's
	// end-to-end recovery layer.
	mdrops   [][]*Fault
	mdups    [][]*Fault
	mcorrs   [][]*Fault
	hasLossy bool
	// lastArr tracks the last granted head-arrival cycle per (node, output
	// port), backing the monotonic clamp that keeps jittered links
	// order-preserving (OrdPush's push-before-invalidation survives). Each
	// entry is touched only by that node's own router tick, so the clamp
	// stays race-free even with routers on parallel lanes.
	lastArr []sim.Cycle
	// jitterDelay / filterSuppressed accumulate the per-node shares of the
	// FaultJitterDelay and FaultFilterSuppressed counters. Router-tick hooks
	// write them (index = the ticking router's node, so parallel lanes never
	// collide); FlushStats folds the sums into the shared bundle at
	// collection points.
	jitterDelay     []uint64
	filterSuppressed []uint64
}

// NewInjector builds the injector for a validated plan on a machine with the
// given tile count.
func NewInjector(plan Plan, nodes int, st *stats.All) *Injector {
	in := &Injector{
		plan:    plan,
		st:      st,
		nodes:   nodes,
		stalls:  make([][]*Fault, nodes*noc.NumPorts),
		jits:    make([][]*Fault, nodes*noc.NumPorts),
		slows:   make([][]*Fault, nodes),
		spikes:  make([][]*Fault, nodes),
		drops:   make([][]*Fault, nodes),
		mdrops:  make([][]*Fault, nodes),
		mdups:   make([][]*Fault, nodes),
		mcorrs:  make([][]*Fault, nodes),
		lastArr: make([]sim.Cycle, nodes*noc.NumPorts),

		jitterDelay:      make([]uint64, nodes),
		filterSuppressed: make([]uint64, nodes),
	}
	for i := range plan.Faults {
		f := &plan.Faults[i]
		switch f.Kind {
		case LinkStall, VCJitter:
			idx := &in.stalls
			if f.Kind == VCJitter {
				idx = &in.jits
			}
			if f.Port == -1 {
				for p := 0; p < noc.NumPorts; p++ {
					k := f.Node*noc.NumPorts + p
					(*idx)[k] = append((*idx)[k], f)
				}
			} else {
				k := f.Node*noc.NumPorts + f.Port
				(*idx)[k] = append((*idx)[k], f)
			}
		case RouterSlow:
			in.slows[f.Node] = append(in.slows[f.Node], f)
		case InjSpike:
			in.spikes[f.Node] = append(in.spikes[f.Node], f)
		case FilterDrop:
			in.drops[f.Node] = append(in.drops[f.Node], f)
		case MsgDrop:
			in.mdrops[f.Node] = append(in.mdrops[f.Node], f)
			in.hasLossy = true
		case MsgDup:
			in.mdups[f.Node] = append(in.mdups[f.Node], f)
			in.hasLossy = true
		case MsgCorrupt:
			in.mcorrs[f.Node] = append(in.mcorrs[f.Node], f)
			in.hasLossy = true
		}
	}
	return in
}

// Register adds the injector to the engine's tick list. It must be the first
// registration so boundary wakes take effect in the same cycle.
func (in *Injector) Register(eng *sim.Engine) {
	in.eng = eng
	in.h = eng.Register(in)
}

// SetWaker installs the tile-wake callback (router + NI of a node).
func (in *Injector) SetWaker(wake func(node int)) { in.wake = wake }

// Tick advances the schedule when a window boundary is due and re-sleeps
// until the next one. Dense mode calls it every cycle; the guard makes those
// extra calls no-ops, so both kernels process the identical boundary set.
func (in *Injector) Tick(now sim.Cycle) {
	if uint64(now) >= in.next {
		in.onBoundary(uint64(now))
	}
	if in.next == ^uint64(0) {
		in.h.Sleep()
	} else {
		in.h.SleepUntil(sim.Cycle(in.next))
	}
}

func (in *Injector) onBoundary(c uint64) {
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.startsAt(c) {
			in.st.Net.FaultWindows++
			if in.wake != nil {
				in.wake(f.Node)
			}
		} else if f.endsAt(c) {
			// A router that slept "blocked on downstream" during the window
			// needs this wake: nothing else fires when the fault lifts.
			if in.wake != nil {
				in.wake(f.Node)
			}
		}
	}
	next := ^uint64(0)
	for i := range in.plan.Faults {
		if b, ok := in.plan.Faults[i].nextBoundary(c); ok && b < next {
			next = b
		}
	}
	in.next = next
}

// --- noc.FaultHook ---

// RouterFrozen reports whether a RouterSlow window holds the router's
// pipeline this cycle (the router runs only every Factor-th cycle of the
// window). Pure function of the cycle, so dense and sparse kernels freeze
// the identical cycle set.
func (in *Injector) RouterFrozen(node noc.NodeID, now sim.Cycle) bool {
	for _, f := range in.slows[node] {
		c := uint64(now)
		if !f.activeAt(c) {
			continue
		}
		start := f.From
		if f.Period != 0 {
			start = f.From + (c-f.From)/f.Period*f.Period
		}
		if (c-start)%uint64(f.Factor) != 0 {
			return true
		}
	}
	return false
}

// FrozenIn reports whether any RouterSlow window on the node overlaps
// [from, to]; the conservation checker uses it to excuse unrouted heads a
// frozen router legitimately left overdue.
func (in *Injector) FrozenIn(node noc.NodeID, from, to sim.Cycle) bool {
	for _, f := range in.slows[node] {
		if f.activeWithin(uint64(from), uint64(to)) {
			return true
		}
	}
	return false
}

// LinkBlocked reports whether a LinkStall window blocks new replica
// allocations onto the router's output port this cycle.
func (in *Injector) LinkBlocked(node noc.NodeID, port int, now sim.Cycle) bool {
	for _, f := range in.stalls[int(node)*noc.NumPorts+port] {
		if f.activeAt(uint64(now)) {
			return true
		}
	}
	return false
}

// Arrival maps a head flit's base arrival cycle on (node, output port) to
// its faulted arrival: active VCJitter windows add a delay derived purely
// from (seed, packet ID, cycle), and the per-port monotonic clamp then keeps
// arrivals in send order, so jitter can slow a link but never reorder it.
// Runs only from the sending router's own tick — routers tick on lane
// goroutines in the parallel kernel — so the clamp state and the delay
// accumulator are per-node and race-free; FlushStats folds the delays into
// the shared bundle later.
func (in *Injector) Arrival(node noc.NodeID, port int, now, base sim.Cycle, pktID uint64, vnet int) sim.Cycle {
	arr := base
	key := int(node)*noc.NumPorts + port
	for _, f := range in.jits[key] {
		if f.activeAt(uint64(now)) && (f.VNet == -1 || f.VNet == vnet) {
			h := splitmix64(in.plan.Seed ^ splitmix64(pktID) ^ uint64(now)*0x9E3779B97F4A7C15)
			d := sim.Cycle(h % uint64(f.MaxJitter+1))
			arr += d
			in.jitterDelay[node] += uint64(d)
		}
	}
	if last := in.lastArr[key]; arr <= last {
		arr = last + 1
	}
	in.lastArr[key] = arr
	return arr
}

// InjQueueCap returns the node NI's effective injection-queue depth: the
// configured depth, shrunk to the smallest active InjSpike capacity. It is
// called from endpoint ticks, which run on lane goroutines in the parallel
// kernel, so it must stay a pure read — no stats, no clamp state. Reading
// eng.Now() is safe: the cycle is never written mid-section.
func (in *Injector) InjQueueCap(node noc.NodeID, depth int) int {
	now := uint64(in.eng.Now())
	for _, f := range in.spikes[node] {
		if f.activeAt(now) && f.Factor < depth {
			depth = f.Factor
		}
	}
	return depth
}

// LossyEnabled reports whether the plan schedules any lossy kind; the NoC
// arms its recovery layer (sequence numbers, acks, retransmit windows) only
// when it does, keeping fault-free hot paths unchanged.
func (in *Injector) LossyEnabled() bool { return in.hasLossy }

// LossyVerdict decides the fate of one packet arrival at a node's NI: intact,
// dropped, duplicated, or corrupted. It is a pure function of (seed, plan,
// cycle, node, packet id) — called from NI ticks, which run on lane
// goroutines in the parallel kernel, so it must not write stats or any clamp
// state (the NI accounts the outcome on its own lane shard). At most one
// window per lossy kind can be active on a node (Validate rejects overlaps),
// and the three kinds roll independent hash bits, with the more severe
// verdict winning when several fire at once.
func (in *Injector) LossyVerdict(node noc.NodeID, now sim.Cycle, pktID uint64) noc.LossVerdict {
	c := uint64(now)
	h := uint64(0)
	hashed := false
	roll := func(shift uint) uint64 {
		if !hashed {
			h = splitmix64(in.plan.Seed ^ splitmix64(pktID^0x10551) ^ (c+1)*0x9E3779B97F4A7C15)
			hashed = true
		}
		return (h >> shift) % 1000
	}
	for _, f := range in.mdrops[node] {
		if f.activeAt(c) && roll(0) < uint64(f.Factor) {
			return noc.LossDrop
		}
	}
	for _, f := range in.mcorrs[node] {
		if f.activeAt(c) && roll(20) < uint64(f.Factor) {
			return noc.LossCorrupt
		}
	}
	for _, f := range in.mdups[node] {
		if f.activeAt(c) && roll(40) < uint64(f.Factor) {
			return noc.LossDup
		}
	}
	return noc.LossNone
}

// SuppressFilterHit reports whether a FilterDrop window holds the router's
// filter bank offline for lookups this cycle; the router then treats the hit
// as a miss and routes the request on. Registrations and the OrdPush
// invalidation stall are deliberately unaffected — suppressing pruning only
// adds redundant traffic, while dropping ordering state could reorder
// protocol messages. Runs only from the router's own tick (a lane goroutine
// in the parallel kernel), so the hit count accumulates per node.
func (in *Injector) SuppressFilterHit(node noc.NodeID, now sim.Cycle) bool {
	for _, f := range in.drops[node] {
		if f.activeAt(uint64(now)) {
			in.filterSuppressed[node]++
			return true
		}
	}
	return false
}

// FlushStats folds the per-node hook accumulators into the shared stats
// bundle and zeroes them. Callers invoke it at collection points (after a
// run or drain, outside any parallel section); the per-node sums are
// order-independent, so the folded totals match a serial run exactly.
func (in *Injector) FlushStats() {
	for n := range in.jitterDelay {
		in.st.Net.FaultJitterDelay += in.jitterDelay[n]
		in.st.Net.FaultFilterSuppressed += in.filterSuppressed[n]
		in.jitterDelay[n] = 0
		in.filterSuppressed[n] = 0
	}
}
