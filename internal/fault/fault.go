// Package fault implements the deterministic fault-injection layer: a seeded
// schedule of transient network faults (link stalls, router slowdowns, packet
// delay jitter, injection-queue pressure spikes, filter outages, and lossy
// message faults) applied to the NoC through narrow hooks, plus the injector
// component that drives the schedule off the simulation engine's wake heap.
//
// Every fault effect is a pure function of (plan, seed, cycle, component
// identity, packet identity) — never of tick order, goroutine scheduling, or
// host state — so a fault schedule replays byte-identically across the
// serial, dense, and parallel kernels: same seed, same trace hash.
//
// The graceful-degradation contract: a valid plan may slow the simulated
// machine down arbitrarily within its windows, but it can never make a run
// panic, deadlock, or violate a coherence/ordering invariant. The benign
// kinds (LinkStall, RouterSlow, VCJitter, InjSpike, FilterDrop) only delay or
// withhold resources transiently. The lossy kinds (MsgDrop, MsgDup,
// MsgCorrupt) discard, duplicate, or corrupt packets at the receiving NI;
// the NoC's end-to-end recovery layer (sequence numbers, acks, a bounded
// retransmit window, and receiver-side dedup — see internal/noc) makes them
// survivable up to the documented loss ceiling (MaxLossPerMille), beyond
// which a run fails loudly with noc.ErrUnrecoverable rather than hanging.
// The invariant checker stays fully enabled under fault injection (the one
// structural check a frozen router legitimately suspends is excused through
// FrozenIn; dropped deliveries are excused through the loss trace events).
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"pushmulticast/internal/noc"
)

// Kind enumerates the fault mechanisms.
type Kind uint8

// Fault kinds.
const (
	// LinkStall blocks new replica allocations onto one router output port
	// for the window's duration. In-flight streams complete (links do not
	// corrupt mid-packet); blocked traffic waits in upstream VCs.
	LinkStall Kind = iota
	// RouterSlow freezes a router's pipeline on all but every Factor-th
	// cycle of the window, modeling a router running at 1/Factor frequency.
	RouterSlow
	// VCJitter adds a bounded pseudo-random delay to head-flit arrival on
	// one router output link. Per-link arrival order is preserved (a
	// monotonic clamp), so OrdPush's push-before-invalidation guarantee
	// survives arbitrary jitter.
	VCJitter
	// InjSpike shrinks a tile NI's effective injection-queue depth to
	// Factor entries, modeling endpoint-side congestion; sources feel
	// backpressure and retry.
	InjSpike
	// FilterDrop takes a router's filter bank offline for lookups: pruning
	// hits are suppressed (requests travel on redundantly). Registrations
	// and the OrdPush invalidation stall are untouched — dropping those
	// would break ordering, not degrade it.
	FilterDrop
	// MsgDrop discards packets at the target tile's NI on delivery with
	// probability Factor per mille; the sender's retransmit window recovers
	// them after an ack timeout.
	MsgDrop
	// MsgDup delivers packets at the target tile's NI twice with probability
	// Factor per mille; the receiver's sequence-number dedup suppresses the
	// second copy.
	MsgDup
	// MsgCorrupt flips payload bits in packets arriving at the target tile's
	// NI with probability Factor per mille; the per-packet checksum catches
	// the corruption and the packet is discarded and recovered like a drop.
	MsgCorrupt

	numKinds
)

var kindNames = [numKinds]string{
	"LinkStall", "RouterSlow", "VCJitter", "InjSpike", "FilterDrop",
	"MsgDrop", "MsgDup", "MsgCorrupt",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Unknown"
}

// lossy reports whether the kind discards, duplicates, or corrupts packets.
func (k Kind) lossy() bool { return k == MsgDrop || k == MsgDup || k == MsgCorrupt }

// MarshalJSON encodes the kind by name, keeping plan files readable.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("fault: cannot marshal unknown kind %d", k)
	}
	return []byte(`"` + kindNames[k] + `"`), nil
}

// UnmarshalJSON accepts a kind name (case-insensitive) or its numeric value.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		name := string(b[1 : len(b)-1])
		for i, n := range kindNames {
			if strings.EqualFold(n, name) {
				*k = Kind(i)
				return nil
			}
		}
		return fmt.Errorf("fault: unknown fault kind %q", name)
	}
	var v uint8
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("fault: fault kind must be a name or small integer: %w", err)
	}
	if v >= uint8(numKinds) {
		return fmt.Errorf("fault: unknown fault kind %d", v)
	}
	*k = Kind(v)
	return nil
}

// MaxOutageWindow caps the duration of a full-outage window (LinkStall,
// RouterSlow): far below the engine's progress watchdog, so a legal plan can
// stall traffic but never trip deadlock detection.
const MaxOutageWindow = 10_000

// MaxJitterCycles caps VCJitter's per-packet extra delay.
const MaxJitterCycles = 64

// MaxLossPerMille is the documented forward-progress ceiling for the lossy
// kinds: at per-mille loss rates up to this value the recovery layer's
// defaults (retransmit window, timeout, max retries — see noc.Config)
// guarantee every run completes coherently, merely slower. Validate accepts
// rates up to 1000 so tests can force noc.ErrUnrecoverable, but rates above
// the ceiling are outside the graceful-degradation contract.
const MaxLossPerMille = 100

// Fault is one scheduled fault. Its first active window is [From, To) in
// cycles; with a nonzero Period the window repeats every Period cycles
// forever, which guarantees coverage regardless of run length.
type Fault struct {
	Kind Kind
	// Node is the target tile (router and NI share the tile index).
	Node int
	// Port is the target output port for LinkStall and VCJitter
	// (noc.PortNorth..PortLocal); -1 targets every port. Ignored otherwise.
	Port int
	// From and To bound the first active window: [From, To).
	From, To uint64
	// Period repeats the window every Period cycles (0 = one-shot).
	Period uint64
	// Factor is the RouterSlow duty divisor (the router runs one cycle in
	// Factor, >= 2), the InjSpike forced queue capacity (>= 1), or the
	// lossy kinds' per-mille event probability (1..1000).
	Factor int
	// MaxJitter bounds VCJitter's extra delay in cycles (1..MaxJitterCycles).
	MaxJitter int
	// VNet restricts VCJitter to one virtual network; -1 jitters all.
	VNet int
}

// activeAt reports whether the fault's window covers cycle c.
func (f *Fault) activeAt(c uint64) bool {
	if c < f.From {
		return false
	}
	if f.Period == 0 {
		return c < f.To
	}
	return (c-f.From)%f.Period < f.To-f.From
}

// startsAt reports whether a window of this fault opens exactly at cycle c.
func (f *Fault) startsAt(c uint64) bool {
	return f.activeAt(c) && (c == 0 || !f.activeAt(c-1))
}

// endsAt reports whether a window of this fault closed exactly at cycle c
// (c is the first inactive cycle).
func (f *Fault) endsAt(c uint64) bool {
	return c > 0 && f.activeAt(c-1) && !f.activeAt(c)
}

// nextBoundary returns the earliest window start or end strictly after now,
// or false when the fault is spent (one-shot, fully in the past).
func (f *Fault) nextBoundary(now uint64) (uint64, bool) {
	if now < f.From {
		return f.From, true
	}
	dur := f.To - f.From
	if f.Period == 0 {
		if now < f.To {
			return f.To, true
		}
		return 0, false
	}
	phase := (now - f.From) % f.Period
	if phase < dur {
		return now + (dur - phase), true // current window's end
	}
	return now + (f.Period - phase), true // next window's start
}

// activeWithin reports whether any cycle in [from, to] falls inside one of
// the fault's windows.
func (f *Fault) activeWithin(from, to uint64) bool {
	if to < f.From {
		return false
	}
	if from < f.From {
		from = f.From
	}
	if f.Period == 0 {
		return from < f.To
	}
	if to-from+1 >= f.Period {
		return true
	}
	phase := (from - f.From) % f.Period
	if phase < f.To-f.From {
		return true
	}
	return from+(f.Period-phase) <= to
}

// Plan is a complete fault schedule: a seed (feeding the jitter hash) and the
// fault list. The zero value (or an empty fault list) disables injection.
type Plan struct {
	// Seed feeds every pseudo-random fault decision; two runs with equal
	// (Plan, workload, config) are byte-identical.
	Seed uint64
	// Faults is the schedule.
	Faults []Fault
}

// Validate checks the plan against a machine with the given tile count. The
// bounds are the documented intensities under which the graceful-degradation
// contract holds: transient windows only, outages shorter than the progress
// watchdog, and no fault that could drop or reorder protocol traffic.
func (p *Plan) Validate(nodes int) error {
	for i := range p.Faults {
		f := &p.Faults[i]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault: plan entry %d (%s): %s", i, f.Kind, fmt.Sprintf(format, args...))
		}
		if f.Kind >= numKinds {
			return fail("unknown kind %d", f.Kind)
		}
		if f.Node < 0 || f.Node >= nodes {
			return fail("node %d outside [0,%d)", f.Node, nodes)
		}
		if f.From >= f.To {
			return fail("empty window [%d,%d)", f.From, f.To)
		}
		if f.Period != 0 && f.Period < f.To-f.From {
			return fail("period %d shorter than window %d", f.Period, f.To-f.From)
		}
		switch f.Kind {
		case LinkStall, RouterSlow:
			if f.To-f.From > MaxOutageWindow {
				return fail("outage window %d exceeds MaxOutageWindow %d", f.To-f.From, MaxOutageWindow)
			}
		}
		switch f.Kind {
		case LinkStall, VCJitter:
			if f.Port < -1 || f.Port >= noc.NumPorts {
				return fail("port %d outside [-1,%d)", f.Port, noc.NumPorts)
			}
		}
		switch f.Kind {
		case RouterSlow:
			if f.Factor < 2 || f.Factor > 64 {
				return fail("duty factor %d outside [2,64]", f.Factor)
			}
		case InjSpike:
			if f.Factor < 1 {
				return fail("forced queue capacity %d below 1", f.Factor)
			}
		case VCJitter:
			if f.MaxJitter < 1 || f.MaxJitter > MaxJitterCycles {
				return fail("max jitter %d outside [1,%d]", f.MaxJitter, MaxJitterCycles)
			}
			if f.VNet < -1 || f.VNet >= noc.NumVNets {
				return fail("vnet %d outside [-1,%d)", f.VNet, noc.NumVNets)
			}
		case MsgDrop, MsgDup, MsgCorrupt:
			if f.Factor < 1 || f.Factor > 1000 {
				return fail("per-mille loss rate %d outside [1,1000]", f.Factor)
			}
		}
	}
	// Two windows of the same kind on the same component must never be
	// active simultaneously: stacked effects would be undefined (which loss
	// rate applies? which duty factor?), so reject the plan up front.
	for i := range p.Faults {
		for j := i + 1; j < len(p.Faults); j++ {
			a, b := &p.Faults[i], &p.Faults[j]
			if sameComponent(a, b) && windowsOverlap(a, b) {
				return fmt.Errorf("fault: plan entries %d and %d (%s, node %d): overlapping windows on the same component (undefined effect stacking)",
					i, j, a.Kind, a.Node)
			}
		}
	}
	return nil
}

// sameComponent reports whether two faults target the same mechanism on the
// same hardware component, so that simultaneous windows would stack.
func sameComponent(a, b *Fault) bool {
	if a.Kind != b.Kind || a.Node != b.Node {
		return false
	}
	switch a.Kind {
	case LinkStall, VCJitter:
		// Port-scoped: -1 covers every port, so it collides with anything.
		return a.Port == b.Port || a.Port == -1 || b.Port == -1
	}
	return true
}

// windowsOverlap reports — exactly, not conservatively — whether any cycle
// lies inside an active window of both faults.
func windowsOverlap(a, b *Fault) bool {
	switch {
	case a.Period == 0 && b.Period == 0:
		from, to := a.From, a.To
		if b.From > from {
			from = b.From
		}
		if b.To < to {
			to = b.To
		}
		return from < to
	case a.Period == 0:
		return b.activeWithin(a.From, a.To-1)
	case b.Period == 0:
		return a.activeWithin(b.From, b.To-1)
	}
	// Both periodic (forever): window starts align modulo gcd(periods), so
	// the two duration intervals overlap iff they overlap in that residue
	// ring.
	g := gcd(a.Period, b.Period)
	durA, durB := a.To-a.From, b.To-b.From
	if durA >= g || durB >= g {
		return true
	}
	d := ((a.From % g) + g - (b.From % g)) % g // a's start relative to b's, mod g
	return d < durB || g-d < durA
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Lossy reports whether the plan schedules any packet-loss fault (MsgDrop,
// MsgDup, MsgCorrupt); the NoC arms its recovery layer only when it does.
func (p *Plan) Lossy() bool {
	if p == nil {
		return false
	}
	for i := range p.Faults {
		if p.Faults[i].Kind.lossy() {
			return true
		}
	}
	return false
}

// splitmix64 is the avalanche step behind every seeded fault decision:
// deterministic, stateless, and uniform enough for schedule generation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4B9FE
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// GeneratePlan builds a chaos-campaign plan for a machine with the given
// tile count: intensity (clamped to [0,1]) scales the number of concurrent
// fault processes per kind, and every parameter choice derives from the seed,
// so equal (nodes, seed, intensity) always yields the identical plan. All
// windows are periodic, guaranteeing fault coverage regardless of run length.
// Each kind targets distinct nodes (a seeded partial shuffle), so generated
// plans never trip Validate's same-component overlap rejection. Intensity 0
// returns an empty (injection-off) plan. Lossy kinds are not generated here;
// see GenerateLossyPlan.
func GeneratePlan(nodes int, seed uint64, intensity float64) Plan {
	if math.IsNaN(intensity) || intensity <= 0 {
		return Plan{Seed: seed}
	}
	if intensity > 1 {
		intensity = 1
	}
	p := Plan{Seed: seed}
	// At intensity 1, one fault process per kind per 4 tiles.
	perKind := int(math.Ceil(intensity * float64(nodes) / 4))
	x := splitmix64(seed ^ 0xFA017)
	next := func(mod uint64) uint64 {
		x = splitmix64(x)
		return x % mod
	}
	perm := make([]int, nodes)
	for k := Kind(0); k < FilterDrop+1; k++ {
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < perKind; i++ {
			// Partial Fisher-Yates: position i draws from the unpicked tail.
			j := i + int(next(uint64(nodes-i)))
			perm[i], perm[j] = perm[j], perm[i]
			f := Fault{
				Kind: k,
				Node: perm[i],
				Port: int(next(noc.NumPorts)),
				VNet: -1,
			}
			from := 100 + next(900)
			dur := 100 + uint64(float64(next(900))*intensity)
			f.From = from
			f.To = from + dur
			f.Period = f.To - f.From + 1500 + next(4000)
			switch k {
			case RouterSlow:
				f.Factor = 2 + int(next(3))
			case InjSpike:
				f.Factor = 1 + int(next(2))
			case VCJitter:
				f.MaxJitter = 1 + int(next(8))
			}
			p.Faults = append(p.Faults, f)
		}
	}
	return p
}

// GenerateLossyPlan builds an always-on lossy plan for the chaos campaign:
// every tile's NI drops arrivals at ratePerMille, and duplicates and corrupts
// them at half that rate each. The rate is clamped to [0,1000]; 0 returns an
// empty plan. Rates above MaxLossPerMille validate and run but are outside
// the forward-progress contract — a rate of 1000 (every delivery lost,
// including retransmissions) deterministically ends in noc.ErrUnrecoverable,
// which is exactly what the loud-failure tests use.
func GenerateLossyPlan(nodes int, seed uint64, ratePerMille int) Plan {
	if ratePerMille <= 0 {
		return Plan{Seed: seed}
	}
	if ratePerMille > 1000 {
		ratePerMille = 1000
	}
	p := Plan{Seed: seed}
	// One-shot windows covering any realizable run length; validation's
	// outage cap applies only to full-outage kinds, not lossy ones.
	const forever = uint64(1) << 62
	add := func(k Kind, node, rate int) {
		if rate < 1 {
			return
		}
		p.Faults = append(p.Faults, Fault{Kind: k, Node: node, To: forever, Factor: rate})
	}
	for n := 0; n < nodes; n++ {
		add(MsgDrop, n, ratePerMille)
		add(MsgDup, n, ratePerMille/2)
		add(MsgCorrupt, n, ratePerMille/2)
	}
	return p
}
