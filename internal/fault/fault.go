// Package fault implements the deterministic fault-injection layer: a seeded
// schedule of transient network faults (link stalls, router slowdowns, packet
// delay jitter, injection-queue pressure spikes, and filter outages) applied
// to the NoC through narrow hooks, plus the injector component that drives the
// schedule off the simulation engine's wake heap.
//
// Every fault effect is a pure function of (plan, seed, cycle, component
// identity, packet identity) — never of tick order, goroutine scheduling, or
// host state — so a fault schedule replays byte-identically across the
// serial, dense, and parallel kernels: same seed, same trace hash.
//
// The graceful-degradation contract: a valid plan may slow the simulated
// machine down arbitrarily within its windows, but it can never make a run
// panic, deadlock, or violate a coherence/ordering invariant. Faults only
// delay or withhold resources transiently; no packet is ever dropped,
// reordered against the OrdPush guarantees, or duplicated. The invariant
// checker stays fully enabled under fault injection (the one structural check
// a frozen router legitimately suspends is excused through FrozenIn).
package fault

import (
	"fmt"
	"math"

	"pushmulticast/internal/noc"
)

// Kind enumerates the fault mechanisms.
type Kind uint8

// Fault kinds.
const (
	// LinkStall blocks new replica allocations onto one router output port
	// for the window's duration. In-flight streams complete (links do not
	// corrupt mid-packet); blocked traffic waits in upstream VCs.
	LinkStall Kind = iota
	// RouterSlow freezes a router's pipeline on all but every Factor-th
	// cycle of the window, modeling a router running at 1/Factor frequency.
	RouterSlow
	// VCJitter adds a bounded pseudo-random delay to head-flit arrival on
	// one router output link. Per-link arrival order is preserved (a
	// monotonic clamp), so OrdPush's push-before-invalidation guarantee
	// survives arbitrary jitter.
	VCJitter
	// InjSpike shrinks a tile NI's effective injection-queue depth to
	// Factor entries, modeling endpoint-side congestion; sources feel
	// backpressure and retry.
	InjSpike
	// FilterDrop takes a router's filter bank offline for lookups: pruning
	// hits are suppressed (requests travel on redundantly). Registrations
	// and the OrdPush invalidation stall are untouched — dropping those
	// would break ordering, not degrade it.
	FilterDrop

	numKinds
)

var kindNames = [numKinds]string{"LinkStall", "RouterSlow", "VCJitter", "InjSpike", "FilterDrop"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Unknown"
}

// MaxOutageWindow caps the duration of a full-outage window (LinkStall,
// RouterSlow): far below the engine's progress watchdog, so a legal plan can
// stall traffic but never trip deadlock detection.
const MaxOutageWindow = 10_000

// MaxJitterCycles caps VCJitter's per-packet extra delay.
const MaxJitterCycles = 64

// Fault is one scheduled fault. Its first active window is [From, To) in
// cycles; with a nonzero Period the window repeats every Period cycles
// forever, which guarantees coverage regardless of run length.
type Fault struct {
	Kind Kind
	// Node is the target tile (router and NI share the tile index).
	Node int
	// Port is the target output port for LinkStall and VCJitter
	// (noc.PortNorth..PortLocal); -1 targets every port. Ignored otherwise.
	Port int
	// From and To bound the first active window: [From, To).
	From, To uint64
	// Period repeats the window every Period cycles (0 = one-shot).
	Period uint64
	// Factor is the RouterSlow duty divisor (the router runs one cycle in
	// Factor, >= 2) or the InjSpike forced queue capacity (>= 1).
	Factor int
	// MaxJitter bounds VCJitter's extra delay in cycles (1..MaxJitterCycles).
	MaxJitter int
	// VNet restricts VCJitter to one virtual network; -1 jitters all.
	VNet int
}

// activeAt reports whether the fault's window covers cycle c.
func (f *Fault) activeAt(c uint64) bool {
	if c < f.From {
		return false
	}
	if f.Period == 0 {
		return c < f.To
	}
	return (c-f.From)%f.Period < f.To-f.From
}

// startsAt reports whether a window of this fault opens exactly at cycle c.
func (f *Fault) startsAt(c uint64) bool {
	return f.activeAt(c) && (c == 0 || !f.activeAt(c-1))
}

// endsAt reports whether a window of this fault closed exactly at cycle c
// (c is the first inactive cycle).
func (f *Fault) endsAt(c uint64) bool {
	return c > 0 && f.activeAt(c-1) && !f.activeAt(c)
}

// nextBoundary returns the earliest window start or end strictly after now,
// or false when the fault is spent (one-shot, fully in the past).
func (f *Fault) nextBoundary(now uint64) (uint64, bool) {
	if now < f.From {
		return f.From, true
	}
	dur := f.To - f.From
	if f.Period == 0 {
		if now < f.To {
			return f.To, true
		}
		return 0, false
	}
	phase := (now - f.From) % f.Period
	if phase < dur {
		return now + (dur - phase), true // current window's end
	}
	return now + (f.Period - phase), true // next window's start
}

// activeWithin reports whether any cycle in [from, to] falls inside one of
// the fault's windows.
func (f *Fault) activeWithin(from, to uint64) bool {
	if to < f.From {
		return false
	}
	if from < f.From {
		from = f.From
	}
	if f.Period == 0 {
		return from < f.To
	}
	if to-from+1 >= f.Period {
		return true
	}
	phase := (from - f.From) % f.Period
	if phase < f.To-f.From {
		return true
	}
	return from+(f.Period-phase) <= to
}

// Plan is a complete fault schedule: a seed (feeding the jitter hash) and the
// fault list. The zero value (or an empty fault list) disables injection.
type Plan struct {
	// Seed feeds every pseudo-random fault decision; two runs with equal
	// (Plan, workload, config) are byte-identical.
	Seed uint64
	// Faults is the schedule.
	Faults []Fault
}

// Validate checks the plan against a machine with the given tile count. The
// bounds are the documented intensities under which the graceful-degradation
// contract holds: transient windows only, outages shorter than the progress
// watchdog, and no fault that could drop or reorder protocol traffic.
func (p *Plan) Validate(nodes int) error {
	for i := range p.Faults {
		f := &p.Faults[i]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault: plan entry %d (%s): %s", i, f.Kind, fmt.Sprintf(format, args...))
		}
		if f.Kind >= numKinds {
			return fail("unknown kind %d", f.Kind)
		}
		if f.Node < 0 || f.Node >= nodes {
			return fail("node %d outside [0,%d)", f.Node, nodes)
		}
		if f.From >= f.To {
			return fail("empty window [%d,%d)", f.From, f.To)
		}
		if f.Period != 0 && f.Period < f.To-f.From {
			return fail("period %d shorter than window %d", f.Period, f.To-f.From)
		}
		switch f.Kind {
		case LinkStall, RouterSlow:
			if f.To-f.From > MaxOutageWindow {
				return fail("outage window %d exceeds MaxOutageWindow %d", f.To-f.From, MaxOutageWindow)
			}
		}
		switch f.Kind {
		case LinkStall, VCJitter:
			if f.Port < -1 || f.Port >= noc.NumPorts {
				return fail("port %d outside [-1,%d)", f.Port, noc.NumPorts)
			}
		}
		switch f.Kind {
		case RouterSlow:
			if f.Factor < 2 || f.Factor > 64 {
				return fail("duty factor %d outside [2,64]", f.Factor)
			}
		case InjSpike:
			if f.Factor < 1 {
				return fail("forced queue capacity %d below 1", f.Factor)
			}
		case VCJitter:
			if f.MaxJitter < 1 || f.MaxJitter > MaxJitterCycles {
				return fail("max jitter %d outside [1,%d]", f.MaxJitter, MaxJitterCycles)
			}
			if f.VNet < -1 || f.VNet >= noc.NumVNets {
				return fail("vnet %d outside [-1,%d)", f.VNet, noc.NumVNets)
			}
		}
	}
	return nil
}

// splitmix64 is the avalanche step behind every seeded fault decision:
// deterministic, stateless, and uniform enough for schedule generation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4B9FE
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// GeneratePlan builds a chaos-campaign plan for a machine with the given
// tile count: intensity (clamped to [0,1]) scales the number of concurrent
// fault processes per kind, and every parameter choice derives from the seed,
// so equal (nodes, seed, intensity) always yields the identical plan. All
// windows are periodic, guaranteeing fault coverage regardless of run length.
// Intensity 0 returns an empty (injection-off) plan.
func GeneratePlan(nodes int, seed uint64, intensity float64) Plan {
	if math.IsNaN(intensity) || intensity <= 0 {
		return Plan{Seed: seed}
	}
	if intensity > 1 {
		intensity = 1
	}
	p := Plan{Seed: seed}
	// At intensity 1, one fault process per kind per 4 tiles.
	perKind := int(math.Ceil(intensity * float64(nodes) / 4))
	x := splitmix64(seed ^ 0xFA017)
	next := func(mod uint64) uint64 {
		x = splitmix64(x)
		return x % mod
	}
	for k := Kind(0); k < numKinds; k++ {
		for i := 0; i < perKind; i++ {
			f := Fault{
				Kind: k,
				Node: int(next(uint64(nodes))),
				Port: int(next(noc.NumPorts)),
				VNet: -1,
			}
			from := 100 + next(900)
			dur := 100 + uint64(float64(next(900))*intensity)
			f.From = from
			f.To = from + dur
			f.Period = f.To - f.From + 1500 + next(4000)
			switch k {
			case RouterSlow:
				f.Factor = 2 + int(next(3))
			case InjSpike:
				f.Factor = 1 + int(next(2))
			case VCJitter:
				f.MaxJitter = 1 + int(next(8))
			}
			p.Faults = append(p.Faults, f)
		}
	}
	return p
}
