package fault

import (
	"encoding/json"
	"strings"
	"testing"
)

const testNodes = 16

// TestValidateRejectsBadWindows covers the malformed-schedule rejections:
// zero-length and inverted windows, periods shorter than their window, and
// out-of-range targets and intensities.
func TestValidateRejectsBadWindows(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"zero-length", Fault{Kind: LinkStall, From: 50, To: 50}, "empty window"},
		{"inverted", Fault{Kind: MsgDrop, From: 90, To: 10, Factor: 5}, "empty window"},
		{"period-shorter-than-window", Fault{Kind: VCJitter, From: 0, To: 100, Period: 50, MaxJitter: 4, VNet: -1}, "period 50 shorter than window"},
		{"unknown-kind", Fault{Kind: numKinds, From: 0, To: 10}, "unknown kind"},
		{"node-negative", Fault{Kind: MsgDup, Node: -1, From: 0, To: 10, Factor: 5}, "outside [0,"},
		{"node-too-big", Fault{Kind: MsgDup, Node: testNodes, From: 0, To: 10, Factor: 5}, "outside [0,"},
		{"outage-too-long", Fault{Kind: RouterSlow, From: 0, To: MaxOutageWindow + 1, Factor: 2}, "exceeds MaxOutageWindow"},
		{"duty-factor-low", Fault{Kind: RouterSlow, From: 0, To: 10, Factor: 1}, "duty factor"},
		{"jitter-zero", Fault{Kind: VCJitter, From: 0, To: 10, MaxJitter: 0, VNet: -1}, "max jitter"},
		{"loss-rate-zero", Fault{Kind: MsgDrop, From: 0, To: 10, Factor: 0}, "per-mille loss rate"},
		{"loss-rate-over-1000", Fault{Kind: MsgCorrupt, From: 0, To: 10, Factor: 1001}, "per-mille loss rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Faults: []Fault{tc.f}}
			err := p.Validate(testNodes)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.f)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateRejectsOverlap covers the same-component overlap rejection for
// one-shot/one-shot, one-shot/periodic, and periodic/periodic pairs, and
// checks that disjoint or different-component pairs pass.
func TestValidateRejectsOverlap(t *testing.T) {
	drop := func(node int, from, to, period uint64) Fault {
		return Fault{Kind: MsgDrop, Node: node, From: from, To: to, Period: period, Factor: 10}
	}
	cases := []struct {
		name    string
		a, b    Fault
		overlap bool
	}{
		{"oneshot-oneshot-overlap", drop(3, 0, 100, 0), drop(3, 50, 150, 0), true},
		{"oneshot-oneshot-adjacent", drop(3, 0, 100, 0), drop(3, 100, 200, 0), false},
		{"oneshot-inside-periodic", drop(3, 1000, 1100, 0), drop(3, 0, 50, 500), true},
		{"oneshot-between-periodic-windows", drop(3, 160, 190, 0), drop(3, 0, 50, 200), false},
		{"periodic-periodic-aligned", drop(3, 0, 50, 300), drop(3, 25, 60, 300), true},
		{"periodic-periodic-disjoint-phase", drop(3, 0, 50, 300), drop(3, 100, 150, 300), false},
		{"periodic-periodic-coprime-durations-cover", drop(3, 0, 50, 300), drop(3, 0, 30, 70), true},
		{"different-node", drop(3, 0, 100, 0), drop(4, 0, 100, 0), false},
		{
			"different-kind",
			drop(3, 0, 100, 0),
			Fault{Kind: MsgDup, Node: 3, From: 0, To: 100, Factor: 10},
			false,
		},
		{
			"port-wildcard-collides",
			Fault{Kind: LinkStall, Node: 3, Port: -1, From: 0, To: 100},
			Fault{Kind: LinkStall, Node: 3, Port: 2, From: 50, To: 150},
			true,
		},
		{
			"distinct-ports-pass",
			Fault{Kind: LinkStall, Node: 3, Port: 1, From: 0, To: 100},
			Fault{Kind: LinkStall, Node: 3, Port: 2, From: 0, To: 100},
			false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Faults: []Fault{tc.a, tc.b}}
			err := p.Validate(testNodes)
			if tc.overlap && err == nil {
				t.Fatalf("Validate accepted overlapping pair %+v / %+v", tc.a, tc.b)
			}
			if !tc.overlap && err != nil {
				t.Fatalf("Validate rejected non-overlapping pair: %v", err)
			}
			if tc.overlap && !strings.Contains(err.Error(), "overlapping windows") {
				t.Fatalf("error %q does not mention overlapping windows", err)
			}
		})
	}
}

// TestGeneratePlanAlwaysValidates fuzzes the chaos-plan generators across 10k
// (seed, intensity/rate, machine size) combinations: every generated plan
// must pass its own validation — the generators are the campaign's trusted
// input source and must never hand the injector an illegal schedule.
func TestGeneratePlanAlwaysValidates(t *testing.T) {
	sizes := []int{4, 16, 64}
	x := uint64(0xC0FFEE)
	for i := 0; i < 10_000; i++ {
		x = splitmix64(x)
		seed := x
		nodes := sizes[i%len(sizes)]
		if i%2 == 0 {
			intensity := float64(x%1001) / 1000
			p := GeneratePlan(nodes, seed, intensity)
			if err := p.Validate(nodes); err != nil {
				t.Fatalf("case %d: GeneratePlan(%d, %#x, %v) invalid: %v", i, nodes, seed, intensity, err)
			}
			if intensity == 0 && len(p.Faults) != 0 {
				t.Fatalf("case %d: intensity 0 produced %d faults", i, len(p.Faults))
			}
		} else {
			rate := int(x % 1101) // exercises the >1000 clamp too
			p := GenerateLossyPlan(nodes, seed, rate)
			if err := p.Validate(nodes); err != nil {
				t.Fatalf("case %d: GenerateLossyPlan(%d, %#x, %d) invalid: %v", i, nodes, seed, rate, err)
			}
			if rate > 0 && !p.Lossy() {
				t.Fatalf("case %d: lossy plan at rate %d reports Lossy()=false", i, rate)
			}
			if rate <= 0 && len(p.Faults) != 0 {
				t.Fatalf("case %d: rate %d produced %d faults", i, rate, len(p.Faults))
			}
		}
	}
}

// TestGeneratePlanDeterministic pins the generator contract: equal inputs
// yield structurally identical plans.
func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(16, 42, 0.7)
	b := GeneratePlan(16, 42, 0.7)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("GeneratePlan not deterministic:\n%s\n%s", ja, jb)
	}
	la := GenerateLossyPlan(16, 42, 80)
	lb := GenerateLossyPlan(16, 42, 80)
	ja, _ = json.Marshal(la)
	jb, _ = json.Marshal(lb)
	if string(ja) != string(jb) {
		t.Fatalf("GenerateLossyPlan not deterministic:\n%s\n%s", ja, jb)
	}
}

// TestKindJSONRoundtrip checks the readable plan-file encoding: kinds
// marshal by name, unmarshal case-insensitively or numerically, and reject
// garbage with a useful message.
func TestKindJSONRoundtrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("roundtrip %v via %s: got %v, err %v", k, b, back, err)
		}
		var lower Kind
		if err := json.Unmarshal([]byte(`"`+strings.ToLower(k.String())+`"`), &lower); err != nil || lower != k {
			t.Fatalf("case-insensitive unmarshal of %v failed: got %v, err %v", k, lower, err)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"MsgTeleport"`), &k); err == nil {
		t.Fatal("unknown kind name accepted")
	}
	if err := json.Unmarshal([]byte(`250`), &k); err == nil {
		t.Fatal("out-of-range numeric kind accepted")
	}
	if err := json.Unmarshal([]byte(`2`), &k); err != nil || k != VCJitter {
		t.Fatalf("numeric kind 2: got %v, err %v", k, err)
	}
}
