package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardID pins the shard identity contract: order-insensitive over the
// member run IDs, sensitive to the snapshot content hash, and stable.
func TestShardID(t *testing.T) {
	a := ID(0, []string{"r1", "r2", "r3"})
	b := ID(0, []string{"r3", "r1", "r2"})
	if a != b {
		t.Fatalf("shard ID depends on run order: %s vs %s", a, b)
	}
	if c := ID(7, []string{"r1", "r2", "r3"}); c == a {
		t.Fatal("shard ID ignores the snapshot content hash")
	}
	if d := ID(0, []string{"r1", "r2"}); d == a {
		t.Fatal("shard ID ignores the member set")
	}
	if len(a) != 16 {
		t.Fatalf("shard ID %q is not 16 hex chars", a)
	}
}

// TestJournalRoundTrip covers the file-backed journal end to end: commits
// persist, a reopened journal serves them, duplicates and conflicts are
// classified, and failed or canceled records are never retained.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := RunRecord{ID: "run1", Scheme: "OrdPush", Workload: "cachebw", Cycles: 123, TraceHash: "0xabc"}
	if dup, err := j.Commit(rec); dup || err != nil {
		t.Fatalf("first commit: dup=%v err=%v", dup, err)
	}
	if dup, err := j.Commit(rec); !dup || err != nil {
		t.Fatalf("repeat commit: dup=%v err=%v; want dup, no error", dup, err)
	}
	bad := rec
	bad.Cycles = 999
	if _, err := j.Commit(bad); err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("conflicting recompute not reported: %v", err)
	}
	if _, err := j.Commit(RunRecord{ID: "failed", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Lookup("failed"); ok {
		t.Fatal("failed record was journaled")
	}
	if err := j.CommitSnapshot("cafe", 4000); err != nil {
		t.Fatal(err)
	}
	j.Close()

	re, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.Lookup("run1")
	if !ok || got.Cycles != 123 || got.TraceHash != "0xabc" {
		t.Fatalf("reopened journal lost run1: %+v ok=%v", got, ok)
	}
	if re.Runs() != 1 || re.Snapshots() != 1 {
		t.Fatalf("reopened journal holds %d runs, %d snapshots; want 1 and 1", re.Runs(), re.Snapshots())
	}
}

// TestJournalTornTail simulates a crash mid-append: a truncated final line
// (and other garbage) is skipped and counted, never fatal, and the intact
// records load.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Commit(RunRecord{ID: "ok1", Cycles: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Commit(RunRecord{ID: "ok2", Cycles: 20}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Tear the tail the way SIGKILL mid-write would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"run","record":{"id":"torn","cy`)
	f.Close()
	re, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	defer re.Close()
	if re.Runs() != 2 {
		t.Fatalf("torn journal recovered %d runs; want 2", re.Runs())
	}
	if re.Skipped() != 1 {
		t.Fatalf("torn line not counted: skipped=%d", re.Skipped())
	}
	if _, ok := re.Lookup("torn"); ok {
		t.Fatal("torn record leaked into the recovery set")
	}
}

// fakeUnit builds a toy dispatch unit whose spec carries only the run ID —
// the fake workers below echo deterministic results from it.
func fakeUnit(id string) Unit {
	spec, _ := json.Marshal(map[string]string{"run": id})
	return Unit{RunID: id, Scheme: "OrdPush", Workload: "cachebw", Spec: spec}
}

// fakeCycles is the fake workers' deterministic outcome for a run ID.
func fakeCycles(id string) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range []byte(id) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h%100000 + 1
}

// fakeWorker is a worker replica for coordinator tests: /shards computes
// deterministic records from the toy specs, /healthz answers ok, /snapshots
// remembers uploads. Behavior knobs simulate failure modes.
type fakeWorker struct {
	ts        *httptest.Server
	shards    atomic.Uint64 // /shards requests served
	snapshots atomic.Uint64 // /snapshots uploads accepted
	// fail503N makes the first N /shards attempts answer 503.
	fail503N atomic.Int64
	// fail429N makes the first N /shards attempts answer 429.
	fail429N atomic.Int64
	// fail400 makes every /shards attempt answer 400 (permanent).
	fail400 atomic.Bool
	// dead drops every request on the floor by closing the connection —
	// the SIGKILLed-worker simulation (both /shards and /healthz die).
	dead atomic.Bool
	// hang wedges /shards until the client gives up — the silent-worker
	// simulation (healthz still answers; only dispatches stall).
	hang atomic.Bool
	// needSnap makes /shards answer 409 until a snapshot was uploaded.
	needSnap atomic.Bool
}

func newFakeWorker(t *testing.T) *fakeWorker {
	w := &fakeWorker{}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w.dead.Load() {
			hj, ok := rw.(http.Hijacker)
			if !ok {
				panic("test server does not support hijack")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(rw, `{"status":"ok"}`)
		case "/snapshots":
			w.snapshots.Add(1)
			fmt.Fprintln(rw, `{"id":"cafe"}`)
		case "/shards":
			if w.hang.Load() {
				// Drain the body first: the HTTP/1 server only notices a
				// client disconnect (and cancels r.Context()) once the
				// request body has been consumed.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				return
			}
			if w.fail503N.Add(-1) >= 0 {
				http.Error(rw, "injected 503", http.StatusServiceUnavailable)
				return
			}
			if w.fail429N.Add(-1) >= 0 {
				http.Error(rw, "tenant over quota", http.StatusTooManyRequests)
				return
			}
			if w.fail400.Load() {
				http.Error(rw, "injected validation failure", http.StatusBadRequest)
				return
			}
			if w.needSnap.Load() && w.snapshots.Load() == 0 {
				http.Error(rw, "warm_start snapshot not found", http.StatusConflict)
				return
			}
			var req Request
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			w.shards.Add(1)
			resp := Response{ShardID: req.ShardID}
			for _, raw := range req.Runs {
				var spec struct {
					Run string `json:"run"`
				}
				if err := json.Unmarshal(raw, &spec); err != nil {
					http.Error(rw, err.Error(), http.StatusBadRequest)
					return
				}
				resp.Results = append(resp.Results, RunRecord{
					ID: spec.Run, Scheme: "OrdPush", Workload: "cachebw",
					Cycles: fakeCycles(spec.Run), TraceHash: "0x" + spec.Run,
				})
			}
			json.NewEncoder(rw).Encode(resp)
		default:
			http.NotFound(rw, r)
		}
	}))
	t.Cleanup(w.ts.Close)
	return w
}

// fastOptions are coordinator options tuned for test latency.
func fastOptions(workers ...string) Options {
	return Options{
		Workers:        workers,
		MaxRetries:     3,
		Timeout:        5 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		Local: func(ctx context.Context, u Unit) RunRecord {
			return RunRecord{ID: u.RunID, Scheme: u.Scheme, Workload: u.Workload,
				Cycles: fakeCycles(u.RunID), TraceHash: "0x" + u.RunID}
		},
	}
}

// runUnits drives one campaign through the coordinator and collects the
// emitted records keyed by run ID.
func runUnits(t *testing.T, c *Coordinator, units []Unit, snap []byte) (map[string]RunRecord, RunStats) {
	t.Helper()
	var mu sync.Mutex
	got := make(map[string]RunRecord)
	st := c.Run(context.Background(), "test", units, snap, func(rec RunRecord, recovered bool) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := got[rec.ID]; dup {
			t.Errorf("run %s emitted twice", rec.ID)
		}
		got[rec.ID] = rec
	})
	return got, st
}

// TestCoordinatorDispatchMerge is the happy path: every unit comes back
// exactly once with the worker's deterministic outcome, spread across both
// replicas, Cached cleared on every dispatched record.
func TestCoordinatorDispatchMerge(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	c, err := New(fastOptions(w1.ts.URL, w2.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var units []Unit
	for i := 0; i < 8; i++ {
		units = append(units, fakeUnit(fmt.Sprintf("run%d", i)))
	}
	got, st := runUnits(t, c, units, nil)
	if len(got) != 8 || st.Recomputed != 8 || st.Recovered != 0 {
		t.Fatalf("got %d records, stats %+v; want 8 recomputed", len(got), st)
	}
	for id, rec := range got {
		if rec.Error != "" || rec.Cycles != fakeCycles(id) || rec.Cached {
			t.Fatalf("record %s wrong: %+v", id, rec)
		}
	}
	if w1.shards.Load() == 0 || w2.shards.Load() == 0 {
		t.Fatalf("round-robin did not spread shards: w1=%d w2=%d", w1.shards.Load(), w2.shards.Load())
	}
	if got, want := c.Journal().Runs(), 8; got != want {
		t.Fatalf("journal holds %d runs; want %d", got, want)
	}
}

// TestCoordinatorReassignsOnWorkerDeath kills one replica (connections drop
// dead, the SIGKILL simulation) and requires every shard to complete on the
// survivor, with the reassignment counted and the dead replica's circuit
// opened.
func TestCoordinatorReassignsOnWorkerDeath(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	w2.dead.Store(true)
	opts := fastOptions(w1.ts.URL, w2.ts.URL)
	// Slow the probe so dispatch, not the health loop, discovers the death —
	// that is the reassignment path under test.
	opts.HealthInterval = 500 * time.Millisecond
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var units []Unit
	for i := 0; i < 6; i++ {
		units = append(units, fakeUnit(fmt.Sprintf("run%d", i)))
	}
	got, st := runUnits(t, c, units, nil)
	if len(got) != 6 {
		t.Fatalf("got %d records; want 6", len(got))
	}
	for id, rec := range got {
		if rec.Error != "" || rec.Cycles != fakeCycles(id) {
			t.Fatalf("record %s wrong: %+v", id, rec)
		}
	}
	if st.DegradedLocal > 0 {
		t.Fatalf("degraded to local with a healthy replica available: %+v", st)
	}
	m := c.Metrics()
	if m.Reassigned == 0 {
		t.Fatalf("no reassignment recorded after a worker died: %+v", m)
	}
	for _, wh := range m.Workers {
		if wh.URL == w2.ts.URL && wh.Healthy {
			t.Fatal("dead replica still marked healthy")
		}
	}
}

// TestCoordinatorDegradesToLocal kills every replica: the ladder's bottom
// executes all units in-process, correctly and exactly once.
func TestCoordinatorDegradesToLocal(t *testing.T) {
	w1 := newFakeWorker(t)
	w1.dead.Store(true)
	opts := fastOptions(w1.ts.URL)
	opts.MaxRetries = 1
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	units := []Unit{fakeUnit("a"), fakeUnit("b")}
	got, st := runUnits(t, c, units, nil)
	if len(got) != 2 || st.DegradedLocal == 0 {
		t.Fatalf("got %d records, stats %+v; want 2 via local degradation", len(got), st)
	}
	for id, rec := range got {
		if rec.Error != "" || rec.Cycles != fakeCycles(id) {
			t.Fatalf("local record %s wrong: %+v", id, rec)
		}
	}
	if m := c.Metrics(); m.DegradedLocal == 0 {
		t.Fatalf("degraded-local not counted: %+v", m)
	}
}

// TestCoordinatorRetries503And429 pins the retry classification: transient
// statuses are retried on the same cluster until they clear, and a 429 does
// not open the replica's circuit.
func TestCoordinatorRetries503And429(t *testing.T) {
	w1 := newFakeWorker(t)
	w1.fail503N.Store(1)
	w1.fail429N.Store(1)
	c, err := New(fastOptions(w1.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, st := runUnits(t, c, []Unit{fakeUnit("x")}, nil)
	if rec := got["x"]; rec.Error != "" || rec.Cycles != fakeCycles("x") {
		t.Fatalf("record after transient failures: %+v", rec)
	}
	if st.Retries < 2 {
		t.Fatalf("retries=%d; want >=2 (one per injected transient failure)", st.Retries)
	}
}

// TestCoordinatorPermanent400 pins the other side: a validation failure is
// not retried — one dispatch, synthesized error records for the shard.
func TestCoordinatorPermanent400(t *testing.T) {
	w1 := newFakeWorker(t)
	w1.fail400.Store(true)
	c, err := New(fastOptions(w1.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _ := runUnits(t, c, []Unit{fakeUnit("x")}, nil)
	rec := got["x"]
	if rec.Error == "" || !strings.Contains(rec.Error, "validation failure") {
		t.Fatalf("permanent failure not surfaced: %+v", rec)
	}
	if m := c.Metrics(); m.Dispatched != 1 || m.Retries != 0 {
		t.Fatalf("400 was retried: %+v", m)
	}
	if c.Journal().Runs() != 0 {
		t.Fatal("error record leaked into the journal")
	}
}

// TestCoordinatorJournalRecovery pre-commits one run and requires the
// coordinator to emit it as recovered without dispatching it, while the
// other unit still computes.
func TestCoordinatorJournalRecovery(t *testing.T) {
	w1 := newFakeWorker(t)
	j := NewMemJournal()
	if _, err := j.Commit(RunRecord{ID: "done", Scheme: "OrdPush", Workload: "cachebw", Cycles: 777}); err != nil {
		t.Fatal(err)
	}
	opts := fastOptions(w1.ts.URL)
	opts.Journal = j
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var mu sync.Mutex
	recovered := make(map[string]bool)
	got := make(map[string]RunRecord)
	st := c.Run(context.Background(), "test", []Unit{fakeUnit("done"), fakeUnit("fresh")}, nil, func(rec RunRecord, rcv bool) {
		mu.Lock()
		defer mu.Unlock()
		got[rec.ID] = rec
		recovered[rec.ID] = rcv
	})
	if st.Recovered != 1 || st.Recomputed != 1 {
		t.Fatalf("stats %+v; want 1 recovered + 1 recomputed", st)
	}
	if !recovered["done"] || recovered["fresh"] {
		t.Fatalf("recovery flags wrong: %+v", recovered)
	}
	if rec := got["done"]; rec.Cycles != 777 || !rec.Cached {
		t.Fatalf("recovered record not served from the journal: %+v", rec)
	}
	if rec := got["fresh"]; rec.Cycles != fakeCycles("fresh") || rec.Cached {
		t.Fatalf("fresh record wrong: %+v", rec)
	}
}

// TestCoordinatorSnapshotUpload covers the warm-start path: the donor is
// uploaded to a replica before its first shard (once, not per shard), and a
// replica that lost it (409) gets a re-upload on the retry.
func TestCoordinatorSnapshotUpload(t *testing.T) {
	w1 := newFakeWorker(t)
	c, err := New(fastOptions(w1.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap := []byte("donor-bytes")
	units := []Unit{fakeUnit("a"), fakeUnit("b"), fakeUnit("c")}
	got, _ := runUnits(t, c, units, snap)
	if len(got) != 3 {
		t.Fatalf("got %d records; want 3", len(got))
	}
	if n := w1.snapshots.Load(); n != 1 {
		t.Fatalf("donor uploaded %d times for 3 shards; want exactly 1", n)
	}

	// A worker that answers 409 (donor lost) forces a re-upload.
	w2 := newFakeWorker(t)
	w2.needSnap.Store(true)
	c2, err := New(fastOptions(w2.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Pretend the donor was already sent so the first dispatch skips the
	// upload and hits the 409.
	c2.replicas[0].mu.Lock()
	c2.replicas[0].snapSent = contentHash(snap)
	c2.replicas[0].mu.Unlock()
	got2, _ := runUnits(t, c2, []Unit{fakeUnit("z")}, snap)
	if rec := got2["z"]; rec.Error != "" {
		t.Fatalf("409 recovery failed: %+v", rec)
	}
	if n := w2.snapshots.Load(); n != 1 {
		t.Fatalf("donor re-uploaded %d times after 409; want 1", n)
	}
}

// TestCoordinatorCancellation fires the campaign context and requires every
// unit to come back as a canceled record rather than hang or vanish.
func TestCoordinatorCancellation(t *testing.T) {
	w1 := newFakeWorker(t)
	w1.hang.Store(true) // dispatches stall; only cancellation can end them
	c, err := New(fastOptions(w1.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	got := make(map[string]RunRecord)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, "test", []Unit{fakeUnit("a"), fakeUnit("b")}, nil, func(rec RunRecord, _ bool) {
			mu.Lock()
			got[rec.ID] = rec
			mu.Unlock()
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d records after cancel; want 2", len(got))
	}
	for id, rec := range got {
		if !rec.Canceled || rec.Error == "" {
			t.Fatalf("record %s not marked canceled: %+v", id, rec)
		}
	}
}
