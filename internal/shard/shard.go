// Package shard distributes a campaign across simd worker replicas and
// makes the distribution fault-tolerant. A campaign's expanded runs are
// grouped into shards — each shard's identity is a deterministic function of
// the warm-start snapshot's content hash and the member run identities — and
// dispatched to a configured set of worker replicas over HTTP with per-shard
// timeouts, capped retries with exponential backoff and jitter, and
// health-probe-driven circuit breaking. A shard whose worker dies or goes
// silent is reassigned to another healthy replica, or degraded to local
// execution when none is healthy; merged results are deduplicated by run
// identity, so a retried shard can never double-count a run. Completed runs
// are journaled, making a killed coordinator resumable: on restart it
// recomputes only the runs the journal does not already hold.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
)

// RunRecord is one completed (or failed) run as it travels between worker
// and coordinator and over the campaign NDJSON stream. The schema is shared
// with the simd service's per-run response lines and GET /runs records.
type RunRecord struct {
	ID           string  `json:"id"`
	Scheme       string  `json:"scheme"`
	Workload     string  `json:"workload"`
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	L1MPKI       float64 `json:"l1_mpki,omitempty"`
	L2MPKI       float64 `json:"l2_mpki,omitempty"`
	NoCFlits     uint64  `json:"noc_flits,omitempty"`
	// Cached is true when the run was served without simulating for this
	// response: a memo hit on a worker, or a journal recovery on the
	// coordinator. The coordinator clears it on freshly dispatched records so
	// a distributed campaign's lines compare byte-identical to an
	// undistributed first run.
	Cached bool `json:"cached"`
	// TraceHash/TraceEvents identify the causal event history when tracing
	// was on; equal values mean identical histories.
	TraceHash   string `json:"trace_hash,omitempty"`
	TraceEvents uint64 `json:"trace_events,omitempty"`
	// Error carries a failed or canceled run's one-line diagnostic.
	Error    string `json:"error,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
}

// sameOutcome reports whether two records for one run identity agree on the
// simulation outcome. Determinism guarantees they must; a disagreement means
// a replica is broken (or the two ran different code) and is surfaced loudly
// rather than silently keeping either.
func sameOutcome(a, b RunRecord) bool {
	return a.Cycles == b.Cycles &&
		a.Instructions == b.Instructions &&
		a.TraceHash == b.TraceHash &&
		a.TraceEvents == b.TraceEvents &&
		a.NoCFlits == b.NoCFlits
}

// Unit is one run of a campaign as the coordinator dispatches it: the run's
// deterministic identity (the dedup and journal key), its display names, and
// a self-contained single-run campaign spec a worker replica can execute.
type Unit struct {
	RunID    string
	Scheme   string
	Workload string
	Spec     json.RawMessage
}

// Request is the POST /shards body a coordinator sends a worker replica: a
// shard identity plus the member runs, each a complete single-run campaign
// spec (the same schema as POST /campaigns).
type Request struct {
	ShardID string            `json:"shard_id"`
	Tenant  string            `json:"tenant,omitempty"`
	Runs    []json.RawMessage `json:"runs"`
}

// Response is the worker's reply to a shard dispatch: every member run's
// record, in completion order. The coordinator treats the shard as complete
// only when every run is present and error-free; anything else is a failed
// attempt and retries under the backoff policy.
type Response struct {
	ShardID string      `json:"shard_id"`
	Results []RunRecord `json:"results"`
}

// ID returns a shard's deterministic cache identity: the FNV-1a of the
// warm-start snapshot's content hash (0 for cold campaigns) and the sorted
// member run identities. Equal inputs — same snapshot, same variant list —
// name the same shard on every coordinator that ever dispatches it.
func ID(snapHash uint64, runIDs []string) string {
	sorted := append([]string(nil), runIDs...)
	sort.Strings(sorted)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(snapHash >> (8 * i))
	}
	h.Write(buf[:])
	for _, id := range sorted {
		h.Write([]byte(id))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
