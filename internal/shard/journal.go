package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is the crash-resume record of a campaign coordinator or worker: an
// append-only NDJSON file of completed run records and uploaded snapshot
// content hashes. A process killed mid-campaign reopens its journal and
// resumes — completed runs are served from the journal, only incomplete ones
// recompute. The first committed record for a run identity wins; a repeat
// commit whose outcome differs is a determinism violation and is reported
// loudly instead of silently replacing either record.
//
// A Journal with an empty path is memory-only: it still deduplicates and
// serves lookups, but nothing survives the process. Memory-only journals are
// capped (memJournalCap) so a long-lived daemon cannot leak one record per
// distinct run ever seen; file-backed journals are unbounded by design —
// bounded retention would silently forfeit resumability.
type Journal struct {
	mu      sync.Mutex
	f       *os.File // nil = memory-only
	path    string
	seen    map[string]RunRecord
	snaps   map[string]uint64 // snapshot content id -> cycle
	skipped int               // unparsable lines ignored at load (torn tail)
}

// memJournalCap bounds a memory-only journal's retained records. Dedup
// correctness does not depend on retention (determinism makes a recomputed
// run byte-identical), so dropping commits past the cap only costs cache
// hits, never correctness.
const memJournalCap = 4096

// journalLine is one NDJSON line of the journal file.
type journalLine struct {
	Kind     string     `json:"kind"` // "run" | "snapshot"
	Record   *RunRecord `json:"record,omitempty"`
	Snapshot string     `json:"snapshot,omitempty"`
	Cycle    uint64     `json:"cycle,omitempty"`
}

// NewMemJournal returns a memory-only journal (no file backing).
func NewMemJournal() *Journal {
	return &Journal{seen: make(map[string]RunRecord), snaps: make(map[string]uint64)}
}

// OpenJournal opens (creating if absent) a file-backed journal and loads
// every committed record. Unparsable lines — a torn final line from a crash
// mid-append is the expected case — are counted and skipped, never fatal:
// losing one record costs one recompute, losing the journal costs the whole
// campaign.
func OpenJournal(path string) (*Journal, error) {
	j := NewMemJournal()
	j.path = path
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var l journalLine
			if err := json.Unmarshal(line, &l); err != nil {
				j.skipped++
				continue
			}
			switch l.Kind {
			case "run":
				if l.Record != nil && l.Record.Error == "" && l.Record.ID != "" {
					if _, ok := j.seen[l.Record.ID]; !ok {
						j.seen[l.Record.ID] = *l.Record
					}
				} else {
					j.skipped++
				}
			case "snapshot":
				if l.Snapshot != "" {
					j.snaps[l.Snapshot] = l.Cycle
				} else {
					j.skipped++
				}
			default:
				j.skipped++
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal %s: %v", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %v", path, err)
	}
	j.f = f
	return j, nil
}

// Path returns the journal's backing file path ("" for memory-only).
func (j *Journal) Path() string { return j.path }

// Persistent reports whether the journal survives the process.
func (j *Journal) Persistent() bool { return j.path != "" }

// Lookup returns the journaled record for a run identity.
func (j *Journal) Lookup(id string) (RunRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.seen[id]
	return rec, ok
}

// Seen returns a copy of every journaled run record, keyed by run identity —
// the recovery set a restarted process resumes from.
func (j *Journal) Seen() map[string]RunRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]RunRecord, len(j.seen))
	for id, rec := range j.seen {
		out[id] = rec
	}
	return out
}

// Commit records one completed run. Failed or canceled records are never
// journaled (their retry may succeed later). The first commit for an
// identity wins and is persisted; a repeat returns dup=true, and a repeat
// whose outcome differs from the first also returns an error — determinism
// says two computations of one run identity must agree, so a disagreement
// means a broken replica.
func (j *Journal) Commit(rec RunRecord) (dup bool, err error) {
	if rec.ID == "" || rec.Error != "" {
		return false, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, ok := j.seen[rec.ID]; ok {
		if !sameOutcome(prev, rec) {
			return true, fmt.Errorf(
				"journal: run %s recomputed with a different outcome (cycles %d vs %d, trace %s vs %s): determinism violation — a replica is broken",
				rec.ID, prev.Cycles, rec.Cycles, prev.TraceHash, rec.TraceHash)
		}
		return true, nil
	}
	if j.f == nil && len(j.seen) >= memJournalCap {
		return false, nil // memory-only: cap retention, never correctness
	}
	// Normalize the cached flag before retention: whether the original
	// computation was itself memo-served is meaningless to a later recovery.
	rec.Cached = false
	j.seen[rec.ID] = rec
	return false, j.appendLocked(journalLine{Kind: "run", Record: &rec})
}

// CommitSnapshot records an uploaded warm-start donor's content identity and
// barrier cycle, so a restarted daemon can report which donors its resumed
// campaigns expect to be re-uploaded.
func (j *Journal) CommitSnapshot(id string, cycle uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.snaps[id]; ok {
		return nil
	}
	j.snaps[id] = cycle
	return j.appendLocked(journalLine{Kind: "snapshot", Snapshot: id, Cycle: cycle})
}

// appendLocked writes one journal line and syncs it. Caller holds j.mu.
func (j *Journal) appendLocked(l journalLine) error {
	if j.f == nil {
		return nil
	}
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("journal %s: %v", j.path, err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("journal %s: %v", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: %v", j.path, err)
	}
	return nil
}

// Runs returns the number of journaled run records.
func (j *Journal) Runs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Snapshots returns the number of journaled snapshot identities.
func (j *Journal) Snapshots() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.snaps)
}

// Skipped returns the number of unparsable lines ignored at load.
func (j *Journal) Skipped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Close releases the journal's file handle (memory-only journals are a
// no-op). Safe to call once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	return f.Close()
}
