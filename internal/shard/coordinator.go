package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a shard coordinator. Zero values select defaults sized
// for a local replica cluster.
type Options struct {
	// Workers lists the replica base URLs shards dispatch to (e.g.
	// "http://127.0.0.1:18081"). At least one is required.
	Workers []string
	// ShardSize groups this many runs per shard (0 = 1). Smaller shards
	// rebalance faster after a replica dies; larger ones amortize dispatch.
	ShardSize int
	// MaxRetries bounds remote re-dispatches per shard beyond the first
	// attempt (0 = 4). An exhausted shard degrades to local execution.
	MaxRetries int
	// Timeout bounds one dispatch attempt end to end (0 = 2m). A worker that
	// goes silent mid-shard is abandoned at the timeout and the shard
	// reassigned.
	Timeout time.Duration
	// BackoffBase/BackoffMax shape the exponential backoff between retries
	// (0 = 100ms / 5s). Each delay is jittered uniformly in [d/2, d) so a
	// burst of failed shards does not re-dispatch in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HealthInterval is the /healthz probe period (0 = 2s); ProbeTimeout
	// bounds one probe (0 = 1s). A probe failure opens the replica's circuit
	// (no shards are assigned to it); a later success closes it again.
	HealthInterval time.Duration
	ProbeTimeout   time.Duration
	// Concurrency bounds concurrently dispatched shards
	// (0 = 2 × len(Workers), minimum 2).
	Concurrency int
	// Client issues dispatches and probes (nil = http.DefaultTransport;
	// per-attempt deadlines come from Timeout, not the client).
	Client *http.Client
	// Journal records completed runs for crash resume and deduplication
	// (nil = a fresh memory-only journal).
	Journal *Journal
	// Local executes one run in-process — the bottom of the degradation
	// ladder, used when no replica is healthy or a shard exhausted its
	// retries. Required.
	Local func(ctx context.Context, u Unit) RunRecord
	// Logf reports recoveries, reassignments, and degradations loudly
	// (nil = silent).
	Logf func(format string, args ...any)
}

// replica is one worker endpoint with its circuit state.
type replica struct {
	url     string
	healthy atomic.Bool
	// mu guards snapSent and serializes donor uploads to this replica, so
	// concurrent shards of one warm campaign upload the donor exactly once.
	mu sync.Mutex
	// snapSent is the content hash of the last warm-start donor uploaded to
	// this replica (0 = none).
	snapSent uint64
}

// Coordinator dispatches campaign shards across worker replicas with retry,
// reassignment, health-driven circuit breaking, local degradation, and
// journaled crash resume. One Coordinator serves many campaigns; create with
// New and Close on shutdown.
type Coordinator struct {
	opts     Options
	replicas []*replica
	client   *http.Client
	journal  *Journal
	rr       atomic.Uint64 // round-robin cursor over healthy replicas

	stop     chan struct{}
	healthWG sync.WaitGroup

	// Cumulative counters for /metrics (see Metrics).
	dispatched    atomic.Uint64
	retries       atomic.Uint64
	reassigned    atomic.Uint64
	degradedLocal atomic.Uint64
	recovered     atomic.Uint64
	conflicts     atomic.Uint64

	waitMu sync.Mutex
	waits  []uint64 // per-shard wall times (ns), bounded ring
}

// shardWaitSamples bounds the per-shard wait history backing the quantiles.
const shardWaitSamples = 512

// New builds a coordinator over the replica set and starts its health-probe
// loop. Close stops the loop.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("shard: no worker replicas configured")
	}
	if opts.Local == nil {
		return nil, fmt.Errorf("shard: no local executor configured (the degradation ladder needs a bottom rung)")
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = 1
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Minute
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 2 * len(opts.Workers)
		if opts.Concurrency < 2 {
			opts.Concurrency = 2
		}
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Journal == nil {
		opts.Journal = NewMemJournal()
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		opts:    opts,
		client:  opts.Client,
		journal: opts.Journal,
		stop:    make(chan struct{}),
	}
	for _, url := range opts.Workers {
		r := &replica{url: url}
		r.healthy.Store(true) // optimistic: the first dispatch or probe decides
		c.replicas = append(c.replicas, r)
	}
	c.healthWG.Add(1)
	go c.healthLoop()
	return c, nil
}

// Close stops the health-probe loop. In-flight Run calls finish normally.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.healthWG.Wait()
}

// Journal returns the coordinator's journal (for metrics and tests).
func (c *Coordinator) Journal() *Journal { return c.journal }

// RunStats summarizes one campaign's trip through the coordinator.
type RunStats struct {
	Shards        int
	Recovered     int // runs served from the journal without dispatch
	Recomputed    int // runs freshly computed (dispatched or degraded)
	Retries       int
	Reassigned    int
	DegradedLocal int // shards executed in-process
}

// Run distributes a campaign's units across the replica set and streams
// merged records through emit (recovered reports a journal recovery), in
// completion order. snap, when non-empty, is the warm-start donor snapshot
// every unit's spec references; it is uploaded to a replica before that
// replica's first dispatch. Run returns when every unit has been emitted
// exactly once — recovered from the journal, computed remotely, computed
// locally, or (only when ctx fires) synthesized as canceled.
func (c *Coordinator) Run(ctx context.Context, tenant string, units []Unit, snap []byte, emit func(rec RunRecord, recovered bool)) RunStats {
	var st RunStats
	var mu sync.Mutex // guards st and emitted
	emitted := make(map[string]bool, len(units))

	// Journal recovery first: completed runs never re-dispatch. Loud by
	// contract — a resumed campaign says what it skipped.
	var pending []Unit
	for _, u := range units {
		if rec, ok := c.journal.Lookup(u.RunID); ok {
			rec.Cached = true
			emitted[u.RunID] = true
			st.Recovered++
			c.recovered.Add(1)
			emit(rec, true)
			continue
		}
		pending = append(pending, u)
	}
	if st.Recovered > 0 {
		c.opts.Logf("shard: recovered %d of %d runs from journal; recomputing %d", st.Recovered, len(units), len(pending))
	}
	if len(pending) == 0 {
		return st
	}

	snapHash := uint64(0)
	if len(snap) > 0 {
		snapHash = contentHash(snap)
	}

	// Chunk the pending units into shards and dispatch them over a bounded
	// pool. Each shard completes independently: merged records stream out as
	// they land, deduplicated by run identity.
	shards := chunk(pending, c.opts.ShardSize)
	st.Shards = len(shards)
	sem := make(chan struct{}, c.opts.Concurrency)
	var wg sync.WaitGroup
	for _, sh := range shards {
		sh := sh
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ids := make([]string, len(sh))
			for i, u := range sh {
				ids[i] = u.RunID
			}
			sid := ID(snapHash, ids)
			start := time.Now()
			recs, outcome := c.runShard(ctx, sid, tenant, sh, snap, snapHash)
			c.recordWait(time.Since(start))
			mu.Lock()
			st.Retries += outcome.retries
			st.Reassigned += outcome.reassigned
			if outcome.degraded {
				st.DegradedLocal++
			}
			for _, rec := range recs {
				if emitted[rec.ID] {
					continue // a retried shard can never double-count
				}
				emitted[rec.ID] = true
				st.Recomputed++
				if rec.Error == "" {
					if _, err := c.journal.Commit(rec); err != nil {
						c.conflicts.Add(1)
						c.opts.Logf("shard %s: %v", sid, err)
					}
				}
				rec.Cached = false
				emit(rec, false)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	// A fired campaign context may leave units unemitted; account for every
	// one of them so the caller's summary always adds up.
	mu.Lock()
	defer mu.Unlock()
	for _, u := range units {
		if emitted[u.RunID] {
			continue
		}
		emitted[u.RunID] = true
		st.Recomputed++
		emit(RunRecord{
			ID: u.RunID, Scheme: u.Scheme, Workload: u.Workload,
			Error:    fmt.Sprintf("shard: campaign canceled: %v", context.Cause(ctx)),
			Canceled: true,
		}, false)
	}
	return st
}

// shardOutcome reports how one shard's dispatch went.
type shardOutcome struct {
	retries    int
	reassigned int
	degraded   bool
}

// runShard walks one shard down the degradation ladder: dispatch to a
// healthy replica, retry with backoff and reassignment on failure, and
// degrade to local execution when no replica is healthy or the retry budget
// is spent. It always returns one record per unit.
func (c *Coordinator) runShard(ctx context.Context, sid, tenant string, units []Unit, snap []byte, snapHash uint64) ([]RunRecord, shardOutcome) {
	var out shardOutcome
	var prev *replica
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if ctx.Err() != nil {
			return c.canceledRecords(ctx, units), out
		}
		w := c.pick(prev)
		if w == nil {
			break // no healthy replica: fall through to local
		}
		if attempt > 0 {
			out.retries++
			c.retries.Add(1)
			if w != prev {
				out.reassigned++
				c.reassigned.Add(1)
				c.opts.Logf("shard %s: reassigned to %s after %v", sid, w.url, lastErr)
			}
			if !c.backoff(ctx, attempt) {
				return c.cancelledOrLocal(ctx, units, &out)
			}
		}
		recs, retryable, err := c.dispatch(ctx, w, sid, tenant, units, snap, snapHash)
		if err == nil {
			return recs, out
		}
		lastErr = err
		if !retryable {
			c.opts.Logf("shard %s: permanent dispatch failure on %s: %v", sid, w.url, err)
			return c.errorRecords(units, err), out
		}
		prev = w
	}
	return c.cancelledOrLocal(ctx, units, &out)
}

// cancelledOrLocal is the ladder's bottom: canceled records when the
// campaign context fired, local execution otherwise.
func (c *Coordinator) cancelledOrLocal(ctx context.Context, units []Unit, out *shardOutcome) ([]RunRecord, shardOutcome) {
	if ctx.Err() != nil {
		return c.cancelledRecordsOut(ctx, units, out)
	}
	out.degraded = true
	c.degradedLocal.Add(1)
	c.opts.Logf("shard: no healthy replica (or retries exhausted) for %d runs; degrading to local execution", len(units))
	recs := make([]RunRecord, 0, len(units))
	for _, u := range units {
		recs = append(recs, c.opts.Local(ctx, u))
	}
	return recs, *out
}

func (c *Coordinator) cancelledRecordsOut(ctx context.Context, units []Unit, out *shardOutcome) ([]RunRecord, shardOutcome) {
	return c.canceledRecords(ctx, units), *out
}

// canceledRecords synthesizes a canceled record per unit.
func (c *Coordinator) canceledRecords(ctx context.Context, units []Unit) []RunRecord {
	recs := make([]RunRecord, 0, len(units))
	for _, u := range units {
		recs = append(recs, RunRecord{
			ID: u.RunID, Scheme: u.Scheme, Workload: u.Workload,
			Error:    fmt.Sprintf("shard: campaign canceled: %v", context.Cause(ctx)),
			Canceled: true,
		})
	}
	return recs
}

// errorRecords synthesizes an error record per unit.
func (c *Coordinator) errorRecords(units []Unit, err error) []RunRecord {
	recs := make([]RunRecord, 0, len(units))
	for _, u := range units {
		recs = append(recs, RunRecord{
			ID: u.RunID, Scheme: u.Scheme, Workload: u.Workload,
			Error: fmt.Sprintf("shard: %v", err),
		})
	}
	return recs
}

// dispatch sends one shard to one replica and parses the result. retryable
// distinguishes transient failures (transport errors, timeouts, 429, 5xx,
// partial or errored results) from permanent ones (validation 4xx) — only
// the former reassign; the latter would fail identically everywhere.
func (c *Coordinator) dispatch(ctx context.Context, w *replica, sid, tenant string, units []Unit, snap []byte, snapHash uint64) (recs []RunRecord, retryable bool, err error) {
	c.dispatched.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	if len(snap) > 0 {
		if err := c.ensureSnapshot(actx, w, snap, snapHash); err != nil {
			w.healthy.Store(false)
			return nil, true, fmt.Errorf("warm-start upload to %s: %v", w.url, err)
		}
	}
	req := Request{ShardID: sid, Tenant: tenant, Runs: make([]json.RawMessage, len(units))}
	for i, u := range units {
		req.Runs[i] = u.Spec
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+"/shards", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		// Transport failure or timeout: the replica is gone or wedged. Open
		// its circuit; the health loop closes it again when /healthz answers.
		w.healthy.Store(false)
		return nil, true, fmt.Errorf("dispatch to %s: %v", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		line := fmt.Errorf("worker %s: HTTP %d: %s", w.url, resp.StatusCode, bytes.TrimSpace(msg))
		switch {
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable:
			// An explicit live refusal (over quota, queue full, draining):
			// transient, and the worker answered — do not open its circuit,
			// or a lone replica's momentary backpressure would needlessly
			// degrade the whole campaign to local execution.
			return nil, true, line
		case resp.StatusCode == http.StatusConflict:
			// The worker lost the warm-start donor (restart or eviction):
			// forget that we sent it so the retry re-uploads first.
			w.mu.Lock()
			w.snapSent = 0
			w.mu.Unlock()
			return nil, true, line
		case resp.StatusCode >= 500:
			w.healthy.Store(false)
			return nil, true, line
		default:
			return nil, false, line // a 4xx re-validates identically everywhere
		}
	}
	var sr Response
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		w.healthy.Store(false) // truncated mid-response: the worker died on us
		return nil, true, fmt.Errorf("worker %s: shard response: %v", w.url, err)
	}
	byID := make(map[string]RunRecord, len(sr.Results))
	for _, rec := range sr.Results {
		byID[rec.ID] = rec
	}
	recs = make([]RunRecord, 0, len(units))
	for _, u := range units {
		rec, ok := byID[u.RunID]
		if !ok {
			return nil, true, fmt.Errorf("worker %s: shard response missing run %s", w.url, u.RunID)
		}
		if rec.Error != "" {
			// A worker that cancels mid-drain (or fails a run) fails the
			// whole attempt: dedup on the retry makes recomputation safe.
			return nil, true, fmt.Errorf("worker %s: run %s: %s", w.url, u.RunID, rec.Error)
		}
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// ensureSnapshot uploads the warm-start donor to the replica once per donor.
// The replica's lock is held across the upload so concurrent shards of one
// warm campaign send the bytes exactly once (the worker deduplicates by
// content hash anyway; this just saves the redundant transfers).
func (c *Coordinator) ensureSnapshot(ctx context.Context, w *replica, snap []byte, snapHash uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snapSent == snapHash {
		return nil
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/snapshots", bytes.NewReader(snap))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	w.snapSent = snapHash
	return nil
}

// pick returns the next healthy replica in round-robin order, preferring one
// different from prev when a choice exists. nil means none is healthy.
func (c *Coordinator) pick(prev *replica) *replica {
	var healthy []*replica
	for _, r := range c.replicas {
		if r.healthy.Load() {
			healthy = append(healthy, r)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	start := int(c.rr.Add(1)-1) % len(healthy)
	for i := 0; i < len(healthy); i++ {
		r := healthy[(start+i)%len(healthy)]
		if r != prev || len(healthy) == 1 {
			return r
		}
	}
	return healthy[start]
}

// backoff sleeps the jittered exponential delay for the attempt, returning
// false if ctx fired first. Delays grow BackoffBase × 2^(attempt-1), capped
// at BackoffMax, jittered uniformly into [d/2, d).
func (c *Coordinator) backoff(ctx context.Context, attempt int) bool {
	d := c.opts.BackoffBase << (attempt - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	half := int64(d / 2)
	if half > 0 {
		d = time.Duration(half + rand.Int63n(half))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// healthLoop probes every replica's /healthz on the configured interval. A
// failing probe opens the replica's circuit; a succeeding one closes it —
// the only way a replica marked down by a failed dispatch comes back.
func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	ticker := time.NewTicker(c.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			for _, r := range c.replicas {
				was := r.healthy.Load()
				now := c.probe(r)
				r.healthy.Store(now)
				if was != now {
					c.opts.Logf("shard: replica %s is now %s", r.url, map[bool]string{true: "healthy", false: "unhealthy"}[now])
				}
			}
		}
	}
}

// probe checks one replica's /healthz within ProbeTimeout.
func (c *Coordinator) probe(r *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// recordWait appends one per-shard wall-time sample to the bounded ring.
func (c *Coordinator) recordWait(d time.Duration) {
	c.waitMu.Lock()
	defer c.waitMu.Unlock()
	c.waits = append(c.waits, uint64(d))
	if len(c.waits) > shardWaitSamples {
		c.waits = c.waits[len(c.waits)-shardWaitSamples:]
	}
}

// WorkerHealth is one replica's circuit state for /metrics.
type WorkerHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// Metrics is the coordinator's observability snapshot: cumulative dispatch,
// retry, reassignment, degradation, recovery, and conflict counters, replica
// circuit states, and per-shard wait quantiles (nanoseconds) over recent
// history — enough for a chaos test to assert that recovery actually
// happened rather than silent recompute.
type Metrics struct {
	Dispatched     uint64         `json:"dispatched"`
	Retries        uint64         `json:"retries"`
	Reassigned     uint64         `json:"reassigned"`
	DegradedLocal  uint64         `json:"degraded_local"`
	Recovered      uint64         `json:"recovered"`
	Conflicts      uint64         `json:"conflicts"`
	Workers        []WorkerHealth `json:"workers"`
	ShardWaitP50Ns uint64         `json:"shard_wait_p50_ns"`
	ShardWaitP90Ns uint64         `json:"shard_wait_p90_ns"`
	ShardWaitP99Ns uint64         `json:"shard_wait_p99_ns"`
}

// Metrics returns the coordinator's cumulative counters and health states.
func (c *Coordinator) Metrics() Metrics {
	m := Metrics{
		Dispatched:    c.dispatched.Load(),
		Retries:       c.retries.Load(),
		Reassigned:    c.reassigned.Load(),
		DegradedLocal: c.degradedLocal.Load(),
		Recovered:     c.recovered.Load(),
		Conflicts:     c.conflicts.Load(),
	}
	for _, r := range c.replicas {
		m.Workers = append(m.Workers, WorkerHealth{URL: r.url, Healthy: r.healthy.Load()})
	}
	c.waitMu.Lock()
	sorted := append([]uint64(nil), c.waits...)
	c.waitMu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m.ShardWaitP50Ns = quantile(sorted, 0.50)
	m.ShardWaitP90Ns = quantile(sorted, 0.90)
	m.ShardWaitP99Ns = quantile(sorted, 0.99)
	return m
}

// chunk partitions units into shards of at most size each.
func chunk(units []Unit, size int) [][]Unit {
	var out [][]Unit
	for len(units) > size {
		out = append(out, units[:size])
		units = units[size:]
	}
	if len(units) > 0 {
		out = append(out, units)
	}
	return out
}

// contentHash is the snapshot content identity (FNV-1a), mirroring the
// harness's SnapshotHash without importing the root package.
func contentHash(data []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// quantile returns the q-quantile of sorted samples with linear
// interpolation (the harness's Quantile, duplicated to keep this package
// free of the root import cycle).
func quantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	a, b := float64(sorted[lo]), float64(sorted[lo+1])
	return uint64(a + (b-a)*frac + 0.5)
}
