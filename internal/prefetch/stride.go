package prefetch

import (
	"pushmulticast/internal/cache"
	"pushmulticast/internal/sim"
)

// strideEntry is one detected access stream.
type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int
	lastUse  sim.Cycle
	valid    bool
}

// Stride is the Table I L2 stride prefetcher: 16 streams, up to 4 prefetches
// per stream. Streams are allocated by miss-address proximity (the model has
// no PCs); two consecutive misses at a constant line stride arm a stream.
type Stride struct {
	l2      *cache.L2
	entries []strideEntry
	degree  int
	issued  uint64
}

// NewStride builds a stride prefetcher trained by the L2's demand misses.
// It installs itself as the L2's OnMiss hook.
func NewStride(l2 *cache.L2, streams, degree int) *Stride {
	s := &Stride{l2: l2, entries: make([]strideEntry, streams), degree: degree}
	l2.OnMiss = s.onMiss
	return s
}

// onMiss trains on a demand L2 miss and issues prefetches down an armed
// stream.
func (s *Stride) onMiss(lineAddr uint64, now sim.Cycle) {
	const window = 16 * 64 // proximity window for stream matching (bytes)
	var match *strideEntry
	for i := range s.entries {
		e := &s.entries[i]
		if !e.valid {
			continue
		}
		d := int64(lineAddr) - int64(e.lastAddr)
		if d > -window && d < window && d != 0 {
			match = e
			break
		}
	}
	if match == nil {
		// Allocate the LRU entry.
		victim := &s.entries[0]
		for i := range s.entries {
			e := &s.entries[i]
			if !e.valid {
				victim = e
				break
			}
			if e.lastUse < victim.lastUse {
				victim = e
			}
		}
		*victim = strideEntry{lastAddr: lineAddr, lastUse: now, valid: true}
		return
	}
	d := int64(lineAddr) - int64(match.lastAddr)
	if d == match.stride {
		match.conf++
	} else {
		match.stride = d
		match.conf = 1
	}
	match.lastAddr = lineAddr
	match.lastUse = now
	if match.conf < 2 {
		return
	}
	// Prefetch `degree` lines starting `strideDistance` strides ahead so
	// the stream runs in front of the demand window.
	const strideDistance = 8
	for k := strideDistance; k < strideDistance+s.degree; k++ {
		addr := int64(lineAddr) + match.stride*int64(k)
		if addr <= 0 {
			break
		}
		s.issued++
		s.l2.Prefetch(uint64(addr), false, now)
	}
}

// Issued returns the number of prefetches issued.
func (s *Stride) Issued() uint64 { return s.issued }
