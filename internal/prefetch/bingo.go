// Package prefetch implements the baseline configuration's hardware
// prefetchers from Table I: a Bingo-style spatial prefetcher at the L1 data
// cache [4] and a stride prefetcher at the L2.
package prefetch

import (
	"pushmulticast/internal/cache"
	"pushmulticast/internal/sim"
)

// bingoRegion tracks the access footprint of one spatial region currently
// being observed (Bingo's accumulation table).
type bingoRegion struct {
	region    uint64
	footprint uint64
	lastUse   sim.Cycle
}

// Bingo is a simplified Bingo spatial prefetcher: it records per-region
// access footprints in a pattern history table and, on re-entry to a known
// region, prefetches the recorded footprint into the L1/L2. Regular
// re-scanned working sets (the paper's workloads) hit with near-perfect
// accuracy, which is what makes L1Bingo-L2Stride a strong baseline.
type Bingo struct {
	l2          *cache.L2
	regionShift uint
	linesPerReg uint
	active      []bingoRegion
	pht         map[uint64]uint64 // region -> footprint bitmap
	phtCap      int
	phtOrder    []uint64 // FIFO eviction order

	issued, useful uint64
}

// NewBingo builds a Bingo prefetcher feeding the given L2 (with L1 fills).
func NewBingo(l2 *cache.L2, regionBytes, phtEntries, lineSize int) *Bingo {
	shift := uint(0)
	for 1<<shift < regionBytes {
		shift++
	}
	return &Bingo{
		l2:          l2,
		regionShift: shift,
		linesPerReg: uint(regionBytes / lineSize),
		active:      make([]bingoRegion, 0, 8),
		pht:         make(map[uint64]uint64),
		phtCap:      phtEntries,
	}
}

// OnAccess implements cpu.Prefetcher: it observes every demand load.
func (b *Bingo) OnAccess(lineAddr uint64, now sim.Cycle) {
	region := lineAddr >> b.regionShift
	lineIdx := (lineAddr >> 6) & uint64(b.linesPerReg-1)
	for i := range b.active {
		if b.active[i].region == region {
			b.active[i].footprint |= 1 << lineIdx
			b.active[i].lastUse = now
			return
		}
	}
	// Region trigger: commit the coldest tracked region and start tracking
	// this one; replay a recorded footprint if we have seen the region.
	if len(b.active) >= cap(b.active) {
		cold := 0
		for i := range b.active {
			if b.active[i].lastUse < b.active[cold].lastUse {
				cold = i
			}
		}
		b.commit(b.active[cold])
		b.active[cold] = bingoRegion{region: region, footprint: 1 << lineIdx, lastUse: now}
	} else {
		b.active = append(b.active, bingoRegion{region: region, footprint: 1 << lineIdx, lastUse: now})
	}
	if fp, ok := b.pht[region]; ok {
		b.replay(region, fp, lineAddr, now)
	}
	// Lookahead: also replay the next region's recorded footprint so the
	// prefetcher runs ahead of the demand window on streaming access
	// patterns, as an aggressive spatial prefetcher does.
	if fp, ok := b.pht[region+1]; ok {
		b.replay(region+1, fp, lineAddr, now)
	}
}

// replay prefetches a region's recorded footprint.
func (b *Bingo) replay(region uint64, fp uint64, trigger uint64, now sim.Cycle) {
	base := region << b.regionShift
	for i := uint(0); i < b.linesPerReg; i++ {
		if fp&(1<<i) == 0 {
			continue
		}
		addr := base + uint64(i)*64
		if addr == trigger {
			continue
		}
		b.issued++
		b.l2.Prefetch(addr, true, now)
	}
}

// commit records a finished region's footprint in the PHT.
func (b *Bingo) commit(r bingoRegion) {
	if r.region == 0 && r.footprint == 0 {
		return
	}
	if _, ok := b.pht[r.region]; !ok {
		if len(b.pht) >= b.phtCap {
			oldest := b.phtOrder[0]
			b.phtOrder = b.phtOrder[1:]
			delete(b.pht, oldest)
		}
		b.phtOrder = append(b.phtOrder, r.region)
	}
	b.pht[r.region] |= r.footprint
}

// Issued returns the number of prefetches issued.
func (b *Bingo) Issued() uint64 { return b.issued }
