package prefetch

import (
	"testing"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// nopCore satisfies cache.Requestor.
type nopCore struct{}

func (nopCore) LoadDone(uint64, sim.Cycle)  {}
func (nopCore) StoreDone(uint64, sim.Cycle) {}

func testL2(t *testing.T) (*cache.L2, *sim.Engine) {
	t.Helper()
	cfg := config.Default16()
	st := stats.New()
	eng := sim.NewEngine(0, 0)
	net, err := noc.New(cfg.NoC, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	l2 := cache.NewL2(0, &cfg, net, eng, st, nopCore{})
	return l2, eng
}

func TestBingoLearnsAndReplays(t *testing.T) {
	l2, _ := testL2(t)
	b := NewBingo(l2, 2048, 256, 64)
	// First pass over more regions than the accumulation table holds, so
	// early regions are evicted and their footprints committed to the PHT.
	for line := uint64(0); line < 12*32; line++ {
		b.OnAccess(1<<30+line*64, sim.Cycle(line))
	}
	issuedAfterTrain := b.Issued()
	// Revisit the first region: its footprint must replay.
	b.OnAccess(1<<30, 1000)
	if b.Issued() <= issuedAfterTrain {
		t.Fatal("region revisit did not replay the footprint")
	}
}

func TestBingoNoReplayForColdRegion(t *testing.T) {
	l2, _ := testL2(t)
	b := NewBingo(l2, 2048, 256, 64)
	b.OnAccess(1<<30, 0)
	if b.Issued() != 0 {
		t.Fatalf("cold region issued %d prefetches", b.Issued())
	}
}

func TestBingoPartialFootprint(t *testing.T) {
	l2, _ := testL2(t)
	b := NewBingo(l2, 2048, 256, 64)
	// Touch only even lines of many regions, then revisit one.
	for r := uint64(0); r < 9; r++ {
		for i := uint64(0); i < 32; i += 2 {
			b.OnAccess(1<<30+r*2048+i*64, 0)
		}
	}
	before := b.Issued()
	b.OnAccess(1<<30, 10)
	replayed := b.Issued() - before
	if replayed == 0 || replayed > 16 {
		t.Fatalf("partial footprint replayed %d lines, want 1..16", replayed)
	}
}

func TestStrideDetectsStream(t *testing.T) {
	l2, _ := testL2(t)
	s := NewStride(l2, 16, 4)
	base := uint64(1 << 30)
	for i := uint64(0); i < 6; i++ {
		l2.OnMiss(base+i*64, sim.Cycle(i))
	}
	if s.Issued() == 0 {
		t.Fatal("constant stride not detected")
	}
}

func TestStrideIgnoresRandom(t *testing.T) {
	l2, _ := testL2(t)
	s := NewStride(l2, 16, 4)
	addrs := []uint64{0x40000000, 0x51234000, 0x43210000, 0x60000000, 0x48888000}
	for i, a := range addrs {
		l2.OnMiss(a, sim.Cycle(i))
	}
	if s.Issued() != 0 {
		t.Fatalf("random misses triggered %d prefetches", s.Issued())
	}
}

func TestStrideTracksMultipleStreams(t *testing.T) {
	l2, _ := testL2(t)
	s := NewStride(l2, 16, 4)
	a, b := uint64(1<<30), uint64(2<<30)
	for i := uint64(0); i < 5; i++ {
		l2.OnMiss(a+i*64, sim.Cycle(i))
		l2.OnMiss(b+i*128, sim.Cycle(i))
	}
	if s.Issued() < 16 {
		t.Fatalf("two streams issued only %d prefetches", s.Issued())
	}
}

func TestStrideNegativeStride(t *testing.T) {
	l2, _ := testL2(t)
	s := NewStride(l2, 16, 4)
	base := uint64(1 << 30)
	for i := 0; i < 6; i++ {
		l2.OnMiss(base-uint64(i)*64, sim.Cycle(i))
	}
	if s.Issued() == 0 {
		t.Fatal("negative stride not detected")
	}
}
