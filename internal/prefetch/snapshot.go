package prefetch

import (
	"sort"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
)

// SaveState serializes the Bingo prefetcher: active accumulation regions (in
// tracking order — LRU commit decisions depend on it), the pattern history
// table (entries sorted by region; the FIFO order slice written in full,
// since it is the eviction schedule), and the issue counters.
func (b *Bingo) SaveState(w *snapshot.Writer) {
	w.Section("prefetch.bingo")
	w.Int(len(b.active))
	for _, a := range b.active {
		w.U64(a.region)
		w.U64(a.footprint)
		w.U64(uint64(a.lastUse))
	}
	w.Int(len(b.phtOrder))
	for _, reg := range b.phtOrder {
		w.U64(reg)
	}
	keys := make([]uint64, 0, len(b.pht))
	for k := range b.pht {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.U64(k)
		w.U64(b.pht[k])
	}
	w.U64(b.issued)
	w.U64(b.useful)
}

// LoadState restores a Bingo prefetcher saved by SaveState.
func (b *Bingo) LoadState(r *snapshot.Reader) error {
	r.Section("prefetch.bingo")
	na := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < na; i++ {
		reg := r.U64()
		fp := r.U64()
		b.active = append(b.active, bingoRegion{region: reg, footprint: fp, lastUse: sim.Cycle(r.U64())})
	}
	no := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < no; i++ {
		b.phtOrder = append(b.phtOrder, r.U64())
	}
	nk := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nk; i++ {
		k := r.U64()
		b.pht[k] = r.U64()
	}
	b.issued = r.U64()
	b.useful = r.U64()
	return r.Err()
}

// SaveState serializes the stride prefetcher's stream table verbatim.
func (s *Stride) SaveState(w *snapshot.Writer) {
	w.Section("prefetch.stride")
	w.Int(len(s.entries))
	for i := range s.entries {
		e := &s.entries[i]
		w.U64(e.lastAddr)
		w.I64(e.stride)
		w.Int(e.conf)
		w.U64(uint64(e.lastUse))
		w.Bool(e.valid)
	}
	w.U64(s.issued)
}

// LoadState restores a stride prefetcher saved by SaveState.
func (s *Stride) LoadState(r *snapshot.Reader) error {
	r.Section("prefetch.stride")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(s.entries) {
		s.entries = make([]strideEntry, n)
	}
	for i := range s.entries {
		e := &s.entries[i]
		e.lastAddr = r.U64()
		e.stride = r.I64()
		e.conf = r.Int()
		e.lastUse = sim.Cycle(r.U64())
		e.valid = r.Bool()
	}
	s.issued = r.U64()
	return r.Err()
}
