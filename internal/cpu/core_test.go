package cpu

import (
	"testing"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/config"
	"pushmulticast/internal/memctrl"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// rig is a minimal single-tile-per-core machine for core-model tests.
type rig struct {
	eng   *sim.Engine
	st    *stats.All
	cores []*Core
}

func buildRig(t *testing.T, streams []workload.Stream) *rig {
	t.Helper()
	cfg := config.Default16().Scaled(16)
	st := stats.New()
	eng := sim.NewEngine(100_000, 10_000_000)
	net, err := noc.New(cfg.NoC, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{eng: eng, st: st}
	barrier := NewBarrier(len(streams))
	for i := 0; i < cfg.Tiles(); i++ {
		id := noc.NodeID(i)
		var c *Core
		l2 := cache.NewL2(id, &cfg, net, eng, st, deferred{&c})
		cache.NewLLC(id, &cfg, net, eng, st)
		if i < len(streams) {
			c = New(id, &cfg, eng, st, l2, streams[i], barrier)
			r.cores = append(r.cores, c)
		}
	}
	for _, mc := range cfg.MemControllers() {
		memctrl.New(mc, &cfg, net, eng, st)
	}
	return r
}

type deferred struct{ c **Core }

func (d deferred) LoadDone(a uint64, n sim.Cycle) {
	if *d.c != nil {
		(*d.c).LoadDone(a, n)
	}
}

func (d deferred) StoreDone(a uint64, n sim.Cycle) {
	if *d.c != nil {
		(*d.c).StoreDone(a, n)
	}
}

func (r *rig) run(t *testing.T) sim.Cycle {
	t.Helper()
	end, err := r.eng.Run(func() bool {
		for _, c := range r.cores {
			if !c.Finished() {
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func ops(list ...workload.Op) workload.Stream {
	i := 0
	return workload.StreamFunc(func() workload.Op {
		if i >= len(list) {
			return workload.Op{Kind: workload.OpEnd}
		}
		op := list[i]
		i++
		return op
	})
}

func TestCoreRetiresWorkAtWidth(t *testing.T) {
	r := buildRig(t, []workload.Stream{ops(workload.Op{Kind: workload.OpWork, N: 800})})
	end := r.run(t)
	// 800 instructions at width 8 = 100 cycles (+1 for OpEnd consumption).
	if end < 100 || end > 110 {
		t.Errorf("pure work took %d cycles, want ~100", end)
	}
	if got := r.cores[0].Instructions(); got != 800 {
		t.Errorf("instructions = %d, want 800", got)
	}
}

func TestCoreLoadCompletes(t *testing.T) {
	r := buildRig(t, []workload.Stream{ops(
		workload.Op{Kind: workload.OpLoad, Addr: 1 << 30},
	)})
	end := r.run(t)
	if r.st.Core.Loads != 1 {
		t.Fatalf("loads = %d", r.st.Core.Loads)
	}
	// Cold miss: LLC fetch + DRAM => hundreds of cycles.
	if end < 50 {
		t.Errorf("cold load finished implausibly fast: %d cycles", end)
	}
}

func TestCoreWindowLimitsOutstanding(t *testing.T) {
	// 64 independent loads to distinct lines: with a 16-deep window the
	// core must stall; stalls are recorded.
	var list []workload.Op
	for i := 0; i < 64; i++ {
		list = append(list, workload.Op{Kind: workload.OpLoad, Addr: uint64(1<<30) + uint64(i)*64})
	}
	r := buildRig(t, []workload.Stream{ops(list...)})
	r.run(t)
	if r.cores[0].StallCycles() == 0 {
		t.Error("expected stall cycles with a full load window")
	}
}

func TestCoreStoreAcquiresOwnership(t *testing.T) {
	r := buildRig(t, []workload.Stream{ops(
		workload.Op{Kind: workload.OpStore, Addr: 1 << 30},
		workload.Op{Kind: workload.OpLoad, Addr: 1 << 30},
	)})
	r.run(t)
	if r.st.Core.Stores != 1 || r.st.Core.Loads != 1 {
		t.Fatalf("ops wrong: %d stores %d loads", r.st.Core.Stores, r.st.Core.Loads)
	}
}

func TestBarrierSynchronizesCores(t *testing.T) {
	// Core 0 does a lot of work before the barrier; core 1 a little. Both
	// finish essentially together because of the barrier.
	r := buildRig(t, []workload.Stream{
		ops(workload.Op{Kind: workload.OpWork, N: 8000}, workload.Op{Kind: workload.OpBarrier}),
		ops(workload.Op{Kind: workload.OpWork, N: 8}, workload.Op{Kind: workload.OpBarrier}),
	})
	end := r.run(t)
	if end < 1000 {
		t.Errorf("barrier released too early: %d cycles", end)
	}
	if r.cores[1].StallCycles() < 900 {
		t.Errorf("fast core barely waited: %d stall cycles", r.cores[1].StallCycles())
	}
}

func TestBarrierGenerations(t *testing.T) {
	b := NewBarrier(2)
	g0 := b.arrive(nil, 10)
	if b.gen != 0 {
		t.Fatal("generation advanced before all arrived")
	}
	if released, _, _ := b.status(g0, 10); released {
		t.Fatal("status reports release before all arrived")
	}
	g1 := b.arrive(nil, 14)
	if g0 != g1 || b.gen != 1 {
		t.Fatalf("generation accounting wrong: %d %d gen=%d", g0, g1, b.gen)
	}
	// The release happens at cycle 14 and turns visible the cycle after.
	if released, visible, relAt := b.status(g0, 14); !released || visible || relAt != 14 {
		t.Fatalf("same-cycle status = (%v, %v, %d), want released but not visible at 14",
			released, visible, relAt)
	}
	if _, visible, _ := b.status(g0, 15); !visible {
		t.Fatal("release not visible the cycle after it happened")
	}
}

func TestCoreFinishedRequiresDrain(t *testing.T) {
	r := buildRig(t, []workload.Stream{ops(workload.Op{Kind: workload.OpLoad, Addr: 1 << 30})})
	if r.cores[0].Finished() {
		t.Fatal("unstarted core reports finished")
	}
	r.run(t)
	if !r.cores[0].Finished() {
		t.Fatal("core not finished after run")
	}
}
