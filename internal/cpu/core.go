// Package cpu approximates an aggressive out-of-order core with a simple
// bounded-window model: instructions retire at a fixed width, loads and
// stores issue without blocking until the outstanding-miss window or store
// buffer fills, and barriers synchronize all cores. The model reproduces
// the property every result in the paper depends on: throughput is limited
// by memory-level parallelism and by cache/NoC bandwidth, while short hit
// latencies are hidden.
package cpu

import (
	"sync"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// Barrier synchronizes all cores; a generation counter releases waiters. A
// release becomes visible to every core — the last arriver included — the
// cycle after it happens, independent of registration or tick order, so the
// resume schedule is identical across the serial, dense, and parallel
// kernels. The mutex makes arrivals from concurrent lanes safe; contention is
// negligible (one arrival per core per barrier episode).
type Barrier struct {
	mu      sync.Mutex
	n       int
	arrived int
	gen     uint64
	relAt   sim.Cycle
	waiters []*sim.Handle
}

// NewBarrier returns a barrier for n cores.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// arrive registers one arrival; the last arrival advances the generation,
// records the release cycle, and wakes every parked waiter.
func (b *Barrier) arrive(h *sim.Handle, now sim.Cycle) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.arrived++
	if h != nil {
		b.waiters = append(b.waiters, h)
	}
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.relAt = now
		for i, w := range b.waiters {
			w.Wake()
			b.waiters[i] = nil
		}
		b.waiters = b.waiters[:0]
	}
	return gen
}

// status reports whether the generation a core arrived in has been released,
// whether that release is visible yet (releases take effect the cycle after
// they happen), and the release cycle.
func (b *Barrier) status(gen uint64, now sim.Cycle) (released, visible bool, relAt sim.Cycle) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gen == gen {
		return false, false, 0
	}
	return true, now > b.relAt, b.relAt
}

// Prefetcher observes the core's demand accesses (the Bingo L1 prefetcher
// hook).
type Prefetcher interface {
	OnAccess(lineAddr uint64, now sim.Cycle)
}

// Core executes one workload stream against its private cache stack.
type Core struct {
	id      noc.NodeID
	cfg     *config.System
	eng     *sim.Engine
	st      *stats.All
	l2      *cache.L2
	stream  workload.Stream
	barrier *Barrier

	h *sim.Handle

	cur     workload.Op
	haveOp  bool
	ended   bool
	waiting bool // parked at a barrier
	myGen   uint64

	// blocked/blockedAt track a sleep entered while stalled; the wake tick
	// reconstructs the stall cycles a dense run would have counted one by one.
	blocked   bool
	blockedAt sim.Cycle

	// loadRetry marks the current load op as a retry of a rejected attempt:
	// the prefetcher already observed the access and must not see it again
	// (retry counts would otherwise depend on how often the core polls,
	// which differs between the dense and wake-driven kernels).
	loadRetry bool

	outLoads  int
	outStores int

	insts  uint64
	stalls uint64

	// opsConsumed counts stream.Next() calls; checkpoint restore replays
	// that many ops on a freshly built stream to recover its position
	// (streams are closures and cannot be serialized directly).
	opsConsumed uint64

	// L1Prefetcher, when set, observes demand loads.
	L1Prefetcher Prefetcher
}

// New builds a core and registers it with the engine.
func New(id noc.NodeID, cfg *config.System, eng *sim.Engine, st *stats.All,
	l2 *cache.L2, stream workload.Stream, barrier *Barrier) *Core {
	c := &Core{id: id, cfg: cfg, eng: eng, st: st, l2: l2, stream: stream, barrier: barrier}
	c.h = eng.Register(c)
	return c
}

// WakeUp marks the core runnable again; the L2 calls it (via cache.Requestor)
// whenever it processes a message, since any of those can free the resource a
// core is stalled on.
func (c *Core) WakeUp() { c.h.Wake() }

// Finished reports whether the core retired its whole stream and drained
// all outstanding memory operations.
func (c *Core) Finished() bool {
	return c.ended && c.outLoads == 0 && c.outStores == 0
}

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.insts }

// StallCycles returns cycles with zero retirement before completion.
func (c *Core) StallCycles() uint64 { return c.stalls }

// LoadDone implements cache.Requestor.
func (c *Core) LoadDone(lineAddr uint64, now sim.Cycle) {
	if c.outLoads <= 0 {
		panic("cpu: LoadDone without outstanding load")
	}
	c.outLoads--
	c.h.Wake()
}

// StoreDone implements cache.Requestor.
func (c *Core) StoreDone(lineAddr uint64, now sim.Cycle) {
	if c.outStores <= 0 {
		panic("cpu: StoreDone without outstanding store")
	}
	c.outStores--
	c.h.Wake()
}

// Tick retires up to CoreWidth instructions, issuing memory operations
// non-blocking until a structural resource fills.
func (c *Core) Tick(now sim.Cycle) {
	if c.blocked {
		// Sleeping skipped the ticks between blockedAt and now; a dense run
		// would have counted each of those cycles as a stall (the unblocking
		// event is what woke us, so none of them could have issued).
		c.stalls += uint64(now - c.blockedAt - 1)
		c.blocked = false
	}
	if c.ended {
		c.h.Sleep()
		return
	}
	if c.waiting {
		released, visible, relAt := c.barrier.status(c.myGen, now)
		if !visible {
			c.stalls++
			if released {
				c.parkUntil(now, relAt+1)
			} else {
				c.park(now)
			}
			return
		}
		c.waiting = false
		c.haveOp = false // consume the barrier op
	}
	budget := c.cfg.CoreWidth
	issued := 0
	for budget > 0 {
		if !c.haveOp {
			c.cur = c.stream.Next()
			c.opsConsumed++
			c.haveOp = true
		}
		switch c.cur.Kind {
		case workload.OpWork:
			n := c.cur.N
			if n > budget {
				c.cur.N -= budget
				c.insts += uint64(budget)
				issued += budget
				budget = 0
				break
			}
			c.insts += uint64(n)
			issued += n
			budget -= n
			c.haveOp = false
		case workload.OpLoad:
			if c.outLoads >= c.cfg.CoreWindow {
				budget = 0
				break
			}
			line := c.lineOf(c.cur.Addr)
			if c.L1Prefetcher != nil && !c.loadRetry {
				c.L1Prefetcher.OnAccess(line, now)
			}
			done, accepted := c.l2.Load(line, now)
			if !accepted {
				c.loadRetry = true
				budget = 0
				break
			}
			c.loadRetry = false
			if !done {
				c.outLoads++
			}
			c.insts++
			c.st.Core.Loads++
			issued++
			budget--
			c.haveOp = false
		case workload.OpStore:
			if c.outStores >= c.cfg.StoreBuffer {
				budget = 0
				break
			}
			line := c.lineOf(c.cur.Addr)
			done, accepted := c.l2.Store(line, now)
			if !accepted {
				budget = 0
				break
			}
			if !done {
				c.outStores++
			}
			c.insts++
			c.st.Core.Stores++
			issued++
			budget--
			c.haveOp = false
		case workload.OpBarrier:
			if c.outLoads > 0 || c.outStores > 0 {
				budget = 0
				break
			}
			c.myGen = c.barrier.arrive(c.h, now)
			c.waiting = true
			budget = 0
		case workload.OpEnd:
			if c.outLoads > 0 || c.outStores > 0 {
				budget = 0
				break
			}
			c.ended = true
			budget = 0
		}
	}
	if issued > 0 {
		c.eng.Progress()
	} else if !c.ended {
		c.stalls++
	}
	switch {
	case c.ended:
		c.h.Sleep()
	case c.waiting:
		// If this was the last arrival the generation already advanced and
		// nothing would wake us, so sleep only until the release turns
		// visible next cycle; otherwise park until the release wakes us.
		if released, _, relAt := c.barrier.status(c.myGen, now); released {
			c.parkUntil(now, relAt+1)
		} else {
			c.park(now)
		}
	case issued == 0:
		// Stalled on a structural resource; LoadDone/StoreDone or the L2's
		// WakeUp (any processed message may free an MSHR, the writeback
		// buffer, or a transient victim) unblocks us.
		c.park(now)
	}
}

// park records the cycle the core went idle and sleeps; the stall counter for
// the skipped span is reconstructed on wake.
func (c *Core) park(now sim.Cycle) {
	c.blocked = true
	c.blockedAt = now
	c.h.Sleep()
}

// parkUntil is park with a known wake cycle (a barrier release turning
// visible), so no external Wake is needed.
func (c *Core) parkUntil(now, at sim.Cycle) {
	c.blocked = true
	c.blockedAt = now
	c.h.SleepUntil(at)
}

// Handle returns the core's scheduling handle (for lane assignment).
func (c *Core) Handle() *sim.Handle { return c.h }

func (c *Core) lineOf(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineSize-1)
}
