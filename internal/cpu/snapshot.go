package cpu

import (
	"fmt"

	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
	"pushmulticast/internal/workload"
)

// SaveState serializes the core's retirement state. The workload stream is a
// closure and cannot be serialized; instead the Next() call count travels,
// and LoadState replays that many ops on the freshly built stream — streams
// are pure functions of (workload, core, tiles, scale), so the replayed
// stream is positioned exactly where the saved one was.
func (c *Core) SaveState(w *snapshot.Writer) {
	w.Section("cpu.core")
	w.U8(uint8(c.cur.Kind))
	w.U64(c.cur.Addr)
	w.Int(c.cur.N)
	w.Bool(c.haveOp)
	w.Bool(c.ended)
	w.Bool(c.waiting)
	w.U64(c.myGen)
	w.Bool(c.blocked)
	w.U64(uint64(c.blockedAt))
	w.Bool(c.loadRetry)
	w.Int(c.outLoads)
	w.Int(c.outStores)
	w.U64(c.insts)
	w.U64(c.stalls)
	w.U64(c.opsConsumed)
}

// LoadState restores a core saved by SaveState, fast-forwarding its stream.
func (c *Core) LoadState(r *snapshot.Reader) error {
	r.Section("cpu.core")
	c.cur.Kind = workload.OpKind(r.U8())
	c.cur.Addr = r.U64()
	c.cur.N = r.Int()
	c.haveOp = r.Bool()
	c.ended = r.Bool()
	c.waiting = r.Bool()
	c.myGen = r.U64()
	c.blocked = r.Bool()
	c.blockedAt = sim.Cycle(r.U64())
	c.loadRetry = r.Bool()
	c.outLoads = r.Int()
	c.outStores = r.Int()
	c.insts = r.U64()
	c.stalls = r.U64()
	c.opsConsumed = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	// Replay the stream to its saved position. The saved cur is authoritative
	// (a partially retired OpWork has its N decremented), so replayed ops are
	// discarded.
	for i := uint64(0); i < c.opsConsumed; i++ {
		c.stream.Next()
	}
	return nil
}

// SaveState serializes the barrier: arrival count, generation, release
// cycle, and the parked waiters (as indices into the core list, in arrival
// order).
func (b *Barrier) SaveState(w *snapshot.Writer, cores []*Core) {
	w.Section("cpu.barrier")
	w.Int(b.n)
	w.Int(b.arrived)
	w.U64(b.gen)
	w.U64(uint64(b.relAt))
	w.Int(len(b.waiters))
	for _, wh := range b.waiters {
		idx := -1
		for i, c := range cores {
			if c.h == wh {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic("cpu: barrier waiter handle belongs to no core")
		}
		w.Int(idx)
	}
}

// LoadState restores a barrier saved by SaveState, resolving waiter indices
// back to the fresh cores' handles.
func (b *Barrier) LoadState(r *snapshot.Reader, cores []*Core) error {
	r.Section("cpu.barrier")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != b.n {
		return fmt.Errorf("%w: snapshot barrier spans %d cores, this build %d", snapshot.ErrMismatch, n, b.n)
	}
	b.arrived = r.Int()
	b.gen = r.U64()
	b.relAt = sim.Cycle(r.U64())
	nw := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nw; i++ {
		idx := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if idx < 0 || idx >= len(cores) {
			return fmt.Errorf("%w: barrier waiter index %d out of range", snapshot.ErrCorrupt, idx)
		}
		b.waiters = append(b.waiters, cores[idx].h)
	}
	return r.Err()
}
