package cache

import (
	"fmt"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
)

// codec decodes packet payloads drawn through the cache controllers' queues.
var codec coherence.Codec

// saveLine / loadLine serialize one cache line verbatim (invalid ways
// included: a free way's stale metadata is never read, but writing every way
// keeps the format position-independent of replacement history).
func saveLine(w *snapshot.Writer, l *Line) {
	w.U64(l.Tag)
	w.U8(uint8(l.State))
	w.U64(l.Version)
	w.Bool(l.Dirty)
	w.Bool(l.Pushed)
	w.Bool(l.Accessed)
	w.U64(uint64(l.LastUse))
	noc.SaveDests(w, l.Sharers)
	w.U32(uint32(l.Owner))
	w.U32(l.Epoch)
}

func loadLine(r *snapshot.Reader, l *Line) {
	l.Tag = r.U64()
	l.State = State(r.U8())
	l.Version = r.U64()
	l.Dirty = r.Bool()
	l.Pushed = r.Bool()
	l.Accessed = r.Bool()
	l.LastUse = sim.Cycle(r.U64())
	l.Sharers = noc.LoadDests(r)
	l.Owner = noc.NodeID(r.U32())
	l.Epoch = r.U32()
}

// SaveState serializes the array's full line contents, set by set, way by
// way. Geometry (sets, ways) comes from the config fingerprint, so only a
// count check is needed on load.
func (a *Array) SaveState(w *snapshot.Writer) {
	w.Int(len(a.sets))
	w.Int(a.ways)
	for i := range a.sets {
		for j := range a.sets[i] {
			saveLine(w, &a.sets[i][j])
		}
	}
}

// LoadState restores an array saved by SaveState.
func (a *Array) LoadState(r *snapshot.Reader) error {
	sets := r.Int()
	ways := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if sets != len(a.sets) || ways != a.ways {
		return fmt.Errorf("%w: snapshot array geometry %dx%d, this build %dx%d",
			snapshot.ErrMismatch, sets, ways, len(a.sets), a.ways)
	}
	for i := range a.sets {
		for j := range a.sets[i] {
			loadLine(r, &a.sets[i][j])
		}
	}
	return r.Err()
}

func (l *L1) saveState(w *snapshot.Writer) {
	l.arr.SaveState(w)
	w.U64(l.accesses)
	w.U64(l.misses)
}

func (l *L1) loadState(r *snapshot.Reader) error {
	if err := l.arr.LoadState(r); err != nil {
		return err
	}
	l.accesses = r.U64()
	l.misses = r.U64()
	return r.Err()
}

// delayQueue: live entries oldest-first; the restored queue starts compacted
// (head 0), which is invisible — only the live window is ever read.
func (q *delayQueue) saveState(w *snapshot.Writer, ni *noc.NI) {
	live := q.live()
	w.Int(len(live))
	for _, d := range live {
		w.U64(uint64(d.readyAt))
		ni.SavePacket(w, codec, d.pkt)
	}
}

func (q *delayQueue) loadState(r *snapshot.Reader, ni *noc.NI) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		at := sim.Cycle(r.U64())
		q.items = append(q.items, delayed{ni.LoadPacket(r, codec), at})
	}
	return r.Err()
}

func (o *outbox) saveState(w *snapshot.Writer) {
	w.Int(len(o.pkts))
	for _, p := range o.pkts {
		o.ni.SavePacket(w, codec, p)
	}
}

func (o *outbox) loadState(r *snapshot.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		o.pkts = append(o.pkts, o.ni.LoadPacket(r, codec))
	}
	return r.Err()
}

// SaveState serializes the private cache stack: both arrays, MSHRs and
// writeback entries (sorted by address — map order must not reach the
// byte stream), queued input, pending completions, outbox, knob counters,
// and the retry-dedup state.
func (c *L2) SaveState(w *snapshot.Writer) {
	w.Section("cache.l2")
	c.arr.SaveState(w)
	c.l1.saveState(w)

	addrs := make([]uint64, 0, len(c.mshr))
	for a := range c.mshr {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	w.Int(len(addrs))
	for _, a := range addrs {
		m := c.mshr[a]
		w.U64(a)
		w.Int(m.loads)
		w.Int(m.stores)
		w.U64(uint64(m.issuedAt))
		w.U8(m.backoff)
		w.Bool(m.prefetchL1)
		w.Bool(m.prefetch)
		w.Bool(m.recallPending)
		w.U32(m.recallEpoch)
	}

	addrs = addrs[:0]
	for a := range c.wb {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	w.Int(len(addrs))
	for _, a := range addrs {
		w.U64(a)
		w.Bool(c.wb[a].invalidated)
	}

	c.inq.saveState(w, c.out.ni)
	c.out.saveState(w)
	w.Int(len(c.pend))
	for _, d := range c.pend {
		w.U64(d.addr)
		w.U64(uint64(d.at))
		w.Bool(d.store)
	}
	w.U32(c.knob.tpc)
	w.U32(c.knob.upc)
	noc.SaveError(w, c.dead)
	w.U8(c.rejKind)
	w.U64(c.rejAddr)
}

// LoadState restores a stack saved by SaveState into this freshly built L2.
func (c *L2) LoadState(r *snapshot.Reader) error {
	r.Section("cache.l2")
	if err := c.arr.LoadState(r); err != nil {
		return err
	}
	if err := c.l1.loadState(r); err != nil {
		return err
	}
	nm := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nm; i++ {
		a := r.U64()
		m := c.newMSHR()
		*m = l2MSHR{
			addr:          a,
			loads:         r.Int(),
			stores:        r.Int(),
			issuedAt:      sim.Cycle(r.U64()),
			backoff:       r.U8(),
			prefetchL1:    r.Bool(),
			prefetch:      r.Bool(),
			recallPending: r.Bool(),
			recallEpoch:   r.U32(),
		}
		c.mshr[a] = m
	}
	nw := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nw; i++ {
		a := r.U64()
		c.wb[a] = &wbEntry{invalidated: r.Bool()}
	}
	if err := c.inq.loadState(r, c.out.ni); err != nil {
		return err
	}
	if err := c.out.loadState(r); err != nil {
		return err
	}
	np := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < np; i++ {
		addr := r.U64()
		at := sim.Cycle(r.U64())
		c.pend = append(c.pend, doneEvt{addr, at, r.Bool()})
	}
	c.knob.tpc = r.U32()
	c.knob.upc = r.U32()
	c.dead = noc.LoadError(r)
	c.rejKind = r.U8()
	c.rejAddr = r.U64()
	return r.Err()
}

// SaveState serializes the slice: array + directory, open episodes, fetches,
// stalled packets, queued input, outbox, resume knob, sharer-gap trace
// state, predictor, and the recent-push table. All maps are written sorted
// by key.
func (s *LLC) SaveState(w *snapshot.Writer) {
	w.Section("cache.llc")
	s.arr.SaveState(w)

	addrs := make([]uint64, 0, len(s.ep))
	for a := range s.ep {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	w.Int(len(addrs))
	for _, a := range addrs {
		ep := s.ep[a]
		w.U64(a)
		w.U8(uint8(ep.kind))
		w.U32(ep.epoch)
		noc.SaveDests(w, ep.pendingAcks)
		w.U32(uint32(ep.writer))
		w.Bool(ep.evictAfter)
	}

	addrs = addrs[:0]
	for a := range s.fetches {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	w.Int(len(addrs))
	for _, a := range addrs {
		f := s.fetches[a]
		w.U64(a)
		w.Int(len(f.requesters))
		for _, rq := range f.requesters {
			w.U32(uint32(rq.req))
			w.Bool(rq.prefetch)
		}
	}

	addrs = addrs[:0]
	for a := range s.stalled {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	w.Int(len(addrs))
	for _, a := range addrs {
		pkts := s.stalled[a]
		w.U64(a)
		w.Int(len(pkts))
		for _, p := range pkts {
			s.out.ni.SavePacket(w, codec, p)
		}
	}

	s.inq.saveState(w, s.out.ni)
	s.out.saveState(w)
	noc.SaveDests(w, s.knob.pdr)
	w.Int(s.knob.counter)
	w.Bool(s.knob.resume)
	w.U64(uint64(s.lastTick))

	if s.traces != nil {
		w.Bool(true)
		addrs = addrs[:0]
		for a := range s.traces {
			addrs = append(addrs, a)
		}
		sortAddrs(addrs)
		w.Int(len(addrs))
		for _, a := range addrs {
			t := s.traces[a]
			w.U64(a)
			w.U32(uint32(t.lastReader))
			w.U64(uint64(t.lastAt))
		}
	} else {
		w.Bool(false)
	}

	if s.pred != nil {
		w.Bool(true)
		// order may hold stale or duplicate keys (predict consumes entries
		// without touching it), so both structures are written in full.
		w.Int(len(s.pred.order))
		for _, a := range s.pred.order {
			w.U64(a)
		}
		addrs = addrs[:0]
		for a := range s.pred.entries {
			addrs = append(addrs, a)
		}
		sortAddrs(addrs)
		w.Int(len(addrs))
		for _, a := range addrs {
			w.U64(a)
			noc.SaveDests(w, s.pred.entries[a])
		}
	} else {
		w.Bool(false)
	}

	for i := range s.recent {
		e := &s.recent[i]
		w.U64(e.addr)
		noc.SaveDests(w, e.dests)
		w.U64(uint64(e.until))
		w.Bool(e.valid)
	}
}

// LoadState restores a slice saved by SaveState into this freshly built LLC.
func (s *LLC) LoadState(r *snapshot.Reader) error {
	r.Section("cache.llc")
	if err := s.arr.LoadState(r); err != nil {
		return err
	}
	ne := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < ne; i++ {
		a := r.U64()
		s.ep[a] = &episode{
			kind:        epKind(r.U8()),
			epoch:       r.U32(),
			pendingAcks: noc.LoadDests(r),
			writer:      noc.NodeID(r.U32()),
			evictAfter:  r.Bool(),
		}
	}
	nf := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nf; i++ {
		a := r.U64()
		f := s.newFetch()
		nr := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for j := 0; j < nr; j++ {
			req := noc.NodeID(r.U32())
			f.requesters = append(f.requesters, fetchReq{req, r.Bool()})
		}
		s.fetches[a] = f
	}
	ns := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < ns; i++ {
		a := r.U64()
		np := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for j := 0; j < np; j++ {
			s.stalled[a] = append(s.stalled[a], s.out.ni.LoadPacket(r, codec))
		}
	}
	if err := s.inq.loadState(r, s.out.ni); err != nil {
		return err
	}
	if err := s.out.loadState(r); err != nil {
		return err
	}
	s.knob.pdr = noc.LoadDests(r)
	s.knob.counter = r.Int()
	s.knob.resume = r.Bool()
	s.lastTick = sim.Cycle(r.U64())

	hasTraces := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasTraces != (s.traces != nil) {
		return fmt.Errorf("%w: LLC %d sharer-gap tracing differs (snapshot %v, build %v)",
			snapshot.ErrMismatch, s.id, hasTraces, s.traces != nil)
	}
	if hasTraces {
		nt := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < nt; i++ {
			a := r.U64()
			reader := noc.NodeID(r.U32())
			s.traces[a] = &traceState{lastReader: reader, lastAt: sim.Cycle(r.U64())}
		}
	}

	hasPred := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasPred != (s.pred != nil) {
		return fmt.Errorf("%w: LLC %d sharer predictor differs (snapshot %v, build %v)",
			snapshot.ErrMismatch, s.id, hasPred, s.pred != nil)
	}
	if hasPred {
		no := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < no; i++ {
			s.pred.order = append(s.pred.order, r.U64())
		}
		nent := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < nent; i++ {
			a := r.U64()
			s.pred.entries[a] = noc.LoadDests(r)
		}
	}

	for i := range s.recent {
		e := &s.recent[i]
		e.addr = r.U64()
		e.dests = noc.LoadDests(r)
		e.until = sim.Cycle(r.U64())
		e.valid = r.Bool()
	}
	return r.Err()
}
