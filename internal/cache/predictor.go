package cache

import "pushmulticast/internal/noc"

// sharerPredictor is the §VI "General Push Multicast" extension: a small
// per-slice table, decoupled from the directory, that remembers the sharer
// set of lines evicted from the LLC. When such a line is refetched from
// memory, the home can speculatively push the fill to its remembered
// sharers — extending push multicast to LLC misses, which the base design
// cannot cover because eviction destroys the directory entry.
type sharerPredictor struct {
	entries map[uint64]noc.DestSet
	order   []uint64 // FIFO replacement
	cap     int
}

func newSharerPredictor(capacity int) *sharerPredictor {
	return &sharerPredictor{entries: make(map[uint64]noc.DestSet), cap: capacity}
}

// remember records an evicted line's sharer set; single-sharer lines are
// not worth a prediction.
func (p *sharerPredictor) remember(addr uint64, sharers noc.DestSet) {
	if sharers.Count() < 2 {
		return
	}
	if _, ok := p.entries[addr]; !ok {
		if len(p.entries) >= p.cap {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.entries, oldest)
		}
		p.order = append(p.order, addr)
	}
	p.entries[addr] = sharers
}

// predict returns and consumes the remembered sharer set for a refetched
// line (one-shot: a wrong prediction should not repeat).
func (p *sharerPredictor) predict(addr uint64) (noc.DestSet, bool) {
	s, ok := p.entries[addr]
	if ok {
		delete(p.entries, addr)
	}
	return s, ok
}

// Len reports the table occupancy (tests).
func (p *sharerPredictor) Len() int { return len(p.entries) }
