package cache

import (
	"testing"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// buildNet makes a minimal 2x2 mesh for queue tests.
func buildNet(t *testing.T, _ int) *noc.Network {
	t.Helper()
	eng := sim.NewEngine(0, 0)
	net, err := noc.New(noc.DefaultConfig(2, 2), eng, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mkPkt(addr uint64, push, inv bool) *noc.Packet {
	vnet := noc.VNetReq
	if push || inv {
		vnet = noc.VNetData
	}
	if inv {
		vnet = noc.VNetCtrl
	}
	return &noc.Packet{Addr: addr, IsPush: push, IsInv: inv, VNet: vnet, Size: 1, Dests: noc.OneDest(1)}
}

func TestDelayQueueMaturity(t *testing.T) {
	q := delayQueue{latency: 5}
	q.push(mkPkt(0x40, false, false), 10)
	if q.pop(12) != nil {
		t.Fatal("popped before maturity")
	}
	if p := q.pop(15); p == nil || p.Addr != 0x40 {
		t.Fatal("mature packet not popped")
	}
	if !q.empty() {
		t.Fatal("queue should be empty")
	}
}

func TestDelayQueueFIFO(t *testing.T) {
	q := delayQueue{latency: 0}
	for i := uint64(0); i < 4; i++ {
		q.push(mkPkt(i, false, false), 0)
	}
	for i := uint64(0); i < 4; i++ {
		if p := q.pop(0); p.Addr != i {
			t.Fatalf("FIFO order broken: got %#x want %#x", p.Addr, i)
		}
	}
}

func TestDelayQueuePushFront(t *testing.T) {
	q := delayQueue{latency: 0}
	q.push(mkPkt(1, false, false), 0)
	q.pushFront(mkPkt(2, false, false), 0)
	if p := q.pop(0); p.Addr != 2 {
		t.Fatalf("pushFront packet not first: %#x", p.Addr)
	}
}

func TestDelayQueuePeekAndRemoveIf(t *testing.T) {
	q := delayQueue{latency: 0}
	q.push(mkPkt(1, false, false), 0)
	q.push(mkPkt(2, false, false), 0)
	q.push(mkPkt(1, false, false), 0)
	if q.peek(0).Addr != 1 {
		t.Fatal("peek wrong")
	}
	out := q.removeIf(func(p *noc.Packet) bool { return p.Addr == 1 })
	if len(out) != 2 || len(q.items) != 1 || q.items[0].pkt.Addr != 2 {
		t.Fatalf("removeIf wrong: out=%d kept=%d", len(out), len(q.items))
	}
}

func TestOutboxHoldsInvBehindSameLinePush(t *testing.T) {
	// An invalidation must not be injected while a same-line push is still
	// stuck in the outbox (the pre-injection half of OrdPush ordering).
	net := buildNet(t, 1) // helper builds a tiny network
	ob := outbox{ni: net.NI(0), unit: 0}
	push := mkPkt(0xbeef, true, false)
	push.Size = 5
	inv := mkPkt(0xbeef, false, true)
	// Fill the data vnet queue so the push cannot inject.
	for net.NI(0).CanInject(0, noc.VNetData) {
		filler := mkPkt(0x1, false, false)
		filler.VNet = noc.VNetData
		net.NI(0).Inject(filler, 0)
	}
	ob.send(push)
	ob.send(inv)
	ob.drain(0)
	if len(ob.pkts) != 2 {
		t.Fatalf("both packets should be held, kept %d", len(ob.pkts))
	}
}

func TestOutboxUnrelatedInvPasses(t *testing.T) {
	net := buildNet(t, 1)
	ob := outbox{ni: net.NI(0), unit: 0}
	push := mkPkt(0xbeef, true, false)
	push.Size = 5
	inv := mkPkt(0xaaaa, false, true)
	for net.NI(0).CanInject(0, noc.VNetData) {
		filler := mkPkt(0x1, false, false)
		filler.VNet = noc.VNetData
		net.NI(0).Inject(filler, 0)
	}
	ob.send(push)
	ob.send(inv)
	ob.drain(0)
	if len(ob.pkts) != 1 || !ob.pkts[0].IsPush {
		t.Fatalf("unrelated inv should pass; kept %d", len(ob.pkts))
	}
}
