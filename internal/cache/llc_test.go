package cache

import (
	"testing"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// llcFixture drives one LLC slice directly, capturing everything it sends.
type llcFixture struct {
	t   *testing.T
	eng *sim.Engine
	st  *stats.All
	llc *LLC
	cfg config.System
	// sentTo[node] records messages ejected toward each tile's L2.
	sent []*noc.Packet
}

type captureEndpoint struct{ f *llcFixture }

func (c captureEndpoint) Receive(p *noc.Packet, now sim.Cycle) {
	c.f.sent = append(c.f.sent, p)
}

// newLLCFixture puts the slice at tile 0 so lineB (which homes to 0) is
// served locally.
func newLLCFixture(t *testing.T, sch config.Scheme) *llcFixture {
	t.Helper()
	cfg := config.Default16().Scaled(16).WithScheme(sch)
	st := stats.New()
	eng := sim.NewEngine(0, 0)
	net, err := noc.New(cfg.NoC, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	f := &llcFixture{t: t, eng: eng, st: st, cfg: cfg}
	f.llc = NewLLC(0, &cfg, net, eng, st)
	for i := 0; i < cfg.Tiles(); i++ {
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			if i == 0 && u == stats.UnitLLC {
				continue
			}
			net.Attach(noc.NodeID(i), u, captureEndpoint{f})
		}
	}
	return f
}

// lineB homes to slice 0 in a 16-tile system.
const lineB = uint64(0x80000000)

func (f *llcFixture) deliver(m *coherence.Msg, from noc.NodeID) {
	pkt := m.Packet(f.cfg.NoC, stats.UnitL2, stats.UnitLLC, noc.OneDest(0))
	pkt.Src = from
	f.llc.Receive(pkt, f.eng.Now())
	f.step(f.cfg.LLCLatency + 4)
}

func (f *llcFixture) step(n int) {
	for i := 0; i < n; i++ {
		f.eng.Step()
	}
}

// drainSent waits for in-flight ejections and returns messages of a type.
func (f *llcFixture) drainSent(typ coherence.MsgType) []*coherence.Msg {
	f.step(120)
	var out []*coherence.Msg
	for _, p := range f.sent {
		if m, ok := p.Payload.(*coherence.Msg); ok && m.Type == typ {
			out = append(out, m)
		}
	}
	return out
}

func (f *llcFixture) lineState(addr uint64) (State, noc.DestSet) {
	var st State
	var sh noc.DestSet
	f.llc.ForEachLine(func(l *Line) {
		if l.Tag == addr {
			st, sh = l.State, l.Sharers
		}
	})
	return st, sh
}

// fill brings lineB into the slice via a memory round trip.
func (f *llcFixture) fill(requester noc.NodeID) {
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: requester, NeedPush: true}, requester)
	// The slice sends MemRead toward a corner controller; feed MemData back.
	reads := f.drainSent(coherence.MemRead)
	if len(reads) != 1 {
		f.t.Fatalf("expected 1 MemRead, got %d", len(reads))
	}
	mem := &coherence.Msg{Type: coherence.MemData, Addr: lineB, Version: 0}
	pkt := mem.Packet(f.cfg.NoC, stats.UnitMem, stats.UnitLLC, noc.OneDest(0))
	f.llc.Receive(pkt, f.eng.Now())
	f.step(f.cfg.LLCLatency + 4)
}

func TestLLCMissFetchesAndReplies(t *testing.T) {
	f := newLLCFixture(t, config.NoPrefetch())
	f.fill(2)
	if st, sh := f.lineState(lineB); st != StateLV || !sh.Has(2) {
		t.Fatalf("after fill: %v sharers=%b", st, sh)
	}
	if len(f.drainSent(coherence.DataS)) != 1 {
		t.Fatal("requester not answered")
	}
}

func TestLLCReReferenceTriggersPush(t *testing.T) {
	f := newLLCFixture(t, config.OrdPush())
	f.fill(2)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 5, NeedPush: true}, 5)
	// New sharer: unicast. Re-reference from 2 within the recent window is
	// suppressed, so advance past it.
	f.step(300)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 2, NeedPush: true}, 2)
	// One multicast, two destinations: the capture endpoint sees one
	// delivered replica per destination.
	pushes := f.drainSent(coherence.PushData)
	if len(pushes) != 2 {
		t.Fatalf("delivered push replicas = %d, want 2", len(pushes))
	}
	if f.st.Cache.PushesTriggered != 1 || f.st.Cache.PushDestinations != 2 {
		t.Fatalf("push accounting wrong: %d/%d",
			f.st.Cache.PushesTriggered, f.st.Cache.PushDestinations)
	}
}

func TestLLCPrefetchNeverPushes(t *testing.T) {
	f := newLLCFixture(t, config.OrdPush())
	f.fill(2)
	f.step(300)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 2,
		NeedPush: true, Prefetch: true}, 2)
	if len(f.drainSent(coherence.PushData)) != 0 {
		t.Fatal("prefetch re-reference triggered a push")
	}
}

func TestLLCWriteCollectsAcksBeforeGrant(t *testing.T) {
	f := newLLCFixture(t, config.NoPrefetch())
	f.fill(2)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 5}, 5)
	f.deliver(&coherence.Msg{Type: coherence.GetM, Addr: lineB, Requester: 9}, 9)
	invs := f.drainSent(coherence.Inv)
	if len(invs) != 2 {
		t.Fatalf("invs = %d, want 2 (both sharers)", len(invs))
	}
	if grants := f.drainSent(coherence.DataM); len(grants) != 0 {
		t.Fatal("ownership granted before acks")
	}
	f.deliver(&coherence.Msg{Type: coherence.InvAck, Addr: lineB, Requester: 2, Epoch: invs[0].Epoch}, 2)
	if grants := f.drainSent(coherence.DataM); len(grants) != 0 {
		t.Fatal("ownership granted after partial acks")
	}
	f.deliver(&coherence.Msg{Type: coherence.InvAck, Addr: lineB, Requester: 5, Epoch: invs[0].Epoch}, 5)
	if grants := f.drainSent(coherence.DataM); len(grants) != 1 {
		t.Fatal("ownership not granted after all acks")
	}
	if st, _ := f.lineState(lineB); st != StateLM {
		t.Fatalf("directory in %v, want LM", st)
	}
}

func TestLLCStaleEpochAckIgnored(t *testing.T) {
	f := newLLCFixture(t, config.NoPrefetch())
	f.fill(2)
	f.deliver(&coherence.Msg{Type: coherence.GetM, Addr: lineB, Requester: 9}, 9)
	invs := f.drainSent(coherence.Inv)
	if len(invs) != 1 {
		t.Fatalf("invs = %d", len(invs))
	}
	// An ack from a long-dead episode must not complete this one.
	f.deliver(&coherence.Msg{Type: coherence.InvAck, Addr: lineB, Requester: 2,
		Epoch: invs[0].Epoch + 7}, 2)
	if len(f.drainSent(coherence.DataM)) != 0 {
		t.Fatal("stale-epoch ack completed the episode")
	}
	f.deliver(&coherence.Msg{Type: coherence.InvAck, Addr: lineB, Requester: 2, Epoch: invs[0].Epoch}, 2)
	if len(f.drainSent(coherence.DataM)) != 1 {
		t.Fatal("episode never completed")
	}
}

func TestLLCPushAckPState(t *testing.T) {
	f := newLLCFixture(t, config.PushAck())
	f.fill(2)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 5, NeedPush: true}, 5)
	f.step(300)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 2, NeedPush: true}, 2)
	if st, _ := f.lineState(lineB); st != StateLP {
		t.Fatalf("directory in %v, want LP after push", st)
	}
	// Reads are still served in P...
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 7, NeedPush: true}, 7)
	if n := len(f.drainSent(coherence.DataS)); n < 3 {
		t.Fatalf("GetS during P not served: %d DataS", n)
	}
	// ...writes are blocked until both PushAcks arrive.
	f.deliver(&coherence.Msg{Type: coherence.GetM, Addr: lineB, Requester: 9}, 9)
	if len(f.drainSent(coherence.Inv)) != 0 {
		t.Fatal("write processed while in P")
	}
	f.deliver(&coherence.Msg{Type: coherence.PushAck, Addr: lineB, Requester: 2}, 2)
	f.deliver(&coherence.Msg{Type: coherence.PushAck, Addr: lineB, Requester: 5}, 5)
	if len(f.drainSent(coherence.Inv)) == 0 {
		t.Fatal("write still blocked after all PushAcks")
	}
}

func TestLLCWritebackUpdatesAndAcks(t *testing.T) {
	f := newLLCFixture(t, config.NoPrefetch())
	f.fill(2)
	f.deliver(&coherence.Msg{Type: coherence.GetM, Addr: lineB, Requester: 2}, 2)
	if len(f.drainSent(coherence.DataM)) != 1 {
		t.Fatal("sole-sharer upgrade not granted immediately")
	}
	f.deliver(&coherence.Msg{Type: coherence.PutM, Addr: lineB, Requester: 2, Version: 3}, 2)
	if len(f.drainSent(coherence.WBAck)) != 1 {
		t.Fatal("writeback not acknowledged")
	}
	st, _ := f.lineState(lineB)
	if st != StateLV {
		t.Fatalf("directory in %v after writeback, want LV", st)
	}
	var ver uint64
	f.llc.ForEachLine(func(l *Line) {
		if l.Tag == lineB {
			ver = l.Version
		}
	})
	if ver != 3 {
		t.Fatalf("writeback version %d, want 3", ver)
	}
}

func TestLLCKnobExcludesDisabledSharers(t *testing.T) {
	f := newLLCFixture(t, config.OrdPush())
	f.fill(2)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 5, NeedPush: false}, 5)
	if !f.llc.PushDisabled(5) {
		t.Fatal("need_push=false did not register in the PDRMap")
	}
	f.step(300)
	f.deliver(&coherence.Msg{Type: coherence.GetS, Addr: lineB, Requester: 2, NeedPush: true}, 2)
	pushes := f.drainSent(coherence.PushData)
	if len(pushes) != 0 {
		// With 5 excluded, dests collapse to {2}: the degenerate unicast.
		t.Fatalf("push sent despite PDR exclusion: %d", len(pushes))
	}
}
