package cache

import (
	"testing"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// l2Fixture drives one L2 controller directly with crafted protocol
// messages, bypassing the LLC, to pin down individual FSM transitions.
type l2Fixture struct {
	t    *testing.T
	eng  *sim.Engine
	st   *stats.All
	l2   *L2
	core *recordingCore
	cfg  config.System
}

type recordingCore struct {
	loadsDone, storesDone int
}

func (r *recordingCore) LoadDone(uint64, sim.Cycle)  { r.loadsDone++ }
func (r *recordingCore) StoreDone(uint64, sim.Cycle) { r.storesDone++ }

func newL2Fixture(t *testing.T, sch config.Scheme) *l2Fixture {
	t.Helper()
	cfg := config.Default16().Scaled(16).WithScheme(sch)
	st := stats.New()
	eng := sim.NewEngine(0, 0)
	net, err := noc.New(cfg.NoC, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	f := &l2Fixture{t: t, eng: eng, st: st, core: &recordingCore{}, cfg: cfg}
	f.l2 = NewL2(3, &cfg, net, eng, st, f.core)
	// Absorb anything the L2 sends toward its home.
	for i := 0; i < cfg.Tiles(); i++ {
		for u := stats.Unit(0); u < stats.NumUnits; u++ {
			if i == 3 && u == stats.UnitL2 {
				continue
			}
			net.Attach(noc.NodeID(i), u, sinkEndpoint{})
		}
	}
	return f
}

type sinkEndpoint struct{}

func (sinkEndpoint) Receive(*noc.Packet, sim.Cycle) {}

// deliver hands a message straight to the L2 (as if ejected) and ticks past
// the controller's pipeline latency.
func (f *l2Fixture) deliver(m *coherence.Msg) {
	pkt := m.Packet(f.cfg.NoC, stats.UnitLLC, stats.UnitL2, noc.OneDest(3))
	f.l2.Receive(pkt, f.eng.Now())
	f.step(f.cfg.L2Latency + 3)
}

func (f *l2Fixture) step(n int) {
	for i := 0; i < n; i++ {
		f.eng.Step()
	}
}

func (f *l2Fixture) state(addr uint64) State {
	if l := f.l2.arr.Lookup(addr); l != nil {
		return l.State
	}
	return StateI
}

const lineA = uint64(0x40000000)

func TestL2LoadMissIssuesGetSAndFills(t *testing.T) {
	f := newL2Fixture(t, config.NoPrefetch())
	done, acc := f.l2.Load(lineA, f.eng.Now())
	if done || !acc {
		t.Fatalf("miss path wrong: done=%v acc=%v", done, acc)
	}
	if f.state(lineA) != StateISD {
		t.Fatalf("state %v, want IS_D", f.state(lineA))
	}
	f.deliver(&coherence.Msg{Type: coherence.DataS, Addr: lineA, Requester: 3, Version: 5})
	if f.state(lineA) != StateS || f.core.loadsDone != 1 {
		t.Fatalf("fill failed: state=%v loads=%d", f.state(lineA), f.core.loadsDone)
	}
	if !f.l2.L1().Present(lineA) {
		t.Fatal("demand fill skipped the L1")
	}
}

func TestL2LoadMergesIntoOutstandingMiss(t *testing.T) {
	f := newL2Fixture(t, config.NoPrefetch())
	f.l2.Load(lineA, f.eng.Now())
	f.l2.Load(lineA, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.DataS, Addr: lineA, Requester: 3})
	if f.core.loadsDone != 2 {
		t.Fatalf("merged loads completed %d, want 2", f.core.loadsDone)
	}
	if f.st.Cache.L2Misses != 1 {
		t.Fatalf("L2 misses %d, want 1 (secondary merged)", f.st.Cache.L2Misses)
	}
}

func TestL2InvWhileISDUsesDataOnce(t *testing.T) {
	f := newL2Fixture(t, config.NoPrefetch())
	f.l2.Load(lineA, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.Inv, Addr: lineA, Epoch: 1})
	if f.state(lineA) != StateISDI {
		t.Fatalf("state %v, want IS_D_I", f.state(lineA))
	}
	f.deliver(&coherence.Msg{Type: coherence.DataS, Addr: lineA, Requester: 3, Version: 1})
	if f.core.loadsDone != 1 {
		t.Fatal("use-once data did not complete the load")
	}
	if f.state(lineA) != StateI {
		t.Fatalf("line kept after use-once: %v", f.state(lineA))
	}
}

func TestL2StoreUpgradePath(t *testing.T) {
	f := newL2Fixture(t, config.NoPrefetch())
	f.l2.Load(lineA, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.DataS, Addr: lineA, Requester: 3, Version: 7})
	f.l2.Store(lineA, f.eng.Now())
	if f.state(lineA) != StateSMD {
		t.Fatalf("state %v, want SM_D", f.state(lineA))
	}
	f.deliver(&coherence.Msg{Type: coherence.DataM, Addr: lineA, Requester: 3, Version: 7})
	if f.state(lineA) != StateM || f.core.storesDone != 1 {
		t.Fatalf("upgrade failed: %v stores=%d", f.state(lineA), f.core.storesDone)
	}
	if l := f.l2.arr.Lookup(lineA); l.Version != 8 {
		t.Fatalf("store did not bump version: %d", l.Version)
	}
}

func TestL2RecallDeferredUntilDataM(t *testing.T) {
	f := newL2Fixture(t, config.NoPrefetch())
	f.l2.Store(lineA, f.eng.Now())
	if f.state(lineA) != StateIMD {
		t.Fatalf("state %v, want IM_D", f.state(lineA))
	}
	// Recall overtakes the DataM.
	f.deliver(&coherence.Msg{Type: coherence.Inv, Addr: lineA, Epoch: 2, Recall: true})
	if f.state(lineA) != StateIMD {
		t.Fatalf("recall destroyed the pending write: %v", f.state(lineA))
	}
	f.deliver(&coherence.Msg{Type: coherence.DataM, Addr: lineA, Requester: 3, Version: 4})
	if f.core.storesDone != 1 {
		t.Fatal("deferred recall lost the store")
	}
	if f.state(lineA) != StateI {
		t.Fatalf("line kept after recall: %v", f.state(lineA))
	}
}

func TestL2PushOutcomes(t *testing.T) {
	f := newL2Fixture(t, config.OrdPush())
	// Speculative push into an empty cache: installs.
	f.deliver(&coherence.Msg{Type: coherence.PushData, Addr: lineA, Requester: -1, Version: 2})
	if f.state(lineA) != StateS {
		t.Fatalf("push not installed: %v", f.state(lineA))
	}
	// Duplicate push: redundancy drop.
	f.deliver(&coherence.Msg{Type: coherence.PushData, Addr: lineA, Requester: -1, Version: 2})
	if f.st.Cache.PushOutcomes[stats.PushRedundancyDrop] != 1 {
		t.Fatalf("outcomes %v, want one redundancy drop", f.st.Cache.PushOutcomes)
	}
	// First touch classifies Miss-to-Hit.
	f.l2.Load(lineA, f.eng.Now())
	if f.st.Cache.PushOutcomes[stats.PushMissToHit] != 1 {
		t.Fatalf("outcomes %v, want one miss-to-hit", f.st.Cache.PushOutcomes)
	}
}

func TestL2PushServesOutstandingMiss(t *testing.T) {
	f := newL2Fixture(t, config.OrdPush())
	f.l2.Load(lineA, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.PushData, Addr: lineA, Requester: -1, Version: 2})
	if f.core.loadsDone != 1 {
		t.Fatal("push did not serve the outstanding miss")
	}
	if f.st.Cache.PushOutcomes[stats.PushEarlyResp] != 1 {
		t.Fatalf("outcomes %v, want one early-resp", f.st.Cache.PushOutcomes)
	}
	// The late unicast response is dropped silently.
	f.deliver(&coherence.Msg{Type: coherence.DataS, Addr: lineA, Requester: 3, Version: 2})
	if f.core.loadsDone != 1 {
		t.Fatal("duplicate response completed a phantom load")
	}
}

func TestL2PushDroppedOnWriteUpgrade(t *testing.T) {
	f := newL2Fixture(t, config.OrdPush())
	f.l2.Store(lineA, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.PushData, Addr: lineA, Requester: -1, Version: 2})
	if f.st.Cache.PushOutcomes[stats.PushCoherenceDrop] != 1 {
		t.Fatalf("outcomes %v, want one coherence drop", f.st.Cache.PushOutcomes)
	}
	if f.state(lineA) != StateIMD {
		t.Fatalf("push disturbed the write upgrade: %v", f.state(lineA))
	}
}

func TestL2PushNeverEvictsDirtyData(t *testing.T) {
	f := newL2Fixture(t, config.OrdPush())
	// Fill one whole set with M lines.
	sets := uint64(f.cfg.L2Size / f.cfg.LineSize / f.cfg.L2Ways)
	stride := sets * uint64(f.cfg.LineSize)
	for w := 0; w < f.cfg.L2Ways; w++ {
		addr := lineA + uint64(w)*stride
		f.l2.Store(addr, f.eng.Now())
		f.deliver(&coherence.Msg{Type: coherence.DataM, Addr: addr, Requester: 3})
	}
	f.deliver(&coherence.Msg{Type: coherence.PushData, Addr: lineA + uint64(f.cfg.L2Ways)*stride,
		Requester: -1})
	if f.st.Cache.PushOutcomes[stats.PushDeadlockDrop] != 1 {
		t.Fatalf("outcomes %v, want a deadlock-drop (all ways dirty)", f.st.Cache.PushOutcomes)
	}
	if f.st.Cache.L2Evictions != 0 {
		t.Fatal("push evicted dirty data")
	}
}

func TestL2InvOnDirtyLineReturnsData(t *testing.T) {
	f := newL2Fixture(t, config.NoPrefetch())
	f.l2.Store(lineA, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.DataM, Addr: lineA, Requester: 3, Version: 0})
	f.deliver(&coherence.Msg{Type: coherence.Inv, Addr: lineA, Epoch: 3, Recall: true})
	if f.state(lineA) != StateI {
		t.Fatalf("recall left %v", f.state(lineA))
	}
}

func TestL2ResetFlagClearsKnob(t *testing.T) {
	f := newL2Fixture(t, config.OrdPush())
	for i := 0; i < 20; i++ {
		f.deliver(&coherence.Msg{Type: coherence.PushData,
			Addr: lineA + uint64(i)*64, Requester: -1})
	}
	if _, _, need := f.l2.Knob(); need {
		t.Fatal("knob should have paused after 20 unused pushes")
	}
	f.l2.Load(lineA+4096, f.eng.Now())
	f.deliver(&coherence.Msg{Type: coherence.DataS, Addr: lineA + 4096, Requester: 3, Reset: true})
	if tpc, _, need := f.l2.Knob(); !need || tpc != 0 {
		t.Fatalf("reset flag ignored: tpc=%d need=%v", tpc, need)
	}
}
