package cache

import (
	"fmt"
	"io"
	"sort"
)

// DumpState writes the L2's in-flight state (transient lines, MSHRs,
// writeback entries) for deadlock diagnosis.
func (c *L2) DumpState(w io.Writer) {
	if len(c.mshr) == 0 && len(c.wb) == 0 {
		return
	}
	fmt.Fprintf(w, "L2[%d]:\n", c.id)
	for _, a := range sortedKeysM(c.mshr) {
		m := c.mshr[a]
		st := State(255)
		if l := c.arr.Lookup(a); l != nil {
			st = l.State
		}
		fmt.Fprintf(w, "  mshr %#x state=%v loads=%d stores=%d prefetch=%v\n",
			a, st, m.loads, m.stores, m.prefetch)
	}
	for _, a := range sortedKeysW(c.wb) {
		fmt.Fprintf(w, "  wb %#x invalidated=%v\n", a, c.wb[a].invalidated)
	}
	if len(c.out.pkts) > 0 {
		fmt.Fprintf(w, "  outbox %d pkts\n", len(c.out.pkts))
	}
	if live := c.inq.live(); len(live) > 0 {
		fmt.Fprintf(w, "  inq %d msgs, head %v\n", len(live), live[0].pkt.Payload)
	}
}

// DumpState writes the LLC slice's in-flight state (episodes, fetches,
// stalled packets).
func (s *LLC) DumpState(w io.Writer) {
	if len(s.ep) == 0 && len(s.fetches) == 0 && len(s.stalled) == 0 &&
		s.inq.empty() && len(s.out.pkts) == 0 {
		return
	}
	fmt.Fprintf(w, "LLC[%d]:\n", s.id)
	for _, a := range sortedKeysE(s.ep) {
		ep := s.ep[a]
		st := State(255)
		if l := s.arr.Lookup(a); l != nil {
			st = l.State
		}
		fmt.Fprintf(w, "  episode %#x kind=%d state=%v epoch=%d pending=%b writer=%d evict=%v\n",
			a, ep.kind, st, ep.epoch, ep.pendingAcks, ep.writer, ep.evictAfter)
	}
	for _, a := range sortedKeysF(s.fetches) {
		fmt.Fprintf(w, "  fetch %#x requesters=%d\n", a, len(s.fetches[a].requesters))
	}
	for _, a := range sortKeys(s.stalled) {
		fmt.Fprintf(w, "  stalled %#x: %d pkts", a, len(s.stalled[a]))
		if l := s.arr.Lookup(a); l != nil {
			fmt.Fprintf(w, " (line state=%v)", l.State)
		} else {
			fmt.Fprintf(w, " (line absent)")
		}
		fmt.Fprintln(w)
	}
	if live := s.inq.live(); len(live) > 0 {
		fmt.Fprintf(w, "  inq %d msgs, head %v ready=%d\n", len(live),
			live[0].pkt.Payload, live[0].readyAt)
	}
	if len(s.out.pkts) > 0 {
		fmt.Fprintf(w, "  outbox %d pkts, head %v\n", len(s.out.pkts), s.out.pkts[0].Payload)
	}
}

func sortedKeysM(m map[uint64]*l2MSHR) []uint64  { return sortKeys(m) }
func sortedKeysW(m map[uint64]*wbEntry) []uint64 { return sortKeys(m) }
func sortedKeysE(m map[uint64]*episode) []uint64 { return sortKeys(m) }
func sortedKeysF(m map[uint64]*fetch) []uint64   { return sortKeys(m) }

func sortKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
