package cache

import (
	"testing"
	"testing/quick"
)

func TestPauseKnobMonitoringPeriod(t *testing.T) {
	k := pauseKnob{tpcThreshold: 16, ratioShift: 1, enabled: true}
	// During the monitoring period pushing stays requested even with zero
	// useful pushes.
	for i := 0; i < 15; i++ {
		k.onPush()
		if !k.needPush() {
			t.Fatalf("paused during monitoring period at push %d", i)
		}
	}
	k.onPush() // TPC hits the threshold with UPC=0
	if k.needPush() {
		t.Fatal("should pause: 0/16 useful")
	}
}

func TestPauseKnobFiftyPercentRatio(t *testing.T) {
	k := pauseKnob{tpcThreshold: 4, ratioShift: 1, enabled: true}
	for i := 0; i < 8; i++ {
		k.onPush()
	}
	for i := 0; i < 3; i++ {
		k.onUseful()
	}
	if k.needPush() {
		t.Fatal("3/8 useful is below 50%: should pause")
	}
	k.onUseful()
	if !k.needPush() {
		t.Fatal("4/8 useful meets the 50% shift-compare: should push")
	}
}

func TestPauseKnobQuarterRatio(t *testing.T) {
	k := pauseKnob{tpcThreshold: 4, ratioShift: 2, enabled: true}
	for i := 0; i < 8; i++ {
		k.onPush()
	}
	k.onUseful()
	if k.needPush() {
		t.Fatal("1/8 useful below 25%: should pause")
	}
	k.onUseful()
	if !k.needPush() {
		t.Fatal("2/8 useful meets 25%: should push")
	}
}

func TestPauseKnobOverflowHalving(t *testing.T) {
	k := pauseKnob{tpcThreshold: 16, ratioShift: 1, enabled: true}
	for i := 0; i < counterMax+10; i++ {
		k.onPush()
		k.onUseful()
	}
	if k.tpc >= counterMax {
		t.Fatalf("TPC %d not halved at 10-bit capacity", k.tpc)
	}
	if !k.needPush() {
		t.Fatal("100% useful must keep pushing after halving")
	}
}

func TestPauseKnobReset(t *testing.T) {
	k := pauseKnob{tpcThreshold: 4, ratioShift: 1, enabled: true}
	for i := 0; i < 8; i++ {
		k.onPush()
	}
	if k.needPush() {
		t.Fatal("precondition: paused")
	}
	k.reset()
	if !k.needPush() {
		t.Fatal("reset must restart the monitoring period")
	}
}

func TestPauseKnobDisabled(t *testing.T) {
	k := pauseKnob{tpcThreshold: 1, ratioShift: 1, enabled: false}
	for i := 0; i < 100; i++ {
		k.onPush()
	}
	if !k.needPush() {
		t.Fatal("disabled knob must always request pushes")
	}
	if k.tpc != 0 {
		t.Fatal("disabled knob must not count")
	}
}

// Property: needPush is monotone in usefulness — adding useful pushes never
// turns pushing off.
func TestPauseKnobMonotone(t *testing.T) {
	f := func(pushes, useful uint8) bool {
		k := pauseKnob{tpcThreshold: 8, ratioShift: 1, enabled: true}
		for i := 0; i < int(pushes); i++ {
			k.onPush()
		}
		for i := 0; i < int(useful); i++ {
			k.onUseful()
		}
		before := k.needPush()
		k.onUseful()
		return !before || k.needPush()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResumeKnobPhases(t *testing.T) {
	k := newResumeKnob(10, true)
	if k.resume {
		t.Fatal("must start in the disable-accepting phase")
	}
	k.onRequest(3, false)
	if !k.pushDisabled(3) {
		t.Fatal("need_push=false must add the requester to the PDRMap")
	}
	k.onRequest(3, true)
	if k.pushDisabled(3) {
		t.Fatal("need_push=true must remove the requester")
	}
	k.onRequest(3, false)
	for i := 0; i < 10; i++ {
		k.tick()
	}
	if !k.resume {
		t.Fatal("time window expiry must enter the resume phase")
	}
	// Additions are blocked during resume; requests remove instead.
	k.onRequest(5, false)
	if k.pushDisabled(5) {
		t.Fatal("additions must be blocked during resume")
	}
	if !k.pushDisabled(3) {
		t.Fatal("prior entry should persist until touched")
	}
	if !k.resetFlagFor(3) {
		t.Fatal("resume-phase reply to a disabled requester must carry reset")
	}
	if k.pushDisabled(3) {
		t.Fatal("reset reply must clear the PDRMap entry")
	}
	if k.resetFlagFor(3) {
		t.Fatal("second reply must not carry reset again")
	}
	for i := 0; i < 10; i++ {
		k.tick()
	}
	if k.resume {
		t.Fatal("window expiry must leave the resume phase")
	}
}

func TestResumeKnobDisabled(t *testing.T) {
	k := newResumeKnob(10, false)
	k.onRequest(1, false)
	if k.pushDisabled(1) {
		t.Fatal("disabled resume knob must not track requesters")
	}
	if k.resetFlagFor(1) {
		t.Fatal("disabled resume knob must not emit resets")
	}
}
