package cache

import "pushmulticast/internal/sim"

// L1 is the private L1 data cache. It is strictly inclusive in the L2 and
// carries no coherence state of its own: the L2 back-invalidates it whenever
// a line leaves the L2, so an L1 hit is always coherent.
type L1 struct {
	arr      *Array
	accesses uint64
	misses   uint64
}

// NewL1 builds an L1 data cache.
func NewL1(sizeBytes, ways, lineSize int) *L1 {
	return &L1{arr: NewArray(sizeBytes, ways, lineSize)}
}

// Lookup probes the L1 for a load; on a hit it returns the line version.
func (l *L1) Lookup(lineAddr uint64, now sim.Cycle) (uint64, bool) {
	l.accesses++
	if ln := l.arr.Lookup(lineAddr); ln != nil {
		ln.LastUse = now
		return ln.Version, true
	}
	l.misses++
	return 0, false
}

// Fill installs a line (demand fill or L1 prefetch fill), silently evicting
// the LRU way if needed. L1 lines are never dirty: stores write through to
// the L2.
func (l *L1) Fill(lineAddr uint64, version uint64, now sim.Cycle) {
	if ln := l.arr.Lookup(lineAddr); ln != nil {
		ln.Version = version
		ln.LastUse = now
		return
	}
	v := l.arr.Victim(lineAddr, func(*Line) bool { return true })
	l.arr.Install(v, lineAddr, StateS, now)
	v.Version = version
}

// Update refreshes the version of a present line (store write-through).
func (l *L1) Update(lineAddr uint64, version uint64) {
	if ln := l.arr.Lookup(lineAddr); ln != nil {
		ln.Version = version
	}
}

// Invalidate removes a line (L2 back-invalidation).
func (l *L1) Invalidate(lineAddr uint64) {
	if ln := l.arr.Lookup(lineAddr); ln != nil {
		ln.State = StateI
	}
}

// Present reports whether the line is cached.
func (l *L1) Present(lineAddr uint64) bool { return l.arr.Lookup(lineAddr) != nil }

// ForEach visits every valid line (inclusion checks and tests).
func (l *L1) ForEach(f func(*Line)) { l.arr.ForEach(f) }

// Stats returns accesses and misses.
func (l *L1) Stats() (accesses, misses uint64) { return l.accesses, l.misses }
