package cache

import (
	"fmt"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/trace"
)

// epKind identifies a directory episode (a multi-message transaction that
// blocks a line).
type epKind uint8

const (
	// epWrite: invalidating sharers on behalf of a pending writer.
	epWrite epKind = iota
	// epRecall: asking the M owner to invalidate and return data.
	epRecall
	// epEvictShared: invalidating sharers to evict the LLC line.
	epEvictShared
	// epPush: a push multicast outstanding (PushAck protocol's P state).
	epPush
)

// episode is the bookkeeping for one blocking directory transaction.
type episode struct {
	kind        epKind
	epoch       uint32
	pendingAcks noc.DestSet
	writer      noc.NodeID // epWrite: the waiting GetM requester
	evictAfter  bool       // epRecall: free the line once data returns
}

// fetchReq is one requester merged into an outstanding memory fetch.
type fetchReq struct {
	req      noc.NodeID
	prefetch bool
}

// fetch tracks an outstanding LLC miss.
type fetch struct {
	requesters []fetchReq
}

// traceState supports the Fig 4 sharer-gap characterization.
type traceState struct {
	lastReader noc.NodeID
	lastAt     sim.Cycle
}

// LLC is one slice of the shared last-level cache with its embedded
// directory. It implements the home-node side of the MSI protocol, the
// paper's push trigger (§III-B: unicast to new sharers, speculative push
// multicast on re-references from existing sharers), the PushAck P state,
// the push resume knob, and the Coalesce baseline.
type LLC struct {
	id  noc.NodeID
	cfg *config.System
	eng *sim.Engine
	st  *stats.All
	arr *Array

	ep      map[uint64]*episode
	fetches map[uint64]*fetch
	// fetchFree recycles fetch records (and their requester-slice capacity)
	// between misses; handleGetS allocated one per LLC miss before.
	fetchFree []*fetch
	stalled   map[uint64][]*noc.Packet
	// parked is set by stall/retry during handle so Tick knows whether the
	// packet just processed was retained or can be recycled.
	parked bool
	inq    delayQueue
	out    outbox
	knob   resumeKnob
	h      *sim.Handle
	// lastTick lets a slice woken after sleeping advance the resume knob by
	// exactly the number of skipped cycles (tickN), keeping the phase
	// sequence identical to a dense run's.
	lastTick sim.Cycle
	traces   map[uint64]*traceState
	memNode  noc.NodeID
	// pred is the decoupled sharer predictor (PredictPush extension).
	pred *sharerPredictor
	// recent is a small table of just-sent pushes (addr -> dests/expiry).
	// A re-reference from a destination of a very recent push gets a
	// unicast instead of triggering another full multicast: its push is
	// still in flight and will (almost always) serve it, so a second
	// multicast would be pure redundancy. The unicast keeps the rare
	// dropped-push case correct.
	recent [recentPushEntries]recentPush
	// tr is this slice's trace shard (nil when tracing is off). Writes
	// happen from the slice's own tick and from Receive (the tile's NI
	// tick) — both on the tile's lane.
	tr *trace.Shard
}

// recentPush is one recent-push table entry.
type recentPush struct {
	addr  uint64
	dests noc.DestSet
	until sim.Cycle
	valid bool
}

// recentPushEntries and recentPushWindow size the table: a handful of
// entries covering roughly one NoC round trip.
const (
	recentPushEntries = 8
	recentPushWindow  = 256
)

// NewLLC builds a slice and attaches it to the network at the given tile.
func NewLLC(id noc.NodeID, cfg *config.System, net *noc.Network, eng *sim.Engine, st *stats.All) *LLC {
	s := &LLC{
		id:      id,
		cfg:     cfg,
		eng:     eng,
		st:      st,
		arr:     NewInterleavedArray(cfg.LLCSliceSize, cfg.LLCWays, cfg.LineSize, cfg.Tiles()),
		ep:      make(map[uint64]*episode),
		fetches: make(map[uint64]*fetch),
		stalled: make(map[uint64][]*noc.Packet),
		inq:     delayQueue{latency: sim.Cycle(cfg.LLCLatency)},
		out:     outbox{ni: net.NI(id), unit: stats.UnitLLC},
		knob:    newResumeKnob(cfg.TimeWindow, cfg.Scheme.Knob),
		memNode: cfg.NearestMemController(id),
	}
	if cfg.TraceSharerGaps {
		s.traces = make(map[uint64]*traceState)
	}
	if cfg.Scheme.PredictPush {
		s.pred = newSharerPredictor(1024)
	}
	net.Attach(id, stats.UnitLLC, s)
	s.h = eng.Register(s)
	s.out.h = s.h
	s.lastTick = ^sim.Cycle(0) // sentinel: first Tick advances the knob by 1
	return s
}

// ID returns the slice's tile.
func (s *LLC) ID() noc.NodeID { return s.id }

// Handle returns the LLC slice's scheduling handle (for lane assignment).
func (s *LLC) Handle() *sim.Handle { return s.h }

// Receive implements noc.Endpoint. Filterable read requests are checked
// against the tile's not-yet-departed pushes on arrival as well as at
// processing time; together with the in-network filters this covers every
// point where a request and the push embedding its response can meet.
func (s *LLC) Receive(pkt *noc.Packet, now sim.Cycle) {
	if pkt.Filterable && s.cfg.Scheme.Filter {
		if m := pkt.Payload.(*coherence.Msg); s.pushCovering(m.Addr, m.Requester) {
			s.st.Net.FilteredRequests++
			s.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KFilterHome, Node: int32(s.id),
				Addr: m.Addr, ID: pkt.ID, A: int32(m.Requester)})
			s.out.ni.Recycle(pkt)
			return
		}
	}
	s.h.WakeAt(s.inq.push(pkt, now))
}

// Tick advances the resume knob, processes one matured message, and drains
// outgoing packets.
func (s *LLC) Tick(now sim.Cycle) {
	n := 1
	if s.lastTick != ^sim.Cycle(0) {
		n = int(now - s.lastTick)
	}
	s.lastTick = now
	s.knob.tickN(n)
	if !s.out.congested() {
		if pkt := s.inq.pop(now); pkt != nil {
			s.eng.Progress()
			s.parked = false
			s.handle(pkt, now)
			// A handler either consumes the packet (only the payload message
			// survives it) or parks it via stall/retry; consumed delivery
			// copies rejoin the network free list.
			if !s.parked {
				s.out.ni.Recycle(pkt)
			}
		}
	}
	s.out.drain(now)
	s.reschedule()
}

// reschedule puts the slice to sleep when it has nothing to do this cycle:
// an empty outbox (injection retries need a tick every cycle) and either an
// empty input queue or one whose head has not matured. Stalled packets,
// open episodes, and outstanding fetches all resolve via future Receives,
// which wake the slice.
func (s *LLC) reschedule() {
	if len(s.out.pkts) != 0 {
		return
	}
	if at, ok := s.inq.nextReady(); ok {
		s.h.SleepUntil(at)
		return
	}
	s.h.Sleep()
}

// send wraps m into a pool-backed packet and queues it for injection; the
// message value is copied into a pool-backed Msg (see L2.send).
func (s *LLC) send(m *coherence.Msg, dests noc.DestSet, dstUnit stats.Unit) {
	pm := newMsg(s.out.ni)
	*pm = *m
	p := s.out.ni.NewPacket()
	pm.FillPacket(p, s.cfg.NoC, stats.UnitLLC, dstUnit, dests)
	s.out.send(p)
}

// pushCovering reports whether a push embedding a response for the
// requester is still waiting in this slice's outbox or NI injection queue.
func (s *LLC) pushCovering(addr uint64, req noc.NodeID) bool {
	for _, p := range s.out.pkts {
		if p.IsPush && p.Addr == addr && p.Dests.Has(req) {
			return true
		}
	}
	return s.out.ni.PushCovering(addr, req)
}

// stall parks a packet until wake(addr) reinjects it.
func (s *LLC) stall(addr uint64, pkt *noc.Packet) {
	s.parked = true
	s.stalled[addr] = append(s.stalled[addr], pkt)
}

// wake re-queues packets stalled on addr for immediate reprocessing, in
// their original order.
func (s *LLC) wake(addr uint64, now sim.Cycle) {
	pkts := s.stalled[addr]
	if len(pkts) == 0 {
		return
	}
	delete(s.stalled, addr)
	for i := len(pkts) - 1; i >= 0; i-- {
		s.inq.pushFront(pkts[i], now)
	}
}

// retry re-queues a packet that hit a transient resource (no allocatable
// way) with a small backoff. The packet goes to the back of the queue:
// putting it at the front would head-of-line-block the very fills that will
// eventually unblock it.
func (s *LLC) retry(pkt *noc.Packet, now sim.Cycle) {
	s.parked = true
	s.inq.pushBack(pkt, now+8)
}

func (s *LLC) handle(pkt *noc.Packet, now sim.Cycle) {
	m := pkt.Payload.(*coherence.Msg)
	switch m.Type {
	case coherence.GetS:
		s.handleGetS(pkt, m, now)
	case coherence.GetM:
		s.handleGetM(pkt, m, now)
	case coherence.PutM:
		s.handlePutM(m, now)
	case coherence.InvAck:
		s.handleInvAck(m, now)
	case coherence.InvAckData:
		s.handleInvAckData(m, now)
	case coherence.PushAck:
		s.handlePushAck(m, now)
	case coherence.MemData:
		s.handleMemData(m, now)
	default:
		panic(fmt.Sprintf("LLC %d: unexpected message %v", s.id, m))
	}
}

// --- read path ---

func (s *LLC) handleGetS(pkt *noc.Packet, m *coherence.Msg, now sim.Cycle) {
	s.st.Cache.LLCAccesses++
	s.knob.onRequest(m.Requester, m.NeedPush)
	// Home-side extension of the coherent filter: a request whose response
	// is embedded in a push that has not yet left this tile (LLC outbox or
	// NI injection queue) is pruned here, exactly as the local-port filter
	// would prune it one cycle later.
	if s.cfg.Scheme.Filter && s.pushCovering(m.Addr, m.Requester) {
		s.st.Net.FilteredRequests++
		s.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KFilterHome, Node: int32(s.id),
			Addr: m.Addr, ID: pkt.ID, A: int32(m.Requester)})
		return
	}
	line := s.arr.Lookup(m.Addr)
	if line == nil {
		if f, ok := s.fetches[m.Addr]; ok {
			f.requesters = append(f.requesters, fetchReq{m.Requester, m.Prefetch})
			return
		}
		s.startFetch(pkt, m, now, true)
		return
	}
	switch line.State {
	case StateLV:
		line.LastUse = now
		s.traceSharerGap(line, m.Requester, now)
		if s.cfg.Scheme.Coalesce {
			s.coalescedReply(line, m, now)
			return
		}
		if s.cfg.Scheme.Push && !m.Prefetch && line.Sharers.Has(m.Requester) {
			if !s.cfg.NoRecentPushTable && s.recentlyPushedTo(m.Addr, m.Requester, now) {
				s.unicastDataS(line, m.Requester, now)
				return
			}
			s.triggerPush(line, m.Requester, now)
			return
		}
		s.unicastDataS(line, m.Requester, now)
		line.Sharers = line.Sharers.Add(m.Requester)
	case StateLP:
		// Semi-blocking P state: reads are still served with unicasts.
		line.LastUse = now
		s.unicastDataS(line, m.Requester, now)
		line.Sharers = line.Sharers.Add(m.Requester)
	case StateLM:
		s.startRecall(line, false)
		s.stall(m.Addr, pkt)
	case StateLFetch:
		s.fetches[m.Addr].requesters = append(s.fetches[m.Addr].requesters, fetchReq{m.Requester, m.Prefetch})
	default: // LSInv, LMInv
		s.stall(m.Addr, pkt)
	}
}

// unicastDataS sends a shared data response, embedding the resume knob's
// counter-reset flag when applicable.
func (s *LLC) unicastDataS(line *Line, req noc.NodeID, now sim.Cycle) {
	s.send(&coherence.Msg{
		Type: coherence.DataS, Addr: line.Tag, Requester: req,
		Version: line.Version, Reset: s.knob.resetFlagFor(req),
		Private: line.Sharers.Remove(req).Empty(),
	}, noc.OneDest(req), stats.UnitL2)
}

// triggerPush implements the push activated phase (§III-B): a re-reference
// from an existing sharer speculates that every sharer will need the line
// again and multicasts it to all of them (minus push-disabled requesters).
func (s *LLC) triggerPush(line *Line, req noc.NodeID, now sim.Cycle) {
	dests := line.Sharers
	if s.cfg.Scheme.Knob {
		dests = dests.Subtract(s.knob.pdr)
	}
	dests = dests.Add(req)
	if dests.Count() == 1 {
		// Every other sharer is push-disabled: degenerate to a unicast.
		s.unicastDataS(line, req, now)
		return
	}
	s.st.Cache.PushesTriggered++
	s.st.Cache.PushDestinations += uint64(dests.Count())
	s.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KPushTrigger, Node: int32(s.id),
		Addr: line.Tag, Aux: trace.Aux(dests), A: int32(req)})
	s.recordRecentPush(line.Tag, dests, now)
	if s.cfg.Scheme.Multicast {
		s.send(&coherence.Msg{
			Type: coherence.PushData, Addr: line.Tag, Requester: req, Version: line.Version,
		}, dests, stats.UnitL2)
	} else {
		// MSP-style per-sharer unicast pushes: the demand requester gets a
		// normal response, every other destination an individual push.
		s.unicastDataS(line, req, now)
		dests.Remove(req).ForEach(func(d noc.NodeID) {
			// Requester -1: each unicast copy is speculative for its
			// destination (the demand requester got the DataS above).
			s.send(&coherence.Msg{
				Type: coherence.PushData, Addr: line.Tag, Requester: -1, Version: line.Version,
			}, noc.OneDest(d), stats.UnitL2)
		})
	}
	if s.cfg.Scheme.Protocol == config.ProtoPushAck {
		acks := dests
		if !s.cfg.Scheme.Multicast {
			acks = acks.Remove(req)
		}
		line.Epoch++
		line.State = StateLP
		s.ep[line.Tag] = &episode{kind: epPush, epoch: line.Epoch, pendingAcks: acks}
	}
}

// recordRecentPush notes a just-triggered push in the recent-push table,
// evicting the entry closest to expiry.
func (s *LLC) recordRecentPush(addr uint64, dests noc.DestSet, now sim.Cycle) {
	slot := 0
	for i := range s.recent {
		e := &s.recent[i]
		if !e.valid || e.until <= now {
			slot = i
			break
		}
		if e.until < s.recent[slot].until {
			slot = i
		}
	}
	s.recent[slot] = recentPush{addr: addr, dests: dests, until: now + recentPushWindow, valid: true}
}

// recentlyPushedTo reports whether a live recent push already covers the
// requester.
func (s *LLC) recentlyPushedTo(addr uint64, req noc.NodeID, now sim.Cycle) bool {
	for i := range s.recent {
		e := &s.recent[i]
		if e.valid && e.until > now && e.addr == addr && e.dests.Has(req) {
			return true
		}
	}
	return false
}

// coalescedReply implements the Coalesce baseline [38]: concurrent same-line
// read requests within the LLC lookup window are merged and answered with a
// single multicast.
func (s *LLC) coalescedReply(line *Line, m *coherence.Msg, now sim.Cycle) {
	dests := noc.OneDest(m.Requester)
	absorbed := s.inq.removeIf(func(p *noc.Packet) bool {
		pm, ok := p.Payload.(*coherence.Msg)
		return ok && pm.Type == coherence.GetS && pm.Addr == m.Addr
	})
	for _, p := range absorbed {
		pm := p.Payload.(*coherence.Msg)
		dests = dests.Add(pm.Requester)
		s.st.Cache.CoalescedRequests++
	}
	line.Sharers = line.Sharers.Union(dests)
	s.send(&coherence.Msg{
		Type: coherence.DataS, Addr: line.Tag, Requester: m.Requester, Version: line.Version,
	}, dests, stats.UnitL2)
}

// traceSharerGap records the interval between consecutive same-line reads
// from distinct sharers (Fig 4).
func (s *LLC) traceSharerGap(line *Line, req noc.NodeID, now sim.Cycle) {
	if s.traces == nil {
		return
	}
	t := s.traces[line.Tag]
	if t == nil {
		s.traces[line.Tag] = &traceState{lastReader: req, lastAt: now}
		return
	}
	if t.lastReader != req {
		key := int(t.lastReader)*64 + int(req)
		s.st.ObserveGap(key, uint64(now-t.lastAt))
	}
	t.lastReader, t.lastAt = req, now
}

// --- write path ---

func (s *LLC) handleGetM(pkt *noc.Packet, m *coherence.Msg, now sim.Cycle) {
	s.st.Cache.LLCAccesses++
	line := s.arr.Lookup(m.Addr)
	if line == nil {
		if _, ok := s.fetches[m.Addr]; ok {
			s.stall(m.Addr, pkt)
			return
		}
		s.startFetch(pkt, m, now, false)
		if _, ok := s.fetches[m.Addr]; ok {
			// The fetch started; the write replays once the fill lands.
			s.stall(m.Addr, pkt)
		}
		return
	}
	switch line.State {
	case StateLV:
		others := line.Sharers.Remove(m.Requester)
		if others.Empty() {
			s.grantM(line, m.Requester)
			return
		}
		line.Epoch++
		line.State = StateLSInv
		s.ep[m.Addr] = &episode{kind: epWrite, epoch: line.Epoch, pendingAcks: others, writer: m.Requester}
		others.ForEach(func(d noc.NodeID) {
			s.send(&coherence.Msg{Type: coherence.Inv, Addr: m.Addr, Requester: m.Requester,
				Epoch: line.Epoch}, noc.OneDest(d), stats.UnitL2)
		})
	case StateLM:
		if line.Owner == m.Requester {
			// Defensive: an owner never re-requests ownership.
			s.send(&coherence.Msg{Type: coherence.DataM, Addr: m.Addr, Requester: m.Requester,
				Version: line.Version}, noc.OneDest(m.Requester), stats.UnitL2)
			return
		}
		s.startRecall(line, false)
		s.stall(m.Addr, pkt)
	default: // LP (semi-blocking for writes), LSInv, LMInv, LFetch
		s.stall(m.Addr, pkt)
	}
}

func (s *LLC) grantM(line *Line, writer noc.NodeID) {
	line.State = StateLM
	line.Owner = writer
	line.Sharers = noc.DestSet{}
	s.send(&coherence.Msg{Type: coherence.DataM, Addr: line.Tag, Requester: writer,
		Version: line.Version}, noc.OneDest(writer), stats.UnitL2)
}

// startRecall begins an owner-invalidation episode; evict frees the line
// when data returns.
func (s *LLC) startRecall(line *Line, evict bool) {
	line.Epoch++
	line.State = StateLMInv
	s.ep[line.Tag] = &episode{kind: epRecall, epoch: line.Epoch, evictAfter: evict}
	s.send(&coherence.Msg{Type: coherence.Inv, Addr: line.Tag, Requester: line.Owner,
		Epoch: line.Epoch, Recall: true}, noc.OneDest(line.Owner), stats.UnitL2)
}

func (s *LLC) handlePutM(m *coherence.Msg, now sim.Cycle) {
	line := s.arr.Lookup(m.Addr)
	if line == nil {
		panic(fmt.Sprintf("LLC %d: PutM for absent line %#x", s.id, m.Addr))
	}
	switch line.State {
	case StateLM:
		if line.Owner != m.Requester {
			panic(fmt.Sprintf("LLC %d: PutM for %#x from %d, owner is %d", s.id, m.Addr, m.Requester, line.Owner))
		}
		line.Version = m.Version
		line.Dirty = true
		line.Owner = 0
		line.Sharers = noc.DestSet{}
		line.State = StateLV
		s.send(&coherence.Msg{Type: coherence.WBAck, Addr: m.Addr, Requester: m.Requester},
			noc.OneDest(m.Requester), stats.UnitL2)
		s.wake(m.Addr, now)
	case StateLMInv:
		// Writeback raced with the recall: the PutM carries the data the
		// episode was waiting for.
		line.Version = m.Version
		line.Dirty = true
		s.send(&coherence.Msg{Type: coherence.WBAck, Addr: m.Addr, Requester: m.Requester},
			noc.OneDest(m.Requester), stats.UnitL2)
		s.completeRecall(line, now)
	default:
		panic(fmt.Sprintf("LLC %d: PutM for %#x in %v", s.id, m.Addr, line.State))
	}
}

func (s *LLC) handleInvAck(m *coherence.Msg, now sim.Cycle) {
	ep := s.ep[m.Addr]
	if ep == nil || ep.epoch != m.Epoch {
		return // stale acknowledgment from a closed episode
	}
	switch ep.kind {
	case epWrite, epEvictShared:
		if !ep.pendingAcks.Has(m.Requester) {
			return
		}
		ep.pendingAcks = ep.pendingAcks.Remove(m.Requester)
		if !ep.pendingAcks.Empty() {
			return
		}
		line := s.arr.Lookup(m.Addr)
		delete(s.ep, m.Addr)
		if ep.kind == epWrite {
			s.grantM(line, ep.writer)
		} else {
			s.freeLine(line)
		}
		s.wake(m.Addr, now)
	case epRecall:
		// The owner acknowledged from its writeback-in-flight state; the
		// data arrives in the PutM, which completes the episode.
	}
}

func (s *LLC) handleInvAckData(m *coherence.Msg, now sim.Cycle) {
	ep := s.ep[m.Addr]
	if ep == nil || ep.epoch != m.Epoch || ep.kind != epRecall {
		return
	}
	line := s.arr.Lookup(m.Addr)
	line.Version = m.Version
	line.Dirty = true
	s.completeRecall(line, now)
}

func (s *LLC) completeRecall(line *Line, now sim.Cycle) {
	ep := s.ep[line.Tag]
	delete(s.ep, line.Tag)
	line.Owner = 0
	line.Sharers = noc.DestSet{}
	if ep.evictAfter {
		s.freeLine(line)
	} else {
		line.State = StateLV
	}
	s.wake(line.Tag, now)
}

func (s *LLC) handlePushAck(m *coherence.Msg, now sim.Cycle) {
	ep := s.ep[m.Addr]
	if ep == nil || ep.kind != epPush || !ep.pendingAcks.Has(m.Requester) {
		return
	}
	ep.pendingAcks = ep.pendingAcks.Remove(m.Requester)
	if !ep.pendingAcks.Empty() {
		return
	}
	line := s.arr.Lookup(m.Addr)
	delete(s.ep, m.Addr)
	line.State = StateLV
	s.wake(m.Addr, now)
}

// --- miss path ---

// newFetch pops a recycled fetch record or allocates a fresh one; records
// return to the free list when the fill lands (handleMemData).
func (s *LLC) newFetch() *fetch {
	if k := len(s.fetchFree); k > 0 {
		f := s.fetchFree[k-1]
		s.fetchFree[k-1] = nil
		s.fetchFree = s.fetchFree[:k-1]
		return f
	}
	return &fetch{}
}

// startFetch allocates a way (running an eviction episode first if needed)
// and issues the memory read. When isRead, the requester is recorded for the
// fill response; writers are stalled by the caller instead.
func (s *LLC) startFetch(pkt *noc.Packet, m *coherence.Msg, now sim.Cycle, isRead bool) {
	victim := s.chooseVictim(m.Addr)
	if victim == nil {
		s.retry(pkt, now)
		return
	}
	if victim.State == StateLV && !victim.Sharers.Empty() {
		s.startEvictShared(victim)
		s.stall(victim.Tag, pkt)
		return
	}
	if victim.State == StateLM {
		s.startRecall(victim, true)
		s.stall(victim.Tag, pkt)
		return
	}
	if victim.State == StateLV {
		s.freeLine(victim)
	}
	s.st.Cache.LLCMisses++
	s.arr.Install(victim, m.Addr, StateLFetch, now)
	f := s.newFetch()
	if isRead {
		f.requesters = append(f.requesters, fetchReq{m.Requester, m.Prefetch})
	}
	s.fetches[m.Addr] = f
	s.send(&coherence.Msg{Type: coherence.MemRead, Addr: m.Addr, Requester: s.id},
		noc.OneDest(s.memNode), stats.UnitMem)
}

// chooseVictim prefers free ways, then sharerless valid lines, then shared
// lines, then owned lines; transient lines are never displaced.
func (s *LLC) chooseVictim(addr uint64) *Line {
	if v := s.arr.Victim(addr, func(l *Line) bool {
		return l.State == StateLV && l.Sharers.Empty()
	}); v != nil {
		return v
	}
	if v := s.arr.Victim(addr, func(l *Line) bool { return l.State == StateLV }); v != nil {
		return v
	}
	return s.arr.Victim(addr, func(l *Line) bool { return l.State == StateLM })
}

func (s *LLC) startEvictShared(line *Line) {
	if s.pred != nil {
		s.pred.remember(line.Tag, line.Sharers)
	}
	line.Epoch++
	line.State = StateLSInv
	s.ep[line.Tag] = &episode{kind: epEvictShared, epoch: line.Epoch, pendingAcks: line.Sharers}
	line.Sharers.ForEach(func(d noc.NodeID) {
		s.send(&coherence.Msg{Type: coherence.Inv, Addr: line.Tag, Requester: d,
			Epoch: line.Epoch}, noc.OneDest(d), stats.UnitL2)
	})
	line.Sharers = noc.DestSet{}
}

// freeLine evicts a stable valid line, writing dirty data back to memory.
// Under the PredictPush extension the sharer set is remembered so a later
// refetch can restore the push coverage the eviction destroyed.
func (s *LLC) freeLine(line *Line) {
	if s.pred != nil && line.State == StateLV {
		s.pred.remember(line.Tag, line.Sharers)
	}
	if line.Dirty {
		s.send(&coherence.Msg{Type: coherence.MemWrite, Addr: line.Tag, Requester: s.id,
			Version: line.Version}, noc.OneDest(s.memNode), stats.UnitMem)
	}
	s.st.Cache.LLCEvictions++
	if s.traces != nil {
		delete(s.traces, line.Tag)
	}
	line.State = StateI
}

func (s *LLC) handleMemData(m *coherence.Msg, now sim.Cycle) {
	line := s.arr.Lookup(m.Addr)
	f := s.fetches[m.Addr]
	if line == nil || line.State != StateLFetch || f == nil {
		panic(fmt.Sprintf("LLC %d: MemData for %#x without fetch", s.id, m.Addr))
	}
	delete(s.fetches, m.Addr)
	line.State = StateLV
	line.Version = m.Version
	line.Dirty = false
	line.LastUse = now
	if len(f.requesters) > 0 {
		if s.cfg.Scheme.Coalesce {
			var dests noc.DestSet
			for _, r := range f.requesters {
				dests = dests.Add(r.req)
				if len(f.requesters) > 1 {
					s.st.Cache.CoalescedRequests++
				}
			}
			line.Sharers = line.Sharers.Union(dests)
			s.send(&coherence.Msg{Type: coherence.DataS, Addr: m.Addr,
				Requester: f.requesters[0].req, Version: line.Version}, dests, stats.UnitL2)
		} else {
			for _, r := range f.requesters {
				s.unicastDataS(line, r.req, now)
				line.Sharers = line.Sharers.Add(r.req)
			}
		}
	}
	f.requesters = f.requesters[:0]
	s.fetchFree = append(s.fetchFree, f)
	// PredictPush extension: if the evicted incarnation of this line had a
	// remembered sharer set, push the fill to the sharers the directory no
	// longer knows about.
	if s.pred != nil {
		if predicted, ok := s.pred.predict(m.Addr); ok {
			dests := predicted.Subtract(line.Sharers)
			if s.cfg.Scheme.Knob {
				dests = dests.Subtract(s.knob.pdr)
			}
			if !dests.Empty() {
				s.st.Cache.PushesTriggered++
				s.st.Cache.PushDestinations += uint64(dests.Count())
				s.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KPushTrigger, Node: int32(s.id),
					Addr: line.Tag, Aux: trace.Aux(dests), A: -1})
				s.recordRecentPush(line.Tag, dests, now)
				// Requester -1: every copy is speculative; no destination
				// treats this push as its demand response.
				s.send(&coherence.Msg{
					Type: coherence.PushData, Addr: line.Tag, Version: line.Version,
					Requester: -1,
				}, dests, stats.UnitL2)
				line.Sharers = line.Sharers.Union(dests)
				if s.cfg.Scheme.Protocol == config.ProtoPushAck {
					line.Epoch++
					line.State = StateLP
					s.ep[line.Tag] = &episode{kind: epPush, epoch: line.Epoch, pendingAcks: dests}
				}
			}
		}
	}
	s.wake(m.Addr, now)
}

// ForEachLine exposes the slice's array for coherence checkers and tests.
func (s *LLC) ForEachLine(f func(*Line)) { s.arr.ForEach(f) }

// SetTraceShard installs the slice's trace shard.
func (s *LLC) SetTraceShard(tr *trace.Shard) { s.tr = tr }

// DirectoryView returns the directory's conservative view of the line's
// possible private holders, or ok=false when the line is absent. The view
// merges the line's sharer vector with episode state: startEvictShared
// zeroes Sharers while its invalidations are in flight (the pending-ack
// set holds them), and an owner under recall lives only in the Owner
// field. The sharers-superset invariant is phrased against this view —
// any L2 actually holding the line must appear in it.
func (s *LLC) DirectoryView(lineAddr uint64) (noc.DestSet, bool) {
	line := s.arr.Lookup(lineAddr)
	if line == nil {
		return noc.DestSet{}, false
	}
	view := line.Sharers
	if line.State == StateLM || line.State == StateLMInv {
		view = view.Add(line.Owner)
	}
	if ep := s.ep[lineAddr]; ep != nil {
		view = view.Union(ep.pendingAcks)
		if ep.kind == epWrite {
			view = view.Add(ep.writer)
		}
	}
	return view, true
}

// PushQueued exposes pushCovering to the checker: a push embedding a
// response for (addr, req) has not yet left this tile.
func (s *LLC) PushQueued(addr uint64, req noc.NodeID) bool { return s.pushCovering(addr, req) }

// OutstandingTransactions reports open episodes or fetches.
func (s *LLC) OutstandingTransactions() bool {
	return len(s.ep) != 0 || len(s.fetches) != 0 || len(s.stalled) != 0
}

// PushDisabled exposes the PDRMap for tests.
func (s *LLC) PushDisabled(req noc.NodeID) bool { return s.knob.pushDisabled(req) }
