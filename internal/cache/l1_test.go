package cache

import "testing"

func TestL1HitMiss(t *testing.T) {
	l1 := NewL1(2048, 8, 64)
	if _, hit := l1.Lookup(0x40, 0); hit {
		t.Fatal("cold lookup hit")
	}
	l1.Fill(0x40, 7, 1)
	v, hit := l1.Lookup(0x40, 2)
	if !hit || v != 7 {
		t.Fatalf("hit=%v v=%d, want hit with version 7", hit, v)
	}
	acc, miss := l1.Stats()
	if acc != 2 || miss != 1 {
		t.Fatalf("stats = %d/%d, want 2 accesses 1 miss", acc, miss)
	}
}

func TestL1FillUpdatesExisting(t *testing.T) {
	l1 := NewL1(2048, 8, 64)
	l1.Fill(0x40, 1, 0)
	l1.Fill(0x40, 2, 1)
	if v, _ := l1.Lookup(0x40, 2); v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}
}

func TestL1Invalidate(t *testing.T) {
	l1 := NewL1(2048, 8, 64)
	l1.Fill(0x40, 1, 0)
	l1.Invalidate(0x40)
	if l1.Present(0x40) {
		t.Fatal("line present after invalidation")
	}
	l1.Invalidate(0x80) // absent: must be a no-op
}

func TestL1Update(t *testing.T) {
	l1 := NewL1(2048, 8, 64)
	l1.Update(0x40, 9) // absent: no-allocate
	if l1.Present(0x40) {
		t.Fatal("Update must not allocate")
	}
	l1.Fill(0x40, 1, 0)
	l1.Update(0x40, 9)
	if v, _ := l1.Lookup(0x40, 1); v != 9 {
		t.Fatalf("version = %d, want 9", v)
	}
}

func TestL1EvictsLRUWithinSet(t *testing.T) {
	l1 := NewL1(2*64, 2, 64) // 1 set x 2 ways
	l1.Fill(0x000, 1, 0)
	l1.Fill(0x040, 1, 1)
	l1.Lookup(0x000, 2) // make line 0 recently used
	l1.Fill(0x080, 1, 3)
	if !l1.Present(0x000) || l1.Present(0x040) {
		t.Fatal("LRU eviction picked the wrong way")
	}
}
