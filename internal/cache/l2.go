package cache

import (
	"fmt"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// Requestor is the core-side completion interface: the L2 calls it when a
// load or store issued through Load/Store finishes.
type Requestor interface {
	LoadDone(lineAddr uint64, now sim.Cycle)
	StoreDone(lineAddr uint64, now sim.Cycle)
}

// l2MSHR tracks one outstanding L2 miss (or upgrade).
type l2MSHR struct {
	addr   uint64
	loads  int // demand loads waiting
	stores int // stores waiting
	// issuedAt is when the current request (GetS/GetM) left the controller;
	// under lossy fault plans an MSHR quiet past MSHRRetryTimeout reissues
	// it (see checkMSHRTimers). Fault-free runs never read it.
	issuedAt sim.Cycle
	// backoff doubles the retry timeout per consecutive reissue (capped):
	// a flat timer congestively collapses — when load pushes fill latency
	// past the timeout, every MSHR reissues at once, the duplicate-response
	// traffic pushes latency further out, and the storm feeds itself.
	backoff uint8
	// prefetchL1 requests an L1 fill on completion (Bingo prefetches).
	prefetchL1 bool
	// prefetch marks an MSHR with no demand waiters at allocation time.
	prefetch bool
	// recallPending records a recall invalidation that overtook the DataM
	// this MSHR is waiting for: once the data arrives and the waiting
	// stores perform, the line is returned to the directory (InvAckData
	// with recallEpoch) and invalidated instead of being kept in M.
	recallPending bool
	recallEpoch   uint32
}

// wbEntry is a writeback-buffer slot: a PutM left the cache and the way was
// reused; the entry pins the address until the directory's WBAck closes the
// episode.
type wbEntry struct {
	invalidated bool
}

// doneEvt is a scheduled core completion for an L2 hit.
type doneEvt struct {
	addr  uint64
	at    sim.Cycle
	store bool
}

// L2 is a private, unified, coherent L2 cache controller. It is the
// coherence point of a tile: the L1 is its strictly-inclusive child and the
// LLC directory its parent. It implements the MSI private-cache FSM plus
// the paper's push handling rules (guaranteed acceptance for outstanding
// same-line misses, deadlock/redundancy/coherence drops otherwise) and the
// push pause knob.
type L2 struct {
	id   noc.NodeID
	cfg  *config.System
	eng  *sim.Engine
	st   *stats.All
	arr  *Array
	l1   *L1
	core Requestor

	h *sim.Handle
	// wakeCore, when the Requestor supports it, marks the core runnable
	// after this L2 processed any message: each one may free the resource
	// (MSHR, writeback slot, transient victim) a core is stalled on.
	wakeCore func()

	mshr     map[uint64]*l2MSHR
	mshrFree []*l2MSHR
	wb       map[uint64]*wbEntry
	inq      delayQueue
	out      outbox
	pend     []doneEvt
	knob     pauseKnob

	// lossy arms the MSHR retry timers and the duplicate-response tolerance
	// (a reissued request can produce two responses); set only when the
	// fault plan schedules message loss.
	lossy       bool
	mshrTimeout sim.Cycle
	// dead is the ErrUnrecoverable verdict once an MSHR exhausts its reissue
	// budget (loss rates beyond the forward-progress ceiling): requests are
	// outside the transport's retransmit protection — the filter may consume
	// them in-network — so their loud-failure path lives here, not in the NI.
	dead error
	// timeoutScratch collects overdue MSHR addresses for sorting: the map
	// scan order is nondeterministic, the reissue order must not be.
	timeoutScratch []uint64

	// rejKind/rejAddr remember a load (1) or store (2) the controller
	// rejected with accepted=false. The core's next attempt for the same
	// line is a retry of that architectural access, not a new one, so the
	// access counters are not incremented again. Without this, counter
	// totals would depend on how many times the core polls while stalled —
	// which differs between the dense and wake-driven kernels.
	rejKind uint8
	rejAddr uint64

	// OnMiss, when set, is invoked on every demand L2 miss (the stride
	// prefetcher's training hook).
	OnMiss func(lineAddr uint64, now sim.Cycle)
}

// NewL2 builds the tile's private cache stack (L1 + L2) and attaches it to
// the network.
func NewL2(id noc.NodeID, cfg *config.System, net *noc.Network, eng *sim.Engine, st *stats.All, core Requestor) *L2 {
	c := &L2{
		id:   id,
		cfg:  cfg,
		eng:  eng,
		st:   st,
		arr:  NewArray(cfg.L2Size, cfg.L2Ways, cfg.LineSize),
		l1:   NewL1(cfg.L1Size, cfg.L1Ways, cfg.LineSize),
		core: core,
		mshr: make(map[uint64]*l2MSHR),
		wb:   make(map[uint64]*wbEntry),
		inq:  delayQueue{latency: sim.Cycle(cfg.L2Latency)},
		out:  outbox{ni: net.NI(id), unit: stats.UnitL2},
		knob: pauseKnob{
			tpcThreshold: uint32(cfg.TPCThreshold),
			ratioShift:   cfg.KnobRatioShift,
			enabled:      cfg.Scheme.Knob,
		},
	}
	if cfg.Faults.Lossy() {
		c.lossy = true
		c.mshrTimeout = sim.Cycle(cfg.MSHRRetryTimeout)
		if c.mshrTimeout <= 0 {
			c.mshrTimeout = 300
		}
	}
	net.Attach(id, stats.UnitL2, c)
	c.h = eng.Register(c)
	c.out.h = c.h
	if w, ok := core.(interface{ WakeUp() }); ok {
		c.wakeCore = w.WakeUp
	}
	return c
}

// ID returns the tile id.
func (c *L2) ID() noc.NodeID { return c.id }

// L1 returns the tile's L1 cache (prefetcher and test access).
func (c *L2) L1() *L1 { return c.l1 }

// Receive implements noc.Endpoint.
// Handle returns the L2 controller's scheduling handle (for lane assignment).
func (c *L2) Handle() *sim.Handle { return c.h }

func (c *L2) Receive(pkt *noc.Packet, now sim.Cycle) {
	c.h.WakeAt(c.inq.push(pkt, now))
}

// Tick fires matured core completions, processes incoming protocol messages,
// and drains the outbox.
func (c *L2) Tick(now sim.Cycle) {
	if len(c.pend) > 0 {
		kept := c.pend[:0]
		for _, d := range c.pend {
			if d.at > now {
				kept = append(kept, d)
				continue
			}
			c.eng.Progress()
			if d.store {
				c.core.StoreDone(d.addr, now)
			} else {
				c.core.LoadDone(d.addr, now)
			}
		}
		c.pend = kept
	}
	handled := false
	for i := 0; i < 2 && !c.out.congested(); i++ {
		pkt := c.inq.pop(now)
		if pkt == nil {
			break
		}
		c.eng.Progress()
		c.handle(pkt.Payload.(*coherence.Msg), now)
		// The L2 never retains delivered packets past handle (handlers work
		// on the payload message), so replicas can rejoin the free list.
		c.out.ni.Recycle(pkt)
		handled = true
	}
	if c.lossy {
		c.checkMSHRTimers(now)
	}
	c.out.drain(now)
	if handled && c.wakeCore != nil {
		c.wakeCore()
	}
	c.reschedule()
}

// reschedule reports quiescence: with an empty outbox, the L2's next possible
// action is the earlier of its head input maturing and its next scheduled
// core completion. A non-empty outbox keeps it awake to retry injection.
func (c *L2) reschedule() {
	if len(c.out.pkts) != 0 {
		return
	}
	next := sim.NeverWake
	if at, ok := c.inq.nextReady(); ok {
		next = at
	}
	for _, d := range c.pend {
		if d.at < next {
			next = d.at
		}
	}
	if c.lossy {
		// A dropped response means no message ever arrives to wake us: the
		// retry timer is the only way out, so it must bound the sleep.
		for _, m := range c.mshr {
			if d := m.retryDeadline(c.mshrTimeout); d < next {
				next = d
			}
		}
	}
	if next == sim.NeverWake {
		c.h.Sleep()
	} else {
		c.h.SleepUntil(next)
	}
}

// checkMSHRTimers reissues the request of every MSHR that has been quiet for
// MSHRRetryTimeout cycles (lossy runs only): the request or its response may
// have been dropped below the transport's own recovery horizon. Reissues are
// protocol-idempotent — the directory re-serves duplicate GetS/GetM, and the
// duplicate-response paths in handleDataS/handleDataM tolerate the second
// answer. Overdue addresses are collected and sorted first: map scan order
// must not leak into the deterministic event stream.
func (c *L2) checkMSHRTimers(now sim.Cycle) {
	scratch := c.timeoutScratch[:0]
	for addr, m := range c.mshr {
		if now >= m.retryDeadline(c.mshrTimeout) {
			scratch = append(scratch, addr)
		}
	}
	c.timeoutScratch = scratch
	if len(scratch) == 0 {
		return
	}
	sortAddrs(scratch)
	for _, addr := range scratch {
		m := c.mshr[addr]
		// Restamp unconditionally so a skipped reissue does not spin the
		// timer every tick.
		m.issuedAt = now
		if m.recallPending {
			// The directory owes us the DataM a recall is already chasing;
			// reissuing GetM would open a second ownership episode.
			continue
		}
		line := c.arr.Lookup(addr)
		if line == nil {
			continue
		}
		switch line.State {
		case StateISD, StateISDI:
			if c.incomingDataPending(addr) {
				continue // the fill is already queued; no reissue needed
			}
			c.sendGetS(addr, m.prefetch)
		case StateIMD, StateSMD:
			c.sendGetM(addr)
		default:
			continue
		}
		if m.backoff < 32 {
			m.backoff++
		}
		if m.backoff >= mshrMaxRetries && c.dead == nil {
			c.dead = fmt.Errorf("cache: L2 %d addr %#x: %d request reissues unanswered: %w",
				c.id, addr, m.backoff, noc.ErrUnrecoverable)
		}
		c.st.Cache.MSHRTimeouts++
		c.eng.Progress()
	}
}

// mshrMaxRetries is the MSHR reissue budget: consecutive unanswered reissues
// beyond it mark the controller dead with ErrUnrecoverable. With exponential
// backoff the budget spans ~320 base timeouts — far beyond any congestion
// transient, so tripping it means the line's request or response is being
// discarded persistently (loss rate above the forward-progress ceiling).
const mshrMaxRetries = 10

// Unrecoverable returns the controller's ErrUnrecoverable verdict, or nil.
// Read between cycles by the run's finished-check (post-barrier, so the
// lane-written field is safely visible in parallel runs).
func (c *L2) Unrecoverable() error { return c.dead }

// retryDeadline is when the MSHR's next reissue is due: the base timeout
// doubled per consecutive reissue, capped at 64x.
func (m *l2MSHR) retryDeadline(base sim.Cycle) sim.Cycle {
	b := m.backoff
	if b > 6 {
		b = 6
	}
	return m.issuedAt + base<<b
}

// sortAddrs sorts a small address slice ascending (insertion sort: the
// overdue set is bounded by L2MSHRs, typically a handful).
func sortAddrs(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Load issues a demand load. done=true means it completed immediately (L1
// hit); accepted=false means a resource stall and the core must retry.
func (c *L2) Load(lineAddr uint64, now sim.Cycle) (done, accepted bool) {
	retry := c.rejKind == 1 && c.rejAddr == lineAddr
	c.rejKind = 0
	if !retry {
		c.st.Cache.L1Accesses++
	}
	if _, ok := c.l1.Lookup(lineAddr, now); ok {
		return true, true
	}
	if !retry {
		c.st.Cache.L1Misses++
		c.st.Cache.L2Accesses++
	}
	if line := c.arr.Lookup(lineAddr); line != nil {
		switch line.State {
		case StateS, StateM:
			line.LastUse = now
			c.touchPushed(line)
			c.l1.Fill(lineAddr, line.Version, now)
			c.pend = append(c.pend, doneEvt{lineAddr, now + sim.Cycle(c.cfg.L2Latency), false})
			c.h.WakeAt(now + sim.Cycle(c.cfg.L2Latency))
			return false, true
		case StateISD, StateISDI, StateIMD, StateSMD:
			m := c.mshr[lineAddr]
			if m == nil {
				panic(fmt.Sprintf("L2 %d: transient line %#x without MSHR", c.id, lineAddr))
			}
			m.loads++
			m.prefetch = false
			return false, true
		}
	}
	if _, busy := c.wb[lineAddr]; busy {
		return false, c.reject(1, lineAddr)
	}
	if !c.allocMiss(lineAddr, now, 1, 0, false) {
		return false, c.reject(1, lineAddr)
	}
	return false, true
}

// newMSHR pops a recycled MSHR from the free list; misses refill the list a
// slab at a time (one allocation per block instead of per MSHR — the
// per-miss allocation showed up in checker-off profiles).
func (c *L2) newMSHR() *l2MSHR {
	const slab = 16
	if len(c.mshrFree) == 0 {
		blk := make([]l2MSHR, slab)
		for i := range blk {
			c.mshrFree = append(c.mshrFree, &blk[i])
		}
	}
	k := len(c.mshrFree)
	m := c.mshrFree[k-1]
	c.mshrFree[k-1] = nil
	c.mshrFree = c.mshrFree[:k-1]
	return m
}

// freeMSHR retires the MSHR for addr and returns it to the free list.
func (c *L2) freeMSHR(addr uint64) {
	if m := c.mshr[addr]; m != nil {
		delete(c.mshr, addr)
		c.mshrFree = append(c.mshrFree, m)
	}
}

// reject records a refused access for retry dedup and returns false.
func (c *L2) reject(kind uint8, lineAddr uint64) bool {
	c.rejKind = kind
	c.rejAddr = lineAddr
	return false
}

// Store issues a store. Stores write through to the L1 and perform at the
// L2 once ownership is held.
func (c *L2) Store(lineAddr uint64, now sim.Cycle) (done, accepted bool) {
	retry := c.rejKind == 2 && c.rejAddr == lineAddr
	c.rejKind = 0
	if !retry {
		c.st.Cache.L2Accesses++
	}
	if line := c.arr.Lookup(lineAddr); line != nil {
		switch line.State {
		case StateM:
			line.LastUse = now
			c.touchPushed(line)
			line.Version++
			c.l1.Update(lineAddr, line.Version)
			c.pend = append(c.pend, doneEvt{lineAddr, now + sim.Cycle(c.cfg.L2Latency), true})
			c.h.WakeAt(now + sim.Cycle(c.cfg.L2Latency))
			return false, true
		case StateS:
			// Upgrade: keep the S data readable while GetM is outstanding.
			if len(c.mshr) >= c.cfg.L2MSHRs {
				return false, c.reject(2, lineAddr)
			}
			line.State = StateSMD
			m := &l2MSHR{addr: lineAddr, stores: 1, issuedAt: now}
			c.mshr[lineAddr] = m
			c.sendGetM(lineAddr)
			return false, true
		case StateISD, StateISDI, StateIMD, StateSMD:
			m := c.mshr[lineAddr]
			m.stores++
			m.prefetch = false
			return false, true
		}
	}
	if _, busy := c.wb[lineAddr]; busy {
		return false, c.reject(2, lineAddr)
	}
	if !c.allocMiss(lineAddr, now, 0, 1, false) {
		return false, c.reject(2, lineAddr)
	}
	return false, true
}

// Prefetch issues a prefetch read; it is dropped silently under resource
// pressure or when the line is already present or in flight. fillL1 marks
// L1-targeted (Bingo) prefetches.
func (c *L2) Prefetch(lineAddr uint64, fillL1 bool, now sim.Cycle) {
	c.st.Cache.L2Accesses++
	if line := c.arr.Lookup(lineAddr); line != nil {
		if fillL1 && (line.State == StateS || line.State == StateM) && !c.l1.Present(lineAddr) {
			c.l1.Fill(lineAddr, line.Version, now)
		}
		return
	}
	if _, busy := c.wb[lineAddr]; busy {
		return
	}
	c.allocMiss(lineAddr, now, 0, 0, fillL1)
}

// allocMiss allocates an MSHR and a victim way, issues the appropriate
// request, and returns false on a resource stall.
func (c *L2) allocMiss(lineAddr uint64, now sim.Cycle, loads, stores int, prefetchL1 bool) bool {
	if len(c.mshr) >= c.cfg.L2MSHRs {
		return false
	}
	victim := c.arr.Victim(lineAddr, func(l *Line) bool { return !l.State.Transient() })
	if victim == nil {
		return false
	}
	c.evict(victim, now)
	c.st.Cache.L2Misses++
	m := c.newMSHR()
	*m = l2MSHR{addr: lineAddr, loads: loads, stores: stores,
		prefetchL1: prefetchL1, prefetch: loads == 0 && stores == 0,
		issuedAt: now}
	c.mshr[lineAddr] = m
	if stores > 0 && loads == 0 {
		c.arr.Install(victim, lineAddr, StateIMD, now)
		c.sendGetM(lineAddr)
	} else {
		c.arr.Install(victim, lineAddr, StateISD, now)
		// Fill-queue snoop: if a push (or data response) for this line is
		// already waiting in the input queue, the miss rides it instead of
		// issuing a redundant request — standard response-queue checking,
		// and the last gap a same-line request could otherwise slip
		// through to re-trigger a multicast.
		if !c.incomingDataPending(lineAddr) {
			c.sendGetS(lineAddr, m.prefetch)
		}
		if !m.prefetch && c.OnMiss != nil {
			c.OnMiss(lineAddr, now)
		}
	}
	return true
}

// incomingDataPending reports whether a shared-data fill for the line is
// already sitting in the controller's input queue.
func (c *L2) incomingDataPending(lineAddr uint64) bool {
	for _, d := range c.inq.live() {
		m, ok := d.pkt.Payload.(*coherence.Msg)
		if !ok {
			continue
		}
		if m.Addr == lineAddr && (m.Type == coherence.PushData || m.Type == coherence.DataS) {
			return true
		}
	}
	return false
}

// evict removes a stable line from the array (and the L1), issuing a PutM
// writeback for modified data.
func (c *L2) evict(l *Line, now sim.Cycle) {
	if l.State == StateI {
		return
	}
	if l.State.Transient() {
		panic(fmt.Sprintf("L2 %d: evicting transient line %#x in %v", c.id, l.Tag, l.State))
	}
	c.classifyEvict(l)
	c.l1.Invalidate(l.Tag)
	c.st.Cache.L2Evictions++
	if l.State == StateM {
		c.wb[l.Tag] = &wbEntry{}
		c.send(&coherence.Msg{Type: coherence.PutM, Addr: l.Tag, Requester: c.id, Version: l.Version},
			noc.OneDest(c.home(l.Tag)), stats.UnitLLC)
	}
	l.State = StateI
}

// classifyEvict records the Unused outcome for pushed-but-never-accessed
// lines leaving the cache.
func (c *L2) classifyEvict(l *Line) {
	if l.Pushed && !l.Accessed {
		c.st.Cache.PushOutcomes[stats.PushUnused]++
	}
}

// touchPushed records the first access to a pushed line: the push turned a
// future miss into a hit.
func (c *L2) touchPushed(l *Line) {
	if l.Pushed && !l.Accessed {
		l.Accessed = true
		c.knob.onUseful()
		c.st.Cache.PushOutcomes[stats.PushMissToHit]++
	}
}

func (c *L2) home(lineAddr uint64) noc.NodeID { return c.cfg.HomeSlice(lineAddr) }

// send wraps m into a pool-backed packet and queues it for injection. The
// message value is copied into a pool-backed Msg, so callers can pass
// stack-allocated literals without the per-message heap allocation.
func (c *L2) send(m *coherence.Msg, dests noc.DestSet, dstUnit stats.Unit) {
	pm := newMsg(c.out.ni)
	*pm = *m
	p := c.out.ni.NewPacket()
	pm.FillPacket(p, c.cfg.NoC, stats.UnitL2, dstUnit, dests)
	c.out.send(p)
}

func (c *L2) sendGetS(lineAddr uint64, prefetch bool) {
	needPush := c.knob.needPush()
	if !needPush {
		c.st.Cache.PausedPushRequests++
	}
	c.send(&coherence.Msg{Type: coherence.GetS, Addr: lineAddr, Requester: c.id,
		NeedPush: needPush, Prefetch: prefetch}, noc.OneDest(c.home(lineAddr)), stats.UnitLLC)
}

func (c *L2) sendGetM(lineAddr uint64) {
	c.send(&coherence.Msg{Type: coherence.GetM, Addr: lineAddr, Requester: c.id},
		noc.OneDest(c.home(lineAddr)), stats.UnitLLC)
}

// handle dispatches one incoming protocol message.
func (c *L2) handle(m *coherence.Msg, now sim.Cycle) {
	switch m.Type {
	case coherence.DataS:
		c.handleDataS(m, now)
	case coherence.DataM:
		c.handleDataM(m, now)
	case coherence.Inv:
		c.handleInv(m, now)
	case coherence.PushData:
		c.handlePush(m, now)
	case coherence.WBAck:
		delete(c.wb, m.Addr)
	default:
		panic(fmt.Sprintf("L2 %d: unexpected message %v", c.id, m))
	}
}

// completeLoads fires all waiting loads of an MSHR.
func (c *L2) completeLoads(m *l2MSHR, now sim.Cycle) {
	for i := 0; i < m.loads; i++ {
		c.core.LoadDone(m.addr, now)
	}
	m.loads = 0
}

// finishFill finalizes a shared fill: retire the MSHR or start the pending
// write upgrade.
func (c *L2) finishFill(line *Line, m *l2MSHR, now sim.Cycle) {
	if m.stores > 0 {
		line.State = StateSMD
		m.loads = 0
		m.issuedAt = now
		m.backoff = 0 // fresh request episode
		c.sendGetM(m.addr)
		return
	}
	c.freeMSHR(m.addr)
}

func (c *L2) handleDataS(m *coherence.Msg, now sim.Cycle) {
	if m.Reset {
		c.knob.reset()
	}
	ms := c.mshr[m.Addr]
	if ms == nil {
		return // duplicate response; a push already served this miss
	}
	line := c.arr.Lookup(m.Addr)
	if line == nil {
		panic(fmt.Sprintf("L2 %d: DataS for %#x with MSHR but no reserved way", c.id, m.Addr))
	}
	switch line.State {
	case StateISD:
		line.State = StateS
		line.Version = m.Version
		line.LastUse = now
		if ms.loads > 0 || ms.prefetchL1 {
			c.l1.Fill(m.Addr, m.Version, now)
		}
		c.completeLoads(ms, now)
		c.finishFill(line, ms, now)
	case StateISDI:
		// Use-once: satisfy the waiting loads with the received value, then
		// discard (the line was invalidated while the fetch was in flight).
		for i := 0; i < ms.loads; i++ {
			c.core.LoadDone(m.Addr, now)
		}
		ms.loads = 0
		if ms.stores > 0 {
			line.State = StateIMD
			ms.issuedAt = now
			ms.backoff = 0 // fresh request episode
			c.sendGetM(m.Addr)
		} else {
			line.State = StateI
			c.freeMSHR(m.Addr)
		}
	default:
		if c.lossy {
			return // duplicate DataS from a reissued GetS
		}
		panic(fmt.Sprintf("L2 %d: DataS for %#x in %v", c.id, m.Addr, line.State))
	}
}

func (c *L2) handleDataM(m *coherence.Msg, now sim.Cycle) {
	if m.Reset {
		c.knob.reset()
	}
	ms := c.mshr[m.Addr]
	line := c.arr.Lookup(m.Addr)
	if ms == nil || line == nil {
		if c.lossy {
			return // duplicate DataM from a reissued GetM; episode done
		}
		panic(fmt.Sprintf("L2 %d: DataM for %#x without transaction", c.id, m.Addr))
	}
	switch line.State {
	case StateIMD, StateSMD:
		line.State = StateM
		line.Version = m.Version
		line.LastUse = now
		for i := 0; i < ms.stores; i++ {
			line.Version++
			c.core.StoreDone(m.Addr, now)
		}
		ms.stores = 0
		if ms.loads > 0 {
			c.l1.Fill(m.Addr, line.Version, now)
		} else {
			c.l1.Update(m.Addr, line.Version)
		}
		c.completeLoads(ms, now)
		if ms.recallPending {
			// A recall overtook this DataM: return the written data to the
			// directory and invalidate (use-once ownership).
			c.l1.Invalidate(m.Addr)
			v := line.Version
			line.State = StateI
			c.send(&coherence.Msg{Type: coherence.InvAckData, Addr: m.Addr, Requester: c.id,
				Version: v, Epoch: ms.recallEpoch}, noc.OneDest(c.home(m.Addr)), stats.UnitLLC)
		}
		c.freeMSHR(m.Addr)
	default:
		if c.lossy {
			return // duplicate DataM; the first already installed the line
		}
		panic(fmt.Sprintf("L2 %d: DataM for %#x in %v", c.id, m.Addr, line.State))
	}
}

// deferRecall records a recall invalidation that arrived before the DataM
// the MSHR is waiting for.
func (c *L2) deferRecall(m *coherence.Msg) {
	ms := c.mshr[m.Addr]
	if ms == nil {
		panic(fmt.Sprintf("L2 %d: recall deferral for %#x without MSHR", c.id, m.Addr))
	}
	ms.recallPending = true
	ms.recallEpoch = m.Epoch
}

func (c *L2) handleInv(m *coherence.Msg, now sim.Cycle) {
	ack := func(t coherence.MsgType, version uint64) {
		c.send(&coherence.Msg{Type: t, Addr: m.Addr, Requester: c.id,
			Version: version, Epoch: m.Epoch}, noc.OneDest(c.home(m.Addr)), stats.UnitLLC)
	}
	line := c.arr.Lookup(m.Addr)
	if line == nil {
		// Silently evicted earlier, or the writeback raced with the
		// invalidation: the PutM already carries the data.
		if e, ok := c.wb[m.Addr]; ok {
			e.invalidated = true
		}
		ack(coherence.InvAck, 0)
		return
	}
	switch line.State {
	case StateS:
		c.classifyEvict(line)
		c.l1.Invalidate(m.Addr)
		line.State = StateI
		ack(coherence.InvAck, 0)
	case StateM:
		c.l1.Invalidate(m.Addr)
		v := line.Version
		line.State = StateI
		ack(coherence.InvAckData, v)
	case StateSMD:
		if m.Recall {
			// The directory granted us ownership and now wants the line
			// back; the DataM is still in flight. Defer: use the data
			// once it arrives, then return it (handleDataM).
			c.deferRecall(m)
			return
		}
		// Another writer won; our upgrade becomes a full write miss.
		c.l1.Invalidate(m.Addr)
		line.State = StateIMD
		ack(coherence.InvAck, 0)
	case StateIMD:
		if m.Recall {
			c.deferRecall(m)
			return
		}
		// Not a sharer; acknowledge defensively.
		ack(coherence.InvAck, 0)
	case StateISD:
		line.State = StateISDI
		ack(coherence.InvAck, 0)
	default:
		// ISDI: not a sharer; acknowledge defensively.
		ack(coherence.InvAck, 0)
	}
}

func (c *L2) handlePush(m *coherence.Msg, now sim.Cycle) {
	if c.cfg.Scheme.Protocol == config.ProtoPushAck {
		c.send(&coherence.Msg{Type: coherence.PushAck, Addr: m.Addr, Requester: c.id},
			noc.OneDest(c.home(m.Addr)), stats.UnitLLC)
	}
	demand := m.Requester == c.id
	if !demand {
		// Only speculative copies train the pause knob and the Fig 12
		// breakdown; the copy embedded for the demand requester is its
		// ordinary response.
		c.knob.onPush()
	}
	outcome, resolved := c.acceptPush(m, now, !demand)
	if demand {
		return
	}
	if resolved {
		c.st.Cache.PushOutcomes[outcome]++
	}
	// Installed pushes are classified later: Miss-to-Hit on first access
	// (touchPushed) or Unused at eviction (classifyEvict).
}

// acceptPush applies the §III-B push handling rules. It returns the Fig 12
// outcome category when it is already known (drops and Early-Resp);
// resolved=false means the line was installed speculatively and will be
// classified on first access or eviction.
func (c *L2) acceptPush(m *coherence.Msg, now sim.Cycle, speculative bool) (stats.PushOutcome, bool) {
	if _, busy := c.wb[m.Addr]; busy {
		return stats.PushCoherenceDrop, true
	}
	line := c.arr.Lookup(m.Addr)
	if line != nil {
		switch line.State {
		case StateS, StateM:
			return stats.PushRedundancyDrop, true
		case StateIMD, StateSMD:
			// Conflicting write upgrade in flight.
			return stats.PushCoherenceDrop, true
		case StateISD, StateISDI:
			// Guaranteed acceptance: the push serves the outstanding read
			// miss (Early-Resp). In ISDI the push was serialized after the
			// invalidating write, so installing shared state is safe.
			ms := c.mshr[m.Addr]
			line.State = StateS
			line.Version = m.Version
			line.LastUse = now
			line.Pushed = speculative
			line.Accessed = true
			if speculative {
				c.knob.onUseful()
			}
			if ms.loads > 0 || ms.prefetchL1 {
				c.l1.Fill(m.Addr, m.Version, now)
			}
			c.completeLoads(ms, now)
			c.finishFill(line, ms, now)
			return stats.PushEarlyResp, true
		}
	}
	// Line absent: speculative install if the set has a clean, stable
	// victim. A push never displaces modified data — forcing a writeback
	// for speculative state would let mispredicted pushes trash a core's
	// store working set (the pollution Fig 12 is about).
	victim := c.arr.Victim(m.Addr, func(l *Line) bool { return l.State == StateS })
	if victim == nil {
		return stats.PushDeadlockDrop, true
	}
	c.evict(victim, now)
	c.arr.Install(victim, m.Addr, StateS, now)
	victim.Version = m.Version
	victim.Pushed = speculative
	if c.cfg.Scheme.PushFillL1 {
		// §VI multi-level extension: propagate the push one level up.
		c.l1.Fill(m.Addr, m.Version, now)
	}
	return 0, false
}

// ForEachLine exposes the L2 array to coherence checkers and tests.
func (c *L2) ForEachLine(f func(*Line)) { c.arr.ForEach(f) }

// ReadOutstanding reports whether a read transaction for the line is still
// waiting on data (IS_D or IS_D_I). The filter-soundness checker uses it:
// a filtered request whose issuer is no longer waiting was already served.
func (c *L2) ReadOutstanding(lineAddr uint64) bool {
	if line := c.arr.Lookup(lineAddr); line != nil {
		return line.State == StateISD || line.State == StateISDI
	}
	return false
}

// IncomingDataPending exposes the fill-queue snoop to the checker: a
// shared-data fill for the line is sitting in the input queue.
func (c *L2) IncomingDataPending(lineAddr uint64) bool { return c.incomingDataPending(lineAddr) }

// OutstandingTransactions reports whether any MSHR or writeback entry is
// open (quiescence checks).
func (c *L2) OutstandingTransactions() bool { return len(c.mshr) != 0 || len(c.wb) != 0 }

// Knob exposes pause-knob state for tests: (TPC, UPC, needPush).
func (c *L2) Knob() (uint32, uint32, bool) { return c.knob.tpc, c.knob.upc, c.knob.needPush() }

