// Package cache implements the simulated cache hierarchy: private L1 and L2
// caches, the shared sliced LLC with its embedded directory, the MSI
// coherence controllers with the paper's PushAck and OrdPush extensions, the
// LLC push-trigger machinery, and the dynamic pause/resume knobs.
package cache

import (
	"fmt"
	"math/bits"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
)

// State is a per-line coherence state. Private-cache lines use the I/S/M
// stable states plus transients; LLC lines use the L-prefixed states.
type State uint8

// Private cache line states.
const (
	// StateI: invalid / way free.
	StateI State = iota
	// StateS: shared, read-only, clean with respect to the LLC.
	StateS
	// StateM: modified, exclusive ownership.
	StateM
	// StateISD: GetS outstanding, waiting for data.
	StateISD
	// StateISDI: invalidated while ISD; arriving data is used once by the
	// waiting loads and then discarded.
	StateISDI
	// StateIMD: GetM outstanding from I, waiting for exclusive data.
	StateIMD
	// StateSMD: GetM outstanding from S (upgrade), S data still readable.
	StateSMD

	// LLC line states.

	// StateLV: valid at LLC, no private owner (sharers may exist).
	StateLV
	// StateLM: owned modified by one private cache; LLC data stale.
	StateLM
	// StateLP: shared-push outstanding (PushAck protocol's semi-blocking P
	// state): reads are served, writes stall until all PushAcks arrive.
	StateLP
	// StateLSInv: invalidation episode running for a pending write.
	StateLSInv
	// StateLMInv: recall episode running (owner asked to invalidate and
	// return data).
	StateLMInv
	// StateLFetch: memory fetch outstanding.
	StateLFetch
)

var stateNames = map[State]string{
	StateI: "I", StateS: "S", StateM: "M",
	StateISD: "IS_D", StateISDI: "IS_D_I", StateIMD: "IM_D", StateSMD: "SM_D",
	StateLV: "LV", StateLM: "LM", StateLP: "LP",
	StateLSInv: "LS_Inv", StateLMInv: "LM_Inv", StateLFetch: "LFetch",
}

// String names the state.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Transient reports whether the state is a blocking transient; pushes may
// not evict transient lines (deadlock avoidance, §III-B).
func (s State) Transient() bool {
	switch s {
	case StateISD, StateISDI, StateIMD, StateSMD,
		StateLSInv, StateLMInv, StateLFetch, StateLP:
		return true
	}
	return false
}

// Line is one cache line's tag, state, and metadata.
type Line struct {
	// Tag is the full line address (64-byte aligned); valid when State != I.
	Tag uint64
	// State is the coherence state.
	State State
	// Version is the line's write serial number (the simulated data value).
	Version uint64
	// Dirty, at the LLC, marks data newer than memory.
	Dirty bool
	// Pushed/Accessed implement the pause-knob usefulness tracking: Pushed
	// is set when a push installs the line, Accessed on its first use.
	Pushed, Accessed bool
	// LastUse drives LRU replacement.
	LastUse sim.Cycle

	// LLC directory fields.

	// Sharers is the directory's sharer bit vector. Silent S-state
	// evictions make it a conservative superset of true holders, which is
	// exactly the property push speculation exploits.
	Sharers noc.DestSet
	// Owner is the M-state owner when State == StateLM.
	Owner noc.NodeID
	// Epoch tags invalidation episodes so stale acknowledgments are
	// discarded.
	Epoch uint32
}

// Array is a set-associative cache structure.
type Array struct {
	sets     [][]Line
	setMask  uint64
	setShift uint
	ways     int
}

// NewArray builds an array with sizeBytes capacity, the given associativity,
// and 64-byte lines. The set count must come out a power of two.
func NewArray(sizeBytes, ways, lineSize int) *Array {
	return NewInterleavedArray(sizeBytes, ways, lineSize, 1)
}

// NewInterleavedArray builds an array for one slice of an address-
// interleaved cache: the log2(interleave) address bits that select the
// slice are skipped when computing the set index, so a slice uses all of
// its sets rather than the 1/interleave subset its stripe of addresses
// would otherwise map to.
func NewInterleavedArray(sizeBytes, ways, lineSize, interleave int) *Array {
	lines := sizeBytes / lineSize
	sets := lines / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two (size=%d ways=%d)", sets, sizeBytes, ways))
	}
	if interleave <= 0 || interleave&(interleave-1) != 0 {
		panic(fmt.Sprintf("cache: interleave %d not a power of two", interleave))
	}
	a := &Array{
		sets:     make([][]Line, sets),
		setMask:  uint64(sets - 1),
		setShift: uint(bits.TrailingZeros(uint(lineSize)) + bits.TrailingZeros(uint(interleave))),
		ways:     ways,
	}
	backing := make([]Line, sets*ways)
	for i := range a.sets {
		a.sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return a
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return len(a.sets) }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// set returns the set index for a line address.
func (a *Array) set(lineAddr uint64) int {
	return int((lineAddr >> a.setShift) & a.setMask)
}

// Lookup returns the line holding lineAddr, or nil.
func (a *Array) Lookup(lineAddr uint64) *Line {
	s := a.sets[a.set(lineAddr)]
	for i := range s {
		if s[i].State != StateI && s[i].Tag == lineAddr {
			return &s[i]
		}
	}
	return nil
}

// Victim returns the replacement candidate for lineAddr under the policy:
// a free way first, then the least-recently-used line for which allowed
// returns true. It returns nil when no way qualifies.
func (a *Array) Victim(lineAddr uint64, allowed func(*Line) bool) *Line {
	s := a.sets[a.set(lineAddr)]
	var best *Line
	for i := range s {
		l := &s[i]
		if l.State == StateI {
			return l
		}
		if !allowed(l) {
			continue
		}
		if best == nil || l.LastUse < best.LastUse {
			best = l
		}
	}
	return best
}

// SetBlocked reports whether every way of lineAddr's set fails the allowed
// predicate (the push deadlock-drop condition).
func (a *Array) SetBlocked(lineAddr uint64, allowed func(*Line) bool) bool {
	return a.Victim(lineAddr, allowed) == nil
}

// ForEach visits every non-invalid line.
func (a *Array) ForEach(f func(*Line)) {
	for i := range a.sets {
		for j := range a.sets[i] {
			if a.sets[i][j].State != StateI {
				f(&a.sets[i][j])
			}
		}
	}
}

// Install claims the given line struct for lineAddr, resetting metadata.
func (a *Array) Install(l *Line, lineAddr uint64, st State, now sim.Cycle) {
	*l = Line{Tag: lineAddr, State: st, LastUse: now}
}
