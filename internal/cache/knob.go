package cache

import "pushmulticast/internal/noc"

// pauseKnob is the per-L2 push pause mechanism (§III-D, Fig 8): two counters
// track received and useful pushes; when the useful ratio falls below
// 1/2^ratioShift after a monitoring period of tpcThreshold pushes, the L2
// clears the need_push bit in subsequent requests to ask the LLC to exclude
// it from pushing.
type pauseKnob struct {
	tpc, upc     uint32
	tpcThreshold uint32
	ratioShift   uint
	enabled      bool
}

// counterMax is the 10-bit counter capacity from Table I; on overflow both
// counters are halved, preserving the ratio.
const counterMax = 1 << 10

// onPush records a received push (installed or dropped).
func (k *pauseKnob) onPush() {
	if !k.enabled {
		return
	}
	k.tpc++
	if k.tpc >= counterMax {
		k.tpc >>= 1
		k.upc >>= 1
	}
}

// onUseful records a useful push: one that served an outstanding read miss
// or was accessed before eviction.
func (k *pauseKnob) onUseful() {
	if !k.enabled {
		return
	}
	k.upc++
}

// needPush computes the feedback bit carried in GetS requests. During the
// monitoring period (TPC below the threshold) pushing stays enabled; after
// it, pushing is requested only while UPC >= TPC >> ratioShift, the paper's
// shift-and-compare implementation of the ratio test.
func (k *pauseKnob) needPush() bool {
	if !k.enabled {
		return true
	}
	if k.tpc < k.tpcThreshold {
		return true
	}
	return k.upc >= k.tpc>>k.ratioShift
}

// reset clears both counters; triggered by the LLC's resume-phase reset flag
// (and by context switches, which the simulator does not model).
func (k *pauseKnob) reset() {
	k.tpc, k.upc = 0, 0
}

// resumeKnob is the per-LLC-slice push resume mechanism (§III-D, Fig 9): a
// Push Disabled Requester bit map plus a time-window counter alternating
// between a Disable-Accepting phase and a Resume phase.
type resumeKnob struct {
	pdr     noc.DestSet
	window  int
	counter int
	resume  bool // true during the Resume phase
	enabled bool
}

func newResumeKnob(window int, enabled bool) resumeKnob {
	return resumeKnob{window: window, counter: window, enabled: enabled}
}

// tick advances the time-window counter, toggling phases when it expires.
func (k *resumeKnob) tick() {
	if !k.enabled {
		return
	}
	k.counter--
	if k.counter <= 0 {
		k.resume = !k.resume
		k.counter = k.window
	}
}

// tickN advances the counter by n cycles at once, toggling phases exactly as
// n calls to tick would. The wake-driven LLC uses it to catch up after
// sleeping through idle cycles, keeping the phase sequence identical to a
// dense run's.
func (k *resumeKnob) tickN(n int) {
	if !k.enabled || n <= 0 {
		return
	}
	if n < k.counter {
		k.counter -= n
		return
	}
	n -= k.counter // cycles left after the first expiry
	toggles := 1 + n/k.window
	k.counter = k.window - n%k.window
	if toggles&1 == 1 {
		k.resume = !k.resume
	}
}

// onRequest applies a request's need_push feedback. During the
// Disable-Accepting phase the requester is added to or removed from the
// PDRMap according to the bit; during the Resume phase additions are
// blocked and the requester is removed.
func (k *resumeKnob) onRequest(req noc.NodeID, needPush bool) {
	if !k.enabled {
		return
	}
	if k.resume {
		k.pdr = k.pdr.Remove(req)
		return
	}
	if needPush {
		k.pdr = k.pdr.Remove(req)
	} else {
		k.pdr = k.pdr.Add(req)
	}
}

// resetFlagFor reports whether a unicast reply to req should carry the
// counter-reset flag (resume phase, previously disabled requester), and
// performs the PDRMap removal.
func (k *resumeKnob) resetFlagFor(req noc.NodeID) bool {
	if !k.enabled || !k.resume || !k.pdr.Has(req) {
		return false
	}
	k.pdr = k.pdr.Remove(req)
	return true
}

// pushDisabled reports whether req is currently excluded from pushes.
func (k *resumeKnob) pushDisabled(req noc.NodeID) bool {
	return k.enabled && k.pdr.Has(req)
}
