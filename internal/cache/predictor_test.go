package cache

import (
	"testing"

	"pushmulticast/internal/noc"
)

func TestPredictorRemembersMultiSharerLines(t *testing.T) {
	p := newSharerPredictor(4)
	p.remember(0x40, noc.OneDest(1)) // single sharer: not stored
	if p.Len() != 0 {
		t.Fatal("single-sharer line stored")
	}
	set := noc.OneDest(1).Add(5).Add(9)
	p.remember(0x80, set)
	got, ok := p.predict(0x80)
	if !ok || got != set {
		t.Fatalf("predict = %b,%v", got, ok)
	}
	// One-shot consumption.
	if _, ok := p.predict(0x80); ok {
		t.Fatal("prediction not consumed")
	}
}

func TestPredictorFIFOCapacity(t *testing.T) {
	p := newSharerPredictor(2)
	two := noc.OneDest(0).Add(1)
	p.remember(0x40, two)
	p.remember(0x80, two)
	p.remember(0xc0, two) // evicts 0x40
	if _, ok := p.predict(0x40); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := p.predict(0x80); !ok {
		t.Fatal("second entry lost")
	}
	if _, ok := p.predict(0xc0); !ok {
		t.Fatal("newest entry lost")
	}
}

func TestPredictorUpdateInPlace(t *testing.T) {
	p := newSharerPredictor(2)
	p.remember(0x40, noc.OneDest(0).Add(1))
	p.remember(0x40, noc.OneDest(2).Add(3))
	got, _ := p.predict(0x40)
	if got != noc.OneDest(2).Add(3) {
		t.Fatalf("entry not updated: %b", got)
	}
	if p.Len() != 0 {
		t.Fatal("duplicate entries created")
	}
}
