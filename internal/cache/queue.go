package cache

import (
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// delayQueue models a controller's input pipeline: packets become visible to
// the controller a fixed latency after network delivery, in FIFO order.
type delayQueue struct {
	items   []delayed
	latency sim.Cycle
}

type delayed struct {
	pkt     *noc.Packet
	readyAt sim.Cycle
}

func (q *delayQueue) push(pkt *noc.Packet, now sim.Cycle) {
	q.items = append(q.items, delayed{pkt, now + q.latency})
}

// pushFront re-enqueues a packet at the head for immediate reprocessing
// (stall-and-wait wakeups).
func (q *delayQueue) pushFront(pkt *noc.Packet, at sim.Cycle) {
	q.items = append([]delayed{{pkt, at}}, q.items...)
}

// pop returns the head packet if it has matured, else nil.
func (q *delayQueue) pop(now sim.Cycle) *noc.Packet {
	if len(q.items) == 0 || q.items[0].readyAt > now {
		return nil
	}
	p := q.items[0].pkt
	q.items = q.items[1:]
	return p
}

// peek returns the head packet if matured without removing it.
func (q *delayQueue) peek(now sim.Cycle) *noc.Packet {
	if len(q.items) == 0 || q.items[0].readyAt > now {
		return nil
	}
	return q.items[0].pkt
}

func (q *delayQueue) empty() bool { return len(q.items) == 0 }

// removeIf deletes queued packets matching the predicate and returns them
// (LLC request coalescing scans its input queue for same-line reads).
func (q *delayQueue) removeIf(match func(*noc.Packet) bool) []*noc.Packet {
	var out []*noc.Packet
	kept := q.items[:0]
	for _, d := range q.items {
		if match(d.pkt) {
			out = append(out, d.pkt)
		} else {
			kept = append(kept, d)
		}
	}
	q.items = kept
	return out
}

// outbox buffers outgoing packets until the NI accepts them, so controllers
// never block mid-transition on injection backpressure.
type outbox struct {
	ni   *noc.NI
	unit stats.Unit
	pkts []*noc.Packet
}

func (o *outbox) send(pkt *noc.Packet) { o.pkts = append(o.pkts, pkt) }

// drain injects as many buffered packets as the NI accepts this cycle,
// preserving order per virtual network. An invalidation is additionally
// held behind any same-line push still waiting in the outbox: OrdPush's
// in-network ordering only protects packets that have entered the NoC, so
// the ordering must also be enforced here, before injection.
func (o *outbox) drain(now sim.Cycle) {
	kept := o.pkts[:0]
	blocked := [noc.NumVNets]bool{}
	heldPush := make(map[uint64]bool)
	for _, p := range o.pkts {
		if p.IsInv && heldPush[p.Addr] {
			blocked[p.VNet] = true
			kept = append(kept, p)
			continue
		}
		if blocked[p.VNet] || !o.ni.CanInject(o.unit, p.VNet) {
			blocked[p.VNet] = true
			if p.IsPush {
				heldPush[p.Addr] = true
			}
			kept = append(kept, p)
			continue
		}
		o.ni.Inject(p, now)
	}
	o.pkts = kept
}

// congested reports whether the outbox is backing up; controllers pause
// processing new work when it is.
func (o *outbox) congested() bool { return len(o.pkts) >= 8 }
