package cache

import (
	"pushmulticast/internal/coherence"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// delayQueue models a controller's input pipeline: packets become visible to
// the controller a fixed latency after network delivery, in FIFO order. The
// backing array is managed as a sliding window (head index plus compaction)
// so steady-state operation never reallocates.
type delayQueue struct {
	items   []delayed
	head    int // items[head:] are live
	latency sim.Cycle
}

type delayed struct {
	pkt     *noc.Packet
	readyAt sim.Cycle
}

// push enqueues a packet and returns the cycle it becomes visible.
func (q *delayQueue) push(pkt *noc.Packet, now sim.Cycle) sim.Cycle {
	if q.head > 0 {
		if q.head == len(q.items) {
			q.items = q.items[:0]
			q.head = 0
		} else if q.head >= 16 && q.head*2 >= len(q.items) {
			n := copy(q.items, q.items[q.head:])
			for i := n; i < len(q.items); i++ {
				q.items[i] = delayed{}
			}
			q.items = q.items[:n]
			q.head = 0
		}
	}
	at := now + q.latency
	q.items = append(q.items, delayed{pkt, at})
	return at
}

// pushBack re-enqueues a packet at the tail with an explicit ready cycle
// (retry backoff). The entry's readyAt may be later than entries pushed
// afterwards; the queue is head-blocking, so FIFO order still holds.
func (q *delayQueue) pushBack(pkt *noc.Packet, at sim.Cycle) {
	q.items = append(q.items, delayed{pkt, at})
}

// pushFront re-enqueues a packet at the head for immediate reprocessing
// (stall-and-wait wakeups).
func (q *delayQueue) pushFront(pkt *noc.Packet, at sim.Cycle) {
	if q.head > 0 {
		q.head--
		q.items[q.head] = delayed{pkt, at}
		return
	}
	q.items = append(q.items, delayed{})
	copy(q.items[1:], q.items)
	q.items[0] = delayed{pkt, at}
}

// pop returns the head packet if it has matured, else nil.
func (q *delayQueue) pop(now sim.Cycle) *noc.Packet {
	if q.head == len(q.items) || q.items[q.head].readyAt > now {
		return nil
	}
	p := q.items[q.head].pkt
	q.items[q.head] = delayed{}
	q.head++
	return p
}

// peek returns the head packet if matured without removing it.
func (q *delayQueue) peek(now sim.Cycle) *noc.Packet {
	if q.head == len(q.items) || q.items[q.head].readyAt > now {
		return nil
	}
	return q.items[q.head].pkt
}

// nextReady returns the cycle at which the head entry matures. The queue is
// head-blocking (later entries cannot be processed first), so this is the
// earliest cycle the controller can make progress on queued input.
func (q *delayQueue) nextReady() (sim.Cycle, bool) {
	if q.head == len(q.items) {
		return 0, false
	}
	return q.items[q.head].readyAt, true
}

func (q *delayQueue) empty() bool { return q.head == len(q.items) }

// live returns the live entries in FIFO order (callers iterating the queue
// must not index items directly: entries before head are dead).
func (q *delayQueue) live() []delayed { return q.items[q.head:] }

// removeIf deletes queued packets matching the predicate and returns them
// (LLC request coalescing scans its input queue for same-line reads).
func (q *delayQueue) removeIf(match func(*noc.Packet) bool) []*noc.Packet {
	var out []*noc.Packet
	live := q.items[q.head:]
	kept := live[:0]
	for _, d := range live {
		if match(d.pkt) {
			out = append(out, d.pkt)
		} else {
			kept = append(kept, d)
		}
	}
	for i := len(kept); i < len(live); i++ {
		live[i] = delayed{}
	}
	q.items = q.items[:q.head+len(kept)]
	return out
}

// outbox buffers outgoing packets until the NI accepts them, so controllers
// never block mid-transition on injection backpressure.
type outbox struct {
	ni   *noc.NI
	unit stats.Unit
	// h, when set, is woken on every send: a sleeping controller with a
	// non-empty outbox must tick to retry injection.
	h    *sim.Handle
	pkts []*noc.Packet
}

func (o *outbox) send(pkt *noc.Packet) {
	o.pkts = append(o.pkts, pkt)
	if o.h != nil {
		o.h.Wake()
	}
}

// msgSlab is the block size of a payload-pool refill; see noc pktSlab for
// the sizing rationale.
const msgSlab = 64

// newMsg returns a protocol message drawn from the network's payload free
// list. A miss allocates a whole slab of messages in one allocation and
// pre-warms the tile's pool with the rest: newMsg was the largest single
// allocation site in the checker-off profile (~47% of allocs/op), and the
// pool only grows to the steady-state in-flight message population anyway.
func newMsg(ni *noc.NI) *coherence.Msg {
	if rp := ni.NewPayload(); rp != nil {
		return rp.(*coherence.Msg)
	}
	blk := make([]coherence.Msg, msgSlab)
	for i := range blk[1:] {
		ni.PutPayload(&blk[1+i])
	}
	return &blk[0]
}

// heldPush reports whether a same-line push is among the packets already held
// back this drain pass.
func heldPush(held []*noc.Packet, addr uint64) bool {
	for _, p := range held {
		if p.IsPush && p.Addr == addr {
			return true
		}
	}
	return false
}

// drain injects as many buffered packets as the NI accepts this cycle,
// preserving order per virtual network. An invalidation is additionally
// held behind any same-line push still waiting in the outbox: OrdPush's
// in-network ordering only protects packets that have entered the NoC, so
// the ordering must also be enforced here, before injection.
func (o *outbox) drain(now sim.Cycle) {
	kept := o.pkts[:0]
	blocked := [noc.NumVNets]bool{}
	for _, p := range o.pkts {
		if p.IsInv && heldPush(kept, p.Addr) {
			blocked[p.VNet] = true
			kept = append(kept, p)
			continue
		}
		if blocked[p.VNet] || !o.ni.Inject(p, now) {
			blocked[p.VNet] = true
			kept = append(kept, p)
			continue
		}
	}
	for i := len(kept); i < len(o.pkts); i++ {
		o.pkts[i] = nil
	}
	o.pkts = kept
}

// congested reports whether the outbox is backing up; controllers pause
// processing new work when it is.
func (o *outbox) congested() bool { return len(o.pkts) >= 8 }
