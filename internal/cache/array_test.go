package cache

import (
	"testing"

	"pushmulticast/internal/sim"
	"testing/quick"
)

func TestArrayGeometry(t *testing.T) {
	a := NewArray(256<<10, 16, 64)
	if a.Sets() != 256 || a.Ways() != 16 {
		t.Fatalf("geometry = %d sets x %d ways, want 256x16", a.Sets(), a.Ways())
	}
}

func TestArrayBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two set count")
		}
	}()
	NewArray(3*64*4, 4, 64) // 3 sets
}

func TestArrayLookupInstall(t *testing.T) {
	a := NewArray(4096, 4, 64) // 16 sets x 4 ways
	if a.Lookup(0x1000) != nil {
		t.Fatal("lookup on empty array should miss")
	}
	v := a.Victim(0x1000, func(*Line) bool { return true })
	if v == nil {
		t.Fatal("empty set must offer a victim")
	}
	a.Install(v, 0x1000, StateS, 5)
	got := a.Lookup(0x1000)
	if got == nil || got.State != StateS || got.Tag != 0x1000 || got.LastUse != 5 {
		t.Fatalf("installed line wrong: %+v", got)
	}
}

func TestArrayLRUVictim(t *testing.T) {
	a := NewArray(4*64, 4, 64) // 1 set x 4 ways
	for i := 0; i < 4; i++ {
		v := a.Victim(uint64(i*64), func(*Line) bool { return true })
		a.Install(v, uint64(i*64), StateS, sim.Cycle(10+5*i))
	}
	v := a.Victim(0x4000, func(*Line) bool { return true })
	if v.Tag != 0 {
		t.Fatalf("LRU victim should be line 0 (oldest), got %#x", v.Tag)
	}
}

func TestArrayVictimRespectsPredicate(t *testing.T) {
	a := NewArray(2*64, 2, 64) // 1 set x 2 ways
	for i := 0; i < 2; i++ {
		v := a.Victim(uint64(i*64), func(*Line) bool { return true })
		a.Install(v, uint64(i*64), StateISD, 0)
	}
	if v := a.Victim(0x4000, func(l *Line) bool { return !l.State.Transient() }); v != nil {
		t.Fatalf("all ways transient yet victim %+v offered", v)
	}
	if !a.SetBlocked(0x4000, func(l *Line) bool { return !l.State.Transient() }) {
		t.Fatal("SetBlocked must report a fully transient set")
	}
}

func TestInterleavedArraySpreadsSets(t *testing.T) {
	// A 16-way slice of a 16-slice cache: addresses striped by 16 lines
	// must cover all sets, not just set 0.
	a := NewInterleavedArray(64<<10, 16, 64, 16)
	seen := map[int]bool{}
	for i := 0; i < 1024; i++ {
		addr := uint64(i) * 16 * 64 // slice-0 stripe
		seen[a.set(addr)] = true
	}
	if len(seen) != a.Sets() {
		t.Fatalf("stripe covers %d/%d sets", len(seen), a.Sets())
	}
}

// Property: for any address sequence, Lookup never returns a line with a
// different tag, and Install/Lookup round-trips.
func TestArrayLookupConsistency(t *testing.T) {
	a := NewArray(64*64, 4, 64)
	f := func(addrs []uint16) bool {
		for _, raw := range addrs {
			addr := uint64(raw) * 64
			if l := a.Lookup(addr); l != nil {
				if l.Tag != addr {
					return false
				}
				continue
			}
			v := a.Victim(addr, func(*Line) bool { return true })
			if v == nil {
				return false
			}
			a.Install(v, addr, StateS, 0)
			if got := a.Lookup(addr); got == nil || got.Tag != addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStateStringsAndTransience(t *testing.T) {
	stable := []State{StateI, StateS, StateM, StateLV, StateLM}
	for _, s := range stable {
		if s.Transient() {
			t.Errorf("%v should be stable", s)
		}
	}
	transient := []State{StateISD, StateISDI, StateIMD, StateSMD, StateLSInv, StateLMInv, StateLFetch, StateLP}
	for _, s := range transient {
		if !s.Transient() {
			t.Errorf("%v should be transient", s)
		}
		if s.String() == "" {
			t.Errorf("%v has no name", s)
		}
	}
}

func TestArrayForEach(t *testing.T) {
	a := NewArray(8*64, 2, 64)
	for i := 0; i < 3; i++ {
		v := a.Victim(uint64(i*64), func(*Line) bool { return true })
		a.Install(v, uint64(i*64), StateS, 0)
	}
	n := 0
	a.ForEach(func(*Line) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d lines, want 3", n)
	}
}
