// Package snapshot implements the versioned binary container that the
// deterministic checkpoint/restore subsystem serializes simulator state
// into. The format is deliberately primitive — fixed-width little-endian
// integers, length-prefixed byte strings, and named section markers — so a
// snapshot is a pure function of the machine state it encodes: two runs in
// identical states produce byte-identical snapshots, which makes the
// snapshot's FNV-1a content hash a valid identity for run-memo keys.
//
// Layout:
//
//	magic "PMSNAP1\n"
//	u32   format version
//	str   strict config fingerprint  (exact-resume identity)
//	str   fork config fingerprint    (warm-start identity: tuning knobs wiped)
//	u64   snapshot cycle
//	...   sections (marker + payload), written by the subsystem codecs
//	u64   FNV-1a hash of everything before the trailer
//
// The header is readable without decoding any section (see ReadHeader), so
// version and fingerprint mismatches fail loudly before any state is
// touched. Section markers exist to catch encoder/decoder desync: a reader
// that drifts off by even one byte fails at the next section with the two
// section names in the error instead of silently mis-restoring state.
package snapshot

import (
	"errors"
	"fmt"
	"os"
)

// Magic identifies a snapshot file. The trailing newline makes an
// accidentally text-opened snapshot obviously binary.
const Magic = "PMSNAP1\n"

// Version is the current snapshot format version. Bump it on any change to
// a section's encoding; restore refuses other versions loudly.
const Version uint32 = 1

// ErrMismatch wraps every refusal to restore: wrong magic, wrong format
// version, or a config fingerprint that differs from the restoring machine.
// Callers test with errors.Is and exit nonzero; a mismatch is never worked
// around silently.
var ErrMismatch = errors.New("snapshot mismatch")

// ErrCorrupt wraps decode failures on a snapshot whose header was accepted:
// truncation, section desync, or a trailer hash that does not match the
// payload.
var ErrCorrupt = errors.New("snapshot corrupt")

// FNV-1a 64-bit, matching the trace package's history hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns the FNV-1a hash of the full snapshot byte string — the
// snapshot's content identity (run-memo keys, warm-start provenance).
func Hash(data []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Writer serializes primitives into a growing buffer. Writes are
// infallible; Finish appends the trailer and returns the snapshot bytes.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the header already emitted.
func NewWriter(strictFP, forkFP string, cycle uint64) *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, Magic...)
	w.U32(Version)
	w.String(strictFP)
	w.String(forkFP)
	w.U64(cycle)
	return w
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 writes an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Section writes a named section marker. The reader's matching Section call
// verifies the name, so any encoder/decoder drift surfaces at the next
// boundary with both names in the error.
func (w *Writer) Section(name string) {
	w.U32(0x5EC7_10A5)
	w.String(name)
}

// Len returns the number of bytes written so far (diagnostics).
func (w *Writer) Len() int { return len(w.buf) }

// Finish appends the FNV-1a trailer and returns the complete snapshot.
func (w *Writer) Finish() []byte {
	w.U64(Hash(w.buf[:len(w.buf)]))
	return w.buf
}

// Header is the decoded snapshot prelude.
type Header struct {
	Version  uint32
	StrictFP string
	ForkFP   string
	Cycle    uint64
}

// Reader decodes a snapshot produced by Writer. Errors are sticky: after
// the first failure every read returns zero values and Err reports the
// original cause, so codecs can decode straight-line and check once.
type Reader struct {
	data []byte
	pos  int
	hdr  Header
	err  error
}

// NewReader validates the magic, the format version, and the trailer hash,
// decodes the header, and positions the reader at the first section.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(Magic)+4 || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: not a snapshot (bad magic)", ErrMismatch)
	}
	if len(data) < len(Magic)+4+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	r := &Reader{data: data, pos: len(Magic)}
	r.hdr.Version = r.U32()
	if r.err == nil && r.hdr.Version != Version {
		return nil, fmt.Errorf("%w: snapshot format v%d, this build reads v%d",
			ErrMismatch, r.hdr.Version, Version)
	}
	var want uint64
	for i := 7; i >= 0; i-- {
		want = want<<8 | uint64(trailer[i])
	}
	if Hash(body) != want {
		return nil, fmt.Errorf("%w: trailer hash mismatch (truncated or altered)", ErrCorrupt)
	}
	r.hdr.StrictFP = r.String()
	r.hdr.ForkFP = r.String()
	r.hdr.Cycle = r.U64()
	if r.err != nil {
		return nil, r.err
	}
	return r, nil
}

// ReadHeader decodes only the header of a snapshot (no trailer validation),
// for cheap identity checks.
func ReadHeader(data []byte) (Header, error) {
	if len(data) < len(Magic)+4 || string(data[:len(Magic)]) != Magic {
		return Header{}, fmt.Errorf("%w: not a snapshot (bad magic)", ErrMismatch)
	}
	r := &Reader{data: data, pos: len(Magic)}
	var h Header
	h.Version = r.U32()
	h.StrictFP = r.String()
	h.ForkFP = r.String()
	h.Cycle = r.U64()
	if r.err != nil {
		return Header{}, r.err
	}
	return h, nil
}

// Header returns the decoded snapshot prelude.
func (r *Reader) Header() Header { return r.hdr }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), r.pos)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	// Never read into the 8-byte trailer.
	if r.pos+n > len(r.data)-8 {
		r.fail("truncated read of %d bytes", n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Section verifies the next section marker carries the expected name.
func (r *Reader) Section(name string) {
	if m := r.U32(); r.err == nil && m != 0x5EC7_10A5 {
		r.fail("expected section marker for %q, found %#x", name, m)
		return
	}
	if got := r.String(); r.err == nil && got != name {
		r.fail("section desync: expected %q, found %q", name, got)
	}
}

// WriteFile writes a snapshot to path (0644).
func WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a snapshot file.
func ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
