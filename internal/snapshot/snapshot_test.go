package snapshot

import (
	"errors"
	"strings"
	"testing"
)

// roundTrip builds a small snapshot exercising every primitive.
func roundTrip(t *testing.T) []byte {
	t.Helper()
	w := NewWriter("strict-fp", "fork-fp", 12345)
	w.Section("alpha")
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 | 42)
	w.I64(-99)
	w.Int(123456)
	w.String("payload")
	w.Section("omega")
	w.U64(1)
	return w.Finish()
}

func TestReaderRoundTrip(t *testing.T) {
	data := roundTrip(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	if hdr.Version != Version || hdr.StrictFP != "strict-fp" || hdr.ForkFP != "fork-fp" || hdr.Cycle != 12345 {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	r.Section("alpha")
	if v := r.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool sequence mismatch")
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<63|42 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -99 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.Int(); v != 123456 {
		t.Errorf("Int = %d", v)
	}
	if v := r.String(); v != "payload" {
		t.Errorf("String = %q", v)
	}
	r.Section("omega")
	if v := r.U64(); v != 1 {
		t.Errorf("trailing U64 = %d", v)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	hdr2, err := ReadHeader(data)
	if err != nil || hdr2 != hdr {
		t.Fatalf("ReadHeader disagreed with NewReader: %+v vs %+v (err %v)", hdr2, hdr, err)
	}
}

// TestRefusals is the loud-failure table: every way a snapshot can be
// unusable must fail with the right sentinel and a single-line diagnostic,
// never a silent mis-restore.
func TestRefusals(t *testing.T) {
	good := roundTrip(t)
	mutate := func(f func([]byte) []byte) []byte {
		c := append([]byte(nil), good...)
		return f(c)
	}
	cases := []struct {
		name string
		data []byte
		want error
		msg  string
	}{
		{"empty", nil, ErrMismatch, "bad magic"},
		{"not a snapshot", []byte("PNG\x0d\x0a\x1a\x0a plus padding to pass the length check"), ErrMismatch, "bad magic"},
		{"future format version", mutate(func(b []byte) []byte {
			b[len(Magic)] = 99 // little-endian low byte of the version u32
			return b
		}), ErrMismatch, "format v99"},
		{"truncated", good[:len(good)-3], ErrCorrupt, "hash mismatch"},
		{"bit flip in payload", mutate(func(b []byte) []byte {
			b[len(b)-20] ^= 0x40
			return b
		}), ErrCorrupt, "hash mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(tc.data)
			if err == nil {
				t.Fatal("NewReader accepted an unusable snapshot")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v is not wrapped in %v", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnostic is not a single line: %q", err)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Fatalf("diagnostic %q does not mention %q", err, tc.msg)
			}
		})
	}
}

// TestSectionDesync pins the marker mechanism: a reader that drifts off the
// encoder's layout fails at the next section with both names in the error,
// instead of silently decoding garbage into component state.
func TestSectionDesync(t *testing.T) {
	data := roundTrip(t)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Section("alpha")
	r.U8() // leave the reader mid-section, misaligned for the next marker
	r.Section("omega")
	err = r.Err()
	if err == nil {
		t.Fatal("desynced Section call reported no error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("desync error %v is not ErrCorrupt", err)
	}
	r2, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r2.Section("beta") // wrong name at a real marker
	if err := r2.Err(); err == nil || !strings.Contains(err.Error(), "alpha") || !strings.Contains(err.Error(), "beta") {
		t.Fatalf("wrong-name error should carry both names, got %v", err)
	}
}

// TestDeterministicBytes pins the container's purity: the same write
// sequence yields byte-identical snapshots (and so equal content hashes) —
// the property run-memo keys rely on.
func TestDeterministicBytes(t *testing.T) {
	a, b := roundTrip(t), roundTrip(t)
	if string(a) != string(b) {
		t.Fatal("identical write sequences produced different bytes")
	}
	if Hash(a) != Hash(b) {
		t.Fatal("identical bytes hash differently")
	}
	w := NewWriter("strict-fp", "fork-fp", 12346) // one cycle later
	w.Section("alpha")
	if Hash(w.Finish()) == Hash(a) {
		t.Fatal("different snapshots share a content hash")
	}
}

// TestReaderStopsAtTrailer verifies reads can never consume the trailer as
// payload: a read past the last section fails instead of interpreting the
// content hash as data.
func TestReaderStopsAtTrailer(t *testing.T) {
	w := NewWriter("s", "f", 0)
	w.U8(1)
	data := w.Finish()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.U8(); v != 1 || r.Err() != nil {
		t.Fatalf("payload read failed: %d, %v", v, r.Err())
	}
	r.U64() // would overlap the trailer
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailer overlap not refused: %v", err)
	}
}
