package memctrl

import (
	"pushmulticast/internal/coherence"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
)

var codec coherence.Codec

// SaveState serializes the controller: queued requests, channel occupancy,
// maturing responses, undrained outbox, and the memory image (sorted by
// line address — map order must not reach the byte stream).
func (c *Ctrl) SaveState(w *snapshot.Writer) {
	w.Section("memctrl.ctrl")
	w.Int(len(c.inq))
	for _, p := range c.inq {
		c.ni.SavePacket(w, codec, p)
	}
	w.U64(uint64(c.busyUntil))
	w.Int(len(c.resps))
	for _, rp := range c.resps {
		w.U64(uint64(rp.at))
		coherence.SaveMsg(w, rp.msg)
		w.U32(uint32(rp.to))
	}
	w.Int(len(c.outbox))
	for _, p := range c.outbox {
		c.ni.SavePacket(w, codec, p)
	}
	addrs := make([]uint64, 0, len(c.versions))
	for a := range c.versions {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	w.Int(len(addrs))
	for _, a := range addrs {
		w.U64(a)
		w.U64(c.versions[a])
	}
}

// LoadState restores a controller saved by SaveState.
func (c *Ctrl) LoadState(r *snapshot.Reader) error {
	r.Section("memctrl.ctrl")
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		c.inq = append(c.inq, c.ni.LoadPacket(r, codec))
	}
	c.busyUntil = sim.Cycle(r.U64())
	nr := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nr; i++ {
		at := sim.Cycle(r.U64())
		msg := coherence.LoadMsg(r)
		c.resps = append(c.resps, pendingResp{at: at, msg: msg, to: noc.NodeID(r.U32())})
	}
	no := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < no; i++ {
		c.outbox = append(c.outbox, c.ni.LoadPacket(r, codec))
	}
	nv := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nv; i++ {
		a := r.U64()
		c.versions[a] = r.U64()
	}
	return r.Err()
}

func sortAddrs(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
