// Package memctrl models the off-chip memory controllers: four controllers
// at the mesh corners sharing the DDR3-1600 bandwidth from Table I. Each
// controller serializes line transfers at a fixed occupancy per line and
// adds a fixed access latency, approximating a bandwidth-limited DRAM
// channel without modeling banks or row buffers (the paper's bottleneck is
// the NoC and LLC, not DRAM microarchitecture).
package memctrl

import (
	"fmt"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/trace"
)

// pendingResp is a read response waiting out the access latency.
type pendingResp struct {
	at  sim.Cycle
	msg *coherence.Msg
	to  noc.NodeID
}

// Ctrl is one memory controller endpoint.
type Ctrl struct {
	node noc.NodeID
	cfg  *config.System
	eng  *sim.Engine
	st   *stats.All
	ni   *noc.NI

	h         *sim.Handle
	inq       []*noc.Packet
	busyUntil sim.Cycle
	resps     []pendingResp
	outbox    []*noc.Packet
	// versions holds the memory image: the last written version per line
	// (zero for never-written lines).
	versions map[uint64]uint64
	// tr is this controller's trace shard (nil when tracing is off);
	// written only from the controller's own tick, on its tile's lane.
	tr *trace.Shard
}

// New builds a controller at the given tile and attaches it to the network.
func New(node noc.NodeID, cfg *config.System, net *noc.Network, eng *sim.Engine, st *stats.All) *Ctrl {
	c := &Ctrl{
		node:     node,
		cfg:      cfg,
		eng:      eng,
		st:       st,
		ni:       net.NI(node),
		versions: make(map[uint64]uint64),
	}
	net.Attach(node, stats.UnitMem, c)
	c.h = eng.Register(c)
	return c
}

// Receive implements noc.Endpoint.
// Handle returns the controller's scheduling handle (for lane assignment).
func (c *Ctrl) Handle() *sim.Handle { return c.h }

func (c *Ctrl) Receive(pkt *noc.Packet, now sim.Cycle) {
	c.inq = append(c.inq, pkt)
	c.h.Wake()
}

// Tick serves at most one new transaction per bandwidth slot and releases
// matured read responses.
func (c *Ctrl) Tick(now sim.Cycle) {
	// Release matured responses.
	kept := c.resps[:0]
	for _, r := range c.resps {
		if r.at > now {
			kept = append(kept, r)
			continue
		}
		p := c.ni.NewPacket()
		r.msg.FillPacket(p, c.cfg.NoC, stats.UnitMem, stats.UnitLLC, noc.OneDest(r.to))
		c.outbox = append(c.outbox, p)
	}
	c.resps = kept

	// Start the next transaction when the channel frees up.
	if len(c.inq) > 0 && now >= c.busyUntil {
		pkt := c.inq[0]
		copy(c.inq, c.inq[1:])
		c.inq[len(c.inq)-1] = nil
		c.inq = c.inq[:len(c.inq)-1]
		c.eng.Progress()
		c.busyUntil = now + sim.Cycle(c.cfg.MemCyclesPerLine)
		m := pkt.Payload.(*coherence.Msg)
		switch m.Type {
		case coherence.MemRead:
			c.st.Cache.MemReads++
			c.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KMemRead, Node: int32(c.node),
				Addr: m.Addr, ID: pkt.ID, A: int32(m.Requester)})
			rm := c.newMsg()
			*rm = coherence.Msg{Type: coherence.MemData, Addr: m.Addr,
				Requester: m.Requester, Version: c.versions[m.Addr]}
			c.resps = append(c.resps, pendingResp{
				at:  now + sim.Cycle(c.cfg.MemLatency),
				msg: rm,
				to:  pkt.Src,
			})
		case coherence.MemWrite:
			c.st.Cache.MemWrites++
			c.tr.Emit(trace.Event{Cycle: uint64(now), Kind: trace.KMemWrite, Node: int32(c.node),
				Addr: m.Addr, ID: pkt.ID, A: int32(m.Requester)})
			c.versions[m.Addr] = m.Version
		default:
			panic(fmt.Sprintf("memctrl %d: unexpected message %v", c.node, m))
		}
		// The request packet's payload has been copied into the response (or
		// applied to the memory image); the packet itself is dead.
		c.ni.Recycle(pkt)
	}

	// Drain outgoing responses.
	keptOut := c.outbox[:0]
	for _, p := range c.outbox {
		if !c.ni.Inject(p, now) {
			keptOut = append(keptOut, p)
			continue
		}
		c.eng.Progress()
	}
	for i := len(keptOut); i < len(c.outbox); i++ {
		c.outbox[i] = nil
	}
	c.outbox = keptOut
	c.reschedule(now)
}

// reschedule sleeps the controller until its next deadline: the channel
// freeing up (queued requests) or a response maturing. A non-empty outbox
// keeps it awake to retry injection every cycle; new requests wake it via
// Receive.
func (c *Ctrl) reschedule(now sim.Cycle) {
	if len(c.outbox) != 0 {
		return
	}
	next := sim.NeverWake
	if len(c.inq) > 0 && c.busyUntil < next {
		next = c.busyUntil
	}
	for _, r := range c.resps {
		if r.at < next {
			next = r.at
		}
	}
	if next == sim.NeverWake {
		c.h.Sleep()
		return
	}
	c.h.SleepUntil(next)
}

// newMsg returns a protocol message drawn from the network's payload free
// list, falling back to a fresh allocation while the list warms up.
func (c *Ctrl) newMsg() *coherence.Msg {
	if rp := c.ni.NewPayload(); rp != nil {
		return rp.(*coherence.Msg)
	}
	return &coherence.Msg{}
}

// SetTraceShard installs the controller's trace shard.
func (c *Ctrl) SetTraceShard(tr *trace.Shard) { c.tr = tr }

// Version exposes the memory image for checkers.
func (c *Ctrl) Version(lineAddr uint64) uint64 { return c.versions[lineAddr] }

// Idle reports whether the controller has no queued or in-flight work.
func (c *Ctrl) Idle() bool {
	return len(c.inq) == 0 && len(c.resps) == 0 && len(c.outbox) == 0
}
