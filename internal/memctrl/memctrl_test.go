package memctrl

import (
	"testing"

	"pushmulticast/internal/coherence"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
)

// sink collects packets delivered to an LLC endpoint.
type sink struct{ got []*noc.Packet }

func (s *sink) Receive(p *noc.Packet, now sim.Cycle) { s.got = append(s.got, p) }

func rigCtrl(t *testing.T) (*Ctrl, *sim.Engine, *noc.Network, *sink) {
	t.Helper()
	cfg := config.Default16()
	st := stats.New()
	eng := sim.NewEngine(100_000, 10_000_000)
	net, err := noc.New(cfg.NoC, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	mc := New(0, &cfg, net, eng, st)
	llc := &sink{}
	net.Attach(5, stats.UnitLLC, llc)
	return mc, eng, net, llc
}

func sendMem(net *noc.Network, eng *sim.Engine, m *coherence.Msg, from noc.NodeID) {
	cfg := config.Default16()
	pkt := m.Packet(cfg.NoC, stats.UnitLLC, stats.UnitMem, noc.OneDest(0))
	net.NI(from).Inject(pkt, eng.Now())
}

func TestMemReadReturnsData(t *testing.T) {
	mc, eng, net, llc := rigCtrl(t)
	sendMem(net, eng, &coherence.Msg{Type: coherence.MemRead, Addr: 0x1000, Requester: 5}, 5)
	for i := 0; i < 1000 && len(llc.got) == 0; i++ {
		eng.Step()
	}
	if len(llc.got) != 1 {
		t.Fatal("no MemData received")
	}
	m := llc.got[0].Payload.(*coherence.Msg)
	if m.Type != coherence.MemData || m.Addr != 0x1000 || m.Version != 0 {
		t.Fatalf("wrong response: %v", m)
	}
	if !mc.Idle() {
		t.Error("controller not idle after completing")
	}
}

func TestMemWriteThenReadRoundTrips(t *testing.T) {
	mc, eng, net, llc := rigCtrl(t)
	sendMem(net, eng, &coherence.Msg{Type: coherence.MemWrite, Addr: 0x2000, Version: 42}, 5)
	for i := 0; i < 400; i++ {
		eng.Step()
	}
	if mc.Version(0x2000) != 42 {
		t.Fatalf("memory image version = %d, want 42", mc.Version(0x2000))
	}
	sendMem(net, eng, &coherence.Msg{Type: coherence.MemRead, Addr: 0x2000, Requester: 5}, 5)
	for i := 0; i < 1000 && len(llc.got) == 0; i++ {
		eng.Step()
	}
	if m := llc.got[0].Payload.(*coherence.Msg); m.Version != 42 {
		t.Fatalf("read-after-write version = %d, want 42", m.Version)
	}
}

func TestMemBandwidthSerializes(t *testing.T) {
	_, eng, net, llc := rigCtrl(t)
	for i := 0; i < 4; i++ {
		sendMem(net, eng, &coherence.Msg{Type: coherence.MemRead,
			Addr: uint64(0x1000 + i*64), Requester: 5}, 5)
	}
	var first, last sim.Cycle
	for i := 0; i < 5000 && len(llc.got) < 4; i++ {
		if len(llc.got) == 1 && first == 0 {
			first = eng.Now()
		}
		eng.Step()
	}
	if len(llc.got) != 4 {
		t.Fatal("not all reads returned")
	}
	last = eng.Now()
	cfg := config.Default16()
	// Three additional line occupancies must separate first and last.
	if int(last-first) < 3*cfg.MemCyclesPerLine-5 {
		t.Errorf("responses %d..%d too close for bandwidth limit", first, last)
	}
}

func TestMemLatencyApplied(t *testing.T) {
	_, eng, net, llc := rigCtrl(t)
	start := eng.Now()
	sendMem(net, eng, &coherence.Msg{Type: coherence.MemRead, Addr: 0x40, Requester: 5}, 5)
	for i := 0; i < 2000 && len(llc.got) == 0; i++ {
		eng.Step()
	}
	cfg := config.Default16()
	if int(eng.Now()-start) < cfg.MemLatency {
		t.Errorf("response after %d cycles, below DRAM latency %d", eng.Now()-start, cfg.MemLatency)
	}
}
