// Package check implements the runtime coherence-invariant checker: a
// monitor component that registers on the simulation engine *after* every
// other component, drains the structured event trace every cycle it is
// woken, and periodically sweeps the machine's global state for protocol
// invariant violations.
//
// The monitor validates two classes of property:
//
//   - Event-driven invariants, checked as trace events stream past: filter
//     soundness (a filter bank or home slice never squashes a GetS whose
//     answer is not already guaranteed in flight) and OrdPush ordering (an
//     invalidation never overtakes an earlier push to the same line from
//     the same source — the property the ordered-push protocol exists to
//     provide).
//   - Structural invariants, swept every CheckEvery cycles over a global
//     snapshot: SWMR and data-value coherence (delegated to the core
//     package's checker via a callback, avoiding an import cycle), the
//     directory sharers-superset property, L1 ⊆ L2 inclusion, and per-VC
//     credit/occupancy conservation in every router.
//
// The first violation is sticky: Err() reports it with the cycle it was
// detected, and the run loop in core aborts and dumps the trace tail.
package check

import (
	"errors"
	"fmt"

	"pushmulticast/internal/cache"
	"pushmulticast/internal/config"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/trace"
)

// ErrViolation wraps every invariant violation the monitor detects.
var ErrViolation = errors.New("invariant checker violation")

// DefaultCheckEvery is the structural sweep period when the config leaves
// CheckEvery at zero.
const DefaultCheckEvery = 64

// pktTrack follows one multicast packet (push or invalidation) from
// injection until every replica has been delivered.
type pktTrack struct {
	addr uint64
	src  int32
	seq  uint64      // per-source injection serial
	left noc.DestSet // destinations not yet delivered
}

// Monitor is the invariant checker. It implements sim.Ticker and must be
// registered last so that, within any cycle, it ticks after every emitter
// — this is what makes the trace drain order deterministic across the
// serial, dense, and parallel kernels.
type Monitor struct {
	cfg       *config.System
	net       *noc.Network
	l2s       []*cache.L2
	llcs      []*cache.LLC
	coherence func() error // core's SWMR/data-value snapshot checker
	tr        *trace.Tracer

	h          *sim.Handle
	checkEvery sim.Cycle
	nextScan   sim.Cycle

	// Sticky first violation.
	err error

	// OrdPush ordering state: per-source injection serials and the set of
	// in-flight pushes and invalidations, keyed by packet ID (multicast
	// replicas share their parent's ID).
	ordered bool
	seq     []uint64
	pushes  map[uint64]*pktTrack
	invs    map[uint64]*pktTrack

	// Lossy-recovery state (armed when the fault plan schedules message
	// loss): every non-orphan KMsgDrop/KMsgCorrupt opens an obligation that
	// a KMsgRecover on the same (node, stream key) must close before the age
	// bound — the "every dropped message is eventually retransmitted or the
	// run aborts" invariant. lossSeq remembers the dropped packet's OrdPush
	// injection serial per stream key so a retransmission clone (which gets
	// a fresh packet ID and a fresh, artificially late serial) inherits the
	// original's place in the ordering; lossRef counts the nodes holding an
	// open obligation per key so lossSeq lives exactly as long as any does.
	lossy       bool
	pendingLoss map[lossKey]uint64
	lossRef     map[uint64]int
	lossSeq     map[uint64]uint64
	lossBound   uint64

	// scratch maps L2 tags to states during the inclusion sweep.
	scratch map[uint64]cache.State
}

// lossKey identifies one open loss obligation: the NI that discarded the
// message and the transport stream key it carried.
type lossKey struct {
	node int32
	key  uint64
}

// New builds a monitor. coherence is the core package's global snapshot
// checker (passed as a callback so check does not import core). tr must be
// the tracer every component's shard feeds.
func New(cfg *config.System, net *noc.Network, l2s []*cache.L2, llcs []*cache.LLC,
	coherence func() error, tr *trace.Tracer) *Monitor {
	m := &Monitor{
		cfg:       cfg,
		net:       net,
		l2s:       l2s,
		llcs:      llcs,
		coherence: coherence,
		tr:        tr,
		scratch:   make(map[uint64]cache.State),
	}
	m.checkEvery = sim.Cycle(cfg.CheckEvery)
	if m.checkEvery <= 0 {
		m.checkEvery = DefaultCheckEvery
	}
	if cfg.Check && cfg.Scheme.Push && cfg.Scheme.Protocol == config.ProtoOrdPush {
		m.ordered = true
		m.seq = make([]uint64, cfg.Tiles())
		m.pushes = make(map[uint64]*pktTrack)
		m.invs = make(map[uint64]*pktTrack)
	}
	if cfg.Check && cfg.Faults.Lossy() {
		m.lossy = true
		m.pendingLoss = make(map[lossKey]uint64)
		m.lossRef = make(map[uint64]int)
		m.lossSeq = make(map[uint64]uint64)
		// A drop must be healed within the transport's full retry budget
		// (with slack for queueing and the final in-flight hop); past that,
		// either the retransmissions are not happening or the recovery
		// bookkeeping lost the key — both are liveness bugs the abort path
		// should have caught first.
		t := cfg.NoC.WithTransportDefaults()
		m.lossBound = uint64(t.MaxRetries+4)*uint64(t.RetryTimeout) + 20_000
	}
	return m
}

// Register installs the monitor on the engine. Call it after every other
// component has been registered: the engine ticks components in
// registration order, so registering last guarantees the monitor drains
// the trace after all of a cycle's emissions. The handle carries no lane
// tag, so the parallel kernel runs it in the trailing serial segment.
func (m *Monitor) Register(eng *sim.Engine) {
	m.h = eng.Register(m)
	m.tr.SetHandle(m.h)
	if m.cfg.Check {
		m.nextScan = m.checkEvery
		m.h.SleepUntil(m.nextScan)
	} else {
		m.h.Sleep()
	}
}

// Err returns the first violation detected, or nil.
func (m *Monitor) Err() error { return m.err }

func (m *Monitor) fail(cycle uint64, format string, args ...any) {
	if m.err != nil {
		return
	}
	// Under fault injection the checker stays fully armed — a legal fault
	// plan must never violate an invariant — but a failure then means the
	// graceful-degradation contract broke, which is a different bug hunt
	// than a clean-run violation; annotate so the two are never confused.
	if m.cfg.Faults != nil && len(m.cfg.Faults.Faults) > 0 {
		m.err = fmt.Errorf("%w at cycle %d (fault injection active; degradation contract breached): %s",
			ErrViolation, cycle, fmt.Sprintf(format, args...))
		return
	}
	m.err = fmt.Errorf("%w at cycle %d: %s", ErrViolation, cycle, fmt.Sprintf(format, args...))
}

// Tick drains the trace (folding the cycle's events into the history hash
// and ring) and, on scan boundaries, sweeps the structural invariants.
func (m *Monitor) Tick(now sim.Cycle) {
	if m.cfg.Check && m.err == nil {
		m.tr.Drain(m.checkEvent)
	} else {
		m.tr.Drain(nil)
	}
	if !m.cfg.Check {
		m.h.Sleep() // emissions wake us; nothing periodic to do
		return
	}
	if now >= m.nextScan {
		if m.err == nil {
			m.scan(now)
		}
		m.nextScan = now + m.checkEvery
	}
	m.h.SleepUntil(m.nextScan)
}

// checkEvent validates the event-driven invariants on one trace record.
func (m *Monitor) checkEvent(e trace.Event) {
	if m.err != nil {
		return
	}
	switch e.Kind {
	case trace.KFilterHit, trace.KFilterStationary, trace.KFilterHome:
		m.checkFilterSoundness(e)
	case trace.KInject:
		if m.ordered {
			m.trackInject(e)
		}
	case trace.KDeliver:
		if m.ordered {
			m.trackDeliver(e)
		}
	case trace.KMsgDrop, trace.KMsgCorrupt:
		m.trackLoss(e)
	case trace.KMsgDup:
		if m.ordered {
			m.clearReplica(e, false)
		}
	case trace.KMsgRecover:
		m.trackRecover(e)
	case trace.KRetransmit:
		if m.ordered {
			m.inheritSerial(e)
		}
	}
}

// trackLoss opens (or refreshes) the recovery obligation for a discarded
// message and, in ordered mode, retires the lost replica from its packet's
// tracking entry — the retransmission clone, injected under a fresh ID,
// takes over from here.
func (m *Monitor) trackLoss(e trace.Event) {
	orphan := e.B&1 != 0
	if m.ordered {
		m.clearReplica(e, m.lossy && !orphan)
	}
	if !m.lossy || orphan {
		return // orphan drop: nothing will, or needs to, carry this key again
	}
	k := lossKey{node: e.Node, key: e.Aux.Scalar()}
	if _, open := m.pendingLoss[k]; !open {
		m.lossRef[e.Aux.Scalar()]++
	}
	m.pendingLoss[k] = e.Cycle
}

// trackRecover closes the obligation the re-arrival of a dropped stream key
// discharges.
func (m *Monitor) trackRecover(e trace.Event) {
	if !m.lossy {
		return
	}
	k := lossKey{node: e.Node, key: e.Aux.Scalar()}
	if _, open := m.pendingLoss[k]; !open {
		return
	}
	delete(m.pendingLoss, k)
	if m.lossRef[e.Aux.Scalar()]--; m.lossRef[e.Aux.Scalar()] <= 0 {
		delete(m.lossRef, e.Aux.Scalar())
		delete(m.lossSeq, e.Aux.Scalar())
	}
}

// clearReplica retires the replica a loss event names (the copy headed for
// e.Node under packet e.ID) from the ordered-mode tracking maps. For a
// suppressed duplicate the node already received the packet, so the clear
// is an idempotent no-op. recordSeq additionally remembers the packet's
// injection serial under its stream key, for the retransmission clone to
// inherit (see inheritSerial).
func (m *Monitor) clearReplica(e trace.Event, recordSeq bool) {
	at := noc.NodeID(e.Node)
	if p, ok := m.pushes[e.ID]; ok {
		if recordSeq {
			m.lossSeq[e.Aux.Scalar()] = p.seq
		}
		p.left = p.left.Remove(at)
		if p.left.Empty() {
			delete(m.pushes, e.ID)
		}
		return
	}
	if p, ok := m.invs[e.ID]; ok {
		if recordSeq {
			m.lossSeq[e.Aux.Scalar()] = p.seq
		}
		p.left = p.left.Remove(at)
		if p.left.Empty() {
			delete(m.invs, e.ID)
		}
	}
}

// inheritSerial rewrites a retransmission clone's injection serial to the
// original's: the clone was injected just now (fresh ID, late serial), but
// it logically occupies the dropped packet's slot in the OrdPush order, and
// judging it by its re-injection time would fabricate ordering violations.
func (m *Monitor) inheritSerial(e trace.Event) {
	seq, ok := m.lossSeq[e.Aux.Scalar()]
	if !ok {
		return
	}
	if p, tracked := m.pushes[e.ID]; tracked {
		p.seq = seq
		return
	}
	if p, tracked := m.invs[e.ID]; tracked {
		p.seq = seq
	}
}

// checkFilterSoundness asserts that squashing the requester's GetS was
// legal: the data it wants must already be headed its way (a covering push
// in flight in the mesh, a push queued at the home slice, or data already
// pending at its own L2), or the requester must no longer have a read
// outstanding for the line (its MSHR entry was satisfied or cancelled, so
// the squashed request was a stale duplicate). This is the liveness side
// of lazy filter de-registration: a stale entry that survives past its
// registration's usefulness must never eat a request that still needs an
// answer.
func (m *Monitor) checkFilterSoundness(e trace.Event) {
	req := noc.NodeID(e.A)
	if int(req) < 0 || int(req) >= len(m.l2s) {
		m.fail(e.Cycle, "filter event with bad requester: %s", e)
		return
	}
	l2 := m.l2s[req]
	if m.net.PushInFlight(e.Addr, req) {
		return
	}
	if l2.IncomingDataPending(e.Addr) {
		return
	}
	if e.Kind == trace.KFilterHome && m.llcs[e.Node].PushQueued(e.Addr, req) {
		return
	}
	if !l2.ReadOutstanding(e.Addr) {
		return
	}
	m.fail(e.Cycle, "unsound filter squash: requester %d still awaits line %#x with no covering push in flight (%s)",
		req, e.Addr, e)
}

// trackInject assigns the packet its per-source injection serial and
// starts tracking pushes and invalidations.
func (m *Monitor) trackInject(e trace.Event) {
	m.seq[e.Node]++
	switch {
	case e.B&trace.FlagPush != 0:
		m.pushes[e.ID] = &pktTrack{addr: e.Addr, src: e.Node, seq: m.seq[e.Node], left: noc.DestSet(e.Aux)}
	case e.B&trace.FlagInv != 0:
		m.invs[e.ID] = &pktTrack{addr: e.Addr, src: e.Node, seq: m.seq[e.Node], left: noc.DestSet(e.Aux)}
	}
}

// trackDeliver retires delivered replicas and asserts the OrdPush ordering
// invariant: an invalidation delivered at a tile must not leave behind an
// undelivered push to the same line, from the same source, injected
// earlier — if it does, the invalidation overtook the push and the stale
// data will be installed after the line was invalidated.
func (m *Monitor) trackDeliver(e trace.Event) {
	at := noc.NodeID(e.Node)
	switch {
	case e.B&trace.FlagPush != 0:
		if p, ok := m.pushes[e.ID]; ok {
			p.left = p.left.Remove(at)
			if p.left.Empty() {
				delete(m.pushes, e.ID)
			}
		}
	case e.B&trace.FlagInv != 0:
		inv, ok := m.invs[e.ID]
		if !ok {
			return // injected before tracking began; nothing to order against
		}
		for id, p := range m.pushes {
			if p.addr == inv.addr && p.src == inv.src && p.seq < inv.seq && p.left.Has(at) {
				m.fail(e.Cycle, "OrdPush ordering violated: inv (src %d seq %d) delivered at tile %d before push id %#x (seq %d) to line %#x",
					inv.src, inv.seq, at, id, p.seq, p.addr)
				return
			}
		}
		inv.left = inv.left.Remove(at)
		if inv.left.Empty() {
			delete(m.invs, e.ID)
		}
	}
}

// LossOutstanding reports the number of open loss-recovery obligations
// (dropped messages whose stream key has not re-arrived). Test hook.
func (m *Monitor) LossOutstanding() int { return len(m.pendingLoss) }

// scanLossAge asserts the recovery liveness invariant: no dropped message
// may stay unrecovered past the transport's full retry budget. The worst
// offender is picked by (age, node, key) so the failure message does not
// depend on map iteration order.
func (m *Monitor) scanLossAge(cyc uint64) {
	var worst lossKey
	var worstAt uint64
	found := false
	for k, at := range m.pendingLoss {
		if cyc-at <= m.lossBound {
			continue
		}
		if !found || at < worstAt ||
			(at == worstAt && (k.node < worst.node || (k.node == worst.node && k.key < worst.key))) {
			worst, worstAt, found = k, at, true
		}
	}
	if found {
		m.fail(cyc, "message loss never recovered: stream key %#x dropped at tile %d on cycle %d, still outstanding after %d cycles (bound %d)",
			worst.key, worst.node, worstAt, cyc-worstAt, m.lossBound)
	}
}

// scan sweeps the structural invariants over a global snapshot.
func (m *Monitor) scan(now sim.Cycle) {
	cyc := uint64(now)
	if m.lossy {
		m.scanLossAge(cyc)
		if m.err != nil {
			return
		}
	}
	if err := m.coherence(); err != nil {
		m.fail(cyc, "%v", err)
		return
	}
	if err := m.net.CheckConservation(now); err != nil {
		m.fail(cyc, "%v", err)
		return
	}
	m.scanSharersSuperset(cyc)
	if m.err == nil {
		m.scanInclusion(cyc)
	}
}

// scanSharersSuperset asserts that every private copy is visible to its
// home directory: for each L2 line in S, M, or SM_D, the home slice's
// conservative directory view (sharer vector ∪ owner ∪ in-flight episode
// state) contains that L2's tile. A line the directory has lost track of
// can never be invalidated or pushed to — the silent-sharer bug class.
func (m *Monitor) scanSharersSuperset(cyc uint64) {
	for _, l2 := range m.l2s {
		id := l2.ID()
		l2.ForEachLine(func(l *cache.Line) {
			if m.err != nil {
				return
			}
			switch l.State {
			case cache.StateS, cache.StateM, cache.StateSMD:
			default:
				return
			}
			home := m.cfg.HomeSlice(l.Tag)
			view, ok := m.llcs[home].DirectoryView(l.Tag)
			if !ok {
				m.fail(cyc, "line %#x cached %v at tile %d but absent from home slice %d",
					l.Tag, l.State, id, home)
				return
			}
			if !view.Has(id) {
				m.fail(cyc, "directory not a sharer superset: line %#x cached %v at tile %d, home %d view %v",
					l.Tag, l.State, id, home, view)
			}
		})
		if m.err != nil {
			return
		}
	}
}

// scanInclusion asserts L1 ⊆ L2 per tile: every valid L1 line must be
// backed by an L2 line in a state with readable or incoming data.
func (m *Monitor) scanInclusion(cyc uint64) {
	for i, l2 := range m.l2s {
		for k := range m.scratch {
			delete(m.scratch, k)
		}
		l2.ForEachLine(func(l *cache.Line) { m.scratch[l.Tag] = l.State })
		l2.L1().ForEach(func(l *cache.Line) {
			if m.err != nil {
				return
			}
			st, ok := m.scratch[l.Tag]
			if !ok {
				m.fail(cyc, "inclusion violated: line %#x valid in L1 of tile %d but absent from its L2", l.Tag, i)
				return
			}
			switch st {
			case cache.StateS, cache.StateM, cache.StateSMD:
			default:
				m.fail(cyc, "inclusion violated: line %#x valid in L1 of tile %d but L2 holds it in %v", l.Tag, i, st)
			}
		})
		if m.err != nil {
			return
		}
	}
}
