package check

import (
	"fmt"
	"sort"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/snapshot"
)

// SaveState serializes the monitor's sweep schedule and in-flight tracking
// state. A monitor with a sticky violation refuses to snapshot — the run is
// about to abort, and forking from a corrupted state would be meaningless.
// All maps are written sorted by key so identical states serialize to
// identical bytes.
func (m *Monitor) SaveState(w *snapshot.Writer) {
	if m.err != nil {
		panic("check: SaveState with a sticky violation")
	}
	w.Section("check.monitor")
	w.U64(uint64(m.nextScan))
	w.Bool(m.ordered)
	if m.ordered {
		w.Int(len(m.seq))
		for _, s := range m.seq {
			w.U64(s)
		}
		saveTracks(w, m.pushes)
		saveTracks(w, m.invs)
	}
	w.Bool(m.lossy)
	if m.lossy {
		lks := make([]lossKey, 0, len(m.pendingLoss))
		for k := range m.pendingLoss {
			lks = append(lks, k)
		}
		sort.Slice(lks, func(i, j int) bool {
			if lks[i].node != lks[j].node {
				return lks[i].node < lks[j].node
			}
			return lks[i].key < lks[j].key
		})
		w.Int(len(lks))
		for _, k := range lks {
			w.U32(uint32(k.node))
			w.U64(k.key)
			w.U64(m.pendingLoss[k])
		}
		saveSortedU64Map(w, len(m.lossRef), func(yield func(uint64)) {
			for k := range m.lossRef {
				yield(k)
			}
		}, func(k uint64) { w.Int(m.lossRef[k]) })
		saveSortedU64Map(w, len(m.lossSeq), func(yield func(uint64)) {
			for k := range m.lossSeq {
				yield(k)
			}
		}, func(k uint64) { w.U64(m.lossSeq[k]) })
	}
}

// LoadState restores a monitor saved by SaveState.
func (m *Monitor) LoadState(r *snapshot.Reader) error {
	r.Section("check.monitor")
	m.nextScan = sim.Cycle(r.U64())
	ordered := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if ordered != m.ordered {
		return fmt.Errorf("%w: OrdPush tracking differs (snapshot %v, build %v)",
			snapshot.ErrMismatch, ordered, m.ordered)
	}
	if m.ordered {
		n := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if n != len(m.seq) {
			return fmt.Errorf("%w: snapshot tracks %d injection serials, this build %d",
				snapshot.ErrMismatch, n, len(m.seq))
		}
		for i := range m.seq {
			m.seq[i] = r.U64()
		}
		if err := loadTracks(r, m.pushes); err != nil {
			return err
		}
		if err := loadTracks(r, m.invs); err != nil {
			return err
		}
	}
	lossy := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if lossy != m.lossy {
		return fmt.Errorf("%w: loss tracking differs (snapshot %v, build %v)",
			snapshot.ErrMismatch, lossy, m.lossy)
	}
	if m.lossy {
		np := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < np; i++ {
			node := int32(r.U32())
			key := r.U64()
			m.pendingLoss[lossKey{node: node, key: key}] = r.U64()
		}
		nr := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < nr; i++ {
			k := r.U64()
			m.lossRef[k] = r.Int()
		}
		ns := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		for i := 0; i < ns; i++ {
			k := r.U64()
			m.lossSeq[k] = r.U64()
		}
	}
	return r.Err()
}

func saveTracks(w *snapshot.Writer, tracks map[uint64]*pktTrack) {
	ids := make([]uint64, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		t := tracks[id]
		w.U64(id)
		w.U64(t.addr)
		w.U32(uint32(t.src))
		w.U64(t.seq)
		noc.SaveDests(w, t.left)
	}
}

func loadTracks(r *snapshot.Reader, tracks map[uint64]*pktTrack) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		id := r.U64()
		tracks[id] = &pktTrack{
			addr: r.U64(),
			src:  int32(r.U32()),
			seq:  r.U64(),
			left: noc.LoadDests(r),
		}
	}
	return r.Err()
}

func saveSortedU64Map(w *snapshot.Writer, n int, keys func(func(uint64)), val func(uint64)) {
	ks := make([]uint64, 0, n)
	keys(func(k uint64) { ks = append(ks, k) })
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	w.Int(len(ks))
	for _, k := range ks {
		w.U64(k)
		val(k)
	}
}
