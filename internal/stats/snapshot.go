package stats

import (
	"sort"

	"pushmulticast/internal/snapshot"
)

// SaveState serializes the primary stats bundle. It must only be called
// after per-lane shards have been merged (so the bundle holds every counter)
// and with GapLog empty — parallel runs drain the log each cycle, and a
// serialized bundle with a pending log would lose the deferral ordering.
// SharerGaps reservoirs are written sorted by key so identical states
// serialize to identical bytes.
func (a *All) SaveState(w *snapshot.Writer) {
	if len(a.GapLog) != 0 {
		panic("stats: SaveState with undrained GapLog")
	}
	w.Section("stats.all")
	w.Int(len(a.Net.LinkFlits))
	for _, v := range a.Net.LinkFlits {
		w.U64(v)
	}
	for _, v := range a.Net.TotalFlitsByClass {
		w.U64(v)
	}
	for u := range a.Net.InjectedFlits {
		for _, v := range a.Net.InjectedFlits[u] {
			w.U64(v)
		}
	}
	for u := range a.Net.EjectedFlits {
		for _, v := range a.Net.EjectedFlits[u] {
			w.U64(v)
		}
	}
	for u := range a.Net.InjectedPackets {
		for _, v := range a.Net.InjectedPackets[u] {
			w.U64(v)
		}
	}
	for u := range a.Net.EjectedPackets {
		for _, v := range a.Net.EjectedPackets[u] {
			w.U64(v)
		}
	}
	w.U64(a.Net.FilteredRequests)
	w.U64(a.Net.StalledInvCycles)
	w.U64(a.Net.MulticastReplicas)
	w.U64(a.Net.PacketLatencySum)
	w.U64(a.Net.PacketCount)
	w.U64(a.Net.InjRefused)
	w.U64(a.Net.FaultWindows)
	w.U64(a.Net.FaultJitterDelay)
	w.U64(a.Net.FaultFilterSuppressed)
	w.U64(a.Net.MsgDropped)
	w.U64(a.Net.Retransmits)
	w.U64(a.Net.DupSuppressed)
	w.U64(a.Net.CorruptDetected)

	w.U64(a.Cache.L1Accesses)
	w.U64(a.Cache.L1Misses)
	w.U64(a.Cache.L2Accesses)
	w.U64(a.Cache.L2Misses)
	w.U64(a.Cache.L2Evictions)
	w.U64(a.Cache.LLCAccesses)
	w.U64(a.Cache.LLCMisses)
	w.U64(a.Cache.LLCEvictions)
	for _, v := range a.Cache.PushOutcomes {
		w.U64(v)
	}
	w.U64(a.Cache.PushesTriggered)
	w.U64(a.Cache.PushDestinations)
	w.U64(a.Cache.PausedPushRequests)
	w.U64(a.Cache.CoalescedRequests)
	w.U64(a.Cache.MemReads)
	w.U64(a.Cache.MemWrites)
	w.U64(a.Cache.MSHRTimeouts)

	w.U64(a.Core.Instructions)
	w.U64(a.Core.Cycles)
	w.U64(a.Core.Loads)
	w.U64(a.Core.Stores)
	w.U64(a.Core.StallCycles)

	keys := make([]int, 0, len(a.SharerGaps))
	for k := range a.SharerGaps {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		r := a.SharerGaps[k]
		w.Int(k)
		w.U64(r.Seen)
		w.U64(r.rng)
		w.Int(len(r.Samples))
		for _, s := range r.Samples {
			w.U64(s)
		}
	}
}

// LoadState restores a bundle saved by SaveState into this (fresh) bundle.
func (a *All) LoadState(r *snapshot.Reader) error {
	r.Section("stats.all")
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if len(a.Net.LinkFlits) < n {
		a.Net.LinkFlits = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		a.Net.LinkFlits[i] = r.U64()
	}
	for i := range a.Net.TotalFlitsByClass {
		a.Net.TotalFlitsByClass[i] = r.U64()
	}
	for u := range a.Net.InjectedFlits {
		for c := range a.Net.InjectedFlits[u] {
			a.Net.InjectedFlits[u][c] = r.U64()
		}
	}
	for u := range a.Net.EjectedFlits {
		for c := range a.Net.EjectedFlits[u] {
			a.Net.EjectedFlits[u][c] = r.U64()
		}
	}
	for u := range a.Net.InjectedPackets {
		for c := range a.Net.InjectedPackets[u] {
			a.Net.InjectedPackets[u][c] = r.U64()
		}
	}
	for u := range a.Net.EjectedPackets {
		for c := range a.Net.EjectedPackets[u] {
			a.Net.EjectedPackets[u][c] = r.U64()
		}
	}
	a.Net.FilteredRequests = r.U64()
	a.Net.StalledInvCycles = r.U64()
	a.Net.MulticastReplicas = r.U64()
	a.Net.PacketLatencySum = r.U64()
	a.Net.PacketCount = r.U64()
	a.Net.InjRefused = r.U64()
	a.Net.FaultWindows = r.U64()
	a.Net.FaultJitterDelay = r.U64()
	a.Net.FaultFilterSuppressed = r.U64()
	a.Net.MsgDropped = r.U64()
	a.Net.Retransmits = r.U64()
	a.Net.DupSuppressed = r.U64()
	a.Net.CorruptDetected = r.U64()

	a.Cache.L1Accesses = r.U64()
	a.Cache.L1Misses = r.U64()
	a.Cache.L2Accesses = r.U64()
	a.Cache.L2Misses = r.U64()
	a.Cache.L2Evictions = r.U64()
	a.Cache.LLCAccesses = r.U64()
	a.Cache.LLCMisses = r.U64()
	a.Cache.LLCEvictions = r.U64()
	for i := range a.Cache.PushOutcomes {
		a.Cache.PushOutcomes[i] = r.U64()
	}
	a.Cache.PushesTriggered = r.U64()
	a.Cache.PushDestinations = r.U64()
	a.Cache.PausedPushRequests = r.U64()
	a.Cache.CoalescedRequests = r.U64()
	a.Cache.MemReads = r.U64()
	a.Cache.MemWrites = r.U64()
	a.Cache.MSHRTimeouts = r.U64()

	a.Core.Instructions = r.U64()
	a.Core.Cycles = r.U64()
	a.Core.Loads = r.U64()
	a.Core.Stores = r.U64()
	a.Core.StallCycles = r.U64()

	nres := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if a.SharerGaps == nil {
		a.SharerGaps = make(map[int]*GapReservoir, nres)
	}
	for i := 0; i < nres; i++ {
		k := r.Int()
		res := &GapReservoir{Seen: r.U64(), rng: r.U64()}
		ns := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		res.Samples = make([]uint64, ns)
		for j := range res.Samples {
			res.Samples[j] = r.U64()
		}
		a.SharerGaps[k] = res
	}
	return r.Err()
}
