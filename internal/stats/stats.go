// Package stats defines the measurement vocabulary shared by all simulator
// subsystems: traffic classes, network/link counters, cache counters, and the
// push-usage breakdown used to reproduce the paper's evaluation figures.
//
// Counters are plain integers with no synchronization. A bundle is only ever
// mutated by one goroutine at a time: the simulation thread in serial runs,
// or — in parallel runs — one lane's worker per shard, with shards merged
// into the primary bundle via Add after the run (and gap observations drained
// in lane order each cycle via DrainGapsInto).
package stats

// Class is the traffic category a packet is accounted under. The categories
// follow the paper's traffic breakdowns (Fig 3, Fig 13, Fig 15, Fig 16).
type Class uint8

// Traffic classes.
const (
	// ClassReadRequest covers GetS demand and prefetch read requests.
	ClassReadRequest Class = iota
	// ClassReadSharedData covers unicast data responses for lines in the
	// shared state.
	ClassReadSharedData
	// ClassPushData covers speculative push multicast data packets. For
	// figure reporting it is merged into the read-shared category, matching
	// the paper's classification of pushes as shared-data traffic.
	ClassPushData
	// ClassExclusiveData covers E/M data responses (including write data).
	ClassExclusiveData
	// ClassWriteBackData covers dirty writeback (PutM) data packets.
	ClassWriteBackData
	// ClassPushAck covers push acknowledgment control messages (PushAck
	// coherence variant only).
	ClassPushAck
	// ClassOther covers everything else: invalidations, inv-acks, memory
	// traffic, and miscellaneous control.
	ClassOther

	// NumClasses is the number of traffic classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"ReadRequest", "ReadSharedData", "PushData", "ExclusiveData",
	"WriteBackData", "PushAck", "Other",
}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "Unknown"
}

// Unit identifies the kind of endpoint a flit was injected from or ejected
// to, for the per-endpoint bandwidth figures (Fig 15, Fig 16).
type Unit uint8

// Endpoint units.
const (
	UnitL2 Unit = iota
	UnitLLC
	UnitMem
	NumUnits
)

var unitNames = [NumUnits]string{"L2", "LLC", "Mem"}

// String returns the unit name.
func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return "Unknown"
}

// Network aggregates all NoC-side counters.
type Network struct {
	// LinkFlits[l] is the number of flits that traversed link l. Link
	// indices are assigned by the NoC; LinkName maps them back.
	LinkFlits []uint64
	// TotalFlitsByClass counts link-level flit traversals per class
	// (a flit crossing three links counts three times, matching traffic
	// volume as the paper measures it).
	TotalFlitsByClass [NumClasses]uint64
	// InjectedFlits[u][c] counts flits injected into the NoC by unit kind u
	// under class c (endpoint-side, each flit counted once).
	InjectedFlits [NumUnits][NumClasses]uint64
	// EjectedFlits[u][c] counts flits ejected from the NoC to unit kind u.
	EjectedFlits [NumUnits][NumClasses]uint64
	// InjectedPackets / EjectedPackets mirror the flit counters at packet
	// granularity.
	InjectedPackets [NumUnits][NumClasses]uint64
	EjectedPackets  [NumUnits][NumClasses]uint64
	// FilteredRequests counts read requests pruned by the in-network
	// coherent filter.
	FilteredRequests uint64
	// StalledInvCycles counts cycles an invalidation spent stalled behind a
	// same-line push (OrdPush ordering enforcement).
	StalledInvCycles uint64
	// MulticastReplicas counts extra packet replicas created by in-router
	// multicast forking.
	MulticastReplicas uint64
	// PacketLatencySum/PacketCount measure end-to-end packet latency.
	PacketLatencySum uint64
	PacketCount      uint64
	// InjRefused counts injection attempts an NI refused because the queue
	// was full (backpressure; the source retries next cycle). Nonzero under
	// heavy load or an InjSpike fault, never fatal.
	InjRefused uint64
	// FaultWindows counts fault windows opened by the injection layer.
	FaultWindows uint64
	// FaultJitterDelay sums extra head-arrival cycles added by VCJitter.
	FaultJitterDelay uint64
	// FaultFilterSuppressed counts filter hits a FilterDrop window turned
	// into misses.
	FaultFilterSuppressed uint64
}

// TotalFlits returns total link-level flit traversals across classes.
func (n *Network) TotalFlits() uint64 {
	var t uint64
	for _, v := range n.TotalFlitsByClass {
		t += v
	}
	return t
}

// PushOutcome classifies what happened to one received push at a private
// cache (Fig 12 categories).
type PushOutcome uint8

// Push outcomes.
const (
	// PushDeadlockDrop: dropped because every line in the target set was in
	// a blocking transient state (deadlock avoidance).
	PushDeadlockDrop PushOutcome = iota
	// PushRedundancyDrop: dropped because the line was already present.
	PushRedundancyDrop
	// PushCoherenceDrop: dropped because the line had a conflicting
	// transient write upgrade outstanding.
	PushCoherenceDrop
	// PushUnused: installed but evicted without being accessed.
	PushUnused
	// PushMissToHit: installed and later accessed before eviction.
	PushMissToHit
	// PushEarlyResp: served an outstanding same-line read miss on arrival.
	PushEarlyResp
	NumPushOutcomes
)

var pushOutcomeNames = [NumPushOutcomes]string{
	"Deadlock-Drop", "Redundancy-Drop", "Coherence-Drop",
	"Unused", "Miss-to-Hit", "Early-Resp",
}

// String returns the outcome name.
func (o PushOutcome) String() string {
	if int(o) < len(pushOutcomeNames) {
		return pushOutcomeNames[o]
	}
	return "Unknown"
}

// Cache aggregates per-cache-level counters summed over all tiles.
type Cache struct {
	L1Accesses   uint64
	L1Misses     uint64
	L2Accesses   uint64
	L2Misses     uint64 // demand + prefetch misses, as the paper counts MPKI
	L2Evictions  uint64
	LLCAccesses  uint64
	LLCMisses    uint64
	LLCEvictions uint64
	// PushOutcomes is the Fig 12 breakdown, summed over private caches.
	PushOutcomes [NumPushOutcomes]uint64
	// PushesTriggered counts push transactions initiated by LLC slices;
	// PushDestinations sums their destination counts (avg destinations =
	// PushDestinations / PushesTriggered, the §IV-C profiling).
	PushesTriggered  uint64
	PushDestinations uint64
	// PausedPushRequests counts GetS requests carrying need_push=false.
	PausedPushRequests uint64
	// CoalescedRequests counts LLC requests merged by the Coalesce scheme.
	CoalescedRequests uint64
	// MemReads/MemWrites count DRAM transactions.
	MemReads  uint64
	MemWrites uint64
}

// TotalPushes returns the number of pushes received at private caches.
func (c *Cache) TotalPushes() uint64 {
	var t uint64
	for _, v := range c.PushOutcomes {
		t += v
	}
	return t
}

// UsefulPushes returns pushes that served a miss or turned a miss into a hit.
func (c *Cache) UsefulPushes() uint64 {
	return c.PushOutcomes[PushMissToHit] + c.PushOutcomes[PushEarlyResp]
}

// Core aggregates per-core execution counters summed over all cores.
type Core struct {
	Instructions uint64
	Cycles       uint64 // parallel-phase cycles (same for every core)
	Loads        uint64
	Stores       uint64
	StallCycles  uint64 // cycles the window was full
}

// GapReservoirCap bounds the sample count each sharer pair's gap reservoir
// retains; beyond it, Algorithm R keeps a uniform subsample.
const GapReservoirCap = 2048

// GapReservoir holds a bounded uniform sample of gap observations. Below
// GapReservoirCap it records everything (so small-scale quantiles are exact);
// past the cap it applies reservoir sampling (Algorithm R) driven by a
// deterministic LCG, keeping memory fixed on long full-scale traces while
// every observation — early or late — retains equal selection probability.
type GapReservoir struct {
	// Samples is the retained sample set, in retention order (not sorted).
	Samples []uint64
	// Seen counts every observation offered, retained or not.
	Seen uint64
	rng  uint64
}

// NewGapReservoir returns an empty reservoir; seed decorrelates the sampling
// streams of different reservoirs while keeping runs reproducible.
func NewGapReservoir(seed uint64) *GapReservoir {
	return &GapReservoir{rng: seed*2654435761 + 1}
}

// Observe offers one gap sample to the reservoir.
func (r *GapReservoir) Observe(gap uint64) {
	r.Seen++
	if len(r.Samples) < GapReservoirCap {
		r.Samples = append(r.Samples, gap)
		return
	}
	// Knuth MMIX LCG: deterministic, so identical runs keep identical samples.
	r.rng = r.rng*6364136223846793005 + 1442695040888963407
	if j := r.rng % r.Seen; j < GapReservoirCap {
		r.Samples[j] = gap
	}
}

// GapObs is one deferred sharer-gap observation (see All.DeferGaps).
type GapObs struct {
	Key int
	Gap uint64
}

// All is the top-level stats bundle for one simulation run.
type All struct {
	Net   Network
	Cache Cache
	Core  Core
	// SharerGaps records, for traced shared lines, the cycle gap between
	// consecutive accesses by distinct sharers (Fig 4). Keyed by the ordered
	// sharer pair index (prev*64+next); each value is a bounded reservoir of
	// gap samples.
	SharerGaps map[int]*GapReservoir
	// DeferGaps switches ObserveGap from feeding SharerGaps directly to
	// appending to GapLog. Per-lane stats shards of the parallel executor set
	// it so reservoir sampling state — which is order-sensitive — only ever
	// advances on the primary bundle, via DrainGapsInto in lane order.
	DeferGaps bool
	// GapLog is the deferred observation buffer used when DeferGaps is set.
	GapLog []GapObs
}

// New returns an empty stats bundle.
func New() *All {
	return &All{SharerGaps: make(map[int]*GapReservoir)}
}

// ObserveGap records one sharer-gap sample: directly into the keyed
// reservoir, or into GapLog when DeferGaps is set.
func (a *All) ObserveGap(key int, gap uint64) {
	if a.DeferGaps {
		a.GapLog = append(a.GapLog, GapObs{Key: key, Gap: gap})
		return
	}
	r := a.SharerGaps[key]
	if r == nil {
		r = NewGapReservoir(uint64(key))
		a.SharerGaps[key] = r
	}
	r.Observe(gap)
}

// DrainGapsInto replays this bundle's deferred gap log into dst's reservoirs
// (in log order) and clears the log.
func (a *All) DrainGapsInto(dst *All) {
	for _, o := range a.GapLog {
		dst.ObserveGap(o.Key, o.Gap)
	}
	a.GapLog = a.GapLog[:0]
}

// Add accumulates src's counters into a. It covers every counter field of
// Network, Cache, and Core (merge_test.go checks completeness by reflection);
// SharerGaps and the deferral fields are excluded — gap observations merge
// through DrainGapsInto, which preserves reservoir sampling order.
func (a *All) Add(src *All) {
	if need := len(src.Net.LinkFlits) - len(a.Net.LinkFlits); need > 0 {
		a.Net.LinkFlits = append(a.Net.LinkFlits, make([]uint64, need)...)
	}
	for i, v := range src.Net.LinkFlits {
		a.Net.LinkFlits[i] += v
	}
	for i, v := range src.Net.TotalFlitsByClass {
		a.Net.TotalFlitsByClass[i] += v
	}
	for u := range src.Net.InjectedFlits {
		for c, v := range src.Net.InjectedFlits[u] {
			a.Net.InjectedFlits[u][c] += v
		}
	}
	for u := range src.Net.EjectedFlits {
		for c, v := range src.Net.EjectedFlits[u] {
			a.Net.EjectedFlits[u][c] += v
		}
	}
	for u := range src.Net.InjectedPackets {
		for c, v := range src.Net.InjectedPackets[u] {
			a.Net.InjectedPackets[u][c] += v
		}
	}
	for u := range src.Net.EjectedPackets {
		for c, v := range src.Net.EjectedPackets[u] {
			a.Net.EjectedPackets[u][c] += v
		}
	}
	a.Net.FilteredRequests += src.Net.FilteredRequests
	a.Net.StalledInvCycles += src.Net.StalledInvCycles
	a.Net.MulticastReplicas += src.Net.MulticastReplicas
	a.Net.PacketLatencySum += src.Net.PacketLatencySum
	a.Net.PacketCount += src.Net.PacketCount
	a.Net.InjRefused += src.Net.InjRefused
	a.Net.FaultWindows += src.Net.FaultWindows
	a.Net.FaultJitterDelay += src.Net.FaultJitterDelay
	a.Net.FaultFilterSuppressed += src.Net.FaultFilterSuppressed

	a.Cache.L1Accesses += src.Cache.L1Accesses
	a.Cache.L1Misses += src.Cache.L1Misses
	a.Cache.L2Accesses += src.Cache.L2Accesses
	a.Cache.L2Misses += src.Cache.L2Misses
	a.Cache.L2Evictions += src.Cache.L2Evictions
	a.Cache.LLCAccesses += src.Cache.LLCAccesses
	a.Cache.LLCMisses += src.Cache.LLCMisses
	a.Cache.LLCEvictions += src.Cache.LLCEvictions
	for i, v := range src.Cache.PushOutcomes {
		a.Cache.PushOutcomes[i] += v
	}
	a.Cache.PushesTriggered += src.Cache.PushesTriggered
	a.Cache.PushDestinations += src.Cache.PushDestinations
	a.Cache.PausedPushRequests += src.Cache.PausedPushRequests
	a.Cache.CoalescedRequests += src.Cache.CoalescedRequests
	a.Cache.MemReads += src.Cache.MemReads
	a.Cache.MemWrites += src.Cache.MemWrites

	a.Core.Instructions += src.Core.Instructions
	a.Core.Cycles += src.Core.Cycles
	a.Core.Loads += src.Core.Loads
	a.Core.Stores += src.Core.Stores
	a.Core.StallCycles += src.Core.StallCycles
}

// MPKI returns misses-per-kilo-instruction given a miss count.
func (a *All) MPKI(misses uint64) float64 {
	if a.Core.Instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(a.Core.Instructions)
}
