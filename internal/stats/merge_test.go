package stats

import (
	"reflect"
	"testing"
)

// fillCounters walks a struct by reflection and assigns a distinct nonzero
// value to every uint64 counter it reaches (through nested structs, arrays,
// and slices), returning the running counter so call sites can chain fills.
func fillCounters(v reflect.Value, next uint64) uint64 {
	switch v.Kind() {
	case reflect.Uint64:
		v.SetUint(next)
		return next + 1
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			next = fillCounters(v.Field(i), next)
		}
		return next
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			next = fillCounters(v.Index(i), next)
		}
		return next
	case reflect.Slice:
		if v.Type().Elem().Kind() != reflect.Uint64 {
			return next
		}
		v.Set(reflect.MakeSlice(v.Type(), 3, 3))
		for i := 0; i < v.Len(); i++ {
			next = fillCounters(v.Index(i), next)
		}
		return next
	default:
		return next
	}
}

// TestAddCoversEveryCounter guards Add against silently dropping counters as
// the bundle grows: it sets every uint64 field of Network, Cache, and Core to
// a distinct nonzero value by reflection, Adds the bundle into a zero one,
// and requires the result to be identical. A counter a future change adds to
// any of the three structs but forgets to merge in Add fails this test
// without the test needing to know the field exists.
func TestAddCoversEveryCounter(t *testing.T) {
	src := New()
	n := fillCounters(reflect.ValueOf(&src.Net).Elem(), 1)
	n = fillCounters(reflect.ValueOf(&src.Cache).Elem(), n)
	n = fillCounters(reflect.ValueOf(&src.Core).Elem(), n)
	if n < 2 {
		t.Fatal("reflection walk found no counters")
	}

	dst := New()
	dst.Add(src)
	if !reflect.DeepEqual(dst.Net, src.Net) {
		t.Errorf("Network merge incomplete:\nsrc: %+v\ndst: %+v", src.Net, dst.Net)
	}
	if !reflect.DeepEqual(dst.Cache, src.Cache) {
		t.Errorf("Cache merge incomplete:\nsrc: %+v\ndst: %+v", src.Cache, dst.Cache)
	}
	if !reflect.DeepEqual(dst.Core, src.Core) {
		t.Errorf("Core merge incomplete:\nsrc: %+v\ndst: %+v", src.Core, dst.Core)
	}

	// Adding twice must double every counter (sums, not overwrites).
	dst.Add(src)
	if dst.Net.FilteredRequests != 2*src.Net.FilteredRequests ||
		dst.Cache.L1Accesses != 2*src.Cache.L1Accesses ||
		dst.Core.Instructions != 2*src.Core.Instructions {
		t.Error("second Add did not accumulate (counters overwritten instead of summed)")
	}
}

// TestDrainGapsInto checks deferred gap observations replay into the
// destination's reservoirs in log order and the log resets.
func TestDrainGapsInto(t *testing.T) {
	shard := New()
	shard.DeferGaps = true
	shard.ObserveGap(7, 100)
	shard.ObserveGap(7, 200)
	shard.ObserveGap(3, 50)
	if len(shard.SharerGaps) != 0 {
		t.Fatal("deferring shard advanced its own reservoirs")
	}

	primary := New()
	shard.DrainGapsInto(primary)
	if len(shard.GapLog) != 0 {
		t.Error("drain left observations in the shard log")
	}
	if r := primary.SharerGaps[7]; r == nil || !reflect.DeepEqual(r.Samples, []uint64{100, 200}) {
		t.Errorf("key 7 reservoir = %+v, want samples [100 200]", primary.SharerGaps[7])
	}
	if r := primary.SharerGaps[3]; r == nil || !reflect.DeepEqual(r.Samples, []uint64{50}) {
		t.Errorf("key 3 reservoir = %+v, want samples [50]", primary.SharerGaps[3])
	}
}
