package stats

import "testing"

func TestClassNames(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "Unknown" {
			t.Errorf("class %d unnamed", c)
		}
	}
	if Class(200).String() != "Unknown" {
		t.Error("out-of-range class should be Unknown")
	}
}

func TestUnitNames(t *testing.T) {
	for u := Unit(0); u < NumUnits; u++ {
		if u.String() == "Unknown" {
			t.Errorf("unit %d unnamed", u)
		}
	}
}

func TestPushOutcomeNames(t *testing.T) {
	for o := PushOutcome(0); o < NumPushOutcomes; o++ {
		if o.String() == "Unknown" {
			t.Errorf("outcome %d unnamed", o)
		}
	}
}

func TestNetworkTotals(t *testing.T) {
	var n Network
	n.TotalFlitsByClass[ClassReadRequest] = 3
	n.TotalFlitsByClass[ClassPushData] = 7
	if n.TotalFlits() != 10 {
		t.Errorf("TotalFlits = %d, want 10", n.TotalFlits())
	}
}

func TestCachePushAggregates(t *testing.T) {
	var c Cache
	c.PushOutcomes[PushMissToHit] = 5
	c.PushOutcomes[PushEarlyResp] = 3
	c.PushOutcomes[PushUnused] = 2
	if c.TotalPushes() != 10 {
		t.Errorf("TotalPushes = %d, want 10", c.TotalPushes())
	}
	if c.UsefulPushes() != 8 {
		t.Errorf("UsefulPushes = %d, want 8", c.UsefulPushes())
	}
}

func TestMPKI(t *testing.T) {
	a := New()
	if a.MPKI(100) != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
	a.Core.Instructions = 2000
	if got := a.MPKI(100); got != 50 {
		t.Errorf("MPKI = %v, want 50", got)
	}
}

func TestNewInitializesGapMap(t *testing.T) {
	a := New()
	a.SharerGaps[5] = append(a.SharerGaps[5], 10)
	if len(a.SharerGaps[5]) != 1 {
		t.Error("SharerGaps not usable")
	}
}
