package stats

import "testing"

func TestClassNames(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "Unknown" {
			t.Errorf("class %d unnamed", c)
		}
	}
	if Class(200).String() != "Unknown" {
		t.Error("out-of-range class should be Unknown")
	}
}

func TestUnitNames(t *testing.T) {
	for u := Unit(0); u < NumUnits; u++ {
		if u.String() == "Unknown" {
			t.Errorf("unit %d unnamed", u)
		}
	}
}

func TestPushOutcomeNames(t *testing.T) {
	for o := PushOutcome(0); o < NumPushOutcomes; o++ {
		if o.String() == "Unknown" {
			t.Errorf("outcome %d unnamed", o)
		}
	}
}

func TestNetworkTotals(t *testing.T) {
	var n Network
	n.TotalFlitsByClass[ClassReadRequest] = 3
	n.TotalFlitsByClass[ClassPushData] = 7
	if n.TotalFlits() != 10 {
		t.Errorf("TotalFlits = %d, want 10", n.TotalFlits())
	}
}

func TestCachePushAggregates(t *testing.T) {
	var c Cache
	c.PushOutcomes[PushMissToHit] = 5
	c.PushOutcomes[PushEarlyResp] = 3
	c.PushOutcomes[PushUnused] = 2
	if c.TotalPushes() != 10 {
		t.Errorf("TotalPushes = %d, want 10", c.TotalPushes())
	}
	if c.UsefulPushes() != 8 {
		t.Errorf("UsefulPushes = %d, want 8", c.UsefulPushes())
	}
}

func TestMPKI(t *testing.T) {
	a := New()
	if a.MPKI(100) != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
	a.Core.Instructions = 2000
	if got := a.MPKI(100); got != 50 {
		t.Errorf("MPKI = %v, want 50", got)
	}
}

func TestNewInitializesGapMap(t *testing.T) {
	a := New()
	a.SharerGaps[5] = NewGapReservoir(5)
	a.SharerGaps[5].Observe(10)
	if len(a.SharerGaps[5].Samples) != 1 || a.SharerGaps[5].Seen != 1 {
		t.Error("SharerGaps not usable")
	}
}

func TestGapReservoirBoundedAndUniformish(t *testing.T) {
	r := NewGapReservoir(7)
	const n = 10 * GapReservoirCap
	for i := uint64(0); i < n; i++ {
		r.Observe(i)
	}
	if len(r.Samples) != GapReservoirCap {
		t.Fatalf("reservoir size %d, want %d", len(r.Samples), GapReservoirCap)
	}
	if r.Seen != n {
		t.Fatalf("Seen = %d, want %d", r.Seen, n)
	}
	// A uniform sample's mean should land near the population mean (n/2);
	// truncation-style capping would pin it near GapReservoirCap/2 instead.
	var sum float64
	for _, v := range r.Samples {
		sum += float64(v)
	}
	mean := sum / float64(len(r.Samples))
	if mean < float64(n)*0.4 || mean > float64(n)*0.6 {
		t.Errorf("sample mean %.0f far from population mean %d", mean, n/2)
	}
	// Determinism: a reservoir with the same seed and stream is identical.
	r2 := NewGapReservoir(7)
	for i := uint64(0); i < n; i++ {
		r2.Observe(i)
	}
	for i := range r.Samples {
		if r.Samples[i] != r2.Samples[i] {
			t.Fatalf("sample %d differs between identical runs", i)
		}
	}
}
