package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestGapReservoirShardedDeterminism fuzzes the parallel executor's gap
// deferral protocol against the serial path: per-lane shards defer their
// observations each "cycle" and drain into the primary bundle in lane
// order — exactly what core does via SetOnCycleEnd. Reservoir sampling is
// order-sensitive (each Observe advances the LCG), so the sharded replay
// must reconstruct the serial observation order exactly; any divergence in
// Samples or Seen means parallel runs would report different Fig 4
// quantiles than serial ones.
func TestGapReservoirShardedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const lanes = 4
	const cycles = 4000
	serial := New()
	primary := New()
	shards := make([]*All, lanes)
	for i := range shards {
		shards[i] = New()
		shards[i].DeferGaps = true
	}
	for cycle := 0; cycle < cycles; cycle++ {
		// Within a cycle, lane order is the serial tick order; the serial
		// reference observes in that same (cycle, lane, emission) order.
		for lane := 0; lane < lanes; lane++ {
			for j := rng.Intn(3); j > 0; j-- {
				key := rng.Intn(3)
				gap := rng.Uint64() % 1000
				serial.ObserveGap(key, gap)
				shards[lane].ObserveGap(key, gap)
			}
		}
		for _, sh := range shards {
			sh.DrainGapsInto(primary)
			if len(sh.GapLog) != 0 {
				t.Fatal("drain left observations behind")
			}
		}
	}
	if len(primary.SharerGaps) != len(serial.SharerGaps) {
		t.Fatalf("key sets differ: sharded %d, serial %d", len(primary.SharerGaps), len(serial.SharerGaps))
	}
	for k, want := range serial.SharerGaps {
		got := primary.SharerGaps[k]
		if got == nil {
			t.Fatalf("key %d missing from sharded bundle", k)
		}
		if got.Seen != want.Seen {
			t.Fatalf("key %d: Seen=%d sharded vs %d serial", k, got.Seen, want.Seen)
		}
		if want.Seen <= GapReservoirCap {
			t.Fatalf("key %d saw only %d observations; raise the load to exercise Algorithm R", k, want.Seen)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Fatalf("key %d: reservoir contents diverged between sharded and serial observation", k)
		}
	}
}
