// Package sim provides the deterministic cycle-driven simulation kernel that
// every other subsystem plugs into.
//
// Components register as Tickers and are ticked in registration order.
// Determinism comes from two rules every component follows:
//
//  1. A component only consumes an item whose readyAt stamp is <= the current
//     cycle, so same-cycle pass-through cannot depend on tick order.
//  2. Components never spawn goroutines; all state lives behind the single
//     simulation thread.
//
// The kernel is wake-driven: a component that has no pending work reports
// itself quiescent through its registration Handle (Sleep, or SleepUntil when
// the next event time is known), and anything that hands it new work calls
// Wake. The engine ticks only awake components, and Run fast-forwards the
// clock to the earliest scheduled wake when every component is asleep,
// skipping idle cycles entirely. Because a quiescent component's tick is by
// contract a no-op, a wake-driven run produces cycle counts and statistics
// identical to the dense reference mode (SetDense), which still ticks every
// component every cycle and exists as the cross-check oracle.
//
// The quiescence contract a component must follow to sleep safely:
//
//   - Sleep/SleepUntil only when every tick until the wake point would be a
//     no-op absent external input: no queued work, no in-flight stream, no
//     matured events. SleepUntil(c) declares the earliest cycle at which
//     internally scheduled work (a delay queue entry, a pending completion)
//     matures.
//   - Every producer that hands a sleeping component work must Wake it:
//     packet receive, queue injection, buffer claim, barrier release,
//     completion callbacks. A spurious Wake is harmless (the tick no-ops and
//     the component re-sleeps); a missed Wake diverges from the dense oracle.
//   - Per-cycle counters that accrue while idle (stall cycles, time-window
//     counters) must be reconstructed on wake from the elapsed-cycle delta so
//     sparse and dense runs report identical statistics.
//
// The Engine also provides progress-based deadlock detection: components
// report forward progress via Engine.Progress, and a run aborts with
// ErrDeadlock if no progress is observed for the watchdog window.
package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Cycle is a simulation timestamp in core clock cycles.
type Cycle uint64

// NeverWake is the wake time of a sleeping component with no scheduled work;
// only an explicit Wake can make it runnable again.
const NeverWake = ^Cycle(0)

// Ticker is the hook every simulated component implements. Tick is invoked
// once per simulated cycle while the component is awake (every cycle in
// dense mode).
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts an ordinary function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// ErrDeadlock is returned by Run when the watchdog window elapses without any
// component reporting progress while the simulation is not finished.
var ErrDeadlock = errors.New("sim: no forward progress (deadlock)")

// ErrMaxCycles is returned by Run when the cycle limit is hit before the
// finished predicate reports completion.
var ErrMaxCycles = errors.New("sim: cycle limit exceeded")

// ErrFailsafe additionally marks a cycle-limit error when the limit that
// fired was the implicit FailsafeMaxCycles ceiling (both watchdog and
// explicit limit disabled), distinguishing "the run outlived its configured
// budget" from "nothing was configured to stop it".
var ErrFailsafe = errors.New("sim: implicit failsafe ceiling")

// Handle is a component's registration with the engine. It carries the
// component's scheduling state; components use it to report quiescence and
// producers use it to wake consumers.
type Handle struct {
	eng    *Engine
	comp   Ticker
	idx    int // registration order; ties in the wake heap break on it
	asleep bool
	wakeAt Cycle // NeverWake when sleeping without a scheduled wake
	// heapPos is this handle's index in the engine's wake heap, -1 when the
	// handle is not enqueued.
	heapPos int

	// lane is the handle's parallel-execution lane, -1 for serial-only
	// handles (see SetLane).
	lane int
	// seg is the index of the handle's segment in Engine.segs, -1 until the
	// parallel executor first builds the segment list. It anchors the
	// per-segment awake counters maintained on every asleep-transition.
	seg int
	// dirty marks enrollment in the engine's staged-commit list for the
	// current section (set by the first staged effect, cleared at commit).
	dirty atomic.Bool
	// pendingWake is the staged wake time accumulated (as a minimum) while a
	// parallel section runs; NeverWake when none. It is the only handle field
	// written cross-lane during a section, hence atomic.
	pendingWake atomic.Uint64
	// pendingSleep/hasPendingSleep stage the owning component's last
	// Sleep/SleepUntil of the section; only the owner writes them.
	pendingSleep    Cycle
	hasPendingSleep bool
	// wakeConsumed marks that the lane executor ticked this sleeping handle
	// because its staged wake was due, so commit must replay the wake before
	// the staged sleep (serial order: wake, tick, sleep).
	wakeConsumed bool
}

// SetLane tags the handle with a parallel-execution lane. Handles sharing a
// lane tick sequentially in registration order on one worker; handles in
// different lanes of the same section may tick concurrently, so everything a
// component touches during its tick must be confined to its lane (or routed
// through the staged Wake/WakeAt/stats paths). A maximal run of consecutive
// registrations with lanes forms one parallel section; untagged handles
// execute serially on the coordinating goroutine with unchanged semantics.
func (h *Handle) SetLane(lane int) {
	h.lane = lane
	h.eng.hasLanes = h.eng.hasLanes || lane >= 0
	h.eng.segsDirty = true
}

// Wake marks the component runnable from the current cycle on. Waking an
// already-awake component is a cheap no-op, so producers call it
// unconditionally when handing work over. During a parallel section the wake
// is staged and applied at the section barrier in registration order.
func (h *Handle) Wake() {
	if h.eng.staging {
		storeMin(&h.pendingWake, uint64(h.eng.now))
		h.eng.stageDirty(h)
		return
	}
	if !h.asleep {
		return
	}
	h.asleep = false
	h.eng.asleepCount--
	h.eng.segWake(h)
	if h.heapPos >= 0 {
		h.eng.heapRemove(h.heapPos)
	}
	h.wakeAt = NeverWake
}

// WakeAt schedules a wake no later than cycle c, for producers handing over
// work that matures at a known future cycle (waking immediately would only
// buy a no-op tick). An awake component or an earlier scheduled wake is left
// untouched; a c at or before the current cycle degenerates to Wake.
func (h *Handle) WakeAt(c Cycle) {
	if h.eng.staging {
		// The awake/earlier-wake fast path is unsafe here: the target may
		// have staged a sleep this section. Stage unconditionally; commit
		// re-applies the checks against the settled state.
		storeMin(&h.pendingWake, uint64(c))
		h.eng.stageDirty(h)
		return
	}
	if !h.asleep || h.wakeAt <= c {
		return
	}
	if c <= h.eng.now {
		h.Wake()
		return
	}
	h.sleep(c)
}

// Sleep reports that the component has no pending work at all; only an
// explicit Wake makes it runnable again.
func (h *Handle) Sleep() { h.sleep(NeverWake) }

// SleepUntil reports that the component's earliest internally scheduled work
// matures at cycle c; the engine guarantees a tick at c (or earlier, after a
// Wake). A wake time at or before the current cycle keeps the component
// awake.
func (h *Handle) SleepUntil(c Cycle) {
	if c <= h.eng.now {
		return
	}
	h.sleep(c)
}

func (h *Handle) sleep(c Cycle) {
	if h.eng.dense {
		return // dense reference mode ticks everything every cycle
	}
	if h.eng.staging {
		// Only the owning component sleeps its own handle, and only during
		// its tick; last call of the tick wins, replayed at commit.
		h.pendingSleep = c
		h.hasPendingSleep = true
		h.eng.stageDirty(h)
		return
	}
	// A sleep that would wake next cycle skips no ticks — the component runs
	// at c either way — but costs a heap push now and a heap pop in the next
	// Step. Staying awake is behaviorally identical and cheaper.
	if c <= h.eng.now+1 {
		h.Wake()
		return
	}
	if h.asleep {
		if c == h.wakeAt {
			return
		}
		if h.heapPos >= 0 {
			h.eng.heapRemove(h.heapPos)
		}
	} else {
		h.asleep = true
		h.eng.asleepCount++
		h.eng.segSleep(h)
	}
	h.wakeAt = c
	if c != NeverWake {
		h.eng.heapPush(h)
	}
}

// Engine drives the simulation. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	now         Cycle
	handles     []*Handle
	asleepCount int
	wheap       []*Handle // min-heap on (wakeAt, registration order)
	dense       bool
	// lastProgress is atomic because components report progress from worker
	// goroutines during parallel sections; the load-check-store in Progress
	// keeps the hot path to one uncontended load per call.
	lastProgress atomic.Uint64
	watchdog     Cycle
	maxCycles    Cycle
	// failsafe records that maxCycles is the implicit FailsafeMaxCycles
	// ceiling rather than a caller-chosen limit; limit errors then also
	// wrap ErrFailsafe.
	failsafe bool
	ticks    uint64

	// Parallel executor state (see parallel.go). workers <= 1 or no lane
	// tags leaves Step on the single-threaded path untouched.
	workers    int
	threshold  int
	batchGrain int
	hasLanes   bool
	staging    bool
	segs       []segment
	segsDirty  bool
	// trackAwake turns on the per-segment awake counters once the segment
	// list exists; serial engines never pay for the bookkeeping.
	trackAwake bool
	workCh     chan *parSection
	// spawned is the pool size actually started (capped by GOMAXPROCS-1).
	spawned int
	sec     parSection
	// dirty/dirtyN collect the handles with staged effects during a section;
	// commit walks (and sorts) only these instead of every handle.
	dirty  []*Handle
	dirtyN atomic.Int64
	exec   ExecStats
	// onCycleEnd, when set, runs after the last section of every parallel
	// Step (the per-cycle ordered drain of deferred stats).
	onCycleEnd func(now Cycle)
}

// FailsafeMaxCycles is the hard cycle ceiling enforced when both the
// watchdog and the explicit cycle limit are disabled. It is far beyond any
// plausible simulation length; its only purpose is to guarantee Run
// terminates.
const FailsafeMaxCycles = Cycle(1) << 40

// NewEngine returns a wake-driven engine with the given watchdog window and
// cycle limit. A watchdog of 0 disables deadlock detection; a maxCycles of 0
// means no explicit cycle limit. Disabling both would let Run spin forever
// on a system that keeps scheduling wakes without ever finishing, so in
// that case the engine applies FailsafeMaxCycles as a hard ceiling; a run
// reaching it fails with ErrMaxCycles.
func NewEngine(watchdog, maxCycles Cycle) *Engine {
	failsafe := watchdog == 0 && maxCycles == 0
	if failsafe {
		maxCycles = FailsafeMaxCycles
	}
	return &Engine{watchdog: watchdog, maxCycles: maxCycles, failsafe: failsafe}
}

// SetDense switches the engine to the dense reference mode, which ticks every
// component every cycle and ignores quiescence reports. It must be called
// before the first Step. Dense runs are the equivalence oracle for the
// wake-driven scheduler: both modes produce identical cycle counts and stats.
func (e *Engine) SetDense(dense bool) { e.dense = dense }

// Dense reports whether the engine runs in the dense reference mode.
func (e *Engine) Dense() bool { return e.dense }

// Register adds a component to the tick list and returns its scheduling
// handle. Components are ticked in registration order and start awake.
func (e *Engine) Register(t Ticker) *Handle {
	h := &Handle{eng: e, comp: t, idx: len(e.handles), wakeAt: NeverWake, heapPos: -1, lane: -1, seg: -1}
	h.pendingWake.Store(uint64(NeverWake))
	e.handles = append(e.handles, h)
	// Keep the staged-commit dirty list sized to the handle count up front:
	// stageDirty writes into it from worker goroutines and must never grow it.
	e.dirty = append(e.dirty, nil)
	e.segsDirty = true
	return h
}

// Now returns the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Ticks returns the total number of component ticks executed so far — the
// scheduler-efficiency metric: a dense run executes components × cycles,
// a wake-driven run only the awake subset.
func (e *Engine) Ticks() uint64 { return e.ticks }

// Progress records that a component made forward progress this cycle (moved a
// flit, retired an instruction, completed a transaction, ...). It feeds the
// deadlock watchdog.
func (e *Engine) Progress() {
	if e.lastProgress.Load() != uint64(e.now) {
		e.lastProgress.Store(uint64(e.now))
	}
}

// Step advances the simulation by exactly one cycle: due sleepers are woken,
// then every awake component is ticked in registration order. A component
// woken mid-step by an earlier-registered one is ticked in the same cycle; a
// wake from a later-registered one takes effect next cycle, which matches
// dense behavior because the woken component's tick this cycle would have
// been a no-op (rule 1: the handed-over work is readyAt-stamped).
func (e *Engine) Step() {
	if e.workers >= 2 && e.hasLanes {
		e.stepParallel()
		return
	}
	if e.dense {
		e.ticks += uint64(len(e.handles))
		for _, h := range e.handles {
			h.comp.Tick(e.now)
		}
		e.now++
		return
	}
	for len(e.wheap) > 0 && e.wheap[0].wakeAt <= e.now {
		h := e.wheap[0]
		e.heapRemove(0)
		h.asleep = false
		h.wakeAt = NeverWake
		e.asleepCount--
	}
	if e.asleepCount < len(e.handles) {
		for _, h := range e.handles {
			if !h.asleep {
				h.comp.Tick(e.now)
				e.ticks++
			}
		}
	}
	e.now++
}

// Run advances the simulation until finished() reports true. It returns the
// cycle at which the simulation finished, or an error if the watchdog fires
// or the cycle limit is exceeded. When every component is asleep, the clock
// fast-forwards to the earliest scheduled wake instead of spinning through
// empty cycles; the jump is clamped so the watchdog and the cycle limit fire
// at exactly the cycle a dense run would report.
func (e *Engine) Run(finished func() bool) (Cycle, error) {
	for !finished() {
		if err := e.limitErr(); err != nil {
			return e.now, err
		}
		if !e.dense && len(e.handles) > 0 && e.asleepCount == len(e.handles) {
			if !e.fastForward() {
				return e.now, fmt.Errorf("%w: all components idle with no pending wake at cycle %d", ErrDeadlock, e.now)
			}
			if err := e.limitErr(); err != nil {
				return e.now, err
			}
		}
		e.Step()
	}
	return e.now, nil
}

// limitErr evaluates both run limits against the current cycle and builds an
// unambiguous error. A fast-forward can land on a cycle where the watchdog
// window AND the cycle limit have both elapsed; reporting only whichever
// check ran first (as earlier versions did) made the same stall look like a
// deadlock or a budget overrun depending on limit configuration. Both causes
// are now reported, each matchable with errors.Is, with the deadlock — the
// diagnosis that names the stall — leading the message.
func (e *Engine) limitErr() error {
	stalled := e.watchdog != 0 && e.now-Cycle(e.lastProgress.Load()) > e.watchdog
	capped := e.maxCycles != 0 && e.now >= e.maxCycles
	if !stalled && !capped {
		return nil
	}
	var ceiling error
	if capped {
		if e.failsafe {
			ceiling = fmt.Errorf("%w (%w) at cycle %d", ErrMaxCycles, ErrFailsafe, e.now)
		} else {
			ceiling = fmt.Errorf("%w at cycle %d", ErrMaxCycles, e.now)
		}
	}
	if !stalled {
		return ceiling
	}
	stall := fmt.Errorf("%w: stalled since cycle %d (now %d)", ErrDeadlock, Cycle(e.lastProgress.Load()), e.now)
	if !capped {
		return stall
	}
	return fmt.Errorf("%w; %w", stall, ceiling)
}

// fastForward advances the clock to the earliest scheduled wake, clamped to
// the cycles at which the watchdog or the cycle limit would fire in a dense
// run. It reports false when nothing bounds the jump (no wake scheduled and
// both limits disabled), which is an unrecoverable idle state.
func (e *Engine) fastForward() bool {
	target := NeverWake
	if len(e.wheap) > 0 {
		target = e.wheap[0].wakeAt
	}
	if e.watchdog != 0 {
		if fire := Cycle(e.lastProgress.Load()) + e.watchdog + 1; fire < target {
			target = fire
		}
	}
	if e.maxCycles != 0 && e.maxCycles < target {
		target = e.maxCycles
	}
	if target == NeverWake {
		return false
	}
	if target > e.now {
		e.now = target
	}
	return true
}

// --- wake heap: min-heap on (wakeAt, registration order) ---

func (e *Engine) heapLess(a, b *Handle) bool {
	return a.wakeAt < b.wakeAt || (a.wakeAt == b.wakeAt && a.idx < b.idx)
}

func (e *Engine) heapSwap(i, j int) {
	e.wheap[i], e.wheap[j] = e.wheap[j], e.wheap[i]
	e.wheap[i].heapPos = i
	e.wheap[j].heapPos = j
}

func (e *Engine) heapPush(h *Handle) {
	h.heapPos = len(e.wheap)
	e.wheap = append(e.wheap, h)
	e.heapUp(h.heapPos)
}

// heapRemove removes the handle at heap index i (used both for popping the
// minimum and for canceling a scheduled wake when Wake arrives early).
func (e *Engine) heapRemove(i int) {
	h := e.wheap[i]
	last := len(e.wheap) - 1
	if i != last {
		e.heapSwap(i, last)
	}
	e.wheap[last] = nil
	e.wheap = e.wheap[:last]
	h.heapPos = -1
	if i < last {
		e.heapDown(i)
		e.heapUp(i)
	}
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(e.wheap[i], e.wheap[p]) {
			return
		}
		e.heapSwap(i, p)
		i = p
	}
}

func (e *Engine) heapDown(i int) {
	n := len(e.wheap)
	for {
		small := i
		if l := 2*i + 1; l < n && e.heapLess(e.wheap[l], e.wheap[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && e.heapLess(e.wheap[r], e.wheap[small]) {
			small = r
		}
		if small == i {
			return
		}
		e.heapSwap(i, small)
		i = small
	}
}
