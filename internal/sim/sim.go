// Package sim provides the deterministic cycle-driven simulation kernel that
// every other subsystem plugs into.
//
// The kernel is intentionally minimal: components register as Tickers and are
// ticked once per cycle in registration order. Determinism comes from two
// rules every component follows:
//
//  1. A component only consumes an item whose readyAt stamp is <= the current
//     cycle, so same-cycle pass-through cannot depend on tick order.
//  2. Components never spawn goroutines; all state lives behind the single
//     simulation thread.
//
// The Engine also provides progress-based deadlock detection: components
// report forward progress via Engine.Progress, and a run aborts with
// ErrDeadlock if no progress is observed for the watchdog window.
package sim

import (
	"errors"
	"fmt"
)

// Cycle is a simulation timestamp in core clock cycles.
type Cycle uint64

// Ticker is the hook every simulated component implements. Tick is invoked
// exactly once per simulated cycle.
type Ticker interface {
	Tick(now Cycle)
}

// TickFunc adapts an ordinary function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// ErrDeadlock is returned by Run when the watchdog window elapses without any
// component reporting progress while the simulation is not finished.
var ErrDeadlock = errors.New("sim: no forward progress (deadlock)")

// ErrMaxCycles is returned by Run when the cycle limit is hit before the
// finished predicate reports completion.
var ErrMaxCycles = errors.New("sim: cycle limit exceeded")

// Engine drives the simulation. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	now          Cycle
	tickers      []Ticker
	lastProgress Cycle
	watchdog     Cycle
	maxCycles    Cycle
}

// NewEngine returns an engine with the given watchdog window and cycle limit.
// A watchdog of 0 disables deadlock detection; a maxCycles of 0 means no
// cycle limit.
func NewEngine(watchdog, maxCycles Cycle) *Engine {
	return &Engine{watchdog: watchdog, maxCycles: maxCycles}
}

// Register adds a component to the per-cycle tick list. Components are ticked
// in registration order.
func (e *Engine) Register(t Ticker) { e.tickers = append(e.tickers, t) }

// Now returns the current cycle.
func (e *Engine) Now() Cycle { return e.now }

// Progress records that a component made forward progress this cycle (moved a
// flit, retired an instruction, completed a transaction, ...). It feeds the
// deadlock watchdog.
func (e *Engine) Progress() { e.lastProgress = e.now }

// Step advances the simulation by exactly one cycle.
func (e *Engine) Step() {
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// Run advances the simulation until finished() reports true. It returns the
// cycle at which the simulation finished, or an error if the watchdog fires
// or the cycle limit is exceeded.
func (e *Engine) Run(finished func() bool) (Cycle, error) {
	for !finished() {
		if e.maxCycles != 0 && e.now >= e.maxCycles {
			return e.now, fmt.Errorf("%w at cycle %d", ErrMaxCycles, e.now)
		}
		if e.watchdog != 0 && e.now-e.lastProgress > e.watchdog {
			return e.now, fmt.Errorf("%w: stalled since cycle %d (now %d)", ErrDeadlock, e.lastProgress, e.now)
		}
		e.Step()
	}
	return e.now, nil
}
