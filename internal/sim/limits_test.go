package sim

import (
	"errors"
	"testing"
)

// TestLimitErrorsDisambiguated: a fast-forward can land on a cycle where the
// watchdog window and the cycle limit have both elapsed. Earlier versions
// reported only whichever check ran first, so the same stall read as a
// deadlock or a budget overrun depending on configuration. Both causes must
// be present and matchable with errors.Is, with the deadlock diagnosis
// leading the message.
func TestLimitErrorsDisambiguated(t *testing.T) {
	eng := NewEngine(149, 150)
	s := &futureSleeper{at: 1 << 30}
	s.h = eng.Register(s)
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock wrapped", err)
	}
	if !errors.Is(err, ErrMaxCycles) {
		t.Errorf("err = %v, want ErrMaxCycles wrapped", err)
	}
	if errors.Is(err, ErrFailsafe) {
		t.Errorf("err = %v: explicit limit misreported as the implicit failsafe", err)
	}
}

// TestLimitErrorsSingleCause: when only one limit fires, the other must not
// leak into the error.
func TestLimitErrorsSingleCause(t *testing.T) {
	eng := NewEngine(0, 100)
	s := &futureSleeper{at: 1 << 30}
	s.h = eng.Register(s)
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) || errors.Is(err, ErrDeadlock) {
		t.Errorf("cycle-limit-only err = %v, want ErrMaxCycles and not ErrDeadlock", err)
	}

	eng = NewEngine(50, 0)
	s2 := &futureSleeper{at: 1 << 30}
	s2.h = eng.Register(s2)
	_, err = eng.Run(func() bool { return false })
	if !errors.Is(err, ErrDeadlock) || errors.Is(err, ErrMaxCycles) {
		t.Errorf("watchdog-only err = %v, want ErrDeadlock and not ErrMaxCycles", err)
	}
}

// TestFailsafeMarked: a run stopped by the implicit failsafe ceiling carries
// ErrFailsafe in addition to ErrMaxCycles, so callers can tell "the run
// outlived its configured budget" from "nothing was configured to stop it".
func TestFailsafeMarked(t *testing.T) {
	eng := NewEngine(0, 0)
	s := &futureSleeper{at: FailsafeMaxCycles + 5}
	s.h = eng.Register(s)
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) || !errors.Is(err, ErrFailsafe) {
		t.Errorf("failsafe err = %v, want both ErrMaxCycles and ErrFailsafe", err)
	}
}
