// Parallel tick executor: multi-core execution of one simulation with a
// deterministic staged commit.
//
// Handles tagged with a lane (SetLane) are grouped into parallel sections —
// maximal runs of consecutive registrations carrying lane tags. Within a
// section, each lane's handles tick sequentially in registration order on one
// worker, and distinct lanes tick concurrently. Rule 1 of the kernel contract
// (consume only items with readyAt <= now) makes intra-cycle tick results
// order-independent, so the only cross-lane effects a tick may have are
// Wake/WakeAt calls; while a section runs (Engine.staging) those are staged
// per-handle and committed at the section barrier in registration order,
// making the schedule — and therefore every statistic — byte-identical to a
// serial run. Untagged handles (the fault injector, the invariant monitor)
// stay on the coordinating goroutine with unchanged serial semantics.
//
// Dispatch is batched by awake-set density: the section's lane groups are
// coarsened into at most maxPar contiguous batches, each claimed and run
// whole by one worker, so a cycle costs O(workers) scheduling operations
// instead of O(lanes). Sections whose awake population is below the
// configured threshold fall back to the exact serial walk, and when no
// helper parallelism is available (one batch, or GOMAXPROCS == 1) the
// coordinator runs every batch inline with zero cross-goroutine traffic —
// the schedule is deterministic either way, so results never depend on who
// executed a batch.
package sim

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// DefaultParallelThreshold is the minimum number of awake handles a parallel
// section needs before it is dispatched to the worker pool; below it the
// per-section barrier costs more than the concurrency buys.
const DefaultParallelThreshold = 24

// DefaultBatchGrain is the awake-handle mass one dispatch batch targets:
// a section with A awake handles is split into about A/DefaultBatchGrain
// batches (clamped to [1, maxPar]), so sparse cycles collapse to a single
// inline batch and dense cycles still hand every worker one claim.
const DefaultBatchGrain = 16

// ExecStats counts the parallel executor's per-run scheduling work. All
// fields are written by the coordinating goroutine only; read them after the
// run (or between Steps).
type ExecStats struct {
	// Cycles is the number of executor steps taken in parallel mode.
	Cycles uint64 `json:"cycles"`
	// ParallelCycles counts cycles in which at least one section was
	// dispatched through the staged-commit path.
	ParallelCycles uint64 `json:"parallel_cycles"`
	// Sections counts dispatched sections — each is one barrier crossing
	// (staging flip, batch claims, worker join, staged commit).
	Sections uint64 `json:"sections"`
	// Batches counts batch claims across all dispatched sections; the
	// pre-batching executor paid one claim per lane instead.
	Batches uint64 `json:"batches"`
	// LaneGroups counts the lane groups inside all dispatched sections —
	// the claim count the pre-batching executor would have paid. The ratio
	// (Sections+LaneGroups)/(Sections+Batches+HelperDispatches) is the
	// batching reduction the scaling curve reports.
	LaneGroups uint64 `json:"lane_groups"`
	// HelperDispatches counts cross-goroutine handoffs (channel sends to
	// pool workers). Zero on hosts without usable parallelism.
	HelperDispatches uint64 `json:"helper_dispatches"`
	// SerialFallbackCycles counts cycles whose awake set was below the
	// dispatch threshold and ran on the exact serial walk.
	SerialFallbackCycles uint64 `json:"serial_fallback_cycles"`
	// StagedCommits counts handles replayed at section barriers (the staged
	// wake/sleep effects actually applied).
	StagedCommits uint64 `json:"staged_commits"`
}

// BarrierCrossingsPerCycle returns the average number of barrier-and-claim
// scheduling operations (sections + batch claims + helper handoffs) per
// executor cycle — the staging-overhead figure the scaling curve tracks.
func (x ExecStats) BarrierCrossingsPerCycle() float64 {
	if x.Cycles == 0 {
		return 0
	}
	return float64(x.Sections+x.Batches+x.HelperDispatches) / float64(x.Cycles)
}

// BatchingReductionX returns how many times fewer barrier-and-claim
// scheduling operations the batched dispatch performed than the pre-batching
// per-lane dispatch would have on the same cycles (1 when nothing was
// dispatched).
func (x ExecStats) BatchingReductionX() float64 {
	den := x.Sections + x.Batches + x.HelperDispatches
	if den == 0 {
		return 1
	}
	return float64(x.Sections+x.LaneGroups) / float64(den)
}

// storeMin atomically lowers *a to v (no-op when *a is already <= v). Wake
// times only ever decrease within a section, so a CAS loop suffices.
func storeMin(a *atomic.Uint64, v uint64) {
	for {
		old := a.Load()
		if old <= v || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// segment is a maximal run of consecutively registered handles that either
// all carry lane tags (parallel) or none do (serial).
type segment struct {
	start, end int // handle index range [start, end)
	parallel   bool
	// groups holds the segment's handles bucketed by lane (ascending lane
	// order, registration order within a lane); nil for serial segments.
	groups [][]*Handle
	// awake is the segment's current awake-handle count, maintained
	// incrementally by Wake/sleep transitions (sparse mode only).
	awake int
}

// parSection is the per-dispatch work descriptor shared with the worker pool.
// The engine reuses a single instance (Engine.sec) across cycles.
type parSection struct {
	groups []([]*Handle)
	nbatch int
	next   atomic.Int64  // index of the next unclaimed batch
	ticks  atomic.Uint64 // ticks executed across all batches
	now    Cycle
	wg     sync.WaitGroup
}

// SetParallel enables the parallel executor with the given worker count and
// awake-set threshold (0 selects DefaultParallelThreshold). workers <= 1
// keeps the serial path. Must be called before the first Step.
func (e *Engine) SetParallel(workers, threshold int) {
	e.workers = workers
	if threshold <= 0 {
		threshold = DefaultParallelThreshold
	}
	e.threshold = threshold
	e.batchGrain = DefaultBatchGrain
}

// Parallel returns the configured worker count (0 or 1 means serial).
func (e *Engine) Parallel() int { return e.workers }

// Exec returns the executor's scheduling counters (zero value for serial
// runs).
func (e *Engine) Exec() ExecStats { return e.exec }

// SetOnCycleEnd installs a hook that runs on the coordinating goroutine at
// the end of every parallel-mode cycle, after all sections have committed.
// The engine uses it to drain per-lane deferred statistics in lane order.
func (e *Engine) SetOnCycleEnd(fn func(now Cycle)) { e.onCycleEnd = fn }

// Close shuts down the worker pool. Safe to call multiple times and on
// engines that never went parallel. The engine must not Step afterwards.
func (e *Engine) Close() {
	if e.workCh != nil {
		close(e.workCh)
		e.workCh = nil
		e.spawned = 0
	}
}

// ensureWorkers lazily spawns the worker pool. Helpers beyond the host's
// usable parallelism would only ping-pong the scheduler — the section
// schedule is deterministic regardless of who runs a batch — so the pool is
// capped at GOMAXPROCS-1 goroutines; the coordinating goroutine itself is
// the remaining worker.
func (e *Engine) ensureWorkers() {
	if e.workCh != nil {
		return
	}
	n := e.workers - 1
	if maxp := runtime.GOMAXPROCS(0) - 1; n > maxp {
		n = maxp
	}
	if n < 0 {
		n = 0
	}
	e.spawned = n
	e.workCh = make(chan *parSection, n+1)
	for i := 0; i < n; i++ {
		// The channel is passed by value: a worker that hasn't started yet
		// when Close nils the field must still see the real channel (a range
		// over the nil'd field would block forever and leak the goroutine).
		go e.worker(e.workCh)
	}
}

func (e *Engine) worker(ch chan *parSection) {
	for sec := range ch {
		e.runSectionWork(sec)
	}
}

// buildSegments recomputes the segment list from the handles' lane tags and
// re-derives the per-segment awake counts the incremental bookkeeping
// maintains from here on.
func (e *Engine) buildSegments() {
	e.segs = e.segs[:0]
	for i := 0; i < len(e.handles); {
		par := e.handles[i].lane >= 0
		j := i + 1
		for j < len(e.handles) && (e.handles[j].lane >= 0) == par {
			j++
		}
		seg := segment{start: i, end: j, parallel: par}
		if par {
			maxLane := 0
			for _, h := range e.handles[i:j] {
				if h.lane > maxLane {
					maxLane = h.lane
				}
			}
			groups := make([][]*Handle, maxLane+1)
			for _, h := range e.handles[i:j] {
				groups[h.lane] = append(groups[h.lane], h)
			}
			for _, g := range groups {
				if len(g) > 0 {
					seg.groups = append(seg.groups, g)
				}
			}
		}
		for _, h := range e.handles[i:j] {
			h.seg = len(e.segs)
			if !h.asleep {
				seg.awake++
			}
		}
		e.segs = append(e.segs, seg)
		i = j
	}
	e.trackAwake = true
	e.segsDirty = false
}

// segWake / segSleep maintain the per-segment awake counters on every
// asleep-transition. They are no-ops until the first parallel Step builds
// the segment list (and on serial engines, which never set trackAwake).
func (e *Engine) segWake(h *Handle) {
	if e.trackAwake && h.seg >= 0 {
		e.segs[h.seg].awake++
	}
}

func (e *Engine) segSleep(h *Handle) {
	if e.trackAwake && h.seg >= 0 {
		e.segs[h.seg].awake--
	}
}

// stepParallel is Step for engines with workers >= 2 and lane-tagged handles.
// Serial segments and below-threshold parallel segments execute exactly the
// serial walk, so any mix of dispatched and fallen-back sections remains
// byte-identical to a fully serial run.
func (e *Engine) stepParallel() {
	if e.segsDirty {
		e.buildSegments()
	}
	e.exec.Cycles++
	if !e.dense {
		for len(e.wheap) > 0 && e.wheap[0].wakeAt <= e.now {
			h := e.wheap[0]
			e.heapRemove(0)
			h.asleep = false
			h.wakeAt = NeverWake
			e.asleepCount--
			e.segWake(h)
		}
	}
	if e.dense || e.asleepCount < len(e.handles) {
		dispatched := false
		fellBack := false
		for i := range e.segs {
			seg := &e.segs[i]
			if seg.parallel && len(seg.groups) > 1 {
				awake := seg.awake
				if e.dense {
					awake = seg.end - seg.start
				}
				if awake >= e.threshold {
					e.runSection(seg, awake)
					dispatched = true
					continue
				}
				fellBack = true
			}
			for _, h := range e.handles[seg.start:seg.end] {
				if e.dense || !h.asleep {
					h.comp.Tick(e.now)
					e.ticks++
				}
			}
		}
		if dispatched {
			e.exec.ParallelCycles++
		}
		if fellBack {
			e.exec.SerialFallbackCycles++
		}
		if e.onCycleEnd != nil {
			e.onCycleEnd(e.now)
		}
	}
	e.now++
}

// runSection executes one parallel section. The lane groups are coarsened
// into nbatch contiguous batches sized by the section's awake density; with
// more than one batch and available pool workers the batches run
// concurrently under staging and the staged effects commit at the end in
// registration order. A single batch degenerates to the unstaged serial
// segment walk on the coordinator.
func (e *Engine) runSection(seg *segment, awake int) {
	e.ensureWorkers()
	nbatch := awake / e.batchGrain
	if nbatch < 1 {
		nbatch = 1
	}
	if nbatch > e.workers {
		nbatch = e.workers
	}
	if lim := e.spawned + 1; nbatch > lim {
		nbatch = lim
	}
	if nbatch > len(seg.groups) {
		nbatch = len(seg.groups)
	}
	e.exec.Sections++
	e.exec.Batches += uint64(nbatch)
	e.exec.LaneGroups += uint64(len(seg.groups))
	if nbatch == 1 {
		// One batch on the coordinator is the serial walk in disguise:
		// no concurrent writer exists, so staging would only buffer
		// scheduling effects to replay in the order they already occur.
		// Tick the segment's handles directly — the exact fallback loop —
		// and skip the staging flag, the dirty list, and the commit.
		for _, h := range e.handles[seg.start:seg.end] {
			if e.dense || !h.asleep {
				h.comp.Tick(e.now)
				e.ticks++
			}
		}
		return
	}
	e.staging = true
	sec := &e.sec
	sec.groups = seg.groups
	sec.nbatch = nbatch
	sec.now = e.now
	sec.next.Store(0)
	sec.ticks.Store(0)
	helpers := nbatch - 1
	e.exec.HelperDispatches += uint64(helpers)
	sec.wg.Add(helpers + 1)
	for i := 0; i < helpers; i++ {
		e.workCh <- sec
	}
	e.runSectionWork(sec)
	sec.wg.Wait()
	e.ticks += sec.ticks.Load()
	e.staging = false
	e.commitStaged()
}

// runSectionWork claims batches off the section until none remain. Both the
// coordinating goroutine and the pool workers run it. Batch b covers the
// contiguous lane-group range [b*G/nbatch, (b+1)*G/nbatch).
func (e *Engine) runSectionWork(sec *parSection) {
	var ticks uint64
	n := len(sec.groups)
	for {
		b := int(sec.next.Add(1)) - 1
		if b >= sec.nbatch {
			break
		}
		lo, hi := b*n/sec.nbatch, (b+1)*n/sec.nbatch
		for _, g := range sec.groups[lo:hi] {
			ticks += e.runGroup(g, sec.now)
		}
	}
	if ticks > 0 {
		sec.ticks.Add(ticks)
	}
	sec.wg.Done()
}

// runGroup ticks one lane's handles in registration order. A sleeping handle
// whose staged wake is due ticks this cycle (matching the serial schedule,
// where an earlier-registered producer's Wake is visible same-cycle); the
// consumed wake is CAS-cleared so a concurrent cross-lane storeMin is never
// lost, and flagged for commit to replay the wake against the settled state.
func (e *Engine) runGroup(g []*Handle, now Cycle) uint64 {
	var ticks uint64
	for _, h := range g {
		if h.asleep && !e.dense {
			w := h.pendingWake.Load()
			if Cycle(w) > now {
				continue
			}
			for !h.pendingWake.CompareAndSwap(w, uint64(NeverWake)) {
				w = h.pendingWake.Load()
			}
			h.wakeConsumed = true
			e.stageDirty(h)
		}
		h.comp.Tick(now)
		ticks++
	}
	return ticks
}

// stageDirty enrolls a handle in the section's commit list the first time it
// accumulates a staged effect. The list is sorted by registration index at
// commit, so only touched handles are walked instead of the whole machine.
func (e *Engine) stageDirty(h *Handle) {
	if h.dirty.CompareAndSwap(false, true) {
		e.dirty[e.dirtyN.Add(1)-1] = h
	}
}

// commitStaged replays the section's staged scheduling effects in
// registration order — exactly the order a serial run would have applied
// them. Per handle: a consumed wake first (the handle did tick, so it must
// end up awake unless it re-slept), then the owner's staged sleep, then any
// residual staged wake checked against the settled state.
func (e *Engine) commitStaged() {
	n := int(e.dirtyN.Load())
	if n == 0 {
		return
	}
	d := e.dirty[:n]
	slices.SortFunc(d, func(a, b *Handle) int { return a.idx - b.idx })
	for _, h := range d {
		if h.wakeConsumed {
			h.wakeConsumed = false
			h.Wake()
		}
		if h.hasPendingSleep {
			h.hasPendingSleep = false
			h.sleep(h.pendingSleep)
		}
		if w := h.pendingWake.Load(); w != uint64(NeverWake) {
			h.pendingWake.Store(uint64(NeverWake))
			if c := Cycle(w); c <= e.now {
				h.Wake()
			} else {
				h.WakeAt(c)
			}
		}
		h.dirty.Store(false)
	}
	e.exec.StagedCommits += uint64(n)
	e.dirtyN.Store(0)
}
