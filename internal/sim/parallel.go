// Parallel tick executor: multi-core execution of one simulation with a
// deterministic staged commit.
//
// Handles tagged with a lane (SetLane) are grouped into parallel sections —
// maximal runs of consecutive registrations carrying lane tags. Within a
// section, each lane's handles tick sequentially in registration order on one
// worker, and distinct lanes tick concurrently. Rule 1 of the kernel contract
// (consume only items with readyAt <= now) makes intra-cycle tick results
// order-independent, so the only cross-lane effects a tick may have are
// Wake/WakeAt calls; while a section runs (Engine.staging) those are staged
// per-handle and committed at the section barrier by a single registration-
// order walk, making the schedule — and therefore every statistic — byte-
// identical to a serial run. Untagged handles (routers, whose credit release
// has same-cycle visibility to later-registered neighbors) stay on the
// coordinating goroutine with unchanged serial semantics.
//
// Sections whose awake population is below the configured threshold fall back
// to the exact serial walk, so tiny configurations pay no barrier overhead.
package sim

import (
	"sync"
	"sync/atomic"
)

// DefaultParallelThreshold is the minimum number of awake handles a parallel
// section needs before it is dispatched to the worker pool; below it the
// per-section barrier costs more than the concurrency buys.
const DefaultParallelThreshold = 24

// storeMin atomically lowers *a to v (no-op when *a is already <= v). Wake
// times only ever decrease within a section, so a CAS loop suffices.
func storeMin(a *atomic.Uint64, v uint64) {
	for {
		old := a.Load()
		if old <= v || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// segment is a maximal run of consecutively registered handles that either
// all carry lane tags (parallel) or none do (serial).
type segment struct {
	start, end int // handle index range [start, end)
	parallel   bool
	// groups holds the segment's handles bucketed by lane (ascending lane
	// order, registration order within a lane); nil for serial segments.
	groups [][]*Handle
}

// parSection is the per-dispatch work descriptor shared with the worker pool.
// The engine reuses a single instance (Engine.sec) across cycles.
type parSection struct {
	groups []([]*Handle)
	next   atomic.Int64  // index of the next unclaimed group
	ticks  atomic.Uint64 // ticks executed across all groups
	now    Cycle
	wg     sync.WaitGroup
}

// SetParallel enables the parallel executor with the given worker count and
// awake-set threshold (0 selects DefaultParallelThreshold). workers <= 1
// keeps the serial path. Must be called before the first Step.
func (e *Engine) SetParallel(workers, threshold int) {
	e.workers = workers
	if threshold <= 0 {
		threshold = DefaultParallelThreshold
	}
	e.threshold = threshold
}

// Parallel returns the configured worker count (0 or 1 means serial).
func (e *Engine) Parallel() int { return e.workers }

// SetOnCycleEnd installs a hook that runs on the coordinating goroutine at
// the end of every parallel-mode cycle, after all sections have committed.
// The engine uses it to drain per-lane deferred statistics in lane order.
func (e *Engine) SetOnCycleEnd(fn func(now Cycle)) { e.onCycleEnd = fn }

// Close shuts down the worker pool. Safe to call multiple times and on
// engines that never went parallel. The engine must not Step afterwards.
func (e *Engine) Close() {
	if e.workCh != nil {
		close(e.workCh)
		e.workCh = nil
	}
}

// ensureWorkers lazily spawns the worker pool: workers-1 helper goroutines
// plus the coordinating goroutine itself make up the configured parallelism.
func (e *Engine) ensureWorkers() {
	if e.workCh != nil {
		return
	}
	e.workCh = make(chan *parSection, e.workers)
	for i := 0; i < e.workers-1; i++ {
		go e.worker()
	}
}

func (e *Engine) worker() {
	for sec := range e.workCh {
		e.runSectionWork(sec)
	}
}

// buildSegments recomputes the segment list from the handles' lane tags.
func (e *Engine) buildSegments() {
	e.segs = e.segs[:0]
	for i := 0; i < len(e.handles); {
		par := e.handles[i].lane >= 0
		j := i + 1
		for j < len(e.handles) && (e.handles[j].lane >= 0) == par {
			j++
		}
		seg := segment{start: i, end: j, parallel: par}
		if par {
			maxLane := 0
			for _, h := range e.handles[i:j] {
				if h.lane > maxLane {
					maxLane = h.lane
				}
			}
			groups := make([][]*Handle, maxLane+1)
			for _, h := range e.handles[i:j] {
				groups[h.lane] = append(groups[h.lane], h)
			}
			for _, g := range groups {
				if len(g) > 0 {
					seg.groups = append(seg.groups, g)
				}
			}
		}
		e.segs = append(e.segs, seg)
		i = j
	}
	e.segsDirty = false
}

// sectionAwake counts the handles of seg that would tick this cycle.
func (e *Engine) sectionAwake(seg *segment) int {
	if e.dense {
		return seg.end - seg.start
	}
	n := 0
	for _, h := range e.handles[seg.start:seg.end] {
		if !h.asleep {
			n++
		}
	}
	return n
}

// stepParallel is Step for engines with workers >= 2 and lane-tagged handles.
// Serial segments and below-threshold parallel segments execute exactly the
// serial walk, so any mix of dispatched and fallen-back sections remains
// byte-identical to a fully serial run.
func (e *Engine) stepParallel() {
	if !e.dense {
		for len(e.wheap) > 0 && e.wheap[0].wakeAt <= e.now {
			h := e.wheap[0]
			e.heapRemove(0)
			h.asleep = false
			h.wakeAt = NeverWake
			e.asleepCount--
		}
	}
	if e.dense || e.asleepCount < len(e.handles) {
		if e.segsDirty {
			e.buildSegments()
		}
		for i := range e.segs {
			seg := &e.segs[i]
			if seg.parallel && len(seg.groups) > 1 && e.sectionAwake(seg) >= e.threshold {
				e.runSection(seg)
				continue
			}
			for _, h := range e.handles[seg.start:seg.end] {
				if e.dense || !h.asleep {
					h.comp.Tick(e.now)
					e.ticks++
				}
			}
		}
		if e.onCycleEnd != nil {
			e.onCycleEnd(e.now)
		}
	}
	e.now++
}

// runSection dispatches one parallel section to the worker pool and blocks
// until every lane has ticked, then commits the staged effects in
// registration order.
func (e *Engine) runSection(seg *segment) {
	e.ensureWorkers()
	sec := &e.sec
	sec.groups = seg.groups
	sec.now = e.now
	sec.next.Store(0)
	sec.ticks.Store(0)
	helpers := e.workers - 1
	if max := len(seg.groups) - 1; helpers > max {
		helpers = max
	}
	e.staging = true
	sec.wg.Add(helpers + 1)
	for i := 0; i < helpers; i++ {
		e.workCh <- sec
	}
	e.runSectionWork(sec)
	sec.wg.Wait()
	e.staging = false
	e.ticks += sec.ticks.Load()
	e.commitStaged()
}

// runSectionWork claims lane groups off the section until none remain. Both
// the coordinating goroutine and the pool workers run it.
func (e *Engine) runSectionWork(sec *parSection) {
	var ticks uint64
	for {
		i := int(sec.next.Add(1)) - 1
		if i >= len(sec.groups) {
			break
		}
		ticks += e.runGroup(sec.groups[i], sec.now)
	}
	if ticks > 0 {
		sec.ticks.Add(ticks)
	}
	sec.wg.Done()
}

// runGroup ticks one lane's handles in registration order. A sleeping handle
// whose staged wake is due ticks this cycle (matching the serial schedule,
// where an earlier-registered producer's Wake is visible same-cycle); the
// consumed wake is CAS-cleared so a concurrent cross-lane storeMin is never
// lost, and flagged for commit to replay the wake against the settled state.
func (e *Engine) runGroup(g []*Handle, now Cycle) uint64 {
	var ticks uint64
	for _, h := range g {
		if h.asleep && !e.dense {
			w := h.pendingWake.Load()
			if Cycle(w) > now {
				continue
			}
			for !h.pendingWake.CompareAndSwap(w, uint64(NeverWake)) {
				w = h.pendingWake.Load()
			}
			h.wakeConsumed = true
		}
		h.comp.Tick(now)
		ticks++
	}
	return ticks
}

// commitStaged replays the section's staged scheduling effects in
// registration order — exactly the order a serial run would have applied
// them. Per handle: a consumed wake first (the handle did tick, so it must
// end up awake unless it re-slept), then the owner's staged sleep, then any
// residual staged wake checked against the settled state.
func (e *Engine) commitStaged() {
	for _, h := range e.handles {
		if h.wakeConsumed {
			h.wakeConsumed = false
			h.Wake()
		}
		if h.hasPendingSleep {
			h.hasPendingSleep = false
			h.sleep(h.pendingSleep)
		}
		if w := h.pendingWake.Load(); w != uint64(NeverWake) {
			h.pendingWake.Store(uint64(NeverWake))
			if c := Cycle(w); c <= e.now {
				h.Wake()
			} else {
				h.WakeAt(c)
			}
		}
	}
}
