package sim

import (
	"reflect"
	"testing"
)

// TestStagedCommitMergeOrder pins the staged-commit contract: effects staged
// during a parallel section apply at commit against the settled state, in
// registration order, with the serial ordering rules — a wake consumed by a
// live tick replays first, then the owner's sleep, then residual wakes.
func TestStagedCommitMergeOrder(t *testing.T) {
	eng := NewEngine(0, 0)
	var hs []*Handle
	for i := 0; i < 4; i++ {
		h := eng.Register(TickFunc(func(Cycle) {}))
		h.SetLane(i)
		hs = append(hs, h)
	}
	for _, h := range hs {
		h.Sleep()
	}

	eng.staging = true
	hs[2].Wake()    // immediate wake staged from another lane
	hs[0].WakeAt(5) // future wake staged
	hs[1].Sleep()   // owner re-affirms sleep; no wake staged
	hs[3].Sleep()   // owner sleeps...
	hs[3].Wake()    // ...but a later-registered producer wakes it same cycle
	eng.staging = false
	eng.commitStaged()

	if hs[2].asleep {
		t.Error("staged Wake did not wake the handle at commit")
	}
	if !hs[0].asleep || hs[0].wakeAt != 5 {
		t.Errorf("staged WakeAt(5) produced (asleep=%v, wakeAt=%d), want scheduled wake at 5",
			hs[0].asleep, hs[0].wakeAt)
	}
	if !hs[1].asleep {
		t.Error("handle with only a staged sleep ended up awake")
	}
	// Serial semantics: the owner slept during its tick, then the wake from a
	// later-registered component landed — the handle must end the cycle awake.
	if hs[3].asleep {
		t.Error("residual wake after staged sleep did not win (commit applied them out of order)")
	}
}

// TestStagedWakeSurvivesStagedSleep covers the barrier last-arriver shape: a
// component stages its own sleep, and the same section stages a wake for it.
// The unconditional staging in Wake/WakeAt (no awake fast-path) is what keeps
// the wake from being dropped against the handle's pre-section awake state.
func TestStagedWakeSurvivesStagedSleep(t *testing.T) {
	eng := NewEngine(0, 0)
	h := eng.Register(TickFunc(func(Cycle) {}))
	h.SetLane(0)
	// Awake going into the section (it ticks, then parks).
	eng.staging = true
	h.Sleep()
	h.WakeAt(eng.now) // producer in another lane hands over work
	eng.staging = false
	eng.commitStaged()
	if h.asleep {
		t.Error("wake staged while the target was still (pre-section) awake was lost")
	}
}

// TestConsumedWakeReplay checks the live-wake path: a sleeping handle whose
// staged wake is due ticks within the section (same-lane registration-order
// visibility), and commit materializes the awake state even though the wake
// was consumed before the tick.
func TestConsumedWakeReplay(t *testing.T) {
	eng := NewEngine(0, 0)
	eng.SetParallel(2, 1)
	var producerTicked, consumerTicked []Cycle
	var consumer *Handle
	producer := eng.Register(TickFunc(func(now Cycle) {
		producerTicked = append(producerTicked, now)
		consumer.Wake()
		eng.Progress()
	}))
	consumer = eng.Register(TickFunc(func(now Cycle) {
		consumerTicked = append(consumerTicked, now)
	}))
	// Same lane: the consumer must see the earlier-registered producer's wake
	// in the same cycle, exactly as the serial walk would deliver it.
	producer.SetLane(0)
	consumer.SetLane(0)
	consumer.Sleep()
	eng.Step()
	defer eng.Close()
	if len(consumerTicked) != 1 || consumerTicked[0] != 0 {
		t.Fatalf("consumer ticks = %v, want a same-cycle tick at 0", consumerTicked)
	}
	// The consumer did not re-sleep during its tick, so it must be awake.
	if consumer.asleep {
		t.Error("consumer asleep after consuming a wake and not re-sleeping")
	}
}

// The synthetic system below mirrors the real machine's structure — and
// thereby the kernel's quiescence contract: lane-tagged endpoints exchange
// readyAt-stamped items through a serial bus (the router analogue), consume
// only matured items (rule 1), treat spurious ticks as no-ops, and sleep
// exactly when every tick until the next maturation would be a no-op. Under
// that contract the serial and parallel schedules must record identical
// delivery traces.

// msgItem is one in-flight synthetic message.
type msgItem struct {
	dst     int
	ttl     int
	readyAt Cycle
}

// epComp is a lane-tagged endpoint: it consumes matured inbox items,
// forwards items with remaining ttl through the bus, and quiesces.
type epComp struct {
	id  int
	n   int
	h   *Handle
	eng *Engine
	bus *busComp
	// inQ is written only by the bus (serial segment); outQ only by this
	// endpoint (its own lane) and drained by the bus.
	inQ, outQ []msgItem
	log       []Cycle // cycle of every delivery, in consumption order
}

func (e *epComp) Tick(now Cycle) {
	kept := e.inQ[:0]
	for _, it := range e.inQ {
		if it.readyAt > now {
			kept = append(kept, it)
			continue
		}
		e.log = append(e.log, now)
		e.eng.Progress()
		if it.ttl > 0 {
			e.outQ = append(e.outQ, msgItem{dst: (e.id*7 + it.ttl*3 + 1) % e.n, ttl: it.ttl - 1})
			e.bus.h.Wake()
		}
	}
	e.inQ = kept
	if len(e.inQ) == 0 {
		e.h.Sleep()
		return
	}
	min := e.inQ[0].readyAt
	for _, it := range e.inQ[1:] {
		if it.readyAt < min {
			min = it.readyAt
		}
	}
	e.h.SleepUntil(min)
}

// busComp is the serial transport: it moves endpoint output to destination
// inboxes with a 2-cycle delay, waking each destination for the maturation
// cycle.
type busComp struct {
	h   *Handle
	eng *Engine
	eps []*epComp
}

func (b *busComp) Tick(now Cycle) {
	idle := true
	for _, src := range b.eps {
		for _, it := range src.outQ {
			it.readyAt = now + 2
			dst := b.eps[it.dst]
			dst.inQ = append(dst.inQ, it)
			dst.h.WakeAt(it.readyAt)
			idle = false
		}
		src.outQ = src.outQ[:0]
	}
	if idle {
		b.h.Sleep()
	} else {
		b.eng.Progress()
	}
}

// buildBusSystem wires n endpoints (lane i each) and the serial bus, seeding
// every endpoint with one self-addressed item of the given ttl. Total
// deliveries at quiescence: n * (ttl + 1).
func buildBusSystem(eng *Engine, n, ttl int) ([]*epComp, *busComp) {
	bus := &busComp{eng: eng}
	eps := make([]*epComp, n)
	for i := range eps {
		eps[i] = &epComp{id: i, n: n, eng: eng, bus: bus}
		eps[i].inQ = append(eps[i].inQ, msgItem{dst: i, ttl: ttl})
	}
	bus.eps = eps
	for i, e := range eps {
		e.h = eng.Register(e)
		e.h.SetLane(i)
	}
	bus.h = eng.Register(bus) // serial, after the endpoints — like routers
	return eps, bus
}

// TestParallelMatchesSerialSchedule runs an identical synthetic system on
// the serial and parallel kernels and requires every endpoint's delivery
// trace — which cycle consumed which message — to match exactly.
func TestParallelMatchesSerialSchedule(t *testing.T) {
	const n, ttl = 8, 50
	want := n * (ttl + 1)
	run := func(eng *Engine) []*epComp {
		eps, _ := buildBusSystem(eng, n, ttl)
		delivered := func() int {
			total := 0
			for _, e := range eps {
				total += len(e.log)
			}
			return total
		}
		if _, err := eng.Run(func() bool { return delivered() >= want }); err != nil {
			t.Fatal(err)
		}
		return eps
	}
	serial := run(NewEngine(10_000, 0))
	parEng := NewEngine(10_000, 0)
	parEng.SetParallel(4, 1)
	defer parEng.Close()
	par := run(parEng)
	for i := range serial {
		if !reflect.DeepEqual(serial[i].log, par[i].log) {
			t.Errorf("endpoint %d delivery trace diverged:\nserial:   %v\nparallel: %v",
				i, serial[i].log, par[i].log)
		}
	}
}

// TestParallelThresholdFallback: below the awake-set threshold the engine
// must take the serial fallback and never spawn workers.
func TestParallelThresholdFallback(t *testing.T) {
	eng := NewEngine(10_000, 0)
	eng.SetParallel(4, 1000) // unreachable threshold
	eps, _ := buildBusSystem(eng, 4, 20)
	for eng.Now() < 500 {
		eng.Step()
	}
	if eng.workCh != nil {
		t.Error("worker pool spawned despite every section falling below the threshold")
	}
	total := 0
	for _, e := range eps {
		total += len(e.log)
	}
	if want := 4 * 21; total != want {
		t.Fatalf("fallback path delivered %d messages, want %d", total, want)
	}
	eng.Close() // must be a no-op without a pool
}
