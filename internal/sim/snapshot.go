package sim

import (
	"fmt"

	"pushmulticast/internal/snapshot"
)

// SaveState serializes the engine's scheduling state: clock, tick and
// progress counters, executor counters, and each handle's asleep/wake-at
// pair. It must be called between Steps (never from inside a tick), when no
// parallel section is staging.
func (e *Engine) SaveState(w *snapshot.Writer) {
	if e.staging {
		panic("sim: SaveState during a parallel section")
	}
	w.Section("sim.engine")
	w.U64(uint64(e.now))
	w.U64(e.ticks)
	w.U64(e.lastProgress.Load())
	w.U64(e.exec.Cycles)
	w.U64(e.exec.ParallelCycles)
	w.U64(e.exec.Sections)
	w.U64(e.exec.Batches)
	w.U64(e.exec.LaneGroups)
	w.U64(e.exec.HelperDispatches)
	w.U64(e.exec.SerialFallbackCycles)
	w.U64(e.exec.StagedCommits)
	w.Int(len(e.handles))
	for _, h := range e.handles {
		w.Bool(h.asleep)
		w.U64(uint64(h.wakeAt))
	}
}

// LoadState restores the scheduling state saved by SaveState into a freshly
// built engine whose handles are all still awake (the post-Register state).
// Sleeping handles are put to sleep directly — bypassing Handle.sleep's
// "wake instead when due next cycle" shortcut, which would mis-restore a
// component that was legitimately asleep until now+1 — and pushed onto the
// wake heap. The parallel executor's per-segment awake counters need no
// repair: a fresh engine has segsDirty set, so the first parallel Step
// rebuilds them from the restored asleep flags.
func (e *Engine) LoadState(r *snapshot.Reader) error {
	r.Section("sim.engine")
	e.now = Cycle(r.U64())
	e.ticks = r.U64()
	e.lastProgress.Store(r.U64())
	e.exec.Cycles = r.U64()
	e.exec.ParallelCycles = r.U64()
	e.exec.Sections = r.U64()
	e.exec.Batches = r.U64()
	e.exec.LaneGroups = r.U64()
	e.exec.HelperDispatches = r.U64()
	e.exec.SerialFallbackCycles = r.U64()
	e.exec.StagedCommits = r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(e.handles) {
		return fmt.Errorf("%w: snapshot has %d components, this build registered %d",
			snapshot.ErrMismatch, n, len(e.handles))
	}
	// Normalize to the all-awake state first: some components sleep during
	// their build-time registration (the checker sleeps until its first
	// scan), and applying the snapshot on top of that would corrupt the
	// asleep count and the wake heap.
	for _, h := range e.handles {
		h.asleep = false
		h.wakeAt = NeverWake
		h.heapPos = -1
	}
	for i := range e.wheap {
		e.wheap[i] = nil
	}
	e.wheap = e.wheap[:0]
	e.asleepCount = 0
	for _, h := range e.handles {
		asleep := r.Bool()
		wakeAt := Cycle(r.U64())
		if !asleep {
			continue // handles start awake after Register
		}
		h.asleep = true
		e.asleepCount++
		h.wakeAt = wakeAt
		if wakeAt != NeverWake {
			e.heapPush(h)
		}
	}
	e.segsDirty = true
	return r.Err()
}
