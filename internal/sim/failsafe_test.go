package sim

import (
	"errors"
	"testing"
)

// futureSleeper reschedules itself to one fixed future cycle on every tick
// — the shape of a component that keeps scheduling wakes without the
// simulation ever finishing.
type futureSleeper struct {
	h  *Handle
	at Cycle
}

func (s *futureSleeper) Tick(now Cycle) { s.h.SleepUntil(s.at) }

// idler sleeps unconditionally.
type idler struct{ h *Handle }

func (s *idler) Tick(now Cycle) { s.h.Sleep() }

// TestFailsafeCeilingWhenLimitsDisabled: NewEngine(0, 0) disables both the
// watchdog and the explicit cycle limit; without the failsafe, Run on a
// system that keeps scheduling wakes but never finishes would fast-forward
// wake to wake forever. The engine must instead apply FailsafeMaxCycles
// and fail with ErrMaxCycles.
func TestFailsafeCeilingWhenLimitsDisabled(t *testing.T) {
	eng := NewEngine(0, 0)
	s := &futureSleeper{at: FailsafeMaxCycles + 5}
	s.h = eng.Register(s)
	end, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("Run = (%d, %v), want ErrMaxCycles", end, err)
	}
	if end < FailsafeMaxCycles {
		t.Fatalf("run ended at cycle %d, before the failsafe ceiling %d", end, FailsafeMaxCycles)
	}
}

// TestFailsafeBoundsFullyIdleRun: with both limits disabled and every
// component asleep with no scheduled wake, fast-forward has no wake to
// jump to; the failsafe ceiling must still bound the run instead of
// reporting an unrecoverable spin.
func TestFailsafeBoundsFullyIdleRun(t *testing.T) {
	eng := NewEngine(0, 0)
	s := &idler{}
	s.h = eng.Register(s)
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("Run error = %v, want ErrMaxCycles", err)
	}
}

// TestExplicitLimitsNotOverridden: the failsafe applies only when *both*
// limits are disabled. An explicit cycle limit fires at its own value, and
// a watchdog alone still detects the no-progress spin.
func TestExplicitLimitsNotOverridden(t *testing.T) {
	eng := NewEngine(0, 1000)
	s := &futureSleeper{at: 5000}
	s.h = eng.Register(s)
	end, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("Run error = %v, want ErrMaxCycles", err)
	}
	if end > 1001 {
		t.Fatalf("explicit limit 1000 overridden: run ended at %d", end)
	}

	eng = NewEngine(50, 0)
	s2 := &futureSleeper{at: 1 << 30}
	s2.h = eng.Register(s2)
	end, err = eng.Run(func() bool { return false })
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("watchdog-only run error = %v, want ErrDeadlock", err)
	}
	if end > 200 {
		t.Fatalf("watchdog 50 fired at cycle %d, far beyond its window", end)
	}
}
