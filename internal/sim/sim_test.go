package sim

import (
	"errors"
	"testing"
)

func TestEngineStepsAndOrder(t *testing.T) {
	eng := NewEngine(0, 0)
	var order []int
	eng.Register(TickFunc(func(now Cycle) { order = append(order, 1) }))
	eng.Register(TickFunc(func(now Cycle) { order = append(order, 2) }))
	eng.Step()
	eng.Step()
	if len(order) != 4 || order[0] != 1 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("tick order wrong: %v", order)
	}
	if eng.Now() != 2 {
		t.Fatalf("Now = %d, want 2", eng.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine(0, 0)
	count := 0
	eng.Register(TickFunc(func(now Cycle) { count++; eng.Progress() }))
	end, err := eng.Run(func() bool { return count >= 10 })
	if err != nil || end != 10 {
		t.Fatalf("end=%d err=%v", end, err)
	}
}

func TestEngineDeadlockDetection(t *testing.T) {
	eng := NewEngine(50, 0)
	eng.Register(TickFunc(func(now Cycle) {}))
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestEngineProgressDefersWatchdog(t *testing.T) {
	eng := NewEngine(50, 0)
	n := 0
	eng.Register(TickFunc(func(now Cycle) {
		n++
		if n < 200 {
			eng.Progress()
		}
	}))
	_, err := eng.Run(func() bool { return n >= 400 })
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock after progress stops", err)
	}
	if n < 200 {
		t.Fatalf("watchdog fired too early at n=%d", n)
	}
}

func TestEngineMaxCycles(t *testing.T) {
	eng := NewEngine(0, 25)
	eng.Register(TickFunc(func(now Cycle) { eng.Progress() }))
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestEngineFinishedImmediately(t *testing.T) {
	eng := NewEngine(1, 1)
	end, err := eng.Run(func() bool { return true })
	if err != nil || end != 0 {
		t.Fatalf("end=%d err=%v, want 0,nil", end, err)
	}
}

func TestWakeHeapTieBreaksOnRegistrationOrder(t *testing.T) {
	eng := NewEngine(0, 0)
	var hs []*Handle
	for i := 0; i < 5; i++ {
		hs = append(hs, eng.Register(TickFunc(func(Cycle) {})))
	}
	// Insert in reverse registration order so heap arrival order cannot mask
	// a broken tie-break.
	for i := len(hs) - 1; i >= 0; i-- {
		hs[i].SleepUntil(10)
	}
	for want := 0; want < len(hs); want++ {
		if got := eng.wheap[0].idx; got != want {
			t.Fatalf("heap pop %d: got handle idx %d", want, got)
		}
		eng.heapRemove(0)
	}
}

func TestWakeHeapOrdersByWakeCycleThenIndex(t *testing.T) {
	eng := NewEngine(0, 0)
	var hs []*Handle
	for i := 0; i < 6; i++ {
		hs = append(hs, eng.Register(TickFunc(func(Cycle) {})))
	}
	wakes := []Cycle{30, 10, 30, 20, 10, 20}
	for i, h := range hs {
		h.SleepUntil(wakes[i])
	}
	// Expected pop order: primary key wakeAt ascending, ties by idx ascending.
	want := []int{1, 4, 3, 5, 0, 2}
	for k, wi := range want {
		h := eng.wheap[0]
		if h.idx != wi || h.wakeAt != wakes[wi] {
			t.Fatalf("pop %d: got (idx=%d, at=%d), want (idx=%d, at=%d)",
				k, h.idx, h.wakeAt, wi, wakes[wi])
		}
		eng.heapRemove(0)
	}
}

func TestSleepUntilSkipsIdleCycles(t *testing.T) {
	eng := NewEngine(0, 0)
	var at []Cycle
	var h *Handle
	h = eng.Register(TickFunc(func(now Cycle) {
		at = append(at, now)
		eng.Progress()
		if now < 100 {
			h.SleepUntil(now + 10)
		}
	}))
	end, err := eng.Run(func() bool { return len(at) > 0 && at[len(at)-1] >= 100 })
	if err != nil {
		t.Fatal(err)
	}
	if end != 101 {
		t.Fatalf("end = %d, want 101", end)
	}
	if len(at) != 11 {
		t.Fatalf("ticked %d times, want 11 (every 10th cycle): %v", len(at), at)
	}
	for i, c := range at {
		if c != Cycle(i*10) {
			t.Fatalf("tick %d at cycle %d, want %d", i, c, i*10)
		}
	}
	if eng.Ticks() != 11 {
		t.Fatalf("Ticks = %d, want 11", eng.Ticks())
	}
}

func TestWakeAtEarlierOverridesLater(t *testing.T) {
	eng := NewEngine(0, 0)
	var at []Cycle
	h := eng.Register(TickFunc(func(now Cycle) { at = append(at, now); eng.Progress() }))
	h.Sleep()
	h.WakeAt(50)
	h.WakeAt(80) // later than the scheduled wake: must not delay it
	h.WakeAt(30) // earlier: must pull the wake forward
	end, err := eng.Run(func() bool { return len(at) >= 1 })
	if err != nil {
		t.Fatal(err)
	}
	if at[0] != 30 || end != 31 {
		t.Fatalf("first tick at %d (end %d), want 30 (31)", at[0], end)
	}
}

func TestWakeCancelsScheduledWake(t *testing.T) {
	eng := NewEngine(0, 0)
	h := eng.Register(TickFunc(func(Cycle) {}))
	h.SleepUntil(100)
	if !h.asleep || len(eng.wheap) != 1 {
		t.Fatalf("SleepUntil did not enqueue: asleep=%v heap=%d", h.asleep, len(eng.wheap))
	}
	h.Wake()
	if h.asleep || len(eng.wheap) != 0 {
		t.Fatalf("Wake left stale state: asleep=%v heap=%d", h.asleep, len(eng.wheap))
	}
}

func TestSleepUntilNextCycleStaysAwake(t *testing.T) {
	eng := NewEngine(0, 0)
	h := eng.Register(TickFunc(func(Cycle) {}))
	// Waking at now+1 skips no ticks, so the handle stays awake rather than
	// paying for a heap round-trip.
	h.SleepUntil(1)
	if h.asleep || len(eng.wheap) != 0 {
		t.Fatalf("next-cycle sleep should stay awake: asleep=%v heap=%d", h.asleep, len(eng.wheap))
	}
}

func TestDenseModeIgnoresQuiescence(t *testing.T) {
	eng := NewEngine(0, 0)
	eng.SetDense(true)
	n := 0
	h := eng.Register(TickFunc(func(Cycle) { n++ }))
	h.Sleep()
	eng.Step()
	eng.Step()
	if n != 2 {
		t.Fatalf("dense mode ticked %d times over 2 steps, want 2", n)
	}
	if eng.Ticks() != 2 {
		t.Fatalf("Ticks = %d, want 2", eng.Ticks())
	}
}
