package sim

import (
	"errors"
	"testing"
)

func TestEngineStepsAndOrder(t *testing.T) {
	eng := NewEngine(0, 0)
	var order []int
	eng.Register(TickFunc(func(now Cycle) { order = append(order, 1) }))
	eng.Register(TickFunc(func(now Cycle) { order = append(order, 2) }))
	eng.Step()
	eng.Step()
	if len(order) != 4 || order[0] != 1 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("tick order wrong: %v", order)
	}
	if eng.Now() != 2 {
		t.Fatalf("Now = %d, want 2", eng.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine(0, 0)
	count := 0
	eng.Register(TickFunc(func(now Cycle) { count++; eng.Progress() }))
	end, err := eng.Run(func() bool { return count >= 10 })
	if err != nil || end != 10 {
		t.Fatalf("end=%d err=%v", end, err)
	}
}

func TestEngineDeadlockDetection(t *testing.T) {
	eng := NewEngine(50, 0)
	eng.Register(TickFunc(func(now Cycle) {}))
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestEngineProgressDefersWatchdog(t *testing.T) {
	eng := NewEngine(50, 0)
	n := 0
	eng.Register(TickFunc(func(now Cycle) {
		n++
		if n < 200 {
			eng.Progress()
		}
	}))
	_, err := eng.Run(func() bool { return n >= 400 })
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock after progress stops", err)
	}
	if n < 200 {
		t.Fatalf("watchdog fired too early at n=%d", n)
	}
}

func TestEngineMaxCycles(t *testing.T) {
	eng := NewEngine(0, 25)
	eng.Register(TickFunc(func(now Cycle) { eng.Progress() }))
	_, err := eng.Run(func() bool { return false })
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestEngineFinishedImmediately(t *testing.T) {
	eng := NewEngine(1, 1)
	end, err := eng.Run(func() bool { return true })
	if err != nil || end != 0 {
		t.Fatalf("end=%d err=%v, want 0,nil", end, err)
	}
}
