// Package pushmulticast is the public API of the Push Multicast simulator, a
// Go reproduction of "Push Multicast: A Speculative and Coherent
// Interconnect for Mitigating Manycore CPU Communication Bottleneck"
// (HPCA 2025).
//
// The package wraps the internal simulator substrates (cycle engine, mesh
// NoC with the coherent in-network filter, MSI coherence with the PushAck
// and OrdPush extensions, cache hierarchy, core model, prefetchers, and
// workload generators) behind three things:
//
//   - configuration: Default16/Default64 plus the scheme constructors
//     (Baseline, Coalesce, MSP, PushAck, OrdPush, and the Fig 20 ablations);
//   - execution: Run / RunWorkload, returning Results;
//   - the experiment harness: one FigNN function per figure of the paper's
//     evaluation, each regenerating the corresponding table of numbers.
//
// A minimal use:
//
//	cfg := pushmulticast.Default16().WithScheme(pushmulticast.OrdPush())
//	res, err := pushmulticast.Run(cfg, "cachebw", pushmulticast.ScaleQuick)
package pushmulticast

import (
	"context"
	"fmt"
	"strings"

	"pushmulticast/internal/config"
	"pushmulticast/internal/core"
	"pushmulticast/internal/fault"
	"pushmulticast/internal/noc"
	"pushmulticast/internal/sim"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// Config is the full machine configuration (Table I). See Default16 and
// Default64 for the paper's presets.
type Config = config.System

// Scheme is one evaluated design point (baseline, Push Multicast variant,
// or ablation).
type Scheme = config.Scheme

// Results bundles one run's execution time and counters.
type Results = core.Results

// ExecStats is the parallel executor's scheduling-work record carried in
// Results.Exec: sections dispatched, batch claims, and cross-goroutine
// handoffs (each a barrier-crossing scheduling operation), plus the
// serial-fallback cycle count. Zero for serial runs.
type ExecStats = sim.ExecStats

// Stats is the counter bundle inside Results.
type Stats = stats.All

// Workload is a named access-stream generator.
type Workload = workload.Workload

// Scale selects input sizing for workload generators.
type Scale = workload.Scale

// Input scales. Quick preserves the paper's working-set-to-cache ratios at
// a fraction of the cost when paired with ScaledConfig; Full uses unscaled
// Table I caches.
const (
	ScaleTiny  = workload.ScaleTiny
	ScaleQuick = workload.ScaleQuick
	ScaleFull  = workload.ScaleFull
)

// Default16 returns the Table I 16-core (4x4 mesh) configuration.
func Default16() Config { return config.Default16() }

// Default64 returns the Table I 64-core (8x8 mesh) configuration.
func Default64() Config { return config.Default64() }

// Default256 returns the scaled-up 256-core (16x16 mesh) configuration used
// by the manycore scaling studies.
func Default256() Config { return config.Default256() }

// ScaledConfig shrinks the configuration's caches by the standard quick-run
// factor so ScaleQuick inputs exert the same pressure full inputs exert on
// the full caches.
func ScaledConfig(cfg Config) Config { return cfg.Scaled(16) }

// Scheme constructors (see config package for details).
func Baseline() Scheme   { return config.Baseline() }
func NoPrefetch() Scheme { return config.NoPrefetch() }
func Coalesce() Scheme   { return config.Coalesce() }
func MSP() Scheme        { return config.MSP() }
func PushAck() Scheme    { return config.PushAck() }
func OrdPush() Scheme    { return config.OrdPush() }

// Fig 20 ablation lattice.
func AblationPush() Scheme                { return config.AblationPush() }
func AblationPushMulticast() Scheme       { return config.AblationPushMulticast() }
func AblationPushMulticastFilter() Scheme { return config.AblationPushMulticastFilter() }
func AblationFull() Scheme                { return config.AblationFull() }

// SchemeByName resolves a scheme by its result-row name (case-insensitive;
// "baseline" is accepted as an alias of the prefetching baseline). The
// pushsim CLI and the simd campaign service both resolve user-supplied
// scheme names through it; unknown names get a one-line diagnostic listing
// nothing — the caller's context already names the offender.
func SchemeByName(name string) (Scheme, error) {
	all := []Scheme{
		Baseline(), NoPrefetch(), Coalesce(), MSP(), PushAck(), OrdPush(),
		AblationPush(), AblationPushMulticast(), AblationPushMulticastFilter(),
		PushPrefetch(), PredictivePush(), DeepPush(),
	}
	for _, s := range all {
		if strings.EqualFold(s.Name, name) ||
			(strings.EqualFold(name, "baseline") && s.Name == "L1Bingo-L2Stride") {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("unknown scheme %q", name)
}

// Fault-injection surface (see internal/fault for the determinism and
// graceful-degradation contracts).

// FaultPlan is a seeded, deterministic fault schedule. Set Config.Faults (or
// ExpOptions.Faults) to enable injection for a run or campaign.
type FaultPlan = fault.Plan

// Fault is one scheduled fault window inside a FaultPlan.
type Fault = fault.Fault

// FaultKind selects the injected failure mode.
type FaultKind = fault.Kind

// Fault kinds.
const (
	FaultLinkStall  = fault.LinkStall
	FaultRouterSlow = fault.RouterSlow
	FaultVCJitter   = fault.VCJitter
	FaultInjSpike   = fault.InjSpike
	FaultFilterDrop = fault.FilterDrop
	FaultMsgDrop    = fault.MsgDrop
	FaultMsgDup     = fault.MsgDup
	FaultMsgCorrupt = fault.MsgCorrupt
)

// MaxLossPerMille is the highest per-mille message-loss rate for which the
// forward-progress contract holds: at or below it, every run completes with
// correct results; above it, a run may abort loudly with ErrUnrecoverable.
const MaxLossPerMille = fault.MaxLossPerMille

// ErrUnrecoverable is reported (wrapped, test with errors.Is) when a lossy
// run exceeds the recovery layer's retry budget: a message stayed unacked
// through MaxRetries retransmissions. The run aborts with a trace tail
// instead of hanging.
var ErrUnrecoverable = noc.ErrUnrecoverable

// GenerateFaultPlan derives a reproducible random fault plan for a machine
// with the given tile count. intensity in [0,1] scales both the number of
// faults and their outage durations; 0 yields an empty plan.
func GenerateFaultPlan(tiles int, seed uint64, intensity float64) FaultPlan {
	return fault.GeneratePlan(tiles, seed, intensity)
}

// GenerateLossyPlan builds a whole-run lossy-interconnect plan: every tile's
// NI drops arriving messages at ratePerMille/1000 probability, and
// duplicates and corrupts them at half that rate each. The NoC's end-to-end
// recovery layer (sequence numbers, acks, bounded retransmit windows) is
// armed automatically and the run's results are unaffected by the loss —
// only slower. Rates above MaxLossPerMille void the forward-progress
// contract: runs may fail with ErrUnrecoverable.
func GenerateLossyPlan(tiles int, seed uint64, ratePerMille int) FaultPlan {
	return fault.GenerateLossyPlan(tiles, seed, ratePerMille)
}

// Stream-building surface for user-defined workloads.

// Op is one operation of a core's instruction stream.
type Op = workload.Op

// Stream produces a core's operation sequence.
type Stream = workload.Stream

// StreamFunc adapts a function to Stream.
type StreamFunc = workload.StreamFunc

// Stream operation kinds.
const (
	OpWork    = workload.OpWork
	OpLoad    = workload.OpLoad
	OpStore   = workload.OpStore
	OpBarrier = workload.OpBarrier
	OpEnd     = workload.OpEnd
)

// SharedBase is the base address of the shared data segment used by the
// bundled workloads; user workloads placing read-shared data here get the
// Fig 4 tracing for free.
const SharedBase = 1 << 30

// PrivateBase returns the base address of a core's private data segment.
func PrivateBase(core int) uint64 { return workload.PrivateBase(core) }

// Workloads returns the full registry in the paper's order (Table II).
func Workloads() []Workload { return workload.Registry() }

// WorkloadNames lists every bundled workload name: the Table II registry in
// figure order, then the collective family.
func WorkloadNames() []string { return workload.Names() }

// Collective-communication workload family (not part of the paper's
// Table II set): ring AllReduce, tree Broadcast, ring ReduceScatter, and a
// producer–consumer pipeline, modelling DNN gradient aggregation and
// serving fan-out — the one-producer/many-consumer traffic push multicast
// targets. See ExpCollective for the comparison figure.

// CollectiveParams parameterizes the collective workloads: sharer count,
// fan-out/radix/ring channels, chunk granularity, payload size, and
// iteration count. Zero fields select defaults; invalid combinations are
// rejected with one-line diagnostics when the run is built.
type CollectiveParams = workload.CollectiveParams

// CollectiveWorkloads returns the collective family with default
// parameters.
func CollectiveWorkloads() []Workload { return workload.Collectives() }

// CollectiveWorkload builds the named collective ("allreduce", "broadcast",
// "reducescatter", "prodcons") with explicit parameters.
func CollectiveWorkload(name string, p CollectiveParams) (Workload, error) {
	return workload.Collective(name, p)
}

// ErrCanceled is reported (wrapped, test with errors.Is) when a run's
// context fires: the machine loop stops at the next cancellation barrier
// with a trace tail instead of simulating to completion for a caller that
// is gone. See RunWorkloadCtx, Machine.RunToCtx, and CampaignRun.
var ErrCanceled = core.ErrCanceled

// Run simulates the named workload on the configuration and returns its
// results.
func Run(cfg Config, workloadName string, sc Scale) (Results, error) {
	wl, err := workload.ByName(workloadName)
	if err != nil {
		return Results{}, err
	}
	return RunWorkload(cfg, wl, sc)
}

// RunWorkload simulates a workload value (including user-defined ones) on
// the configuration.
func RunWorkload(cfg Config, wl Workload, sc Scale) (Results, error) {
	return RunWorkloadCtx(context.Background(), cfg, wl, sc)
}

// RunWorkloadCtx is RunWorkload with cooperative cancellation: the context
// is polled at cycle barriers, and a fired context aborts the run with a
// wrapped ErrCanceled. Cancellation never changes what any simulated cycle
// computes — only where the run stops — so determinism is unaffected.
func RunWorkloadCtx(ctx context.Context, cfg Config, wl Workload, sc Scale) (Results, error) {
	sys, err := core.Build(cfg, wl, sc)
	if err != nil {
		return Results{}, err
	}
	res, err := sys.RunCtx(ctx, 0)
	if err != nil {
		return Results{}, err
	}
	res.Workload = wl.Name
	return res, nil
}
