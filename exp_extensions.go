package pushmulticast

import (
	"context"

	"pushmulticast/internal/config"
	"pushmulticast/internal/workload"
)

// This file implements the paper's §VI "Discussion and Future Directions"
// explorations that are measurable on this substrate: the push/prefetch
// interplay, and an ablation of this implementation's recent-push table.

// PushPrefetch combines OrdPush with the baseline prefetchers (§VI,
// "Interplay of Push and Prefetch").
func PushPrefetch() Scheme { return config.PushPrefetch() }

// PredictivePush extends OrdPush with the decoupled sharer predictor (§VI,
// "General Push Multicast"): pushes also fire on LLC-miss fills.
func PredictivePush() Scheme { return config.PredictivePush() }

// DeepPush extends OrdPush by propagating accepted pushes into the L1 (§VI,
// "Multi-Level Caches").
func DeepPush() Scheme { return config.DeepPush() }

// InterplayRow is one workload's comparison of prefetch-only, push-only,
// and combined configurations (speedups over the prefetching baseline).
type InterplayRow struct {
	Workload string
	OrdPush  float64
	Combined float64
}

// InterplayResult holds the §VI push-prefetch interplay study.
type InterplayResult struct{ Rows []InterplayRow }

// ExtInterplay measures whether enabling pushing and prefetching together
// helps or hurts per workload, reproducing the paper's preliminary finding
// that the combination is not consistently beneficial.
func ExtInterplay(o ExpOptions) (*InterplayResult, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{Baseline(), OrdPush(), PushPrefetch()}
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &InterplayResult{}
	for _, wl := range wls {
		base := res[runKey{Baseline().Name, wl.Name}]
		ord, err := speedup(base, res[runKey{OrdPush().Name, wl.Name}])
		if err != nil {
			return nil, err
		}
		comb, err := speedup(base, res[runKey{PushPrefetch().Name, wl.Name}])
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, InterplayRow{Workload: wl.Name, OrdPush: ord, Combined: comb})
	}
	return out, nil
}

// String renders the study as a table.
func (f *InterplayResult) String() string {
	t := newTable("Extension (paper SVI): push x prefetch interplay, speedup over baseline",
		"Workload", "OrdPush", "OrdPush+Prefetch")
	for _, r := range f.Rows {
		t.addRow(r.Workload, f2(r.OrdPush), f2(r.Combined))
	}
	t.addNote("the paper reports the combination is not consistently beneficial; " +
		"compare the two columns per row")
	return t.String()
}

// FutureRow compares OrdPush against the §VI future-direction variants.
type FutureRow struct {
	Workload string
	// Speedups over the prefetching baseline.
	OrdPush, Predict, DeepL1 float64
	// PredictorPushes counts fills covered by the decoupled predictor.
	PredictorPushes uint64
}

// FutureResult holds the §VI extension study.
type FutureResult struct{ Rows []FutureRow }

// ExtFutureDirections evaluates the decoupled sharer predictor and the
// L1-propagation extension against plain OrdPush. The predictor matters on
// workloads whose shared footprint overflows the LLC (bfs at quick scale);
// L1 propagation trades L1 pollution for hit latency.
func ExtFutureDirections(o ExpOptions) (*FutureResult, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads([]Workload{workload.CacheBW(), workload.BFS(), workload.MLP()})
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{Baseline(), OrdPush(), PredictivePush(), DeepPush()}
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &FutureResult{}
	for _, wl := range wls {
		base := res[runKey{Baseline().Name, wl.Name}]
		pr := res[runKey{PredictivePush().Name, wl.Name}]
		ord := res[runKey{OrdPush().Name, wl.Name}]
		spOrd, err := speedup(base, ord)
		if err != nil {
			return nil, err
		}
		spPr, err := speedup(base, pr)
		if err != nil {
			return nil, err
		}
		spDeep, err := speedup(base, res[runKey{DeepPush().Name, wl.Name}])
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, FutureRow{
			Workload:        wl.Name,
			OrdPush:         spOrd,
			Predict:         spPr,
			DeepL1:          spDeep,
			PredictorPushes: pr.Stats.Cache.PushesTriggered - ord.Stats.Cache.PushesTriggered,
		})
	}
	return out, nil
}

// String renders the study as a table.
func (f *FutureResult) String() string {
	t := newTable("Extension (paper SVI): future directions, speedup over baseline",
		"Workload", "OrdPush", "+Predictor", "+L1 fill", "Extra predictor pushes")
	for _, r := range f.Rows {
		t.addRow(r.Workload, f2(r.OrdPush), f2(r.Predict), f2(r.DeepL1),
			f2(float64(r.PredictorPushes)))
	}
	return t.String()
}

// RecentTableRow compares OrdPush with and without the recent-push table.
type RecentTableRow struct {
	Workload string
	// Speedup of enabling the table (cycles-without / cycles-with).
	Speedup float64
	// TrafficRatio is flits-with / flits-without.
	TrafficRatio float64
	// PushesWith/PushesWithout count triggered multicasts.
	PushesWith, PushesWithout uint64
}

// RecentTableResult holds the recent-push-table ablation.
type RecentTableResult struct{ Rows []RecentTableRow }

// ExtRecentPushTable ablates this implementation's recent-push table (a
// DESIGN.md-documented refinement over the paper's description): without
// it, every re-reference that slips past the filters re-triggers a full
// multicast.
func ExtRecentPushTable(o ExpOptions) (*RecentTableResult, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads([]Workload{workload.CacheBW(), workload.Multilevel(), workload.Particlefilter()})
	if err != nil {
		return nil, err
	}
	with, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) },
		[]Scheme{OrdPush()}, wls)
	if err != nil {
		return nil, err
	}
	without, err := matrix(context.Background(), o, func(s Scheme) Config {
		cfg := o.baseConfig().WithScheme(s)
		cfg.NoRecentPushTable = true
		return cfg
	}, []Scheme{OrdPush()}, wls)
	if err != nil {
		return nil, err
	}
	out := &RecentTableResult{}
	for _, wl := range wls {
		w := with[runKey{OrdPush().Name, wl.Name}]
		wo := without[runKey{OrdPush().Name, wl.Name}]
		out.Rows = append(out.Rows, RecentTableRow{
			Workload:      wl.Name,
			Speedup:       float64(wo.Cycles) / float64(w.Cycles),
			TrafficRatio:  float64(w.TotalNoCFlits()) / float64(wo.TotalNoCFlits()),
			PushesWith:    w.Stats.Cache.PushesTriggered,
			PushesWithout: wo.Stats.Cache.PushesTriggered,
		})
	}
	return out, nil
}

// String renders the ablation as a table.
func (f *RecentTableResult) String() string {
	t := newTable("Extension: recent-push-table ablation (OrdPush)",
		"Workload", "Speedup from table", "Traffic ratio", "Pushes with", "Pushes without")
	for _, r := range f.Rows {
		t.addRow(r.Workload, f2(r.Speedup), f2(r.TrafficRatio),
			f2(float64(r.PushesWith)), f2(float64(r.PushesWithout)))
	}
	return t.String()
}
