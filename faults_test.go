package pushmulticast

import (
	"reflect"
	"testing"
)

// faultPlans returns one plan per fault kind plus a combined plan, tuned so
// tiny-scale runs (a few thousand cycles) hit every window repeatedly: early
// onset, ~500-cycle outages, short periods.
func faultPlans() map[string]FaultPlan {
	perKind := map[string]FaultPlan{
		"linkstall": {Seed: 7, Faults: []Fault{
			{Kind: FaultLinkStall, Node: 1, Port: -1, From: 100, To: 600, Period: 1600},
		}},
		"routerslow": {Seed: 7, Faults: []Fault{
			{Kind: FaultRouterSlow, Node: 2, From: 150, To: 650, Period: 1700, Factor: 3},
		}},
		"vcjitter": {Seed: 7, Faults: []Fault{
			{Kind: FaultVCJitter, Node: 0, Port: -1, From: 100, To: 700, Period: 1500, MaxJitter: 4, VNet: -1},
		}},
		"injspike": {Seed: 7, Faults: []Fault{
			{Kind: FaultInjSpike, Node: 3, From: 120, To: 620, Period: 1800, Factor: 1},
		}},
		"filterdrop": {Seed: 7, Faults: []Fault{
			{Kind: FaultFilterDrop, Node: 5, From: 100, To: 900, Period: 2000},
		}},
	}
	combined := FaultPlan{Seed: 7}
	for _, name := range []string{"linkstall", "routerslow", "vcjitter", "injspike", "filterdrop"} {
		combined.Faults = append(combined.Faults, perKind[name].Faults...)
	}
	perKind["combined"] = combined
	return perKind
}

// TestFaultReplayIdentical is the fault layer's determinism contract: for
// every fault kind, the serial, dense, and parallel kernels under the same
// plan must produce byte-identical results down to the full event history.
// The invariant checker stays on throughout — a plan that completes with a
// coherence violation fails here, not just one that diverges.
func TestFaultReplayIdentical(t *testing.T) {
	for name, plan := range faultPlans() {
		name, plan := name, plan
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mkCfg := func() Config {
				cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
				cfg.Faults = &plan
				return cfg
			}
			serial, err := Run(mkCfg(), "cachebw", ScaleTiny)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			dcfg := mkCfg()
			dcfg.DenseKernel = true
			dense, err := Run(dcfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			par, err := Run(withParallel(mkCfg(), 4), "cachebw", ScaleTiny)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			checkIdentical(t, "serial", "dense", serial, dense)
			checkIdentical(t, "serial", "parallel", serial, par)
			if serial.Stats.Net.FaultWindows == 0 {
				t.Error("no fault windows activated; the plan never fired")
			}
		})
	}
}

// TestFaultGracefulDegradation runs the combined plan (and a generated
// worst-case plan) under both schemes with the checker on: the degradation
// contract demands the run completes — no panic, no deadlock, no violation.
func TestFaultGracefulDegradation(t *testing.T) {
	combined := faultPlans()["combined"]
	generated := GenerateFaultPlan(16, 99, 1.0)
	if len(generated.Faults) == 0 {
		t.Fatal("generated plan at full intensity is empty")
	}
	for _, tc := range []struct {
		name string
		plan FaultPlan
	}{{"combined", combined}, {"generated", generated}} {
		for _, sch := range []Scheme{Baseline(), OrdPush()} {
			tc, sch := tc, sch
			t.Run(tc.name+"/"+sch.Name, func(t *testing.T) {
				t.Parallel()
				cfg := withCheck(ScaledConfig(Default16()).WithScheme(sch))
				cfg.Faults = &tc.plan
				res, err := Run(cfg, "cachebw", ScaleTiny)
				if err != nil {
					t.Fatalf("degradation contract breached: %v", err)
				}
				if res.Cycles == 0 {
					t.Fatal("run reported zero cycles")
				}
			})
		}
	}
}

// TestGenerateFaultPlan pins the generator's contract: same inputs yield the
// same plan, the plan validates against the machine, intensity 0 is empty,
// and different seeds diverge.
func TestGenerateFaultPlan(t *testing.T) {
	a := GenerateFaultPlan(16, 42, 0.5)
	b := GenerateFaultPlan(16, 42, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and intensity produced different plans")
	}
	if len(a.Faults) == 0 {
		t.Fatal("plan at intensity 0.5 is empty")
	}
	if err := a.Validate(16); err != nil {
		t.Errorf("generated plan does not validate: %v", err)
	}
	if c := GenerateFaultPlan(16, 43, 0.5); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	if z := GenerateFaultPlan(16, 42, 0); len(z.Faults) != 0 {
		t.Errorf("intensity 0 produced %d faults", len(z.Faults))
	}
}

// TestFaultPlanValidate exercises the plan validator's rejections through
// the public Config path: a bad plan must fail the run up front.
func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
	}{
		{"bad kind", Fault{Kind: FaultKind(200), Node: 0, From: 1, To: 2}},
		{"node out of range", Fault{Kind: FaultRouterSlow, Node: 99, From: 1, To: 2, Factor: 2}},
		{"empty window", Fault{Kind: FaultRouterSlow, Node: 0, From: 5, To: 5, Factor: 2}},
		{"period shorter than window", Fault{Kind: FaultRouterSlow, Node: 0, From: 0, To: 100, Period: 50, Factor: 2}},
		{"slow factor too small", Fault{Kind: FaultRouterSlow, Node: 0, From: 1, To: 2, Factor: 1}},
		{"jitter too large", Fault{Kind: FaultVCJitter, Node: 0, Port: -1, From: 1, To: 2, MaxJitter: 1000, VNet: -1}},
		{"outage too long", Fault{Kind: FaultLinkStall, Node: 0, Port: -1, From: 0, To: 1 << 30}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := FaultPlan{Seed: 1, Faults: []Fault{tc.f}}
			cfg := ScaledConfig(Default16()).WithScheme(Baseline())
			cfg.Faults = &plan
			if _, err := Run(cfg, "cachebw", ScaleTiny); err == nil {
				t.Error("invalid fault plan accepted")
			}
		})
	}
}
