package pushmulticast

import (
	"context"

	"fmt"

	"pushmulticast/internal/workload"
)

// Fig20Row is one ablation measurement.
type Fig20Row struct {
	Workload string
	// Speedup maps ablation stage name -> speedup over the baseline.
	Speedup map[string]float64
}

// Fig20Result reproduces Fig 20 (the OrdPush feature ablation).
type Fig20Result struct {
	Cores  int
	Stages []string
	Rows   []Fig20Row
	// Geomean maps stage name -> geometric mean speedup.
	Geomean map[string]float64
}

// ablationStages is the Fig 20 lattice: features added one at a time.
func ablationStages() []Scheme {
	return []Scheme{
		AblationPush(),
		AblationPushMulticast(),
		AblationPushMulticastFilter(),
		AblationFull(),
	}
}

// Fig20 runs the OrdPush ablation (Push, +Multicast, +Filter, +Knob) against
// the baseline.
func Fig20(o ExpOptions) (*Fig20Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	schemes := append([]Scheme{Baseline()}, ablationStages()...)
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &Fig20Result{Cores: o.Cores, Geomean: map[string]float64{}}
	for _, s := range ablationStages() {
		out.Stages = append(out.Stages, s.Name)
	}
	per := map[string][]float64{}
	for _, wl := range wls {
		base := res[runKey{Baseline().Name, wl.Name}]
		row := Fig20Row{Workload: wl.Name, Speedup: map[string]float64{}}
		for _, s := range ablationStages() {
			sp, err := speedup(base, res[runKey{s.Name, wl.Name}])
			if err != nil {
				return nil, err
			}
			row.Speedup[s.Name] = sp
			per[s.Name] = append(per[s.Name], sp)
		}
		out.Rows = append(out.Rows, row)
	}
	for name, sps := range per {
		gm, err := geomean(sps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out.Geomean[name] = gm
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig20Result) String() string {
	cols := append([]string{"Workload"}, f.Stages...)
	t := newTable(fmt.Sprintf("Fig 20: OrdPush ablation, speedup over baseline (%d cores)", f.Cores), cols...)
	for _, r := range f.Rows {
		cells := []string{r.Workload}
		for _, s := range f.Stages {
			cells = append(cells, f2(r.Speedup[s]))
		}
		t.addRow(cells...)
	}
	g := []string{"geomean"}
	for _, s := range f.Stages {
		g = append(g, f2(f.Geomean[s]))
	}
	t.addRow(g...)
	t.addNote("expected shape: Push alone can degrade under load; +Multicast helps moderate load; " +
		"+Filter delivers the high-load win; +Knob rescues irregular bfs")
	return t.String()
}
