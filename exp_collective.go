package pushmulticast

import (
	"context"

	"fmt"
	"strings"
)

// ExpCollectiveRow is one (collective variant, scheme) cell of the
// collective-communication comparison: cycles, speedup against the same
// variant under the baseline, total link traffic, the traffic saved against
// the baseline, and the push activity behind both.
type ExpCollectiveRow struct {
	Workload string // display name, e.g. "broadcast[f=4]"
	Params   string // canonical parameter signature
	Sharers  int
	Fanout   int
	Scheme   string
	Cycles   uint64
	// Speedup is baseline-cycles / this-scheme-cycles for the same variant
	// (1.0 for the baseline rows themselves).
	Speedup float64
	// Flits is total link-level flit traversals; TrafficSaved is the
	// fraction of the baseline's flits this scheme avoided (negative =
	// added traffic).
	Flits        uint64
	TrafficSaved float64
	// Pushes counts push transactions triggered at LLC slices (0 under the
	// baseline, and honestly 0 for the unicast ring collectives).
	Pushes uint64
}

// ExpCollectiveResult is the collective-communication figure: every
// collective at two fan-outs under Baseline, PushAck, and OrdPush.
type ExpCollectiveResult struct {
	Cores int
	Rows  []ExpCollectiveRow
	// Geomean[scheme] is the geometric-mean speedup across all variants.
	Geomean map[string]float64
}

// collectiveVariant is one parameterized family member of the comparison.
type collectiveVariant struct {
	wl      Workload
	sharers int
	fanout  int
}

// collectiveVariants builds the figure's workload set: each collective at
// each fan-out, renamed so the run matrix (keyed by scheme and name) keeps
// the variants apart. prodcons trims its sharer set to the largest whole
// number of (1 producer + fanout consumers) groups the machine holds.
func collectiveVariants(cores int, fanouts []int) ([]collectiveVariant, error) {
	var out []collectiveVariant
	for _, f := range fanouts {
		for _, name := range []string{"allreduce", "broadcast", "reducescatter", "prodcons"} {
			p := CollectiveParams{Fanout: f}
			sharers := cores
			if name == "prodcons" {
				sharers = cores / (f + 1) * (f + 1)
				p.Sharers = sharers
			}
			wl, err := CollectiveWorkload(name, p)
			if err != nil {
				return nil, err
			}
			if err := wl.Validate(cores); err != nil {
				return nil, fmt.Errorf("collective variant %s[f=%d]: %w", name, f, err)
			}
			wl.Name = fmt.Sprintf("%s[f=%d]", name, f)
			out = append(out, collectiveVariant{wl: wl, sharers: sharers, fanout: f})
		}
	}
	return out, nil
}

// ExpCollective runs the collective-communication comparison: ring
// all-reduce, tree broadcast, ring reduce-scatter, and the producer-consumer
// pipeline at fan-outs 2 and 4, under the prefetching baseline and both push
// designs. The fan-out collectives (broadcast, prodcons) are the
// one-producer/many-consumer traffic push multicast targets — gradient
// broadcast and serving fan-out; the ring collectives bound the other end,
// where every buffer has exactly one reader and pushes have nothing to
// multicast.
func ExpCollective(o ExpOptions) (*ExpCollectiveResult, error) {
	o = o.withDefaults()
	variants, err := collectiveVariants(o.Cores, []int{2, 4})
	if err != nil {
		return nil, err
	}
	wls := make([]Workload, len(variants))
	for i, v := range variants {
		wls[i] = v.wl
	}
	schemes := []Scheme{Baseline(), PushAck(), OrdPush()}
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &ExpCollectiveResult{Cores: o.Cores, Geomean: map[string]float64{}}
	perScheme := map[string][]float64{}
	for _, v := range variants {
		base := res[runKey{Baseline().Name, v.wl.Name}]
		for _, s := range schemes {
			r := res[runKey{s.Name, v.wl.Name}]
			sp, err := speedup(base, r)
			if err != nil {
				return nil, err
			}
			baseFlits := base.Stats.Net.TotalFlits()
			flits := r.Stats.Net.TotalFlits()
			saved := 0.0
			if baseFlits > 0 {
				saved = 1 - float64(flits)/float64(baseFlits)
			}
			out.Rows = append(out.Rows, ExpCollectiveRow{
				Workload: v.wl.Name, Params: v.wl.Params,
				Sharers: v.sharers, Fanout: v.fanout, Scheme: s.Name,
				Cycles: r.Cycles, Speedup: sp,
				Flits: flits, TrafficSaved: saved,
				Pushes: r.Stats.Cache.PushesTriggered,
			})
			perScheme[s.Name] = append(perScheme[s.Name], sp)
		}
	}
	for name, sps := range perScheme {
		g, err := geomean(sps)
		if err != nil {
			return nil, err
		}
		out.Geomean[name] = g
	}
	return out, nil
}

// String renders the comparison as a table with per-scheme geomean speedups.
func (f *ExpCollectiveResult) String() string {
	t := newTable(
		fmt.Sprintf("Collective communication: Baseline vs PushAck vs OrdPush (%d cores)", f.Cores),
		"Workload", "Sharers", "Fanout", "Scheme", "Cycles", "Speedup", "Flits", "Traffic saved", "Pushes")
	for _, r := range f.Rows {
		t.addRow(r.Workload, fmt.Sprint(r.Sharers), fmt.Sprint(r.Fanout), r.Scheme,
			fmt.Sprint(r.Cycles), f2(r.Speedup), fmt.Sprint(r.Flits), pct(r.TrafficSaved),
			fmt.Sprint(r.Pushes))
	}
	var gm []string
	seen := map[string]bool{}
	for _, r := range f.Rows {
		if v, ok := f.Geomean[r.Scheme]; ok && !seen[r.Scheme] {
			seen[r.Scheme] = true
			gm = append(gm, fmt.Sprintf("%s %.2f", r.Scheme, v))
		}
	}
	t.addNote("geomean speedup vs baseline: %s", strings.Join(gm, ", "))
	t.addNote("rings (allreduce/reducescatter) are unicast by construction: one reader per buffer, 0 pushes is the honest result")
	t.addNote("fan-out collectives (broadcast/prodcons) are the push sweet spot: traffic drops with sharer re-reads; cycle wins grow with fan-out")
	return t.String()
}
