package pushmulticast

import (
	"math"
	"testing"
)

// TestQuantileEdgeCases pins down the interpolating quantile helper on the
// degenerate inputs figure code can feed it: empty and single-sample sets,
// the exact endpoints, out-of-range q, and NaN (a 0/0 ratio upstream).
func TestQuantileEdgeCases(t *testing.T) {
	tests := []struct {
		name   string
		sorted []uint64
		q      float64
		want   uint64
	}{
		{"empty", nil, 0.5, 0},
		{"empty q=0", nil, 0, 0},
		{"single q=0", []uint64{42}, 0, 42},
		{"single q=0.5", []uint64{42}, 0.5, 42},
		{"single q=1", []uint64{42}, 1, 42},
		{"q=0 picks min", []uint64{10, 20, 30}, 0, 10},
		{"q=1 picks max", []uint64{10, 20, 30}, 1, 30},
		{"q below range clamps", []uint64{10, 20, 30}, -0.5, 10},
		{"q above range clamps", []uint64{10, 20, 30}, 1.5, 30},
		{"NaN clamps to min", []uint64{10, 20, 30}, math.NaN(), 10},
		{"median of odd set", []uint64{10, 20, 30}, 0.5, 20},
		{"median interpolates", []uint64{10, 20}, 0.5, 15},
		{"interpolation rounds", []uint64{0, 10}, 0.25, 3}, // 2.5 rounds up
		{"p99 on small set", []uint64{1, 2, 3, 100}, 0.99, 97},
	}
	for _, tc := range tests {
		if got := Quantile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v, %v) = %d, want %d", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
}

// TestQuantileMonotone asserts the estimator is monotone in q — a property
// interpolation must preserve and clamping must not break.
func TestQuantileMonotone(t *testing.T) {
	sorted := []uint64{3, 7, 7, 11, 20, 41, 100, 250}
	prev := uint64(0)
	for q := -0.1; q <= 1.1; q += 0.01 {
		v := Quantile(sorted, q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%.2f gave %d after %d", q, v, prev)
		}
		prev = v
	}
}
