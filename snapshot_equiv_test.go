package pushmulticast

import (
	"bytes"
	"errors"
	"testing"
)

// snapshotKernels are the executor variants the checkpoint/restore contract
// must hold on: a snapshot taken under any of them restores into any of
// them, because the serialized state is kernel-independent.
var snapshotKernels = []struct {
	name string
	with func(Config) Config
}{
	{"serial", func(cfg Config) Config { return cfg }},
	{"dense", func(cfg Config) Config { cfg.DenseKernel = true; return cfg }},
	{"parallel", func(cfg Config) Config { return withParallel(cfg, 4) }},
}

// coldAndWarm runs the configuration twice — once cold to completion, once
// paused at barrier, snapshotted, restored into a fresh machine, and
// finished — and returns both results plus the snapshot.
func coldAndWarm(t *testing.T, cfg Config, wl Workload, sc Scale, barrier uint64) (cold, warm Results, snap []byte) {
	t.Helper()
	cold, err := RunWorkload(cfg, wl, sc)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	m, err := NewMachine(cfg, wl, sc)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.RunTo(barrier); err != nil {
		t.Fatalf("RunTo(%d): %v", barrier, err)
	}
	snap, err = m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if at, err := SnapshotCycle(snap); err != nil || at < barrier {
		t.Fatalf("SnapshotCycle = %d, %v; want >= barrier %d", at, err, barrier)
	}
	restored, err := RestoreMachine(snap, cfg, wl, sc)
	if err != nil {
		t.Fatalf("RestoreMachine: %v", err)
	}
	warm, err = restored.Finish()
	if err != nil {
		t.Fatalf("restored Finish: %v", err)
	}
	return cold, warm, snap
}

// TestSnapshotRestoreEquivalence is the tentpole contract: a run paused at a
// mid-run cycle barrier, serialized, restored into a freshly built machine,
// and continued to completion is byte-identical to a cold run — same cycle
// count, same full counter bundle, same causal event history (trace hash) —
// on the serial, dense, and parallel kernels alike.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, sch := range []Scheme{Baseline(), OrdPush()} {
		for _, k := range snapshotKernels {
			sch, k := sch, k
			t.Run(sch.Name+"/"+k.name, func(t *testing.T) {
				t.Parallel()
				cfg := k.with(withCheck(ScaledConfig(Default16()).WithScheme(sch)))
				wl, err := WorkloadByName("cachebw")
				if err != nil {
					t.Fatal(err)
				}
				// Probe the total once so the barrier genuinely straddles the
				// run (ClearRunMemo-independent: direct runs, no memo).
				probe, err := RunWorkload(cfg, wl, ScaleTiny)
				if err != nil {
					t.Fatal(err)
				}
				barrier := probe.Cycles / 2
				if barrier == 0 {
					t.Fatalf("degenerate probe run: %d cycles", probe.Cycles)
				}
				cold, warm, _ := coldAndWarm(t, cfg, wl, ScaleTiny, barrier)
				checkIdentical(t, "cold", "restored", cold, warm)
			})
		}
	}
}

// TestSnapshotRestoreLossyStraddle pins the hardest restore case: an active
// lossy fault plan (drops, duplicates, corruptions with in-flight
// retransmit/anti-replay state) straddling the snapshot barrier. The
// injector's schedule position, the per-stream sequence and retransmission
// windows, and the checker's loss bookkeeping all cross the barrier and must
// resume exactly.
func TestSnapshotRestoreLossyStraddle(t *testing.T) {
	for _, k := range snapshotKernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			cfg := k.with(withCheck(ScaledConfig(Default16()).WithScheme(OrdPush())))
			plan := GenerateLossyPlan(cfg.Tiles(), 7, 40)
			cfg.Faults = &plan
			wl, err := WorkloadByName("cachebw")
			if err != nil {
				t.Fatal(err)
			}
			probe, err := RunWorkload(cfg, wl, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			if probe.Stats.Net.MsgDropped == 0 {
				t.Fatal("lossy plan injected no drops; the straddle tests nothing")
			}
			cold, warm, _ := coldAndWarm(t, cfg, wl, ScaleTiny, probe.Cycles/2)
			checkIdentical(t, "cold", "restored", cold, warm)
		})
	}
}

// TestSnapshotDeterminism asserts the snapshot itself is a pure function of
// machine state: two machines driven identically to the same barrier
// serialize to byte-identical snapshots, and a restored machine re-paused at
// the same (post-barrier) state re-serializes to the same bytes as a
// never-restored one. This property is what makes SnapshotHash a valid memo
// identity.
func TestSnapshotDeterminism(t *testing.T) {
	cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
	wl, err := WorkloadByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	pauseAt := func(barrier uint64) []byte {
		m, err := NewMachine(cfg, wl, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RunTo(barrier); err != nil {
			t.Fatal(err)
		}
		snap, err := m.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	a, b := pauseAt(5000), pauseAt(5000)
	if !bytes.Equal(a, b) {
		t.Errorf("identical machine states serialized to different bytes (%d vs %d, hashes %#x vs %#x)",
			len(a), len(b), SnapshotHash(a), SnapshotHash(b))
	}
	// Restore the first snapshot, advance to a later barrier, and compare
	// against a cold machine paused at that same barrier: the restored
	// machine must be indistinguishable even to the serializer.
	m, err := RestoreMachine(a, cfg, wl, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunTo(8000); err != nil {
		t.Fatal(err)
	}
	viaRestore, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	direct := pauseAt(8000)
	if !bytes.Equal(viaRestore, direct) {
		t.Errorf("restore-then-advance state diverged from cold state at the same barrier (hashes %#x vs %#x)",
			SnapshotHash(viaRestore), SnapshotHash(direct))
	}
}

// TestSnapshotRestoreMismatch verifies restore refuses loudly — with
// ErrSnapshotMismatch, before touching any state — when the restoring
// configuration genuinely differs, and accepts knob-only forks.
func TestSnapshotRestoreMismatch(t *testing.T) {
	base := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
	wl, err := WorkloadByName("cachebw")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(base, wl, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunTo(2000); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(Config) Config
		wantOK bool
	}{
		{"identical config", func(c Config) Config { return c }, true},
		{"knob-only fork (TPCThreshold)", func(c Config) Config { c.TPCThreshold = 99; return c }, true},
		{"knob-only fork (TimeWindow)", func(c Config) Config { c.TimeWindow = 1234; return c }, true},
		{"different scheme", func(c Config) Config { return c.WithScheme(Baseline()) }, false},
		{"different cache geometry", func(c Config) Config { c.L2Size *= 2; return c }, false},
		{"checker stripped", func(c Config) Config { c.Check = false; c.TraceN = 0; return c }, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RestoreMachine(snap, tc.mutate(base), wl, ScaleTiny)
			if tc.wantOK && err != nil {
				t.Fatalf("restore refused a legitimate target: %v", err)
			}
			if !tc.wantOK {
				if err == nil {
					t.Fatal("restore accepted a mismatched configuration")
				}
				if !errors.Is(err, ErrSnapshotMismatch) {
					t.Fatalf("mismatch not wrapped in ErrSnapshotMismatch: %v", err)
				}
			}
		})
	}
	t.Run("different workload", func(t *testing.T) {
		other, err := WorkloadByName("bfs")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreMachine(snap, base, other, ScaleTiny); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("want ErrSnapshotMismatch, got %v", err)
		}
	})
	t.Run("truncated snapshot", func(t *testing.T) {
		if _, err := RestoreMachine(snap[:len(snap)-9], base, wl, ScaleTiny); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("want ErrSnapshotCorrupt, got %v", err)
		}
	})
}
