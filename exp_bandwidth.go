package pushmulticast

import (
	"context"

	"fmt"
	"strings"

	"pushmulticast/internal/noc"
	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// Fig14Grid is one scheme's per-link average load map.
type Fig14Grid struct {
	Scheme string
	W, H   int
	// Load[node][dir] is flits/cycle on the link leaving node through
	// direction dir (N,E,S,W order as in noc ports).
	Load [][]float64
	// MaxLoad and MaxLink locate the hotspot.
	MaxLoad float64
	MaxLink string
	// Total is total link flits.
	Total uint64
}

// Fig14Result reproduces Fig 14: cachebw link loads, baseline vs OrdPush.
type Fig14Result struct {
	Workload string
	Grids    []Fig14Grid
}

// Fig14 maps per-link loads on cachebw under the baseline and OrdPush.
func Fig14(o ExpOptions) (*Fig14Result, error) {
	o = o.withDefaults()
	out := &Fig14Result{Workload: "cachebw"}
	for _, s := range []Scheme{Baseline(), OrdPush()} {
		cfg := o.baseConfig().WithScheme(s)
		res, err := RunWorkload(cfg, workload.CacheBW(), o.Scale)
		if err != nil {
			return nil, err
		}
		g := Fig14Grid{Scheme: s.Name, W: cfg.MeshW, H: cfg.MeshH}
		nodes := cfg.Tiles()
		g.Load = make([][]float64, nodes)
		for n := 0; n < nodes; n++ {
			g.Load[n] = make([]float64, 4)
			for p := 0; p < 4; p++ {
				flits := res.Stats.Net.LinkFlits[noc.LinkIndex(noc.NodeID(n), p)]
				g.Total += flits
				load := float64(flits) / float64(res.Cycles)
				g.Load[n][p] = load
				if load > g.MaxLoad {
					g.MaxLoad = load
					x, y := cfg.NoC.XY(noc.NodeID(n))
					g.MaxLink = fmt.Sprintf("(%d,%d)->%s", x, y, noc.PortName(p))
				}
			}
		}
		out.Grids = append(out.Grids, g)
	}
	return out, nil
}

// String renders both load maps with one row per mesh row (eastbound load
// shown per tile; the hotspot annotated).
func (f *Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14: average link loads, %s (flits/cycle)\n", f.Workload)
	b.WriteString(strings.Repeat("-", 48) + "\n")
	for _, g := range f.Grids {
		fmt.Fprintf(&b, "%s: total link flits %d, hotspot %s at %.3f\n",
			g.Scheme, g.Total, g.MaxLink, g.MaxLoad)
		fmt.Fprintf(&b, "  eastbound loads by tile (rows top to bottom):\n")
		for y := 0; y < g.H; y++ {
			b.WriteString("    ")
			for x := 0; x < g.W; x++ {
				n := y*g.W + x
				fmt.Fprintf(&b, "%5.2f ", g.Load[n][noc.PortEast])
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "  southbound loads by tile:\n")
		for y := 0; y < g.H; y++ {
			b.WriteString("    ")
			for x := 0; x < g.W; x++ {
				n := y*g.W + x
				fmt.Fprintf(&b, "%5.2f ", g.Load[n][noc.PortSouth])
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("note: OrdPush should cut total load while YX replication shifts hotspots toward edge columns\n")
	return b.String()
}

// Fig15Row is one (scheme, workload)'s private-L2 injection/ejection flits
// normalized to the baseline.
type Fig15Row struct {
	Scheme, Workload string
	// Injected/Ejected are normalized totals; the class maps break the
	// injected side down.
	Injected, Ejected float64
	InjReadReq        float64
	InjPushAck        float64
	InjWriteBack      float64
	InjOther          float64
}

// Fig15Result reproduces Fig 15 (L2 bandwidth).
type Fig15Result struct{ Rows []Fig15Row }

// Fig16Result reproduces Fig 16 (LLC bandwidth); same row shape with LLC
// counters.
type Fig16Result struct{ Rows []Fig15Row }

func endpointFlits(st *Stats, unit stats.Unit) (inj, ej uint64) {
	for c := stats.Class(0); c < stats.NumClasses; c++ {
		inj += st.Net.InjectedFlits[unit][c]
		ej += st.Net.EjectedFlits[unit][c]
	}
	return
}

func bandwidthRows(o ExpOptions, unit stats.Unit) ([]Fig15Row, error) {
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{Baseline(), PushAck(), OrdPush()}
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	var rows []Fig15Row
	for _, s := range schemes[1:] {
		for _, wl := range wls {
			base := res[runKey{Baseline().Name, wl.Name}]
			bInj, bEj := endpointFlits(base.Stats, unit)
			if bInj == 0 {
				bInj = 1
			}
			if bEj == 0 {
				bEj = 1
			}
			r := res[runKey{s.Name, wl.Name}]
			inj, ej := endpointFlits(r.Stats, unit)
			rows = append(rows, Fig15Row{
				Scheme: s.Name, Workload: wl.Name,
				Injected:     float64(inj) / float64(bInj),
				Ejected:      float64(ej) / float64(bEj),
				InjReadReq:   float64(r.Stats.Net.InjectedFlits[unit][stats.ClassReadRequest]) / float64(bInj),
				InjPushAck:   float64(r.Stats.Net.InjectedFlits[unit][stats.ClassPushAck]) / float64(bInj),
				InjWriteBack: float64(r.Stats.Net.InjectedFlits[unit][stats.ClassWriteBackData]) / float64(bInj),
				InjOther:     float64(r.Stats.Net.InjectedFlits[unit][stats.ClassOther]) / float64(bInj),
			})
		}
	}
	return rows, nil
}

// Fig15 measures private-L2 injection/ejection bandwidth normalized to the
// baseline for PushAck and OrdPush.
func Fig15(o ExpOptions) (*Fig15Result, error) {
	o = o.withDefaults()
	rows, err := bandwidthRows(o, stats.UnitL2)
	if err != nil {
		return nil, err
	}
	return &Fig15Result{Rows: rows}, nil
}

// Fig16 measures LLC injection/ejection bandwidth normalized to the
// baseline for PushAck and OrdPush.
func Fig16(o ExpOptions) (*Fig16Result, error) {
	o = o.withDefaults()
	rows, err := bandwidthRows(o, stats.UnitLLC)
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Rows: rows}, nil
}

func renderBandwidth(title string, rows []Fig15Row) string {
	t := newTable(title,
		"Scheme", "Workload", "Inj total", "Ej total", "Inj ReadReq", "Inj PushAck", "Inj WB", "Inj Other")
	for _, r := range rows {
		t.addRow(r.Scheme, r.Workload, f2(r.Injected), f2(r.Ejected),
			f2(r.InjReadReq), f2(r.InjPushAck), f2(r.InjWriteBack), f2(r.InjOther))
	}
	return t.String()
}

// String renders the figure as a table.
func (f *Fig15Result) String() string {
	return renderBandwidth("Fig 15: private L2 traffic normalized to baseline", f.Rows)
}

// String renders the figure as a table.
func (f *Fig16Result) String() string {
	return renderBandwidth("Fig 16: LLC traffic normalized to baseline", f.Rows)
}
