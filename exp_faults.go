package pushmulticast

import (
	"context"

	"fmt"

	"pushmulticast/internal/workload"
)

// This file implements the chaos campaign: a sweep of fault-injection
// intensity across schemes that exercises the graceful-degradation contract
// (no panic, no deadlock, no coherence violation — only elevated latency).
// Every run executes with the invariant checker enabled, so a fault that
// breaks coherence (rather than merely slowing the machine) fails the
// campaign instead of skewing a number.

// FaultRow is one (scheme, workload, intensity) chaos measurement.
type FaultRow struct {
	Scheme, Workload string
	// Intensity is the fault-pressure knob in [0,1] fed to GenerateFaultPlan.
	Intensity float64
	Cycles    uint64
	// Slowdown is cycles / fault-free cycles for the same (scheme, workload);
	// 1.0 at intensity 0 by construction.
	Slowdown float64
	// FaultWindows counts fault-window activations; the remaining counters
	// break degradation down by mechanism.
	FaultWindows, JitterDelay, FilterSuppressed, InjRefused uint64
}

// FaultResult holds the chaos campaign's slowdown curves.
type FaultResult struct {
	// Seed reproduces every fault plan in the sweep.
	Seed uint64
	Rows []FaultRow
}

// faultIntensities is the swept fault-pressure axis.
func faultIntensities() []float64 { return []float64{0, 0.25, 0.5, 1.0} }

// chaosSeed fixes the campaign's fault plans; any seed works, this one keeps
// reruns comparable.
const chaosSeed = 0xC0FFEE

// ExpFaults sweeps fault intensity for Baseline and OrdPush and reports the
// slowdown curve per workload. All runs keep the invariant checker on: a run
// that panics, deadlocks, or violates coherence under injected faults is a
// degradation-contract breach and fails the campaign.
func ExpFaults(o ExpOptions) (*FaultResult, error) {
	o = o.withDefaults()
	o.Check = true
	wls, err := o.pickWorkloads([]Workload{workload.CacheBW(), workload.BFS()})
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{Baseline(), OrdPush()}
	out := &FaultResult{Seed: chaosSeed}
	clean := map[runKey]uint64{}
	for _, intensity := range faultIntensities() {
		intensity := intensity
		var plan *FaultPlan
		if intensity > 0 {
			p := GenerateFaultPlan(o.baseConfig().Tiles(), chaosSeed, intensity)
			plan = &p
		}
		res, err := matrix(context.Background(), o, func(s Scheme) Config {
			cfg := o.baseConfig().WithScheme(s)
			cfg.Check = true
			cfg.Faults = plan
			return cfg
		}, schemes, wls)
		if err != nil {
			return nil, fmt.Errorf("chaos campaign at intensity %.2f: %w", intensity, err)
		}
		for _, s := range schemes {
			for _, wl := range wls {
				k := runKey{s.Name, wl.Name}
				r := res[k]
				if intensity == 0 {
					clean[k] = r.Cycles
				}
				if clean[k] == 0 || r.Cycles == 0 {
					return nil, fmt.Errorf("chaos campaign %s/%s: zero cycle count at intensity %.2f",
						s.Name, wl.Name, intensity)
				}
				out.Rows = append(out.Rows, FaultRow{
					Scheme:           s.Name,
					Workload:         wl.Name,
					Intensity:        intensity,
					Cycles:           r.Cycles,
					Slowdown:         float64(r.Cycles) / float64(clean[k]),
					FaultWindows:     r.Stats.Net.FaultWindows,
					JitterDelay:      r.Stats.Net.FaultJitterDelay,
					FilterSuppressed: r.Stats.Net.FaultFilterSuppressed,
					InjRefused:       r.Stats.Net.InjRefused,
				})
			}
		}
	}
	return out, nil
}

// LossyRow is one (scheme, workload, loss rate) survival measurement.
type LossyRow struct {
	Scheme, Workload string
	// RatePerMille is the per-tile drop probability fed to GenerateLossyPlan
	// (duplication and corruption run at half this rate each).
	RatePerMille int
	Cycles       uint64
	// Slowdown is cycles / loss-free cycles for the same (scheme, workload).
	Slowdown float64
	// Recovery counters: what was lost and how it was won back.
	Dropped, Corrupt, DupSuppressed, Retransmits, MSHRReissues uint64
}

// LossyResult holds the lossy-interconnect survival sweep.
type LossyResult struct {
	Seed uint64
	Rows []LossyRow
}

// lossyRates is the swept per-mille drop axis; the top value is the
// documented forward-progress ceiling (fault.MaxLossPerMille).
func lossyRates() []int { return []int{0, 10, 50, 100} }

// ExpLossy sweeps the lossy-interconnect drop rate for Baseline and OrdPush
// up to the documented ceiling and reports the recovery cost. Every run keeps
// the invariant checker on: under message loss the machine must still finish
// every instruction coherently — loss may only cost cycles (retransmissions,
// MSHR reissues), never correctness. A hang or ErrUnrecoverable below the
// ceiling fails the campaign.
func ExpLossy(o ExpOptions) (*LossyResult, error) {
	o = o.withDefaults()
	o.Check = true
	wls, err := o.pickWorkloads([]Workload{workload.CacheBW(), workload.BFS()})
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{Baseline(), OrdPush()}
	out := &LossyResult{Seed: chaosSeed}
	clean := map[runKey]uint64{}
	for _, rate := range lossyRates() {
		var plan *FaultPlan
		if rate > 0 {
			p := GenerateLossyPlan(o.baseConfig().Tiles(), chaosSeed, rate)
			plan = &p
		}
		res, err := matrix(context.Background(), o, func(s Scheme) Config {
			cfg := o.baseConfig().WithScheme(s)
			cfg.Check = true
			cfg.Faults = plan
			return cfg
		}, schemes, wls)
		if err != nil {
			return nil, fmt.Errorf("lossy campaign at %d per mille: %w", rate, err)
		}
		for _, s := range schemes {
			for _, wl := range wls {
				k := runKey{s.Name, wl.Name}
				r := res[k]
				if rate == 0 {
					clean[k] = r.Cycles
				}
				if clean[k] == 0 || r.Cycles == 0 {
					return nil, fmt.Errorf("lossy campaign %s/%s: zero cycle count at %d per mille",
						s.Name, wl.Name, rate)
				}
				out.Rows = append(out.Rows, LossyRow{
					Scheme:        s.Name,
					Workload:      wl.Name,
					RatePerMille:  rate,
					Cycles:        r.Cycles,
					Slowdown:      float64(r.Cycles) / float64(clean[k]),
					Dropped:       r.Stats.Net.MsgDropped,
					Corrupt:       r.Stats.Net.CorruptDetected,
					DupSuppressed: r.Stats.Net.DupSuppressed,
					Retransmits:   r.Stats.Net.Retransmits,
					MSHRReissues:  r.Stats.Cache.MSHRTimeouts,
				})
			}
		}
	}
	return out, nil
}

// String renders the survival sweep as a table.
func (l *LossyResult) String() string {
	t := newTable(fmt.Sprintf("Lossy interconnect: recovery cost vs drop rate (seed %#x, checker on)", l.Seed),
		"Scheme", "Workload", "Loss o/oo", "Cycles", "Slowdown x", "Dropped", "Corrupt", "Dups supp", "Retransmits", "MSHR reissue")
	for _, r := range l.Rows {
		t.addRow(r.Scheme, r.Workload, fmt.Sprint(r.RatePerMille), fmt.Sprint(r.Cycles), f2(r.Slowdown),
			fmt.Sprint(r.Dropped), fmt.Sprint(r.Corrupt), fmt.Sprint(r.DupSuppressed),
			fmt.Sprint(r.Retransmits), fmt.Sprint(r.MSHRReissues))
	}
	t.addNote("survival contract: every run completes coherently at rates up to the ceiling; loss only costs cycles")
	return t.String()
}

// String renders the campaign as a table.
func (f *FaultResult) String() string {
	t := newTable(fmt.Sprintf("Chaos campaign: slowdown under injected faults (seed %#x, checker on)", f.Seed),
		"Scheme", "Workload", "Intensity", "Cycles", "Slowdown x", "Windows", "Jitter cyc", "Filter supp", "Inj refused")
	for _, r := range f.Rows {
		t.addRow(r.Scheme, r.Workload, f2(r.Intensity), fmt.Sprint(r.Cycles), f2(r.Slowdown),
			fmt.Sprint(r.FaultWindows), fmt.Sprint(r.JitterDelay),
			fmt.Sprint(r.FilterSuppressed), fmt.Sprint(r.InjRefused))
	}
	t.addNote("degradation contract: every run completes coherently; faults may only cost cycles")
	return t.String()
}
