package pushmulticast

import (
	"context"

	"fmt"

	"pushmulticast/internal/stats"
	"pushmulticast/internal/workload"
)

// perfSchemes is the Fig 11 comparison set (baseline separately).
func perfSchemes() []Scheme {
	return []Scheme{Coalesce(), MSP(), PushAck(), OrdPush()}
}

// Fig11Row holds one workload's speedups over the baseline plus MPKI.
type Fig11Row struct {
	Workload string
	// Speedup maps scheme name -> baseline-cycles / scheme-cycles.
	Speedup map[string]float64
	// L2MPKI maps scheme name -> MPKI (baseline included).
	L2MPKI map[string]float64
}

// Fig11Result reproduces Fig 11 for one core count.
type Fig11Result struct {
	Cores   int
	Schemes []string
	Rows    []Fig11Row
	// Geomean maps scheme name -> geometric-mean speedup.
	Geomean map[string]float64
	// Max maps scheme name -> best speedup.
	Max map[string]float64
}

// Fig11 measures execution-time speedup and L2 MPKI for
// Coalesce/MSP/PushAck/OrdPush against L1Bingo-L2Stride.
func Fig11(o ExpOptions) (*Fig11Result, error) {
	o = o.withDefaults()
	def := Workloads()
	if o.Cores == 64 {
		// The paper's 64-core figure uses the non-PARSEC set plus PARSEC;
		// we default to the non-PARSEC set to bound runtime.
		def = workload.NonParsec()
	}
	wls, err := o.pickWorkloads(def)
	if err != nil {
		return nil, err
	}
	schemes := append([]Scheme{Baseline()}, perfSchemes()...)
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &Fig11Result{
		Cores:   o.Cores,
		Geomean: map[string]float64{},
		Max:     map[string]float64{},
	}
	for _, s := range perfSchemes() {
		out.Schemes = append(out.Schemes, s.Name)
	}
	per := map[string][]float64{}
	for _, wl := range wls {
		base := res[runKey{Baseline().Name, wl.Name}]
		row := Fig11Row{
			Workload: wl.Name,
			Speedup:  map[string]float64{},
			L2MPKI:   map[string]float64{Baseline().Name: base.L2MPKI()},
		}
		for _, s := range perfSchemes() {
			r := res[runKey{s.Name, wl.Name}]
			sp, err := speedup(base, r)
			if err != nil {
				return nil, err
			}
			row.Speedup[s.Name] = sp
			row.L2MPKI[s.Name] = r.L2MPKI()
			per[s.Name] = append(per[s.Name], sp)
		}
		out.Rows = append(out.Rows, row)
	}
	for name, sps := range per {
		gm, err := geomean(sps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out.Geomean[name] = gm
		max := 0.0
		for _, v := range sps {
			if v > max {
				max = v
			}
		}
		out.Max[name] = max
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig11Result) String() string {
	cols := []string{"Workload"}
	for _, s := range f.Schemes {
		cols = append(cols, s+" x")
	}
	cols = append(cols, "MPKI(base)", "MPKI(OrdPush)")
	t := newTable(fmt.Sprintf("Fig 11: speedup over L1Bingo-L2Stride (%d cores)", f.Cores), cols...)
	for _, r := range f.Rows {
		cells := []string{r.Workload}
		for _, s := range f.Schemes {
			cells = append(cells, f2(r.Speedup[s]))
		}
		cells = append(cells, f1(r.L2MPKI["L1Bingo-L2Stride"]), f1(r.L2MPKI["OrdPush"]))
		t.addRow(cells...)
	}
	g := []string{"geomean"}
	m := []string{"max"}
	for _, s := range f.Schemes {
		g = append(g, f2(f.Geomean[s]))
		m = append(m, f2(f.Max[s]))
	}
	t.addRow(append(g, "", "")...)
	t.addRow(append(m, "", "")...)
	return t.String()
}

// Fig12Row is one (scheme, workload)'s push usage breakdown, in percent of
// received pushes.
type Fig12Row struct {
	Scheme, Workload string
	// Percent indexes by stats.PushOutcome.
	Percent [stats.NumPushOutcomes]float64
	Total   uint64
}

// Fig12Result reproduces Fig 12 (push accuracy).
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 categorizes push usage at private caches for MSP, PushAck, and
// OrdPush.
func Fig12(o ExpOptions) (*Fig12Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{MSP(), PushAck(), OrdPush()}
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{}
	for _, s := range schemes {
		for _, wl := range wls {
			r := res[runKey{s.Name, wl.Name}]
			row := Fig12Row{Scheme: s.Name, Workload: wl.Name, Total: r.Stats.Cache.TotalPushes()}
			if row.Total > 0 {
				for oc := stats.PushOutcome(0); oc < stats.NumPushOutcomes; oc++ {
					row.Percent[oc] = float64(r.Stats.Cache.PushOutcomes[oc]) / float64(row.Total)
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig12Result) String() string {
	t := newTable("Fig 12: push usage breakdown at private caches",
		"Scheme", "Workload", "DeadlockDrop", "RedundDrop", "CohDrop", "Unused", "MissToHit", "EarlyResp", "Pushes")
	for _, r := range f.Rows {
		t.addRow(r.Scheme, r.Workload,
			pct(r.Percent[stats.PushDeadlockDrop]), pct(r.Percent[stats.PushRedundancyDrop]),
			pct(r.Percent[stats.PushCoherenceDrop]), pct(r.Percent[stats.PushUnused]),
			pct(r.Percent[stats.PushMissToHit]), pct(r.Percent[stats.PushEarlyResp]),
			fmt.Sprint(r.Total))
	}
	return t.String()
}

// Fig13Row is one (scheme, workload)'s traffic by category, normalized to
// the baseline's total traffic.
type Fig13Row struct {
	Scheme, Workload string
	// Normalized link-flit fractions relative to baseline total.
	ReadShared, PushAckT, ReadRequest, Exclusive, WriteBack, Others float64
	Total                                                           float64
}

// Fig13Result reproduces Fig 13 (network traffic breakdown, normalized).
type Fig13Result struct {
	Rows []Fig13Row
	// AvgSaving is the mean total-traffic saving of OrdPush vs baseline
	// across workloads (the paper's headline 33%/43%).
	AvgSavingOrdPush float64
}

// Fig13 measures per-category NoC traffic for MSP, PushAck, and OrdPush
// normalized to L1Bingo-L2Stride.
func Fig13(o ExpOptions) (*Fig13Result, error) {
	o = o.withDefaults()
	wls, err := o.pickWorkloads(workload.NonParsec())
	if err != nil {
		return nil, err
	}
	schemes := []Scheme{Baseline(), MSP(), PushAck(), OrdPush()}
	res, err := matrix(context.Background(), o, func(s Scheme) Config { return o.baseConfig().WithScheme(s) }, schemes, wls)
	if err != nil {
		return nil, err
	}
	out := &Fig13Result{}
	var savings []float64
	for _, s := range schemes[1:] {
		for _, wl := range wls {
			base := float64(res[runKey{Baseline().Name, wl.Name}].Stats.Net.TotalFlits())
			if base == 0 {
				base = 1
			}
			r := res[runKey{s.Name, wl.Name}]
			c := r.Stats.Net.TotalFlitsByClass
			row := Fig13Row{
				Scheme: s.Name, Workload: wl.Name,
				ReadShared:  float64(c[stats.ClassReadSharedData]+c[stats.ClassPushData]) / base,
				PushAckT:    float64(c[stats.ClassPushAck]) / base,
				ReadRequest: float64(c[stats.ClassReadRequest]) / base,
				Exclusive:   float64(c[stats.ClassExclusiveData]) / base,
				WriteBack:   float64(c[stats.ClassWriteBackData]) / base,
				Others:      float64(c[stats.ClassOther]) / base,
				Total:       float64(r.Stats.Net.TotalFlits()) / base,
			}
			out.Rows = append(out.Rows, row)
			if s.Name == OrdPush().Name {
				savings = append(savings, 1-row.Total)
			}
		}
	}
	for _, v := range savings {
		out.AvgSavingOrdPush += v
	}
	if len(savings) > 0 {
		out.AvgSavingOrdPush /= float64(len(savings))
	}
	return out, nil
}

// String renders the figure as a table.
func (f *Fig13Result) String() string {
	t := newTable("Fig 13: NoC traffic breakdown normalized to baseline",
		"Scheme", "Workload", "ReadShared", "PushAck", "ReadReq", "Exclusive", "WriteBack", "Others", "Total")
	for _, r := range f.Rows {
		t.addRow(r.Scheme, r.Workload, f2(r.ReadShared), f2(r.PushAckT), f2(r.ReadRequest),
			f2(r.Exclusive), f2(r.WriteBack), f2(r.Others), f2(r.Total))
	}
	t.addNote("average OrdPush traffic saving: %s (paper: 33%% at 16 cores, 43%% at 64)", pct(f.AvgSavingOrdPush))
	return t.String()
}
