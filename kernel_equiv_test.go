package pushmulticast

import (
	"reflect"
	"sync"
	"testing"
)

// equivSchemes are the scheme points the kernel cross-check covers: the
// baseline, the bare push ablation, and the full OrdPush design.
func equivSchemes() []Scheme {
	return []Scheme{Baseline(), AblationPush(), OrdPush()}
}

// TestSparseDenseEquivalence is the wake-driven kernel's correctness
// contract: for every tiny-scale workload and scheme, the sparse
// (wake-driven) and dense (tick-everything) kernels must produce
// byte-identical results — same cycle count, same full counter bundle. Any
// divergence means a component slept through a cycle in which the dense
// kernel would have made progress (a missed wake) or mis-reconstructed a
// per-cycle counter.
func TestSparseDenseEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checking every workload is slow")
	}
	for _, sch := range equivSchemes() {
		for _, wl := range Workloads() {
			sch, wl := sch, wl
			t.Run(sch.Name+"/"+wl.Name, func(t *testing.T) {
				t.Parallel()
				var sparse, dense Results
				var sErr, dErr error
				var wg sync.WaitGroup
				wg.Add(2)
				go func() {
					defer wg.Done()
					cfg := ScaledConfig(Default16()).WithScheme(sch)
					sparse, sErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				go func() {
					defer wg.Done()
					cfg := ScaledConfig(Default16()).WithScheme(sch)
					cfg.DenseKernel = true
					dense, dErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				wg.Wait()
				if sErr != nil || dErr != nil {
					t.Fatalf("run failed: sparse=%v dense=%v", sErr, dErr)
				}
				if sparse.Cycles != dense.Cycles {
					t.Errorf("cycle count diverged: sparse=%d dense=%d", sparse.Cycles, dense.Cycles)
				}
				if !reflect.DeepEqual(sparse.Stats, dense.Stats) {
					t.Errorf("stats diverged:\nsparse: %+v\ndense:  %+v", sparse.Stats, dense.Stats)
				}
			})
		}
	}
}

// TestKernelDeterminism runs the same configuration twice and requires
// fully identical Results (cycles and every counter): the wake-driven
// scheduler must not introduce any ordering nondeterminism.
func TestKernelDeterminism(t *testing.T) {
	for _, sch := range equivSchemes() {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			t.Parallel()
			cfg := ScaledConfig(Default16()).WithScheme(sch)
			a, err := Run(cfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cycles != b.Cycles {
				t.Errorf("cycle count not deterministic: %d vs %d", a.Cycles, b.Cycles)
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Errorf("stats not deterministic:\nfirst:  %+v\nsecond: %+v", a.Stats, b.Stats)
			}
		})
	}
}
