package pushmulticast

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// equivSchemes are the scheme points the kernel cross-check covers: the
// baseline, the bare push ablation, and the full OrdPush design.
func equivSchemes() []Scheme {
	return []Scheme{Baseline(), AblationPush(), OrdPush()}
}

// withParallel configures the parallel tick executor with a threshold of 1
// so even tiny-scale cycles take the staged-commit path (the default
// threshold would route most of them to the serial fallback, testing
// nothing).
func withParallel(cfg Config, workers int) Config {
	cfg.ParallelWorkers = workers
	cfg.ParallelThreshold = 1
	return cfg
}

// withCheck enables the invariant checker and the event trace. Beyond
// validating protocol invariants on every run, this upgrades the
// equivalence oracle: Results carries the hash and count of the full event
// history, so the cross-kernel comparison covers every injection,
// delivery, filter action, push trigger, and memory access in order — not
// just end-state counters.
func withCheck(cfg Config) Config {
	cfg.Check = true
	cfg.TraceN = 64
	return cfg
}

// checkIdentical asserts two runs produced byte-identical results, down to
// their full causal event histories.
func checkIdentical(t *testing.T, aName, bName string, a, b Results) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Errorf("cycle count diverged: %s=%d %s=%d", aName, a.Cycles, bName, b.Cycles)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("stats diverged:\n%s: %+v\n%s:  %+v", aName, a.Stats, bName, b.Stats)
	}
	if a.TraceHash != b.TraceHash || a.TraceEvents != b.TraceEvents {
		t.Errorf("event histories diverged: %s=(hash %#x, %d events) %s=(hash %#x, %d events)",
			aName, a.TraceHash, a.TraceEvents, bName, b.TraceHash, b.TraceEvents)
	}
}

// TestSparseDenseEquivalence is the kernel's correctness contract, run
// three ways: for every tiny-scale workload and scheme, the sparse
// (wake-driven), dense (tick-everything), and parallel (staged-commit
// multi-worker) kernels must produce byte-identical results — same cycle
// count, same full counter bundle. A sparse/dense divergence means a
// component slept through a cycle in which the dense kernel would have made
// progress (a missed wake) or mis-reconstructed a per-cycle counter; a
// parallel divergence means a cross-lane effect escaped the staged-commit
// path.
func TestSparseDenseEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checking every workload is slow")
	}
	for _, sch := range equivSchemes() {
		for _, wl := range Workloads() {
			sch, wl := sch, wl
			t.Run(sch.Name+"/"+wl.Name, func(t *testing.T) {
				t.Parallel()
				var sparse, dense, par Results
				var sErr, dErr, pErr error
				var wg sync.WaitGroup
				wg.Add(3)
				go func() {
					defer wg.Done()
					cfg := withCheck(ScaledConfig(Default16()).WithScheme(sch))
					sparse, sErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				go func() {
					defer wg.Done()
					cfg := withCheck(ScaledConfig(Default16()).WithScheme(sch))
					cfg.DenseKernel = true
					dense, dErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				go func() {
					defer wg.Done()
					cfg := withCheck(withParallel(ScaledConfig(Default16()).WithScheme(sch), 4))
					par, pErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				wg.Wait()
				if sErr != nil || dErr != nil || pErr != nil {
					t.Fatalf("run failed: sparse=%v dense=%v parallel=%v", sErr, dErr, pErr)
				}
				checkIdentical(t, "sparse", "dense", sparse, dense)
				checkIdentical(t, "sparse", "parallel", sparse, par)
			})
		}
	}
}

// TestParallelEquivalence is the short-mode-capable slice of the three-way
// oracle: serial sparse vs parallel across all equivalence schemes on two
// contrasting workloads (high-sharing cachebw, irregular bfs) at 16 cores,
// and — outside short mode — at 64 cores as well, where parallel sections
// span 64 lanes.
func TestParallelEquivalence(t *testing.T) {
	coreCounts := []int{16}
	if !testing.Short() {
		coreCounts = append(coreCounts, 64)
	}
	for _, cores := range coreCounts {
		schemes := equivSchemes()
		if cores == 64 {
			// The bare-push ablation simulates ~1.3M cycles at 64 cores on
			// cachebw — unfiltered pushes congest the mesh, a modeled result
			// already cross-checked at 16 cores above — which is ~45x the
			// cost of every other cell in this matrix. MSP keeps a push
			// scheme in the 64-core matrix and adds PushAck-protocol
			// (directory P-state) coverage at scale instead of repeating a
			// second ProtoOrdPush variant.
			schemes = []Scheme{Baseline(), MSP(), OrdPush()}
		}
		for _, sch := range schemes {
			for _, wlName := range []string{"cachebw", "bfs"} {
				cores, sch, wlName := cores, sch, wlName
				t.Run(fmt.Sprintf("%dc/%s/%s", cores, sch.Name, wlName), func(t *testing.T) {
					t.Parallel()
					base := Default16()
					if cores == 64 {
						base = Default64()
					}
					serial, err := Run(withCheck(ScaledConfig(base).WithScheme(sch)), wlName, ScaleTiny)
					if err != nil {
						t.Fatal(err)
					}
					par, err := Run(withCheck(withParallel(ScaledConfig(base).WithScheme(sch), 4)), wlName, ScaleTiny)
					if err != nil {
						t.Fatal(err)
					}
					checkIdentical(t, "serial", "parallel", serial, par)
				})
			}
		}
	}
}

// TestManycoreEquivalence is the scale point of the three-way oracle: on
// the 256-core 16x16 mesh (the largest supported machine, where parallel
// sections span 256 lanes and the batched dispatch and sharded router walk
// are maximally exercised), the sparse, dense, and parallel kernels must
// still produce byte-identical results down to the full event history.
func TestManycoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("256-core cross-check is slow")
	}
	base := ScaledConfig(Default256()).WithScheme(OrdPush())
	// The structural checker sweep walks all 256 tiles; at the default
	// 64-cycle period it dominates this test's runtime. A 512-cycle period
	// keeps every structural invariant checked (and the event-driven layer
	// at full rate) at an eighth of the sweep cost.
	base.CheckEvery = 512
	var sparse, dense, par Results
	var sErr, dErr, pErr error
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		sparse, sErr = Run(withCheck(base), "cachebw", ScaleTiny)
	}()
	go func() {
		defer wg.Done()
		cfg := withCheck(base)
		cfg.DenseKernel = true
		dense, dErr = Run(cfg, "cachebw", ScaleTiny)
	}()
	go func() {
		defer wg.Done()
		par, pErr = Run(withCheck(withParallel(base, 4)), "cachebw", ScaleTiny)
	}()
	wg.Wait()
	if sErr != nil || dErr != nil || pErr != nil {
		t.Fatalf("run failed: sparse=%v dense=%v parallel=%v", sErr, dErr, pErr)
	}
	checkIdentical(t, "sparse", "dense", sparse, dense)
	checkIdentical(t, "sparse", "parallel", sparse, par)
}

// TestParallelWorkerCountInvariance sweeps the staged-commit executor across
// worker counts 1..8 on the 64-core machine and requires every worker count
// to reproduce the serial kernel's full event history: batch sizing (which
// varies with the worker count) must never reorder committed effects.
func TestParallelWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("worker sweep is slow")
	}
	base := ScaledConfig(Default64()).WithScheme(OrdPush())
	ref, err := Run(withCheck(base), "cachebw", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 8; w++ {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			t.Parallel()
			par, err := Run(withCheck(withParallel(base, w)), "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, "serial", fmt.Sprintf("parallel-%d", w), ref, par)
		})
	}
}

// TestParallelDeterminism runs the parallel kernel twice on the same
// configuration and requires fully identical Results: worker scheduling
// must never leak into simulation outcomes.
func TestParallelDeterminism(t *testing.T) {
	for _, sch := range equivSchemes() {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			t.Parallel()
			cfg := withCheck(withParallel(ScaledConfig(Default16()).WithScheme(sch), 4))
			a, err := Run(cfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, "first", "second", a, b)
		})
	}
}

// TestKernelDeterminism runs the same configuration twice and requires
// fully identical Results (cycles and every counter): the wake-driven
// scheduler must not introduce any ordering nondeterminism.
func TestKernelDeterminism(t *testing.T) {
	for _, sch := range equivSchemes() {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			t.Parallel()
			cfg := withCheck(ScaledConfig(Default16()).WithScheme(sch))
			a, err := Run(cfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg, "cachebw", ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			if a.Cycles != b.Cycles {
				t.Errorf("cycle count not deterministic: %d vs %d", a.Cycles, b.Cycles)
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Errorf("stats not deterministic:\nfirst:  %+v\nsecond: %+v", a.Stats, b.Stats)
			}
		})
	}
}
