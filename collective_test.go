package pushmulticast

import (
	"sync"
	"testing"
)

// collectiveSchemes are the scheme points the collective cross-check covers:
// the prefetching baseline and both push designs the collective figure
// compares (ExpCollective).
func collectiveSchemes() []Scheme {
	return []Scheme{Baseline(), PushAck(), OrdPush()}
}

// TestCollectiveEquivalence extends the kernel correctness contract to the
// collective family: for every collective at default parameters and every
// compared scheme, the serial sparse, dense, and parallel staged-commit
// kernels must produce byte-identical results — cycle count, full counter
// bundle, and the complete causal event history (trace hash and event
// count) — with the invariant checker armed.
func TestCollectiveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checking every collective is slow")
	}
	for _, sch := range collectiveSchemes() {
		for _, wl := range CollectiveWorkloads() {
			sch, wl := sch, wl
			t.Run(sch.Name+"/"+wl.Name, func(t *testing.T) {
				t.Parallel()
				var sparse, dense, par Results
				var sErr, dErr, pErr error
				var wg sync.WaitGroup
				wg.Add(3)
				go func() {
					defer wg.Done()
					cfg := withCheck(ScaledConfig(Default16()).WithScheme(sch))
					sparse, sErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				go func() {
					defer wg.Done()
					cfg := withCheck(ScaledConfig(Default16()).WithScheme(sch))
					cfg.DenseKernel = true
					dense, dErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				go func() {
					defer wg.Done()
					cfg := withCheck(withParallel(ScaledConfig(Default16()).WithScheme(sch), 4))
					par, pErr = RunWorkload(cfg, wl, ScaleTiny)
				}()
				wg.Wait()
				if sErr != nil || dErr != nil || pErr != nil {
					t.Fatalf("run failed: sparse=%v dense=%v parallel=%v", sErr, dErr, pErr)
				}
				checkIdentical(t, "sparse", "dense", sparse, dense)
				checkIdentical(t, "sparse", "parallel", sparse, par)
			})
		}
	}
}

// TestCollectiveParamEquivalence covers the parameterized (non-default)
// corners of the family: partial participation (idle cores at the barriers)
// and alternate fan-outs must also replay byte-identically serial vs
// parallel.
func TestCollectiveParamEquivalence(t *testing.T) {
	variants := []struct {
		name string
		p    CollectiveParams
	}{
		{"allreduce", CollectiveParams{Sharers: 8, Fanout: 2}},
		{"broadcast", CollectiveParams{Fanout: 2}},
		{"prodcons", CollectiveParams{Sharers: 12, Fanout: 5}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			wl, err := CollectiveWorkload(v.name, v.p)
			if err != nil {
				t.Fatal(err)
			}
			cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
			serial, err := RunWorkload(cfg, wl, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunWorkload(withParallel(cfg, 4), wl, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			checkIdentical(t, "serial", "parallel", serial, par)
		})
	}
}

// TestCollectivePushesFire pins the family's reason to exist: the fan-out
// collectives (broadcast, prodcons) must actually trigger pushes under
// OrdPush — their consumers re-reference producer lines past the private L2.
// The ring collectives are honestly unicast (one reader per buffer), so no
// assertion is made for them.
func TestCollectivePushesFire(t *testing.T) {
	for _, name := range []string{"broadcast", "prodcons"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(ScaledConfig(Default16()).WithScheme(OrdPush()), name, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Cache.PushesTriggered == 0 {
				t.Errorf("%s triggered no pushes under OrdPush; the sharing structure is broken", name)
			}
		})
	}
}

// TestCollectiveLossyReplay extends the recovery-layer determinism contract
// to the collectives: a generated lossy plan must replay byte-identically
// across the serial and parallel kernels, and the plan must actually bite.
func TestCollectiveLossyReplay(t *testing.T) {
	plan := GenerateLossyPlan(16, 9, 40)
	for _, name := range []string{"broadcast", "prodcons"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mkCfg := func() Config {
				cfg := withCheck(ScaledConfig(Default16()).WithScheme(OrdPush()))
				cfg.Faults = &plan
				return cfg
			}
			serial, err := Run(mkCfg(), name, ScaleTiny)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			par, err := Run(withParallel(mkCfg(), 4), name, ScaleTiny)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			checkIdentical(t, "serial", "parallel", serial, par)
			loss := serial.Stats.Net.MsgDropped + serial.Stats.Net.DupSuppressed +
				serial.Stats.Net.CorruptDetected
			if loss == 0 {
				t.Error("no lossy event ever fired; the plan never bit")
			}
		})
	}
}

// TestCollectiveMemoKeyParams pins the memo-identity fix that rode in with
// the family: two collectives sharing a Name but differing in parameters
// must occupy distinct memo entries, while identical parameters must alias.
func TestCollectiveMemoKeyParams(t *testing.T) {
	cfg := ScaledConfig(Default16()).WithScheme(OrdPush())
	mk := func(p CollectiveParams) memoKey {
		wl, err := CollectiveWorkload("broadcast", p)
		if err != nil {
			t.Fatal(err)
		}
		return newMemoKey(cfg, wl, ScaleTiny)
	}
	f2, f4 := mk(CollectiveParams{Fanout: 2}), mk(CollectiveParams{Fanout: 4})
	if f2 == f4 {
		t.Error("collectives with different fanout share a memo key")
	}
	if again := mk(CollectiveParams{Fanout: 2}); again != f2 {
		t.Error("identical collective parameters got distinct memo keys")
	}
}
