// Command experiments regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	experiments                     # all figures, quick scale, 16 cores
//	experiments -fig 11,20          # a subset
//	experiments -fig 11 -cores 64   # the 64-core variants
//	experiments -scale full         # unscaled Table I machine (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pushmulticast"
)

func main() {
	var (
		figs  = flag.String("fig", "all", "comma-separated figure list: 2,3,4,11,12,13,14,15,16,17,18,19,20,t1,t2,collective,interplay,recent,future,faults,lossy or 'all' (all excludes the chaos campaigns 'faults' and 'lossy'; request them by name)")
		cores = flag.Int("cores", 16, "core count: 16 or 64")
		scale = flag.String("scale", "quick", "input scale: tiny|quick|full")
		par   = flag.Int("par", 0, "max concurrent simulations (0 = NumCPU)")
	)
	flag.Parse()

	var sc pushmulticast.Scale
	switch strings.ToLower(*scale) {
	case "tiny":
		sc = pushmulticast.ScaleTiny
	case "quick":
		sc = pushmulticast.ScaleQuick
	case "full":
		sc = pushmulticast.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	o := pushmulticast.ExpOptions{Scale: sc, Cores: *cores, Parallelism: *par}

	want := map[string]bool{}
	all := *figs == "all"
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	// The chaos campaign runs with the invariant checker on every simulation,
	// which is deliberately slow; it only runs when requested by name.
	sel := func(name string) bool { return (all && name != "faults" && name != "lossy") || want[name] }

	type exp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	experiments := []exp{
		{"t1", func() (fmt.Stringer, error) { return str(pushmulticast.TableI(o)), nil }},
		{"t2", func() (fmt.Stringer, error) { return str(pushmulticast.TableII()), nil }},
		{"2", func() (fmt.Stringer, error) { return pushmulticast.Fig2(o) }},
		{"3", func() (fmt.Stringer, error) { return pushmulticast.Fig3(o) }},
		{"4", func() (fmt.Stringer, error) { return pushmulticast.Fig4(o) }},
		{"11", func() (fmt.Stringer, error) { return pushmulticast.Fig11(o) }},
		{"12", func() (fmt.Stringer, error) { return pushmulticast.Fig12(o) }},
		{"13", func() (fmt.Stringer, error) { return pushmulticast.Fig13(o) }},
		{"14", func() (fmt.Stringer, error) { return pushmulticast.Fig14(o) }},
		{"15", func() (fmt.Stringer, error) { return pushmulticast.Fig15(o) }},
		{"16", func() (fmt.Stringer, error) { return pushmulticast.Fig16(o) }},
		{"17", func() (fmt.Stringer, error) { return both(pushmulticast.Fig17a(o))(pushmulticast.Fig17b(o)) }},
		{"18", func() (fmt.Stringer, error) { return pushmulticast.Fig18(o) }},
		{"19", func() (fmt.Stringer, error) { return pushmulticast.Fig19(o) }},
		{"20", func() (fmt.Stringer, error) { return pushmulticast.Fig20(o) }},
		{"collective", func() (fmt.Stringer, error) { return pushmulticast.ExpCollective(o) }},
		{"interplay", func() (fmt.Stringer, error) { return pushmulticast.ExtInterplay(o) }},
		{"recent", func() (fmt.Stringer, error) { return pushmulticast.ExtRecentPushTable(o) }},
		{"future", func() (fmt.Stringer, error) { return pushmulticast.ExtFutureDirections(o) }},
		{"faults", func() (fmt.Stringer, error) { return pushmulticast.ExpFaults(o) }},
		{"lossy", func() (fmt.Stringer, error) { return pushmulticast.ExpLossy(o) }},
	}
	ran := 0
	for _, e := range experiments {
		if !sel(e.name) {
			continue
		}
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: fig %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out.String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(1)
	}
}

// str adapts a plain string to fmt.Stringer.
type str string

func (s str) String() string { return string(s) }

// both concatenates two experiment results, propagating the first error.
func both(a fmt.Stringer, errA error) func(fmt.Stringer, error) (fmt.Stringer, error) {
	return func(b fmt.Stringer, errB error) (fmt.Stringer, error) {
		if errA != nil {
			return nil, errA
		}
		if errB != nil {
			return nil, errB
		}
		return str(a.String() + "\n" + b.String()), nil
	}
}
