// Command simd is the campaign service daemon: an HTTP/JSON API over the
// Push Multicast simulation harness.
//
// Usage:
//
//	simd -addr :8080 -workers 4 -drain 30s
//
// Endpoints:
//
//	POST /campaigns   run a campaign spec, streaming NDJSON results
//	GET  /runs/{id}   fetch a completed run record by identity
//	POST /snapshots   upload a warm-start donor snapshot
//	GET  /healthz     liveness
//	GET  /metrics     queue depth, memo hit rate, per-tenant wait quantiles
//
// A minimal campaign:
//
//	curl -sS localhost:8080/campaigns -d \
//	  '{"scale":"tiny","schemes":["Baseline","OrdPush"],"workloads":[{"name":"cachebw"}]}'
//
// SIGINT/SIGTERM shut the daemon down gracefully: new campaigns are refused,
// in-flight runs get the -drain window to finish, and stragglers are
// canceled at their next cancellation barrier. A clean (or cleanly
// hard-canceled) shutdown exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pushmulticast/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrently executing simulations (0 = GOMAXPROCS)")
		maxQueue = flag.Int("maxqueue", 0, "queued-run bound across all tenants (0 = 1024)")
		memoCap  = flag.Int("memocap", 0, "completed-run memo capacity, LRU-evicted (0 = library default)")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown drain window for in-flight runs before they are canceled")
	)
	flag.Parse()
	if err := run(*addr, *workers, *maxQueue, *memoCap, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxQueue, memoCap int, drain time.Duration) error {
	app := serve.New(serve.Options{Workers: workers, MaxQueue: maxQueue, MemoCapacity: memoCap})
	srv := &http.Server{Addr: addr, Handler: app.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "simd: listening on %s (drain %s)\n", addr, drain)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "simd: %s; draining in-flight runs (up to %s)\n", sig, drain)
	}
	// Stop accepting connections while the scheduler drains; campaign
	// streams still in progress finish writing within the same window.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain+10*time.Second)
	defer cancel()
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Shutdown(shutdownCtx) }()
	if err := app.Close(drain); err != nil {
		// Drain expired and stragglers were canceled: still a clean exit —
		// the point of graceful shutdown is bounded, not unbounded, waiting.
		fmt.Fprintln(os.Stderr, "simd:", err)
	}
	if err := <-httpDone; err != nil {
		fmt.Fprintln(os.Stderr, "simd: http shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "simd: shutdown complete")
	return nil
}
