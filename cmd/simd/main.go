// Command simd is the campaign service daemon: an HTTP/JSON API over the
// Push Multicast simulation harness.
//
// Usage:
//
//	simd -addr :8080 -workers 4 -drain 30s
//
// Endpoints:
//
//	POST /campaigns   run a campaign spec, streaming NDJSON results
//	GET  /runs/{id}   fetch a completed run record by identity
//	POST /shards      execute one shard of a distributed campaign (worker side)
//	POST /snapshots   upload a warm-start donor snapshot
//	GET  /healthz     liveness
//	GET  /metrics     queue depth, memo hit rate, per-tenant wait quantiles,
//	                  journal and shard-coordinator counters
//
// A minimal campaign:
//
//	curl -sS localhost:8080/campaigns -d \
//	  '{"scale":"tiny","schemes":["Baseline","OrdPush"],"workloads":[{"name":"cachebw"}]}'
//
// With -peers the daemon is a shard coordinator: campaigns are split into
// shards and dispatched across the listed simd replicas with retry,
// reassignment on worker death, and degradation to local execution when no
// replica is healthy. With -journal completed runs persist to an append-only
// NDJSON journal, and a killed daemon restarted on the same journal serves
// recovered runs without recomputing them. -quota bounds one tenant's
// in-flight runs (HTTP 429 over it).
//
// SIGINT/SIGTERM shut the daemon down gracefully: new campaigns are refused,
// in-flight runs get the -drain window to finish, and stragglers are
// canceled at their next cancellation barrier. A clean (or cleanly
// hard-canceled) shutdown exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pushmulticast/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrently executing simulations (0 = GOMAXPROCS)")
		maxQueue = flag.Int("maxqueue", 0, "queued-run bound across all tenants (0 = 1024)")
		memoCap  = flag.Int("memocap", 0, "completed-run memo capacity, LRU-evicted (0 = library default)")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown drain window for in-flight runs before they are canceled")

		quota       = flag.Int("quota", 0, "max in-flight (queued+running) runs per tenant; over-quota campaigns are refused with 429 (0 = unlimited)")
		peers       = flag.String("peers", "", "comma-separated simd replica base URLs; non-empty makes this daemon a shard coordinator")
		shardSize   = flag.Int("shardsize", 0, "runs per dispatched shard (0 = 1)")
		shardRetry  = flag.Int("shardretries", 0, "remote re-dispatches per shard before degrading to local execution (0 = 4)")
		shardTO     = flag.Duration("shardtimeout", 0, "one shard dispatch attempt bound (0 = 2m)")
		healthEvery = flag.Duration("healthevery", 0, "replica /healthz probe period (0 = 2s)")
		journal     = flag.String("journal", "", "crash-resume journal path (append-only NDJSON); empty keeps a memory-only journal")
	)
	flag.Parse()
	opts := serve.Options{
		Workers:        *workers,
		MaxQueue:       *maxQueue,
		MemoCapacity:   *memoCap,
		TenantQuota:    *quota,
		ShardSize:      *shardSize,
		ShardRetries:   *shardRetry,
		ShardTimeout:   *shardTO,
		HealthInterval: *healthEvery,
		JournalPath:    *journal,
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			opts.Peers = append(opts.Peers, strings.TrimSuffix(p, "/"))
		}
	}
	if err := run(*addr, opts, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
}

func run(addr string, opts serve.Options, drain time.Duration) error {
	app, err := serve.New(opts)
	if err != nil {
		return err
	}
	if len(opts.Peers) > 0 {
		fmt.Fprintf(os.Stderr, "simd: coordinating shards across %d replicas: %s\n", len(opts.Peers), strings.Join(opts.Peers, ", "))
	}
	srv := &http.Server{Addr: addr, Handler: app.Handler()}

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "simd: listening on %s (drain %s)\n", addr, drain)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "simd: %s; draining in-flight runs (up to %s)\n", sig, drain)
	}
	// Stop accepting connections while the scheduler drains; campaign
	// streams still in progress finish writing within the same window.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain+10*time.Second)
	defer cancel()
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Shutdown(shutdownCtx) }()
	if err := app.Close(drain); err != nil {
		// Drain expired and stragglers were canceled: still a clean exit —
		// the point of graceful shutdown is bounded, not unbounded, waiting.
		fmt.Fprintln(os.Stderr, "simd:", err)
	}
	if err := <-httpDone; err != nil {
		fmt.Fprintln(os.Stderr, "simd: http shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "simd: shutdown complete")
	return nil
}
