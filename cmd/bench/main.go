// Command bench measures simulator kernel throughput and emits
// BENCH_kernel.json, the performance-trajectory record for the wake-driven
// scheduler.
//
// It runs the headline throughput benchmark (the cachebw workload under
// OrdPush at tiny scale — the same measurement as BenchmarkRunCachebwOrdPush
// in bench_test.go) twice: once on the wake-driven kernel and once in the
// dense reference mode that ticks every component every cycle. Both runs
// report simulated cycles per wall second and allocations per run.
//
// With -mode parallel it instead sweeps the parallel tick executor across
// worker counts (and core counts, including the 256-core 16x16 mesh) against
// the serial sparse kernel and emits the BENCH_parallel.json scaling curve,
// including the executor's own scheduling counters: barrier crossings per
// cycle and the reduction batched dispatch achieves over per-lane dispatch.
//
// With -allocgate FILE it re-measures the wake-driven kernel's allocations
// per op and exits non-zero when they regressed more than 5% over the
// committed budget in FILE (BENCH_kernel.json's wake_driven.allocs_per_op) —
// the CI tripwire for reintroducing hot-path allocations.
//
// Profiling flags (-cpuprofile, -memprofile, -exectrace) capture the
// measured runs with runtime/pprof and runtime/trace.
//
// Usage:
//
//	go run ./cmd/bench                    # writes BENCH_kernel.json
//	go run ./cmd/bench -o - -benchtime 10x
//	go run ./cmd/bench -mode parallel -workers 1,2,4 -cores 64,256
//	go run ./cmd/bench -allocgate BENCH_kernel.json
//	go run ./cmd/bench -cpuprofile cpu.pprof -benchtime 3x
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"pushmulticast"
	"pushmulticast/internal/profiles"
)

// seedBaseline records the pre-wake-driven kernel measured at the growth
// seed (commit 988cf70) on the reference machine, interleaved with current-
// tree runs so machine drift cancels. It anchors the trajectory: wall-clock
// numbers are machine-specific, but the committed ratios were taken in one
// sitting.
var seedBaseline = measurement{
	Label:          "seed dense cycle-driven kernel (commit 988cf70)",
	NsPerOp:        322000000,
	SimcyclesPerOp: 21331,
	AllocsPerOp:    674193,
	BytesPerOp:     43639423,
}

type measurement struct {
	Label           string  `json:"label"`
	NsPerOp         int64   `json:"ns_per_op"`
	SimcyclesPerOp  float64 `json:"simcycles_per_op"`
	SimcyclesPerSec float64 `json:"simcycles_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

func (m *measurement) fill() {
	if m.NsPerOp > 0 {
		m.SimcyclesPerSec = m.SimcyclesPerOp / (float64(m.NsPerOp) / 1e9)
	}
}

type report struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Notes explains how to read the two speedup ratios.
	Notes []string `json:"notes"`

	WakeDriven     measurement `json:"wake_driven"`
	DenseReference measurement `json:"dense_reference"`
	SeedBaseline   measurement `json:"seed_baseline"`

	SpeedupVsSeed      float64 `json:"speedup_vs_seed"`
	SpeedupVsDenseMode float64 `json:"speedup_vs_dense_mode"`
	AllocReductionX    float64 `json:"alloc_reduction_vs_seed_x"`
}

// parallelEntry is one point of the scaling curve: the parallel executor at
// one worker count, with its scheduling-work counters.
type parallelEntry struct {
	Workers int         `json:"workers"`
	Run     measurement `json:"run"`
	// Exec is the executor's scheduling record for the measured run.
	Exec pushmulticast.ExecStats `json:"exec"`
	// CrossingsPerCycle is the barrier-and-claim scheduling operations per
	// executor cycle; BatchingReductionX is how many times fewer of them
	// batched dispatch performed than per-lane dispatch would have.
	CrossingsPerCycle     float64 `json:"crossings_per_cycle"`
	BatchingReductionX    float64 `json:"batching_reduction_x"`
	SpeedupVsSerialSparse float64 `json:"speedup_vs_serial_sparse"`
}

// machineCurve is the scaling curve on one core count.
type machineCurve struct {
	Cores        int             `json:"cores"`
	Workload     string          `json:"workload"`
	SerialSparse measurement     `json:"serial_sparse"`
	Parallel     []parallelEntry `json:"parallel"`
}

// parallelReport is the BENCH_parallel.json schema: the serial sparse kernel
// against the parallel tick executor, swept over worker and core counts.
type parallelReport struct {
	Benchmark  string   `json:"benchmark"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Notes      []string `json:"notes"`

	Machines []machineCurve `json:"machines"`
}

// benchConfig runs one configuration under testing's benchmark harness and
// returns the measurement plus the last run's executor counters.
func benchConfig(label string, cfg pushmulticast.Config) (measurement, pushmulticast.ExecStats) {
	var cycles uint64
	var exec pushmulticast.ExecStats
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pushmulticast.Run(cfg, "cachebw", pushmulticast.ScaleTiny)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
			exec = res.Exec
		}
	})
	m := measurement{
		Label:          label,
		NsPerOp:        r.NsPerOp(),
		SimcyclesPerOp: float64(cycles),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
	}
	m.fill()
	return m, exec
}

// run executes the cachebw/OrdPush tiny-scale simulation on the 16-core
// machine (the kernel-trajectory measurement).
func run(label string, dense bool) measurement {
	cfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).WithScheme(pushmulticast.OrdPush())
	cfg.DenseKernel = dense
	m, _ := benchConfig(label, cfg)
	return m
}

// configFor returns the swept machine at the given core count.
func configFor(cores int) (pushmulticast.Config, error) {
	var cfg pushmulticast.Config
	switch cores {
	case 16:
		cfg = pushmulticast.Default16()
	case 64:
		cfg = pushmulticast.Default64()
	case 256:
		cfg = pushmulticast.Default256()
	default:
		return cfg, fmt.Errorf("unsupported core count %d (use 16, 64, or 256)", cores)
	}
	return pushmulticast.ScaledConfig(cfg).WithScheme(pushmulticast.OrdPush()), nil
}

// runParallel measures the scaling curve: for each core count, the serial
// sparse kernel and the staged-commit executor at each worker count.
//
// Configurations are measured in interleaved rounds and each keeps its
// fastest round. A sequential sweep (serial first, every worker count after)
// charges any host slowdown mid-sweep — CPU steal, thermal throttling —
// entirely to the later configurations, which on a 1-CPU container skewed
// the serial-vs-parallel ratio by more than the effect being measured;
// round-robin order exposes every configuration to the same drift and the
// per-config minimum recovers its unthrottled sample.
func runParallel(out string, workerList, coreList []int, rounds int) error {
	rep := parallelReport{
		Benchmark:  "BenchmarkParallelKernel",
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Notes: []string{
			"All runs produce byte-identical simulation results; only wall-clock differs.",
			"speedup_vs_serial_sparse > 1 requires num_cpu > 1; on a single-CPU host the parallel executor cannot run batches concurrently and any residual staging overhead shows as a slowdown — the numbers here are an honest record of this machine, not the executor's ceiling.",
			"crossings_per_cycle counts barrier-and-claim scheduling operations (sections + batch claims + helper handoffs) per executor cycle; batching_reduction_x is the factor by which lane batching cut them versus per-lane dispatch.",
		},
	}
	if rep.NumCPU == 1 {
		rep.Notes = append(rep.Notes,
			"num_cpu is 1 on this host: no speedup claim is made or implied by this file.")
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"Each configuration was measured in %d interleaved rounds and reports its fastest round, so host-load drift during the sweep cannot masquerade as a serial-vs-parallel difference.", rounds))
	for _, cores := range coreList {
		base, err := configFor(cores)
		if err != nil {
			return err
		}
		curve := machineCurve{
			Cores:    cores,
			Workload: fmt.Sprintf("cachebw / OrdPush / tiny scale / %d cores", cores),
		}
		type slot struct {
			label   string
			cfg     pushmulticast.Config
			workers int // 0 = serial sparse
			best    measurement
			exec    pushmulticast.ExecStats
		}
		slots := []*slot{{label: "serial sparse kernel", cfg: base}}
		for _, w := range workerList {
			par := base
			par.ParallelWorkers = w
			slots = append(slots, &slot{
				label:   fmt.Sprintf("parallel executor (%d workers)", w),
				cfg:     par,
				workers: w,
			})
		}
		for r := 0; r < rounds; r++ {
			for _, s := range slots {
				m, exec := benchConfig(s.label, s.cfg)
				if r == 0 || m.NsPerOp < s.best.NsPerOp {
					s.best, s.exec = m, exec
				}
			}
		}
		curve.SerialSparse = slots[0].best
		for _, s := range slots[1:] {
			e := parallelEntry{
				Workers:            s.workers,
				Run:                s.best,
				Exec:               s.exec,
				CrossingsPerCycle:  s.exec.BarrierCrossingsPerCycle(),
				BatchingReductionX: s.exec.BatchingReductionX(),
			}
			if s.best.NsPerOp > 0 {
				e.SpeedupVsSerialSparse = float64(curve.SerialSparse.NsPerOp) / float64(s.best.NsPerOp)
			}
			curve.Parallel = append(curve.Parallel, e)
		}
		rep.Machines = append(rep.Machines, curve)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return nil
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	for _, mc := range rep.Machines {
		for _, e := range mc.Parallel {
			fmt.Printf("%d cores, %d workers: %.0f simcycles/sec, %.2fx vs serial sparse, %.2f crossings/cycle (batching cut %.1fx)\n",
				mc.Cores, e.Workers, e.Run.SimcyclesPerSec, e.SpeedupVsSerialSparse,
				e.CrossingsPerCycle, e.BatchingReductionX)
		}
	}
	fmt.Printf("wrote %s (%d cpus, GOMAXPROCS %d)\n", out, rep.NumCPU, rep.GoMaxProcs)
	return nil
}

// runWarmStart measures the checkpoint-forked knob sweep against its cold
// equivalent and emits the BENCH_snapshot.json record: total wall time for
// ten variants run from cycle zero versus one donor run to ~90% plus ten
// restores, with the exact-resume variant cross-checked against its cold run.
func runWarmStart(out string) error {
	rep, err := pushmulticast.ExpWarmStart(pushmulticast.ExpOptions{Scale: pushmulticast.ScaleTiny})
	if err != nil {
		return err
	}
	rep.GoOS = runtime.GOOS
	rep.GoArch = runtime.GOARCH
	rep.NumCPU = runtime.NumCPU()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return nil
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d variants forked at %.0f%% of %d cycles, %.2fx vs cold sweep (snapshot %d bytes)\n",
		out, rep.VariantCount, rep.BarrierFraction*100, rep.DonorCycles, rep.SpeedupX, rep.SnapshotBytes)
	return nil
}

// allocGate re-measures the wake-driven kernel's allocations per op against
// the committed budget and fails (exit 1 via the returned error) on a >5%
// regression. Alloc counts are deterministic enough for a hard gate; wall
// clock is not, so the gate reads nothing else.
func allocGate(budgetFile string) error {
	data, err := os.ReadFile(budgetFile)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %v", budgetFile, err)
	}
	budget := rep.WakeDriven.AllocsPerOp
	if budget <= 0 {
		return fmt.Errorf("%s: no wake_driven.allocs_per_op budget", budgetFile)
	}
	m := run("wake-driven kernel (alloc gate)", false)
	limit := budget + (budget+19)/20 // +5%, rounded up
	if m.AllocsPerOp > limit {
		return fmt.Errorf("alloc gate FAILED: %d allocs/op exceeds budget %d by more than 5%% (limit %d); if the regression is intended, re-record %s",
			m.AllocsPerOp, budget, limit, budgetFile)
	}
	fmt.Printf("alloc gate OK: %d allocs/op within 5%% of budget %d (limit %d)\n",
		m.AllocsPerOp, budget, limit)
	return nil
}

// parseIntList parses a comma-separated list of positive ints ("1,2,4").
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-%s: bad value %q", flagName, f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		out        = flag.String("o", "", "output path ('-' for stdout; default depends on -mode)")
		benchtime  = flag.String("benchtime", "5x", "benchmark time per kernel (testing -benchtime syntax)")
		mode       = flag.String("mode", "kernel", "benchmark: kernel (wake-driven vs dense, BENCH_kernel.json), parallel (serial vs parallel executor scaling curve, BENCH_parallel.json), or warmstart (cold sweep vs checkpoint-forked sweep, BENCH_snapshot.json)")
		workers    = flag.String("workers", "1,2,4", "parallel executor worker counts to sweep, comma-separated (-mode parallel)")
		coresF     = flag.String("cores", "64", "core counts to sweep, comma-separated from 16|64|256 (-mode parallel)")
		rounds     = flag.Int("rounds", 3, "interleaved measurement rounds per configuration; each reports its fastest (-mode parallel)")
		gate       = flag.String("allocgate", "", "gate mode: compare current allocs/op against FILE's wake_driven budget, exit non-zero on >5% regression")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to FILE")
		memprofile = flag.String("memprofile", "", "write an allocation (heap) profile to FILE at exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace of the measured runs to FILE")
	)
	testing.Init()
	flag.Parse()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fatal(err)
	}
	stopProf, err := profiles.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *gate != "" {
		if err := allocGate(*gate); err != nil {
			stopProf()
			fatal(err)
		}
		return
	}

	switch *mode {
	case "warmstart":
		if *out == "" {
			*out = "BENCH_snapshot.json"
		}
		if err := runWarmStart(*out); err != nil {
			stopProf()
			fatal(err)
		}
		return
	case "parallel":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		wl, err := parseIntList("workers", *workers)
		if err != nil {
			fatal(err)
		}
		cl, err := parseIntList("cores", *coresF)
		if err != nil {
			fatal(err)
		}
		if *rounds < 1 {
			fatal(fmt.Errorf("-rounds: must be >= 1"))
		}
		if err := runParallel(*out, wl, cl, *rounds); err != nil {
			stopProf()
			fatal(err)
		}
		return
	case "kernel":
		if *out == "" {
			*out = "BENCH_kernel.json"
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q (use kernel, parallel, or warmstart)", *mode))
	}

	rep := report{
		Benchmark: "BenchmarkRunCachebwOrdPush",
		Workload:  "cachebw / OrdPush / tiny scale / 16 cores",
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Notes: []string{
			"speedup_vs_seed compares against the pre-wake-driven kernel at the growth seed; its wall-clock numbers were measured interleaved with current-tree runs and are machine-specific.",
			"speedup_vs_dense_mode compares against this tree's own dense reference mode, which shares every hot-path optimization and differs only in ticking all components every cycle; it isolates the scheduler's contribution (tick-count ratio ~2.75x on this workload).",
		},
		SeedBaseline: seedBaseline,
	}
	rep.SeedBaseline.fill()
	rep.WakeDriven = run("wake-driven kernel", false)
	rep.DenseReference = run("dense reference mode (DenseKernel=true)", true)
	if rep.WakeDriven.NsPerOp > 0 {
		rep.SpeedupVsSeed = float64(rep.SeedBaseline.NsPerOp) / float64(rep.WakeDriven.NsPerOp)
		rep.SpeedupVsDenseMode = float64(rep.DenseReference.NsPerOp) / float64(rep.WakeDriven.NsPerOp)
	}
	if rep.WakeDriven.AllocsPerOp > 0 {
		rep.AllocReductionX = float64(rep.SeedBaseline.AllocsPerOp) / float64(rep.WakeDriven.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %.0f simcycles/sec wake-driven (%.2fx vs seed, %.2fx vs dense mode, %.0fx fewer allocs)\n",
		*out, rep.WakeDriven.SimcyclesPerSec, rep.SpeedupVsSeed, rep.SpeedupVsDenseMode, rep.AllocReductionX)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
