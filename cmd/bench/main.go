// Command bench measures simulator kernel throughput and emits
// BENCH_kernel.json, the performance-trajectory record for the wake-driven
// scheduler.
//
// It runs the headline throughput benchmark (the cachebw workload under
// OrdPush at tiny scale — the same measurement as BenchmarkRunCachebwOrdPush
// in bench_test.go) twice: once on the wake-driven kernel and once in the
// dense reference mode that ticks every component every cycle. Both runs
// report simulated cycles per wall second and allocations per run.
//
// With -mode parallel it instead measures the parallel tick executor on the
// 64-core machine against the serial sparse kernel and emits
// BENCH_parallel.json.
//
// Usage:
//
//	go run ./cmd/bench                    # writes BENCH_kernel.json
//	go run ./cmd/bench -o - -benchtime 10x
//	go run ./cmd/bench -mode parallel -workers 4   # writes BENCH_parallel.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pushmulticast"
)

// seedBaseline records the pre-wake-driven kernel measured at the growth
// seed (commit 988cf70) on the reference machine, interleaved with current-
// tree runs so machine drift cancels. It anchors the trajectory: wall-clock
// numbers are machine-specific, but the committed ratios were taken in one
// sitting.
var seedBaseline = measurement{
	Label:          "seed dense cycle-driven kernel (commit 988cf70)",
	NsPerOp:        322000000,
	SimcyclesPerOp: 21331,
	AllocsPerOp:    674193,
	BytesPerOp:     43639423,
}

type measurement struct {
	Label           string  `json:"label"`
	NsPerOp         int64   `json:"ns_per_op"`
	SimcyclesPerOp  float64 `json:"simcycles_per_op"`
	SimcyclesPerSec float64 `json:"simcycles_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

func (m *measurement) fill() {
	if m.NsPerOp > 0 {
		m.SimcyclesPerSec = m.SimcyclesPerOp / (float64(m.NsPerOp) / 1e9)
	}
}

type report struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Notes explains how to read the two speedup ratios.
	Notes []string `json:"notes"`

	WakeDriven     measurement `json:"wake_driven"`
	DenseReference measurement `json:"dense_reference"`
	SeedBaseline   measurement `json:"seed_baseline"`

	SpeedupVsSeed      float64 `json:"speedup_vs_seed"`
	SpeedupVsDenseMode float64 `json:"speedup_vs_dense_mode"`
	AllocReductionX    float64 `json:"alloc_reduction_vs_seed_x"`
}

// parallelReport is the BENCH_parallel.json schema: the serial sparse kernel
// against the parallel tick executor on the 64-core machine.
type parallelReport struct {
	Benchmark string   `json:"benchmark"`
	Workload  string   `json:"workload"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Workers   int      `json:"workers"`
	Notes     []string `json:"notes"`

	SerialSparse measurement `json:"serial_sparse"`
	Parallel     measurement `json:"parallel"`

	SpeedupVsSerialSparse float64 `json:"speedup_vs_serial_sparse"`
}

// benchConfig runs one configuration under testing's benchmark harness and
// returns the measurement.
func benchConfig(label string, cfg pushmulticast.Config) measurement {
	var cycles uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pushmulticast.Run(cfg, "cachebw", pushmulticast.ScaleTiny)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
	})
	m := measurement{
		Label:          label,
		NsPerOp:        r.NsPerOp(),
		SimcyclesPerOp: float64(cycles),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
	}
	m.fill()
	return m
}

// run executes the cachebw/OrdPush tiny-scale simulation on the 16-core
// machine (the kernel-trajectory measurement).
func run(label string, dense bool) measurement {
	cfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).WithScheme(pushmulticast.OrdPush())
	cfg.DenseKernel = dense
	return benchConfig(label, cfg)
}

// runParallel measures the parallel-executor benchmark: cachebw/OrdPush on
// the 64-core machine, serial sparse versus the staged-commit executor.
func runParallel(out string, workers int) error {
	base := pushmulticast.ScaledConfig(pushmulticast.Default64()).WithScheme(pushmulticast.OrdPush())
	rep := parallelReport{
		Benchmark: "BenchmarkParallelKernel",
		Workload:  "cachebw / OrdPush / tiny scale / 64 cores",
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
		Notes: []string{
			"Both runs produce byte-identical simulation results; only wall-clock differs.",
			"speedup_vs_serial_sparse > 1 requires num_cpu >= workers; on a single-CPU host the parallel executor cannot run sections concurrently and the staging overhead shows as a slowdown — the number here is an honest record of this machine, not the executor's ceiling.",
		},
	}
	rep.SerialSparse = benchConfig("serial sparse kernel", base)
	par := base
	par.ParallelWorkers = workers
	rep.Parallel = benchConfig(fmt.Sprintf("parallel executor (%d workers)", workers), par)
	if rep.Parallel.NsPerOp > 0 {
		rep.SpeedupVsSerialSparse = float64(rep.SerialSparse.NsPerOp) / float64(rep.Parallel.NsPerOp)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return nil
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.0f simcycles/sec parallel (%d workers, %d cpus, %.2fx vs serial sparse)\n",
		out, rep.Parallel.SimcyclesPerSec, workers, rep.NumCPU, rep.SpeedupVsSerialSparse)
	return nil
}

func main() {
	var (
		out       = flag.String("o", "", "output path ('-' for stdout; default depends on -mode)")
		benchtime = flag.String("benchtime", "5x", "benchmark time per kernel (testing -benchtime syntax)")
		mode      = flag.String("mode", "kernel", "benchmark: kernel (wake-driven vs dense, BENCH_kernel.json) or parallel (serial vs parallel executor, BENCH_parallel.json)")
		workers   = flag.Int("workers", 4, "parallel executor worker count (-mode parallel)")
	)
	testing.Init()
	flag.Parse()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	switch *mode {
	case "parallel":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		if err := runParallel(*out, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	case "kernel":
		if *out == "" {
			*out = "BENCH_kernel.json"
		}
	default:
		fmt.Fprintf(os.Stderr, "bench: unknown -mode %q (use kernel or parallel)\n", *mode)
		os.Exit(1)
	}

	rep := report{
		Benchmark: "BenchmarkRunCachebwOrdPush",
		Workload:  "cachebw / OrdPush / tiny scale / 16 cores",
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Notes: []string{
			"speedup_vs_seed compares against the pre-wake-driven kernel at the growth seed; its wall-clock numbers were measured interleaved with current-tree runs and are machine-specific.",
			"speedup_vs_dense_mode compares against this tree's own dense reference mode, which shares every hot-path optimization and differs only in ticking all components every cycle; it isolates the scheduler's contribution (tick-count ratio ~2.75x on this workload).",
		},
		SeedBaseline: seedBaseline,
	}
	rep.SeedBaseline.fill()
	rep.WakeDriven = run("wake-driven kernel", false)
	rep.DenseReference = run("dense reference mode (DenseKernel=true)", true)
	if rep.WakeDriven.NsPerOp > 0 {
		rep.SpeedupVsSeed = float64(rep.SeedBaseline.NsPerOp) / float64(rep.WakeDriven.NsPerOp)
		rep.SpeedupVsDenseMode = float64(rep.DenseReference.NsPerOp) / float64(rep.WakeDriven.NsPerOp)
	}
	if rep.WakeDriven.AllocsPerOp > 0 {
		rep.AllocReductionX = float64(rep.SeedBaseline.AllocsPerOp) / float64(rep.WakeDriven.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %.0f simcycles/sec wake-driven (%.2fx vs seed, %.2fx vs dense mode, %.0fx fewer allocs)\n",
		*out, rep.WakeDriven.SimcyclesPerSec, rep.SpeedupVsSeed, rep.SpeedupVsDenseMode, rep.AllocReductionX)
}
