// Command bench measures simulator kernel throughput and emits
// BENCH_kernel.json, the performance-trajectory record for the wake-driven
// scheduler.
//
// It runs the headline throughput benchmark (the cachebw workload under
// OrdPush at tiny scale — the same measurement as BenchmarkRunCachebwOrdPush
// in bench_test.go) twice: once on the wake-driven kernel and once in the
// dense reference mode that ticks every component every cycle. Both runs
// report simulated cycles per wall second and allocations per run.
//
// Usage:
//
//	go run ./cmd/bench                    # writes BENCH_kernel.json
//	go run ./cmd/bench -o - -benchtime 10x
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pushmulticast"
)

// seedBaseline records the pre-wake-driven kernel measured at the growth
// seed (commit 988cf70) on the reference machine, interleaved with current-
// tree runs so machine drift cancels. It anchors the trajectory: wall-clock
// numbers are machine-specific, but the committed ratios were taken in one
// sitting.
var seedBaseline = measurement{
	Label:          "seed dense cycle-driven kernel (commit 988cf70)",
	NsPerOp:        322000000,
	SimcyclesPerOp: 21331,
	AllocsPerOp:    674193,
	BytesPerOp:     43639423,
}

type measurement struct {
	Label           string  `json:"label"`
	NsPerOp         int64   `json:"ns_per_op"`
	SimcyclesPerOp  float64 `json:"simcycles_per_op"`
	SimcyclesPerSec float64 `json:"simcycles_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

func (m *measurement) fill() {
	if m.NsPerOp > 0 {
		m.SimcyclesPerSec = m.SimcyclesPerOp / (float64(m.NsPerOp) / 1e9)
	}
}

type report struct {
	Benchmark string `json:"benchmark"`
	Workload  string `json:"workload"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Notes explains how to read the two speedup ratios.
	Notes []string `json:"notes"`

	WakeDriven     measurement `json:"wake_driven"`
	DenseReference measurement `json:"dense_reference"`
	SeedBaseline   measurement `json:"seed_baseline"`

	SpeedupVsSeed      float64 `json:"speedup_vs_seed"`
	SpeedupVsDenseMode float64 `json:"speedup_vs_dense_mode"`
	AllocReductionX    float64 `json:"alloc_reduction_vs_seed_x"`
}

// run executes the cachebw/OrdPush tiny-scale simulation under testing's
// benchmark harness and returns the measurement.
func run(label string, dense bool) measurement {
	cfg := pushmulticast.ScaledConfig(pushmulticast.Default16()).WithScheme(pushmulticast.OrdPush())
	cfg.DenseKernel = dense
	var cycles uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pushmulticast.Run(cfg, "cachebw", pushmulticast.ScaleTiny)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
	})
	m := measurement{
		Label:          label,
		NsPerOp:        r.NsPerOp(),
		SimcyclesPerOp: float64(cycles),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
	}
	m.fill()
	return m
}

func main() {
	var (
		out       = flag.String("o", "BENCH_kernel.json", "output path ('-' for stdout)")
		benchtime = flag.String("benchtime", "5x", "benchmark time per kernel (testing -benchtime syntax)")
	)
	testing.Init()
	flag.Parse()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	rep := report{
		Benchmark: "BenchmarkRunCachebwOrdPush",
		Workload:  "cachebw / OrdPush / tiny scale / 16 cores",
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Notes: []string{
			"speedup_vs_seed compares against the pre-wake-driven kernel at the growth seed; its wall-clock numbers were measured interleaved with current-tree runs and are machine-specific.",
			"speedup_vs_dense_mode compares against this tree's own dense reference mode, which shares every hot-path optimization and differs only in ticking all components every cycle; it isolates the scheduler's contribution (tick-count ratio ~2.75x on this workload).",
		},
		SeedBaseline: seedBaseline,
	}
	rep.SeedBaseline.fill()
	rep.WakeDriven = run("wake-driven kernel", false)
	rep.DenseReference = run("dense reference mode (DenseKernel=true)", true)
	if rep.WakeDriven.NsPerOp > 0 {
		rep.SpeedupVsSeed = float64(rep.SeedBaseline.NsPerOp) / float64(rep.WakeDriven.NsPerOp)
		rep.SpeedupVsDenseMode = float64(rep.DenseReference.NsPerOp) / float64(rep.WakeDriven.NsPerOp)
	}
	if rep.WakeDriven.AllocsPerOp > 0 {
		rep.AllocReductionX = float64(rep.SeedBaseline.AllocsPerOp) / float64(rep.WakeDriven.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %.0f simcycles/sec wake-driven (%.2fx vs seed, %.2fx vs dense mode, %.0fx fewer allocs)\n",
		*out, rep.WakeDriven.SimcyclesPerSec, rep.SpeedupVsSeed, rep.SpeedupVsDenseMode, rep.AllocReductionX)
}
